package qdhj

// Checkpoint/restore at the public seam. A Snapshot freezes a join's
// complete deterministic state — per-stream K-slack window rings, window
// contents, synchronizer registers, per-scope K decisions, ADWIN-sized
// delay histories, and the feedback-loop accumulators — tagged with a
// signature of the deployment (condition, windows, shape, policy). Restore
// rebuilds a join that continues exactly where the snapshot left off:
// replaying the same suffix of arrivals yields the same result multiset and
// the same K trajectory as the uninterrupted run (DESIGN.md §10).
//
// Snapshots serialize with encoding/gob: Snapshot.Encode writes a versioned
// envelope, ReadSnapshot reads one back. The format embeds the deployment
// signature, so restoring into a differently shaped join fails with
// ErrRestoreMismatch instead of silently rebuilding wrong state.

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/plan"
)

// Snapshot is a point-in-time, serializable checkpoint of a Join. Obtain
// one with (*Join).Checkpoint, persist it with Encode/ReadSnapshot, and
// rebuild a join from it with Restore.
type Snapshot struct {
	state   plan.ExecState
	dropped int64
}

// Signature returns the deployment signature the snapshot is bound to —
// the same string Restore compares against its target.
func (s *Snapshot) Signature() string { return s.state.Sig }

// snapshotWire is the gob envelope; the magic and version gate decoding.
type snapshotWire struct {
	Magic   string
	Version int
	State   plan.ExecState
	Dropped int64
}

const (
	snapshotMagic   = "qdhj-snapshot"
	snapshotVersion = 1
)

// Encode serializes the snapshot to w with encoding/gob.
func (s *Snapshot) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(snapshotWire{
		Magic:   snapshotMagic,
		Version: snapshotVersion,
		State:   s.state,
		Dropped: s.dropped,
	})
}

// ReadSnapshot deserializes a snapshot previously written by Encode.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var wire snapshotWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("qdhj: reading snapshot: %w", err)
	}
	if wire.Magic != snapshotMagic {
		return nil, fmt.Errorf("qdhj: not a snapshot stream (magic %q)", wire.Magic)
	}
	if wire.Version != snapshotVersion {
		return nil, fmt.Errorf("qdhj: snapshot version %d, this library reads %d", wire.Version, snapshotVersion)
	}
	return &Snapshot{state: wire.State, dropped: wire.Dropped}, nil
}

// Checkpoint captures the join's state between two Push calls. The join
// keeps running — checkpointing is non-destructive — and a join restored
// from the snapshot produces, for the same suffix of arrivals, a result
// multiset bit-for-bit equal to this join's.
//
// On supervised joins the capture itself runs under supervision (a worker
// failure surfacing mid-capture triggers a normal recovery), and on tree
// deployments a capture between adaptation boundaries preserves the result
// multiset exactly while pinning the K trajectory from the next boundary
// on; flat deployments are exact at any point. Returns ErrClosed after
// Close and the terminal *JoinError after supervision gave up.
func (j *Join) Checkpoint() (*Snapshot, error) {
	if j.sup != nil {
		st, err := j.sup.Checkpoint()
		if err != nil {
			return nil, err
		}
		return &Snapshot{state: st, dropped: j.sup.Dropped()}, nil
	}
	if j.closed {
		return nil, ErrClosed
	}
	st, err := plan.Checkpoint(j.g, j.cfg, j.ex)
	if err != nil {
		return nil, err
	}
	return &Snapshot{state: st}, nil
}

// Restore rebuilds a join from a snapshot. cond, windows, opt and jopts
// must describe the same deployment that produced the snapshot — same
// condition, windows, policy and plan shape; the snapshot's embedded
// signature is checked and a mismatch returns ErrRestoreMismatch. Sinks,
// hooks and supervision settings are not part of the signature: a restored
// join may install different callbacks, add or drop supervision, or change
// the ingest bound.
//
// Generic (arbitrary-code) predicates contribute only their count to the
// signature — their bodies are not serializable, so passing a condition
// with different predicate code is undetectable and on the caller.
func Restore(snap *Snapshot, cond *Condition, windows []Time, opt Options, jopts ...JoinOption) (*Join, error) {
	var jo joinOpts
	for _, o := range jopts {
		o(&jo)
	}
	cfg := execConfig(opt, &jo)
	g := jo.graphFor(cond, windows)
	j := &Join{g: g, cfg: cfg, hasSink: jo.emit != nil}
	if jo.supervised {
		sup, err := plan.NewSupervisedRestore(g, cfg, jo.scf, snap.state, snap.dropped)
		if err != nil {
			return nil, err
		}
		j.sup = sup
		j.ex = sup
		return j, nil
	}
	ex, err := plan.Restore(g, cfg, snap.state)
	if err != nil {
		return nil, err
	}
	j.ex = ex
	return j, nil
}
