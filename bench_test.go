// Benchmarks regenerating every table and figure of the paper's evaluation
// (Sec. VI). Each benchmark runs the corresponding experiment on a short
// stream horizon and reports, besides ns/op, the experiment's headline
// numbers as custom metrics so `go test -bench` output carries the
// reproduced results:
//
//	avgK_ms      — average applied buffer size (the paper's latency proxy)
//	phi99_pct    — Φ(.99Γ): fraction of γ(P) measurements ≥ 0.99·Γ
//	recall       — mean measured γ(P)
//
// Absolute throughput differs from the authors' SAP ESP testbed; the shapes
// (who wins, by what factor, how metrics move with Γ, P, L, g) are the
// reproduction target. See EXPERIMENTS.md for the full-horizon numbers.
package qdhj

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/stream"
)

// benchMinutes keeps bench iterations fast; the cmd/qdhjbench tool runs the
// full horizons.
const benchMinutes = 1.5

var (
	dsOnce sync.Once
	dsAll  []*exp.Dataset
)

// datasets lazily prepares the three evaluation workloads once per process.
func datasets(b *testing.B) []*exp.Dataset {
	b.Helper()
	dsOnce.Do(func() {
		for _, k := range exp.AllKeys() {
			dsAll = append(dsAll, exp.Prepare(k, benchMinutes, 42))
		}
	})
	return dsAll
}

func defaultCfg(gamma float64) adapt.Config {
	return adapt.Config{Gamma: gamma, P: stream.Minute, L: stream.Second,
		B: 10 * stream.Millisecond, G: 10 * stream.Millisecond}
}

// BenchmarkFig6_NoKslackRecall reproduces Fig. 6: the recall produced with
// no intra-stream disorder handling, per dataset.
func BenchmarkFig6_NoKslackRecall(b *testing.B) {
	for _, ds := range datasets(b) {
		ds := ds
		b.Run(ds.Name, func(b *testing.B) {
			var s exp.Summary
			for i := 0; i < b.N; i++ {
				s = exp.Run(ds, defaultCfg(0), core.NoKPolicy())
			}
			b.ReportMetric(s.MeanRecall, "recall")
			b.ReportMetric(float64(len(ds.Arrivals)*b.N)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

// BenchmarkTable2_MaxKslack reproduces Table II: average K and recall of the
// Max-K-slack baseline.
func BenchmarkTable2_MaxKslack(b *testing.B) {
	for _, ds := range datasets(b) {
		ds := ds
		b.Run(ds.Name, func(b *testing.B) {
			var s exp.Summary
			for i := 0; i < b.N; i++ {
				s = exp.Run(ds, defaultCfg(0), core.MaxKPolicy())
			}
			b.ReportMetric(s.AvgK, "avgK_ms")
			b.ReportMetric(s.MeanRecall, "recall")
		})
	}
}

// BenchmarkFig7_VaryGamma reproduces Fig. 7: avg K and requirement
// fulfillment under varying Γ for both selectivity strategies.
func BenchmarkFig7_VaryGamma(b *testing.B) {
	for _, ds := range datasets(b) {
		for _, gamma := range []float64{0.9, 0.99} {
			for _, strat := range []adapt.Strategy{adapt.EqSel, adapt.NonEqSel} {
				ds, gamma, strat := ds, gamma, strat
				b.Run(ds.Name+"/Γ="+fmtF(gamma)+"/"+strat.String(), func(b *testing.B) {
					cfg := defaultCfg(gamma)
					cfg.Strategy = strat
					var s exp.Summary
					for i := 0; i < b.N; i++ {
						s = exp.Run(ds, cfg, core.ModelPolicy())
					}
					b.ReportMetric(s.AvgK, "avgK_ms")
					b.ReportMetric(s.Phi99, "phi99_pct")
				})
			}
		}
	}
}

// BenchmarkFig8_VaryP reproduces Fig. 8: varying the result-quality
// measurement period P.
func BenchmarkFig8_VaryP(b *testing.B) {
	ds := datasets(b)[0] // x2, as in the paper's left panel
	for _, p := range []stream.Time{30 * stream.Second, stream.Minute} {
		p := p
		b.Run("P="+p.String(), func(b *testing.B) {
			cfg := defaultCfg(0.95)
			cfg.P = p
			var s exp.Summary
			for i := 0; i < b.N; i++ {
				s = exp.Run(ds, cfg, core.ModelPolicy())
			}
			b.ReportMetric(s.AvgK, "avgK_ms")
			b.ReportMetric(s.Phi99, "phi99_pct")
		})
	}
}

// BenchmarkFig9_VaryL reproduces Fig. 9: varying the adaptation interval L.
func BenchmarkFig9_VaryL(b *testing.B) {
	ds := datasets(b)[0]
	for _, l := range []stream.Time{100, 1000, 5000} {
		l := l
		b.Run("L="+l.String(), func(b *testing.B) {
			cfg := defaultCfg(0.95)
			cfg.L = l
			var s exp.Summary
			for i := 0; i < b.N; i++ {
				s = exp.Run(ds, cfg, core.ModelPolicy())
			}
			b.ReportMetric(s.AvgK, "avgK_ms")
			b.ReportMetric(s.Phi99, "phi99_pct")
		})
	}
}

// BenchmarkFig10_VaryG reproduces Fig. 10: varying the K-search granularity.
func BenchmarkFig10_VaryG(b *testing.B) {
	ds := datasets(b)[0]
	for _, g := range []stream.Time{10, 100, 1000} {
		g := g
		b.Run("g="+g.String(), func(b *testing.B) {
			cfg := defaultCfg(0.95)
			cfg.G = g
			var s exp.Summary
			for i := 0; i < b.N; i++ {
				s = exp.Run(ds, cfg, core.ModelPolicy())
			}
			b.ReportMetric(s.AvgK, "avgK_ms")
			b.ReportMetric(s.Phi99, "phi99_pct")
		})
	}
}

// BenchmarkFig11_AdaptTime reproduces Fig. 11: the wall-clock time of one
// model-based adaptation step as a function of g and Γ.
func BenchmarkFig11_AdaptTime(b *testing.B) {
	ds := datasets(b)[1] // x3
	for _, g := range []stream.Time{10, 100} {
		for _, gamma := range []float64{0.9, 0.999} {
			g, gamma := g, gamma
			b.Run("g="+g.String()+"/Γ="+fmtF(gamma), func(b *testing.B) {
				cfg := defaultCfg(gamma)
				cfg.G = g
				var s exp.Summary
				for i := 0; i < b.N; i++ {
					s = exp.Run(ds, cfg, core.ModelPolicy())
				}
				b.ReportMetric(float64(s.AvgAdaptTime().Microseconds()), "adapt_µs")
				if s.AdaptSteps > 0 {
					b.ReportMetric(float64(s.AdaptIters)/float64(s.AdaptSteps), "iters/step")
				}
			})
		}
	}
}

// BenchmarkAblationCalibration measures the Γ′-calibration ablation
// (DESIGN.md §5): model policy with and without Eq. (7).
func BenchmarkAblationCalibration(b *testing.B) {
	ds := datasets(b)[0]
	for _, noCal := range []bool{false, true} {
		noCal := noCal
		name := "calibrated"
		if noCal {
			name = "raw-gamma"
		}
		b.Run(name, func(b *testing.B) {
			cfg := defaultCfg(0.95)
			cfg.NoCalibration = noCal
			var s exp.Summary
			for i := 0; i < b.N; i++ {
				s = exp.Run(ds, cfg, core.ModelPolicy())
			}
			b.ReportMetric(s.AvgK, "avgK_ms")
			b.ReportMetric(s.Phi99, "phi99_pct")
		})
	}
}

// BenchmarkAblationBasicWindow measures the estimation-conservatism knob b
// (Eq. 3): a coarse basic window inflates K.
func BenchmarkAblationBasicWindow(b *testing.B) {
	ds := datasets(b)[1]
	for _, bw := range []stream.Time{10, 1000, 5000} {
		bw := bw
		b.Run("b="+bw.String(), func(b *testing.B) {
			cfg := defaultCfg(0.95)
			cfg.B = bw
			var s exp.Summary
			for i := 0; i < b.N; i++ {
				s = exp.Run(ds, cfg, core.ModelPolicy())
			}
			b.ReportMetric(s.AvgK, "avgK_ms")
		})
	}
}

// BenchmarkOperatorThroughput measures raw MSWJ operator throughput
// (tuples/s) on the three workloads without disorder handling, isolating
// the join executor.
func BenchmarkOperatorThroughput(b *testing.B) {
	for _, ds := range datasets(b) {
		ds := ds
		b.Run(ds.Name, func(b *testing.B) {
			in := ds.Arrivals
			b.ResetTimer()
			var n int64
			for i := 0; i < b.N; i++ {
				j := NewJoin(ds.Cond, ds.Windows, Options{Policy: NoSlack})
				for _, e := range in {
					j.Push(e)
				}
				j.Close()
				n = j.Results()
			}
			b.ReportMetric(float64(len(in)*b.N)/b.Elapsed().Seconds(), "tuples/s")
			_ = n
		})
	}
}

// BenchmarkBatchedOperatorThroughput measures the columnar batch probe path
// (WithBatchSize) against the per-tuple operator above, per workload and
// batch size. Batching amortizes per-tuple dispatch on one core — results
// are bit-for-bit those of BenchmarkOperatorThroughput's runs.
func BenchmarkBatchedOperatorThroughput(b *testing.B) {
	for _, ds := range datasets(b) {
		for _, batch := range []int{16, 64, 256} {
			ds, batch := ds, batch
			b.Run(fmt.Sprintf("%s/batch=%d", ds.Name, batch), func(b *testing.B) {
				in := ds.Arrivals
				b.ResetTimer()
				var n int64
				for i := 0; i < b.N; i++ {
					j := NewJoin(ds.Cond, ds.Windows, Options{Policy: NoSlack}, WithBatchSize(batch))
					for _, e := range in {
						j.Push(e)
					}
					j.Close()
					n = j.Results()
				}
				b.ReportMetric(float64(len(in)*b.N)/b.Elapsed().Seconds(), "tuples/s")
				_ = n
			})
		}
	}
}

// BenchmarkShardedOperatorThroughput measures the partition-parallel
// execution path (WithShards) against the single-threaded operator above,
// per workload and shard count. The planner picks equi hashing for x3,
// band range cells for x2 and a partial-equi/broadcast hybrid for x4.
func BenchmarkShardedOperatorThroughput(b *testing.B) {
	for _, ds := range datasets(b) {
		for _, shards := range []int{2, 4} {
			ds, shards := ds, shards
			b.Run(fmt.Sprintf("%s/shards=%d", ds.Name, shards), func(b *testing.B) {
				in := ds.Arrivals
				b.ResetTimer()
				var n int64
				for i := 0; i < b.N; i++ {
					j := NewJoin(ds.Cond, ds.Windows, Options{Policy: NoSlack}, WithShards(shards))
					for _, e := range in {
						j.Push(e)
					}
					j.Close()
					n = j.Results()
				}
				b.ReportMetric(float64(len(in)*b.N)/b.Elapsed().Seconds(), "tuples/s")
				_ = n
			})
		}
	}
}

var (
	treeBenchOnce sync.Once
	treeBenchIn   stream.Batch
	treeBenchMaxD Time
)

// treeBenchWorkload builds the tree benchmark feed once per process: a
// sparse-key disordered 3-way equi join (a tree deployment suits
// low-selectivity joins — dense joins favor the MJoin operator, measured by
// BenchmarkOperatorThroughput above), with asymmetric per-stream delays so
// the per-stage mode has something to exploit.
func treeBenchWorkload() (stream.Batch, Time) {
	treeBenchOnce.Do(func() {
		treeBenchIn = gen.SparseEqui3(20000, 17, 500, [3]Time{150, 150, 2500})
		treeBenchMaxD, _ = treeBenchIn.MaxDelay()
	})
	return treeBenchIn, treeBenchMaxD
}

// BenchmarkTreeThroughput measures the binary-tree deployment (Sec. V)
// across its three adaptation modes: fixed-K at the feed's max delay, the
// global Same-K feedback loop, and per-stage adaptive K. The buffered-delay
// sum rides along as the latency metric the per-stage policy exists to
// shrink on asymmetric-delay inputs like this one.
func BenchmarkTreeThroughput(b *testing.B) {
	aopt := Options{Gamma: 0.95, Period: 30 * Second, Interval: Second}
	modes := []struct {
		name string
		opts []TreeOption
	}{
		{"fixed", nil},
		{"same-k", []TreeOption{WithTreeAdaptation(aopt)}},
		{"per-stage", []TreeOption{WithTreeAdaptation(aopt), WithPerStageK()}},
	}
	in, maxD := treeBenchWorkload()
	windows := []Time{2 * Second, 2 * Second, 2 * Second}
	for _, mode := range modes {
		mode := mode
		initialK := Time(0)
		if mode.name == "fixed" {
			initialK = maxD
		}
		b.Run(mode.name, func(b *testing.B) {
			b.ResetTimer()
			var sumBufK float64
			for i := 0; i < b.N; i++ {
				j := NewTreeJoin(EquiChain(3, 0), windows, initialK, nil, mode.opts...)
				for _, e := range in {
					j.Push(e)
				}
				j.Close()
				sumBufK = j.BufferedDelaySum()
			}
			b.ReportMetric(float64(len(in)*b.N)/b.Elapsed().Seconds(), "tuples/s")
			b.ReportMetric(sumBufK/1000, "sumBufK_s")
		})
	}
}

// BenchmarkPipelineEndToEnd measures the full framework (statistics,
// profiling, adaptation) against the operator-only baseline above.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	for _, ds := range datasets(b) {
		ds := ds
		b.Run(ds.Name, func(b *testing.B) {
			var s exp.Summary
			for i := 0; i < b.N; i++ {
				s = exp.Run(ds, defaultCfg(0.95), core.ModelPolicy())
			}
			b.ReportMetric(float64(len(ds.Arrivals)*b.N)/b.Elapsed().Seconds(), "tuples/s")
			b.ReportMetric(s.AvgK, "avgK_ms")
		})
	}
}

// BenchmarkMultiQueryThroughput measures the shared-window multi-query
// engine serving N identical queries against N independent Joins each
// replaying the same feed. tuples/s is the aggregate rate at which the
// deployment serves all N queries with one pass worth of input; the shared
// shape's per-arrival cost grows with distinct probe prefixes, not N.
func BenchmarkMultiQueryThroughput(b *testing.B) {
	in := gen.SparseEqui3(8000, 17, 500, [3]Time{150, 150, 150})
	windows := []Time{2 * Second, 2 * Second, 2 * Second}
	for _, nq := range []int{1, 8, 64} {
		nq := nq
		b.Run(fmt.Sprintf("shared/queries=%d", nq), func(b *testing.B) {
			var results int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mj := NewMultiJoin(3)
				mqs := make([]*MultiQuery, nq)
				for qi := range mqs {
					mqs[qi] = mj.Add(EquiChain(3, 0), windows, Options{Policy: NoSlack})
				}
				for _, e := range in {
					mj.Push(e)
				}
				mj.Close()
				results = mqs[0].Results()
			}
			b.ReportMetric(float64(len(in)*b.N)/b.Elapsed().Seconds(), "tuples/s")
			b.ReportMetric(float64(results), "results")
		})
		b.Run(fmt.Sprintf("independent/queries=%d", nq), func(b *testing.B) {
			var results int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for qi := 0; qi < nq; qi++ {
					j := NewJoin(EquiChain(3, 0), windows, Options{Policy: NoSlack})
					for _, e := range in {
						j.Push(e)
					}
					j.Close()
					results = j.Results()
				}
			}
			b.ReportMetric(float64(len(in)*b.N)/b.Elapsed().Seconds(), "tuples/s")
			b.ReportMetric(float64(results), "results")
		})
	}
}

func fmtF(f float64) string {
	switch f {
	case 0.9:
		return "0.9"
	case 0.95:
		return "0.95"
	case 0.99:
		return "0.99"
	case 0.999:
		return "0.999"
	}
	return "x"
}
