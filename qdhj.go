// Package qdhj is a quality-driven disorder handling library for m-way
// sliding window stream joins (MSWJ), reproducing Ji et al., "Quality-Driven
// Disorder Handling for M-way Sliding Window Stream Joins", ICDE 2016.
//
// An MSWJ over out-of-order, unsynchronized streams faces an inevitable
// tradeoff between result latency and result quality (recall of join
// results). This library lets the application state the tradeoff from the
// quality side: specify a minimum recall Γ over a measurement period P, and
// the framework continuously sizes its input-sorting buffers as small as the
// requirement allows.
//
// # Quick start
//
//	cond := qdhj.EquiChain(2, 0) // S0.attr0 == S1.attr0
//	j := qdhj.NewJoin(cond, []qdhj.Time{5 * qdhj.Second, 5 * qdhj.Second},
//		qdhj.Options{Gamma: 0.95},
//		qdhj.WithResults(func(r qdhj.Result) { fmt.Println(r.Tuples) }),
//	)
//	for t := range arrivals {
//		j.Push(t)
//	}
//	j.Close()
//
// Timestamps are logical milliseconds assigned at the data sources; the
// framework is driven entirely by tuple arrival, never by the wall clock.
package qdhj

import (
	"math"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/join"
	"repro/internal/plan"
	"repro/internal/replan"
	"repro/internal/stream"
)

// Time is a logical timestamp or duration in milliseconds.
type Time = stream.Time

// Re-exported logical durations.
const (
	Millisecond = stream.Millisecond
	Second      = stream.Second
	Minute      = stream.Minute
)

// Tuple is a stream element; see stream.Tuple for field semantics.
type Tuple = stream.Tuple

// Result is one join result (one tuple per input stream).
type Result = stream.Result

// Condition is a conjunctive join condition over m streams.
type Condition = join.Condition

// Cross returns the always-true condition over m streams (cross join).
func Cross(m int) *Condition { return join.Cross(m) }

// EquiChain returns S0.attr = S1.attr = … = S(m−1).attr.
func EquiChain(m, attr int) *Condition { return join.EquiChain(m, attr) }

// Star returns a star equi-join centered on stream 0.
func Star(m int, centerAttrs, spokeAttrs []int) *Condition {
	return join.Star(m, centerAttrs, spokeAttrs)
}

// Strategy selects the selectivity model of the buffer-size adaptation.
type Strategy = adapt.Strategy

// Selectivity strategies (Sec. IV-B of the paper). NonEqSel learns the
// delay–productivity correlation at runtime and is the recommended default.
const (
	NonEqSel = adapt.NonEqSel
	EqSel    = adapt.EqSel
)

// Policy names the buffer-sizing policy of a join.
type Policy int

// Available policies.
const (
	// QualityDriven is the paper's model-based adaptive policy: minimal
	// buffers honoring the recall requirement Γ.
	QualityDriven Policy = iota
	// MaxSlack sizes buffers to the maximum delay observed so far
	// (state-of-the-art baseline; maximal quality, maximal latency).
	MaxSlack
	// NoSlack disables input sorting (minimal latency, degraded quality).
	NoSlack
	// StaticSlack applies the fixed buffer size Options.StaticK.
	StaticSlack
)

// Options configures the disorder handling of a join. The zero value gives
// the paper's defaults: quality-driven policy with Γ = 0.95, P = 1 min,
// L = 1 s, b = g = 10 ms, NonEqSel.
type Options struct {
	// Gamma is the required minimum recall γ(P) ∈ [0,1]. 0 means "use the
	// default 0.95".
	Gamma float64
	// Period is the result-quality measurement period P.
	Period Time
	// Interval is the adaptation interval L (≤ P).
	Interval Time
	// BasicWindow is the model's window segmentation unit b.
	BasicWindow Time
	// Granularity is the K-search granularity g.
	Granularity Time
	// Strategy selects EqSel or NonEqSel (default NonEqSel).
	Strategy Strategy
	// Search selects the Alg. 3 k* search: LinearSearch (the paper) or
	// BinarySearch (this library's extension of the paper's future work).
	Search Search
	// Policy selects the buffer-sizing policy (default QualityDriven).
	Policy Policy
	// StaticK is the buffer size used by the StaticSlack policy.
	StaticK Time
}

// Search selects the buffer-size search algorithm.
type Search = adapt.Search

// Search algorithms for the model-based policy.
const (
	LinearSearch = adapt.LinearSearch
	BinarySearch = adapt.BinarySearch
)

// JoinOption attaches optional sinks and hooks to a join.
type JoinOption func(*joinOpts)

type joinOpts struct {
	emit       join.EmitFunc
	counts     join.CountEmitFunc
	onAdapt    func(AdaptEvent)
	shards     int
	batch      int
	remote     []string
	frameBatch int
	plan       *Plan
	autoPlan   bool
	supervised bool
	scf        plan.SuperviseConfig
	replan     *ReplanOptions
}

// AdaptEvent reports one buffer-size adaptation step.
type AdaptEvent = core.AdaptEvent

// WithResults registers a callback receiving every produced join result.
// Registering it disables the operator's counting-only fast path, so omit it
// when only result counts are needed.
func WithResults(f func(Result)) JoinOption {
	return func(o *joinOpts) { o.emit = join.EmitFunc(f) }
}

// WithResultCounts registers a cheap callback receiving, per in-order
// arrival, the result timestamp and result count.
func WithResultCounts(f func(ts Time, n int64)) JoinOption {
	return func(o *joinOpts) { o.counts = join.CountEmitFunc(f) }
}

// WithAdaptHook registers a callback observing every adaptation step.
func WithAdaptHook(f func(AdaptEvent)) JoinOption {
	return func(o *joinOpts) { o.onAdapt = f }
}

// WithShards runs the join operator as n key-partitioned shards on n
// goroutines. The planner picks the partition key from the condition — an
// equi key class is hash-partitioned, a band key class is range-
// partitioned with overlap replication, and purely generic conditions fall
// back to partitioning stream 0 and broadcasting the rest. Disorder
// handling (K-slack, Synchronizer) and the quality-driven feedback loop
// stay global: one Same-K decision governs all shards, and per-shard
// result and statistics streams merge deterministically at every
// adaptation-interval boundary, so a sharded run produces exactly the
// result multiset of the single-shard run.
//
// Result sinks (WithResults, WithResultCounts, RunChannel) consequently
// see results in interval-sized batches rather than per arrival. n ≤ 1
// selects the classic single-threaded path; n < 0 panics.
func WithShards(n int) JoinOption {
	if n < 0 {
		panic("qdhj: WithShards needs n ≥ 0 shards")
	}
	return func(o *joinOpts) { o.shards = n }
}

// WithBatchSize sets the columnar release batch size n: synchronizer/K-slack
// output is buffered and fed to the probe kernel in runs of up to n tuples
// instead of one call per tuple, amortizing the per-tuple dispatch on every
// deployment shape. Batches are cut at adaptation boundaries and watermark
// reads, so results, result order and the K trajectory are bit-for-bit those
// of the per-tuple run. n ≤ 1 (and the default) selects per-tuple execution;
// n < 0 panics. 64 is a good starting point.
func WithBatchSize(n int) JoinOption {
	if n < 0 {
		panic("qdhj: WithBatchSize needs n ≥ 0")
	}
	return func(o *joinOpts) { o.batch = n }
}

// WithRemoteWorkers runs the join's partition workers as external qdhjd
// processes, one worker per address, connected over TCP. It is the
// networked form of WithShards: the partition routing, disorder handling
// (K-slack, Synchronizer) and the quality-driven feedback loop stay in
// this process, and only the per-shard join operators move out — so
// results, result counts and the K trajectory are bit-for-bit those of
// the in-process run, for any worker count and any frame batch size.
//
// Start workers with `qdhjd -listen addr` (cmd/qdhjd) before the first
// Push; the session dials lazily. The join condition must be expressible
// on the wire: equi, band, and WhereExpr predicates deploy; opaque Where
// closures cannot cross a process boundary and panic at construction.
// Combine with WithSupervision to survive worker loss: a failed worker
// surfaces as the same typed error an in-process shard crash does, and
// the supervisor restores the deployment — including freshly restarted
// workers — from its checkpoint. See WithFrameBatch for the transport
// batching knob.
func WithRemoteWorkers(addrs ...string) JoinOption {
	if len(addrs) == 0 {
		panic("qdhj: WithRemoteWorkers needs at least one worker address")
	}
	return func(o *joinOpts) { o.remote = append([]string(nil), addrs...) }
}

// WithFrameBatch sets how many tuple messages share one network frame (and
// one write syscall) on remote deployments: larger batches amortize
// framing and syscall cost — throughput scales several-fold between
// per-tuple framing (1) and 64–256 — while batch cuts remain a pure
// function of the input, so results are identical at every setting.
// Default 128. On in-process sharded deployments the same value tunes the
// inter-thread hand-off batch. n ≤ 0 selects the default; n = 1 means
// per-tuple framing.
func WithFrameBatch(n int) JoinOption {
	return func(o *joinOpts) { o.frameBatch = n }
}

// Join is an m-way sliding window join with quality-driven disorder
// handling. It is not safe for concurrent use; feed it from one goroutine or
// use RunChannel.
//
// Every Join executes behind the deployment-plan seam: the classic flat
// operator by default, the key-partitioned shards under WithShards, or any
// planned shape — including bushy trees and stage-wise sharding — under
// WithPlan/WithAutoPlan.
type Join struct {
	g   *plan.Graph
	cfg plan.ExecConfig // as handed to the builder; user callbacks intact
	ex  plan.Executor
	// sup is the supervised runtime when WithSupervision (or an option that
	// implies it) was given; nil on plain joins.
	sup *plan.Supervised
	// rc is the online re-planning controller under WithOnlineReplan; nil
	// otherwise. When set, j.ex is the CURRENT executor and may be replaced
	// by a live migration on any Push.
	rc     *replan.Controller
	closed bool
	// hasSink records whether a results sink is installed — by WithResults
	// at construction or by a RunChannel call; RunChannel refuses to
	// silently replace it.
	hasSink bool
}

// execConfig maps the public Options (plus the option-provided callbacks)
// onto the planner's executor config.
func execConfig(opt Options, jo *joinOpts) plan.ExecConfig {
	if opt.Gamma == 0 {
		opt.Gamma = 0.95
	}
	cfg := plan.ExecConfig{
		Adapt: adapt.Config{
			Gamma:    opt.Gamma,
			P:        opt.Period,
			L:        opt.Interval,
			B:        opt.BasicWindow,
			G:        opt.Granularity,
			Strategy: opt.Strategy,
			Search:   opt.Search,
		},
		StaticK:    opt.StaticK,
		Emit:       jo.emit,
		EmitCounts: jo.counts,
		OnAdapt:    jo.onAdapt,
		Batch:      jo.batch,
		Remote:     jo.remote,
		BatchSize:  jo.frameBatch,
	}
	switch opt.Policy {
	case MaxSlack:
		cfg.Policy = plan.PolicyMaxK
	case NoSlack:
		cfg.Policy = plan.PolicyNoK
	case StaticSlack:
		cfg.Policy = plan.PolicyStatic
	default:
		cfg.Policy = plan.PolicyModel
	}
	return cfg
}

// NewJoin creates a join over len(windows) streams. windows[i] is the
// sliding window extent W_i of stream i; cond.M must equal len(windows).
func NewJoin(cond *Condition, windows []Time, opt Options, jopts ...JoinOption) *Join {
	var jo joinOpts
	for _, o := range jopts {
		o(&jo)
	}
	cfg := execConfig(opt, &jo)
	g := jo.graphFor(cond, windows)
	j := &Join{g: g, cfg: cfg, hasSink: jo.emit != nil}
	switch {
	case jo.replan != nil:
		if jo.supervised {
			panic("qdhj: WithOnlineReplan cannot be combined with WithSupervision — the supervised runtime pins one deployment shape for checkpoint/replay recovery")
		}
		j.rc = newController(g, cfg, jo.replan)
		j.ex = plan.Build(g, j.rc.Config())
	case jo.supervised:
		j.sup = plan.NewSupervised(g, cfg, jo.scf)
		j.ex = j.sup
	default:
		j.ex = plan.Build(g, cfg)
	}
	return j
}

// Push feeds one arriving tuple. Tuples carry their source stream in
// Tuple.Src and their application timestamp in Tuple.TS. Under
// WithOnlineReplan, Push additionally runs the re-planning loop: the tuple
// is recorded in the replay log, and the executor between two pushes is a
// valid migration point, so a Push may return having migrated the join to a
// different deployment shape.
func (j *Join) Push(t *Tuple) {
	if j.rc != nil {
		j.rc.Observe(t)
		j.ex.Push(t)
		if nex := j.rc.Step(j.ex); nex != nil {
			j.ex = nex
		}
		return
	}
	j.ex.Push(t)
}

// Close flushes all buffers at end of input. The join must not be pushed to
// afterwards. On a supervised join whose retry budget is already spent,
// Close is a no-op — check Err.
func (j *Join) Close() {
	j.closed = true
	j.ex.Finish()
}

// Results returns the number of join results produced so far. Under
// WithOnlineReplan it counts results DELIVERED through the exactly-once
// gate — the counter that stays continuous across migrations.
func (j *Join) Results() int64 {
	if j.rc != nil {
		return j.rc.Gate().Delivered()
	}
	return j.ex.Results()
}

// CurrentK returns the input-sorting buffer size currently applied; it is
// the latency bound disorder handling adds to results. On tree-shaped
// deployments — where every stage decides its own K — it reports the
// largest per-stage buffer; CurrentKs lists them all.
func (j *Join) CurrentK() Time {
	var max Time
	for _, k := range j.ex.CurrentKs() {
		if k > max {
			max = k
		}
	}
	return max
}

// CurrentKs returns the most recent buffer-size decision, one entry per
// decision scope: a single entry on flat deployments, one per binary stage
// on tree-shaped plans. The slice is live; copy to retain.
func (j *Join) CurrentKs() []Time { return j.ex.CurrentKs() }

// AvgK returns the average buffer size over all adaptation intervals (of
// the largest per-stage buffer on tree-shaped deployments).
func (j *Join) AvgK() float64 { return j.ex.AvgK() }

// Adaptations returns how many buffer-size adaptation steps have run.
func (j *Join) Adaptations() int64 { return j.ex.Adaptations() }

// RunChannel consumes tuples from in on a dedicated goroutine and delivers
// results on the returned channel. The channel closes only after the input
// channel closes AND all disorder-handling buffers have flushed, so every
// result — including those released by the final flush — is delivered
// before the close.
//
// The join must have been created with no WithResults sink and RunChannel
// must be called at most once: it installs its own emit callback, and
// silently replacing an existing sink — the construction-time callback or
// a previous RunChannel's channel — would leave that sink receiving
// nothing. Both conflicts panic.
func (j *Join) RunChannel(in <-chan *Tuple) <-chan Result {
	if j.hasSink {
		panic("qdhj: RunChannel on a Join that already has a results sink (WithResults at construction, or an earlier RunChannel) — results would silently stop reaching it; use one sink per Join")
	}
	j.hasSink = true
	out := make(chan Result, 256)
	if j.rc != nil {
		// Delivery already routes through the exactly-once gate; redirect
		// its inner sink so migrations keep feeding the same channel.
		j.rc.Gate().SetInner(func(r Result) { out <- r })
	} else {
		j.ex.SetEmit(func(r Result) { out <- r })
	}
	go func() {
		defer close(out)
		for t := range in {
			j.Push(t)
		}
		j.ex.Finish()
	}()
	return out
}

// StreamStats is the read-only per-stream view of the Statistics Manager.
type StreamStats struct {
	// Rate is the average arrival rate in tuples per millisecond.
	Rate float64
	// HistoryLen is the current ADWIN-sized delay-history length R^stat.
	HistoryLen int
	// MaxDelayRecent is the largest tuple delay within the recent history.
	MaxDelayRecent Time
	// KSync is the Synchronizer's implicit buffer estimate (Prop. 1).
	KSync Time
	// LocalT is the stream's local logical clock iT.
	LocalT Time
}

// EdgeStats is one measured per-predicate selectivity: the estimated
// fraction of candidate pairs crossing the (Left, Right) stream edge that
// satisfy its equi/band predicate.
type EdgeStats struct {
	Left, Right int
	Selectivity float64
}

// StatsSnapshot is a point-in-time, read-only copy of the join's measured
// statistics. Feed it back to AutoPlanFrom to re-plan the deployment from
// measured values instead of guesses.
type StatsSnapshot struct {
	Streams []StreamStats
	// GlobalT is max_i iT, the framework's logical "now".
	GlobalT Time
	// MaxDelayAllTime is the largest delay among all observed tuples.
	MaxDelayAllTime Time
	// Edges estimates per-predicate selectivities from the cumulative
	// result and arrival counters, decomposed uniformly over the
	// condition's equi and band edges; nil while nothing can be estimated
	// yet (no arrivals, or a condition without equi/band predicates).
	Edges []EdgeStats
}

// Snapshot copies the current delay statistics. On deployments without a
// feedback loop (a StaticSlack tree plan) the snapshot is zero-valued with
// Streams nil.
func (j *Join) Snapshot() StatsSnapshot {
	m := j.ex.Stats()
	if m == nil {
		return StatsSnapshot{}
	}
	snap := StatsSnapshot{
		Streams:         make([]StreamStats, m.M()),
		GlobalT:         m.GlobalT(),
		MaxDelayAllTime: m.MaxDelayAllTime(),
	}
	for i := range snap.Streams {
		snap.Streams[i] = StreamStats{
			Rate:           m.Rate(i),
			HistoryLen:     m.HistoryLen(i),
			MaxDelayRecent: m.Hist(i).MaxDelay(),
			KSync:          m.KSync(i),
			LocalT:         m.LocalT(i),
		}
	}
	snap.Edges = j.edgeStats(m.M(), func(i int) int64 { return m.Arrivals(i) }, snap.Streams)
	return snap
}

// edgeStats estimates per-edge selectivities from the cumulative counters:
// the total result count over the expected number of unfiltered m-way
// combinations, decomposed uniformly over the condition's predicate edges.
func (j *Join) edgeStats(m int, arrivals func(int) int64, streams []StreamStats) []EdgeStats {
	cond, windows := j.g.Cond, j.g.Windows
	e := len(cond.Equis) + len(cond.Bands)
	if e == 0 {
		return nil
	}
	var cross float64
	for i := 0; i < m; i++ {
		comb := float64(arrivals(i))
		for k := 0; k < m; k++ {
			if k == i {
				continue
			}
			comb *= streams[k].Rate * float64(windows[k])
		}
		cross += comb
	}
	if cross <= 0 {
		return nil
	}
	sigTot := math.Min(1, math.Max(float64(j.Results())/cross, 1e-9))
	sigEdge := math.Pow(sigTot, 1/float64(e))
	out := make([]EdgeStats, 0, e)
	for _, p := range cond.Equis {
		out = append(out, EdgeStats{Left: p.LeftStream, Right: p.RightStream, Selectivity: sigEdge})
	}
	for _, p := range cond.Bands {
		out = append(out, EdgeStats{Left: p.LeftStream, Right: p.RightStream, Selectivity: sigEdge})
	}
	return out
}
