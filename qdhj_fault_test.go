package qdhj

// Public-surface tests of the fault-tolerant runtime: checkpoint round
// trips across every plannable shape (results, K trajectory and AvgK
// bit-for-bit, through the gob wire format), supervised crash recovery,
// typed errors, bounded ingest, and restore-mismatch refusal. CI runs
// these under -race.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/leakcheck"
)

// faultWorkload builds an m-stream feed with bounded disorder and two
// attributes per tuple (an integer-ish key and a continuous value).
func faultWorkload(m, rounds int, seed int64, domain int) []*Tuple {
	rng := rand.New(rand.NewSource(seed))
	var out []*Tuple
	var seq uint64
	ts := Time(3000)
	for i := 0; i < rounds; i++ {
		ts += 10
		for src := 0; src < m; src++ {
			t := ts
			if rng.Intn(4) == 0 {
				t -= Time(rng.Intn(1500))
			}
			out = append(out, &Tuple{TS: t, Seq: seq, Src: src,
				Attrs: []float64{float64(rng.Intn(domain)), float64(rng.Intn(200))}})
			seq++
		}
	}
	return out
}

func faultResultSig(r Result) string {
	var b strings.Builder
	for _, t := range r.Tuples {
		if t != nil {
			fmt.Fprintf(&b, "%d:%d,", t.Src, t.Seq)
		}
	}
	return b.String()
}

// faultTrace accumulates the observable behavior a round trip must pin:
// the result multiset and the adaptation (K) trajectory.
type faultTrace struct {
	set     map[string]int
	ks      []string
	mute    bool   // stop recording (the abandoned half of an interrupted run)
	onAdapt func() // extra per-adaptation callback (boundary detection)
}

func newFaultTrace() *faultTrace { return &faultTrace{set: map[string]int{}} }

func (tr *faultTrace) opts() []JoinOption {
	return []JoinOption{
		WithResults(func(r Result) {
			if !tr.mute {
				tr.set[faultResultSig(r)]++
			}
		}),
		WithAdaptHook(func(ev AdaptEvent) {
			if !tr.mute {
				tr.ks = append(tr.ks, fmt.Sprintf("%v:%v>%v", ev.Now, ev.PrevK, ev.NewK))
			}
			if tr.onAdapt != nil {
				tr.onAdapt()
			}
		}),
	}
}

func diffFaultTraces(t *testing.T, name string, want, got *faultTrace) {
	t.Helper()
	if len(want.set) == 0 {
		t.Fatalf("%s: degenerate workload, no results", name)
	}
	if len(got.set) != len(want.set) {
		t.Errorf("%s: %d distinct results, want %d", name, len(got.set), len(want.set))
		return
	}
	for k, v := range want.set {
		if got.set[k] != v {
			t.Errorf("%s: result %s ×%d, want ×%d", name, k, got.set[k], v)
			return
		}
	}
	if len(got.ks) != len(want.ks) {
		t.Errorf("%s: %d adaptations, want %d", name, len(got.ks), len(want.ks))
		return
	}
	for i := range want.ks {
		if got.ks[i] != want.ks[i] {
			t.Errorf("%s: adaptation %d = %s, want %s", name, i, got.ks[i], want.ks[i])
			return
		}
	}
}

// mix3 is an equi + generic condition: an equi chain with a deterministic
// arbitrary-code predicate on top.
func mix3() *Condition {
	return Cross(3).Equi(0, 0, 1, 0).Equi(1, 0, 2, 0).
		Where([]int{1, 2}, func(assign []*Tuple) bool {
			return assign[1].Attr(1) <= assign[2].Attr(1)+120
		})
}

// mix4 is an equi + band condition over four streams.
func mix4() *Condition {
	return Cross(4).Equi(0, 0, 1, 0).Band(1, 1, 2, 1, 8).Equi(2, 0, 3, 0)
}

// planFor compiles spec for the condition built by mk.
func planFor(t *testing.T, spec string, mk func() *Condition, windows []Time) (*Condition, *Plan) {
	t.Helper()
	cond := mk()
	p, err := ParsePlan(spec, cond, windows, 0)
	if err != nil {
		t.Fatalf("plan %q: %v", spec, err)
	}
	return cond, p
}

// TestJoinCheckpointRoundTrip: for every plannable shape, pushing half the
// feed, checkpointing through the gob wire format, restoring, and pushing
// the rest reproduces the uninterrupted run bit-for-bit — result multiset,
// K trajectory, AvgK and Results. Adaptive shapes checkpoint at an
// adaptation boundary (where tree captures are trajectory-exact); the
// static-K shape checkpoints mid-stream.
func TestJoinCheckpointRoundTrip(t *testing.T) {
	defer leakcheck.Check(t)
	type tc struct {
		name    string
		spec    string
		mk      func() *Condition
		m       int
		opt     Options
		rounds  int
		seed    int64
		domain  int
		atAdapt bool // checkpoint at an adaptation boundary
	}
	adaptive := Options{Gamma: 0.9, Period: Second, Interval: 200 * Millisecond}
	cases := []tc{
		{"flat-equi3", "flat", mix3, 3, adaptive, 1200, 17, 14, true},
		{"shard4-equi3", "shard:4", mix3, 3, adaptive, 1200, 17, 14, true},
		{"shard8-equi3", "shard:8", mix3, 3, adaptive, 1000, 19, 14, true},
		{"tree-equi3", "tree", mix3, 3, adaptive, 1200, 17, 14, true},
		{"treeshard2-equi3", "tree-shard:2", mix3, 3, adaptive, 1200, 17, 14, true},
		{"shard2-mix4", "shard:2", mix4, 4, adaptive, 900, 23, 12, true},
		{"tree-mix4", "tree", mix4, 4, adaptive, 900, 23, 12, true},
		{"bushy-mix4", "((0 1)x2 (2 3))x2", mix4, 4, adaptive, 900, 23, 12, true},
		{"static-tree-mix4", "tree-shard:2", mix4, 4,
			Options{Policy: StaticSlack, StaticK: 1600}, 700, 29, 12, false},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			defer leakcheck.Check(t)
			windows := make([]Time, c.m)
			for i := range windows {
				windows[i] = 700
			}
			in := faultWorkload(c.m, c.rounds, c.seed, c.domain)

			// Reference: one uninterrupted run.
			ref := newFaultTrace()
			cond, p := planFor(t, c.spec, c.mk, windows)
			jr := NewJoin(cond, windows, c.opt, append(ref.opts(), WithPlan(p))...)
			for _, e := range in {
				jr.Push(e)
			}
			jr.Close()
			wantResults, wantAvgK := jr.Results(), jr.AvgK()

			// Interrupted run: checkpoint after half the feed (at the next
			// adaptation boundary on adaptive shapes), round-trip the
			// snapshot through gob, restore, push the rest.
			got := newFaultTrace()
			cond, p = planFor(t, c.spec, c.mk, windows)
			boundary := false
			got.onAdapt = func() { boundary = true }
			j1 := NewJoin(cond, windows, c.opt, append(got.opts(), WithPlan(p))...)
			cut := -1
			for i, e := range in {
				j1.Push(e)
				if i >= len(in)/2 && (!c.atAdapt || boundary) {
					cut = i + 1
					break
				}
			}
			if cut < 0 {
				t.Fatal("no checkpoint point reached")
			}
			snap, err := j1.Checkpoint()
			if err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			var buf bytes.Buffer
			if err := snap.Encode(&buf); err != nil {
				t.Fatalf("encode: %v", err)
			}
			snap2, err := ReadSnapshot(&buf)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if snap2.Signature() != snap.Signature() {
				t.Fatalf("signature changed over the wire: %q vs %q", snap2.Signature(), snap.Signature())
			}
			got.mute = true // the abandoned original's flush must not record
			j1.Close()
			got.mute = false

			cond2, p2 := planFor(t, c.spec, c.mk, windows)
			j2, err := Restore(snap2, cond2, windows, c.opt, append(got.opts(), WithPlan(p2))...)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			for _, e := range in[cut:] {
				j2.Push(e)
			}
			j2.Close()

			diffFaultTraces(t, c.name, ref, got)
			if j2.Results() != wantResults {
				t.Errorf("Results = %d, want %d", j2.Results(), wantResults)
			}
			if j2.AvgK() != wantAvgK {
				t.Errorf("AvgK = %v, want %v", j2.AvgK(), wantAvgK)
			}
		})
	}
}

// fastBackoff is a test restart schedule with no real sleeping.
func fastBackoff(retries int) Backoff {
	return Backoff{Base: time.Millisecond, Cap: 4 * time.Millisecond,
		Retries: retries, Seed: 7, Sleep: func(time.Duration) {}}
}

// TestJoinSupervisedRecovery: a supervised join whose workers are killed by
// the deterministic injector recovers from its boundary checkpoints and
// still delivers the healthy run's results and K trajectory exactly once.
func TestJoinSupervisedRecovery(t *testing.T) {
	defer leakcheck.Check(t)
	opt := Options{Gamma: 0.9, Period: Second, Interval: 200 * Millisecond}
	windows := []Time{700, 700, 700}
	in := faultWorkload(3, 1200, 17, 14)
	for _, spec := range []string{"shard:4", "tree-shard:2"} {
		t.Run(spec, func(t *testing.T) {
			defer leakcheck.Check(t)
			ref := newFaultTrace()
			cond, p := planFor(t, spec, mix3, windows)
			jr := NewJoin(cond, windows, opt, append(ref.opts(), WithPlan(p))...)
			for _, e := range in {
				jr.Push(e)
			}
			jr.Close()

			got := newFaultTrace()
			cond, p = planFor(t, spec, mix3, windows)
			inj := NewInjector().PanicAt(0, 400).PanicAt(1, 2500)
			j := NewJoin(cond, windows, opt, append(got.opts(),
				WithPlan(p),
				WithInjector(inj),
				WithSupervision(Supervision{Backoff: fastBackoff(3)}))...)
			for _, e := range in {
				j.Push(e)
			}
			j.Close()
			if err := j.Err(); err != nil {
				t.Fatalf("terminal error: %v", err)
			}
			if j.Restarts() == 0 {
				t.Fatal("injector fired but no restarts happened")
			}
			diffFaultTraces(t, spec, ref, got)
		})
	}
}

// TestJoinTerminalError: when the retry budget is exhausted, the join goes
// terminal with a typed *JoinError chain instead of crashing, and every
// subsequent operation reports it.
func TestJoinTerminalError(t *testing.T) {
	defer leakcheck.Check(t)
	cond, p := planFor(t, "shard:2", mix3, []Time{700, 700, 700})
	inj := NewInjector().PanicAt(0, 200)
	j := NewJoin(cond, []Time{700, 700, 700},
		Options{Gamma: 0.9, Period: Second, Interval: 200 * Millisecond},
		WithPlan(p), WithInjector(inj),
		WithSupervision(Supervision{Backoff: Backoff{Base: time.Millisecond, Retries: 0, Sleep: func(time.Duration) {}}}))
	in := faultWorkload(3, 400, 17, 14)
	for _, e := range in {
		j.Push(e) // must not panic; goes terminal mid-stream
	}
	err := j.Err()
	if err == nil {
		t.Fatal("retry budget 0 with an injected panic: want a terminal error")
	}
	var je *JoinError
	if !errors.As(err, &je) {
		t.Fatalf("Err() = %T, want *JoinError", err)
	}
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("cause chain %v carries no *WorkerError", err)
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("cause chain %v does not reach the injected fault", err)
	}
	if perr := j.TryPush(in[0]); !errors.Is(perr, err) {
		t.Fatalf("TryPush after terminal = %v, want the terminal error", perr)
	}
	if _, cerr := j.Checkpoint(); cerr == nil {
		t.Fatal("Checkpoint after terminal must fail")
	}
	j.Close() // no-op, must not panic
}

// TestJoinIngestPolicies: the public ingest bound enforces occupancy, types
// its refusals, and keeps the recall estimate consistent under shedding.
func TestJoinIngestPolicies(t *testing.T) {
	defer leakcheck.Check(t)
	windows := []Time{700, 700, 700}
	opt := Options{Gamma: 0.9, Period: Second, Interval: 200 * Millisecond}
	in := faultWorkload(3, 900, 31, 14)

	t.Run("error", func(t *testing.T) {
		defer leakcheck.Check(t)
		cond, p := planFor(t, "shard:2", mix3, windows)
		j := NewJoin(cond, windows, opt, WithPlan(p), WithIngestBound(40, IngestError))
		refused := int64(0)
		for _, e := range in {
			if err := j.TryPush(e); err != nil {
				if !errors.Is(err, ErrOverload) {
					t.Fatalf("TryPush = %v, want ErrOverload", err)
				}
				refused++
			}
			if n := j.BufferedTuples(); n > 40 {
				t.Fatalf("occupancy %d over the bound", n)
			}
		}
		if refused == 0 {
			t.Fatal("bound 40 never refused anything")
		}
		if j.Dropped() != refused {
			t.Fatalf("Dropped = %d, want %d", j.Dropped(), refused)
		}
		j.Close()
	})

	t.Run("shed", func(t *testing.T) {
		defer leakcheck.Check(t)
		// The unbounded run is the shed run's denominator: with ample K the
		// estimator's cumulative true-size tracking is shared, so the delta
		// between the two result counts is what shedding actually cost.
		condU, pU := planFor(t, "shard:2", mix3, windows)
		ju := NewJoin(condU, windows, opt, WithPlan(pU), WithSupervision(Supervision{}))
		for _, e := range in {
			if err := ju.TryPush(e); err != nil {
				t.Fatalf("unbounded: %v", err)
			}
		}
		ju.Close()

		cond, p := planFor(t, "shard:2", mix3, windows)
		j := NewJoin(cond, windows, opt, WithPlan(p), WithIngestBound(30, IngestShed))
		for _, e := range in {
			if err := j.TryPush(e); err != nil {
				t.Fatalf("shed policy refused an arrival: %v", err)
			}
			if n := j.BufferedTuples(); n > 30 {
				t.Fatalf("occupancy %d over the bound", n)
			}
		}
		rec := j.RecallEstimate()
		if rec <= 0 || rec > 1 {
			t.Fatalf("recall estimate %v outside (0,1]", rec)
		}
		if rec == 1 {
			t.Fatal("shedding at bound 30 must show up in the recall estimate")
		}
		// The estimate must stay consistent with what shedding actually
		// delivered: produced-under-shedding over the unbounded run's
		// produced, within the true-size estimator's usual few-percent
		// error (generous 0.15 band against workload noise).
		actual := float64(j.Results()) / float64(ju.Results())
		if d := rec - actual; d < -0.15 || d > 0.15 {
			t.Fatalf("recall estimate %.4f vs actual %.4f (delta %.4f): shed losses not accounted",
				rec, actual, d)
		}
		j.Close()
	})

	t.Run("block", func(t *testing.T) {
		defer leakcheck.Check(t)
		cond, p := planFor(t, "shard:2", mix3, windows)
		j := NewJoin(cond, windows, opt, WithPlan(p), WithIngestBound(30, IngestBlock))
		for _, e := range in {
			if err := j.TryPush(e); err != nil {
				t.Fatalf("block policy refused an arrival: %v", err)
			}
		}
		if j.Dropped() != 0 {
			t.Fatal("block policy must not drop")
		}
		j.Close()
	})
}

// TestJoinTryPushClosed: TryPush reports ErrClosed after Close while Push
// keeps the documented lifecycle panic.
func TestJoinTryPushClosed(t *testing.T) {
	defer leakcheck.Check(t)
	mk := func(jopts ...JoinOption) *Join {
		return NewJoin(EquiChain(2, 0), []Time{Second, Second}, Options{}, jopts...)
	}
	for _, sup := range []bool{false, true} {
		var j *Join
		if sup {
			j = mk(WithSupervision(Supervision{}))
		} else {
			j = mk()
		}
		tp := &Tuple{TS: 1000, Src: 0, Attrs: []float64{1}}
		if err := j.TryPush(tp); err != nil {
			t.Fatalf("healthy TryPush (sup=%v) = %v", sup, err)
		}
		j.Close()
		if err := j.TryPush(tp); !errors.Is(err, ErrClosed) {
			t.Fatalf("TryPush after Close (sup=%v) = %v, want ErrClosed", sup, err)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Push after Close (sup=%v) must keep the lifecycle panic", sup)
				}
			}()
			j.Push(tp)
		}()
	}
}

// TestRestoreMismatch: a snapshot restores only into its own deployment.
func TestRestoreMismatch(t *testing.T) {
	defer leakcheck.Check(t)
	windows := []Time{700, 700, 700}
	opt := Options{Policy: StaticSlack, StaticK: 1500}
	cond, p := planFor(t, "flat", mix3, windows)
	j := NewJoin(cond, windows, opt, WithPlan(p))
	for _, e := range faultWorkload(3, 300, 17, 14) {
		j.Push(e)
	}
	snap, err := j.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Different shape.
	cond2, p2 := planFor(t, "shard:2", mix3, windows)
	if _, err := Restore(snap, cond2, windows, opt, WithPlan(p2)); !errors.Is(err, ErrRestoreMismatch) {
		t.Fatalf("restore into a different shape = %v, want ErrRestoreMismatch", err)
	}
	// Different windows.
	w2 := []Time{900, 900, 900}
	cond3, p3 := planFor(t, "flat", mix3, w2)
	if _, err := Restore(snap, cond3, w2, opt, WithPlan(p3)); !errors.Is(err, ErrRestoreMismatch) {
		t.Fatalf("restore with different windows = %v, want ErrRestoreMismatch", err)
	}
	// Garbage bytes.
	if _, err := ReadSnapshot(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("ReadSnapshot on garbage must fail")
	}
}

// TestRestoreIntoSupervised: a snapshot from an unsupervised join restores
// into a supervised one (and doubles as its first recovery point).
func TestRestoreIntoSupervised(t *testing.T) {
	defer leakcheck.Check(t)
	windows := []Time{700, 700, 700}
	opt := Options{Gamma: 0.9, Period: Second, Interval: 200 * Millisecond}
	in := faultWorkload(3, 1200, 17, 14)

	ref := newFaultTrace()
	cond, p := planFor(t, "shard:2", mix3, windows)
	jr := NewJoin(cond, windows, opt, append(ref.opts(), WithPlan(p))...)
	for _, e := range in {
		jr.Push(e)
	}
	jr.Close()

	got := newFaultTrace()
	cond, p = planFor(t, "shard:2", mix3, windows)
	j1 := NewJoin(cond, windows, opt, append(got.opts(), WithPlan(p))...)
	cut := len(in) / 2
	for _, e := range in[:cut] {
		j1.Push(e)
	}
	snap, err := j1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	got.mute = true
	j1.Close()
	got.mute = false

	// Restore under supervision, with a worker kill later in the feed: the
	// restored snapshot is the recovery point until the next boundary.
	cond2, p2 := planFor(t, "shard:2", mix3, windows)
	inj := NewInjector().PanicAt(0, 300)
	j2, err := Restore(snap, cond2, windows, opt, append(got.opts(),
		WithPlan(p2), WithInjector(inj),
		WithSupervision(Supervision{Backoff: fastBackoff(3)}))...)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range in[cut:] {
		j2.Push(e)
	}
	j2.Close()
	if err := j2.Err(); err != nil {
		t.Fatalf("terminal: %v", err)
	}
	if j2.Restarts() == 0 {
		t.Fatal("injector fired but no restarts happened")
	}
	diffFaultTraces(t, "restore-into-supervised", ref, got)
}
