package qdhj

import (
	"fmt"
	"repro/internal/leakcheck"
	"strings"
	"testing"

	"repro/internal/gen"
)

func star4() *Condition { return Star(4, []int{0, 1, 2}, []int{0, 0, 0}) }

func windows4() []Time { return []Time{Second, Second, Second, Second} }

// TestAutoPlanStarExplain: the public acceptance surface — a star-shaped
// 4-way condition auto-plans to stage-wise sharding with no broadcast route
// in the explained plan.
func TestAutoPlanStarExplain(t *testing.T) {
	leakcheck.Check(t)
	p := AutoPlan(star4(), windows4(), PlanHints{Shards: 4})
	out := Explain(p)
	if strings.Contains(out, "broadcast") {
		t.Fatalf("explained plan contains a broadcast route:\n%s", out)
	}
	if !strings.Contains(out, "shard ×4") || !strings.Contains(out, "stage") {
		t.Fatalf("explained plan is not stage-wise sharded:\n%s", out)
	}
	t.Log("\n" + out)
}

// TestJoinWithPlanDifferential: a Join running the auto-planned star
// deployment produces the flat Join's result multiset bit-for-bit (full
// buffering, so disorder is covered).
func TestJoinWithPlanDifferential(t *testing.T) {
	leakcheck.Check(t)
	in := gen.SparseStar4(1500, 7, 40, [4]Time{800, 800, 800, 800})
	maxD, _ := in.MaxDelay()
	opt := Options{Policy: StaticSlack, StaticK: maxD}

	run := func(cond *Condition, jopts ...JoinOption) map[string]int {
		set := map[string]int{}
		jopts = append(jopts, WithResults(func(r Result) {
			var b strings.Builder
			for _, tp := range r.Tuples {
				fmt.Fprintf(&b, "%d:%d,", tp.Src, tp.Seq)
			}
			set[b.String()]++
		}))
		j := NewJoin(cond, windows4(), opt, jopts...)
		for _, e := range in.Clone() {
			j.Push(e)
		}
		j.Close()
		return set
	}

	want := run(star4())
	if len(want) == 0 {
		t.Fatal("degenerate workload")
	}
	cond := star4()
	p := AutoPlan(cond, windows4(), PlanHints{Shards: 4})
	got := run(cond, WithPlan(p))
	if len(got) != len(want) {
		t.Fatalf("planned join: %d distinct results, flat %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("planned join diverges at %s: %d vs %d", k, got[k], v)
		}
	}

	// WithAutoPlan + WithShards resolves to the same shape.
	got2 := run(star4(), WithAutoPlan(), WithShards(4))
	if len(got2) != len(want) {
		t.Fatalf("auto-planned join: %d distinct results, flat %d", len(got2), len(want))
	}
}

// TestJoinTreePlanAdaptive: an adaptive tree-shaped Join exposes per-stage
// Ks and a sane snapshot through the flat Join API.
func TestJoinTreePlanAdaptive(t *testing.T) {
	leakcheck.Check(t)
	in := gen.SparseEqui3(4000, 11, 300, [3]Time{150, 150, 2500})
	cond := EquiChain(3, 0)
	p, err := ParsePlan("tree-shard:2", cond, []Time{2 * Second, 2 * Second, 2 * Second}, 0)
	if err != nil {
		t.Fatal(err)
	}
	j := NewJoin(cond, []Time{2 * Second, 2 * Second, 2 * Second},
		Options{Gamma: 0.9, Period: 10 * Second, Interval: Second}, WithPlan(p))
	for _, e := range in {
		j.Push(e)
	}
	j.Close()
	if j.Results() == 0 {
		t.Fatal("no results")
	}
	if j.Adaptations() == 0 {
		t.Fatal("no adaptation steps")
	}
	if n := len(j.CurrentKs()); n != 2 {
		t.Fatalf("CurrentKs has %d scopes, want one per stage (2)", n)
	}
	if j.CurrentK() < j.CurrentKs()[0] {
		t.Error("CurrentK must be the max over stage Ks")
	}
	snap := j.Snapshot()
	if len(snap.Streams) != 3 || snap.GlobalT == 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Streams[2].MaxDelayRecent <= snap.Streams[0].MaxDelayRecent {
		t.Error("stream 2 is the heavily delayed one; snapshot must show it")
	}
}

// TestSnapshotStats: the read-only snapshot reports coherent measured
// statistics — plausible rates and clocks per stream, and per-edge
// selectivity estimates near the workload's true key density.
func TestSnapshotStats(t *testing.T) {
	leakcheck.Check(t)
	in := gen.SparseEqui3(1500, 3, 100, [3]Time{500, 500, 500})
	j := NewJoin(EquiChain(3, 0), []Time{Second, Second, Second}, Options{})
	for _, e := range in {
		j.Push(e)
	}
	j.Close()
	snap := j.Snapshot()
	if len(snap.Streams) != 3 {
		t.Fatalf("snapshot has %d streams, want 3", len(snap.Streams))
	}
	for i, s := range snap.Streams {
		if s.Rate < 0.05 || s.Rate > 0.2 {
			t.Fatalf("stream %d rate %.4f tuples/ms, true value 0.1", i, s.Rate)
		}
		if s.LocalT <= 0 || s.LocalT > snap.GlobalT {
			t.Fatalf("stream %d clock %v outside (0, GlobalT=%v]", i, s.LocalT, snap.GlobalT)
		}
	}
	if snap.MaxDelayAllTime <= 0 || snap.MaxDelayAllTime > 500 {
		t.Fatalf("max delay %v, workload injects up to 500", snap.MaxDelayAllTime)
	}
	if len(snap.Edges) != 2 {
		t.Fatalf("equi chain over 3 streams has 2 edges, snapshot has %d", len(snap.Edges))
	}
	for _, e := range snap.Edges {
		if e.Selectivity < 0.002 || e.Selectivity > 0.05 {
			t.Fatalf("edge (%d,%d) selectivity %.5f, true key density 0.01", e.Left, e.Right, e.Selectivity)
		}
	}
}

// TestWithPlanMismatchPanics: a plan built for a different condition value
// must be rejected, not silently miscompiled.
func TestWithPlanMismatchPanics(t *testing.T) {
	leakcheck.Check(t)
	p := AutoPlan(EquiChain(2, 0), []Time{Second, Second}, PlanHints{})
	defer func() {
		if recover() == nil {
			t.Fatal("WithPlan with a foreign condition must panic")
		}
	}()
	NewJoin(EquiChain(2, 0), []Time{Second, Second}, Options{}, WithPlan(p))
}
