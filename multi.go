package qdhj

// Multi-query execution: N joins over the same m streams execute against
// shared ingest state — window rings, hash/range indexes, K-slack buffers
// and statistics — maintained once per arrival instead of once per query,
// with one probe pass fanning results out to every query (see
// internal/multi and DESIGN.md §13). Every query's results and buffer-size
// trajectory are bit-for-bit those of a standalone Join fed the same
// arrivals; sharing only amortizes the work of computing them.

import (
	"fmt"
	"strings"

	"repro/internal/join"
	"repro/internal/multi"
)

// MultiJoin executes any number of concurrent join queries over one set of
// m input streams, sharing ingest, indexing and probe work across queries
// wherever results provably cannot change. It is not safe for concurrent
// use; feed it from one goroutine.
//
// Queries register with Add — before the first Push or at any later point
// (a late query starts cold at the current input position, exactly like a
// standalone Join started there) — and detach with Remove. Push feeds every
// registered query; Close flushes all shared buffers at end of input.
type MultiJoin struct {
	en      *multi.Engine
	queries []*MultiQuery
	closed  bool
}

// NewMultiJoin creates a multi-query join over m input streams.
func NewMultiJoin(m int) *MultiJoin {
	return &MultiJoin{en: multi.NewEngine(m)}
}

// MultiQuery is one registered query's handle.
type MultiQuery struct {
	mj      *MultiJoin
	q       *multi.Query
	out     chan Result
	hasSink bool
	removed bool
}

// Add registers one query: a join condition, per-stream window extents, and
// the same disorder-handling Options a standalone Join takes. The supported
// join options are WithResults, WithResultCounts and WithAdaptHook;
// deployment-shape options (WithShards, WithBatchSize, WithPlan,
// WithAutoPlan, WithSupervision, WithOnlineReplan) panic — the multi-query
// engine is its own deployment shape.
//
// Add may be called while the join is running; the new query sees only
// arrivals from this point on. Adding to a closed MultiJoin panics.
func (mj *MultiJoin) Add(cond *Condition, windows []Time, opt Options, jopts ...JoinOption) *MultiQuery {
	var jo joinOpts
	for _, o := range jopts {
		o(&jo)
	}
	switch {
	case jo.shards != 0:
		panic("qdhj: WithShards is not supported on a MultiJoin — sharding and multi-query sharing are distinct deployment shapes; use one Join per shard group or a MultiJoin, not both")
	case jo.batch != 0:
		panic("qdhj: WithBatchSize is not supported on a MultiJoin — the shared probe kernel amortizes per-tuple dispatch across queries instead")
	case jo.plan != nil || jo.autoPlan:
		panic("qdhj: WithPlan/WithAutoPlan are not supported on a MultiJoin — the multi-query engine is its own deployment shape")
	case jo.supervised:
		panic("qdhj: WithSupervision is not supported on a MultiJoin")
	case jo.replan != nil:
		panic("qdhj: WithOnlineReplan is not supported on a MultiJoin")
	}
	cfg := execConfig(opt, &jo)
	q := mj.en.Add(multi.QueryConfig{
		Cond:       cond,
		Windows:    windows,
		Adapt:      cfg.Adapt,
		Policy:     cfg.Policy,
		StaticK:    cfg.StaticK,
		Emit:       cfg.Emit,
		EmitCounts: cfg.EmitCounts,
		OnAdapt:    cfg.OnAdapt,
	})
	mq := &MultiQuery{mj: mj, q: q, hasSink: jo.emit != nil}
	mj.queries = append(mj.queries, mq)
	return mq
}

// Remove detaches a query at the current input position: its compiled
// residuals and feedback loop are freed while the shared windows keep
// serving the remaining queries. The query's results are exactly those of a
// standalone Join stopped (not Closed — nothing is flushed) at this point.
// Its RunChannel channel, if any, is closed. Removing an unknown or
// already-removed query panics, as does removing from a closed MultiJoin.
func (mj *MultiJoin) Remove(mq *MultiQuery) {
	if mq == nil || mq.mj != mj || mq.removed {
		panic("qdhj: Remove of an unknown or already-removed query")
	}
	mj.en.Remove(mq.q)
	mq.removed = true
	for i, other := range mj.queries {
		if other == mq {
			mj.queries = append(mj.queries[:i], mj.queries[i+1:]...)
			break
		}
	}
	if mq.out != nil {
		close(mq.out)
		mq.out = nil
	}
}

// Push feeds one arriving tuple to every registered query. Pushing into a
// closed MultiJoin panics.
func (mj *MultiJoin) Push(t *Tuple) { mj.en.Push(t) }

// Close flushes all shared disorder-handling buffers at end of input and
// closes every query's RunChannel channel. The MultiJoin must not be pushed
// to afterwards; closing twice panics.
func (mj *MultiJoin) Close() {
	mj.en.Close()
	mj.closed = true
	for _, mq := range mj.queries {
		if mq.out != nil {
			close(mq.out)
			mq.out = nil
		}
	}
}

// Queries returns the number of currently registered queries.
func (mj *MultiJoin) Queries() int { return mj.en.Queries() }

// QueryStats is one query's entry in a MultiJoin snapshot.
type QueryStats struct {
	// ID is the engine-assigned query id (registration order, from 0).
	ID int64
	// Epoch is the number of tuples the MultiJoin had consumed when the
	// query registered; 0 for queries registered before the first Push.
	Epoch int64
	// Results is the number of results the query has derived.
	Results int64
	// CurrentK is the input-sorting buffer size currently applied.
	CurrentK Time
	// AvgK is the average decided buffer size (the latency metric).
	AvgK float64
	// Adaptations counts the query's buffer-size adaptation steps.
	Adaptations int64
	// Recall is the query's run-level recall estimate.
	Recall float64
}

// Snapshot reports per-query statistics for every registered query, in
// registration order.
func (mj *MultiJoin) Snapshot() []QueryStats {
	out := make([]QueryStats, 0, len(mj.queries))
	for _, mq := range mj.queries {
		out = append(out, QueryStats{
			ID:          mq.q.ID(),
			Epoch:       mq.q.Epoch(),
			Results:     mq.q.Results(),
			CurrentK:    mq.q.CurrentK(),
			AvgK:        mq.q.AvgK(),
			Adaptations: mq.q.Adaptations(),
			Recall:      mq.q.RecallEstimate(),
		})
	}
	return out
}

// Explain renders the sharing structure: one line per shared ingest lane
// (windows × buffer-trajectory class) with its member queries, and one line
// per probe class (shared equi/band prefix) with its residual classes.
func (mj *MultiJoin) Explain() string {
	var b strings.Builder
	groups := mj.en.Groups()
	fmt.Fprintf(&b, "multi-join: %d queries, %d shared lanes\n", mj.en.Queries(), len(groups))
	for gi, g := range groups {
		fmt.Fprintf(&b, "lane %d (epoch %d, %s): queries %v\n", gi, g.Epoch, g.Key, g.Queries)
		for ci, c := range g.Classes {
			fmt.Fprintf(&b, "  probe class %d [%s]\n", ci, c.Skeleton)
			for _, r := range c.Residuals {
				fmt.Fprintf(&b, "    residual ×%d [%s]\n", r.Members, r.Sig)
			}
		}
	}
	return b.String()
}

// ID returns the query's engine-assigned id (registration order, from 0).
func (mq *MultiQuery) ID() int64 { return mq.q.ID() }

// Results returns the number of results this query has derived.
func (mq *MultiQuery) Results() int64 { return mq.q.Results() }

// CurrentK returns the buffer size currently applied to this query.
func (mq *MultiQuery) CurrentK() Time { return mq.q.CurrentK() }

// AvgK returns the query's average decided buffer size.
func (mq *MultiQuery) AvgK() float64 { return mq.q.AvgK() }

// Adaptations returns the query's buffer-size adaptation step count.
func (mq *MultiQuery) Adaptations() int64 { return mq.q.Adaptations() }

// RecallEstimate reports the query's run-level recall estimate.
func (mq *MultiQuery) RecallEstimate() float64 { return mq.q.RecallEstimate() }

// RunChannel returns a channel delivering this query's results in
// production order. Unlike Join.RunChannel it does not consume the input —
// the MultiJoin's single input is driven by Push — so results are produced
// synchronously during Push and Close: drain the channel from another
// goroutine (it is buffered, but a full buffer blocks Push). The channel
// closes when the query is removed or the MultiJoin is closed.
//
// The query must have no WithResults sink and RunChannel must be called at
// most once; both conflicts panic.
func (mq *MultiQuery) RunChannel() <-chan Result {
	if mq.hasSink {
		panic("qdhj: RunChannel on a query that already has a results sink (WithResults at Add, or an earlier RunChannel) — results would silently stop reaching it; use one sink per query")
	}
	if mq.removed {
		panic("qdhj: RunChannel on a removed query")
	}
	mq.hasSink = true
	out := make(chan Result, 256)
	mq.out = out
	mq.q.SetEmit(func(r Result) { out <- r })
	return out
}

// multiExplainClassInfo re-exports the kernel's explain structures for
// callers that want programmatic access to the sharing structure.
type (
	// MultiGroupInfo describes one shared ingest lane.
	MultiGroupInfo = multi.GroupInfo
	// MultiClassInfo describes one shared probe class.
	MultiClassInfo = join.MultiClassInfo
)

// SharingInfo returns the sharing structure in programmatic form: one entry
// per shared ingest lane, each listing its probe classes.
func (mj *MultiJoin) SharingInfo() []MultiGroupInfo { return mj.en.Groups() }
