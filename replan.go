package qdhj

// Online re-planning: the deployment planner run continuously. Where
// AutoPlan picks a shape once from pre-run hints, WithOnlineReplan measures
// the statistics the cost model wants — per-stream arrival rates and
// per-edge selectivities — on the running join, re-plans every measurement
// period, and live-migrates the executor across shapes when the measured
// winner beats the deployed shape by enough margin for long enough. The
// migration preserves exactly-once delivery: the result stream a sink
// observes is the same multiset an uninterrupted run would deliver.

import (
	"repro/internal/plan"
	"repro/internal/replan"
)

// MigrationEvent reports one completed live plan migration: the old and new
// shape signatures, the stream-time boundary it quiesced at, the replay
// depth, and the wall-clock pause it imposed on the driver. FromExplain and
// ToExplain carry the full Explain rendering of both plans.
type MigrationEvent = replan.Event

// ReplanOptions configures WithOnlineReplan. The zero value measures over
// one-minute periods, requires a 25% modeled-cost improvement, and dwells
// at least two periods between migrations.
type ReplanOptions struct {
	// Hints seeds the cost model where nothing is measured yet; measured
	// values override the hinted ones as they become available.
	Hints PlanHints
	// Period is the measurement/re-planning cadence in stream time
	// (default: one minute, the paper's measurement period default).
	Period Time
	// MinDwell is the minimum stream time between two migrations
	// (default: 2×Period).
	MinDwell Time
	// Improvement is the cost-ratio hysteresis: migrate only when the
	// candidate's modeled cost times Improvement still undercuts the
	// deployed shape's (default: 1.25).
	Improvement float64
	// OnMigrate observes every completed migration.
	OnMigrate func(MigrationEvent)
}

// WithOnlineReplan turns on online re-planning. The join starts on its
// configured deployment (WithPlan, WithAutoPlan, WithShards, or the flat
// default) and migrates between plannable shapes as the measured statistics
// move.
//
// Results are delivered through an exactly-once gate, so the join always
// materializes them even when only WithResultCounts is registered.
// WithOnlineReplan cannot be combined with WithSupervision: the supervised
// runtime pins one deployment shape for its checkpoint/replay recovery.
func WithOnlineReplan(o ReplanOptions) JoinOption {
	return func(jo *joinOpts) { jo.replan = &o }
}

// newController wires the re-planning loop of one NewJoin call.
func newController(g *plan.Graph, cfg plan.ExecConfig, o *ReplanOptions) *replan.Controller {
	return replan.New(g, cfg, replan.Options{
		Hints: plan.Hints{
			Shards:      o.Hints.Shards,
			Selectivity: o.Hints.Selectivity,
			Rates:       o.Hints.Rates,
		},
		Period:      o.Period,
		MinDwell:    o.MinDwell,
		Improvement: o.Improvement,
		OnEvent:     o.OnMigrate,
	})
}

// Migrations returns how many live plan migrations have completed; zero on
// joins without WithOnlineReplan.
func (j *Join) Migrations() int {
	if j.rc == nil {
		return 0
	}
	return j.rc.Migrations()
}

// CurrentPlan returns the currently deployed plan — the initial deployment,
// or the latest migration target under WithOnlineReplan.
func (j *Join) CurrentPlan() *Plan {
	if j.rc != nil {
		return &Plan{g: j.rc.Graph()}
	}
	return &Plan{g: j.g}
}
