package qdhj

import (
	"math/rand"
	"repro/internal/leakcheck"
	"testing"

	"repro/internal/oracle"
	"repro/internal/stream"
)

// feed builds a 2-stream equi workload with some disorder.
func feed(n int, seed int64) []*Tuple {
	rng := rand.New(rand.NewSource(seed))
	var out []*Tuple
	var seq uint64
	ts := Time(3000)
	for i := 0; i < n; i++ {
		ts += 10
		for src := 0; src < 2; src++ {
			t := ts
			if rng.Intn(4) == 0 {
				t -= Time(rng.Intn(2000))
			}
			out = append(out, &Tuple{TS: t, Seq: seq, Src: src,
				Attrs: []float64{float64(rng.Intn(10))}})
			seq++
		}
	}
	return out
}

func TestJoinPolicies(t *testing.T) {
	leakcheck.Check(t)
	in := feed(3000, 1)
	w := []Time{Second, Second}
	truth := oracle.TrueResults(EquiChain(2, 0), []stream.Time{Second, Second}, cloneBatch(in))

	run := func(opt Options) int64 {
		j := NewJoin(EquiChain(2, 0), w, opt)
		for _, e := range cloneBatch(in) {
			j.Push(e)
		}
		j.Close()
		return j.Results()
	}

	nok := run(Options{Policy: NoSlack})
	maxk := run(Options{Policy: MaxSlack})
	model := run(Options{Gamma: 0.9, Period: 10 * Second})

	if nok >= truth.Total() {
		t.Fatalf("NoSlack should lose results: %d of %d", nok, truth.Total())
	}
	if float64(maxk) < 0.97*float64(truth.Total()) {
		t.Fatalf("MaxSlack should be near-complete: %d of %d", maxk, truth.Total())
	}
	if model <= nok || model > maxk {
		t.Fatalf("quality-driven results %d should lie between NoSlack %d and MaxSlack %d",
			model, nok, maxk)
	}
}

func TestJoinLatencyOrdering(t *testing.T) {
	leakcheck.Check(t)
	in := feed(4000, 2)
	w := []Time{Second, Second}

	avgK := func(opt Options) float64 {
		j := NewJoin(EquiChain(2, 0), w, opt)
		for _, e := range cloneBatch(in) {
			j.Push(e)
		}
		j.Close()
		return j.AvgK()
	}
	low := avgK(Options{Gamma: 0.8, Period: 10 * Second})
	high := avgK(Options{Gamma: 0.99, Period: 10 * Second})
	maxk := avgK(Options{Policy: MaxSlack})
	if !(low <= high && high <= maxk) {
		t.Fatalf("avg K ordering violated: Γ=0.8→%v, Γ=0.99→%v, MaxSlack→%v", low, high, maxk)
	}
}

func TestStaticSlackAppliesImmediately(t *testing.T) {
	leakcheck.Check(t)
	j := NewJoin(EquiChain(2, 0), []Time{Second, Second},
		Options{Policy: StaticSlack, StaticK: 500})
	if j.CurrentK() != 500 {
		t.Fatalf("CurrentK = %v before first adaptation, want 500", j.CurrentK())
	}
}

func TestWithResultsSink(t *testing.T) {
	leakcheck.Check(t)
	var got []Result
	j := NewJoin(EquiChain(2, 0), []Time{Second, Second},
		Options{Policy: StaticSlack, StaticK: 2 * Second},
		WithResults(func(r Result) { got = append(got, r) }),
	)
	j.Push(&Tuple{TS: 1000, Seq: 0, Src: 0, Attrs: []float64{7}})
	j.Push(&Tuple{TS: 1100, Seq: 1, Src: 1, Attrs: []float64{7}})
	j.Close()
	if len(got) != 1 {
		t.Fatalf("results = %d, want 1", len(got))
	}
	if got[0].TS != 1100 || len(got[0].Tuples) != 2 {
		t.Fatalf("bad result %+v", got[0])
	}
}

func TestWithResultCounts(t *testing.T) {
	leakcheck.Check(t)
	var n int64
	j := NewJoin(EquiChain(2, 0), []Time{Second, Second},
		Options{Policy: StaticSlack, StaticK: 2 * Second},
		WithResultCounts(func(ts Time, c int64) { n += c }),
	)
	for _, e := range feed(500, 3) {
		j.Push(e)
	}
	j.Close()
	if n != j.Results() {
		t.Fatalf("count sink saw %d, Results() = %d", n, j.Results())
	}
	if n == 0 {
		t.Fatal("degenerate: no results")
	}
}

func TestRunChannel(t *testing.T) {
	leakcheck.Check(t)
	j := NewJoin(EquiChain(2, 0), []Time{Second, Second},
		Options{Policy: StaticSlack, StaticK: 2 * Second})
	in := make(chan *Tuple, 16)
	out := j.RunChannel(in)
	go func() {
		for _, e := range feed(500, 4) {
			in <- e
		}
		close(in)
	}()
	var n int64
	for range out {
		n++
	}
	if n != j.Results() {
		t.Fatalf("channel delivered %d, Results() = %d", n, j.Results())
	}
	if n == 0 {
		t.Fatal("degenerate: no results")
	}
}

// TestRunChannelPanicsOnWithResults: RunChannel must refuse to silently
// replace a sink installed at construction time (documented behavior).
func TestRunChannelPanicsOnWithResults(t *testing.T) {
	leakcheck.Check(t)
	j := NewJoin(EquiChain(2, 0), []Time{Second, Second},
		Options{Policy: StaticSlack, StaticK: Second},
		WithResults(func(Result) {}),
	)
	defer func() {
		if recover() == nil {
			t.Fatal("RunChannel must panic when a WithResults sink is installed")
		}
	}()
	j.RunChannel(make(chan *Tuple))
}

// TestRunChannelPanicsOnSecondCall: a second RunChannel would silently
// steal the first channel's emit callback; it must panic instead.
func TestRunChannelPanicsOnSecondCall(t *testing.T) {
	leakcheck.Check(t)
	j := NewJoin(EquiChain(2, 0), []Time{Second, Second},
		Options{Policy: StaticSlack, StaticK: Second})
	in := make(chan *Tuple)
	out := j.RunChannel(in)
	defer func() {
		if recover() == nil {
			t.Fatal("second RunChannel must panic")
		}
		close(in)
		for range out {
		}
	}()
	j.RunChannel(make(chan *Tuple))
}

// TestRunChannelFlushOrdering: results that are only released by the final
// buffer flush (tuples still sitting in K-slack when the input closes) must
// be delivered on the output channel before it closes.
func TestRunChannelFlushOrdering(t *testing.T) {
	leakcheck.Check(t)
	// A large static K keeps both matching tuples buffered in K-slack until
	// Close-time Flush: no result can be produced before the input closes.
	j := NewJoin(EquiChain(2, 0), []Time{Second, Second},
		Options{Policy: StaticSlack, StaticK: Minute})
	in := make(chan *Tuple)
	out := j.RunChannel(in)
	in <- &Tuple{TS: 1000, Seq: 0, Src: 0, Attrs: []float64{7}}
	in <- &Tuple{TS: 1100, Seq: 1, Src: 1, Attrs: []float64{7}}
	close(in)
	var got []Result
	for r := range out { // closes only after Finish flushed everything
		got = append(got, r)
	}
	if len(got) != 1 {
		t.Fatalf("flush delivered %d results before close, want 1", len(got))
	}
	if got[0].TS != 1100 {
		t.Fatalf("result ts = %d, want 1100", got[0].TS)
	}
	if j.Results() != 1 {
		t.Fatalf("Results = %d, want 1", j.Results())
	}
}

func TestTreeJoinAgreesWithJoin(t *testing.T) {
	leakcheck.Check(t)
	in := feed(1500, 5)
	w := []Time{Second, Second}
	maxD, _ := stream.Batch(in).MaxDelay()

	ref := NewJoin(EquiChain(2, 0), w, Options{Policy: StaticSlack, StaticK: maxD})
	for _, e := range cloneBatch(in) {
		ref.Push(e)
	}
	ref.Close()

	tree := NewTreeJoin(EquiChain(2, 0), w, maxD, nil)
	for _, e := range cloneBatch(in) {
		tree.Push(e)
	}
	tree.Close()

	if ref.Results() != tree.Results() {
		t.Fatalf("MJoin %d vs tree %d results", ref.Results(), tree.Results())
	}
}

func TestAdaptHookFires(t *testing.T) {
	leakcheck.Check(t)
	var events int
	j := NewJoin(EquiChain(2, 0), []Time{Second, Second},
		Options{Gamma: 0.9, Period: 5 * Second, Interval: Second},
		WithAdaptHook(func(AdaptEvent) { events++ }),
	)
	for _, e := range feed(2000, 6) { // spans ~20 s
		j.Push(e)
	}
	j.Close()
	if events < 10 {
		t.Fatalf("adapt hook fired %d times, want ≥10", events)
	}
	if int64(events) != j.Adaptations() {
		t.Fatalf("hook count %d != Adaptations() %d", events, j.Adaptations())
	}
}

func TestStatsExposed(t *testing.T) {
	leakcheck.Check(t)
	j := NewJoin(EquiChain(2, 0), []Time{Second, Second}, Options{})
	j.Push(&Tuple{TS: 1000, Src: 0})
	j.Push(&Tuple{TS: 900, Src: 0})
	if got := j.Snapshot().MaxDelayAllTime; got != 100 {
		t.Fatalf("snapshot max delay = %v", got)
	}
}

// TestWithShardsMatchesSingleThreaded: the public sharded path reproduces
// the single-threaded results and adaptation trajectory exactly.
func TestWithShardsMatchesSingleThreaded(t *testing.T) {
	leakcheck.Check(t)
	in := feed(3000, 9)
	w := []Time{Second, Second}
	opt := Options{Gamma: 0.9, Period: 10 * Second}

	ref := NewJoin(EquiChain(2, 0), w, opt)
	for _, e := range cloneBatch(in) {
		ref.Push(e)
	}
	ref.Close()

	for _, n := range []int{1, 2, 4, 8} {
		j := NewJoin(EquiChain(2, 0), w, opt, WithShards(n))
		for _, e := range cloneBatch(in) {
			j.Push(e)
		}
		j.Close()
		if j.Results() != ref.Results() || j.AvgK() != ref.AvgK() || j.Adaptations() != ref.Adaptations() {
			t.Fatalf("shards=%d: results %d vs %d, avgK %v vs %v, adapts %d vs %d",
				n, j.Results(), ref.Results(), j.AvgK(), ref.AvgK(), j.Adaptations(), ref.Adaptations())
		}
	}
}

// TestRunChannelSharded: the channel runner works on the sharded path and
// delivers the complete result set (in interval batches) before closing.
func TestRunChannelSharded(t *testing.T) {
	leakcheck.Check(t)
	mk := func(opts ...JoinOption) *Join {
		return NewJoin(EquiChain(2, 0), []Time{Second, Second},
			Options{Policy: StaticSlack, StaticK: 2 * Second}, opts...)
	}
	ref := mk()
	for _, e := range cloneBatch(feed(800, 11)) {
		ref.Push(e)
	}
	ref.Close()

	j := mk(WithShards(4))
	in := make(chan *Tuple, 64)
	out := j.RunChannel(in)
	go func() {
		for _, e := range cloneBatch(feed(800, 11)) {
			in <- e
		}
		close(in)
	}()
	var n int64
	for range out {
		n++
	}
	if n != ref.Results() || n != j.Results() {
		t.Fatalf("sharded channel delivered %d, Results() = %d, single-threaded = %d",
			n, j.Results(), ref.Results())
	}
}

// TestPushAfterClosePanics: a closed join cannot be restarted; pushing
// must fail loudly instead of silently dropping the tuple.
func TestPushAfterClosePanics(t *testing.T) {
	leakcheck.Check(t)
	for _, opts := range [][]JoinOption{nil, {WithShards(2)}} {
		j := NewJoin(EquiChain(2, 0), []Time{Second, Second}, Options{}, opts...)
		j.Push(&Tuple{TS: 1000, Src: 0, Attrs: []float64{1}})
		j.Close()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("opts=%d: Push after Close must panic", len(opts))
				}
			}()
			j.Push(&Tuple{TS: 1100, Src: 1, Attrs: []float64{1}})
		}()
	}
}

// TestConditionMutationAfterNewJoinPanics: adding predicates to a
// condition already compiled into a join would silently diverge the
// executors from Matches.
func TestConditionMutationAfterNewJoinPanics(t *testing.T) {
	leakcheck.Check(t)
	cond := EquiChain(2, 0)
	j := NewJoin(cond, []Time{Second, Second}, Options{}, WithShards(2))
	defer j.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("mutating a compiled condition must panic")
		}
	}()
	cond.Equi(0, 1, 1, 1)
}

func cloneBatch(in []*Tuple) []*Tuple {
	out := make([]*Tuple, len(in))
	for i, e := range in {
		cp := *e
		out[i] = &cp
	}
	return out
}
