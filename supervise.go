package qdhj

// The public face of the fault-tolerant runtime (internal/plan.Supervised
// and internal/fault): supervision options, bounded ingest, typed errors,
// and the deterministic fault injector that powers the differential
// recovery tests. See DESIGN.md §10 for the fault model and the
// checkpoint-consistency argument.

import (
	"time"

	"repro/internal/fault"
	"repro/internal/plan"
)

// Typed errors reported by TryPush, Checkpoint and Restore. API misuse —
// Push after Close, double Close, mutating a sealed Condition — still
// panics with the documented plain-string messages: those are bugs in the
// caller, not runtime faults, and supervision never converts them.
var (
	// ErrClosed reports an operation on a closed join.
	ErrClosed = fault.ErrClosed
	// ErrOverload reports an arrival refused by the Error ingest policy.
	ErrOverload = fault.ErrOverload
	// ErrRestoreMismatch reports a snapshot whose deployment signature
	// (condition, windows, shape, policy) disagrees with the restore target.
	ErrRestoreMismatch = fault.ErrRestoreMismatch
)

// JoinError is the terminal error of a supervised join: the retry budget is
// spent and the join is permanently down. Unwrap yields the final cause —
// typically a *WorkerError.
type JoinError = fault.JoinError

// WorkerError identifies the parallel worker whose failure was contained.
type WorkerError = fault.WorkerError

// Backoff is the restart schedule of a supervised join: bounded equal-jitter
// exponential backoff with a capped retry budget. The zero value selects the
// default schedule (base 10ms, cap 1s, 5 retries).
type Backoff = fault.Backoff

// DefaultBackoff returns the default restart schedule.
func DefaultBackoff() Backoff { return fault.DefaultBackoff() }

// Supervision configures the supervised runtime; see WithSupervision.
type Supervision struct {
	// Backoff is the restart schedule; the zero value means DefaultBackoff.
	Backoff Backoff
	// OnRestart, when set, observes every recovery: the restart ordinal
	// (counting from 1) and the contained failure that triggered it.
	OnRestart func(restart int, cause error)
	// CheckpointEvery is how many adaptation boundaries pass between the
	// runtime's automatic checkpoints: 1 checkpoints at every boundary
	// (cheapest recovery, highest steady-state cost), larger values
	// amortize the capture over a longer crash-replay log. 0 selects the
	// default — one checkpoint per measurement period.
	CheckpointEvery int
}

// WithSupervision runs the join under the fault-tolerant runtime. Contained
// worker failures no longer crash the caller: the runtime restores the last
// adaptation-boundary checkpoint into a fresh executor, replays the
// arrivals logged since, and retries under s.Backoff. Delivery stays
// exactly-once across recoveries — result callbacks, count callbacks and
// adaptation hooks each see every event exactly once, as if no fault had
// happened. Failures that outlive the retry budget surface as a terminal
// *JoinError through Err, after which Push is a silent no-op and TryPush
// returns the error.
func WithSupervision(s Supervision) JoinOption {
	return func(o *joinOpts) {
		o.supervised = true
		o.scf.Backoff = s.Backoff
		o.scf.OnRestart = s.OnRestart
		o.scf.CheckpointEvery = s.CheckpointEvery
	}
}

// IngestPolicy selects what a supervised join does when the disorder-
// handling buffers reach the WithIngestBound occupancy bound.
type IngestPolicy = plan.IngestPolicy

// Ingest policies.
const (
	// IngestBlock admits every arrival: Push is synchronous, so the caller
	// slowing down IS the backpressure. The bound is advisory only.
	IngestBlock = plan.IngestBlock
	// IngestError refuses arrivals at the bound: TryPush returns
	// ErrOverload, Dropped counts the refusals, and the refused tuples are
	// never logged — a crash replay sees exactly the admitted sequence.
	IngestError = plan.IngestError
	// IngestShed admits the arrival, then evicts the lowest-productivity
	// buffered tuples until occupancy is back under the bound, accounting
	// every eviction with the feedback loop so RecallEstimate reflects the
	// loss. Eviction is deterministic and replays identically after a crash.
	IngestShed = plan.IngestShed
)

// WithIngestBound bounds the K-slack buffer occupancy at max tuples under
// the given overload policy. It implies WithSupervision with the default
// schedule unless WithSupervision is also given.
func WithIngestBound(max int, p IngestPolicy) JoinOption {
	return func(o *joinOpts) {
		o.supervised = true
		o.scf.Ingest = plan.IngestConfig{MaxBuffered: max, Policy: p}
	}
}

// Injector is the deterministic, seed-free fault injector: directives fire
// at exact offered-arrival counts (worker panics, worker delays, arrival
// bursts), so a faulty run is bit-for-bit reproducible. Build one with
// NewInjector().PanicAt(worker, tuple)... or ParseInjectSpec.
type Injector = fault.Injector

// NewInjector returns an empty injector; chain PanicAt/DelayAt/BurstAt.
func NewInjector() *Injector { return fault.NewInjector() }

// ParseInjectSpec compiles a comma-separated textual injection spec:
// "panic@shard1:tuple5000", "delay@shard0:tuple100:2ms",
// "burst@tuple2000:50".
func ParseInjectSpec(spec string) (*Injector, error) { return fault.ParseInjectSpec(spec) }

// WithInjector arms a deterministic fault injector on the join — the test
// harness for the fault-tolerant runtime. It implies WithSupervision with
// the default schedule unless WithSupervision is also given.
func WithInjector(inj *Injector) JoinOption {
	return func(o *joinOpts) {
		o.supervised = true
		o.scf.Inject = inj
	}
}

// TryPush feeds one arriving tuple, reporting refusal as a typed error
// instead of a panic: ErrClosed after Close, ErrOverload when the
// IngestError policy refuses at the bound, the terminal *JoinError after
// supervision gave up. On a healthy join it is exactly Push.
func (j *Join) TryPush(t *Tuple) error {
	if j.sup != nil {
		return j.sup.TryPush(t)
	}
	if j.closed {
		return ErrClosed
	}
	j.ex.Push(t)
	return nil
}

// Err returns the terminal *JoinError of a supervised join, or nil while
// the join is healthy (always nil on unsupervised joins — their worker
// failures panic instead).
func (j *Join) Err() error {
	if j.sup != nil {
		return j.sup.Err()
	}
	return nil
}

// Restarts returns how many checkpoint-restore recoveries the supervised
// runtime has performed.
func (j *Join) Restarts() int {
	if j.sup != nil {
		return j.sup.Restarts()
	}
	return 0
}

// Checkpoints returns how many automatic boundary checkpoints the
// supervised runtime has captured (Supervision.CheckpointEvery controls
// the cadence).
func (j *Join) Checkpoints() int {
	if j.sup != nil {
		return j.sup.Checkpoints()
	}
	return 0
}

// CheckpointTime returns the total wall time the supervised runtime has
// spent capturing automatic boundary checkpoints — the steady-state cost
// checkpointing adds to a healthy run.
func (j *Join) CheckpointTime() time.Duration {
	if j.sup != nil {
		return j.sup.CheckpointTime()
	}
	return 0
}

// Dropped returns the number of arrivals refused by the IngestError policy.
func (j *Join) Dropped() int64 {
	if j.sup != nil {
		return j.sup.Dropped()
	}
	return 0
}

// BufferedTuples returns the current K-slack buffer occupancy — the measure
// the WithIngestBound bound applies to.
func (j *Join) BufferedTuples() int {
	if j.sup != nil {
		return j.sup.BufferedTuples()
	}
	if be, ok := j.ex.(interface{ BufferedTuples() int }); ok {
		return be.BufferedTuples()
	}
	return 0
}

// RecallEstimate returns the run-level recall estimate: produced results
// over estimated-true results, with IngestShed losses accounted. It is 1 on
// deployments without a feedback loop (StaticSlack trees) and 1 before the
// first measurement period completes.
func (j *Join) RecallEstimate() float64 {
	if j.sup != nil {
		return j.sup.RecallEstimate()
	}
	if be, ok := j.ex.(interface{ RecallEstimate() float64 }); ok {
		return be.RecallEstimate()
	}
	return 1
}
