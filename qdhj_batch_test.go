package qdhj

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/leakcheck"
)

// TestBatchedDifferential pins the batching layer's correctness contract on
// every deployment shape: for any batch size — including sizes that
// straddle adaptation-interval boundaries at shifting offsets — the batched
// run reproduces the per-tuple run bit-for-bit, in result multiset, result
// emit order AND K trajectory. The input is disordered, and the
// quality-driven policy is live, so batches really are cut mid-stream at
// watermark reads and adaptation boundaries.
func TestBatchedDifferential(t *testing.T) {
	leakcheck.Check(t)
	in := gen.SparseStar4(1200, 11, 30, [4]Time{600, 600, 600, 600})
	opt := Options{Gamma: 0.9, Period: 4 * Second, Interval: Second}

	type trace struct {
		results []string
		ks      []Time
	}
	run := func(planSpec string, shards, batch int) trace {
		var tr trace
		cond := star4()
		jopts := []JoinOption{
			WithResults(func(r Result) {
				var b strings.Builder
				for _, tp := range r.Tuples {
					fmt.Fprintf(&b, "%d:%d,", tp.Src, tp.Seq)
				}
				tr.results = append(tr.results, b.String())
			}),
			WithAdaptHook(func(ev AdaptEvent) { tr.ks = append(tr.ks, ev.NewK) }),
		}
		if shards > 0 {
			jopts = append(jopts, WithShards(shards))
		}
		if planSpec != "" {
			p, err := ParsePlan(planSpec, cond, windows4(), 0)
			if err != nil {
				t.Fatalf("plan %q: %v", planSpec, err)
			}
			jopts = append(jopts, WithPlan(p))
		}
		if batch > 0 {
			jopts = append(jopts, WithBatchSize(batch))
		}
		j := NewJoin(cond, windows4(), opt, jopts...)
		for _, e := range in.Clone() {
			j.Push(e)
		}
		j.Close()
		return tr
	}

	shapes := []struct {
		name   string
		spec   string
		shards int
	}{
		{"flat", "", 0},
		{"shard4", "", 4},
		{"tree", "tree", 0},
		{"bushy", "((0 1)x2 (2 3))x2", 0},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			want := run(sh.spec, sh.shards, 0)
			if len(want.results) == 0 {
				t.Fatal("degenerate workload: per-tuple run produced no results")
			}
			if len(want.ks) == 0 {
				t.Fatal("degenerate workload: no adaptation steps")
			}
			for _, batch := range []int{2, 7, 64, 256} {
				got := run(sh.spec, sh.shards, batch)
				if len(got.results) != len(want.results) {
					t.Fatalf("batch %d: %d results, per-tuple %d", batch, len(got.results), len(want.results))
				}
				for i := range want.results {
					if got.results[i] != want.results[i] {
						t.Fatalf("batch %d: result %d is %s, per-tuple %s", batch, i, got.results[i], want.results[i])
					}
				}
				if fmt.Sprint(got.ks) != fmt.Sprint(want.ks) {
					t.Fatalf("batch %d: K trajectory %v, per-tuple %v", batch, got.ks, want.ks)
				}
			}
		})
	}
}
