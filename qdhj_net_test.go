package qdhj

// Public-API networked differentials: WithRemoteWorkers must behave as
// WithShards across a process boundary — result multiset, result count and
// K trajectory bit-for-bit equal to the flat in-process reference at 2 and
// 4 workers, at every frame-batch setting, and across a worker-side fault
// under WithSupervision. The workers here are the same Serve loop
// cmd/qdhjd runs, listening on loopback.

import (
	stdnet "net"
	"testing"

	"repro/internal/join"
	"repro/internal/leakcheck"
	qnet "repro/internal/net"
)

// startNetWorkers launches n worker daemons on loopback and returns their
// addresses. inj arms a worker-side injector on one daemon (nil for none).
func startNetWorkers(t *testing.T, n int, injAt int, inj *Injector) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		cfg := qnet.ServeConfig{}
		if inj != nil && i == injAt {
			cfg.Inject = inj
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = qnet.Serve(l, cfg)
		}()
		t.Cleanup(func() {
			l.Close()
			<-done
		})
	}
	return addrs
}

// netCond is an equi chain with a wireable generic residual — every
// predicate class the wire can carry.
func netCond() *Condition {
	return EquiChain(3, 0).WhereExpr(
		join.Le(join.Attr(0, 1), join.Add(join.Attr(2, 1), join.ConstOf(40))))
}

func runNetJoin(in []*Tuple, opts ...JoinOption) (*faultTrace, int64) {
	tr := newFaultTrace()
	j := NewJoin(netCond(), []Time{700, 700, 700},
		Options{Gamma: 0.9, Period: Second, Interval: 200 * Millisecond},
		append(tr.opts(), opts...)...)
	for _, e := range cloneBatch(in) {
		j.Push(e)
	}
	j.Close()
	return tr, j.Results()
}

func TestWithRemoteWorkersDifferential(t *testing.T) {
	in := faultWorkload(3, 1200, 27, 14)
	want, wantN := runNetJoin(in)
	if wantN == 0 || len(want.ks) < 4 {
		t.Fatalf("degenerate reference: %d results, %d adaptations", wantN, len(want.ks))
	}
	for _, workers := range []int{2, 4} {
		for _, batch := range []int{1, 128} {
			name := map[int]string{1: "per-tuple", 128: "batched"}[batch]
			t.Run(map[int]string{2: "w2", 4: "w4"}[workers]+"/"+name, func(t *testing.T) {
				leakcheck.Check(t)
				addrs := startNetWorkers(t, workers, -1, nil)
				got, gotN := runNetJoin(in,
					WithRemoteWorkers(addrs...), WithFrameBatch(batch))
				if gotN != wantN {
					t.Errorf("%d results, want %d", gotN, wantN)
				}
				diffFaultTraces(t, "remote", want, got)
			})
		}
	}
}

// TestWithRemoteWorkersSupervisedKill: a panic injected inside worker
// process 1 mid-stream surfaces at the next barrier, the supervised driver
// reconnects and restores that worker's windows from the driver-side
// checkpoint, and the recovered run matches the healthy flat reference
// exactly.
func TestWithRemoteWorkersSupervisedKill(t *testing.T) {
	leakcheck.Check(t)
	in := faultWorkload(3, 1200, 27, 14)
	want, wantN := runNetJoin(in)

	inj := NewInjector()
	inj.PanicAt(1, 500)
	addrs := startNetWorkers(t, 2, 1, inj)

	tr := newFaultTrace()
	j := NewJoin(netCond(), []Time{700, 700, 700},
		Options{Gamma: 0.9, Period: Second, Interval: 200 * Millisecond},
		append(tr.opts(),
			WithRemoteWorkers(addrs...),
			WithSupervision(Supervision{Backoff: fastBackoff(3), CheckpointEvery: 1}))...)
	for _, e := range cloneBatch(in) {
		j.Push(e)
	}
	j.Close()
	if err := j.Err(); err != nil {
		t.Fatalf("supervised networked join went terminal: %v", err)
	}
	if j.Restarts() < 1 {
		t.Fatal("worker-side injector never fired")
	}
	if n := j.Results(); n != wantN {
		t.Errorf("%d results, want %d", n, wantN)
	}
	diffFaultTraces(t, "remote-kill", want, tr)
}
