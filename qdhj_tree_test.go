package qdhj

import (
	"repro/internal/leakcheck"
	"testing"

	"repro/internal/gen"
)

// feed3 builds a 3-stream equi workload with per-stream disorder bounds.
func feed3(n int, seed int64, delayMax [3]Time) []*Tuple {
	return gen.SparseEqui3(n, seed, 200, delayMax)
}

func mustPanicT(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// TestTreeJoinLifecycleParity: TreeJoin panics on Push-after-Close and
// double-Close exactly like Join (DESIGN.md §3 conventions), in both the
// static and the adaptive configuration.
func TestTreeJoinLifecycleParity(t *testing.T) {
	leakcheck.Check(t)
	w := []Time{Second, Second}
	for _, tc := range []struct {
		name string
		opts []TreeOption
	}{
		{"static", nil},
		{"adaptive", []TreeOption{WithTreeAdaptation(Options{Gamma: 0.9})}},
	} {
		j := NewTreeJoin(EquiChain(2, 0), w, 0, nil, tc.opts...)
		j.Push(&Tuple{TS: 1, Src: 0, Attrs: []float64{1}})
		j.Close()
		mustPanicT(t, tc.name+": Push after Close", func() {
			j.Push(&Tuple{TS: 2, Src: 1, Attrs: []float64{1}})
		})
		mustPanicT(t, tc.name+": double Close", j.Close)
	}
}

// TestPipelinedTreeJoinLifecycleParity: same for the pipelined variant.
func TestPipelinedTreeJoinLifecycleParity(t *testing.T) {
	leakcheck.Check(t)
	w := []Time{Second, Second}
	for _, tc := range []struct {
		name string
		opts []TreeOption
	}{
		{"static", nil},
		{"adaptive", []TreeOption{WithTreeAdaptation(Options{Gamma: 0.9})}},
	} {
		j := NewPipelinedTreeJoin(EquiChain(2, 0), w, 0, 16, tc.opts...)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for range j.Results() {
			}
		}()
		j.Push(&Tuple{TS: 1, Src: 0, Attrs: []float64{1}})
		j.Close()
		<-done
		j.Wait()
		mustPanicT(t, tc.name+": Push after Close", func() {
			j.Push(&Tuple{TS: 2, Src: 1, Attrs: []float64{1}})
		})
		mustPanicT(t, tc.name+": double Close", j.Close)
	}
}

// TestWithPerStageKDiverges drives the public per-stage option end to end:
// on asymmetric-delay inputs the stage Ks diverge and the total buffered
// delay undercuts Same-K adaptation, at equal-or-better recall.
func TestWithPerStageKDiverges(t *testing.T) {
	leakcheck.Check(t)
	in := feed3(4000, 9, [3]Time{100, 100, 2500})
	w := []Time{2 * Second, 2 * Second, 2 * Second}
	opt := Options{Gamma: 0.9, Period: 10 * Second, Interval: Second}

	run := func(opts ...TreeOption) *TreeJoin {
		j := NewTreeJoin(EquiChain(3, 0), w, 0, nil, opts...)
		for _, e := range cloneBatch(in) {
			j.Push(e)
		}
		j.Close()
		return j
	}
	same := run(WithTreeAdaptation(opt))
	per := run(WithTreeAdaptation(opt), WithPerStageK())

	if got := len(same.CurrentKs()); got != 1 {
		t.Fatalf("Same-K adaptation should have 1 decision scope, got %d", got)
	}
	ks := per.CurrentKs()
	if len(ks) != 2 {
		t.Fatalf("per-stage adaptation should have one scope per stage, got %d", len(ks))
	}
	t.Logf("same-K: K=%v sum=%.0f results=%d; per-stage: Ks=%v sum=%.0f results=%d",
		same.CurrentKs(), same.BufferedDelaySum(), same.Results(),
		ks, per.BufferedDelaySum(), per.Results())
	if !(ks[0] < ks[1]) {
		t.Errorf("per-stage Ks did not diverge: %v", ks)
	}
	if !(per.BufferedDelaySum() < same.BufferedDelaySum()) {
		t.Errorf("per-stage buffered delay %.0f not below Same-K %.0f",
			per.BufferedDelaySum(), same.BufferedDelaySum())
	}
	if per.Adaptations() == 0 || same.Adaptations() == 0 {
		t.Error("adaptation did not run")
	}
}

// TestTreeDecideHookFires: the decide hook observes every adaptation step
// with one K per scope.
func TestTreeDecideHookFires(t *testing.T) {
	leakcheck.Check(t)
	in := feed3(2000, 4, [3]Time{1500, 1500, 1500})
	w := []Time{Second, Second, Second}
	var steps int
	var lastKs []Time
	j := NewTreeJoin(EquiChain(3, 0), w, 0, nil,
		WithTreeAdaptation(Options{Gamma: 0.9, Period: 10 * Second, Interval: Second}),
		WithPerStageK(),
		WithTreeDecideHook(func(at Time, ks []Time) {
			steps++
			lastKs = append(lastKs[:0], ks...)
		}))
	for _, e := range cloneBatch(in) {
		j.Push(e)
	}
	j.Close()
	if steps == 0 {
		t.Fatal("decide hook never fired")
	}
	if len(lastKs) != 2 {
		t.Fatalf("hook saw %d scopes, want 2", len(lastKs))
	}
	if int64(steps) != j.Adaptations() {
		t.Errorf("hook fired %d times, Adaptations()=%d", steps, j.Adaptations())
	}
}

// TestStaticSlackTreeAdaptationPanics: WithTreeAdaptation(StaticSlack) is a
// contradiction and must panic rather than silently running a no-op loop.
func TestStaticSlackTreeAdaptationPanics(t *testing.T) {
	leakcheck.Check(t)
	mustPanicT(t, "StaticSlack tree adaptation", func() {
		NewTreeJoin(EquiChain(2, 0), []Time{Second, Second}, 0, nil,
			WithTreeAdaptation(Options{Policy: StaticSlack, StaticK: Second}))
	})
}

// TestDecideHookWithoutAdaptationPanics: a decide hook on a fixed-K tree
// would never fire; both constructors must reject it instead of silently
// dropping it.
func TestDecideHookWithoutAdaptationPanics(t *testing.T) {
	leakcheck.Check(t)
	hook := WithTreeDecideHook(func(Time, []Time) {})
	mustPanicT(t, "TreeJoin hook without adaptation", func() {
		NewTreeJoin(EquiChain(2, 0), []Time{Second, Second}, 0, nil, hook)
	})
	mustPanicT(t, "PipelinedTreeJoin hook without adaptation", func() {
		NewPipelinedTreeJoin(EquiChain(2, 0), []Time{Second, Second}, 0, 16, hook)
	})
}
