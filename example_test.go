package qdhj_test

import (
	"fmt"

	qdhj "repro"
)

// ExampleNewJoin demonstrates the core loop: declare the join, state the
// quality requirement, push arrivals, read results.
func ExampleNewJoin() {
	cond := qdhj.EquiChain(2, 0)
	windows := []qdhj.Time{qdhj.Second, qdhj.Second}

	var matched []string
	j := qdhj.NewJoin(cond, windows,
		qdhj.Options{Gamma: 0.95, Period: 10 * qdhj.Second},
		qdhj.WithResults(func(r qdhj.Result) {
			matched = append(matched, fmt.Sprintf("key=%v@%d", r.Tuples[0].Attr(0), r.TS))
		}),
	)

	// Stream 0 emits key 7 at t=1000; stream 1 emits key 7 at t=1200 —
	// within the window, so they join. A later key 9 finds no partner.
	j.Push(&qdhj.Tuple{TS: 1000, Seq: 0, Src: 0, Attrs: []float64{7}})
	j.Push(&qdhj.Tuple{TS: 1200, Seq: 1, Src: 1, Attrs: []float64{7}})
	j.Push(&qdhj.Tuple{TS: 1400, Seq: 2, Src: 0, Attrs: []float64{9}})
	j.Close()

	fmt.Println(matched)
	// Output: [key=7@1200]
}

// ExampleCondition_Where shows an arbitrary (UDF) join condition — the
// paper's dist() < 5 proximity query shape.
func ExampleCondition_Where() {
	cond := qdhj.Cross(2).Where([]int{0, 1}, func(a []*qdhj.Tuple) bool {
		dx := a[0].Attr(0) - a[1].Attr(0)
		dy := a[0].Attr(1) - a[1].Attr(1)
		return dx*dx+dy*dy < 25 // closer than 5 units
	})

	var n int
	j := qdhj.NewJoin(cond, []qdhj.Time{qdhj.Second, qdhj.Second},
		qdhj.Options{Policy: qdhj.StaticSlack, StaticK: qdhj.Second},
		qdhj.WithResults(func(qdhj.Result) { n++ }),
	)
	j.Push(&qdhj.Tuple{TS: 100, Seq: 0, Src: 0, Attrs: []float64{10, 10}})
	j.Push(&qdhj.Tuple{TS: 150, Seq: 1, Src: 1, Attrs: []float64{12, 13}}) // ≈3.6 away
	j.Push(&qdhj.Tuple{TS: 200, Seq: 2, Src: 1, Attrs: []float64{40, 40}}) // far
	j.Close()

	fmt.Println(n)
	// Output: 1
}

// ExampleJoin_RunChannel wires the join between channels.
func ExampleJoin_RunChannel() {
	j := qdhj.NewJoin(qdhj.EquiChain(2, 0),
		[]qdhj.Time{qdhj.Second, qdhj.Second},
		qdhj.Options{Policy: qdhj.StaticSlack, StaticK: 500})

	in := make(chan *qdhj.Tuple, 4)
	out := j.RunChannel(in)
	in <- &qdhj.Tuple{TS: 100, Seq: 0, Src: 0, Attrs: []float64{1}}
	in <- &qdhj.Tuple{TS: 130, Seq: 1, Src: 1, Attrs: []float64{1}}
	close(in)

	for r := range out {
		fmt.Println(len(r.Tuples), r.TS)
	}
	// Output: 2 0.130s
}
