// Distributed: Sec. V of the paper — the same 3-way join executed as a
// left-deep tree of binary join operators, each fronted by its own
// Synchronizer, first synchronously and then pipelined across goroutines.
// Both must produce exactly the same results as each other (and, with a
// buffer covering the maximum delay, the same results as the single
// MJoin-style operator).
package main

import (
	"fmt"
	"math/rand"

	qdhj "repro"
	"repro/internal/stream"
)

// workload builds a 3-stream feed with sparse keys (domain 500), so the
// binary tree's materialized intermediates stay small — a tree deployment
// suits low-selectivity joins; dense joins favor the MJoin operator.
func workload() (stream.Batch, *qdhj.Condition, []qdhj.Time) {
	rng := rand.New(rand.NewSource(9))
	var in stream.Batch
	var seq uint64
	ts := qdhj.Time(3000)
	for i := 0; i < 4000; i++ {
		ts += 10
		for src := 0; src < 3; src++ {
			t := ts
			if rng.Intn(4) == 0 {
				t -= qdhj.Time(rng.Intn(2500))
			}
			in = append(in, &qdhj.Tuple{
				TS: t, Seq: seq, Src: src,
				Attrs: []float64{float64(rng.Intn(500))},
			})
			seq++
		}
	}
	w := 2 * qdhj.Second
	return in, qdhj.EquiChain(3, 0), []qdhj.Time{w, w, w}
}

func main() {
	arrivals, cond, windows := workload()
	maxDelay, _ := arrivals.MaxDelay()
	ds := struct {
		Arrivals stream.Batch
		Cond     *qdhj.Condition
		Windows  []qdhj.Time
	}{arrivals, cond, windows}

	// Single MJoin-style operator with full buffering (reference).
	ref := qdhj.NewJoin(ds.Cond, ds.Windows, qdhj.Options{
		Policy: qdhj.StaticSlack, StaticK: maxDelay,
	})
	for _, e := range ds.Arrivals.Clone() {
		ref.Push(e)
	}
	ref.Close()

	// Binary tree, synchronous.
	tree := qdhj.NewTreeJoin(ds.Cond, ds.Windows, maxDelay, nil)
	for _, e := range ds.Arrivals.Clone() {
		tree.Push(e)
	}
	tree.Close()

	// Binary tree, one goroutine per operator.
	pipe := qdhj.NewPipelinedTreeJoin(ds.Cond, ds.Windows, maxDelay, 512)
	var piped int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range pipe.Results() {
			piped++
		}
	}()
	for _, e := range ds.Arrivals.Clone() {
		pipe.Push(e)
	}
	pipe.Close()
	<-done
	pipe.Wait()

	fmt.Printf("MJoin operator:        %d results\n", ref.Results())
	fmt.Printf("binary tree (%d ops):  %d results\n", tree.Operators(), tree.Results())
	fmt.Printf("pipelined tree:        %d results\n", piped)
	if ref.Results() == tree.Results() && tree.Results() == piped {
		fmt.Println("all three agree ✓")
	} else {
		fmt.Println("MISMATCH — this is a bug")
	}
}
