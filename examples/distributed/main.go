// Distributed: Sec. V of the paper — the same 3-way join executed as a
// left-deep tree of binary join operators, each fronted by its own
// Synchronizer. The example contrasts the tree's buffer-sizing modes on an
// asymmetric-delay feed (streams 0 and 1 nearly ordered, stream 2 heavily
// delayed):
//
//  1. fixed-K at the maximum delay — full recall, maximal latency (the
//     reference, agreeing with the single MJoin-style operator);
//  2. Same-K adaptation — the quality-driven feedback loop decides ONE K
//     for all streams, as the single operator does;
//  3. per-stage adaptation (WithPerStageK) — every binary stage sizes its
//     own buffer from its two input delay profiles, so the nearly-ordered
//     stage 0 pays almost no latency while stage 1 buys what the recall
//     requirement needs: the same quality at roughly half the total
//     buffered delay.
//
// The deployment shape itself belongs to the planner: AutoPlan with a low
// selectivity hint (this workload's sparse keys) picks the tree, and the
// Explain output printed first shows the chosen stages and their K decision
// scopes — the example no longer hard-codes a choice the planner owns.
//
// See the top-level README.md for the other deployment shapes and
// DESIGN.md §8/§9 for the per-stage model and the plan layer.
package main

import (
	"fmt"

	qdhj "repro"
	"repro/internal/gen"
	"repro/internal/stream"
)

// workload builds a 3-stream feed with sparse keys (domain 500) and
// asymmetric disorder: a tree deployment suits low-selectivity joins, and
// per-stage K exists for asymmetric delays.
func workload() (stream.Batch, *qdhj.Condition, []qdhj.Time) {
	in := gen.SparseEqui3(8000, 9, 500, [3]qdhj.Time{150, 150, 2500})
	w := 2 * qdhj.Second
	return in, qdhj.EquiChain(3, 0), []qdhj.Time{w, w, w}
}

func main() {
	arrivals, cond, windows := workload()
	maxDelay, _ := arrivals.MaxDelay()
	opt := qdhj.Options{Gamma: 0.95, Period: 20 * qdhj.Second, Interval: qdhj.Second}

	// The auto-planner picks this deployment itself: sparse keys (domain
	// 500 on ~200-tuple windows ⇒ σ ≈ 1/500) make tree intermediates cheap.
	p := qdhj.AutoPlan(cond, windows, qdhj.PlanHints{Selectivity: 1.0 / 500})
	fmt.Print(qdhj.Explain(p), "\n")

	run := func(initialK qdhj.Time, opts ...qdhj.TreeOption) *qdhj.TreeJoin {
		j := qdhj.NewTreeJoin(cond, windows, initialK, nil, opts...)
		for _, e := range arrivals.Clone() {
			j.Push(e)
		}
		j.Close()
		return j
	}

	fixed := run(maxDelay)
	same := run(0, qdhj.WithTreeAdaptation(opt))
	per := run(0, qdhj.WithTreeAdaptation(opt), qdhj.WithPerStageK())

	// The pipelined variant accepts the same options; it must agree with the
	// synchronous tree on the fixed-K reference.
	pipe := qdhj.NewPipelinedTreeJoin(cond, windows, maxDelay, 512)
	var piped int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range pipe.Results() {
			piped++
		}
	}()
	for _, e := range arrivals.Clone() {
		pipe.Push(e)
	}
	pipe.Close()
	<-done
	pipe.Wait()

	full := float64(fixed.Results())
	fmt.Printf("fixed-K (%v, %d ops):  %8d results (reference)\n",
		maxDelay, fixed.Operators(), fixed.Results())
	fmt.Printf("pipelined fixed-K:         %8d results\n", piped)
	fmt.Printf("Same-K adaptive:           %8d results (%.2f%% of full)  ΣK=%7.0fs\n",
		same.Results(), 100*float64(same.Results())/full, same.BufferedDelaySum()/1000)
	fmt.Printf("per-stage adaptive:        %8d results (%.2f%% of full)  ΣK=%7.0fs  Ks=%v\n",
		per.Results(), 100*float64(per.Results())/full, per.BufferedDelaySum()/1000, per.CurrentKs())
	if fixed.Results() != piped {
		fmt.Println("MISMATCH between synchronous and pipelined tree — this is a bug")
	}
}
