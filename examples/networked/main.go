// Networked: the multi-process deployment. One logical 3-way join runs as
// N key-partitioned worker processes over TCP — in production each worker
// is a `qdhjd` daemon on its own host; here the example embeds the same
// serve loop on loopback listeners so it runs self-contained.
//
// The driver keeps everything that decides results: disorder handling,
// the quality-driven buffer-size feedback loop, watermark and interval
// accounting. Workers only hold window state and answer probes, so every
// worker count and frame-batch setting reproduces the flat in-process
// run bit-for-bit — results, counts, and the K trajectory. The demo
// proves it twice: once healthy, and once with a worker process dying
// mid-stream and the supervised driver recovering it from a driver-side
// checkpoint.
//
// See the top-level README.md ("Networked deployment") and DESIGN.md §14
// for the wire format and the cross-process determinism argument.
package main

import (
	"fmt"
	stdnet "net"

	qdhj "repro"
	"repro/internal/gen"
	qnet "repro/internal/net"
	"repro/internal/stream"
)

// startWorker embeds one worker daemon on a loopback listener — exactly
// the loop `qdhjd -listen` runs. inj arms a deterministic worker-side
// fault (nil for a healthy worker).
func startWorker(inj *qdhj.Injector) string {
	l, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go qnet.Serve(l, qnet.ServeConfig{Inject: inj})
	return l.Addr().String()
}

func run(ds *gen.Dataset, opts ...qdhj.JoinOption) *qdhj.Join {
	j := qdhj.NewJoin(ds.Cond, ds.Windows, qdhj.Options{Gamma: 0.95}, opts...)
	for _, e := range ds.Arrivals.Clone() {
		j.Push(e)
	}
	j.Close()
	return j
}

func main() {
	ds := gen.Synthetic3(gen.SynthConfig{Duration: 2 * stream.Minute, Seed: 12})
	fmt.Printf("3-way equi join, %d tuples\n\n", len(ds.Arrivals))

	// The flat in-process reference every networked run must match.
	ref := run(ds)
	fmt.Printf("%-22s  %-10s  %-10s  %s\n", "deployment", "results", "avg K", "adapts")
	fmt.Printf("%-22s  %-10d  %-10.0f  %d\n", "flat (in-process)", ref.Results(), ref.AvgK(), ref.Adaptations())

	// Healthy networked runs: 2 workers, per-tuple and batched framing.
	for _, batch := range []int{1, 128} {
		addrs := []string{startWorker(nil), startWorker(nil)}
		j := run(ds,
			qdhj.WithRemoteWorkers(addrs...),
			qdhj.WithFrameBatch(batch))
		fmt.Printf("%-22s  %-10d  %-10.0f  %d\n",
			fmt.Sprintf("2 workers, batch %d", batch), j.Results(), j.AvgK(), j.Adaptations())
	}

	// A worker process dies mid-stream: a deterministic fault fires inside
	// worker 1 at its 2000th probe (stand-in for a crash or a cut cable).
	// The supervised driver sees the typed failure at the next barrier,
	// re-dials, restores that worker's windows from the driver-side
	// checkpoint (checkpoints never cross the wire) and replays — the
	// recovered run still matches the reference exactly.
	inj := qdhj.NewInjector()
	inj.PanicAt(1, 2000)
	addrs := []string{startWorker(nil), startWorker(inj)}
	j := run(ds,
		qdhj.WithRemoteWorkers(addrs...),
		qdhj.WithSupervision(qdhj.Supervision{CheckpointEvery: 1}))
	fmt.Printf("%-22s  %-10d  %-10.0f  %d   (worker restarts: %d)\n",
		"2 workers, 1 killed", j.Results(), j.AvgK(), j.Adaptations(), j.Restarts())

	if j.Results() != ref.Results() || j.Restarts() < 1 {
		panic("networked run diverged from the flat reference")
	}
	fmt.Println("\nIdentical results and adaptation trajectories on every row: the")
	fmt.Println("driver routes and merges exactly like the in-process runtime, TCP")
	fmt.Println("preserves per-worker order, and K changes travel in-band — so the")
	fmt.Println("process boundary is invisible to the result stream.")
}
