// Sharded: the partition-parallel execution path, chosen by the deployment
// planner. One logical 3-way equi-join runs as N key-partitioned shards on
// N goroutines, while disorder handling and the quality-driven buffer-size
// feedback loop stay global — so every shard count produces exactly the
// same results and the same adaptation trajectory, only faster on
// multi-core hosts.
//
// The deployment choice belongs to the planner, not the example: AutoPlan
// sees the full equi key class covering all three streams and picks the
// sharded flat operator (Explain shows the route); the join then runs that
// plan. For a condition WITHOUT a full key class the same call would pick
// stage-wise sharding instead — see examples/distributed.
//
// See the top-level README.md for the full API tour and the other
// deployment shapes.
package main

import (
	"fmt"
	"runtime"
	"time"

	qdhj "repro"
	"repro/internal/gen"
	"repro/internal/stream"
)

func main() {
	ds := gen.Synthetic3(gen.SynthConfig{Duration: 2 * stream.Minute, Seed: 12})
	fmt.Printf("3-way equi join, %d tuples, GOMAXPROCS=%d\n\n", len(ds.Arrivals), runtime.GOMAXPROCS(0))

	// What does the planner pick for this condition at 4-way parallelism?
	fmt.Print(qdhj.Explain(qdhj.AutoPlan(ds.Cond, ds.Windows, qdhj.PlanHints{Shards: 4})), "\n")

	fmt.Printf("%-8s  %-12s  %-12s  %-10s  %s\n", "shards", "results", "avg K (ms)", "adapts", "tuples/s")
	for _, shards := range []int{1, 2, 4, 8} {
		p := qdhj.AutoPlan(ds.Cond, ds.Windows, qdhj.PlanHints{Shards: shards})
		j := qdhj.NewJoin(ds.Cond, ds.Windows, qdhj.Options{Gamma: 0.95}, qdhj.WithPlan(p))
		in := ds.Arrivals.Clone()
		t0 := time.Now()
		for _, e := range in {
			j.Push(e)
		}
		j.Close()
		dt := time.Since(t0).Seconds()
		fmt.Printf("%-8d  %-12d  %-12.0f  %-10d  %.0f\n",
			shards, j.Results(), j.AvgK(), j.Adaptations(), float64(len(in))/dt)
	}
	fmt.Println("\nIdentical results and adaptation trajectories at every shard count:")
	fmt.Println("the partitioner hash-routes by the planner's equi key class, and the")
	fmt.Println("per-shard streams merge deterministically at each interval boundary.")
}
