// Sharded: the partition-parallel execution path. One logical 3-way
// equi-join runs as N key-partitioned shards on N goroutines
// (qdhj.WithShards), while disorder handling and the quality-driven
// buffer-size feedback loop stay global — so every shard count produces
// exactly the same results and the same adaptation trajectory, only
// faster on multi-core hosts.
//
// See the top-level README.md for the full API tour and the other
// deployment shapes.
package main

import (
	"fmt"
	"runtime"
	"time"

	qdhj "repro"
	"repro/internal/gen"
	"repro/internal/stream"
)

func main() {
	ds := gen.Synthetic3(gen.SynthConfig{Duration: 2 * stream.Minute, Seed: 12})
	fmt.Printf("3-way equi join, %d tuples, GOMAXPROCS=%d\n\n", len(ds.Arrivals), runtime.GOMAXPROCS(0))
	fmt.Printf("%-8s  %-12s  %-12s  %-10s  %s\n", "shards", "results", "avg K (ms)", "adapts", "tuples/s")

	for _, shards := range []int{1, 2, 4, 8} {
		j := qdhj.NewJoin(ds.Cond, ds.Windows, qdhj.Options{Gamma: 0.95},
			qdhj.WithShards(shards))
		in := ds.Arrivals.Clone()
		t0 := time.Now()
		for _, e := range in {
			j.Push(e)
		}
		j.Close()
		dt := time.Since(t0).Seconds()
		fmt.Printf("%-8d  %-12d  %-12.0f  %-10d  %.0f\n",
			shards, j.Results(), j.AvgK(), j.Adaptations(), float64(len(in))/dt)
	}
	fmt.Println("\nIdentical results and adaptation trajectories at every shard count:")
	fmt.Println("the partitioner hash-routes by the planner's equi key class, and the")
	fmt.Println("per-shard streams merge deterministically at each interval boundary.")
}
