// Equijoin3: the paper's Q×3 — a 3-way equi join over three synthetic
// out-of-order streams — demonstrating how the user-specified recall
// requirement Γ steers the latency/quality tradeoff: higher Γ, larger
// buffers, more of the true results.
//
// See the top-level README.md for the full API tour and the other
// deployment shapes.
package main

import (
	"fmt"

	qdhj "repro"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/stream"
)

func main() {
	ds := gen.Synthetic3(gen.SynthConfig{Duration: 2 * stream.Minute, Seed: 3})
	truth := oracle.TrueResults(ds.Cond, ds.Windows, ds.Arrivals)
	fmt.Printf("3-way equi join, %d tuples, %d true results\n\n", len(ds.Arrivals), truth.Total())
	fmt.Printf("%-8s  %-14s  %-14s  %s\n", "Γ", "avg buffer", "results", "recall")

	for _, gamma := range []float64{0.8, 0.9, 0.95, 0.99} {
		// WithShards runs the operator partition-parallel; results and the
		// adaptation trajectory are identical to the single-threaded path.
		j := qdhj.NewJoin(ds.Cond, ds.Windows, qdhj.Options{Gamma: gamma},
			qdhj.WithShards(4))
		for _, e := range ds.Arrivals.Clone() {
			j.Push(e)
		}
		j.Close()
		recall := float64(j.Results()) / float64(truth.Total())
		fmt.Printf("%-8g  %10.0f ms  %-14d  %.4f\n", gamma, j.AvgK(), j.Results(), recall)
	}
}
