// Quickstart: a 2-way equi join over two out-of-order streams with a
// quality requirement of γ(P) ≥ 0.95, showing how the framework keeps the
// sorting buffer — and therefore the added result latency — small while the
// recall requirement is met.
//
// See the top-level README.md for the full API tour and the other
// deployment shapes.
package main

import (
	"fmt"
	"math/rand"

	qdhj "repro"
)

func main() {
	// Two streams of (key) readings, one tuple every 10 ms each, joined on
	// attribute 0 within 2-second sliding windows.
	cond := qdhj.EquiChain(2, 0)
	windows := []qdhj.Time{2 * qdhj.Second, 2 * qdhj.Second}

	var results int64
	j := qdhj.NewJoin(cond, windows,
		qdhj.Options{
			Gamma:  0.95,             // required recall over the last…
			Period: 30 * qdhj.Second, // …30 seconds of results
		},
		qdhj.WithResultCounts(func(ts qdhj.Time, n int64) { results += n }),
		qdhj.WithAdaptHook(func(ev qdhj.AdaptEvent) {
			if ev.Now%(10*qdhj.Second) == 0 {
				fmt.Printf("t=%-8v buffer K=%v\n", ev.Now, ev.NewK)
			}
		}),
	)

	// Feed one simulated minute: every 6th tuple arrives ~500 ms late, and
	// 1 in 200 arrives up to 5 s late.
	rng := rand.New(rand.NewSource(1))
	var seq uint64
	for ts := qdhj.Time(5000); ts < 65_000; ts += 10 {
		for src := 0; src < 2; src++ {
			t := ts
			switch {
			case rng.Intn(200) == 0:
				t -= qdhj.Time(rng.Intn(5000))
			case rng.Intn(6) == 0:
				t -= qdhj.Time(rng.Intn(500))
			}
			j.Push(&qdhj.Tuple{
				TS:    t,
				Seq:   seq,
				Src:   src,
				Attrs: []float64{float64(rng.Intn(20))},
			})
			seq++
		}
	}
	j.Close()

	fmt.Printf("\nresults produced: %d\n", results)
	fmt.Printf("average buffer:   %.0f ms (vs 5000 ms worst-case delay)\n", j.AvgK())
	fmt.Printf("adaptation steps: %d\n", j.Adaptations())
}
