// Soccer: the paper's motivating real-world scenario (Q×2 on the DEBS-2013
// style player-position data). Two sensor streams — one per team — are
// joined with a user-defined distance predicate to detect opposing players
// within 5 meters of each other inside a 5-second window, while network
// delays of up to ~26 seconds disorder both streams.
//
// The example contrasts three disorder handling policies on the same data:
// no buffering, maximum buffering, and the paper's quality-driven buffering
// with Γ = 0.95.
package main

import (
	"fmt"

	qdhj "repro"
	"repro/internal/gen"
	"repro/internal/stream"
)

func run(name string, opt qdhj.Options, ds *gen.Dataset) {
	j := qdhj.NewJoin(ds.Cond, ds.Windows, opt)
	for _, e := range ds.Arrivals.Clone() {
		j.Push(e)
	}
	j.Close()
	fmt.Printf("%-16s  results %-9d  avg buffer %8.0f ms\n", name, j.Results(), j.AvgK())
}

func main() {
	// Three simulated minutes of play, ~190 readings/s across both teams.
	ds := gen.Soccer(gen.SoccerConfig{Duration: 3 * stream.Minute, Seed: 7})
	maxDelay, _ := ds.Arrivals.MaxDelay()
	fmt.Printf("%d readings, max network delay %v\n\n", len(ds.Arrivals), maxDelay)

	run("no buffering", qdhj.Options{Policy: qdhj.NoSlack}, ds)
	run("max buffering", qdhj.Options{Policy: qdhj.MaxSlack}, ds)
	run("quality-driven", qdhj.Options{
		Policy: qdhj.QualityDriven,
		Gamma:  0.95,
		Period: qdhj.Minute,
	}, ds)

	fmt.Println("\nquality-driven buffering recovers most results at a small")
	fmt.Println("fraction of the latency that maximum buffering costs.")
}
