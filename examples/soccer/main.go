// Soccer: the paper's motivating real-world scenario (Q×2 on the DEBS-2013
// style player-position data). Two sensor streams — one per team — are
// joined with a user-defined distance predicate to detect opposing players
// within 5 meters of each other inside a 5-second window, while network
// delays of up to ~26 seconds disorder both streams.
//
// The example demonstrates two things:
//
//   - The typed Band API: dist() < 5 is expressed as two band predicates
//     |x0−x1| ≤ 5 and |y0−y1| ≤ 5 (the bounding box of the circle, resolved
//     to sorted range-index probes) plus the exact-circle residual as a
//     generic predicate. The box-then-circle plan produces exactly the same
//     results as the closure-only condition — the timing contrast below
//     shows why the band form is the one to write.
//
//   - The three disorder handling policies on the same data: no buffering,
//     maximum buffering, and the paper's quality-driven buffering with
//     Γ = 0.95.
//
// See the top-level README.md for the full API tour and the other
// deployment shapes.
package main

import (
	"fmt"
	"time"

	qdhj "repro"
	"repro/internal/gen"
	"repro/internal/stream"
)

// proximityCond builds the Q×2 condition with the Band API: the bounding
// box of the 5 m circle as two index-backed band predicates, the exact
// circle as the generic residual over the box survivors.
func proximityCond(meters float64) *qdhj.Condition {
	thr2 := meters * meters
	return qdhj.Cross(2).
		Band(0, 1, 1, 1, meters). // |x0 − x1| ≤ 5 → range-index probe
		Band(0, 2, 1, 2, meters). // |y0 − y1| ≤ 5 → residual band filter
		Where([]int{0, 1}, func(assign []*qdhj.Tuple) bool {
			dx := assign[0].Attr(1) - assign[1].Attr(1)
			dy := assign[0].Attr(2) - assign[1].Attr(2)
			return dx*dx+dy*dy < thr2
		})
}

// legacyCond is the same query as one opaque closure — the pre-band
// formulation. Every probe scans the whole opposing window.
func legacyCond(meters float64) *qdhj.Condition {
	thr2 := meters * meters
	return qdhj.Cross(2).Where([]int{0, 1}, func(assign []*qdhj.Tuple) bool {
		dx := assign[0].Attr(1) - assign[1].Attr(1)
		dy := assign[0].Attr(2) - assign[1].Attr(2)
		return dx*dx+dy*dy < thr2
	})
}

func run(name string, cond *qdhj.Condition, opt qdhj.Options, ds *gen.Dataset) (int64, time.Duration) {
	j := qdhj.NewJoin(cond, ds.Windows, opt)
	start := time.Now()
	for _, e := range ds.Arrivals.Clone() {
		j.Push(e)
	}
	j.Close()
	elapsed := time.Since(start)
	fmt.Printf("%-16s  results %-9d  avg buffer %8.0f ms\n", name, j.Results(), j.AvgK())
	return j.Results(), elapsed
}

func main() {
	// Three simulated minutes of play, ~190 readings/s across both teams.
	ds := gen.Soccer(gen.SoccerConfig{Duration: 3 * stream.Minute, Seed: 7})
	maxDelay, _ := ds.Arrivals.MaxDelay()
	fmt.Printf("%d readings, max network delay %v\n\n", len(ds.Arrivals), maxDelay)

	const meters = 5
	run("no buffering", proximityCond(meters), qdhj.Options{Policy: qdhj.NoSlack}, ds)
	run("max buffering", proximityCond(meters), qdhj.Options{Policy: qdhj.MaxSlack}, ds)
	run("quality-driven", proximityCond(meters), qdhj.Options{
		Policy: qdhj.QualityDriven,
		Gamma:  0.95,
		Period: qdhj.Minute,
	}, ds)

	fmt.Println("\nquality-driven buffering recovers most results at a small")
	fmt.Println("fraction of the latency that maximum buffering costs.")

	// Band plan vs. opaque closure: identical results, different work.
	fmt.Println()
	bandN, bandDt := run("band plan", proximityCond(meters), qdhj.Options{Policy: qdhj.NoSlack}, ds)
	legacyN, legacyDt := run("closure plan", legacyCond(meters), qdhj.Options{Policy: qdhj.NoSlack}, ds)
	fmt.Printf("\nsame %d results; band plan %.1fx faster (%v vs %v)\n",
		bandN, float64(legacyDt)/float64(bandDt), bandDt.Round(time.Millisecond), legacyDt.Round(time.Millisecond))
	if bandN != legacyN {
		panic("band and closure plans disagree — planner bug")
	}
}
