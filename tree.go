package qdhj

import (
	"repro/internal/adapt"
	"repro/internal/dist"
	"repro/internal/feedback"
	"repro/internal/plan"
)

// TreeJoin is an m-way join executed as a left-deep tree of binary join
// operators, each fronted by its own Synchronizer — the distributed MSWJ
// deployment shape of Sec. V of the paper. It shares the join condition
// model and the K-slack disorder handling with Join, but trades the single
// MJoin-style operator for composable binary stages.
//
// By default the buffers stay at the fixed size k. WithTreeAdaptation puts
// the quality-driven feedback loop in charge instead (k then only seeds the
// buffers until the first decision): one global Same-K decision exactly
// like Join's, or — with WithPerStageK — one K per binary stage, chosen
// from that stage's two input delay profiles and stage-local selectivity
// against the recall requirement derived at the tree root.
type TreeJoin struct {
	t  *dist.Tree         // static-K run
	at *dist.AdaptiveTree // adaptive run (t == nil)
}

// TreeResult is one result of a TreeJoin: the constituent tuples in stream
// order, the result timestamp, and the delay annotation of the tuple whose
// arrival produced it.
type TreeResult struct {
	TS     Time
	Delay  Time
	Tuples []*Tuple
}

// TreeOption configures the optional adaptation of a TreeJoin or
// PipelinedTreeJoin.
type TreeOption func(*treeOpts)

type treeOpts struct {
	adapt    *Options
	perStage bool
	onDecide func(at Time, ks []Time)
}

// WithTreeAdaptation enables the quality-driven feedback loop on the tree:
// buffer sizes are re-decided every adaptation interval from the recall
// requirement opt.Gamma, exactly as Join does for the single operator. The
// zero Options value gives the paper's defaults (Γ = 0.95, P = 1 min,
// L = 1 s, NonEqSel). Options.Policy selects the buffer-sizing policy;
// StaticSlack is rejected — build the tree without adaptation instead.
func WithTreeAdaptation(opt Options) TreeOption {
	return func(o *treeOpts) { o.adapt = &opt }
}

// WithPerStageK gives every binary tree stage its own decision scope: stage
// j's K is chosen from the delay profiles of its two inputs (the merged
// left-subtree streams and raw stream j+1) and the stage-local selectivity
// snapshot, against the instant requirement Γ′ derived at the tree root.
// On asymmetric-delay inputs this buys strictly less total buffered delay
// than the global Same-K for the same recall target (DESIGN.md §8).
// Implies WithTreeAdaptation with default Options unless one is given.
func WithPerStageK() TreeOption {
	return func(o *treeOpts) {
		o.perStage = true
		if o.adapt == nil {
			o.adapt = &Options{}
		}
	}
}

// WithTreeDecideHook registers a callback observing every adaptation
// decision: the boundary time and the chosen K per decision scope (one
// entry under Same-K, one per stage under WithPerStageK; the slice is
// reused — copy to retain).
func WithTreeDecideHook(f func(at Time, ks []Time)) TreeOption {
	return func(o *treeOpts) { o.onDecide = f }
}

// validate rejects option sets that would silently do nothing.
func (o *treeOpts) validate() {
	if o.onDecide != nil && o.adapt == nil {
		panic("qdhj: WithTreeDecideHook without WithTreeAdaptation/WithPerStageK — no decisions will ever fire; enable adaptation or drop the hook")
	}
}

// adaptiveConfig maps the qdhj Options onto the dist adaptation config.
func (o *treeOpts) adaptiveConfig(initialK Time) dist.AdaptiveConfig {
	opt := *o.adapt
	if opt.Gamma == 0 {
		opt.Gamma = 0.95
	}
	var pf feedback.PolicyFactory
	switch opt.Policy {
	case MaxSlack:
		pf = feedback.MaxKPolicy()
	case NoSlack:
		pf = feedback.NoKPolicy()
	case StaticSlack:
		panic("qdhj: WithTreeAdaptation with the StaticSlack policy — a static buffer needs no feedback loop; build the tree without WithTreeAdaptation and pass the buffer size as k")
	default:
		pf = feedback.ModelPolicy()
	}
	return dist.AdaptiveConfig{
		Adapt: adapt.Config{
			Gamma:    opt.Gamma,
			P:        opt.Period,
			L:        opt.Interval,
			B:        opt.BasicWindow,
			G:        opt.Granularity,
			Strategy: opt.Strategy,
			Search:   opt.Search,
		},
		PerStage: o.perStage,
		Policy:   pf,
		InitialK: initialK,
		OnDecide: o.onDecide,
	}
}

// NewTreeJoin creates the binary-tree join with the common buffer size k on
// every input stream — fixed for the whole run unless a WithTreeAdaptation
// or WithPerStageK option enables the feedback loop.
//
// The deployment shape is the plan layer's left-deep spine; for bushy
// shapes or stage-wise sharding, plan explicitly and run through
// NewJoin(..., WithPlan(p)).
func NewTreeJoin(cond *Condition, windows []Time, k Time, emit func(TreeResult), opts ...TreeOption) *TreeJoin {
	var o treeOpts
	for _, op := range opts {
		op(&o)
	}
	o.validate()
	var sink func(dist.Partial)
	if emit != nil {
		sink = func(p dist.Partial) {
			emit(TreeResult{TS: p.TS, Delay: p.Delay, Tuples: p.Parts})
		}
	}
	g := plan.Spine(cond, windows)
	if o.adapt != nil {
		return &TreeJoin{at: plan.BuildSpineAdaptive(g, o.adaptiveConfig(k), sink)}
	}
	return &TreeJoin{t: plan.BuildSpineStatic(g, k, sink)}
}

// Push feeds a raw arrival. Pushing into a closed tree panics.
func (j *TreeJoin) Push(t *Tuple) {
	if j.at != nil {
		j.at.Push(t)
		return
	}
	j.t.Push(t)
}

// SetK changes the common buffer size on all streams. On an adaptive tree
// the feedback loop overrides it at the next interval boundary.
func (j *TreeJoin) SetK(k Time) { j.tree().SetK(k) }

// Close flushes all buffers at end of input. Closing twice panics, as does
// pushing afterwards.
func (j *TreeJoin) Close() { j.tree().Finish() }

// Results returns the number of results produced so far.
func (j *TreeJoin) Results() int64 { return j.tree().Results() }

// Operators returns the number of binary join operators in the tree.
func (j *TreeJoin) Operators() int { return j.tree().Operators() }

// Adaptations returns the number of buffer-size decisions taken (0 without
// adaptation).
func (j *TreeJoin) Adaptations() int64 {
	if j.at == nil {
		return 0
	}
	return j.at.Loop().Decisions()
}

// CurrentKs returns the most recent buffer-size decision, one entry per
// decision scope: a single global K under Same-K adaptation, K_j per stage
// under WithPerStageK, nil without adaptation. The slice is live; copy to
// retain.
func (j *TreeJoin) CurrentKs() []Time {
	if j.at == nil {
		return nil
	}
	return j.at.Loop().Ks()
}

// BufferedDelaySum returns the aggregate buffered delay the run paid:
// Σ over adaptation intervals of Σ over the m raw-input buffers of the
// applied K. Per-stage adaptation exists to shrink it (0 without
// adaptation).
func (j *TreeJoin) BufferedDelaySum() float64 {
	if j.at == nil {
		return 0
	}
	return j.at.BufferedDelaySum()
}

func (j *TreeJoin) tree() *dist.Tree {
	if j.at != nil {
		return j.at.Tree()
	}
	return j.t
}

// PipelinedTreeJoin runs the same binary tree with one goroutine per
// operator, connected by channels. The same TreeOptions apply; with
// adaptation enabled, decisions are taken on the ingest goroutine from the
// records stage goroutines have delivered so far (best-effort rather than
// deterministic — see dist.AdaptivePipelined), and buffer-size changes
// travel in-band through the stage channels.
type PipelinedTreeJoin struct {
	p  *dist.Pipelined
	ap *dist.AdaptivePipelined
}

// NewPipelinedTreeJoin creates the pipelined variant with channel buffers of
// the given size (≤0 selects a default).
func NewPipelinedTreeJoin(cond *Condition, windows []Time, k Time, buffer int, opts ...TreeOption) *PipelinedTreeJoin {
	var o treeOpts
	for _, op := range opts {
		op(&o)
	}
	o.validate()
	g := plan.Spine(cond, windows)
	if o.adapt != nil {
		return &PipelinedTreeJoin{ap: plan.BuildSpinePipelinedAdaptive(g, o.adaptiveConfig(k), buffer)}
	}
	return &PipelinedTreeJoin{p: plan.BuildSpinePipelined(g, k, buffer)}
}

// Push feeds a raw arrival from the single producer goroutine. Pushing
// after Close panics.
func (j *PipelinedTreeJoin) Push(t *Tuple) {
	if j.ap != nil {
		j.ap.Push(t)
		return
	}
	j.p.Push(t)
}

// Close signals end of input. Closing twice panics.
func (j *PipelinedTreeJoin) Close() {
	if j.ap != nil {
		j.ap.Close()
		return
	}
	j.p.Close()
}

// Results returns the result channel; drain it until it closes.
func (j *PipelinedTreeJoin) Results() <-chan TreeResult {
	in := j.rawResults()
	out := make(chan TreeResult, 64)
	go func() {
		defer close(out)
		for p := range in {
			out <- TreeResult{TS: p.TS, Delay: p.Delay, Tuples: p.Parts}
		}
	}()
	return out
}

func (j *PipelinedTreeJoin) rawResults() <-chan dist.Partial {
	if j.ap != nil {
		return j.ap.Results()
	}
	return j.p.Results()
}

// Wait blocks until all pipeline stages exit; call after draining Results.
func (j *PipelinedTreeJoin) Wait() {
	if j.ap != nil {
		j.ap.Wait()
		return
	}
	j.p.Wait()
}

// BufferedDelaySum returns the aggregate buffered delay; see
// TreeJoin.BufferedDelaySum. Call after Wait.
func (j *PipelinedTreeJoin) BufferedDelaySum() float64 {
	if j.ap == nil {
		return 0
	}
	return j.ap.BufferedDelaySum()
}
