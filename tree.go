package qdhj

import (
	"repro/internal/dist"
)

// TreeJoin is an m-way join executed as a left-deep tree of binary join
// operators, each fronted by its own Synchronizer — the distributed MSWJ
// deployment shape of Sec. V of the paper. It shares the join condition
// model and the Same-K disorder handling with Join, but trades the single
// MJoin-style operator for composable binary stages.
type TreeJoin struct {
	t *dist.Tree
}

// TreeResult is one result of a TreeJoin: the constituent tuples in stream
// order, the result timestamp, and the delay annotation of the tuple whose
// arrival produced it.
type TreeResult struct {
	TS     Time
	Delay  Time
	Tuples []*Tuple
}

// NewTreeJoin creates the binary-tree join with a fixed common buffer size
// k on every input stream.
func NewTreeJoin(cond *Condition, windows []Time, k Time, emit func(TreeResult)) *TreeJoin {
	var sink func(dist.Partial)
	if emit != nil {
		sink = func(p dist.Partial) {
			emit(TreeResult{TS: p.TS, Delay: p.Delay, Tuples: p.Parts})
		}
	}
	return &TreeJoin{t: dist.NewTree(cond, windows, k, sink)}
}

// Push feeds a raw arrival.
func (j *TreeJoin) Push(t *Tuple) { j.t.Push(t) }

// SetK changes the common buffer size on all streams (Same-K policy).
func (j *TreeJoin) SetK(k Time) { j.t.SetK(k) }

// Close flushes all buffers at end of input.
func (j *TreeJoin) Close() { j.t.Finish() }

// Results returns the number of results produced so far.
func (j *TreeJoin) Results() int64 { return j.t.Results() }

// Operators returns the number of binary join operators in the tree.
func (j *TreeJoin) Operators() int { return j.t.Operators() }

// PipelinedTreeJoin runs the same binary tree with one goroutine per
// operator, connected by channels.
type PipelinedTreeJoin struct {
	p *dist.Pipelined
}

// NewPipelinedTreeJoin creates the pipelined variant with channel buffers of
// the given size (≤0 selects a default).
func NewPipelinedTreeJoin(cond *Condition, windows []Time, k Time, buffer int) *PipelinedTreeJoin {
	return &PipelinedTreeJoin{p: dist.NewPipelined(cond, windows, k, buffer)}
}

// Push feeds a raw arrival from the single producer goroutine.
func (j *PipelinedTreeJoin) Push(t *Tuple) { j.p.Push(t) }

// Close signals end of input.
func (j *PipelinedTreeJoin) Close() { j.p.Close() }

// Results returns the result channel; drain it until it closes.
func (j *PipelinedTreeJoin) Results() <-chan TreeResult {
	out := make(chan TreeResult, 64)
	go func() {
		defer close(out)
		for p := range j.p.Results() {
			out <- TreeResult{TS: p.TS, Delay: p.Delay, Tuples: p.Parts}
		}
	}()
	return out
}

// Wait blocks until all pipeline stages exit; call after draining Results.
func (j *PipelinedTreeJoin) Wait() { j.p.Wait() }
