package qdhj

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/leakcheck"
	"repro/internal/stream"
)

// multiFeed builds a 3-stream workload with bounded disorder for the
// multi-query tests.
func multiFeed(rounds int, seed int64) []*Tuple {
	rng := rand.New(rand.NewSource(seed))
	var out []*Tuple
	var seq uint64
	ts := Time(3000)
	for i := 0; i < rounds; i++ {
		ts += 10
		for src := 0; src < 3; src++ {
			t := ts
			if rng.Intn(4) == 0 {
				t -= Time(rng.Intn(1500))
			}
			out = append(out, &Tuple{TS: t, Seq: seq, Src: src,
				Attrs: []float64{float64(rng.Intn(12)), float64(rng.Intn(200))}})
			seq++
		}
	}
	return out
}

func cloneFeed(in []*Tuple) []*Tuple {
	out := make([]*Tuple, len(in))
	for i, t := range in {
		attrs := append([]float64(nil), t.Attrs...)
		out[i] = &Tuple{TS: t.TS, Seq: t.Seq, Src: t.Src, Attrs: attrs}
	}
	return out
}

func multiSig(r Result) string {
	var b strings.Builder
	for _, t := range r.Tuples {
		if t != nil {
			fmt.Fprintf(&b, "%d:%d,", t.Src, t.Seq)
		}
	}
	return b.String()
}

func multiOpt() Options {
	return Options{Gamma: 0.9, Period: 2000, Interval: 250, BasicWindow: 50, Granularity: 50}
}

// TestMultiJoinVsStandalone: through the public API, every query on a
// shared MultiJoin is bit-for-bit a standalone Join — ordered results and
// the full adaptation trajectory.
func TestMultiJoinVsStandalone(t *testing.T) {
	leakcheck.Check(t)
	in := multiFeed(300, 7)
	windows := []Time{700, 700, 700}
	cond := func() *Condition { return EquiChain(3, 0) }

	var wantRes []string
	var wantAdapts []AdaptEvent
	ref := NewJoin(cond(), windows, multiOpt(),
		WithResults(func(r Result) { wantRes = append(wantRes, multiSig(r)) }),
		WithAdaptHook(func(ev AdaptEvent) { wantAdapts = append(wantAdapts, ev) }))
	for _, e := range cloneFeed(in) {
		ref.Push(e)
	}
	ref.Close()

	const n = 4
	mj := NewMultiJoin(3)
	gotRes := make([][]string, n)
	gotAdapts := make([][]AdaptEvent, n)
	mqs := make([]*MultiQuery, n)
	for i := 0; i < n; i++ {
		i := i
		mqs[i] = mj.Add(cond(), windows, multiOpt(),
			WithResults(func(r Result) { gotRes[i] = append(gotRes[i], multiSig(r)) }),
			WithAdaptHook(func(ev AdaptEvent) { gotAdapts[i] = append(gotAdapts[i], ev) }))
	}
	for _, e := range cloneFeed(in) {
		mj.Push(e)
	}
	mj.Close()

	if ref.Results() == 0 {
		t.Fatal("degenerate workload: standalone produced no results")
	}
	for i := 0; i < n; i++ {
		if got, want := mqs[i].Results(), ref.Results(); got != want {
			t.Errorf("q%d: %d results, want %d", i, got, want)
		}
		if len(gotRes[i]) != len(wantRes) {
			t.Errorf("q%d: %d emitted, want %d", i, len(gotRes[i]), len(wantRes))
			continue
		}
		for j := range wantRes {
			if gotRes[i][j] != wantRes[j] {
				t.Errorf("q%d: result[%d] = %s, want %s", i, j, gotRes[i][j], wantRes[j])
				break
			}
		}
		if len(gotAdapts[i]) != len(wantAdapts) {
			t.Errorf("q%d: %d adapt events, want %d", i, len(gotAdapts[i]), len(wantAdapts))
			continue
		}
		for j := range wantAdapts {
			if gotAdapts[i][j] != wantAdapts[j] {
				t.Errorf("q%d: adapt[%d] = %+v, want %+v", i, j, gotAdapts[i][j], wantAdapts[j])
				break
			}
		}
		if got, want := mqs[i].AvgK(), ref.AvgK(); got != want {
			t.Errorf("q%d: AvgK %v, want %v", i, got, want)
		}
	}

	snap := mj.Snapshot()
	if len(snap) != n {
		t.Fatalf("snapshot has %d entries, want %d", len(snap), n)
	}
	for i, qs := range snap {
		if qs.ID != int64(i) || qs.Epoch != 0 || qs.Results != ref.Results() {
			t.Errorf("snapshot[%d] = %+v, want id=%d epoch=0 results=%d", i, qs, i, ref.Results())
		}
	}
}

// TestMultiJoinRunChannel: per-query result channels deliver the standalone
// result stream and close on Close (or Remove).
func TestMultiJoinRunChannel(t *testing.T) {
	leakcheck.Check(t)
	in := multiFeed(250, 11)
	windows := []Time{700, 700, 700}

	var want []string
	ref := NewJoin(EquiChain(3, 0), windows, multiOpt(),
		WithResults(func(r Result) { want = append(want, multiSig(r)) }))
	for _, e := range cloneFeed(in) {
		ref.Push(e)
	}
	ref.Close()

	mj := NewMultiJoin(3)
	mq := mj.Add(EquiChain(3, 0), windows, multiOpt())
	mqRemoved := mj.Add(EquiChain(3, 0), windows, multiOpt())
	ch := mq.RunChannel()
	chRemoved := mqRemoved.RunChannel()

	got := make(chan []string, 1)
	go func() {
		var sigs []string
		for r := range ch {
			sigs = append(sigs, multiSig(r))
		}
		got <- sigs
	}()
	removedClosed := make(chan struct{})
	go func() {
		for range chRemoved {
		}
		close(removedClosed)
	}()

	feed := cloneFeed(in)
	half := len(feed) / 2
	for _, e := range feed[:half] {
		mj.Push(e)
	}
	mj.Remove(mqRemoved)
	<-removedClosed
	for _, e := range feed[half:] {
		mj.Push(e)
	}
	mj.Close()

	sigs := <-got
	if len(sigs) != len(want) {
		t.Fatalf("channel delivered %d results, want %d", len(sigs), len(want))
	}
	for i := range want {
		if sigs[i] != want[i] {
			t.Fatalf("channel result[%d] = %s, want %s", i, sigs[i], want[i])
		}
	}
}

// TestMultiJoinExplain: the sharing report shows one lane with one probe
// class and a fanned residual for identical queries, and separates
// structurally different queries.
func TestMultiJoinExplain(t *testing.T) {
	leakcheck.Check(t)
	windows := []Time{700, 700, 700}
	mj := NewMultiJoin(3)
	for i := 0; i < 8; i++ {
		mj.Add(EquiChain(3, 0), windows, multiOpt())
	}
	mj.Add(Cross(3).Equi(0, 0, 1, 0).Band(1, 1, 2, 1, 8), windows, multiOpt())
	mj.Add(EquiChain(3, 0), windows, Options{Policy: NoSlack})

	// Model-policy buffer trajectories depend on the query's own condition
	// (its profiler sees that query's match counts), so the band query gets
	// its own lane; only provably identical trajectories share one.
	info := mj.SharingInfo()
	if len(info) != 3 {
		t.Fatalf("expected 3 lanes (equichain-model ×8, band-model, NoSlack), got %d", len(info))
	}
	if len(info[0].Classes) != 1 || info[0].Classes[0].Residuals[0].Members != 8 {
		t.Fatalf("unexpected lane 0 structure: %+v", info[0])
	}
	out := mj.Explain()
	for _, frag := range []string{"10 queries", "3 shared lanes", "residual ×8", "probe class"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Explain missing %q:\n%s", frag, out)
		}
	}
	mj.Close()
}

// TestMultiJoinLifecyclePanics pins the public lifecycle contract.
func TestMultiJoinLifecyclePanics(t *testing.T) {
	leakcheck.Check(t)
	windows := []Time{500, 500}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}

	mj := NewMultiJoin(2)
	mq := mj.Add(EquiChain(2, 0), windows, multiOpt())
	mj.Push(&Tuple{TS: 100, Src: 0, Attrs: []float64{1, 1}})
	mj.Close()
	mustPanic("push-after-close", func() { mj.Push(&Tuple{TS: 200, Src: 1, Attrs: []float64{1, 1}}) })
	mustPanic("double-close", func() { mj.Close() })
	mustPanic("add-after-close", func() { mj.Add(EquiChain(2, 0), windows, multiOpt()) })
	mustPanic("remove-after-close", func() { mj.Remove(mq) })

	mj2 := NewMultiJoin(2)
	mq2 := mj2.Add(EquiChain(2, 0), windows, multiOpt())
	mustPanic("remove-nil", func() { mj2.Remove(nil) })
	mustPanic("remove-foreign", func() {
		mj3 := NewMultiJoin(2)
		mq3 := mj3.Add(EquiChain(2, 0), windows, multiOpt())
		mj2.Remove(mq3)
	})
	mj2.Remove(mq2)
	mustPanic("double-remove", func() { mj2.Remove(mq2) })
	mustPanic("runchannel-removed", func() { mq2.RunChannel() })

	mj4 := NewMultiJoin(2)
	mq4 := mj4.Add(EquiChain(2, 0), windows, multiOpt())
	mq4.RunChannel()
	mustPanic("runchannel-twice", func() { mq4.RunChannel() })
	mq5 := mj4.Add(EquiChain(2, 0), windows, multiOpt(), WithResults(func(Result) {}))
	mustPanic("runchannel-with-sink", func() { mq5.RunChannel() })

	mustPanic("mutate-cond-after-add", func() {
		mj5 := NewMultiJoin(2)
		cond := EquiChain(2, 0)
		mj5.Add(cond, windows, multiOpt())
		cond.Equi(0, 1, 1, 1)
	})

	for name, opt := range map[string]JoinOption{
		"with-shards":      WithShards(2),
		"with-batch":       WithBatchSize(64),
		"with-autoplan":    WithAutoPlan(),
		"with-supervision": WithSupervision(Supervision{}),
	} {
		opt := opt
		mustPanic(name, func() {
			mj6 := NewMultiJoin(2)
			mj6.Add(EquiChain(2, 0), windows, multiOpt(), opt)
		})
	}
	_ = stream.Time(0)
}
