package feedback

import (
	"math"
	"testing"

	"repro/internal/adapt"
	"repro/internal/stats"
	"repro/internal/stream"
)

func testLoop(t *testing.T, scopes []Scope) *Loop {
	t.Helper()
	return New(Config{
		Windows: []stream.Time{stream.Second, stream.Second, stream.Second},
		Adapt:   adapt.Config{Gamma: 0.9, P: 10 * stream.Second, L: stream.Second},
		Scopes:  scopes,
	})
}

// TestBoundarySchedule: the first observation anchors the schedule; one
// decision per crossed interval; a sparse arrival crossing several
// boundaries collapses into ONE decision at the last crossed boundary.
func TestBoundarySchedule(t *testing.T) {
	l := testLoop(t, nil)
	if _, ok := l.Boundary(5000); ok {
		t.Fatal("first observation must only anchor the schedule")
	}
	if _, ok := l.Boundary(5500); ok {
		t.Fatal("mid-interval: no decision due")
	}
	at, ok := l.Boundary(6000)
	if !ok || at != 6000 {
		t.Fatalf("boundary at 6000: got (%d,%v)", at, ok)
	}
	// Jump across 3 boundaries: one decision, anchored at the last (9500
	// lies in [9000, 10000), so the last crossed boundary is 9000).
	at, ok = l.Boundary(9500)
	if !ok || at != 9000 {
		t.Fatalf("collapsed boundary: got (%d,%v), want (9000,true)", at, ok)
	}
	if _, ok := l.Boundary(9900); ok {
		t.Fatal("9900 is before the next boundary 10000")
	}
}

// TestScopeSourceMerge: multi-stream groups merge CDFs weighted by count,
// take the min KSync and the max recent delay.
func TestScopeSourceMerge(t *testing.T) {
	g := 10 * stream.Millisecond
	mgr := stats.NewManager(3, g)
	// Stream 0: delays 0 (3 tuples in ts order). Stream 1: one 0-delay, then
	// a 30ms-late tuple. Stream 2: unused by the scope.
	push := func(src int, ts stream.Time) {
		mgr.Observe(&stream.Tuple{Src: src, TS: ts})
	}
	push(0, 1000)
	push(0, 1010)
	push(0, 1020)
	push(1, 1000)
	push(1, 1030)
	push(1, 1000) // 30ms late
	push(2, 1000)

	src := newScopeSource(mgr, [][]int{{0, 1}, {2}})
	cdf := src.CDF(0)
	if cdf == nil {
		t.Fatal("merged CDF is nil despite observed delays")
	}
	// 6 arrivals in the group, 5 with delay 0, one in bucket 3 (30ms at
	// g=10ms): Pr[D ≤ 0] = 5/6, Pr[D ≤ 30ms] = 1.
	if got, want := cdf[0], 5.0/6.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("merged cdf[0] = %v, want %v", got, want)
	}
	if got := cdf[len(cdf)-1]; math.Abs(got-1) > 1e-12 {
		t.Errorf("merged cdf top = %v, want 1", got)
	}
	if got, want := src.MaxDelayRecent(), 30*stream.Millisecond; got != want {
		t.Errorf("scope MaxDelayRecent = %v, want %v", got, want)
	}
	// The singleton group delegates to the manager unchanged.
	if got, want := src.KSync(1), mgr.KSync(2); got != want {
		t.Errorf("singleton KSync = %v, want manager's %v", got, want)
	}
}

// TestSingleScopeMatchesManager: for the global scope, the scope source is
// numerically identical to the manager itself — the property the pipeline's
// bit-for-bit golden trace rests on.
func TestSingleScopeMatchesManager(t *testing.T) {
	g := 10 * stream.Millisecond
	mgr := stats.NewManager(2, g)
	for i := 0; i < 50; i++ {
		ts := stream.Time(1000 + 10*i)
		mgr.Observe(&stream.Tuple{Src: 0, TS: ts})
		if i%5 == 0 {
			ts -= 40
		}
		mgr.Observe(&stream.Tuple{Src: 1, TS: ts})
	}
	src := newScopeSource(mgr, [][]int{{0}, {1}})
	for i := 0; i < 2; i++ {
		a, b := src.CDF(i), mgr.CDF(i)
		if len(a) != len(b) {
			t.Fatalf("stream %d: CDF lengths differ", i)
		}
		for d := range a {
			if a[d] != b[d] {
				t.Fatalf("stream %d bucket %d: %v != %v", i, d, a[d], b[d])
			}
		}
		if src.KSync(i) != mgr.KSync(i) {
			t.Errorf("stream %d: KSync differs", i)
		}
	}
	if src.MaxDelayRecent() != mgr.MaxDelayRecent() {
		t.Error("MaxDelayRecent differs from manager")
	}
}
