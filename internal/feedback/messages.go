package feedback

// Protocol message types for distributed deployments. The feedback loop is
// global: one driver observes arrivals, runs the profiler/monitor/policy,
// and decides one K per scope at every adaptation boundary. When the
// workers live in other processes (internal/net), the boundary protocol
// and the K decisions travel as the messages below — in-band within the
// tuple stream, so their ordering relative to the data is exactly the
// ordering of the in-process runtime:
//
//   - KChangeMsg follows the last tuple of the interval it was decided
//     from and precedes the first tuple of the next — workers observe K
//     transitions at the same stream positions the driver applied them.
//   - BarrierMsg quiesces a worker: everything sent before it has been
//     processed when the matching BarrierAck returns. The ack carries the
//     worker's per-arrival n^on(e) deltas (and materialized results), which
//     the driver merges in deterministic (arrival, shard) order and replays
//     into the loop — the networked analogue of shard.FlushInterval. One
//     boundary therefore costs one round-trip, not a stop-the-world.
//
// The structs here are the protocol's vocabulary; internal/net owns the
// byte encoding.

import "repro/internal/stream"

// BarrierMsg asks a worker to quiesce and report its interval deltas. Seq
// numbers barriers per session, starting at 1; OutT is the driver's global
// watermark onT at the boundary (the output-progress anchor DecideAt uses).
type BarrierMsg struct {
	Seq  uint64
	OutT stream.Time
}

// BarrierAck is a worker's reply to BarrierMsg: the per-arrival result
// counts (sparse n^on(e) deltas, indexed by the driver's arrival counter)
// and any materialized results buffered since the previous barrier.
// Failed/Err report a contained worker fault; the worker keeps acking
// barriers after a fault (in drain mode) so the driver's quiesce protocol
// never deadlocks — exactly the in-process worker contract.
type BarrierAck struct {
	Seq    uint64
	Worker int
	// K is the buffer size the worker last observed via KChangeMsg — a
	// protocol-ordering diagnostic (it must equal the driver's previous
	// decision), not an input to any computation.
	K      stream.Time
	Failed bool
	Err    string
}

// KChangeMsg carries one adaptation decision to the workers, ordered
// in-band within the tuple stream. Ks has one entry per decision scope
// (a single entry on flat deployments).
type KChangeMsg struct {
	Seq uint64
	Ks  []stream.Time
}
