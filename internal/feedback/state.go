package feedback

import (
	"repro/internal/monitor"
	"repro/internal/profiler"
	"repro/internal/stats"
	"repro/internal/stream"
)

// State is the serializable snapshot of a Loop between adaptation steps. It
// carries no tuple references: the Statistics Manager histories are delay and
// skew values, the profilers hold per-bucket counters, and the monitor holds
// (timestamp, count) points — so the loop checkpoints independently of the
// executor's window contents.
type State struct {
	Started bool
	NextAt  stream.Time
	MaxTS   stream.Time
	Ks      []stream.Time
	N       int64
	SumK    []float64 // per scope

	Profilers []profiler.State // per scope, mid-interval accumulation
	Stats     stats.State
	Monitor   monitor.State

	CumProduced int64
	CumTrue     float64
}

// State captures the loop's state. On an async loop it barriers the feeder
// first, so the snapshot is consistent with every Observe so far; callers
// must have quiesced their own deferred feeds (RecordInOrder etc.) already.
func (l *Loop) State() State {
	l.Sync()
	st := State{
		Started: l.started,
		NextAt:  l.nextAt,
		MaxTS:   l.maxTS,
		Ks:      append([]stream.Time(nil), l.ks...),
		N:       l.n,

		Stats:   l.stats.State(),
		Monitor: l.mon.State(),

		CumProduced: l.cumProduced,
		CumTrue:     l.cumTrue,
	}
	for _, sc := range l.scopes {
		st.SumK = append(st.SumK, sc.sumK)
		st.Profilers = append(st.Profilers, sc.prof.State())
	}
	return st
}

// Restore loads a captured state into a freshly constructed loop (same
// Config). The policy models themselves are decision-stateless — every input
// they read at the next boundary (histograms, ADWIN, K^sync, MaxDelay,
// monitor window) is restored here — so no model state is serialized.
func (l *Loop) Restore(st State) {
	l.started = st.Started
	l.nextAt = st.NextAt
	l.maxTS = st.MaxTS
	copy(l.ks, st.Ks)
	l.n = st.N
	l.cumProduced = st.CumProduced
	l.cumTrue = st.CumTrue
	for i, sc := range l.scopes {
		sc.sumK = st.SumK[i]
		sc.prof.Restore(st.Profilers[i])
	}
	l.stats.Restore(st.Stats)
	l.mon.Restore(st.Monitor)
}

// RecordShed accounts a load-shed tuple to the scope's profiler: the drop
// depresses the recall estimate (mean-charged into N^on_true) without
// entering the Eq. (6) selectivity maps.
func (l *Loop) RecordShed(scope int, delay stream.Time) {
	l.scopes[scope].prof.RecordShed(delay)
}

// Score estimates the productivity of a tuple with the given delay under
// scope's current interval statistics; the load shedder evicts minimum-Score
// tuples first.
func (l *Loop) Score(scope int, delay stream.Time) float64 {
	return l.scopes[scope].prof.Score(delay)
}

// RecallEstimate returns the run-level recall estimate: cumulative produced
// results over the cumulative true-size estimate, capped at 1. Before the
// first decision there is no true-size estimate yet; the neutral 1 is
// returned.
func (l *Loop) RecallEstimate() float64 {
	if l.cumTrue <= 0 {
		return 1
	}
	r := float64(l.cumProduced) / l.cumTrue
	if r > 1 {
		return 1
	}
	return r
}
