package feedback

import (
	"repro/internal/stats"
	"repro/internal/stream"
)

// scopeSource adapts the shared Statistics Manager to one decision scope's
// adapt.Source: model input i is the merge of the raw streams in groups[i].
// Singleton groups (the global Same-K scope, a tree stage's raw right input)
// delegate to the manager unchanged, so a single-scope loop is statistically
// identical to the pre-extraction pipeline. Multi-stream groups (the left
// side of a tree stage: the streams bound in the partial results) merge as
// follows:
//
//   - CDF: the count-weighted average of the member CDFs — the delay
//     distribution of a tuple drawn uniformly from the group's arrivals,
//     which is exactly what the left input's constituents are.
//   - KSync: the group minimum. K^sync_i is "free" buffering the model
//     subtracts from the K a stream still needs; for a composite input the
//     least-buffered member bounds what all constituents are guaranteed,
//     so the minimum is the conservative (never recall-overestimating)
//     choice.
//   - MaxDelayRecent: the maximum over all member streams of both groups,
//     bounding the scope's Alg. 3 search exactly as the global MaxD^H
//     bounds the global search.
type scopeSource struct {
	mgr    *stats.Manager
	groups [][]int
}

func newScopeSource(mgr *stats.Manager, groups [][]int) *scopeSource {
	return &scopeSource{mgr: mgr, groups: groups}
}

// CDF implements adapt.Source.
func (s *scopeSource) CDF(i int) []float64 {
	g := s.groups[i]
	if len(g) == 1 {
		return s.mgr.CDF(g[0])
	}
	var (
		cdfs    [][]float64
		weights []int64
		tot     int64
		maxLen  int
	)
	for _, st := range g {
		n := s.mgr.Hist(st).Total()
		if n == 0 {
			continue
		}
		c := s.mgr.CDF(st)
		cdfs = append(cdfs, c)
		weights = append(weights, n)
		tot += n
		if len(c) > maxLen {
			maxLen = len(c)
		}
	}
	if tot == 0 || maxLen == 0 {
		return nil
	}
	out := make([]float64, maxLen)
	for d := 0; d < maxLen; d++ {
		var v float64
		for j, c := range cdfs {
			p := 1.0 // past a CDF's top bucket all its mass is covered
			if d < len(c) {
				p = c[d]
			}
			v += float64(weights[j]) * p
		}
		out[d] = v / float64(tot)
	}
	return out
}

// KSync implements adapt.Source.
func (s *scopeSource) KSync(i int) stream.Time {
	g := s.groups[i]
	min := s.mgr.KSync(g[0])
	for _, st := range g[1:] {
		if v := s.mgr.KSync(st); v < min {
			min = v
		}
	}
	return min
}

// MaxDelayRecent implements adapt.Source.
func (s *scopeSource) MaxDelayRecent() stream.Time {
	var max stream.Time
	for _, g := range s.groups {
		for _, st := range g {
			if d := s.mgr.Hist(st).MaxDelay(); d > max {
				max = d
			}
		}
	}
	return max
}
