// Package feedback is the quality-driven feedback loop of Fig. 2, extracted
// from the MJoin pipeline into a runtime any executor can drive: it owns the
// Statistics Manager (ADWIN-sized delay histories over the raw inputs), the
// Result-Size Monitor over the final output, one Tuple-Productivity Profiler
// and one Buffer-Size Manager policy per *decision scope*, and the
// adaptation-interval boundary schedule.
//
// A decision scope is one "choose a K" problem. The single MJoin operator
// has exactly one scope — the global Same-K of Theorem 1 — while the
// left-deep binary tree of Sec. V can give every binary stage its own scope:
// stage j decides K_j from the delay profiles of its two inputs (the merged
// left subtree streams and the raw right stream) and its stage-local
// selectivity snapshot, against an instant requirement Γ′ derived once at
// the root scope, whose monitor window sees the final results.
//
// The driving protocol is narrow and push-based, mirroring what
// core.Pipeline did inline before the extraction:
//
//	now := loop.Observe(e)            // every raw arrival, in arrival order
//	loop.RecordInOrder(scope, …)      // executor productivity hooks
//	loop.ObserveResult(ts, n)         // final results → Result-Size Monitor
//	if at, ok := loop.Boundary(now); ok {
//		ks := loop.DecideAt(at, outT) // one K per scope
//		… apply ks to the executor's K-slack buffers …
//	}
//
// Statistics observation can run asynchronously (Async): arrivals are
// batched to a feeder goroutine and barrier-synced before every decision,
// which is how the sharded pipeline keeps Observe off its ingest thread.
package feedback

import (
	"math"

	"repro/internal/adapt"
	"repro/internal/monitor"
	"repro/internal/profiler"
	"repro/internal/stats"
	"repro/internal/stream"
)

// Scope declares one decision scope: Groups[i] lists the raw streams merged
// into model input i, Windows[i] the window extent of that input. The global
// Same-K scope has one singleton group per raw stream; a binary tree stage
// has two groups — the left subtree's streams and the right raw stream.
type Scope struct {
	Groups  [][]int
	Windows []stream.Time
}

// GlobalScope returns the Same-K decision scope over all m raw streams.
func GlobalScope(windows []stream.Time) Scope {
	groups := make([][]int, len(windows))
	for i := range groups {
		groups[i] = []int{i}
	}
	return Scope{Groups: groups, Windows: windows}
}

// Env is what a PolicyFactory gets to build one scope's policy: the scope's
// merged statistics view, the shared raw managers, and the scope windows.
type Env struct {
	Scope   int
	Source  adapt.Source
	Stats   *stats.Manager
	Monitor *monitor.Monitor
	Adapt   adapt.Config
	Windows []stream.Time
}

// PolicyFactory builds the buffer-size policy of one decision scope.
type PolicyFactory func(Env) adapt.Policy

// ModelPolicy returns the paper's model-based quality-driven policy, built
// on the scope's (possibly group-merged) statistics view.
func ModelPolicy() PolicyFactory {
	return func(env Env) adapt.Policy {
		return adapt.NewModel(env.Adapt, env.Windows, env.Source, env.Monitor)
	}
}

// NoKPolicy returns the No-K-slack baseline.
func NoKPolicy() PolicyFactory {
	return func(Env) adapt.Policy { return adapt.NoK{} }
}

// MaxKPolicy returns the Max-K-slack baseline.
func MaxKPolicy() PolicyFactory {
	return func(env Env) adapt.Policy { return adapt.MaxK{Stats: env.Stats} }
}

// StaticPolicy returns a fixed-K policy.
func StaticPolicy(k stream.Time) PolicyFactory {
	return func(Env) adapt.Policy { return adapt.Static{K: k} }
}

// Config assembles a feedback loop.
type Config struct {
	// Windows holds the per-raw-stream window sizes W_i; its length fixes m.
	Windows []stream.Time
	// Adapt carries Γ, P, L, b, g and the selectivity strategy.
	Adapt adapt.Config
	// Policy builds each scope's buffer-size policy; default ModelPolicy.
	Policy PolicyFactory
	// StatsOpts customizes the Statistics Manager (fixed history ablation…).
	StatsOpts []stats.Option
	// Scopes lists the decision scopes; default is the single global scope.
	// The LAST scope is the root: its profiler snapshot estimates the true
	// size of the *final* output, feeding the monitor ring and, under
	// SharedRequirement, the Γ′ derivation every scope decides against —
	// order the scopes so the output-producing one comes last (a left-deep
	// tree's stage order already does).
	Scopes []Scope
	// SharedRequirement derives Γ′ once at the root scope and passes it to
	// every scope's model (per-stage mode). When false each scope's policy
	// derives its own requirement — the single-scope behaviour.
	SharedRequirement bool
	// ScopeWeights assigns each scope its exponent w_i in the shared-
	// requirement decomposition: scope i decides against Γ′^w_i, so the
	// composed recall ∏_i Γ′^w_i meets Γ′ whenever the weights sum to 1.
	// Nil selects the uniform spine decomposition w_i = 1/n of DESIGN §8. A
	// zero weight marks a scope that governs no raw-input buffer (an inner
	// stage of a bushy tree): its decision is skipped and its K pinned to 0,
	// since no buffer would apply it. Length must match Scopes; only
	// meaningful under SharedRequirement.
	ScopeWeights []float64
	// InitialK is the buffer size reported before the first decision.
	InitialK stream.Time
	// Async moves stats.Observe onto a feeder goroutine, batched by
	// AsyncBatch (0 = default); Sync() barriers before every decision.
	Async      bool
	AsyncBatch int
	// Stats injects an externally owned Statistics Manager instead of
	// creating one. The multi-query engine shares one manager — fed exactly
	// once per raw arrival — across every query loop registered at the same
	// epoch with the same granularity, so N loops cost one Observe per
	// arrival instead of N. The owner is then responsible for feeding every
	// arrival to the manager; Observe on the loop becomes a pure read of the
	// logical now and never double-feeds. Incompatible with Async (the async
	// feeder would race the external owner's feeds).
	Stats *stats.Manager
}

// scopeState is one decision scope's adaptive machinery.
type scopeState struct {
	prof   *profiler.Profiler
	policy adapt.Policy
	model  *adapt.Model // non-nil when policy is the model policy
	sumK   float64
}

// Loop is the extracted feedback runtime.
type Loop struct {
	cfg    Config
	m      int
	stats  *stats.Manager
	mon    *monitor.Monitor
	scopes []*scopeState
	root   int

	feeder   *feeder
	extStats bool // cfg.Stats injected: the owner feeds it, Observe only reads
	maxTS    stream.Time

	started bool
	nextAt  stream.Time
	ks      []stream.Time
	snaps   []*profiler.Snapshot // per-decision scratch
	n       int64

	// Cumulative recall accounting across the whole run (not windowed like
	// the monitor): produced final results versus the summed per-interval
	// true-size estimates. Their ratio is the run-level recall estimate that
	// load shedding must keep honest — RecordShed feeds the root profiler,
	// whose mean-charge raises cumTrue without raising cumProduced.
	cumProduced int64
	cumTrue     float64
}

// New assembles a loop from cfg.
func New(cfg Config) *Loop {
	cfg.Adapt = cfg.Adapt.Normalize()
	if cfg.Policy == nil {
		cfg.Policy = ModelPolicy()
	}
	if len(cfg.Scopes) == 0 {
		cfg.Scopes = []Scope{GlobalScope(cfg.Windows)}
	}
	if cfg.ScopeWeights != nil && len(cfg.ScopeWeights) != len(cfg.Scopes) {
		panic("feedback: ScopeWeights length must match Scopes")
	}
	m := len(cfg.Windows)
	l := &Loop{cfg: cfg, m: m, root: len(cfg.Scopes) - 1}
	if cfg.Stats != nil {
		if cfg.Async {
			panic("feedback: Config.Stats cannot be combined with Async — the async feeder would race the external manager's owner")
		}
		l.stats = cfg.Stats
		l.extStats = true
	} else {
		l.stats = stats.NewManager(m, cfg.Adapt.G, cfg.StatsOpts...)
	}
	intervals := int((cfg.Adapt.P - cfg.Adapt.L) / cfg.Adapt.L)
	l.mon = monitor.New(cfg.Adapt.P-cfg.Adapt.L, intervals)

	l.scopes = make([]*scopeState, len(cfg.Scopes))
	l.ks = make([]stream.Time, len(cfg.Scopes))
	l.snaps = make([]*profiler.Snapshot, len(cfg.Scopes))
	for i, sc := range cfg.Scopes {
		env := Env{
			Scope:   i,
			Source:  newScopeSource(l.stats, sc.Groups),
			Stats:   l.stats,
			Monitor: l.mon,
			Adapt:   cfg.Adapt,
			Windows: sc.Windows,
		}
		st := &scopeState{prof: profiler.New(cfg.Adapt.G), policy: cfg.Policy(env)}
		if mdl, ok := st.policy.(*adapt.Model); ok {
			st.model = mdl
		}
		l.scopes[i] = st
		l.ks[i] = cfg.InitialK
	}
	if cfg.Async {
		l.feeder = newFeeder(l.stats.Observe, cfg.AsyncBatch)
	}
	return l
}

// Observe records one raw arrival with the Statistics Manager (directly, or
// via the async feeder) and returns the logical now — the maximum timestamp
// seen — that drives the boundary schedule.
func (l *Loop) Observe(e *stream.Tuple) stream.Time {
	if l.extStats {
		// The external owner already fed this arrival (exactly once, shared
		// across loops); only read the logical now off the shared manager.
		return l.stats.GlobalT()
	}
	if l.feeder != nil {
		l.feeder.add(e)
		if e.TS > l.maxTS {
			l.maxTS = e.TS
		}
		return l.maxTS
	}
	l.stats.Observe(e)
	return l.stats.GlobalT()
}

// ObserveResult feeds n produced final results at timestamp ts to the
// Result-Size Monitor.
func (l *Loop) ObserveResult(ts stream.Time, n int64) {
	l.mon.AddResults(ts, n)
	if n > 0 {
		l.cumProduced += n
	}
}

// RecordInOrder feeds one in-order productivity record (delay annotation,
// cross size n×(e), derived results n^on(e)) to the scope's profiler.
func (l *Loop) RecordInOrder(scope int, delay stream.Time, nCross, nOn int64) {
	l.scopes[scope].prof.RecordInOrder(delay, nCross, nOn)
}

// RecordOutOfOrder feeds one out-of-order arrival to the scope's profiler.
func (l *Loop) RecordOutOfOrder(scope int, delay stream.Time) {
	l.scopes[scope].prof.RecordOutOfOrder(delay)
}

// Boundary advances the adaptation-interval schedule to the logical now and
// reports whether a decision is due, and at which boundary time. The first
// observation only anchors the schedule. When a sparse arrival crosses
// several interval boundaries at once, ONE decision is due, anchored at the
// last crossed boundary: re-deciding per boundary would consume the profiler
// snapshot on the first step and push zero true-size estimates into the
// monitor ring for the rest, distorting Γ′ (DESIGN.md §4).
func (l *Loop) Boundary(now stream.Time) (at stream.Time, ok bool) {
	if !l.started {
		l.started = true
		l.nextAt = now + l.cfg.Adapt.L
		return 0, false
	}
	if now < l.nextAt {
		return 0, false
	}
	at = l.nextAt + l.cfg.Adapt.L*((now-l.nextAt)/l.cfg.Adapt.L)
	l.nextAt = at + l.cfg.Adapt.L
	return at, true
}

// DecideAt runs one Buffer-Size Manager decision at boundary time at and
// returns the chosen K per scope (the slice is reused across calls; copy it
// to retain). outT is the executor's output watermark: result-size
// accounting anchors there rather than at the raw input time, because under
// a buffer of K time units the output lags the input by K and anchoring at
// the input would misread buffered-but-unproduced results as losses.
//
// Callers on an async loop must call Sync() first (and quiesce their own
// deferred feeds) so the decision sees a consistent interval.
func (l *Loop) DecideAt(at, outT stream.Time) []stream.Time {
	l.mon.Advance(outT)
	for i, sc := range l.scopes {
		l.snaps[i] = sc.prof.Snapshot()
		// Reset before applying the new K: tuples released eagerly by a K
		// shrink are accounted to the next interval.
		sc.prof.Reset()
	}
	rootSnap := l.snaps[l.root]
	if l.cfg.SharedRequirement && l.scopes[l.root].model != nil {
		gp := l.scopes[l.root].model.InstantRequirement(rootSnap)
		// A final result must survive every stage, and stage losses are
		// (approximately) independent, so requirements compose
		// multiplicatively: each scope meets Γ′^w_i and the product meets
		// Γ′ when Σ w_i = 1. The default is the uniform spine decomposition
		// w_i = 1/n; plan-built trees pass explicit weights charging each
		// stage the Γ′^(1/m) factors of the raw leaves its buffers govern
		// (DESIGN §9). Nearly-ordered stages reach their tightened target
		// almost for free; deciding every stage against the raw Γ′ instead
		// would compound to ≈ Γ′ⁿ end to end.
		for i, sc := range l.scopes {
			w := 1 / float64(len(l.scopes))
			if l.cfg.ScopeWeights != nil {
				w = l.cfg.ScopeWeights[i]
			}
			switch {
			case w == 0:
				// No raw buffer applies this scope's K; deciding would only
				// pollute the AvgK metric with a meaningless search result.
				l.ks[i] = 0
			case sc.model != nil:
				l.ks[i] = sc.model.DecideShared(at, l.snaps[i], math.Pow(gp, w))
			default:
				l.ks[i] = sc.policy.Decide(at, l.snaps[i])
			}
		}
	} else {
		for i, sc := range l.scopes {
			l.ks[i] = sc.policy.Decide(at, l.snaps[i])
		}
	}
	for i, sc := range l.scopes {
		sc.sumK += float64(l.ks[i])
		l.snaps[i] = nil
	}
	l.n++
	l.mon.PushTrueEstimate(rootSnap.TrueResults())
	l.cumTrue += rootSnap.TrueResults()
	return l.ks
}

// Sync barriers the async feeder: afterwards the Statistics Manager is
// consistent with every Observe so far. No-op on a synchronous loop.
func (l *Loop) Sync() {
	if l.feeder != nil {
		l.feeder.sync()
	}
}

// Close drains and stops the async feeder. No-op on a synchronous loop.
func (l *Loop) Close() {
	if l.feeder != nil {
		l.feeder.close()
		l.feeder = nil
	}
}

// Scopes returns the number of decision scopes.
func (l *Loop) Scopes() int { return len(l.scopes) }

// Ks returns the most recent decision (InitialK before the first); the slice
// is live, copy to retain.
func (l *Loop) Ks() []stream.Time { return l.ks }

// K returns scope i's current buffer size.
func (l *Loop) K(i int) stream.Time { return l.ks[i] }

// AvgK returns scope i's average decided K over all decisions, the paper's
// result-latency metric.
func (l *Loop) AvgK(i int) float64 {
	if l.n == 0 {
		return float64(l.ks[i])
	}
	return l.scopes[i].sumK / float64(l.n)
}

// Decisions returns the number of adaptation steps performed.
func (l *Loop) Decisions() int64 { return l.n }

// Stats exposes the Statistics Manager (read-only use by callers).
func (l *Loop) Stats() *stats.Manager { return l.stats }

// Monitor exposes the Result-Size Monitor.
func (l *Loop) Monitor() *monitor.Monitor { return l.mon }

// Model returns scope i's model policy when in use, else nil. It exposes
// the Fig. 11 adaptation-time instrumentation and Γ′.
func (l *Loop) Model(i int) *adapt.Model { return l.scopes[i].model }
