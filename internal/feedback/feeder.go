package feedback

import (
	"sync"

	"repro/internal/stream"
)

// feeder moves the Statistics Manager off the ingest thread in async
// (sharded) runs: Observe touches per-stream delay histograms and ADWIN
// state that nothing on the per-tuple hot path reads — the feedback loop
// consults them only at adaptation boundaries — so the updates can run on
// their own goroutine, batched, and merely need to be caught up before
// each K decision. sync() provides that barrier.
type feeder struct {
	ch   chan []*stream.Tuple
	ack  chan struct{}
	done chan struct{}
	pend []*stream.Tuple
	pool sync.Pool
	size int
}

// newFeeder starts the feeder goroutine; obs is stats.Manager.Observe.
func newFeeder(obs func(*stream.Tuple), batch int) *feeder {
	if batch <= 0 {
		batch = 256
	}
	f := &feeder{
		ch:   make(chan []*stream.Tuple, 64),
		ack:  make(chan struct{}),
		done: make(chan struct{}),
		size: batch,
	}
	f.pool.New = func() any { return make([]*stream.Tuple, 0, batch) }
	f.pend = f.getBatch()
	go func() {
		defer close(f.done)
		for b := range f.ch {
			if b == nil { // sync marker
				f.ack <- struct{}{}
				continue
			}
			for _, e := range b {
				obs(e)
			}
			clear(b)
			f.pool.Put(b[:0])
		}
	}()
	return f
}

func (f *feeder) getBatch() []*stream.Tuple {
	return f.pool.Get().([]*stream.Tuple)[:0]
}

// add enqueues one arrival for observation.
func (f *feeder) add(e *stream.Tuple) {
	f.pend = append(f.pend, e)
	if len(f.pend) >= f.size {
		f.flush()
	}
}

func (f *feeder) flush() {
	if len(f.pend) == 0 {
		return
	}
	f.ch <- f.pend
	f.pend = f.getBatch()
}

// sync blocks until every enqueued arrival has been observed; afterwards
// the Statistics Manager is consistent with the ingest thread.
func (f *feeder) sync() {
	f.flush()
	f.ch <- nil
	<-f.ack
}

// close drains and stops the feeder goroutine.
func (f *feeder) close() {
	f.flush()
	close(f.ch)
	<-f.done
}
