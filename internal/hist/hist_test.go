package hist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

func TestBucketMapping(t *testing.T) {
	h := New(10)
	cases := []struct {
		delay stream.Time
		want  int
	}{
		{0, 0}, {1, 1}, {10, 1}, {11, 2}, {20, 2}, {21, 3}, {-5, 0},
	}
	for _, c := range cases {
		if got := h.Bucket(c.delay); got != c.want {
			t.Fatalf("Bucket(%d) = %d, want %d", c.delay, got, c.want)
		}
	}
}

func TestEmptyHistogramPrior(t *testing.T) {
	h := New(10)
	if h.P(0) != 1 || h.P(1) != 0 {
		t.Fatal("empty histogram must behave as all-delays-zero")
	}
	if h.CDF(5) != 1 {
		t.Fatal("empty CDF must be 1")
	}
	if h.MaxDelay() != 0 {
		t.Fatal("empty MaxDelay must be 0")
	}
}

func TestAddRemoveRoundTrip(t *testing.T) {
	h := New(10)
	h.Add(0)
	h.Add(15)
	h.Add(15)
	h.Add(100)
	if h.Total() != 4 {
		t.Fatalf("Total = %d", h.Total())
	}
	if math.Abs(h.P(0)-0.25) > 1e-12 || math.Abs(h.P(2)-0.5) > 1e-12 {
		t.Fatalf("P(0)=%v P(2)=%v", h.P(0), h.P(2))
	}
	if h.MaxDelay() != 100 {
		t.Fatalf("MaxDelay = %d", h.MaxDelay())
	}
	h.Remove(100)
	if h.MaxDelay() != 20 {
		t.Fatalf("MaxDelay after remove = %d", h.MaxDelay())
	}
	h.Remove(100) // double remove is a no-op
	if h.Total() != 3 {
		t.Fatalf("Total = %d", h.Total())
	}
}

func TestCDFMonotone(t *testing.T) {
	h := New(5)
	for _, d := range []stream.Time{0, 3, 7, 12, 12, 40} {
		h.Add(d)
	}
	prev := 0.0
	for d := 0; d < 12; d++ {
		c := h.CDF(d)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at %d", d)
		}
		prev = c
	}
	if h.CDF(100) != 1 {
		t.Fatal("CDF must reach 1")
	}
	if h.CDF(-1) != 0 {
		t.Fatal("CDF below 0 must be 0")
	}
}

// TestShiftEq2 checks Eq. (2): with an absorbed budget of K+Ksync time
// units, all delays up to the shift collapse into bucket 0 and the tail
// shifts left.
func TestShiftEq2(t *testing.T) {
	h := New(10)
	// Delays: 0 (x4), 10 (x3), 20 (x2), 30 (x1) → buckets 0..3.
	for i := 0; i < 4; i++ {
		h.Add(0)
	}
	for i := 0; i < 3; i++ {
		h.Add(10)
	}
	for i := 0; i < 2; i++ {
		h.Add(20)
	}
	h.Add(30)

	s := h.Shift(10) // absorbs one bucket
	if math.Abs(s.P(0)-0.7) > 1e-12 {
		t.Fatalf("shifted P(0) = %v, want 0.7", s.P(0))
	}
	if math.Abs(s.P(1)-0.2) > 1e-12 {
		t.Fatalf("shifted P(1) = %v, want 0.2", s.P(1))
	}
	if math.Abs(s.P(2)-0.1) > 1e-12 {
		t.Fatalf("shifted P(2) = %v, want 0.1", s.P(2))
	}
	if s.P(3) != 0 {
		t.Fatal("shifted tail must vanish")
	}

	// Absorbing everything puts all mass at zero.
	s = h.Shift(30)
	if s.P(0) != 1 {
		t.Fatalf("full shift P(0) = %v", s.P(0))
	}
	// Negative absorption clamps to no shift.
	s = h.Shift(-5)
	if math.Abs(s.P(0)-0.4) > 1e-12 {
		t.Fatalf("negative shift P(0) = %v", s.P(0))
	}
}

func TestShiftedCDF(t *testing.T) {
	h := New(10)
	h.Add(0)
	h.Add(10)
	h.Add(20)
	s := h.Shift(10)
	if math.Abs(s.CDF(0)-2.0/3) > 1e-12 {
		t.Fatalf("CDF(0) = %v", s.CDF(0))
	}
	if s.CDF(1) != 1 {
		t.Fatalf("CDF(1) = %v", s.CDF(1))
	}
	if s.CDF(-1) != 0 {
		t.Fatal("CDF(-1) must be 0")
	}
}

// Property: shifted pdf sums to 1 and shifted P(0) is non-decreasing in the
// absorbed budget (more buffering can only improve in-order probability).
func TestShiftProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(10)
		maxB := 0
		for i := 0; i < 200; i++ {
			d := stream.Time(rng.Intn(300))
			h.Add(d)
			if b := h.Bucket(d); b > maxB {
				maxB = b
			}
		}
		prevP0 := -1.0
		for shift := stream.Time(0); shift <= 300; shift += 10 {
			s := h.Shift(shift)
			sum := 0.0
			for d := 0; d <= maxB+1; d++ {
				sum += s.P(d)
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
			if s.P(0) < prevP0-1e-12 {
				return false
			}
			prevP0 = s.P(0)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
