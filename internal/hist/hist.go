// Package hist implements the coarse-grained tuple-delay histogram used by
// the Statistics Manager to approximate the delay pdf f_Di (Sec. IV-A).
//
// Delays are coarsened at the K-search granularity g: bucket 0 holds exactly
// the tuples with delay 0, and bucket d ≥ 1 holds delays in ((d−1)·g, d·g].
// The histogram supports incremental insertion and removal so it can track a
// sliding history whose length is dictated by ADWIN, and it can derive the
// shifted pdf f_{D^K} of Eq. (2) for any candidate buffer size K.
package hist

import "repro/internal/stream"

// Histogram counts coarse-grained tuple delays.
type Histogram struct {
	g      stream.Time
	counts []int64
	total  int64
}

// New creates a histogram with granularity g > 0.
func New(g stream.Time) *Histogram {
	if g <= 0 {
		g = 1
	}
	return &Histogram{g: g}
}

// Granularity returns g.
func (h *Histogram) Granularity() stream.Time { return h.g }

// Bucket maps a raw delay to its coarse bucket index.
func (h *Histogram) Bucket(delay stream.Time) int {
	if delay <= 0 {
		return 0
	}
	return int((delay + h.g - 1) / h.g)
}

// Add records one tuple delay.
func (h *Histogram) Add(delay stream.Time) {
	b := h.Bucket(delay)
	for len(h.counts) <= b {
		h.counts = append(h.counts, 0)
	}
	h.counts[b]++
	h.total++
}

// Remove forgets one previously added delay. Removing a delay that was never
// added leaves the histogram unchanged.
func (h *Histogram) Remove(delay stream.Time) {
	b := h.Bucket(delay)
	if b >= len(h.counts) || h.counts[b] == 0 {
		return
	}
	h.counts[b]--
	h.total--
}

// Total returns the number of recorded delays.
func (h *Histogram) Total() int64 { return h.total }

// Reset drops every recorded delay, keeping the granularity. Restore paths
// rebuild the histogram from a serialized history through it.
func (h *Histogram) Reset() {
	clear(h.counts)
	h.counts = h.counts[:0]
	h.total = 0
}

// MaxBucket returns the highest non-empty bucket index, or -1 when empty.
func (h *Histogram) MaxBucket() int {
	for b := len(h.counts) - 1; b >= 0; b-- {
		if h.counts[b] > 0 {
			return b
		}
	}
	return -1
}

// MaxDelay returns an upper bound of the maximum recorded delay (the top edge
// of the highest non-empty bucket), or 0 when empty.
func (h *Histogram) MaxDelay() stream.Time {
	b := h.MaxBucket()
	if b <= 0 {
		return 0
	}
	return stream.Time(b) * h.g
}

// P returns the empirical probability f_D(d) of coarse bucket d. An empty
// histogram is treated as "all delays are zero", the natural prior before
// any disorder has been observed.
func (h *Histogram) P(d int) float64 {
	if h.total == 0 {
		if d == 0 {
			return 1
		}
		return 0
	}
	if d < 0 || d >= len(h.counts) {
		return 0
	}
	return float64(h.counts[d]) / float64(h.total)
}

// CumulativeProbs returns the cumulative distribution as a dense slice:
// out[d] = Pr[D ≤ d] for d up to the highest non-empty bucket. An empty
// histogram returns nil (interpret as "all mass at zero"). The slice is a
// snapshot; later Add/Remove calls do not affect it. Model evaluation uses
// this to make CDF lookups O(1) inside the K search.
func (h *Histogram) CumulativeProbs() []float64 {
	if h.total == 0 {
		return nil
	}
	top := h.MaxBucket()
	out := make([]float64, top+1)
	var cum int64
	for d := 0; d <= top; d++ {
		if d < len(h.counts) {
			cum += h.counts[d]
		}
		out[d] = float64(cum) / float64(h.total)
	}
	return out
}

// CDF returns Pr[D ≤ d] over coarse buckets.
func (h *Histogram) CDF(d int) float64 {
	if h.total == 0 {
		return 1
	}
	if d < 0 {
		return 0
	}
	var cum int64
	for b := 0; b <= d && b < len(h.counts); b++ {
		cum += h.counts[b]
	}
	return float64(cum) / float64(h.total)
}

// Shifted is the pdf f_{D^K} of Eq. (2): the delay distribution of the
// corresponding stream seen by the join operator after a K-slack buffer of
// size K and an implicit Synchronizer buffer of size Ksync have absorbed
// shift = (K + Ksync)/g coarse units of delay.
type Shifted struct {
	h     *Histogram
	shift int
}

// Shift derives f_{D^K} for the given total absorbed delay K + Ksync.
func (h *Histogram) Shift(absorbed stream.Time) Shifted {
	if absorbed < 0 {
		absorbed = 0
	}
	return Shifted{h: h, shift: int(absorbed / h.g)}
}

// P returns f_{D^K}(d) per Eq. (2).
func (s Shifted) P(d int) float64 {
	if d == 0 {
		return s.h.CDF(s.shift)
	}
	if d < 0 {
		return 0
	}
	return s.h.P(d + s.shift)
}

// CDF returns Pr[D^K ≤ d].
func (s Shifted) CDF(d int) float64 {
	if d < 0 {
		return 0
	}
	return s.h.CDF(d + s.shift)
}
