package fault

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/stream"
)

// Directive kinds.
const (
	injectPanic = iota
	injectDelay
	injectBurst
)

// directive is one armed fault: fire once when the driver-side arrival
// counter crosses Tuple.
type directive struct {
	kind   int
	worker int
	tuple  int64
	n      int           // burst length
	dur    time.Duration // delay duration
	fired  bool
}

// Injector injects deterministic faults into a running join: worker panics,
// delayed stages and ingest bursts, armed when the driver-side arrival
// counter crosses the directive's tuple count. Every decision is a pure
// function of the arrival sequence, so differential recovery tests are
// reproducible bit-for-bit.
//
// Arrival() runs on the driver goroutine; ShouldPanic/ShouldDelay are
// called from worker goroutines and synchronize through the same mutex.
// Pause/Resume bracket supervisor replay so re-pushed tuples do not
// re-count (and one-shot directives never re-fire anyway).
type Injector struct {
	mu       sync.Mutex
	arrivals int64
	paused   bool
	dirs     []directive

	panicArmed map[int]bool // worker → pending panic
	delayArmed map[int]time.Duration
	burst      int
}

// NewInjector creates an empty injector; add faults with Add or ParseInjectSpec.
func NewInjector() *Injector {
	return &Injector{
		panicArmed: make(map[int]bool),
		delayArmed: make(map[int]time.Duration),
	}
}

// PanicAt arms a one-shot panic of worker w once tuple arrivals have been pushed.
func (in *Injector) PanicAt(worker int, tuple int64) *Injector {
	in.dirs = append(in.dirs, directive{kind: injectPanic, worker: worker, tuple: tuple})
	return in
}

// DelayAt arms a one-shot stall of worker w for dur once tuple arrivals have
// been pushed.
func (in *Injector) DelayAt(worker int, tuple int64, dur time.Duration) *Injector {
	in.dirs = append(in.dirs, directive{kind: injectDelay, worker: worker, tuple: tuple, dur: dur})
	return in
}

// BurstAt arms a one-shot ingest burst of n tuples once tuple arrivals have
// been pushed; the driving loop consumes it via TakeBurst.
func (in *Injector) BurstAt(tuple int64, n int) *Injector {
	in.dirs = append(in.dirs, directive{kind: injectBurst, tuple: tuple, n: n})
	return in
}

// Arrival counts one driver-side raw arrival and arms any directive whose
// threshold it crosses. No-op while paused (supervisor replay).
func (in *Injector) Arrival() {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.paused {
		return
	}
	in.arrivals++
	for i := range in.dirs {
		d := &in.dirs[i]
		if d.fired || in.arrivals < d.tuple {
			continue
		}
		d.fired = true
		switch d.kind {
		case injectPanic:
			in.panicArmed[d.worker] = true
		case injectDelay:
			in.delayArmed[d.worker] = d.dur
		case injectBurst:
			in.burst += d.n
		}
	}
}

// Arrivals returns the (non-replay) arrival count.
func (in *Injector) Arrivals() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.arrivals
}

// ShouldPanic reports (and consumes) a pending panic for worker w. The
// caller must panic with ErrInjected.
func (in *Injector) ShouldPanic(worker int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.paused || !in.panicArmed[worker] {
		return false
	}
	delete(in.panicArmed, worker)
	return true
}

// ShouldDelay reports (and consumes) a pending stall for worker w.
func (in *Injector) ShouldDelay(worker int) (time.Duration, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	d, ok := in.delayArmed[worker]
	if in.paused || !ok {
		return 0, false
	}
	delete(in.delayArmed, worker)
	return d, true
}

// TakeBurst returns (and consumes) a pending ingest-burst length, 0 if none.
func (in *Injector) TakeBurst() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.burst
	in.burst = 0
	return n
}

// Pause suspends arming and firing (supervisor replay).
func (in *Injector) Pause() {
	in.mu.Lock()
	in.paused = true
	in.mu.Unlock()
}

// Resume re-enables the injector after a replay.
func (in *Injector) Resume() {
	in.mu.Lock()
	in.paused = false
	in.mu.Unlock()
}

// MaybePanic panics with ErrInjected when a panic is armed for worker w;
// executors call it at their worker-step entry points.
func (in *Injector) MaybePanic(worker int) {
	if in != nil && in.ShouldPanic(worker) {
		panic(ErrInjected)
	}
}

// MaybeDelay stalls worker w when a delay is armed for it.
func (in *Injector) MaybeDelay(worker int) {
	if in == nil {
		return
	}
	if d, ok := in.ShouldDelay(worker); ok {
		time.Sleep(d)
	}
}

// ParseInjectSpec parses a comma-separated fault spec:
//
//	panic@shardN:tupleM       worker N panics after arrival M
//	delay@shardN:tupleM[:D]   worker N stalls for D (Go duration, default 50ms)
//	burst@tupleM:R            an ingest burst of R tuples after arrival M
//
// e.g. "panic@shard1:tuple5000" or "panic@shard0:tuple100,burst@tuple200:64".
func ParseInjectSpec(spec string) (*Injector, error) {
	in := NewInjector()
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, rest, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("fault: inject spec %q: missing '@'", part)
		}
		fields := strings.Split(rest, ":")
		switch kind {
		case "panic", "delay":
			if len(fields) < 2 {
				return nil, fmt.Errorf("fault: inject spec %q: want %s@shardN:tupleM", part, kind)
			}
			w, err := specInt(fields[0], "shard")
			if err != nil {
				return nil, fmt.Errorf("fault: inject spec %q: %v", part, err)
			}
			t, err := specInt(fields[1], "tuple")
			if err != nil {
				return nil, fmt.Errorf("fault: inject spec %q: %v", part, err)
			}
			if kind == "panic" {
				in.PanicAt(int(w), t)
				break
			}
			dur := 50 * time.Millisecond
			if len(fields) > 2 {
				d, err := time.ParseDuration(fields[2])
				if err != nil {
					return nil, fmt.Errorf("fault: inject spec %q: bad duration: %v", part, err)
				}
				dur = d
			}
			in.DelayAt(int(w), t, dur)
		case "burst":
			if len(fields) < 2 {
				return nil, fmt.Errorf("fault: inject spec %q: want burst@tupleM:R", part)
			}
			t, err := specInt(fields[0], "tuple")
			if err != nil {
				return nil, fmt.Errorf("fault: inject spec %q: %v", part, err)
			}
			n, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: inject spec %q: bad burst length: %v", part, err)
			}
			in.BurstAt(t, int(n))
		default:
			return nil, fmt.Errorf("fault: inject spec %q: unknown kind %q", part, kind)
		}
	}
	return in, nil
}

func specInt(s, prefix string) (int64, error) {
	if !strings.HasPrefix(s, prefix) {
		return 0, fmt.Errorf("want %s<n>, got %q", prefix, s)
	}
	return strconv.ParseInt(s[len(prefix):], 10, 64)
}

// EventRec is the serialized form of one tree-stage event: a raw tuple or a
// partial, with its stage-local arrival order and probe key. Parts is the
// m-length sparse constituent list as tuple-table ids (-1 = unbound); Right
// is the id of the raw right tuple for left-deep spine events (-1 = none).
type EventRec struct {
	TS       stream.Time
	Deadline stream.Time
	Delay    stream.Time
	Ord      uint64
	Key      float64
	Right    int32
	Parts    []int32
}
