// Package fault is the fault-tolerance substrate of the runtime: the typed
// errors a supervised join surfaces instead of crashing, the tuple
// table/arena pair every checkpoint serializer shares (so one *stream.Tuple
// referenced from several windows round-trips as one record), the jittered
// exponential backoff the supervisor restarts under, and a deterministic
// seeded fault injector (inject.go) that drives the differential recovery
// tests and the qdhjrun -inject flag.
//
// # Fault model
//
// Survivable: a panic inside a shard or stage worker goroutine (contained,
// converted to a WorkerError, recovered from the last checkpoint), a panic
// on the driver thread between tuples (same recovery), and ingest overload
// (bounded, with block/error/shed policies). Not survivable — and kept as
// the documented lifecycle panics — is API misuse: Push after Close, double
// Close, mutating a sealed Condition. The supervisor re-panics string panic
// values untouched so those contracts are exactly as before.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/stream"
)

// Typed runtime errors surfaced via Join.Err() / TryPush instead of panics.
var (
	// ErrClosed reports an operation on a join that has terminally failed
	// (supervision retries exhausted) or been closed.
	ErrClosed = errors.New("fault: join is closed")
	// ErrOverload reports a rejected arrival under the Error ingest policy.
	ErrOverload = errors.New("fault: ingest bound exceeded")
	// ErrRestoreMismatch reports a snapshot restored against a join whose
	// plan shape, arity or windows differ from the checkpointed one.
	ErrRestoreMismatch = errors.New("fault: snapshot does not match the join configuration")
	// ErrInjected is the panic value of injector-induced worker panics.
	ErrInjected = errors.New("fault: injected failure")
)

// WorkerError is the typed form of a panic contained inside a worker
// goroutine (or on the driver thread between tuples).
type WorkerError struct {
	// Worker identifies the panicking worker (shard or stage-shard index;
	// 0 on single-threaded paths).
	Worker int
	// Cause is the recovered panic value, wrapped as an error.
	Cause error
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("fault: worker %d panicked: %v", e.Worker, e.Cause)
}

// Unwrap exposes the cause for errors.Is (e.g. ErrInjected).
func (e *WorkerError) Unwrap() error { return e.Cause }

// JoinError is the terminal error of a supervised join: the last failure
// after the retry budget was exhausted, with the restart count that led
// there.
type JoinError struct {
	// Restarts is how many recoveries were attempted before giving up.
	Restarts int
	// Cause is the final failure.
	Cause error
}

func (e *JoinError) Error() string {
	return fmt.Sprintf("fault: join failed terminally after %d restart(s): %v", e.Restarts, e.Cause)
}

func (e *JoinError) Unwrap() error { return e.Cause }

// AsError converts a recovered panic value to an error. String panic values
// are the framework's documented lifecycle panics and must NOT be converted
// — callers re-panic those; this helper is for the remaining values.
func AsError(r any) error {
	if err, ok := r.(error); ok {
		return err
	}
	return fmt.Errorf("panic: %v", r)
}

// Lifecycle reports whether a recovered panic value is a documented
// lifecycle panic (API misuse), which supervision must re-panic untouched.
// All lifecycle panics in this codebase are plain strings.
func Lifecycle(r any) bool {
	_, ok := r.(string)
	return ok
}

// Backoff is the supervisor's restart schedule: jittered exponential delays
// Base·2^attempt capped at Cap, for at most Retries attempts. The jitter is
// drawn from a seeded source and Sleep is injectable, so recovery tests run
// deterministically and without real sleeping.
type Backoff struct {
	Base    time.Duration
	Cap     time.Duration
	Retries int
	Seed    int64
	// Sleep replaces time.Sleep when non-nil (tests).
	Sleep func(time.Duration)

	rng *rand.Rand
}

// DefaultBackoff is the supervisor default: 5 restarts, 10ms..1s.
func DefaultBackoff() Backoff {
	return Backoff{Base: 10 * time.Millisecond, Cap: time.Second, Retries: 5, Seed: 1}
}

// Wait sleeps the attempt's jittered delay (attempt counts from 0). The
// jitter is the "equal jitter" scheme: half the exponential delay fixed,
// half uniform, so restarts never synchronize but stay bounded below.
func (b *Backoff) Wait(attempt int) {
	if b.rng == nil {
		b.rng = rand.New(rand.NewSource(b.Seed))
	}
	d := b.Base
	if d <= 0 {
		d = 10 * time.Millisecond
	}
	for i := 0; i < attempt && d < b.Cap; i++ {
		d *= 2
	}
	if b.Cap > 0 && d > b.Cap {
		d = b.Cap
	}
	d = d/2 + time.Duration(b.rng.Int63n(int64(d/2)+1))
	if b.Sleep != nil {
		b.Sleep(d)
		return
	}
	time.Sleep(d)
}

// TupleRec is the serialized form of one stream.Tuple.
type TupleRec struct {
	TS    stream.Time
	Seq   uint64
	Src   int
	Delay stream.Time
	Attrs []float64
}

// TupleTable dedupes *stream.Tuple pointers during checkpoint encoding:
// every serializer registers the tuples it references and stores int32 ids;
// a tuple shared by several windows (band replicas, broadcast copies,
// partials) is recorded once and restored as one shared pointer.
type TupleTable struct {
	ids  map[*stream.Tuple]int32
	Recs []TupleRec
}

// NewTupleTable creates an empty table.
func NewTupleTable() *TupleTable {
	return &TupleTable{ids: make(map[*stream.Tuple]int32)}
}

// ID registers t (if new) and returns its id. Nil maps to -1.
func (tt *TupleTable) ID(t *stream.Tuple) int32 {
	if t == nil {
		return -1
	}
	if id, ok := tt.ids[t]; ok {
		return id
	}
	id := int32(len(tt.Recs))
	tt.ids[t] = id
	tt.Recs = append(tt.Recs, TupleRec{TS: t.TS, Seq: t.Seq, Src: t.Src, Delay: t.Delay, Attrs: t.Attrs})
	return id
}

// TupleArena materializes the table's records on restore: one *stream.Tuple
// per record, shared across every state slice that references the id.
type TupleArena struct {
	tuples []*stream.Tuple
}

// NewTupleArena builds the arena from serialized records.
func NewTupleArena(recs []TupleRec) *TupleArena {
	a := &TupleArena{tuples: make([]*stream.Tuple, len(recs))}
	for i, r := range recs {
		a.tuples[i] = &stream.Tuple{TS: r.TS, Seq: r.Seq, Src: r.Src, Delay: r.Delay, Attrs: r.Attrs}
	}
	return a
}

// Tuple returns the shared pointer for id (-1 → nil).
func (a *TupleArena) Tuple(id int32) *stream.Tuple {
	if id < 0 {
		return nil
	}
	return a.tuples[id]
}

// Len returns the number of materialized tuples.
func (a *TupleArena) Len() int { return len(a.tuples) }
