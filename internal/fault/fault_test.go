package fault

import (
	"errors"
	"testing"
	"time"

	"repro/internal/stream"
)

func TestTupleTableDedup(t *testing.T) {
	tt := NewTupleTable()
	a := &stream.Tuple{TS: 5, Seq: 1, Src: 0, Delay: 2, Attrs: []float64{3, 4}}
	b := &stream.Tuple{TS: 6, Seq: 2, Src: 1}
	if got := tt.ID(a); got != 0 {
		t.Fatalf("first id = %d, want 0", got)
	}
	if got := tt.ID(b); got != 1 {
		t.Fatalf("second id = %d, want 1", got)
	}
	if got := tt.ID(a); got != 0 {
		t.Fatalf("dup id = %d, want 0", got)
	}
	if got := tt.ID(nil); got != -1 {
		t.Fatalf("nil id = %d, want -1", got)
	}
	ar := NewTupleArena(tt.Recs)
	ra, rb := ar.Tuple(0), ar.Tuple(1)
	if ra.TS != 5 || ra.Seq != 1 || ra.Delay != 2 || len(ra.Attrs) != 2 {
		t.Fatalf("tuple a round-trip mismatch: %+v", ra)
	}
	if rb.Src != 1 {
		t.Fatalf("tuple b round-trip mismatch: %+v", rb)
	}
	if ar.Tuple(0) != ra {
		t.Fatal("arena must hand back shared pointers")
	}
	if ar.Tuple(-1) != nil {
		t.Fatal("id -1 must restore as nil")
	}
}

func TestBackoffDeterministicAndCapped(t *testing.T) {
	var slept []time.Duration
	b := Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Retries: 5, Seed: 7,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}
	for i := 0; i < 6; i++ {
		b.Wait(i)
	}
	for i, d := range slept {
		if d <= 0 || d > 80*time.Millisecond {
			t.Fatalf("attempt %d slept %v, want (0, 80ms]", i, d)
		}
	}
	// Same seed → same schedule.
	var again []time.Duration
	b2 := Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Seed: 7,
		Sleep: func(d time.Duration) { again = append(again, d) }}
	for i := 0; i < 6; i++ {
		b2.Wait(i)
	}
	for i := range slept {
		if slept[i] != again[i] {
			t.Fatalf("attempt %d: %v vs %v — backoff must be seed-deterministic", i, slept[i], again[i])
		}
	}
}

func TestInjectorArmsAtThreshold(t *testing.T) {
	in := NewInjector().PanicAt(1, 3).BurstAt(5, 16)
	for i := 0; i < 2; i++ {
		in.Arrival()
	}
	if in.ShouldPanic(1) {
		t.Fatal("panic armed before threshold")
	}
	in.Arrival()
	if in.ShouldPanic(0) {
		t.Fatal("panic armed for wrong worker")
	}
	if !in.ShouldPanic(1) {
		t.Fatal("panic not armed at threshold")
	}
	if in.ShouldPanic(1) {
		t.Fatal("panic directive must be one-shot")
	}
	if in.TakeBurst() != 0 {
		t.Fatal("burst armed early")
	}
	in.Arrival()
	in.Arrival()
	if got := in.TakeBurst(); got != 16 {
		t.Fatalf("burst = %d, want 16", got)
	}
	if in.TakeBurst() != 0 {
		t.Fatal("burst must be consumed once")
	}
}

func TestInjectorPauseSuppressesReplay(t *testing.T) {
	in := NewInjector().PanicAt(0, 2)
	in.Arrival()
	in.Pause()
	for i := 0; i < 10; i++ {
		in.Arrival() // replayed pushes must not count
	}
	if in.ShouldPanic(0) {
		t.Fatal("paused injector must not fire")
	}
	in.Resume()
	in.Arrival()
	if !in.ShouldPanic(0) {
		t.Fatal("injector must resume counting after replay")
	}
}

func TestParseInjectSpec(t *testing.T) {
	in, err := ParseInjectSpec("panic@shard1:tuple5000,delay@shard0:tuple10:5ms,burst@tuple20:64")
	if err != nil {
		t.Fatal(err)
	}
	if len(in.dirs) != 3 {
		t.Fatalf("parsed %d directives, want 3", len(in.dirs))
	}
	d := in.dirs[0]
	if d.kind != injectPanic || d.worker != 1 || d.tuple != 5000 {
		t.Fatalf("bad panic directive: %+v", d)
	}
	d = in.dirs[1]
	if d.kind != injectDelay || d.dur != 5*time.Millisecond {
		t.Fatalf("bad delay directive: %+v", d)
	}
	d = in.dirs[2]
	if d.kind != injectBurst || d.n != 64 {
		t.Fatalf("bad burst directive: %+v", d)
	}
	for _, bad := range []string{"panic@tuple5", "boom@shard0:tuple1", "panic@shard0", "delay@shard0:tuple1:xs"} {
		if _, err := ParseInjectSpec(bad); err == nil {
			t.Fatalf("spec %q: want error", bad)
		}
	}
}

func TestLifecycleClassification(t *testing.T) {
	if !Lifecycle("core: Push on a finished pipeline") {
		t.Fatal("string panics are lifecycle panics")
	}
	if Lifecycle(ErrInjected) {
		t.Fatal("error panics are not lifecycle panics")
	}
	we := &WorkerError{Worker: 2, Cause: ErrInjected}
	if !errors.Is(we, ErrInjected) {
		t.Fatal("WorkerError must unwrap to its cause")
	}
	je := &JoinError{Restarts: 3, Cause: we}
	if !errors.Is(je, ErrInjected) {
		t.Fatal("JoinError must unwrap through WorkerError")
	}
}
