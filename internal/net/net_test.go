package net

import (
	"errors"
	"fmt"
	"math/rand"
	stdnet "net"
	"sort"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/join"
	"repro/internal/leakcheck"
	"repro/internal/shard"
	"repro/internal/stream"
)

// startWorkers launches n in-process daemons on loopback listeners and
// returns their addresses. The listeners close at test cleanup, ending the
// accept loops.
func startWorkers(t *testing.T, n int, inj *fault.Injector) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		done := make(chan struct{})
		go func() {
			defer close(done)
			Serve(l, ServeConfig{Inject: inj})
		}()
		t.Cleanup(func() {
			l.Close()
			<-done
		})
	}
	return addrs
}

// tupleRecord is one in-order tuple's feedback-loop record.
type tupleRecord struct {
	ts, delay   stream.Time
	nCross, nOn int64
}

// refRun executes the sequence on a single operator, capturing the streams
// the networked runtime must reproduce bit-for-bit.
func refRun(cond *join.Condition, windows []stream.Time, seq []*stream.Tuple) (recs []tupleRecord, ooo []stream.Time, results map[string]int) {
	results = map[string]int{}
	op := join.New(cond, windows,
		join.WithEmit(func(r stream.Result) { results[rsig(r)]++ }),
		join.WithProcessedHook(func(e *stream.Tuple, nCross, nOn int64, inOrder bool) {
			if inOrder {
				recs = append(recs, tupleRecord{e.TS, e.Delay, nCross, nOn})
			} else {
				ooo = append(ooo, e.Delay)
			}
		}))
	for _, e := range seq {
		op.Process(e)
	}
	return recs, ooo, results
}

// netRun executes the same sequence through a Session against n in-process
// daemons, flushing every flushEvery tuples.
func netRun(t *testing.T, cond *join.Condition, windows []stream.Time, seq []*stream.Tuple, n, flushEvery, frameBatch int) (recs []tupleRecord, ooo []stream.Time, results map[string]int) {
	t.Helper()
	results = map[string]int{}
	addrs := startWorkers(t, n, nil)
	s := NewSession(addrs, "net-test", shard.Config{
		Cond: cond, Windows: windows, Materialize: true,
		BatchSize:    frameBatch,
		OnOutOfOrder: func(d stream.Time) { ooo = append(ooo, d) },
	})
	flush := func() {
		s.FlushInterval(func(ts, delay stream.Time, nCross, nOn int64) {
			recs = append(recs, tupleRecord{ts, delay, nCross, nOn})
		}, func(r stream.Result) { results[rsig(r)]++ })
	}
	for i, e := range seq {
		s.Route(e)
		if flushEvery > 0 && (i+1)%flushEvery == 0 {
			flush()
		}
	}
	flush()
	s.Close()
	return recs, ooo, results
}

// rsig is a stable multiset signature of one result.
func rsig(r stream.Result) string {
	s := ""
	for _, t := range r.Tuples {
		s += fmt.Sprintf("%d:%d,", t.Src, t.Seq)
	}
	return s
}

// genSeq builds a synchronized-stream-like sequence: mostly ordered with a
// disordered residue, attrs from small domains so every predicate fires.
func genSeq(rng *rand.Rand, m, n int, w stream.Time) []*stream.Tuple {
	var out []*stream.Tuple
	ts := stream.Time(1000)
	for i := 0; i < n; i++ {
		ts += stream.Time(rng.Intn(20))
		e := &stream.Tuple{
			TS:  ts,
			Seq: uint64(i),
			Src: rng.Intn(m),
			Attrs: []float64{
				float64(rng.Intn(8)),
				float64(rng.Intn(50)) / 2,
				rng.Float64() * 10,
			},
		}
		if rng.Intn(5) == 0 {
			e.TS -= stream.Time(rng.Intn(int(2 * w)))
			if e.TS < 0 {
				e.TS = 0
			}
		}
		e.Delay = stream.Time(rng.Intn(100))
		out = append(out, e)
	}
	return out
}

// wireConds enumerates condition shapes for all three partition modes —
// every one wireable, so generic predicates use WhereExpr.
func wireConds(m int) map[string]func() *join.Condition {
	cs := map[string]func() *join.Condition{
		"equichain": func() *join.Condition { return join.EquiChain(m, 0) },
		"bandchain": func() *join.Condition {
			c := join.Cross(m)
			for i := 0; i+1 < m; i++ {
				c.Band(i, 1, i+1, 1, 1.5)
			}
			return c
		},
		"band+generic": func() *join.Condition {
			c := join.Cross(m)
			for i := 0; i+1 < m; i++ {
				c.Band(i, 1, i+1, 1, 2)
			}
			return c.WhereExpr(join.Lt(
				join.Abs(join.Sub(join.Attr(0, 2), join.Attr(m-1, 2))),
				join.ConstOf(4)))
		},
		"generic-only": func() *join.Condition {
			return join.Cross(m).WhereExpr(join.Eq(join.Attr(0, 0), join.Attr(m-1, 0)))
		},
	}
	return cs
}

// TestNetworkedMatchesSingleOperator is the tentpole differential: for
// every partition mode, worker counts 1/2/4 and frame batches from
// per-tuple to 64, the networked runtime's merged productivity records,
// out-of-order charges and result multisets are bit-for-bit a single
// operator's.
func TestNetworkedMatchesSingleOperator(t *testing.T) {
	leakcheck.Check(t)
	for _, m := range []int{2, 3} {
		for name, mk := range wireConds(m) {
			for _, tc := range []struct{ workers, batch int }{
				{1, 7}, {2, 1}, {2, 64}, {4, 1}, {4, 64},
			} {
				t.Run(fmt.Sprintf("m=%d/%s/w=%d/b=%d", m, name, tc.workers, tc.batch), func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(101*m + 7*tc.workers + tc.batch)))
					w := stream.Time(300)
					seq := genSeq(rng, m, 600, w)
					windows := make([]stream.Time, m)
					for i := range windows {
						windows[i] = w
					}
					wantRecs, wantOOO, wantRes := refRun(mk(), windows, seq)
					gotRecs, gotOOO, gotRes := netRun(t, mk(), windows, seq, tc.workers, 97, tc.batch)
					if len(gotRecs) != len(wantRecs) {
						t.Fatalf("record count: got %d, want %d", len(gotRecs), len(wantRecs))
					}
					for i := range wantRecs {
						if gotRecs[i] != wantRecs[i] {
							t.Fatalf("record %d: got %+v, want %+v", i, gotRecs[i], wantRecs[i])
						}
					}
					if fmt.Sprint(gotOOO) != fmt.Sprint(wantOOO) {
						t.Fatalf("ooo stream diverges:\n got %v\nwant %v", gotOOO, wantOOO)
					}
					if len(gotRes) != len(wantRes) {
						t.Fatalf("distinct results: got %d, want %d", len(gotRes), len(wantRes))
					}
					for k, v := range wantRes {
						if gotRes[k] != v {
							t.Fatalf("result %q: got %d, want %d", k, gotRes[k], v)
						}
					}
				})
			}
		}
	}
}

// TestNetworkedMatchesShardedState verifies the checkpoint surface:
// capture a mid-run state from a networked session and from an in-process
// runtime and check they restore into each other — the deployment-agnostic
// snapshot contract.
func TestNetworkedStateRestoresCrossRuntime(t *testing.T) {
	leakcheck.Check(t)
	m := 3
	cond := func() *join.Condition { return join.EquiChain(m, 0) }
	w := stream.Time(300)
	windows := []stream.Time{w, w, w}
	rng := rand.New(rand.NewSource(7))
	seq := genSeq(rng, m, 500, w)
	half := len(seq) / 2

	// Reference: full run on the in-process sharded runtime.
	wantRecs, _, wantRes := refRun(cond(), windows, seq)

	// Run the first half networked, capture, restore into a fresh
	// in-process runtime, run the second half there.
	addrs := startWorkers(t, 2, nil)
	s := NewSession(addrs, "cross-test", shard.Config{Cond: cond(), Windows: windows, Materialize: true})
	var recs []tupleRecord
	var results = map[string]int{}
	visit := func(ts, delay stream.Time, nCross, nOn int64) {
		recs = append(recs, tupleRecord{ts, delay, nCross, nOn})
	}
	emit := func(r stream.Result) { results[rsig(r)]++ }
	for _, e := range seq[:half] {
		s.Route(e)
	}
	s.FlushInterval(visit, emit)
	tt := fault.NewTupleTable()
	st := s.State(tt)
	s.Close()

	rt := shard.New(shard.Config{N: 2, Cond: cond(), Windows: windows, Materialize: true})
	rt.Restore(st, fault.NewTupleArena(tt.Recs))
	for _, e := range seq[half:] {
		rt.Route(e)
	}
	rt.FlushInterval(visit, emit)
	rt.Close()

	// The captured interval boundary differs from refRun's (which never
	// flushes), so compare only totals and the result multiset.
	var gotOn, wantOn int64
	for _, r := range recs {
		gotOn += r.nOn
	}
	for _, r := range wantRecs {
		wantOn += r.nOn
	}
	if gotOn != wantOn {
		t.Fatalf("result count after cross-restore: got %d, want %d", gotOn, wantOn)
	}
	if len(results) != len(wantRes) {
		t.Fatalf("distinct results: got %d, want %d", len(results), len(wantRes))
	}
	for k, v := range wantRes {
		if results[k] != v {
			t.Fatalf("result %q: got %d, want %d", k, results[k], v)
		}
	}

	// And the reverse direction: first half in-process, second networked.
	results2 := map[string]int{}
	var on2 int64
	visit2 := func(ts, delay stream.Time, nCross, nOn int64) { on2 += nOn }
	emit2 := func(r stream.Result) { results2[rsig(r)]++ }
	rt2 := shard.New(shard.Config{N: 2, Cond: cond(), Windows: windows, Materialize: true})
	for _, e := range seq[:half] {
		rt2.Route(e)
	}
	rt2.FlushInterval(visit2, emit2)
	tt2 := fault.NewTupleTable()
	st2 := rt2.State(tt2)
	rt2.Close()

	addrs2 := startWorkers(t, 2, nil)
	s2 := NewSession(addrs2, "cross-test", shard.Config{Cond: cond(), Windows: windows, Materialize: true})
	s2.Restore(st2, fault.NewTupleArena(tt2.Recs))
	for _, e := range seq[half:] {
		s2.Route(e)
	}
	s2.FlushInterval(visit2, emit2)
	s2.Close()
	if on2 != wantOn {
		t.Fatalf("result count after reverse cross-restore: got %d, want %d", on2, wantOn)
	}
	for k, v := range wantRes {
		if results2[k] != v {
			t.Fatalf("reverse result %q: got %d, want %d", k, results2[k], v)
		}
	}
	if len(results2) != len(wantRes) {
		t.Fatalf("reverse distinct results: got %d, want %d", len(results2), len(wantRes))
	}
}

// TestWorkerFaultSurfacesTyped: an injected worker panic flips the worker
// to drain mode and surfaces on the driver as *fault.WorkerError at the
// next barrier, before anything is emitted — the in-process contract.
func TestWorkerFaultSurfacesTyped(t *testing.T) {
	leakcheck.Check(t)
	m := 2
	cond := join.EquiChain(m, 0)
	w := stream.Time(300)
	windows := []stream.Time{w, w}
	seq := genSeq(rand.New(rand.NewSource(3)), m, 300, w)

	inj := fault.NewInjector().PanicAt(1, 50)
	addrs := startWorkers(t, 2, inj)
	s := NewSession(addrs, "fault-test", shard.Config{Cond: cond, Windows: windows})
	emitted := 0
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected a driver-side panic from the failed worker")
			}
			we, ok := r.(*fault.WorkerError)
			if !ok {
				t.Fatalf("recovered %T (%v), want *fault.WorkerError", r, r)
			}
			if we.Worker != 1 {
				t.Fatalf("failed worker %d, want 1", we.Worker)
			}
			if !strings.Contains(we.Error(), "injected") {
				t.Fatalf("cause %q does not name the injected fault", we.Error())
			}
		}()
		for _, e := range seq {
			s.Route(e)
		}
		s.FlushInterval(func(ts, delay stream.Time, nCross, nOn int64) { emitted++ }, nil)
	}()
	if emitted != 0 {
		t.Fatalf("%d records emitted from a failed interval; want 0 (all-or-nothing boundary)", emitted)
	}
	s.Close() // idempotent after teardown
}

// TestRouteAfterClosePanics: the driver-side lifecycle guard.
func TestRouteAfterClosePanics(t *testing.T) {
	leakcheck.Check(t)
	addrs := startWorkers(t, 1, nil)
	cond := join.EquiChain(2, 0)
	s := NewSession(addrs, "lifecycle-test", shard.Config{Cond: cond, Windows: []stream.Time{100, 100}})
	s.Route(&stream.Tuple{TS: 1, Src: 0, Attrs: []float64{1}})
	s.FlushInterval(nil, nil)
	s.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Route after Close did not panic")
		}
		if !fault.Lifecycle(r) {
			t.Fatalf("panic %v is not a lifecycle panic", r)
		}
	}()
	s.Route(&stream.Tuple{TS: 2, Src: 0, Attrs: []float64{1}})
}

// TestRejoinSignatureMismatch: a daemon pins the first session's
// deployment signature; a rejoin with a different one is refused and the
// driver surfaces fault.ErrRestoreMismatch.
func TestRejoinSignatureMismatch(t *testing.T) {
	leakcheck.Check(t)
	addrs := startWorkers(t, 1, nil)
	cond := func() *join.Condition { return join.EquiChain(2, 0) }
	windows := []stream.Time{100, 100}

	s1 := NewSession(addrs, "deployment-A", shard.Config{Cond: cond(), Windows: windows})
	s1.Route(&stream.Tuple{TS: 1, Src: 0, Attrs: []float64{1}})
	s1.FlushInterval(nil, nil)
	s1.Close()

	s2 := NewSession(addrs, "deployment-B", shard.Config{Cond: cond(), Windows: windows})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected the mismatched rejoin to panic")
		}
		we, ok := r.(*fault.WorkerError)
		if !ok {
			t.Fatalf("recovered %T, want *fault.WorkerError", r)
		}
		if !errors.Is(we, fault.ErrRestoreMismatch) {
			t.Fatalf("cause %v does not wrap fault.ErrRestoreMismatch", we)
		}
	}()
	s2.Route(&stream.Tuple{TS: 1, Src: 0, Attrs: []float64{1}})
}

// TestRejoinSameSignatureAccepted: the legitimate rejoin path — same
// signature, fresh session — is accepted after the previous session ends.
func TestRejoinSameSignatureAccepted(t *testing.T) {
	leakcheck.Check(t)
	addrs := startWorkers(t, 1, nil)
	cond := func() *join.Condition { return join.EquiChain(2, 0) }
	windows := []stream.Time{100, 100}
	for i := 0; i < 2; i++ {
		s := NewSession(addrs, "deployment-A", shard.Config{Cond: cond(), Windows: windows})
		s.Route(&stream.Tuple{TS: stream.Time(1 + i), Src: 0, Attrs: []float64{1}})
		s.FlushInterval(nil, nil)
		s.Close()
	}
}

// TestHeldWindowsMatchWorkerScope: the driver-retained windows used for
// checkpoints stay within the worker's in-scope set (sorted canonical
// order), even with out-of-order arrivals.
func TestStateCanonicalOrder(t *testing.T) {
	leakcheck.Check(t)
	addrs := startWorkers(t, 2, nil)
	cond := join.EquiChain(2, 0)
	w := stream.Time(300)
	s := NewSession(addrs, "order-test", shard.Config{Cond: cond, Windows: []stream.Time{w, w}})
	seq := genSeq(rand.New(rand.NewSource(11)), 2, 200, w)
	for _, e := range seq {
		s.Route(e)
	}
	s.FlushInterval(nil, nil)
	st := s.State(fault.NewTupleTable())
	s.Close()
	for i, ids := range st.Windows {
		if !sort.SliceIsSorted(ids, func(a, b int) bool { return ids[a] < ids[b] }) {
			// IDs are interned in first-seen order of the (TS, Seq) sort, so
			// a sorted capture yields ascending IDs per stream.
			t.Fatalf("stream %d window IDs not canonical: %v", i, ids)
		}
	}
}
