package net

import (
	"errors"
	"fmt"
	"io"
	stdnet "net"

	"repro/internal/fault"
	"repro/internal/feedback"
	"repro/internal/join"
	"repro/internal/stream"
)

// HelloMsg opens a worker session: it carries everything the worker needs
// to build its shard of the join. It is the only gob on the connection —
// one decode per session, never per tuple.
type HelloMsg struct {
	// Sig is the driver's deployment signature (plan.Signature). The daemon
	// pins the first session's signature; a later hello with a different
	// one is a driver trying to restore a different deployment into this
	// worker's slot, and is rejected.
	Sig string
	// Worker and N identify this worker's shard slot.
	Worker, N int
	// Cond and Windows define the join.
	Cond    join.WireCondition
	Windows []stream.Time
	// Materialize installs result buffers at construction.
	Materialize bool
}

// HelloAck answers a hello. An empty Err accepts the session.
type HelloAck struct {
	Err string
	// Mismatch marks Err as a deployment-signature mismatch, so the driver
	// can surface fault.ErrRestoreMismatch without string matching.
	Mismatch bool
}

// ServeConfig configures a worker daemon.
type ServeConfig struct {
	// Inject is the optional fault-injection harness; "tuple N" directives
	// count probe messages processed by this worker. Nil disables
	// injection.
	Inject *fault.Injector
	// Logf receives session lifecycle lines (nil = silent).
	Logf func(format string, args ...any)
}

// Serve runs the worker daemon on l: it accepts driver sessions
// sequentially (a worker holds one shard of one logical join; concurrent
// drivers would corrupt it) until the listener closes. The first accepted
// session pins the deployment signature — reconnects must present the
// same one, which makes a crashed driver's restore-into-fresh-worker safe
// and a wrong driver's loud.
func Serve(l stdnet.Listener, cfg ServeConfig) error {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var pinned string
	var havePin bool
	for {
		c, err := l.Accept()
		if err != nil {
			if errIsClosed(err) {
				return nil
			}
			return err
		}
		logf("qdhjd: session from %s", c.RemoteAddr())
		err = serveConn(c, cfg, &pinned, &havePin)
		c.Close()
		if err != nil && err != io.EOF {
			logf("qdhjd: session ended: %v", err)
		} else {
			logf("qdhjd: session ended")
		}
	}
}

func errIsClosed(err error) bool { return errors.Is(err, stdnet.ErrClosed) }

// serveConn runs one driver session: handshake, then the frame loop.
func serveConn(c stdnet.Conn, cfg ServeConfig, pinned *string, havePin *bool) error {
	fr := newFrameReader(c)
	fw := newFrameWriter(c)

	ft, payload, err := fr.next()
	if err != nil {
		return err
	}
	if ft != ftHello {
		return fmt.Errorf("net: expected hello frame, got type %d", ft)
	}
	var hello HelloMsg
	if err := readGob(payload, &hello); err != nil {
		return fmt.Errorf("net: bad hello: %w", err)
	}
	if *havePin && hello.Sig != *pinned {
		// Reject without unpinning: the legitimate driver may still
		// reconnect.
		writeGob(fw, ftHelloAck, HelloAck{
			Err:      fmt.Sprintf("worker is pinned to deployment %q, hello is for %q", *pinned, hello.Sig),
			Mismatch: true,
		})
		return fmt.Errorf("net: deployment signature mismatch")
	}

	s, err := newWSession(hello, cfg)
	if err != nil {
		writeGob(fw, ftHelloAck, HelloAck{Err: err.Error()})
		return err
	}
	*pinned, *havePin = hello.Sig, true
	if err := writeGob(fw, ftHelloAck, HelloAck{}); err != nil {
		return err
	}
	s.fr, s.fw = fr, fw
	return s.run()
}

// wsession is one worker-side session: a shard operator plus its
// per-interval accumulators — the networked twin of shard.worker.
type wsession struct {
	fr  *frameReader
	fw  *frameWriter
	cfg ServeConfig

	id   int
	op   *join.Operator
	slab tupleSlab

	curIdx int
	curK   stream.Time // last KChangeMsg value; -1 until one arrives
	acc    []ackEntry
	res    []resEntry

	// failed flips the session into drain mode after a contained panic:
	// data frames are discarded but barriers keep acking (with Failed), so
	// the driver's quiesce protocol never deadlocks.
	failed bool
	errStr string

	// Scratch, reused across frames.
	ks   []stream.Time
	es   []*stream.Tuple
	wms  []stream.Time
	idxs []int
}

// newWSession validates the hello and builds the shard operator. All
// builder panics are converted to errors: the input crossed a process
// boundary and must not kill the daemon.
func newWSession(hello HelloMsg, cfg ServeConfig) (s *wsession, err error) {
	defer func() {
		if r := recover(); r != nil {
			s, err = nil, fmt.Errorf("net: invalid hello: %v", r)
		}
	}()
	if hello.N < 1 || hello.Worker < 0 || hello.Worker >= hello.N {
		return nil, fmt.Errorf("net: hello names worker %d of %d", hello.Worker, hello.N)
	}
	cond, err := hello.Cond.Condition()
	if err != nil {
		return nil, err
	}
	if len(hello.Windows) != cond.M {
		return nil, fmt.Errorf("net: hello has %d windows for %d streams", len(hello.Windows), cond.M)
	}
	s = &wsession{
		cfg:  cfg,
		id:   hello.Worker,
		op:   join.New(cond, hello.Windows),
		curK: -1,
	}
	if hello.Materialize {
		s.installEmit()
	}
	return s, nil
}

func (s *wsession) installEmit() {
	s.op.SetEmit(func(r stream.Result) {
		s.res = append(s.res, resEntry{idx: s.curIdx, r: r})
	})
}

// run is the session frame loop. It returns on close, EOF or a transport
// error; processing faults do NOT end the session (drain mode).
func (s *wsession) run() error {
	for {
		ft, payload, err := s.fr.next()
		if err != nil {
			return err
		}
		switch ft {
		case ftBatch:
			s.handleBatch(payload)
		case ftBarrier:
			m, err := decodeBarrier(payload)
			if err != nil {
				return err
			}
			if err := s.ackBarrier(m); err != nil {
				return err
			}
		case ftSetK:
			m, ks, err := decodeSetK(payload, s.ks)
			s.ks = ks
			if err != nil {
				return err
			}
			if len(m.Ks) > 0 {
				s.curK = m.Ks[0]
			}
		case ftMaterialize:
			s.installEmit()
		case ftClose:
			return nil
		default:
			return fmt.Errorf("net: unexpected frame type %d", ft)
		}
	}
}

// handleBatch processes one tuple-batch frame. A panic anywhere in the
// frame (injected, genuine, or a malformed message) fails the session into
// drain mode; the frame's unprocessed suffix is skipped, exactly as the
// in-process worker skips the rest of a failed batch.
func (s *wsession) handleBatch(b []byte) {
	if s.failed {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			s.failed = true
			s.errStr = fault.AsError(r).Error()
		}
	}()
	inj := s.cfg.Inject
	off := 0
	for off < len(b) {
		kind, e, wm, idx, next, err := decodeMsg(b, off, &s.slab)
		if err != nil {
			panic(err)
		}
		off = next
		switch {
		case kind == wmProbe && inj == nil:
			// Gather the run of consecutive probes and feed the batched
			// kernel: one kernel entry instead of one per tuple.
			s.es = append(s.es[:0], e)
			s.wms = append(s.wms[:0], wm)
			s.idxs = append(s.idxs[:0], idx)
			for off < len(b) && b[off] == wmProbe {
				_, e, wm, idx, next, err = decodeMsg(b, off, &s.slab)
				if err != nil {
					panic(err)
				}
				off = next
				s.es = append(s.es, e)
				s.wms = append(s.wms, wm)
				s.idxs = append(s.idxs, idx)
			}
			s.stepProbes()
		case kind == wmProbe:
			// Injection active: the per-message path keeps the per-step
			// delay/panic points. "tuple N" counts probe messages on this
			// worker.
			inj.Arrival()
			inj.MaybeDelay(s.id)
			inj.MaybePanic(s.id)
			s.curIdx = idx
			if nOn := s.op.ProcessAt(e, wm); nOn != 0 {
				s.add(idx, nOn)
			}
		default:
			s.op.InsertAt(e, wm)
		}
	}
}

// stepProbes runs the gathered probe run through Operator.ProcessBatchAt,
// advancing curIdx between tuples so the emit closure attributes each
// materialized result to its arrival (as shard.worker.stepProbes does).
func (s *wsession) stepProbes() {
	s.curIdx = s.idxs[0]
	s.op.ProcessBatchAt(s.es, s.wms, func(i int, nOn int64) {
		if nOn != 0 {
			s.add(s.idxs[i], nOn)
		}
		if i+1 < len(s.idxs) {
			s.curIdx = s.idxs[i+1]
		}
	})
}

// add merges a result count into the sparse per-arrival accumulator.
// Arrival indexes are non-decreasing within an interval, so a same-idx
// merge only ever targets the last entry.
func (s *wsession) add(idx int, n int64) {
	if k := len(s.acc); k > 0 && s.acc[k-1].idx == idx {
		s.acc[k-1].n += n
		return
	}
	s.acc = append(s.acc, ackEntry{idx: idx, n: n})
}

// ackBarrier replies to a barrier with this interval's deltas (or the
// recorded failure) and resets the interval accumulators.
func (s *wsession) ackBarrier(m feedback.BarrierMsg) error {
	s.fw.begin(ftBarrierAck)
	s.fw.buf = appendAckHeader(s.fw.buf, feedback.BarrierAck{
		Seq:    m.Seq,
		Worker: s.id,
		K:      s.curK,
		Failed: s.failed,
		Err:    s.errStr,
	})
	if !s.failed {
		s.fw.buf = appendAckBody(s.fw.buf, s.acc, s.res)
	}
	s.acc = s.acc[:0]
	for i := range s.res {
		s.res[i] = resEntry{}
	}
	s.res = s.res[:0]
	return s.fw.flush()
}
