// Package net is the networked worker runtime: one logical sliding-window
// join runs as N key-partitioned worker processes over TCP, driven by a
// Session that embeds the same shard.Router the in-process runtime uses.
// The wire is engineered as a hot path, not an RPC port:
//
//   - length-prefixed binary frames with pooled buffers — the data path
//     (tuples, barriers, K changes) never touches gob or reflection; gob
//     is reserved for the one-shot hello handshake (and checkpoints keep
//     their existing gob form, off the wire entirely: window state is
//     retained driver-side by the router);
//   - tuple batches as the unit of transport: up to FrameBatch tuple
//     messages share one frame and one write syscall, with batch cuts a
//     pure function of the input stream (a frame is cut when full or at a
//     barrier/K-change/close), so framing can never affect results;
//   - in-band control: K changes and barriers are frames within the same
//     ordered byte stream as the data, so workers observe them at exactly
//     the stream positions the driver issued them.
//
// See DESIGN.md §14 for the protocol and the cross-process determinism
// argument.
package net

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/feedback"
	"repro/internal/stream"
)

// Frame types. A frame is [u32 length (LE)][payload]; payload[0] is the
// type byte, so length ≥ 1. Length covers the payload only.
const (
	ftHello       = 1 // driver→worker: gob HelloMsg
	ftHelloAck    = 2 // worker→driver: gob HelloAck
	ftBatch       = 3 // driver→worker: tuple messages (binary, below)
	ftBarrier     = 4 // driver→worker: feedback.BarrierMsg
	ftBarrierAck  = 5 // worker→driver: feedback.BarrierAck + deltas + results
	ftSetK        = 6 // driver→worker: feedback.KChangeMsg
	ftMaterialize = 7 // driver→worker: install result buffers (empty payload)
	ftClose       = 8 // driver→worker: clean end of session (empty payload)
)

// maxFrame bounds a frame payload; longer length prefixes are rejected
// before any allocation, so a corrupt or hostile peer cannot force an
// arbitrary-size buffer.
const maxFrame = 1 << 26 // 64 MiB

// Tuple message kinds inside a ftBatch payload.
const (
	wmProbe  = 0 // full Alg. 2 step: expire, probe, insert
	wmInsert = 1 // replica/out-of-order path: insert-only
)

// Tuple message layout (little-endian):
//
//	u8  kind   u8 src   u16 nattrs   u32 idx
//	i64 ts     u64 seq  i64 delay    i64 wm
//	nattrs × u64 (IEEE-754 bits)
//
// 40 bytes + 8 per attribute. idx is the router arrival index (probes
// only; zero on inserts). Attributes travel as raw bits, so NaN payloads
// and ±Inf round-trip exactly.
const msgHeader = 40

var (
	errShortFrame = errors.New("net: truncated frame")
	errFrameSize  = errors.New("net: frame length exceeds limit")
	errBadMsg     = errors.New("net: malformed tuple message")
	errBadAck     = errors.New("net: malformed barrier ack")
)

// appendMsg encodes one tuple message. Zero allocations beyond the
// amortized growth of buf.
func appendMsg(buf []byte, kind byte, e *stream.Tuple, wm stream.Time, idx int) []byte {
	buf = append(buf, kind, byte(e.Src))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.Attrs)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(idx))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.TS))
	buf = binary.LittleEndian.AppendUint64(buf, e.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Delay))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(wm))
	for _, a := range e.Attrs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a))
	}
	return buf
}

// decodeMsg decodes one tuple message at b[off:], materializing the tuple
// from the slab. Returns the message kind, tuple, watermark, arrival index
// and the next offset.
func decodeMsg(b []byte, off int, slab *tupleSlab) (kind byte, e *stream.Tuple, wm stream.Time, idx int, next int, err error) {
	if len(b)-off < msgHeader {
		return 0, nil, 0, 0, 0, errBadMsg
	}
	kind = b[off]
	if kind != wmProbe && kind != wmInsert {
		return 0, nil, 0, 0, 0, errBadMsg
	}
	src := int(b[off+1])
	nattrs := int(binary.LittleEndian.Uint16(b[off+2:]))
	idx = int(binary.LittleEndian.Uint32(b[off+4:]))
	ts := stream.Time(binary.LittleEndian.Uint64(b[off+8:]))
	seq := binary.LittleEndian.Uint64(b[off+16:])
	delay := stream.Time(binary.LittleEndian.Uint64(b[off+24:]))
	wm = stream.Time(binary.LittleEndian.Uint64(b[off+32:]))
	off += msgHeader
	if len(b)-off < 8*nattrs {
		return 0, nil, 0, 0, 0, errBadMsg
	}
	e = slab.alloc(nattrs)
	e.TS, e.Seq, e.Src, e.Delay = ts, seq, src, delay
	for i := 0; i < nattrs; i++ {
		e.Attrs[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	return kind, e, wm, idx, off, nil
}

// appendBarrier encodes a feedback.BarrierMsg payload (after the type byte).
func appendBarrier(buf []byte, m feedback.BarrierMsg) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
	return binary.LittleEndian.AppendUint64(buf, uint64(m.OutT))
}

func decodeBarrier(b []byte) (feedback.BarrierMsg, error) {
	if len(b) < 16 {
		return feedback.BarrierMsg{}, errShortFrame
	}
	return feedback.BarrierMsg{
		Seq:  binary.LittleEndian.Uint64(b),
		OutT: stream.Time(binary.LittleEndian.Uint64(b[8:])),
	}, nil
}

// appendSetK encodes a feedback.KChangeMsg payload.
func appendSetK(buf []byte, m feedback.KChangeMsg) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Ks)))
	for _, k := range m.Ks {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(k))
	}
	return buf
}

func decodeSetK(b []byte, ks []stream.Time) (feedback.KChangeMsg, []stream.Time, error) {
	if len(b) < 10 {
		return feedback.KChangeMsg{}, ks, errShortFrame
	}
	m := feedback.KChangeMsg{Seq: binary.LittleEndian.Uint64(b)}
	n := int(binary.LittleEndian.Uint16(b[8:]))
	if len(b) < 10+8*n {
		return feedback.KChangeMsg{}, ks, errShortFrame
	}
	ks = ks[:0]
	for i := 0; i < n; i++ {
		ks = append(ks, stream.Time(binary.LittleEndian.Uint64(b[10+8*i:])))
	}
	m.Ks = ks
	return m, ks, nil
}

// Barrier-ack payload layout (after the type byte):
//
//	u64 seq   i64 k   u8 failed
//	failed: u32 errlen + bytes   (nothing further)
//	ok:     u32 nAcc  + nAcc × (u32 idx, i64 n)
//	        u32 nRes  + per result:
//	            u32 idx, i64 ts, u16 m, m × tuple record
//	tuple record: u8 src, u16 nattrs, i64 ts, u64 seq, i64 delay, attrs
//
// The sparse (idx, n) pairs are the worker's per-shard n^on(e) deltas; the
// driver scatters them into its dense per-arrival accumulators and merges
// across workers in (arrival, shard) order — the same replay the
// in-process runtime performs at FlushInterval.

// ackEntry is one sparse per-arrival result-count delta.
type ackEntry struct {
	idx int
	n   int64
}

// resEntry is one buffered materialized result with its arrival index.
type resEntry struct {
	idx int
	r   stream.Result
}

func appendAckHeader(buf []byte, ack feedback.BarrierAck) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, ack.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ack.K))
	if ack.Failed {
		buf = append(buf, 1)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ack.Err)))
		return append(buf, ack.Err...)
	}
	return append(buf, 0)
}

func appendAckBody(buf []byte, acc []ackEntry, res []resEntry) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(acc)))
	for _, a := range acc {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(a.idx))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(a.n))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(res)))
	for _, re := range res {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(re.idx))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(re.r.TS))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(re.r.Tuples)))
		for _, t := range re.r.Tuples {
			buf = append(buf, byte(t.Src))
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(t.Attrs)))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(t.TS))
			buf = binary.LittleEndian.AppendUint64(buf, t.Seq)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Delay))
			for _, a := range t.Attrs {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a))
			}
		}
	}
	return buf
}

// decodedAck is a worker's decoded barrier reply.
type decodedAck struct {
	hdr    feedback.BarrierAck
	acc    []ackEntry
	res    []stream.Result
	resIdx []int
}

// decodeAck parses a barrier-ack payload into out (slices reused).
func decodeAck(b []byte, out *decodedAck) error {
	if len(b) < 17 {
		return errShortFrame
	}
	out.hdr = feedback.BarrierAck{
		Seq: binary.LittleEndian.Uint64(b),
		K:   stream.Time(binary.LittleEndian.Uint64(b[8:])),
	}
	out.acc = out.acc[:0]
	out.res = out.res[:0]
	out.resIdx = out.resIdx[:0]
	off := 17
	if b[16] != 0 {
		out.hdr.Failed = true
		if len(b) < off+4 {
			return errShortFrame
		}
		n := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if len(b) < off+n {
			return errShortFrame
		}
		out.hdr.Err = string(b[off : off+n])
		if off+n != len(b) {
			return errBadAck
		}
		return nil
	}
	if len(b) < off+4 {
		return errShortFrame
	}
	nAcc := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if nAcc < 0 || len(b)-off < 12*nAcc {
		return errShortFrame
	}
	for i := 0; i < nAcc; i++ {
		out.acc = append(out.acc, ackEntry{
			idx: int(binary.LittleEndian.Uint32(b[off:])),
			n:   int64(binary.LittleEndian.Uint64(b[off+4:])),
		})
		off += 12
	}
	if len(b) < off+4 {
		return errShortFrame
	}
	nRes := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	for i := 0; i < nRes; i++ {
		if len(b) < off+14 {
			return errShortFrame
		}
		idx := int(binary.LittleEndian.Uint32(b[off:]))
		ts := stream.Time(binary.LittleEndian.Uint64(b[off+4:]))
		m := int(binary.LittleEndian.Uint16(b[off+12:]))
		off += 14
		r := stream.Result{TS: ts, Tuples: make([]*stream.Tuple, 0, m)}
		for j := 0; j < m; j++ {
			if len(b) < off+27 {
				return errShortFrame
			}
			t := &stream.Tuple{
				Src:   int(b[off]),
				TS:    stream.Time(binary.LittleEndian.Uint64(b[off+3:])),
				Seq:   binary.LittleEndian.Uint64(b[off+11:]),
				Delay: stream.Time(binary.LittleEndian.Uint64(b[off+19:])),
			}
			nattrs := int(binary.LittleEndian.Uint16(b[off+1:]))
			off += 27
			if len(b)-off < 8*nattrs {
				return errShortFrame
			}
			t.Attrs = make([]float64, nattrs)
			for a := 0; a < nattrs; a++ {
				t.Attrs[a] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
				off += 8
			}
			r.Tuples = append(r.Tuples, t)
		}
		out.res = append(out.res, r)
		out.resIdx = append(out.resIdx, idx)
	}
	if off != len(b) {
		return errBadAck
	}
	return nil
}

// tupleSlab materializes decoded tuples in chunks, amortizing allocation:
// one tuple-array and one attr-array allocation per chunk instead of two
// per tuple. Chunks are retained only by the live tuples pointing into
// them; since windows expire in rough timestamp order, a chunk's lifetime
// tracks the window extent.
type tupleSlab struct {
	tuples []stream.Tuple
	attrs  []float64
}

const (
	slabTuples = 1024
	slabAttrs  = 8192
)

// alloc returns a zeroed tuple with an Attrs slice of length nattrs carved
// from the slab. The returned pointer stays valid forever (chunks are
// never reused).
func (s *tupleSlab) alloc(nattrs int) *stream.Tuple {
	if len(s.tuples) == cap(s.tuples) {
		s.tuples = make([]stream.Tuple, 0, slabTuples)
	}
	s.tuples = s.tuples[:len(s.tuples)+1]
	t := &s.tuples[len(s.tuples)-1]
	*t = stream.Tuple{}
	if nattrs > 0 {
		if cap(s.attrs)-len(s.attrs) < nattrs {
			c := slabAttrs
			if nattrs > c {
				c = nattrs
			}
			s.attrs = make([]float64, 0, c)
		}
		s.attrs = s.attrs[:len(s.attrs)+nattrs]
		t.Attrs = s.attrs[len(s.attrs)-nattrs : len(s.attrs) : len(s.attrs)]
	}
	return t
}

// frameSizeError renders the reject of an oversized length prefix.
func frameSizeError(n uint32) error {
	return fmt.Errorf("%w: %d bytes (max %d)", errFrameSize, n, maxFrame)
}
