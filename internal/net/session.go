package net

import (
	"errors"
	"fmt"
	stdnet "net"
	"sort"

	"repro/internal/fault"
	"repro/internal/feedback"
	"repro/internal/join"
	"repro/internal/shard"
	"repro/internal/stream"
)

// Session is the driver side of a networked deployment: it embeds the same
// shard.Router the in-process runtime uses — watermark, n×(e) replay,
// partition routing, per-interval accounting all stay on the driver — and
// replaces the shard goroutines with TCP connections to qdhjd workers.
// Determinism therefore needs no new argument: the router makes identical
// decisions, each worker runs the identical operator over the identical
// message sequence (TCP preserves order; control frames are in-band), and
// FlushInterval merges acks in the identical (arrival, shard) order.
//
// The session is lazy: the constructor performs no I/O, and the first
// Route/FlushInterval/Restore dials. Dial and transport failures panic
// with *fault.WorkerError on the driver thread — the same surface a
// crashed in-process shard has — so plan.Supervised's backoff/checkpoint
// recovery covers lost workers with no extra machinery.
type Session struct {
	cfg   shard.Config
	addrs []string
	sig   string
	wc    join.WireCondition
	batch int

	router *shard.Router
	conns  []*wconn

	dialed   bool
	finished bool

	barSeq  uint64
	kSeq    uint64
	expectK stream.Time // last K shipped via KChange; -1 before the first

	acks   []decodedAck
	cursor []int // per-worker cursor over sparse acc entries during merge
	rcur   []int // per-worker cursor over buffered results during merge
}

// wconn is one worker connection with its pending batch frame.
type wconn struct {
	c    stdnet.Conn
	fr   *frameReader
	fw   *frameWriter
	open bool // a ftBatch frame is being assembled in fw.buf
	nmsg int  // messages in the open batch frame
}

// NewSession builds a driver session for one worker address per shard.
// cfg.N is overridden to len(addrs); cfg.BatchSize is the frame batch (how
// many tuple messages share one frame and one write; default 128, 1 =
// per-tuple framing). The condition must be wireable (no opaque Where
// closures) — plan.Build validates this with a better error before
// constructing the session.
func NewSession(addrs []string, sig string, cfg shard.Config) *Session {
	if len(addrs) == 0 {
		panic("net: need at least one worker address")
	}
	cfg.N = len(addrs)
	wc, err := cfg.Cond.Wire()
	if err != nil {
		panic(err)
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 128
	}
	return &Session{
		cfg:     cfg,
		addrs:   addrs,
		sig:     sig,
		wc:      wc,
		batch:   batch,
		router:  newRetainingRouter(cfg),
		expectK: -1,
	}
}

func newRetainingRouter(cfg shard.Config) *shard.Router {
	r := shard.NewRouter(cfg.N, cfg.Cond, cfg.Windows, cfg.OnOutOfOrder)
	// Retain window tuples driver-side: checkpoints are captured entirely on
	// the driver, so worker state never needs a wire representation — a
	// restore simply re-routes the retained windows as insert frames.
	r.Retain()
	return r
}

// ensure dials the workers on first use. A failure tears the session down
// and panics *fault.WorkerError so supervision retries under backoff.
func (s *Session) ensure() {
	if s.dialed {
		return
	}
	if s.finished {
		panic("net: use of a closed session — a networked run cannot be restarted; build a new pipeline")
	}
	conns := make([]*wconn, len(s.addrs))
	closeAll := func() {
		for _, c := range conns {
			if c != nil {
				c.c.Close()
			}
		}
	}
	for i, addr := range s.addrs {
		c, err := stdnet.Dial("tcp", addr)
		if err != nil {
			closeAll()
			panic(&fault.WorkerError{Worker: i, Cause: err})
		}
		w := &wconn{c: c, fr: newFrameReader(c), fw: newFrameWriter(c)}
		conns[i] = w
		hello := HelloMsg{
			Sig:         s.sig,
			Worker:      i,
			N:           len(s.addrs),
			Cond:        s.wc,
			Windows:     s.cfg.Windows,
			Materialize: s.cfg.Materialize,
		}
		err = writeGob(w.fw, ftHello, hello)
		var ack HelloAck
		if err == nil {
			var ft byte
			var payload []byte
			if ft, payload, err = w.fr.next(); err == nil {
				if ft != ftHelloAck {
					err = fmt.Errorf("net: expected hello ack, got frame type %d", ft)
				} else {
					err = readGob(payload, &ack)
				}
			}
		}
		if err == nil && ack.Err != "" {
			if ack.Mismatch {
				err = fmt.Errorf("%w: %s", fault.ErrRestoreMismatch, ack.Err)
			} else {
				err = errors.New(ack.Err)
			}
		}
		if err != nil {
			closeAll()
			panic(&fault.WorkerError{Worker: i, Cause: err})
		}
	}
	s.conns = conns
	s.dialed = true
	s.acks = make([]decodedAck, len(conns))
	s.cursor = make([]int, len(conns))
	s.rcur = make([]int, len(conns))
}

// fail tears the session down (freeing the workers' sequential accept
// loops for the successor session) and panics the typed worker error.
func (s *Session) fail(worker int, err error) {
	s.teardown()
	panic(&fault.WorkerError{Worker: worker, Cause: err})
}

func (s *Session) teardown() {
	s.finished = true
	for _, c := range s.conns {
		c.c.Close()
	}
}

// must panics via fail on a transport error.
func (s *Session) must(worker int, err error) {
	if err != nil {
		s.fail(worker, err)
	}
}

// Route accepts one synchronized tuple, routes it through the shared
// router logic, and appends the resulting messages to the owning workers'
// pending batch frames. Must be called from a single goroutine.
func (s *Session) Route(e *stream.Tuple) {
	if s.finished {
		panic("net: Route on a finished session — a networked run cannot be restarted; build a new pipeline")
	}
	s.ensure()
	d := s.router.Observe(e)
	if d.Drop {
		return
	}
	kind := byte(wmInsert)
	if d.Probe {
		kind = wmProbe
	}
	if d.All {
		for w := range s.conns {
			s.sendMsg(w, kind, e, d.WM, d.Idx)
		}
		return
	}
	s.sendMsg(d.Owner, kind, e, d.WM, d.Idx)
	for _, w := range d.Replicas {
		s.sendMsg(w, wmInsert, e, d.WM, 0)
	}
}

// sendMsg appends one tuple message to worker w's batch frame, writing the
// frame once it holds the configured batch of messages.
func (s *Session) sendMsg(w int, kind byte, e *stream.Tuple, wm stream.Time, idx int) {
	c := s.conns[w]
	if !c.open {
		c.fw.begin(ftBatch)
		c.open = true
		c.nmsg = 0
	}
	c.fw.buf = appendMsg(c.fw.buf, kind, e, wm, idx)
	c.nmsg++
	if c.nmsg >= s.batch {
		s.flushFrame(w)
	}
}

// flushFrame writes worker w's pending batch frame, if any.
func (s *Session) flushFrame(w int) {
	c := s.conns[w]
	if !c.open {
		return
	}
	c.open = false
	s.must(w, c.fw.flush())
}

// control writes one control frame to worker w, flushing the pending batch
// frame first so the control event keeps its in-band position.
func (s *Session) control(w int, ftype byte, body func(buf []byte) []byte) {
	s.flushFrame(w)
	c := s.conns[w]
	c.fw.begin(ftype)
	if body != nil {
		c.fw.buf = body(c.fw.buf)
	}
	s.must(w, c.fw.flush())
}

// Watermark returns the driver router's global watermark onT.
func (s *Session) Watermark() stream.Time { return s.router.Watermark() }

// FlushInterval quiesces the workers with one pipelined barrier round-trip
// — barrier frames to all workers first, then acks read in worker order —
// and merges the interval in deterministic (arrival, shard) order, exactly
// like the in-process runtime. A worker failure (contained fault or
// transport error) panics before anything is emitted, preserving the
// all-or-nothing interval boundary the checkpoint/replay gates rely on.
func (s *Session) FlushInterval(
	visit func(ts, delay stream.Time, nCross, nOn int64),
	emit func(stream.Result),
) {
	s.ensure()
	s.barSeq++
	m := feedback.BarrierMsg{Seq: s.barSeq, OutT: s.router.Watermark()}
	for w := range s.conns {
		s.control(w, ftBarrier, func(buf []byte) []byte { return appendBarrier(buf, m) })
	}
	for w, c := range s.conns {
		ft, payload, err := c.fr.next()
		s.must(w, err)
		if ft != ftBarrierAck {
			s.fail(w, fmt.Errorf("net: expected barrier ack, got frame type %d", ft))
		}
		s.must(w, decodeAck(payload, &s.acks[w]))
		if s.acks[w].hdr.Seq != s.barSeq {
			s.fail(w, fmt.Errorf("net: barrier ack seq %d, want %d", s.acks[w].hdr.Seq, s.barSeq))
		}
	}
	// Surface failures before emitting anything (DESIGN.md §10): an interval
	// either emits entirely or not at all.
	for w := range s.conns {
		a := &s.acks[w]
		if a.hdr.Failed {
			s.fail(w, errors.New(a.hdr.Err))
		}
		if s.expectK >= 0 && a.hdr.K != s.expectK {
			s.fail(w, fmt.Errorf("net: in-band ordering violation: worker observed K=%d at the barrier, driver had decided K=%d", a.hdr.K, s.expectK))
		}
	}
	for w := range s.cursor {
		s.cursor[w], s.rcur[w] = 0, 0
	}
	for i := 0; i < s.router.Arrivals(); i++ {
		var tot int64
		for w := range s.conns {
			a := &s.acks[w]
			if s.cursor[w] < len(a.acc) && a.acc[s.cursor[w]].idx == i {
				tot += a.acc[s.cursor[w]].n
				s.cursor[w]++
			}
			if emit != nil {
				for s.rcur[w] < len(a.resIdx) && a.resIdx[s.rcur[w]] == i {
					emit(a.res[s.rcur[w]])
					s.rcur[w]++
				}
			}
		}
		if visit != nil {
			ts, delay, nCross := s.router.Arrival(i)
			visit(ts, delay, nCross, tot)
		}
	}
	s.router.ResetInterval()
}

// KChange ships one adaptation decision to the workers as an in-band
// control frame: it follows the last tuple of the interval it was decided
// from (the barrier quiesced them) and precedes every tuple of the next.
func (s *Session) KChange(ks []stream.Time) {
	if s.finished {
		return
	}
	s.ensure()
	s.kSeq++
	m := feedback.KChangeMsg{Seq: s.kSeq, Ks: ks}
	for w := range s.conns {
		s.control(w, ftSetK, func(buf []byte) []byte { return appendSetK(buf, m) })
	}
	if len(ks) > 0 {
		s.expectK = ks[0]
	}
}

// EnableMaterialize installs result buffers on the workers. Before the run
// starts it simply flips the hello flag; the dialed case covers the
// restore path, where a session dials during Restore and the sink is
// installed before the first Push.
func (s *Session) EnableMaterialize() {
	if s.router.Started() {
		panic("net: cannot install a results sink after the networked run has started — results produced so far were count-only; install the sink before the first Push")
	}
	if s.cfg.Materialize {
		return
	}
	s.cfg.Materialize = true
	if s.dialed {
		for w := range s.conns {
			s.control(w, ftMaterialize, nil)
		}
	}
}

// State captures the runtime state entirely driver-side: the router spine
// plus the retained window tuples in canonical (TS, Seq) order. Call only
// after FlushInterval, per the shard.Runtime contract.
func (s *Session) State(tt *fault.TupleTable) shard.State {
	var st shard.State
	st.WM, st.Started, st.Reps = s.router.Snapshot()
	st.Windows = make([][]int32, s.cfg.Cond.M)
	for i := range st.Windows {
		tuples := append([]*stream.Tuple(nil), s.router.Held(i)...)
		sort.Slice(tuples, func(a, b int) bool { return stream.Less(tuples[a], tuples[b]) })
		for _, t := range tuples {
			st.Windows[i] = append(st.Windows[i], tt.ID(t))
		}
	}
	return st
}

// Restore loads a checkpoint into a fresh session: the router spine and
// retained windows are restored driver-side, the workers are dialed (a
// restarted daemon accepts with a fresh operator; a surviving daemon pins
// the deployment signature), and the window tuples re-enter as insert
// frames under the restored watermark — deterministic routing lands every
// tuple on exactly the shards it occupied before. Snapshots from the
// in-process runtime restore here unchanged (and vice versa): the state
// schema and signature are deployment-agnostic.
func (s *Session) Restore(st shard.State, ta *fault.TupleArena) {
	s.router.RestoreSpine(st.WM, st.Started, st.Reps)
	ws := make([][]*stream.Tuple, len(st.Windows))
	for i, ids := range st.Windows {
		for _, id := range ids {
			ws[i] = append(ws[i], ta.Tuple(id))
		}
	}
	s.router.RestoreHeld(ws)
	s.ensure()
	for _, w := range ws {
		for _, e := range w {
			probeAll, owner, replicas := s.router.RouteOnly(e)
			if probeAll {
				for c := range s.conns {
					s.sendMsg(c, wmInsert, e, st.WM, 0)
				}
				continue
			}
			s.sendMsg(owner, wmInsert, e, st.WM, 0)
			for _, c := range replicas {
				s.sendMsg(c, wmInsert, e, st.WM, 0)
			}
		}
	}
	for w := range s.conns {
		s.flushFrame(w)
	}
}

// Close ends the session: pending frames flush, a close frame tells each
// worker to end its session cleanly, and the connections close. Closing
// twice (or closing a torn-down session) is a no-op.
func (s *Session) Close() {
	if s.finished {
		return
	}
	s.finished = true
	if !s.dialed {
		return
	}
	for _, c := range s.conns {
		// Best-effort: a worker that already vanished must not block Close.
		if c.open {
			c.open = false
			c.fw.flush()
		}
		c.fw.begin(ftClose)
		c.fw.flush()
		c.c.Close()
	}
}
