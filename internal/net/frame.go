package net

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"io"
)

// frameReader reads length-prefixed frames from a connection. The payload
// buffer is grow-only and reused across frames: a warm reader decodes at
// zero allocations per frame. The returned payload aliases the internal
// buffer and is valid until the next call.
type frameReader struct {
	r   *bufio.Reader
	buf []byte
	hdr [4]byte // scratch for the length prefix; a local would escape via io.ReadFull
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{r: bufio.NewReaderSize(r, 64<<10)}
}

// next reads one frame and returns its type byte and payload (without the
// type byte).
func (fr *frameReader) next() (ftype byte, payload []byte, err error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(fr.hdr[:])
	if n == 0 {
		return 0, nil, errShortFrame
	}
	if n > maxFrame {
		return 0, nil, frameSizeError(n)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	b := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, b); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return b[0], b[1:], nil
}

// frameWriter assembles frames in a reusable buffer and writes each with a
// single Write call. begin opens a frame (reserving the length prefix);
// the caller appends payload bytes to fw.buf and calls flush, which
// patches the prefix and writes. A warm writer allocates nothing.
type frameWriter struct {
	w   io.Writer
	buf []byte
}

func newFrameWriter(w io.Writer) *frameWriter { return &frameWriter{w: w} }

func (fw *frameWriter) begin(ftype byte) {
	fw.buf = append(fw.buf[:0], 0, 0, 0, 0, ftype)
}

func (fw *frameWriter) flush() error {
	binary.LittleEndian.PutUint32(fw.buf, uint32(len(fw.buf)-4))
	_, err := fw.w.Write(fw.buf)
	return err
}

// writeGob writes one gob-encoded control frame (handshake only — never
// the data path).
func writeGob(fw *frameWriter, ftype byte, v any) error {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(v); err != nil {
		return err
	}
	fw.begin(ftype)
	fw.buf = append(fw.buf, b.Bytes()...)
	return fw.flush()
}

func readGob(payload []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(v)
}
