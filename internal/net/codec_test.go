package net

// Wire-codec tests: round-trip properties on the binary tuple and ack
// layouts (including NaN payloads and ±Inf, compared as IEEE-754 bit
// patterns), a fuzz target over raw frame bytes (the decoder must reject
// truncated frames, oversize length prefixes, and arbitrary garbage
// without panicking or over-reading), and allocation gates proving the
// warm data path — encoders appending to a sized buffer, the frame reader
// on a warm connection — runs allocation-free.

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"testing"

	"repro/internal/feedback"
	"repro/internal/stream"
)

// msgEqualBits compares two tuples field-by-field with attribute equality
// at the bit level, so NaN payloads count as equal to themselves.
func msgEqualBits(a, b *stream.Tuple) bool {
	if a.TS != b.TS || a.Seq != b.Seq || a.Src != b.Src || a.Delay != b.Delay || len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for i := range a.Attrs {
		if math.Float64bits(a.Attrs[i]) != math.Float64bits(b.Attrs[i]) {
			return false
		}
	}
	return true
}

func TestMsgRoundTripSpecialFloats(t *testing.T) {
	nanPayload := math.Float64frombits(0x7ff8_dead_beef_0001)
	tuples := []*stream.Tuple{
		{TS: 1000, Seq: 7, Src: 2, Delay: 33, Attrs: []float64{1.5, -0.0, math.Inf(1)}},
		{TS: -5, Seq: 1 << 60, Src: 0, Delay: 0, Attrs: []float64{math.NaN(), nanPayload, math.Inf(-1)}},
		{TS: 0, Seq: 0, Src: 9, Delay: -1, Attrs: nil},
	}
	var buf []byte
	for i, e := range tuples {
		kind := byte(wmProbe)
		if i%2 == 1 {
			kind = wmInsert
		}
		buf = appendMsg(buf, kind, e, stream.Time(100+i), 40+i)
	}
	var slab tupleSlab
	off := 0
	for i, want := range tuples {
		kind, got, wm, idx, next, err := decodeMsg(buf, off, &slab)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		wantKind := byte(wmProbe)
		if i%2 == 1 {
			wantKind = wmInsert
		}
		if kind != wantKind || wm != stream.Time(100+i) || idx != 40+i {
			t.Fatalf("msg %d: kind=%d wm=%d idx=%d", i, kind, wm, idx)
		}
		if !msgEqualBits(want, got) {
			t.Fatalf("msg %d: round-trip mismatch: %+v vs %+v", i, want, got)
		}
		off = next
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestAckRoundTrip(t *testing.T) {
	acc := []ackEntry{{idx: 0, n: 3}, {idx: 5, n: -1}, {idx: 1 << 20, n: 1 << 40}}
	res := []resEntry{
		{idx: 2, r: stream.Result{TS: 77, Tuples: []*stream.Tuple{
			{TS: 70, Seq: 1, Src: 0, Delay: 4, Attrs: []float64{math.NaN(), 2}},
			{TS: 75, Seq: 2, Src: 1, Attrs: []float64{math.Inf(1)}},
		}}},
		{idx: 9, r: stream.Result{TS: -3, Tuples: nil}},
	}
	hdr := feedback.BarrierAck{Seq: 42, K: 1500}
	buf := appendAckHeader(nil, hdr)
	buf = appendAckBody(buf, acc, res)

	var out decodedAck
	if err := decodeAck(buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.hdr != hdr {
		t.Fatalf("hdr = %+v, want %+v", out.hdr, hdr)
	}
	if len(out.acc) != len(acc) {
		t.Fatalf("acc len = %d", len(out.acc))
	}
	for i := range acc {
		if out.acc[i] != acc[i] {
			t.Fatalf("acc[%d] = %+v, want %+v", i, out.acc[i], acc[i])
		}
	}
	if len(out.res) != len(res) {
		t.Fatalf("res len = %d", len(out.res))
	}
	for i := range res {
		if out.resIdx[i] != res[i].idx || out.res[i].TS != res[i].r.TS ||
			len(out.res[i].Tuples) != len(res[i].r.Tuples) {
			t.Fatalf("res[%d] header mismatch", i)
		}
		for j := range res[i].r.Tuples {
			if !msgEqualBits(res[i].r.Tuples[j], out.res[i].Tuples[j]) {
				t.Fatalf("res[%d].Tuples[%d] mismatch", i, j)
			}
		}
	}

	fail := feedback.BarrierAck{Seq: 43, K: 1500, Failed: true, Err: "injected: shard 1"}
	if err := decodeAck(appendAckHeader(nil, fail), &out); err != nil {
		t.Fatal(err)
	}
	if out.hdr != fail {
		t.Fatalf("failed hdr = %+v, want %+v", out.hdr, fail)
	}
}

// frameBytes renders a complete frame (length prefix + type + payload).
func frameBytes(ftype byte, payload []byte) []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(1+len(payload)))
	b = append(b, ftype)
	return append(b, payload...)
}

// FuzzWireFrame feeds arbitrary bytes through the frame reader and, for
// every frame that parses, through the matching payload decoder. The
// property is totality: no panics, no over-reads, and every accepted
// tuple/ack payload re-encodes to the identical bytes.
func FuzzWireFrame(f *testing.F) {
	// Valid single-tuple batch, including a NaN payload and -Inf.
	e := &stream.Tuple{TS: 500, Seq: 3, Src: 1, Delay: 20,
		Attrs: []float64{math.Float64frombits(0x7ff8_0000_0000_0042), math.Inf(-1)}}
	f.Add(frameBytes(ftBatch, appendMsg(nil, wmProbe, e, 480, 12)))
	// Two messages in one frame, the second insert-kind.
	two := appendMsg(nil, wmProbe, e, 480, 12)
	f.Add(frameBytes(ftBatch, appendMsg(two, wmInsert, e, 0, 0)))
	// Barrier, setK, barrier-ack (ok and failed), materialize, close.
	f.Add(frameBytes(ftBarrier, appendBarrier(nil, feedback.BarrierMsg{Seq: 1, OutT: 900})))
	f.Add(frameBytes(ftSetK, appendSetK(nil, feedback.KChangeMsg{Seq: 2, Ks: []stream.Time{120, 80}})))
	ack := appendAckHeader(nil, feedback.BarrierAck{Seq: 1, K: 120})
	ack = appendAckBody(ack, []ackEntry{{idx: 3, n: 9}},
		[]resEntry{{idx: 3, r: stream.Result{TS: 880, Tuples: []*stream.Tuple{e}}}})
	f.Add(frameBytes(ftBarrierAck, ack))
	f.Add(frameBytes(ftBarrierAck, appendAckHeader(nil,
		feedback.BarrierAck{Seq: 4, K: 120, Failed: true, Err: "boom"})))
	f.Add(frameBytes(ftMaterialize, nil))
	f.Add(frameBytes(ftClose, nil))
	// Truncated frames: header only, short payload, and a cut-off tuple.
	f.Add([]byte{40, 0, 0, 0})
	f.Add([]byte{40, 0, 0, 0, ftBatch, wmProbe, 1})
	full := frameBytes(ftBatch, appendMsg(nil, wmProbe, e, 480, 12))
	f.Add(full[:len(full)-5])
	// Oversize length prefix (must be rejected before any allocation) and
	// a zero-length frame.
	f.Add(binary.LittleEndian.AppendUint32(nil, maxFrame+1))
	f.Add([]byte{0, 0, 0, 0})
	// Lying attribute count inside an otherwise valid frame.
	lie := frameBytes(ftBatch, appendMsg(nil, wmProbe, e, 480, 12))
	binary.LittleEndian.PutUint16(lie[5+2:], 60000)
	f.Add(lie)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := newFrameReader(bytes.NewReader(data))
		var slab tupleSlab
		var out decodedAck
		ks := make([]stream.Time, 0, 8)
		for {
			ftype, payload, err := fr.next()
			if err != nil {
				return // any error ends the stream; the property is no panic
			}
			switch ftype {
			case ftBatch:
				off := 0
				for off < len(payload) {
					kind, e, wm, idx, next, err := decodeMsg(payload, off, &slab)
					if err != nil {
						break
					}
					if next <= off || next > len(payload) {
						t.Fatalf("decodeMsg advanced %d -> %d of %d", off, next, len(payload))
					}
					// Accepted messages must re-encode to identical bytes.
					re := appendMsg(nil, kind, e, wm, idx)
					if !bytes.Equal(re, payload[off:next]) {
						t.Fatalf("tuple message did not re-encode canonically")
					}
					off = next
				}
			case ftBarrier:
				if m, err := decodeBarrier(payload); err == nil {
					if !bytes.Equal(appendBarrier(nil, m), payload[:16]) {
						t.Fatalf("barrier did not re-encode canonically")
					}
				}
			case ftSetK:
				_, ks, _ = decodeSetK(payload, ks)
			case ftBarrierAck:
				if err := decodeAck(payload, &out); err == nil && !out.hdr.Failed {
					re := appendAckHeader(nil, out.hdr)
					res := make([]resEntry, len(out.res))
					for i := range out.res {
						res[i] = resEntry{idx: out.resIdx[i], r: out.res[i]}
					}
					re = appendAckBody(re, out.acc, res)
					if !bytes.Equal(re, payload) {
						t.Fatalf("ack did not re-encode canonically")
					}
				}
			}
		}
	})
}

// TestDataPathAllocationFree gates the zero-allocation claim: warm
// encoders appending into a capacity-sized buffer and a warm frame reader
// must not allocate per frame. The slab-backed tuple decode amortizes to
// one allocation per slabTuples tuples, asserted separately.
func TestDataPathAllocationFree(t *testing.T) {
	e := &stream.Tuple{TS: 500, Seq: 3, Src: 1, Delay: 20, Attrs: []float64{1, 2, 3}}
	buf := make([]byte, 0, 4096)
	if n := testing.AllocsPerRun(200, func() {
		buf = appendMsg(buf[:0], wmProbe, e, 480, 12)
	}); n != 0 {
		t.Errorf("appendMsg: %v allocs/op", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		buf = appendBarrier(buf[:0], feedback.BarrierMsg{Seq: 9, OutT: 100})
	}); n != 0 {
		t.Errorf("appendBarrier: %v allocs/op", n)
	}
	ks := []stream.Time{120}
	if n := testing.AllocsPerRun(200, func() {
		buf = appendSetK(buf[:0], feedback.KChangeMsg{Seq: 9, Ks: ks})
	}); n != 0 {
		t.Errorf("appendSetK: %v allocs/op", n)
	}
	acc := []ackEntry{{idx: 1, n: 5}}
	if n := testing.AllocsPerRun(200, func() {
		buf = appendAckHeader(buf[:0], feedback.BarrierAck{Seq: 9, K: 40})
		buf = appendAckBody(buf, acc, nil)
	}); n != 0 {
		t.Errorf("appendAck: %v allocs/op", n)
	}

	// Frame writer: one buffered frame assembled and "written" to a
	// discarding sink per op.
	fw := newFrameWriter(io.Discard)
	fw.begin(ftBatch) // warm the buffer
	if n := testing.AllocsPerRun(200, func() {
		fw.begin(ftBatch)
		fw.buf = appendMsg(fw.buf, wmProbe, e, 480, 12)
		if err := fw.flush(); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("frameWriter: %v allocs/op", n)
	}

	// Frame reader: replay the same frame stream from a reset reader. The
	// bufio.Reader and payload buffer are reused, so a warm reader reads
	// each frame without allocating.
	frame := frameBytes(ftBatch, appendMsg(nil, wmProbe, e, 480, 12))
	stream10 := bytes.Repeat(frame, 10)
	br := bytes.NewReader(stream10)
	fr := newFrameReader(br)
	if _, _, err := fr.next(); err != nil { // warm buffers
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(50, func() {
		br.Reset(stream10)
		fr.r.Reset(br)
		for i := 0; i < 10; i++ {
			if _, _, err := fr.next(); err != nil {
				t.Fatal(err)
			}
		}
	}); n != 0 {
		t.Errorf("frameReader: %v allocs/op over 10 frames", n)
	}

	// Slab decode: 2048 tuples cost ≤ a handful of chunk allocations, far
	// under one per tuple.
	payload := frame[5:] // strip prefix+type: one tuple message
	var slab tupleSlab
	allocs := testing.AllocsPerRun(1, func() {
		for i := 0; i < 2048; i++ {
			if _, _, _, _, _, err := decodeMsg(payload, 0, &slab); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs > 16 {
		t.Errorf("slab decode: %v allocs per 2048 tuples", allocs)
	}
}
