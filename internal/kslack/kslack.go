// Package kslack implements the K-slack input-sorting buffer (Sec. III-A,
// Fig. 3) used to handle the intra-stream disorder of one input stream.
//
// A buffer of K time units sorts arriving tuples by timestamp: whenever the
// stream's local current time iT advances, every buffered tuple e with
// e.ts + K ≤ iT is released in timestamp order. A tuple whose delay exceeds
// K is released late and remains out of order in the output.
//
// The component also performs the delay annotation of Sec. IV-B: every tuple
// is stamped with delay(e) = iT − e.ts on arrival, and the annotation rides
// with the tuple to the join operator and the Tuple-Productivity Profiler.
package kslack

import (
	"sort"

	"repro/internal/fault"
	"repro/internal/pq"
	"repro/internal/stream"
)

// EmitFunc receives released tuples in release order.
type EmitFunc func(*stream.Tuple)

// Buffer is a K-slack sorting buffer for a single stream. K may change at
// any time through SetK; shrinking K releases newly eligible tuples
// immediately so an adaptation step takes effect without waiting for the
// next arrival.
type Buffer struct {
	k      stream.Time
	localT stream.Time
	seen   bool
	heap   pq.Heap[*stream.Tuple]
	emit   EmitFunc

	arrived  int64
	released int64
	shed     int64
	maxDelay stream.Time
}

// New creates a K-slack buffer with initial buffer size k (≥ 0) emitting
// released tuples to emit.
func New(k stream.Time, emit EmitFunc) *Buffer {
	if k < 0 {
		k = 0
	}
	return &Buffer{k: k, emit: emit, heap: pq.New(stream.Less)}
}

// K returns the current buffer size in time units.
func (b *Buffer) K() stream.Time { return b.k }

// SetK changes the buffer size. Reducing K releases all newly eligible
// tuples right away.
func (b *Buffer) SetK(k stream.Time) {
	if k < 0 {
		k = 0
	}
	b.k = k
	b.release()
}

// LocalT returns the stream's local current time iT, the maximum timestamp
// among arrived tuples (Sec. II-A).
func (b *Buffer) LocalT() stream.Time { return b.localT }

// Len returns the number of currently buffered tuples.
func (b *Buffer) Len() int { return b.heap.Len() }

// Arrived returns the number of tuples pushed so far.
func (b *Buffer) Arrived() int64 { return b.arrived }

// Released returns the number of tuples emitted so far. At any point
// Arrived() == Released() + Shed() + Len(): the buffer never duplicates a
// tuple, and it only ever drops one through an explicit EvictAt (load
// shedding).
func (b *Buffer) Released() int64 { return b.released }

// Shed returns the number of tuples dropped through EvictAt.
func (b *Buffer) Shed() int64 { return b.shed }

// MaxDelay returns the maximum delay observed among arrived tuples.
func (b *Buffer) MaxDelay() stream.Time { return b.maxDelay }

// Push accepts one arriving tuple: updates iT, annotates the tuple's delay,
// buffers it and releases every tuple whose slack has expired.
func (b *Buffer) Push(e *stream.Tuple) {
	b.arrived++
	if !b.seen || e.TS > b.localT {
		b.localT = e.TS
		b.seen = true
	}
	e.Delay = b.localT - e.TS
	if e.Delay > b.maxDelay {
		b.maxDelay = e.Delay
	}
	// Fast path: with nothing buffered and the tuple's slack already
	// expired (always the case at K = 0), push-then-pop through the heap is
	// a detour — emit directly. Identical release order and counters.
	if b.heap.Len() == 0 && e.TS+b.k <= b.localT {
		b.released++
		b.emit(e)
		return
	}
	b.heap.Push(e)
	b.release()
}

// Flush releases every remaining buffered tuple in timestamp order. Call it
// when the input stream ends.
func (b *Buffer) Flush() {
	for b.heap.Len() > 0 {
		b.pop()
	}
}

// release emits all tuples with ts + K ≤ iT, in timestamp order.
func (b *Buffer) release() {
	for b.heap.Len() > 0 && b.heap.Peek().TS+b.k <= b.localT {
		b.pop()
	}
}

func (b *Buffer) pop() {
	e := b.heap.Pop()
	b.released++
	b.emit(e)
}

// Items exposes the buffered tuples in heap order (not sorted). Read-only;
// valid until the next Push/SetK/Flush/EvictAt. Load shedding scans it to
// pick a victim.
func (b *Buffer) Items() []*stream.Tuple { return b.heap.Items() }

// EvictAt drops the buffered tuple at position i of Items() without
// emitting it, counting it as shed. It returns the victim.
func (b *Buffer) EvictAt(i int) *stream.Tuple {
	e := b.heap.RemoveAt(i)
	b.shed++
	return e
}

// State is the serializable snapshot of a Buffer; see Checkpoint in
// internal/plan.
type State struct {
	K        stream.Time
	LocalT   stream.Time
	Seen     bool
	Arrived  int64
	Released int64
	Shed     int64
	MaxDelay stream.Time
	Buffered []int32 // tuple-table ids, canonical (TS, Seq) order
}

// State captures the buffer's state, registering buffered tuples in tt.
func (b *Buffer) State(tt *fault.TupleTable) State {
	items := b.heap.Items()
	sorted := make([]*stream.Tuple, len(items))
	copy(sorted, items)
	sort.Slice(sorted, func(i, j int) bool { return stream.Less(sorted[i], sorted[j]) })
	st := State{
		K: b.k, LocalT: b.localT, Seen: b.seen,
		Arrived: b.arrived, Released: b.released, Shed: b.shed, MaxDelay: b.maxDelay,
		Buffered: make([]int32, len(sorted)),
	}
	for i, e := range sorted {
		st.Buffered[i] = tt.ID(e)
	}
	return st
}

// Restore loads a captured state into a freshly constructed buffer (same
// emit sink). Buffered tuples re-enter the heap without re-annotation or
// release: the restored buffer holds exactly the checkpointed content.
func (b *Buffer) Restore(st State, ta *fault.TupleArena) {
	b.k = st.K
	b.localT = st.LocalT
	b.seen = st.Seen
	b.arrived = st.Arrived
	b.released = st.Released
	b.shed = st.Shed
	b.maxDelay = st.MaxDelay
	b.heap.Reset()
	for _, id := range st.Buffered {
		b.heap.Push(ta.Tuple(id))
	}
}
