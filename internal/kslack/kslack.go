// Package kslack implements the K-slack input-sorting buffer (Sec. III-A,
// Fig. 3) used to handle the intra-stream disorder of one input stream.
//
// A buffer of K time units sorts arriving tuples by timestamp: whenever the
// stream's local current time iT advances, every buffered tuple e with
// e.ts + K ≤ iT is released in timestamp order. A tuple whose delay exceeds
// K is released late and remains out of order in the output.
//
// The component also performs the delay annotation of Sec. IV-B: every tuple
// is stamped with delay(e) = iT − e.ts on arrival, and the annotation rides
// with the tuple to the join operator and the Tuple-Productivity Profiler.
package kslack

import (
	"container/heap"

	"repro/internal/stream"
)

// EmitFunc receives released tuples in release order.
type EmitFunc func(*stream.Tuple)

// Buffer is a K-slack sorting buffer for a single stream. K may change at
// any time through SetK; shrinking K releases newly eligible tuples
// immediately so an adaptation step takes effect without waiting for the
// next arrival.
type Buffer struct {
	k      stream.Time
	localT stream.Time
	seen   bool
	heap   tupleHeap
	emit   EmitFunc

	arrived  int64
	released int64
	maxDelay stream.Time
}

// New creates a K-slack buffer with initial buffer size k (≥ 0) emitting
// released tuples to emit.
func New(k stream.Time, emit EmitFunc) *Buffer {
	if k < 0 {
		k = 0
	}
	return &Buffer{k: k, emit: emit}
}

// K returns the current buffer size in time units.
func (b *Buffer) K() stream.Time { return b.k }

// SetK changes the buffer size. Reducing K releases all newly eligible
// tuples right away.
func (b *Buffer) SetK(k stream.Time) {
	if k < 0 {
		k = 0
	}
	b.k = k
	b.release()
}

// LocalT returns the stream's local current time iT, the maximum timestamp
// among arrived tuples (Sec. II-A).
func (b *Buffer) LocalT() stream.Time { return b.localT }

// Len returns the number of currently buffered tuples.
func (b *Buffer) Len() int { return len(b.heap) }

// Arrived returns the number of tuples pushed so far.
func (b *Buffer) Arrived() int64 { return b.arrived }

// MaxDelay returns the maximum delay observed among arrived tuples.
func (b *Buffer) MaxDelay() stream.Time { return b.maxDelay }

// Push accepts one arriving tuple: updates iT, annotates the tuple's delay,
// buffers it and releases every tuple whose slack has expired.
func (b *Buffer) Push(e *stream.Tuple) {
	b.arrived++
	if !b.seen || e.TS > b.localT {
		b.localT = e.TS
		b.seen = true
	}
	e.Delay = b.localT - e.TS
	if e.Delay > b.maxDelay {
		b.maxDelay = e.Delay
	}
	heap.Push(&b.heap, e)
	b.release()
}

// Flush releases every remaining buffered tuple in timestamp order. Call it
// when the input stream ends.
func (b *Buffer) Flush() {
	for len(b.heap) > 0 {
		b.pop()
	}
}

// release emits all tuples with ts + K ≤ iT, in timestamp order.
func (b *Buffer) release() {
	for len(b.heap) > 0 && b.heap[0].TS+b.k <= b.localT {
		b.pop()
	}
}

func (b *Buffer) pop() {
	e := heap.Pop(&b.heap).(*stream.Tuple)
	b.released++
	b.emit(e)
}

// tupleHeap is a min-heap on (TS, Seq) so ties keep arrival order.
type tupleHeap []*stream.Tuple

func (h tupleHeap) Len() int { return len(h) }
func (h tupleHeap) Less(i, j int) bool {
	if h[i].TS != h[j].TS {
		return h[i].TS < h[j].TS
	}
	return h[i].Seq < h[j].Seq
}
func (h tupleHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *tupleHeap) Push(x any)   { *h = append(*h, x.(*stream.Tuple)) }
func (h *tupleHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
