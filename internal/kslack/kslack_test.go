package kslack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

func collect(out *[]*stream.Tuple) EmitFunc {
	return func(e *stream.Tuple) { *out = append(*out, e) }
}

func tup(ts stream.Time, seq uint64) *stream.Tuple {
	return &stream.Tuple{TS: ts, Seq: seq}
}

// TestFig3Example replays the worked example of Fig. 3 (paper Sec. III-A):
// input timestamps 1,4,3,5,7,8,6,9 through K-slack with K = 1 must release
// 1,3,4,5,7,6,8 (e_{i,7} with delay 2 stays out of order but its delay drops
// to 1) and leave 9 buffered.
func TestFig3Example(t *testing.T) {
	var out []*stream.Tuple
	b := New(1, collect(&out))
	in := []stream.Time{1, 4, 3, 5, 7, 8, 6, 9}
	for i, ts := range in {
		b.Push(tup(ts, uint64(i)))
	}
	want := []stream.Time{1, 3, 4, 5, 7, 6, 8}
	if len(out) != len(want) {
		t.Fatalf("released %d tuples, want %d", len(out), len(want))
	}
	for i, ts := range want {
		if out[i].TS != ts {
			t.Fatalf("release[%d] = %d, want %d", i, out[i].TS, ts)
		}
	}
	if b.Len() != 1 {
		t.Fatalf("buffer should hold 1 tuple (ts 9), holds %d", b.Len())
	}
	// Residual delay of the unsortable tuple (ts 6, original delay 2) is 1
	// time unit in the output, per the paper's observation.
	outDelay := out[5].Delay // annotation carries original delay
	if outDelay != 2 {
		t.Fatalf("delay annotation = %d, want original delay 2", outDelay)
	}
}

func TestDelayAnnotation(t *testing.T) {
	var out []*stream.Tuple
	b := New(0, collect(&out))
	b.Push(tup(10, 0))
	b.Push(tup(4, 1))
	b.Push(tup(12, 2))
	if out[0].Delay != 0 || out[1].Delay != 6 || out[2].Delay != 0 {
		t.Fatalf("delays = %d,%d,%d want 0,6,0", out[0].Delay, out[1].Delay, out[2].Delay)
	}
	if b.MaxDelay() != 6 {
		t.Fatalf("MaxDelay = %d", b.MaxDelay())
	}
}

func TestZeroKReleasesEverythingEligible(t *testing.T) {
	var out []*stream.Tuple
	b := New(0, collect(&out))
	b.Push(tup(5, 0))
	if len(out) != 1 {
		t.Fatal("with K=0 the watermark tuple itself must release")
	}
}

func TestLargeKBuffersUntilFlush(t *testing.T) {
	var out []*stream.Tuple
	b := New(1000, collect(&out))
	for i := 0; i < 10; i++ {
		b.Push(tup(stream.Time(i), uint64(i)))
	}
	if len(out) != 0 {
		t.Fatalf("nothing should release, got %d", len(out))
	}
	b.Flush()
	if len(out) != 10 {
		t.Fatalf("flush must release all, got %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].TS < out[i-1].TS {
			t.Fatal("flush must release in timestamp order")
		}
	}
}

func TestSetKShrinkReleasesEagerly(t *testing.T) {
	var out []*stream.Tuple
	b := New(100, collect(&out))
	b.Push(tup(1, 0))
	b.Push(tup(2, 1))
	b.Push(tup(50, 2))
	if len(out) != 0 {
		t.Fatal("K=100 should buffer everything")
	}
	b.SetK(10)
	if len(out) != 2 {
		t.Fatalf("shrinking K to 10 should release ts 1,2; got %d", len(out))
	}
}

func TestSetKNegativeClamped(t *testing.T) {
	b := New(-5, func(*stream.Tuple) {})
	if b.K() != 0 {
		t.Fatal("negative initial K must clamp to 0")
	}
	b.SetK(-1)
	if b.K() != 0 {
		t.Fatal("negative SetK must clamp to 0")
	}
}

func TestExactDelayEqualsKIsSorted(t *testing.T) {
	// A tuple with delay exactly K must be re-ordered correctly: it is
	// released only when ts+K ≤ iT, i.e. exactly when the watermark reaches
	// its slack bound.
	var out []*stream.Tuple
	b := New(5, collect(&out))
	b.Push(tup(10, 0)) // iT=10
	b.Push(tup(5, 1))  // delay 5 == K; eligible: 5+5 ≤ 10
	if len(out) != 1 || out[0].TS != 5 {
		t.Fatalf("tuple with delay == K must release in order, out=%v", out)
	}
}

// Property (paper Sec. III-A): with K at least the maximum delay, the output
// is fully timestamp-sorted; and regardless of K, output delays never exceed
// max(0, delay−K) in the released stream.
func TestKAtLeastMaxDelaySorts(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var in []*stream.Tuple
		ts := stream.Time(0)
		for i := 0; i < 300; i++ {
			ts += stream.Time(rng.Intn(5))
			d := stream.Time(rng.Intn(20))
			in = append(in, &stream.Tuple{TS: maxT(0, ts-d), Seq: uint64(i)})
		}
		maxDelay, _ := stream.Batch(in).MaxDelay()
		var out []*stream.Tuple
		b := New(maxDelay, collect(&out))
		for _, e := range in {
			b.Push(e)
		}
		b.Flush()
		if len(out) != len(in) {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i].TS < out[i-1].TS {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: K-slack never loses or duplicates tuples.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64, kRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		k := stream.Time(kRaw % 50)
		var out []*stream.Tuple
		b := New(k, collect(&out))
		n := 200
		ts := stream.Time(0)
		for i := 0; i < n; i++ {
			ts += stream.Time(rng.Intn(4))
			b.Push(&stream.Tuple{TS: maxT(0, ts-stream.Time(rng.Intn(30))), Seq: uint64(i)})
		}
		b.Flush()
		if len(out) != n {
			return false
		}
		seen := map[uint64]bool{}
		for _, e := range out {
			if seen[e.Seq] {
				return false
			}
			seen[e.Seq] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func maxT(a, b stream.Time) stream.Time {
	if a > b {
		return a
	}
	return b
}

// Invariant: Arrived() == Released() + Len() at every point, including
// across SetK shrink/grow sequences and the final flush.
func TestArrivedEqualsReleasedPlusBuffered(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var released int64
		b := New(stream.Time(rng.Intn(50)), func(*stream.Tuple) { released++ })
		check := func() bool {
			return b.Arrived() == b.Released()+int64(b.Len()) && b.Released() == released
		}
		ts := stream.Time(0)
		for i := 0; i < 300; i++ {
			switch rng.Intn(10) {
			case 0:
				b.SetK(stream.Time(rng.Intn(10))) // shrink: eager release
			case 1:
				b.SetK(stream.Time(50 + rng.Intn(100))) // grow
			default:
				ts += stream.Time(rng.Intn(4))
				b.Push(&stream.Tuple{TS: maxT(0, ts-stream.Time(rng.Intn(30))), Seq: uint64(i)})
			}
			if !check() {
				return false
			}
		}
		b.Flush()
		return check() && b.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkPush measures the per-arrival cost on mostly-ordered input with a
// working buffer: the boxing-free heap must not allocate in steady state.
func BenchmarkPush(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 1 << 16
	tuples := make([]*stream.Tuple, n)
	for i := range tuples {
		ts := stream.Time(i * 10)
		if rng.Intn(5) == 0 {
			ts = maxT(0, ts-stream.Time(rng.Intn(500)))
		}
		tuples[i] = &stream.Tuple{TS: ts, Seq: uint64(i)}
	}
	buf := New(1000, func(*stream.Tuple) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Push(tuples[i&(n-1)])
	}
}
