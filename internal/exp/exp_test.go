package exp

import (
	"io"
	"strings"
	"testing"

	"repro/internal/adapt"
	"repro/internal/core"
)

// short shared datasets for harness tests (1 simulated minute).
var testDS = map[string]*Dataset{}

func prepared(t testing.TB, key string) *Dataset {
	t.Helper()
	if ds, ok := testDS[key]; ok {
		return ds
	}
	ds := Prepare(key, 1.5, 7)
	testDS[key] = ds
	return ds
}

func TestPrepareKeys(t *testing.T) {
	for _, k := range AllKeys() {
		ds := prepared(t, k)
		if len(ds.Arrivals) == 0 || ds.Truth.Total() == 0 {
			t.Fatalf("%s: empty dataset or truth", k)
		}
		if ds.Cond == nil || len(ds.Windows) != ds.M {
			t.Fatalf("%s: malformed dataset", k)
		}
	}
}

func TestPrepareUnknownKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Prepare("nope", 1, 1)
}

func TestRunProducesSummary(t *testing.T) {
	ds := prepared(t, KeyX3)
	cfg := adapt.Config{Gamma: 0.9, P: 30_000, L: 1000}
	s := Run(ds, cfg, core.ModelPolicy())
	if s.Produced <= 0 || s.TrueTotal <= 0 {
		t.Fatalf("no results: %+v", s)
	}
	if s.Produced > s.TrueTotal {
		t.Fatalf("produced %d exceeds truth %d — correctness violation", s.Produced, s.TrueTotal)
	}
	if s.AdaptSteps == 0 {
		t.Fatal("model policy must record adaptation steps")
	}
	if !s.PhiOK {
		t.Fatal("expected usable recall measurements over 1.5 minutes")
	}
	if s.OverallRecall() < 0.5 {
		t.Fatalf("suspiciously low overall recall %v", s.OverallRecall())
	}
}

// TestBaselineShapeHolds asserts the paper's core comparison on a small
// horizon: No-K-slack loses results, Max-K-slack is near-complete with a
// large buffer, and the model policy at Γ=0.9 uses a much smaller buffer.
func TestBaselineShapeHolds(t *testing.T) {
	ds := prepared(t, KeyX3)
	cfg := adapt.Config{Gamma: 0.9, P: 30_000, L: 1000}

	nok := Run(ds, cfg, core.NoKPolicy())
	maxk := Run(ds, cfg, core.MaxKPolicy())
	model := Run(ds, cfg, core.ModelPolicy())

	if nok.MeanRecall > 0.97 {
		t.Fatalf("No-K recall %v too high — dataset lacks disorder", nok.MeanRecall)
	}
	if maxk.MeanRecall < 0.98 {
		t.Fatalf("Max-K recall %v too low", maxk.MeanRecall)
	}
	if model.AvgK > 0.6*maxk.AvgK {
		t.Fatalf("model avg K %v not clearly below Max-K %v", model.AvgK, maxk.AvgK)
	}
	if phi, ok := model.Series.Phi(0.99 * 0.9); !ok || phi < 80 {
		t.Fatalf("model Φ(.99Γ) = %v (ok=%v), want ≥80%%", phi, ok)
	}
}

// TestGammaMonotonicity: avg K must not decrease as Γ grows.
func TestGammaMonotonicity(t *testing.T) {
	ds := prepared(t, KeyX4)
	prev := -1.0
	for _, gamma := range []float64{0.8, 0.95, 0.999} {
		cfg := adapt.Config{Gamma: gamma, P: 30_000, L: 1000}
		s := Run(ds, cfg, core.ModelPolicy())
		if s.AvgK < prev*0.8 { // allow mild noise, forbid inversions
			t.Fatalf("avg K dropped sharply from %v to %v at Γ=%v", prev, s.AvgK, gamma)
		}
		prev = s.AvgK
	}
}

func TestFigureRunnersPrint(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runners re-run the pipeline many times")
	}
	ds := []*Dataset{prepared(t, KeyX3)}
	var sb strings.Builder
	if got := Table2(&sb, ds); len(got) != 1 {
		t.Fatal("Table2 must summarize one dataset")
	}
	if !strings.Contains(sb.String(), "Table II") {
		t.Fatal("missing table header")
	}
	if got := Fig6(io.Discard, ds); len(got) != 1 {
		t.Fatal("Fig6 must summarize one dataset")
	}
	rows := Ablations(io.Discard, ds)
	if len(rows) != 5 {
		t.Fatalf("Ablations rows = %d, want 5", len(rows))
	}
}

func TestSummaryHelpers(t *testing.T) {
	s := Summary{Produced: 50, TrueTotal: 100}
	if s.OverallRecall() != 0.5 {
		t.Fatal("OverallRecall")
	}
	if (Summary{}).OverallRecall() != 0 {
		t.Fatal("empty OverallRecall")
	}
	if (Summary{}).AvgAdaptTime() != 0 {
		t.Fatal("empty AvgAdaptTime")
	}
}
