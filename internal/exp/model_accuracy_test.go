package exp

import (
	"math"
	"testing"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/stream"
)

// TestModelPredictionAccuracy validates Eq. (5) end to end: for a stationary
// workload, the analytical recall estimate at a fixed K must track the
// recall actually measured when running with that K. This is the property
// the whole adaptation scheme rests on.
func TestModelPredictionAccuracy(t *testing.T) {
	ds := prepared(t, KeyX3)
	for _, k := range []stream.Time{0, 500, 2000, 8000} {
		cfg := adapt.Config{Gamma: 0, P: 30_000, L: 1000, Strategy: adapt.EqSel}
		s := Run(ds, cfg, core.StaticPolicy(k))
		measured := s.MeanRecall

		// Rebuild the model over the same stream statistics: replay the
		// arrivals into a fresh stats manager (the pipeline's internal one
		// is not exposed), then evaluate Eq. (5).
		st := stats.NewManager(ds.M, cfg.Normalize().G)
		for _, e := range ds.Arrivals {
			st.Observe(e)
		}
		mdl := adapt.NewModel(cfg, ds.Windows, st, nil)
		predicted := mdl.EstimateRecall(k, nil)

		if math.Abs(predicted-measured) > 0.12 {
			t.Fatalf("K=%v: model predicts %.3f, measured %.3f", k, predicted, measured)
		}
	}
}
