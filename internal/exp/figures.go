package exp

import (
	"fmt"
	"io"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/stream"
)

// defaultCfg returns the paper's default parameter configuration (Sec. VI):
// P = 1 min, b = 10 ms, g = 10 ms, L = 1 s.
func defaultCfg(gamma float64) adapt.Config {
	return adapt.Config{
		Gamma: gamma,
		P:     stream.Minute,
		L:     stream.Second,
		B:     10 * stream.Millisecond,
		G:     10 * stream.Millisecond,
	}
}

// GammaGrid is the set of recall requirements examined in Fig. 7 and 11.
var GammaGrid = []float64{0.9, 0.95, 0.99, 0.999}

// Fig6 runs the No-K-slack baseline on every dataset and prints the recall
// time series γ(P = 1 min), reproducing Fig. 6.
func Fig6(w io.Writer, datasets []*Dataset) map[string]Summary {
	fmt.Fprintln(w, "== Fig. 6: recall of join results produced by the No-K-slack baseline ==")
	out := map[string]Summary{}
	for _, ds := range datasets {
		s := Run(ds, defaultCfg(0), core.NoKPolicy())
		s.Policy = "No-K-slack"
		out[ds.Name] = s
		fmt.Fprintf(w, "\n-- %s --\n   t(sec)  recall γ(P=1min)\n", ds.Name)
		step := len(s.Series.Measurements)/12 + 1
		for i := 0; i < len(s.Series.Measurements); i += step {
			m := s.Series.Measurements[i]
			fmt.Fprintf(w, "  %7d  %.3f\n", m.Now/stream.Second, m.Recall)
		}
		fmt.Fprintf(w, "  mean recall: %.3f  (overall %d/%d = %.3f)\n",
			s.MeanRecall, s.Produced, s.TrueTotal, s.OverallRecall())
	}
	return out
}

// Table2 runs the Max-K-slack baseline on every dataset and prints its
// average K and average γ(P), reproducing Table II.
func Table2(w io.Writer, datasets []*Dataset) map[string]Summary {
	fmt.Fprintln(w, "== Table II: results of the Max-K-slack baseline ==")
	fmt.Fprintf(w, "%-22s  %-12s  %-10s\n", "dataset", "Avg. K (sec)", "Avg. γ(P)")
	out := map[string]Summary{}
	for _, ds := range datasets {
		s := Run(ds, defaultCfg(0), core.MaxKPolicy())
		s.Policy = "Max-K-slack"
		out[ds.Name] = s
		fmt.Fprintf(w, "%-22s  %-12s  %.3f\n", ds.Name, fmtK(s.AvgK), s.MeanRecall)
	}
	return out
}

// Fig7Row is one (dataset, Γ, strategy) cell of Fig. 7.
type Fig7Row struct {
	Dataset  string
	Gamma    float64
	Strategy adapt.Strategy
	Summary
}

// Fig7 sweeps the user-specified recall requirement Γ for both selectivity
// strategies on every dataset, reproducing Fig. 7 (avg K, Φ(Γ), Φ(.99Γ))
// with the Max-K-slack average K as reference.
func Fig7(w io.Writer, datasets []*Dataset) []Fig7Row {
	fmt.Fprintln(w, "== Fig. 7: effectiveness under varying recall requirements Γ ==")
	var rows []Fig7Row
	for _, ds := range datasets {
		maxk := Run(ds, defaultCfg(0), core.MaxKPolicy())
		fmt.Fprintf(w, "\n-- %s (Max-K-slack avg K = %s s) --\n", ds.Name, fmtK(maxk.AvgK))
		fmt.Fprintf(w, "%-8s  %-9s  %-12s  %-8s  %-9s\n", "Γ", "strategy", "Avg. K (sec)", "Φ(Γ)%", "Φ(.99Γ)%")
		for _, gamma := range GammaGrid {
			for _, strat := range []adapt.Strategy{adapt.EqSel, adapt.NonEqSel} {
				cfg := defaultCfg(gamma)
				cfg.Strategy = strat
				s := Run(ds, cfg, core.ModelPolicy())
				s.Policy = "Model(" + strat.String() + ")"
				rows = append(rows, Fig7Row{Dataset: ds.Name, Gamma: gamma, Strategy: strat, Summary: s})
				fmt.Fprintf(w, "%-8g  %-9s  %-12s  %-8.1f  %-9.1f\n",
					gamma, strat, fmtK(s.AvgK), s.PhiGamma, s.Phi99)
			}
		}
	}
	return rows
}

// Fig8 sweeps the result-quality measurement period P for Γ ∈ {0.95, 0.99}
// on the x2 and x3 workloads, reproducing Fig. 8.
func Fig8(w io.Writer, datasets []*Dataset) []Fig7Row {
	fmt.Fprintln(w, "== Fig. 8: effectiveness under varying measurement periods P ==")
	periods := []stream.Time{30 * stream.Second, stream.Minute, 3 * stream.Minute, 5 * stream.Minute}
	var rows []Fig7Row
	for _, ds := range datasets {
		fmt.Fprintf(w, "\n-- %s --\n", ds.Name)
		fmt.Fprintf(w, "%-8s  %-6s  %-12s  %-8s  %-9s\n", "P (sec)", "Γ", "Avg. K (sec)", "Φ(Γ)%", "Φ(.99Γ)%")
		for _, p := range periods {
			for _, gamma := range []float64{0.95, 0.99} {
				cfg := defaultCfg(gamma)
				cfg.P = p
				s := Run(ds, cfg, core.ModelPolicy())
				s.Policy = "Model(NonEqSel)"
				rows = append(rows, Fig7Row{Dataset: ds.Name, Gamma: gamma, Summary: s})
				fmt.Fprintf(w, "%-8d  %-6g  %-12s  %-8.1f  %-9.1f\n",
					p/stream.Second, gamma, fmtK(s.AvgK), s.PhiGamma, s.Phi99)
			}
		}
	}
	return rows
}

// Fig9 sweeps the adaptation interval L, reproducing Fig. 9.
func Fig9(w io.Writer, datasets []*Dataset) []Fig7Row {
	fmt.Fprintln(w, "== Fig. 9: effect of the adaptation interval L ==")
	intervals := []stream.Time{100, 500, 1000, 5000, 10000}
	var rows []Fig7Row
	for _, ds := range datasets {
		fmt.Fprintf(w, "\n-- %s --\n", ds.Name)
		fmt.Fprintf(w, "%-8s  %-6s  %-12s  %-8s  %-9s\n", "L (sec)", "Γ", "Avg. K (sec)", "Φ(Γ)%", "Φ(.99Γ)%")
		for _, l := range intervals {
			for _, gamma := range []float64{0.95, 0.99} {
				cfg := defaultCfg(gamma)
				cfg.L = l
				s := Run(ds, cfg, core.ModelPolicy())
				rows = append(rows, Fig7Row{Dataset: ds.Name, Gamma: gamma, Summary: s})
				fmt.Fprintf(w, "%-8.1f  %-6g  %-12s  %-8.1f  %-9.1f\n",
					float64(l)/1000, gamma, fmtK(s.AvgK), s.PhiGamma, s.Phi99)
			}
		}
	}
	return rows
}

// Fig10 sweeps the K-search granularity g, reproducing Fig. 10.
func Fig10(w io.Writer, datasets []*Dataset) []Fig7Row {
	fmt.Fprintln(w, "== Fig. 10: effect of the K-search granularity g ==")
	grans := []stream.Time{1, 10, 100, 1000}
	var rows []Fig7Row
	for _, ds := range datasets {
		fmt.Fprintf(w, "\n-- %s --\n", ds.Name)
		fmt.Fprintf(w, "%-8s  %-6s  %-12s  %-8s  %-9s\n", "g (ms)", "Γ", "Avg. K (sec)", "Φ(Γ)%", "Φ(.99Γ)%")
		for _, g := range grans {
			for _, gamma := range []float64{0.95, 0.99} {
				cfg := defaultCfg(gamma)
				cfg.G = g
				s := Run(ds, cfg, core.ModelPolicy())
				rows = append(rows, Fig7Row{Dataset: ds.Name, Gamma: gamma, Summary: s})
				fmt.Fprintf(w, "%-8d  %-6g  %-12s  %-8.1f  %-9.1f\n",
					g, gamma, fmtK(s.AvgK), s.PhiGamma, s.Phi99)
			}
		}
	}
	return rows
}

// Fig11 measures the wall-clock time of one adaptation step for varying g
// and Γ on every dataset, reproducing Fig. 11.
func Fig11(w io.Writer, datasets []*Dataset) []Fig7Row {
	fmt.Fprintln(w, "== Fig. 11: time needed to determine the optimal K per adaptation step ==")
	grans := []stream.Time{1, 10, 100, 1000}
	var rows []Fig7Row
	for _, ds := range datasets {
		fmt.Fprintf(w, "\n-- %s --\n", ds.Name)
		fmt.Fprintf(w, "%-8s  %-8s  %-16s  %-12s\n", "g (ms)", "Γ", "avg adapt time", "iters/step")
		for _, g := range grans {
			for _, gamma := range GammaGrid {
				cfg := defaultCfg(gamma)
				cfg.G = g
				s := Run(ds, cfg, core.ModelPolicy())
				rows = append(rows, Fig7Row{Dataset: ds.Name, Gamma: gamma, Summary: s})
				iters := float64(0)
				if s.AdaptSteps > 0 {
					iters = float64(s.AdaptIters) / float64(s.AdaptSteps)
				}
				fmt.Fprintf(w, "%-8d  %-8g  %-16v  %-12.1f\n", g, gamma, s.AvgAdaptTime(), iters)
			}
		}
	}
	return rows
}

// Ablations runs the design-choice ablations called out in DESIGN.md §5:
// EqSel vs NonEqSel, Γ′ calibration on/off, and ADWIN vs fixed R^stat.
func Ablations(w io.Writer, datasets []*Dataset) []Fig7Row {
	fmt.Fprintln(w, "== Ablations: selectivity strategy, Γ′ calibration, R^stat sizing ==")
	var rows []Fig7Row
	const gamma = 0.95
	type variant struct {
		name   string
		mut    func(*adapt.Config)
		sOpts  []stats.Option
		policy core.PolicyFactory
	}
	variants := []variant{
		{name: "NonEqSel (full model)", mut: func(*adapt.Config) {}, policy: core.ModelPolicy()},
		{name: "EqSel", mut: func(c *adapt.Config) { c.Strategy = adapt.EqSel }, policy: core.ModelPolicy()},
		{name: "no Γ' calibration", mut: func(c *adapt.Config) { c.NoCalibration = true }, policy: core.ModelPolicy()},
		{name: "fixed R^stat (1024)", mut: func(*adapt.Config) {},
			sOpts: []stats.Option{stats.WithFixedHistory(1024)}, policy: core.ModelPolicy()},
		{name: "binary K search", mut: func(c *adapt.Config) { c.Search = adapt.BinarySearch },
			policy: core.ModelPolicy()},
	}
	for _, ds := range datasets {
		fmt.Fprintf(w, "\n-- %s (Γ = %g) --\n", ds.Name, gamma)
		fmt.Fprintf(w, "%-22s  %-12s  %-8s  %-9s\n", "variant", "Avg. K (sec)", "Φ(Γ)%", "Φ(.99Γ)%")
		for _, v := range variants {
			cfg := defaultCfg(gamma)
			v.mut(&cfg)
			s := Run(ds, cfg, v.policy, v.sOpts...)
			s.Policy = v.name
			rows = append(rows, Fig7Row{Dataset: ds.Name, Gamma: gamma, Summary: s})
			fmt.Fprintf(w, "%-22s  %-12s  %-8.1f  %-9.1f\n", v.name, fmtK(s.AvgK), s.PhiGamma, s.Phi99)
		}
	}
	return rows
}
