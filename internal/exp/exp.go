// Package exp reproduces the evaluation of Sec. VI: one runner per table and
// figure of the paper. Each runner prints the same rows/series the paper
// reports and returns the structured numbers so benchmarks and tests can
// assert the qualitative shapes (who wins, by roughly what factor, where the
// trends point).
package exp

import (
	"fmt"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/oracle"
	"repro/internal/stats"
	"repro/internal/stream"
)

// Dataset is a generated workload plus its ground truth.
type Dataset struct {
	*gen.Dataset
	Truth *oracle.Index
}

// Keys of the three evaluation datasets, mirroring the paper's naming.
const (
	KeyX2 = "x2" // (D×2real simulated, Q×2) — soccer proximity join
	KeyX3 = "x3" // (D×3syn, Q×3) — 3-way equi join
	KeyX4 = "x4" // (D×4syn, Q×4) — 4-way star join
)

// AllKeys lists the dataset keys in paper order.
func AllKeys() []string { return []string{KeyX2, KeyX3, KeyX4} }

// Prepare generates dataset `key` spanning the given number of logical
// minutes and computes its ground truth.
func Prepare(key string, minutes float64, seed int64) *Dataset {
	dur := stream.Time(minutes * float64(stream.Minute))
	var ds *gen.Dataset
	switch key {
	case KeyX2:
		ds = gen.Soccer(gen.SoccerConfig{Duration: dur, Seed: seed})
	case KeyX3:
		ds = gen.Synthetic3(gen.SynthConfig{Duration: dur, Seed: seed})
	case KeyX4:
		ds = gen.Synthetic4(gen.SynthConfig{Duration: dur, Seed: seed})
	default:
		panic("exp: unknown dataset key " + key)
	}
	truth := oracle.TrueResults(ds.Cond, ds.Windows, ds.Arrivals)
	return &Dataset{Dataset: ds, Truth: truth}
}

// Summary is the outcome of one pipeline run on one dataset.
type Summary struct {
	Dataset    string
	Policy     string
	Gamma      float64
	AvgK       float64 // average applied buffer size, ms
	MeanRecall float64
	PhiGamma   float64 // Φ(Γ), percent
	Phi99      float64 // Φ(.99Γ), percent
	PhiOK      bool
	Produced   int64
	TrueTotal  int64
	Series     *metrics.Series

	AdaptSteps int64
	AdaptIters int64
	AdaptTotal time.Duration
}

// AvgAdaptTime returns the mean wall-clock duration of one adaptation step.
func (s Summary) AvgAdaptTime() time.Duration {
	if s.AdaptSteps == 0 {
		return 0
	}
	return s.AdaptTotal / time.Duration(s.AdaptSteps)
}

// OverallRecall is produced/true over the whole run.
func (s Summary) OverallRecall() float64 {
	if s.TrueTotal == 0 {
		return 0
	}
	return float64(s.Produced) / float64(s.TrueTotal)
}

// Run executes one pipeline configuration over the dataset and collects the
// paper's metrics: γ(P) is measured right before every adaptation step and
// summarized into Φ(Γ) and Φ(.99Γ); the applied K is averaged over all
// adaptation intervals.
func Run(ds *Dataset, acfg adapt.Config, policy core.PolicyFactory, statsOpts ...stats.Option) Summary {
	acfg = acfg.Normalize()
	tracker := metrics.NewRecallTracker(acfg.P, ds.Truth)
	series := metrics.NewSeries(acfg.P)

	cfg := core.Config{
		Windows:    ds.Windows,
		Cond:       ds.Cond,
		Adapt:      acfg,
		Policy:     policy,
		StatsOpts:  statsOpts,
		EmitCounts: tracker.AddResults,
		OnAdapt: func(ev core.AdaptEvent) {
			// γ(P) is measured right before each adaptation, anchored at
			// the output watermark (see core.Pipeline.adaptStep).
			if r, ok := tracker.Measure(ev.OutT); ok {
				series.Add(ev.OutT, r)
			}
		},
	}
	p := core.New(cfg)
	p.Run(ds.Arrivals.Clone())

	s := Summary{
		Dataset:    ds.Name,
		Policy:     "",
		Gamma:      acfg.Gamma,
		AvgK:       p.AvgK(),
		MeanRecall: series.Mean(),
		Produced:   p.Results(),
		TrueTotal:  ds.Truth.Total(),
		Series:     series,
	}
	if phi, ok := series.Phi(acfg.Gamma); ok {
		s.PhiGamma = phi
		s.PhiOK = true
	}
	if phi, ok := series.Phi(0.99 * acfg.Gamma); ok {
		s.Phi99 = phi
	}
	if mdl := p.Model(); mdl != nil {
		s.AdaptSteps, s.AdaptIters, s.AdaptTotal = mdl.AdaptStats()
	}
	return s
}

// fmtK renders a buffer size in seconds with two decimals, as the paper
// plots "Avg. K (sec)".
func fmtK(ms float64) string { return fmt.Sprintf("%.2f", ms/1000) }
