package join

// Condition subgraph extraction for the deployment planner: a plan node
// executing a subset of the input streams (one side of a binary stage, a
// Flat operator over a stream group) needs the induced sub-condition — the
// predicates fully contained in the subset — while the stage joining two
// such nodes needs the *cross* predicates that become bound only once both
// sides are. Together the induced subgraphs of a plan's nodes and the cross
// sets of its stages partition the condition's predicates, so every
// predicate is applied exactly once along any tree shape.

import (
	"fmt"
	"sort"
)

// Subgraph returns a fresh, unsealed condition over the same M streams
// containing exactly the predicates whose referenced streams all lie in
// streams. Stream indexes are NOT renumbered: a subgraph condition still
// addresses tuples by their original Src, so plan nodes over arbitrary
// subsets compose without translation tables. Generic predicates are
// included only when every stream they list is covered.
func (c *Condition) Subgraph(streams []int) *Condition {
	in := make([]bool, c.M)
	for _, s := range streams {
		if s < 0 || s >= c.M {
			panic(fmt.Sprintf("join: Subgraph stream %d outside [0,%d)", s, c.M))
		}
		in[s] = true
	}
	sub := &Condition{M: c.M}
	for _, p := range c.Equis {
		if in[p.LeftStream] && in[p.RightStream] {
			sub.Equis = append(sub.Equis, p)
		}
	}
	for _, p := range c.Bands {
		if in[p.LeftStream] && in[p.RightStream] {
			sub.Bands = append(sub.Bands, p)
		}
	}
	for _, g := range c.Generics {
		all := true
		for _, gs := range g.Streams {
			if !in[gs] {
				all = false
				break
			}
		}
		if all {
			sub.Generics = append(sub.Generics, g)
		}
	}
	return sub
}

// CrossLink is the set of predicates of a condition that connect two
// disjoint stream subsets: the predicates a binary plan stage joining the
// two sides must apply (and the first of which keys the stage's index and
// shard routing). Generics lists indexes into Condition.Generics of the
// generic predicates that span both sides (bound at the stage, not below).
type CrossLink struct {
	Equis    []EquiPredicate
	Bands    []BandPredicate
	Generics []int
}

// Keyed reports whether the link carries an indexable predicate — the
// requirement for hash- or range-partitioning the stage across shards.
func (l CrossLink) Keyed() bool { return len(l.Equis) > 0 || len(l.Bands) > 0 }

// Cross extracts the predicates connecting the disjoint subsets left and
// right: equi and band predicates with one end in each subset (normalized so
// LeftStream ∈ left), and generic predicates referencing streams of both
// sides and nothing outside left ∪ right. Predicates internal to one side,
// or referencing streams outside both, are excluded — they belong to other
// plan nodes.
func (c *Condition) Cross(left, right []int) CrossLink {
	inL := make([]bool, c.M)
	inR := make([]bool, c.M)
	for _, s := range left {
		inL[s] = true
	}
	for _, s := range right {
		if inL[s] {
			panic(fmt.Sprintf("join: Cross sides overlap at stream %d", s))
		}
		inR[s] = true
	}
	var link CrossLink
	for _, p := range c.Equis {
		switch {
		case inL[p.LeftStream] && inR[p.RightStream]:
			link.Equis = append(link.Equis, p)
		case inR[p.LeftStream] && inL[p.RightStream]:
			link.Equis = append(link.Equis, EquiPredicate{
				LeftStream: p.RightStream, LeftAttr: p.RightAttr,
				RightStream: p.LeftStream, RightAttr: p.LeftAttr,
			})
		}
	}
	for _, p := range c.Bands {
		switch {
		case inL[p.LeftStream] && inR[p.RightStream]:
			link.Bands = append(link.Bands, p)
		case inR[p.LeftStream] && inL[p.RightStream]:
			link.Bands = append(link.Bands, BandPredicate{
				LeftStream: p.RightStream, LeftAttr: p.RightAttr,
				RightStream: p.LeftStream, RightAttr: p.LeftAttr,
				Eps: p.Eps,
			})
		}
	}
	for gi, g := range c.Generics {
		var touchL, touchR, outside bool
		for _, gs := range g.Streams {
			switch {
			case inL[gs]:
				touchL = true
			case inR[gs]:
				touchR = true
			default:
				outside = true
			}
		}
		if touchL && touchR && !outside {
			link.Generics = append(link.Generics, gi)
		}
	}
	return link
}

// Connected reports whether the induced predicate graph over streams is
// connected: every pair of covered streams is linked by a chain of equi or
// band predicates inside the subset. Singletons are connected. The planner
// uses it to reject bushy splits whose sides would degenerate into windowed
// cross joins.
func (c *Condition) Connected(streams []int) bool {
	if len(streams) <= 1 {
		return true
	}
	pos := make(map[int]int, len(streams))
	for i, s := range streams {
		pos[s] = i
	}
	parent := make([]int, len(streams))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ia, okA := pos[a]
		ib, okB := pos[b]
		if okA && okB {
			parent[find(ia)] = find(ib)
		}
	}
	for _, p := range c.Equis {
		union(p.LeftStream, p.RightStream)
	}
	for _, p := range c.Bands {
		union(p.LeftStream, p.RightStream)
	}
	root := find(0)
	for i := 1; i < len(parent); i++ {
		if find(i) != root {
			return false
		}
	}
	return true
}

// SortedStreams returns a sorted copy of streams (the canonical form plan
// nodes render and compare with).
func SortedStreams(streams []int) []int {
	out := append([]int(nil), streams...)
	sort.Ints(out)
	return out
}
