package join

import (
	"math/rand"
	"testing"

	"repro/internal/stream"
)

// benchFeed builds an in-order m-stream equi feed.
func benchFeed(m, n, domain int) []*stream.Tuple {
	rng := rand.New(rand.NewSource(1))
	out := make([]*stream.Tuple, 0, m*n)
	var seq uint64
	ts := stream.Time(0)
	for i := 0; i < n; i++ {
		ts += 10
		for src := 0; src < m; src++ {
			out = append(out, &stream.Tuple{TS: ts, Seq: seq, Src: src,
				Attrs: []float64{float64(rng.Intn(domain)), float64(rng.Intn(domain))}})
			seq++
		}
	}
	return out
}

// cycle replays the feed endlessly, shifting timestamps forward one epoch
// per pass so the operator keeps seeing in-order input. Tuples are safely
// reused: the window span is far smaller than one epoch, so a tuple has long
// been expired before its pointer comes around again.
func cycle(feed []*stream.Tuple, orig []stream.Time, span stream.Time, i int) *stream.Tuple {
	e := feed[i%len(feed)]
	e.TS = orig[i%len(feed)] + span*stream.Time(i/len(feed))
	return e
}

func origTS(feed []*stream.Tuple) ([]stream.Time, stream.Time) {
	orig := make([]stream.Time, len(feed))
	var max stream.Time
	for i, e := range feed {
		orig[i] = e.TS
		if e.TS > max {
			max = e.TS
		}
	}
	return orig, max + 10
}

// BenchmarkProcessEquiChain measures the steady-state counting-only probe
// path (expire + probe + insert) of a 3-way equi chain. After warm-up it
// must run allocation-free.
func BenchmarkProcessEquiChain(b *testing.B) {
	const n = 1 << 15
	feed := benchFeed(3, n/3+1, 50)
	orig, span := origTS(feed)
	op := New(EquiChain(3, 0), []stream.Time{stream.Second, stream.Second, stream.Second})
	// Warm up windows and index buckets to steady state.
	for _, e := range feed[:n/2] {
		op.Process(e)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Process(cycle(feed, orig, span, i+n/2))
	}
}

// BenchmarkProcessStar measures the multi-lookup filter path: a 4-way star
// join where later probe steps carry a second lookup that filters through
// the per-level scratch buffer.
func BenchmarkProcessStar(b *testing.B) {
	const n = 1 << 15
	feed := benchFeed(4, n/4+1, 20)
	orig, span := origTS(feed)
	cond := Star(4, []int{0, 0, 1}, []int{0, 0, 1})
	op := New(cond, []stream.Time{500, 500, 500, 500})
	for _, e := range feed[:n/2] {
		op.Process(e)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Process(cycle(feed, orig, span, i+n/2))
	}
}

// TestSteadyStateZeroAllocs pins the steady-state counting probe path at
// exactly zero allocations — equi-only and band-only conditions, per-tuple
// and batched entry points. The FIFO hash buckets (compact-in-place once
// the backing array reaches 2× the live size) and the reused range views
// are what make the strict gate hold.
func TestSteadyStateZeroAllocs(t *testing.T) {
	cases := []struct {
		name string
		cond *Condition
	}{
		{"equi", EquiChain(3, 0)},
		{"band", Cross(3).Band(0, 0, 1, 0, 2).Band(1, 0, 2, 0, 2)},
	}
	wins := []stream.Time{stream.Second, stream.Second, stream.Second}
	for _, c := range cases {
		for _, batched := range []bool{false, true} {
			name := c.name + "/tuple"
			if batched {
				name = c.name + "/batch"
			}
			t.Run(name, func(t *testing.T) {
				feed := benchFeed(3, 6000, 50)
				orig, span := origTS(feed)
				op := New(c.cond, wins)
				half := len(feed) / 2
				for _, e := range feed[:half] {
					op.Process(e)
				}
				i := half
				batch := make([]*stream.Tuple, 64)
				allocs := testing.AllocsPerRun(50, func() {
					if batched {
						for j := range batch {
							batch[j] = cycle(feed, orig, span, i)
							i++
						}
						op.ProcessBatch(batch)
						return
					}
					for j := 0; j < 64; j++ {
						op.Process(cycle(feed, orig, span, i))
						i++
					}
				})
				if allocs != 0 {
					t.Fatalf("steady-state probe allocated %v times per 64 tuples, want 0", allocs)
				}
			})
		}
	}
}

// TestSteadyStateProcessDoesNotAllocate pins allocs/op ~0 on the
// counting-only equi probe path.
func TestSteadyStateProcessDoesNotAllocate(t *testing.T) {
	feed := benchFeed(3, 4000, 50)
	op := New(EquiChain(3, 0), []stream.Time{stream.Second, stream.Second, stream.Second})
	half := len(feed) / 2
	for _, e := range feed[:half] {
		op.Process(e)
	}
	i := half
	allocs := testing.AllocsPerRun(20, func() {
		for j := 0; j < 100; j++ {
			op.Process(feed[i%len(feed)])
			i++
		}
	})
	if allocs > 1 {
		t.Fatalf("steady-state Process allocated %v times per 100 tuples", allocs)
	}
}
