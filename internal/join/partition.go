package join

// The planner's partition analysis: besides compiling probe orders, the
// planner exposes *which key* it compiled the condition around, so the
// sharded runtime (internal/shard) can hash-route tuples such that every
// join result is derivable — and derived exactly once — inside a single
// shard.
//
// The analysis runs union-find over (stream, attribute) pairs, with one
// edge per equi-predicate (exact, spread 0) and one per band predicate
// (approximate, spread ε). Each resulting equivalence class is a candidate
// partition key: within any satisfying assignment, the class attributes of
// all covered streams agree up to the class's accumulated band spread.

// PartitionMode classifies how a condition can be partitioned across
// shards.
type PartitionMode int

const (
	// PartitionEqui hash-partitions on an exact equi key class. Streams
	// with KeyAttr[s] < 0 are not covered by the class and must be
	// broadcast: their tuples are inserted into (and probe) every shard,
	// while covered tuples visit only the shard owning their key. Every
	// satisfying assignment carries one key value shared by all covered
	// constituents, so it is derived in exactly one shard.
	PartitionEqui PartitionMode = iota
	// PartitionBand range-partitions on a band key class covering every
	// stream. Constituent keys of one result may differ by up to Delta, so
	// tuples are additionally inserted into the shards owning the key range
	// [key−Delta, key+Delta]; each tuple still probes only the shard
	// owning its own key.
	PartitionBand
	// PartitionNone means no class yields a usable key (purely generic
	// conditions, or equi classes covering a single predicate's pair only
	// in degenerate conditions). Stream 0 is partitioned by arrival
	// sequence and all other streams are broadcast; results are derived in
	// the shard owning their stream-0 constituent.
	PartitionNone
)

// String implements fmt.Stringer.
func (m PartitionMode) String() string {
	switch m {
	case PartitionEqui:
		return "equi"
	case PartitionBand:
		return "band"
	default:
		return "broadcast"
	}
}

// PartitionScheme is the planner-chosen partition key of a condition.
type PartitionScheme struct {
	Mode PartitionMode
	// KeyAttr[s] is the attribute position of stream s's partition key, or
	// −1 when stream s is not covered (broadcast). It is fully populated
	// for PartitionBand, has ≥ 2 covered streams for PartitionEqui, and is
	// all −1 for PartitionNone.
	KeyAttr []int
	// Delta bounds |key_a − key_b| over constituents a, b of any single
	// result (PartitionBand only; 0 otherwise). It is the sum of the band
	// epsilons of the class, a conservative bound on any chain of band
	// predicates connecting two constituents.
	Delta float64
}

// Covered reports whether stream s carries a partition key.
func (p PartitionScheme) Covered(s int) bool {
	return s < len(p.KeyAttr) && p.KeyAttr[s] >= 0
}

// attrNode identifies one (stream, attribute) pair in the union-find.
type attrNode struct{ stream, attr int }

// Partition analyzes the condition and returns the partition scheme the
// sharded runtime should use. The choice prefers an exact equi class
// covering all streams, then a band class covering all streams, then the
// equi class covering the most streams (broadcasting the rest), and
// finally the sequence-partitioned fallback. The analysis is deterministic:
// ties break on the smallest (stream, attr) pair. Calling Partition seals
// the condition against further mutation, like compiling it into an
// operator does.
func (c *Condition) Partition() PartitionScheme {
	c.seal()
	ids := map[attrNode]int{}
	var nodes []attrNode
	id := func(n attrNode) int {
		if i, ok := ids[n]; ok {
			return i
		}
		i := len(nodes)
		ids[n] = i
		nodes = append(nodes, n)
		return i
	}
	type edge struct {
		a, b attrNode
		eps  float64
	}
	var edges []edge
	for _, p := range c.Equis {
		edges = append(edges, edge{attrNode{p.LeftStream, p.LeftAttr}, attrNode{p.RightStream, p.RightAttr}, 0})
	}
	for _, p := range c.Bands {
		edges = append(edges, edge{attrNode{p.LeftStream, p.LeftAttr}, attrNode{p.RightStream, p.RightAttr}, p.Eps})
	}
	parent := make([]int, 0, 2*len(edges))
	spread := make([]float64, 0, 2*len(edges))
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	for _, e := range edges {
		ia, ib := id(e.a), id(e.b)
		for len(parent) < len(nodes) {
			parent = append(parent, len(parent))
			spread = append(spread, 0)
		}
		ra, rb := find(ia), find(ib)
		if ra == rb {
			// A redundant edge inside one class still contributes to the
			// conservative spread bound.
			spread[ra] += e.eps
			continue
		}
		parent[rb] = ra
		spread[ra] += spread[rb] + e.eps
	}

	type class struct {
		streams int // covered stream count
		delta   float64
		keyAttr []int
		minNode attrNode
	}
	classes := map[int]*class{}
	for i, n := range nodes {
		r := find(i)
		cl := classes[r]
		if cl == nil {
			cl = &class{keyAttr: make([]int, c.M), delta: spread[r], minNode: n}
			for s := range cl.keyAttr {
				cl.keyAttr[s] = -1
			}
			classes[r] = cl
		}
		if cl.keyAttr[n.stream] < 0 {
			cl.keyAttr[n.stream] = n.attr
			cl.streams++
		} else if n.attr < cl.keyAttr[n.stream] {
			cl.keyAttr[n.stream] = n.attr
		}
		if n.stream < cl.minNode.stream || (n.stream == cl.minNode.stream && n.attr < cl.minNode.attr) {
			cl.minNode = n
		}
	}

	better := func(a, b *class) bool { // deterministic preference order
		if b == nil {
			return true
		}
		if a.streams != b.streams {
			return a.streams > b.streams
		}
		if (a.delta == 0) != (b.delta == 0) {
			return a.delta == 0
		}
		if a.minNode.stream != b.minNode.stream {
			return a.minNode.stream < b.minNode.stream
		}
		return a.minNode.attr < b.minNode.attr
	}
	var fullEqui, fullBand, partialEqui *class
	for _, cl := range classes {
		switch {
		case cl.streams == c.M && cl.delta == 0:
			if better(cl, fullEqui) {
				fullEqui = cl
			}
		case cl.streams == c.M:
			if better(cl, fullBand) {
				fullBand = cl
			}
		case cl.streams >= 2 && cl.delta == 0:
			// Partial band classes are unsound to shard: replicated band
			// neighbours could pair with broadcast tuples in two shards at
			// once. Only exact (equi) classes may partially cover.
			if better(cl, partialEqui) {
				partialEqui = cl
			}
		}
	}
	switch {
	case fullEqui != nil:
		return PartitionScheme{Mode: PartitionEqui, KeyAttr: fullEqui.keyAttr}
	case fullBand != nil:
		return PartitionScheme{Mode: PartitionBand, KeyAttr: fullBand.keyAttr, Delta: fullBand.delta}
	case partialEqui != nil:
		return PartitionScheme{Mode: PartitionEqui, KeyAttr: partialEqui.keyAttr}
	default:
		key := make([]int, c.M)
		for s := range key {
			key[s] = -1
		}
		return PartitionScheme{Mode: PartitionNone, KeyAttr: key}
	}
}
