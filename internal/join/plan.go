package join

// The planner compiles, for each possible arriving stream, a probe order over
// the remaining streams. Each probe step carries the index lookups that
// become available once earlier streams are bound — hash lookups for
// equi-predicates and range lookups for band predicates — and the generic
// predicates that become fully bound after the step. Finding the *optimal*
// join order is orthogonal to the paper (Sec. II-A); the greedy
// connected-first order below matches what MJoin-style systems do by
// default, preferring equi connections (hash probe) over band connections
// (range probe) when both are available.

// lookup keys the probed stream's ownAttr hash index with the value of
// boundStream.Attr(boundAttr) from the current partial assignment.
type lookup struct {
	boundStream, boundAttr int
	ownAttr                int
}

// bandLookup probes the stream's ownAttr range index for values within eps
// of boundStream.Attr(boundAttr): |own − bound| ≤ eps.
type bandLookup struct {
	boundStream, boundAttr int
	ownAttr                int
	eps                    float64
}

// step probes one stream.
type step struct {
	stream  int
	lookups []lookup
	bands   []bandLookup
	checks  []int // indexes into Condition.Generics fully bound after this step
	// countableTail is true when this step and every later step reference
	// only streams bound before this step and carry no generic checks; in
	// that case a counting-only probe can multiply candidate counts instead
	// of enumerating the cross product.
	countableTail bool
}

// plan is the probe order for one arriving stream.
type plan []step

// buildPlans compiles one plan per arriving stream.
func buildPlans(c *Condition) []plan {
	plans := make([]plan, c.M)
	for s := 0; s < c.M; s++ {
		plans[s] = buildPlan(c, s)
	}
	return plans
}

func buildPlan(c *Condition, arriving int) plan {
	bound := make([]bool, c.M)
	bound[arriving] = true
	assigned := make([]bool, len(c.Generics))
	var p plan
	for n := 1; n < c.M; n++ {
		next := pickNext(c, bound)
		st := step{stream: next}
		for _, e := range c.Equis {
			switch {
			case e.LeftStream == next && bound[e.RightStream]:
				st.lookups = append(st.lookups, lookup{e.RightStream, e.RightAttr, e.LeftAttr})
			case e.RightStream == next && bound[e.LeftStream]:
				st.lookups = append(st.lookups, lookup{e.LeftStream, e.LeftAttr, e.RightAttr})
			}
		}
		for _, b := range c.Bands {
			switch {
			case b.LeftStream == next && bound[b.RightStream]:
				st.bands = append(st.bands, bandLookup{b.RightStream, b.RightAttr, b.LeftAttr, b.Eps})
			case b.RightStream == next && bound[b.LeftStream]:
				st.bands = append(st.bands, bandLookup{b.LeftStream, b.LeftAttr, b.RightAttr, b.Eps})
			}
		}
		bound[next] = true
		for gi, g := range c.Generics {
			if assigned[gi] {
				continue
			}
			all := true
			for _, gs := range g.Streams {
				if !bound[gs] {
					all = false
					break
				}
			}
			if all {
				assigned[gi] = true
				st.checks = append(st.checks, gi)
			}
		}
		p = append(p, st)
	}
	markCountableTails(arriving, p)
	return p
}

// pickNext greedily prefers the unbound stream with the most predicates
// connecting it to the bound set (so index lookups narrow candidates as
// early as possible), breaking ties by stream index. Equi connections
// dominate band connections: a hash probe is generally more selective than
// a range probe.
func pickNext(c *Condition, bound []bool) int {
	best, bestConn := -1, -1
	for s := 0; s < c.M; s++ {
		if bound[s] {
			continue
		}
		conn := 0
		for _, e := range c.Equis {
			if (e.LeftStream == s && bound[e.RightStream]) || (e.RightStream == s && bound[e.LeftStream]) {
				conn += 256
			}
		}
		for _, b := range c.Bands {
			if (b.LeftStream == s && bound[b.RightStream]) || (b.RightStream == s && bound[b.LeftStream]) {
				conn++
			}
		}
		if conn > bestConn {
			best, bestConn = s, conn
		}
	}
	return best
}

// markCountableTails computes, back to front, whether the suffix starting at
// each step is enumerable by pure counting.
func markCountableTails(arriving int, p plan) {
	for i := range p {
		boundBefore := map[int]bool{arriving: true}
		for j := 0; j < i; j++ {
			boundBefore[p[j].stream] = true
		}
		ok := true
		for j := i; j < len(p) && ok; j++ {
			if len(p[j].checks) > 0 {
				ok = false
				break
			}
			for _, l := range p[j].lookups {
				if !boundBefore[l.boundStream] {
					ok = false
					break
				}
			}
			for _, b := range p[j].bands {
				if !boundBefore[b.boundStream] {
					ok = false
					break
				}
			}
		}
		p[i].countableTail = ok
	}
}
