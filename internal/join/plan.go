package join

// The planner compiles, for each possible arriving stream, a probe order over
// the remaining streams. Each probe step carries the index lookups that
// become available once earlier streams are bound — hash lookups for
// equi-predicates and range lookups for band predicates — and the generic
// predicates that become fully bound after the step. Finding the *optimal*
// join order is orthogonal to the paper (Sec. II-A); the greedy
// connected-first order below matches what MJoin-style systems do by
// default, preferring equi connections (hash probe) over band connections
// (range probe) when both are available.

// lookup keys the probed stream's ownAttr hash index with the value of
// boundStream.Attr(boundAttr) from the current partial assignment.
type lookup struct {
	boundStream, boundAttr int
	ownAttr                int
}

// bandLookup probes the stream's ownAttr range index for values within eps
// of boundStream.Attr(boundAttr): |own − bound| ≤ eps.
type bandLookup struct {
	boundStream, boundAttr int
	ownAttr                int
	eps                    float64
}

// step probes one stream.
type step struct {
	stream  int
	lookups []lookup
	bands   []bandLookup
	checks  []int // indexes into Condition.Generics fully bound after this step
	// countableTail is true when this step and every later step reference
	// only streams bound before this step and carry no generic checks; in
	// that case a counting-only probe can multiply candidate counts instead
	// of enumerating the cross product.
	countableTail bool
}

// plan is the probe order for one arriving stream.
type plan []step

// buildPlans compiles one plan per arriving stream.
func buildPlans(c *Condition) []plan {
	plans := make([]plan, c.M)
	for s := 0; s < c.M; s++ {
		plans[s] = buildPlan(c, s)
	}
	return plans
}

func buildPlan(c *Condition, arriving int) plan {
	bound := make([]bool, c.M)
	bound[arriving] = true
	assigned := make([]bool, len(c.Generics))
	var p plan
	for n := 1; n < c.M; n++ {
		next := pickNext(c, bound)
		st := step{stream: next}
		for _, e := range c.Equis {
			switch {
			case e.LeftStream == next && bound[e.RightStream]:
				st.lookups = append(st.lookups, lookup{e.RightStream, e.RightAttr, e.LeftAttr})
			case e.RightStream == next && bound[e.LeftStream]:
				st.lookups = append(st.lookups, lookup{e.LeftStream, e.LeftAttr, e.RightAttr})
			}
		}
		for _, b := range c.Bands {
			switch {
			case b.LeftStream == next && bound[b.RightStream]:
				st.bands = append(st.bands, bandLookup{b.RightStream, b.RightAttr, b.LeftAttr, b.Eps})
			case b.RightStream == next && bound[b.LeftStream]:
				st.bands = append(st.bands, bandLookup{b.LeftStream, b.LeftAttr, b.RightAttr, b.Eps})
			}
		}
		bound[next] = true
		for gi, g := range c.Generics {
			if assigned[gi] {
				continue
			}
			all := true
			for _, gs := range g.Streams {
				if !bound[gs] {
					all = false
					break
				}
			}
			if all {
				assigned[gi] = true
				st.checks = append(st.checks, gi)
			}
		}
		p = append(p, st)
	}
	markCountableTails(arriving, p)
	return p
}

// pickNext greedily prefers the unbound stream with the most predicates
// connecting it to the bound set (so index lookups narrow candidates as
// early as possible), breaking ties by stream index. Equi connections
// dominate band connections: a hash probe is generally more selective than
// a range probe.
func pickNext(c *Condition, bound []bool) int {
	best, bestConn := -1, -1
	for s := 0; s < c.M; s++ {
		if bound[s] {
			continue
		}
		conn := 0
		for _, e := range c.Equis {
			if (e.LeftStream == s && bound[e.RightStream]) || (e.RightStream == s && bound[e.LeftStream]) {
				conn += 256
			}
		}
		for _, b := range c.Bands {
			if (b.LeftStream == s && bound[b.RightStream]) || (b.RightStream == s && bound[b.LeftStream]) {
				conn++
			}
		}
		if conn > bestConn {
			best, bestConn = s, conn
		}
	}
	return best
}

// bitset is a fixed-size stream set; streams number at most a few dozen, so
// a small word slice beats a map for the planner's set algebra.
type bitset []uint64

func newBitset(m int) bitset { return make(bitset, (m+63)/64) }

func (b bitset) set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

func (b bitset) copyFrom(o bitset) { copy(b, o) }

// subset reports whether every bit of b is also set in o.
func (b bitset) subset(o bitset) bool {
	for w := range b {
		if b[w]&^o[w] != 0 {
			return false
		}
	}
	return true
}

// markCountableTails computes whether the suffix starting at each step is
// enumerable by pure counting: no generic checks remain, and every bound
// stream any remaining step references was bound before the suffix begins
// (so later candidate counts are independent of earlier candidate choices).
// One backward pass suffices: refs accumulates the union of bound-stream
// references over steps ≥ i, and the prefix bound set shrinks by one stream
// per step — O(plan·m/64) instead of the per-step set rebuild's O(plan²·m).
func markCountableTails(arriving int, p plan) {
	m := arriving + 1
	for i := range p {
		if p[i].stream >= m {
			m = p[i].stream + 1
		}
	}
	// boundBefore[i] = {arriving} ∪ {steps < i}; computed incrementally and
	// snapshotted per step into one flat backing array.
	words := len(newBitset(m))
	backing := make([]uint64, (len(p)+1)*words)
	cur := bitset(backing[:words])
	cur.set(arriving)
	prefixes := make([]bitset, len(p))
	for i := range p {
		prefixes[i] = bitset(backing[(i+1)*words : (i+2)*words])
		prefixes[i].copyFrom(cur)
		cur.set(p[i].stream)
	}
	refs := newBitset(m)
	tailOK := true
	for i := len(p) - 1; i >= 0; i-- {
		if len(p[i].checks) > 0 {
			tailOK = false
		}
		for _, l := range p[i].lookups {
			refs.set(l.boundStream)
		}
		for _, b := range p[i].bands {
			refs.set(b.boundStream)
		}
		p[i].countableTail = tailOK && refs.subset(prefixes[i])
	}
}
