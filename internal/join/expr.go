package join

// Compilable predicate expressions. A generic predicate registered through
// Where is an opaque Go closure: correct, but every candidate pair pays a
// closure call (and whatever pointer chasing the closure body does). WhereExpr
// instead accepts a small expression tree over stream attributes; the
// condition keeps the exact same reference semantics (the tree is interpreted
// by Eval, so Matches is unchanged), while executors compile the tree into a
// flat stack bytecode program (bytecode.go) evaluated without any calls in
// the probe inner loop. The tree-walking interpreter and the bytecode VM
// perform the identical IEEE-754 operations in the identical order, so their
// results are bit-for-bit equal — the raw closure form stays available as the
// escape hatch for predicates that do not fit the expression language.

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/stream"
)

// expression node kinds. Numeric nodes produce a float64; boolean nodes
// produce a truth value (represented as 1/0 on the VM stack).
const (
	exAttr = iota // numeric: assign[stream].Attr(attr)
	exConst
	exAdd
	exSub
	exMul
	exDiv
	exNeg
	exAbs
	exMin
	exMax
	exLT // boolean comparisons over numeric operands
	exLE
	exGT
	exGE
	exEQ
	exNE
	exAnd // boolean connectives over boolean operands
	exOr
	exNot
)

// Expr is one node of a compilable predicate expression. Build trees with
// the package constructors (Attr, ConstOf, Add, Lt, And, …) and attach them
// with Condition.WhereExpr. An Expr is immutable once built and may be
// shared between conditions.
type Expr struct {
	kind         int
	x, y         *Expr
	stream, attr int
	c            float64
}

// Attr references attribute attr of the tuple bound for stream. Out-of-range
// attribute positions evaluate to 0, matching stream.Tuple.Attr.
func Attr(stream, attr int) *Expr { return &Expr{kind: exAttr, stream: stream, attr: attr} }

// ConstOf is a numeric constant.
func ConstOf(v float64) *Expr { return &Expr{kind: exConst, c: v} }

// Add is x + y.
func Add(x, y *Expr) *Expr { return binNum(exAdd, x, y) }

// Sub is x − y.
func Sub(x, y *Expr) *Expr { return binNum(exSub, x, y) }

// Mul is x · y.
func Mul(x, y *Expr) *Expr { return binNum(exMul, x, y) }

// Div is x / y with IEEE-754 semantics (±Inf, NaN on 0/0).
func Div(x, y *Expr) *Expr { return binNum(exDiv, x, y) }

// Neg is −x.
func Neg(x *Expr) *Expr { mustNum(x, "Neg"); return &Expr{kind: exNeg, x: x} }

// Abs is |x|.
func Abs(x *Expr) *Expr { mustNum(x, "Abs"); return &Expr{kind: exAbs, x: x} }

// MinOf is the smaller of x and y (math.Min semantics).
func MinOf(x, y *Expr) *Expr { return binNum(exMin, x, y) }

// MaxOf is the larger of x and y (math.Max semantics).
func MaxOf(x, y *Expr) *Expr { return binNum(exMax, x, y) }

// Lt is x < y. Like every float comparison, NaN operands yield false.
func Lt(x, y *Expr) *Expr { return cmp(exLT, x, y) }

// Le is x ≤ y.
func Le(x, y *Expr) *Expr { return cmp(exLE, x, y) }

// Gt is x > y.
func Gt(x, y *Expr) *Expr { return cmp(exGT, x, y) }

// Ge is x ≥ y.
func Ge(x, y *Expr) *Expr { return cmp(exGE, x, y) }

// Eq is x == y (exact float equality; prefer Equi predicates when the shape
// allows an indexed probe).
func Eq(x, y *Expr) *Expr { return cmp(exEQ, x, y) }

// Ne is x != y.
func Ne(x, y *Expr) *Expr { return cmp(exNE, x, y) }

// And is the conjunction of two boolean expressions.
func And(x, y *Expr) *Expr { return binBool(exAnd, x, y) }

// Or is the disjunction of two boolean expressions.
func Or(x, y *Expr) *Expr { return binBool(exOr, x, y) }

// Not negates a boolean expression.
func Not(x *Expr) *Expr { mustBool(x, "Not"); return &Expr{kind: exNot, x: x} }

func binNum(kind int, x, y *Expr) *Expr {
	mustNum(x, opName(kind))
	mustNum(y, opName(kind))
	return &Expr{kind: kind, x: x, y: y}
}

func cmp(kind int, x, y *Expr) *Expr {
	mustNum(x, opName(kind))
	mustNum(y, opName(kind))
	return &Expr{kind: kind, x: x, y: y}
}

func binBool(kind int, x, y *Expr) *Expr {
	mustBool(x, opName(kind))
	mustBool(y, opName(kind))
	return &Expr{kind: kind, x: x, y: y}
}

// isBool reports whether the node produces a truth value.
func (e *Expr) isBool() bool { return e.kind >= exLT }

func mustNum(e *Expr, op string) {
	if e == nil {
		panic("join: nil operand in expression " + op)
	}
	if e.isBool() {
		panic("join: " + op + " needs numeric operands, got a boolean expression")
	}
}

func mustBool(e *Expr, op string) {
	if e == nil {
		panic("join: nil operand in expression " + op)
	}
	if !e.isBool() {
		panic("join: " + op + " needs boolean operands, got a numeric expression")
	}
}

func opName(kind int) string {
	names := [...]string{"Attr", "ConstOf", "Add", "Sub", "Mul", "Div", "Neg", "Abs",
		"MinOf", "MaxOf", "Lt", "Le", "Gt", "Ge", "Eq", "Ne", "And", "Or", "Not"}
	if kind >= 0 && kind < len(names) {
		return names[kind]
	}
	return fmt.Sprintf("op%d", kind)
}

// String renders the expression as a canonical constructor-style term, e.g.
// Lt(Sub(s0.a1, s2.a1), 40). Two expressions print equal iff they are
// structurally identical (constants print with round-trip precision), which
// is what the multi-query engine's condition fingerprinting relies on to
// decide when two WhereExpr residuals are the same predicate.
func (e *Expr) String() string {
	if e == nil {
		return "<nil>"
	}
	switch e.kind {
	case exAttr:
		return fmt.Sprintf("s%d.a%d", e.stream, e.attr)
	case exConst:
		return strconv.FormatFloat(e.c, 'g', -1, 64)
	}
	if e.y != nil {
		return opName(e.kind) + "(" + e.x.String() + ", " + e.y.String() + ")"
	}
	return opName(e.kind) + "(" + e.x.String() + ")"
}

// streams returns the distinct stream indexes the expression references, in
// ascending order.
func (e *Expr) streams() []int {
	set := map[int]bool{}
	var walk func(*Expr)
	walk = func(n *Expr) {
		if n == nil {
			return
		}
		if n.kind == exAttr {
			set[n.stream] = true
		}
		walk(n.x)
		walk(n.y)
	}
	walk(e)
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// evalNum interprets a numeric subtree against a complete-enough assignment.
func (e *Expr) evalNum(assign []*stream.Tuple) float64 {
	switch e.kind {
	case exAttr:
		return assign[e.stream].Attr(e.attr)
	case exConst:
		return e.c
	case exAdd:
		return e.x.evalNum(assign) + e.y.evalNum(assign)
	case exSub:
		return e.x.evalNum(assign) - e.y.evalNum(assign)
	case exMul:
		return e.x.evalNum(assign) * e.y.evalNum(assign)
	case exDiv:
		return e.x.evalNum(assign) / e.y.evalNum(assign)
	case exNeg:
		return -e.x.evalNum(assign)
	case exAbs:
		return math.Abs(e.x.evalNum(assign))
	case exMin:
		return math.Min(e.x.evalNum(assign), e.y.evalNum(assign))
	case exMax:
		return math.Max(e.x.evalNum(assign), e.y.evalNum(assign))
	}
	panic("join: boolean node in numeric position")
}

// EvalBool interprets a boolean expression tree against an assignment with
// every referenced stream bound. It is the reference semantics of WhereExpr
// predicates (Condition.Matches evaluates through it); the compiled bytecode
// of bytecode.go must agree with it bit-for-bit.
func (e *Expr) EvalBool(assign []*stream.Tuple) bool {
	switch e.kind {
	case exLT:
		return e.x.evalNum(assign) < e.y.evalNum(assign)
	case exLE:
		return e.x.evalNum(assign) <= e.y.evalNum(assign)
	case exGT:
		return e.x.evalNum(assign) > e.y.evalNum(assign)
	case exGE:
		return e.x.evalNum(assign) >= e.y.evalNum(assign)
	case exEQ:
		return e.x.evalNum(assign) == e.y.evalNum(assign)
	case exNE:
		return e.x.evalNum(assign) != e.y.evalNum(assign)
	case exAnd:
		return e.x.EvalBool(assign) && e.y.EvalBool(assign)
	case exOr:
		return e.x.EvalBool(assign) || e.y.EvalBool(assign)
	case exNot:
		return !e.x.EvalBool(assign)
	}
	panic("join: numeric node in boolean position — WhereExpr needs a boolean root (a comparison or connective)")
}

// WhereExpr adds a generic predicate in compilable expression form and
// returns the condition for chaining. Semantically it is exactly
// Where(streams(e), e.EvalBool); executors additionally compile the
// expression into branch-free bytecode for the probe inner loop, which the
// opaque closures of Where cannot get.
func (c *Condition) WhereExpr(e *Expr) *Condition {
	c.mutable("WhereExpr")
	if e == nil {
		panic("join: WhereExpr needs a non-nil expression")
	}
	mustBool(e, "WhereExpr")
	streams := e.streams()
	for _, s := range streams {
		if s < 0 || s >= c.M {
			panic(fmt.Sprintf("join: predicate references stream %d outside [0,%d)", s, c.M))
		}
	}
	c.Generics = append(c.Generics, GenericPredicate{Streams: streams, Eval: e.EvalBool, Expr: e})
	return c
}
