package join

// The residual-predicate bytecode. CompileExpr flattens an Expr tree into a
// postorder instruction sequence for a small stack machine: attribute loads,
// constants, float arithmetic, comparisons and boolean connectives, with
// truth values represented as 1/0 floats on the same stack. Evaluation is
// one tight loop over the instruction array — no closure calls, no
// recursion, no allocation (the operand stack is a fixed-size local array,
// which also makes a Prog safe for concurrent Eval from several workers).
//
// Equivalence to the interpreter: every instruction performs exactly the
// IEEE-754 operation its Expr node's interpreter case performs, and the
// postorder flattening preserves operand evaluation order, so Eval returns
// bit-for-bit the same truth value as Expr.EvalBool. The connectives are the
// only divergence in *work done*: the VM always evaluates both operands
// where the interpreter short-circuits — sound because expressions are pure
// (attribute loads and arithmetic have no side effects), so the skipped
// subtree can only produce a value whose consumption AND/OR would ignore
// anyway.

import (
	"math"

	"repro/internal/stream"
)

// VM opcodes. Binary ops pop y then x and push the result.
const (
	bcAttr  = iota // push assign[a].Attr(b)
	bcConst        // push constant c
	bcAdd
	bcSub
	bcMul
	bcDiv
	bcNeg
	bcAbs
	bcMin
	bcMax
	bcLT
	bcLE
	bcGT
	bcGE
	bcEQ
	bcNE
	bcAnd
	bcOr
	bcNot
)

// bcMaxStack bounds the operand stack of the VM; CompileExpr rejects deeper
// expressions (callers fall back to the interpreter, which recurses).
const bcMaxStack = 32

// instr is one VM instruction.
type instr struct {
	op   uint8
	a, b int32   // bcAttr: stream, attribute
	c    float64 // bcConst: immediate
}

// Prog is a compiled boolean expression. Eval is safe for concurrent use.
type Prog struct {
	code []instr
}

// CompileExpr compiles a boolean expression into bytecode, or returns nil
// when the expression is too deep for the fixed VM stack (callers keep the
// tree interpreter as the escape hatch; results are identical either way).
func CompileExpr(e *Expr) *Prog {
	if e == nil || !e.isBool() {
		return nil
	}
	p := &Prog{}
	depth, max := 0, 0
	var emit func(n *Expr) bool
	emit = func(n *Expr) bool {
		if n.x != nil {
			if !emit(n.x) {
				return false
			}
		}
		if n.y != nil {
			if !emit(n.y) {
				return false
			}
		}
		// Stack effect: leaves push one; binary ops pop two, push one;
		// unary ops are neutral.
		switch n.kind {
		case exAttr, exConst:
			depth++
		case exNeg, exAbs, exNot:
			// neutral
		default:
			depth--
		}
		if depth > max {
			max = depth
		}
		if max > bcMaxStack {
			return false
		}
		switch n.kind {
		case exAttr:
			p.code = append(p.code, instr{op: bcAttr, a: int32(n.stream), b: int32(n.attr)})
		case exConst:
			p.code = append(p.code, instr{op: bcConst, c: n.c})
		default:
			// The Expr and VM opcode tables are aligned by construction.
			p.code = append(p.code, instr{op: uint8(n.kind)})
		}
		return true
	}
	if !emit(e) {
		return nil
	}
	return p
}

// Eval runs the program against an assignment with every referenced stream
// bound, returning the predicate's truth value.
func (p *Prog) Eval(assign []*stream.Tuple) bool {
	var stack [bcMaxStack]float64
	sp := 0
	for i := range p.code {
		in := &p.code[i]
		switch in.op {
		case bcAttr:
			stack[sp] = assign[in.a].Attr(int(in.b))
			sp++
		case bcConst:
			stack[sp] = in.c
			sp++
		case bcAdd:
			sp--
			stack[sp-1] = stack[sp-1] + stack[sp]
		case bcSub:
			sp--
			stack[sp-1] = stack[sp-1] - stack[sp]
		case bcMul:
			sp--
			stack[sp-1] = stack[sp-1] * stack[sp]
		case bcDiv:
			sp--
			stack[sp-1] = stack[sp-1] / stack[sp]
		case bcNeg:
			stack[sp-1] = -stack[sp-1]
		case bcAbs:
			stack[sp-1] = math.Abs(stack[sp-1])
		case bcMin:
			sp--
			stack[sp-1] = math.Min(stack[sp-1], stack[sp])
		case bcMax:
			sp--
			stack[sp-1] = math.Max(stack[sp-1], stack[sp])
		case bcLT:
			sp--
			stack[sp-1] = b2f(stack[sp-1] < stack[sp])
		case bcLE:
			sp--
			stack[sp-1] = b2f(stack[sp-1] <= stack[sp])
		case bcGT:
			sp--
			stack[sp-1] = b2f(stack[sp-1] > stack[sp])
		case bcGE:
			sp--
			stack[sp-1] = b2f(stack[sp-1] >= stack[sp])
		case bcEQ:
			sp--
			stack[sp-1] = b2f(stack[sp-1] == stack[sp])
		case bcNE:
			sp--
			stack[sp-1] = b2f(stack[sp-1] != stack[sp])
		case bcAnd:
			sp--
			stack[sp-1] = stack[sp-1] * stack[sp] // both are 1/0
		case bcOr:
			sp--
			stack[sp-1] = b2f(stack[sp-1]+stack[sp] != 0) // both are 1/0
		case bcNot:
			stack[sp-1] = 1 - stack[sp-1]
		}
	}
	return stack[0] != 0
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
