package join

// Wire-serializable condition form. The networked runtime (internal/net)
// must ship the join condition to worker processes in its hello handshake;
// equi and band predicates are plain data, but generic predicates are Go
// values — only the WhereExpr expression-tree form can cross a process
// boundary. WireCondition flattens a condition into gob-friendly structs
// and rebuilds an equivalent condition on the far side: the rebuilt
// condition evaluates the identical IEEE-754 operations in the identical
// order, so worker-side results are bit-for-bit those of the driver-side
// condition. Opaque Where closures are rejected with ErrNotWireable — the
// documented restriction of networked deployments.

import (
	"errors"
	"fmt"
)

// ErrNotWireable reports a condition that cannot be serialized for a
// remote worker: it carries at least one opaque Where closure. Express the
// predicate with WhereExpr to deploy it over the network.
var ErrNotWireable = errors.New("join: condition has an opaque Where closure and cannot be sent to remote workers — express the predicate with WhereExpr")

// WireExprNode is one flattened expression node. X and Y index earlier
// nodes of the same slice (-1 = absent); the last node is the root.
type WireExprNode struct {
	Kind         int
	X, Y         int
	Stream, Attr int
	C            float64
}

// WireCondition is the serializable form of a Condition: equi and band
// predicates verbatim, generic predicates as flattened WhereExpr trees.
type WireCondition struct {
	M        int
	Equis    []EquiPredicate
	Bands    []BandPredicate
	Generics [][]WireExprNode
}

// FlattenExpr renders an expression tree in post-order: every node's
// operands precede it and the root is last.
func FlattenExpr(e *Expr) []WireExprNode {
	var nodes []WireExprNode
	var walk func(*Expr) int
	walk = func(n *Expr) int {
		x, y := -1, -1
		if n.x != nil {
			x = walk(n.x)
		}
		if n.y != nil {
			y = walk(n.y)
		}
		nodes = append(nodes, WireExprNode{Kind: n.kind, X: x, Y: y, Stream: n.stream, Attr: n.attr, C: n.c})
		return len(nodes) - 1
	}
	walk(e)
	return nodes
}

// UnflattenExpr rebuilds the expression tree from its flattened form,
// validating structure (operand indexes strictly before their node, kinds
// in range, numeric/boolean typing, boolean root) so a corrupted or
// hostile payload yields an error instead of a panic or a mistyped tree.
func UnflattenExpr(nodes []WireExprNode) (*Expr, error) {
	if len(nodes) == 0 {
		return nil, errors.New("join: empty expression")
	}
	built := make([]*Expr, len(nodes))
	for i, n := range nodes {
		if n.Kind < exAttr || n.Kind > exNot {
			return nil, fmt.Errorf("join: expression node %d has unknown kind %d", i, n.Kind)
		}
		operand := func(j int) (*Expr, error) {
			if j < 0 || j >= i {
				return nil, fmt.Errorf("join: expression node %d references operand %d outside [0,%d)", i, j, i)
			}
			return built[j], nil
		}
		var x, y *Expr
		var err error
		wantX, wantY := arity(n.Kind)
		if wantX {
			if x, err = operand(n.X); err != nil {
				return nil, err
			}
		} else if n.X >= 0 {
			return nil, fmt.Errorf("join: expression node %d (%s) takes no operands", i, opName(n.Kind))
		}
		if wantY {
			if y, err = operand(n.Y); err != nil {
				return nil, err
			}
		} else if n.Y >= 0 && wantX != wantY {
			return nil, fmt.Errorf("join: expression node %d (%s) is unary", i, opName(n.Kind))
		}
		boolOps := n.Kind == exAnd || n.Kind == exOr || n.Kind == exNot
		if x != nil && x.isBool() != boolOps {
			return nil, fmt.Errorf("join: expression node %d (%s) has a mistyped operand", i, opName(n.Kind))
		}
		if y != nil && y.isBool() != boolOps {
			return nil, fmt.Errorf("join: expression node %d (%s) has a mistyped operand", i, opName(n.Kind))
		}
		if n.Kind == exAttr && (n.Stream < 0 || n.Attr < 0) {
			return nil, fmt.Errorf("join: expression node %d references negative stream/attr", i)
		}
		built[i] = &Expr{kind: n.Kind, x: x, y: y, stream: n.Stream, attr: n.Attr, c: n.C}
	}
	root := built[len(built)-1]
	if !root.isBool() {
		return nil, errors.New("join: expression root is numeric — a predicate needs a boolean root")
	}
	return root, nil
}

// arity reports which operands a node kind takes.
func arity(kind int) (x, y bool) {
	switch kind {
	case exAttr, exConst:
		return false, false
	case exNeg, exAbs, exNot:
		return true, false
	default:
		return true, true
	}
}

// Wire flattens the condition for transport. It fails with ErrNotWireable
// when any generic predicate lacks an expression form.
func (c *Condition) Wire() (WireCondition, error) {
	wc := WireCondition{
		M:     c.M,
		Equis: append([]EquiPredicate(nil), c.Equis...),
		Bands: append([]BandPredicate(nil), c.Bands...),
	}
	for _, g := range c.Generics {
		if g.Expr == nil {
			return WireCondition{}, ErrNotWireable
		}
		wc.Generics = append(wc.Generics, FlattenExpr(g.Expr))
	}
	return wc, nil
}

// Condition rebuilds a fresh, unsealed condition from the wire form,
// validating every predicate exactly as the builder API does (returning
// errors where the builders panic, since the input crossed a trust
// boundary).
func (wc WireCondition) Condition() (c *Condition, err error) {
	defer func() {
		// The builder methods validate via panic; a hostile payload must
		// surface as an error, not kill the worker daemon's accept loop.
		if r := recover(); r != nil {
			c, err = nil, fmt.Errorf("join: invalid wire condition: %v", r)
		}
	}()
	if wc.M < 2 {
		return nil, fmt.Errorf("join: wire condition has m=%d, need at least 2 streams", wc.M)
	}
	c = Cross(wc.M)
	for _, e := range wc.Equis {
		c.Equi(e.LeftStream, e.LeftAttr, e.RightStream, e.RightAttr)
	}
	for _, b := range wc.Bands {
		c.Band(b.LeftStream, b.LeftAttr, b.RightStream, b.RightAttr, b.Eps)
	}
	for _, nodes := range wc.Generics {
		e, uerr := UnflattenExpr(nodes)
		if uerr != nil {
			return nil, uerr
		}
		c.WhereExpr(e)
	}
	return c, nil
}

// Fingerprint renders the wire condition canonically — two conditions
// fingerprint equal iff their predicate lists are structurally identical.
// The networked deployment signature is built on it.
func (wc WireCondition) Fingerprint() string {
	s := fmt.Sprintf("m=%d", wc.M)
	for _, e := range wc.Equis {
		s += fmt.Sprintf(";eq%d.%d=%d.%d", e.LeftStream, e.LeftAttr, e.RightStream, e.RightAttr)
	}
	for _, b := range wc.Bands {
		s += fmt.Sprintf(";band%d.%d~%d.%d@%g", b.LeftStream, b.LeftAttr, b.RightStream, b.RightAttr, b.Eps)
	}
	for _, nodes := range wc.Generics {
		if e, err := UnflattenExpr(nodes); err == nil {
			s += ";gen=" + e.String()
		} else {
			s += ";gen=<invalid>"
		}
	}
	return s
}

// Wireable reports whether every generic predicate of c carries an
// expression form — i.e. whether Wire would succeed.
func (c *Condition) Wireable() bool {
	for _, g := range c.Generics {
		if g.Expr == nil {
			return false
		}
	}
	return true
}
