package join

// The compiled probe kernel. buildPlans produces a symbolic plan — per step,
// lists of lookups naming window attributes to probe; the interpreted search
// path (operator.go) resolves every probe through Window.Match/MatchRange,
// which scan the window's index table for the attribute on every call.
// compilePlans lowers each plan once, at operator construction, into csteps
// holding *direct handles* to the hash/range index structures plus flattened
// residual filters, so the steady-state probe loop touches no per-call
// dispatch: an equi step is one KeyBits + one open-addressed Get, a band step
// one sorted range view, residuals are straight-line float compares, and
// generic predicates added through WhereExpr run as bytecode (bytecode.go)
// instead of closure calls.
//
// # Equivalence-class rewrite
//
// Compilation additionally rewrites each probe's bound reference to the
// earliest-bound member of its equality class. The classes are built
// incrementally in step order from the plan's own equi lookups: executing the
// lookup own == bound guarantees every surviving candidate satisfies exact
// float equality, so a later step's reference to (stream, attr) may read the
// equal value from any stream bound earlier that the executed lookups connect
// it to. The rewrite is exact, not heuristic:
//
//   - hash buckets are float-equality classes (KeyBits collapses ±0 and
//     rejects NaN, and x == y for floats iff KeyBits(x) == KeyBits(y) for the
//     non-NaN values that can reach a bucket), so probing with an equal value
//     returns the identical bucket view — same tuples, same order;
//   - residual equi (!=) and band (difference-form) checks are invariant
//     under replacing an operand with a float-equal value (the only bit-level
//     difference, ±0, compares equal and produces a ±0 difference that the
//     closed band treats identically).
//
// The payoff is countability: in a chain S0.a = S1.a = S2.a the symbolic plan
// for arriving S0 probes S2 with S1's value, so the tail is not countable
// from step 0 (it references a stream bound mid-plan); after the rewrite both
// probes read the arriving tuple and the whole plan collapses to two hash
// gets and a multiply. countableTail is therefore recomputed on the compiled
// steps, never copied from the symbolic plan.

import (
	"repro/internal/index"
	"repro/internal/stream"
	"repro/internal/window"
)

// cref names the source of a probe value in the current assignment:
// assign[stream].Attr(attr).
type cref struct {
	stream, attr int
}

// ceq is a compiled residual equi filter: cand.Attr(ownAttr) must equal the
// referenced value exactly.
type ceq struct {
	ownAttr int
	ref     cref
}

// cband is a compiled residual band filter in exact difference form:
// cand.Attr(ownAttr) − ref ∈ [−eps, eps].
type cband struct {
	ownAttr int
	ref     cref
	eps     float64
}

// cstep probes one stream through direct index handles. At most one of hash
// and rng is non-nil (the base candidate probe); with neither the step scans
// the whole window. All band lookups stay in resBand even when one of them
// is the base range probe — the range view is a widened superset (bandRange)
// and the exact difference form decides membership, exactly as in the
// interpreted path.
type cstep struct {
	stream int
	win    *window.Window

	hash    *index.Hash[*stream.Tuple]
	hashRef cref

	rng    *index.Sorted[*stream.Tuple]
	rngRef cref
	rngEps float64

	resEq   []ceq
	resBand []cband

	checks []int   // indexes into Condition.Generics
	progs  []*Prog // parallel to checks; nil entry → interpreted Eval

	countableTail bool

	// tailFused marks the fused counting loop for the hottest enumeration
	// shape: this step must enumerate its candidates (its own count depends
	// on the choice), but every later step is a pure single-equi countable
	// step and no generic checks remain. Each tail step is then one hash
	// bucket length; searchC multiplies them per candidate without
	// recursing. Probes whose reference reads the enumerated candidate
	// (tailCand) run inside the candidate loop straight off the candidate
	// tuple; probes bound to earlier streams (tailFixed) are invariant
	// across candidates and are hoisted out, computed once per probe.
	// Semantically identical to the recursive path: it is the countableTail
	// product with the call tree flattened and the loop-invariant factors
	// pulled out.
	tailFused bool
	tailCand  []tailProbe // refs read attr of this step's own candidate
	tailFixed []tailProbe // refs read streams bound before this step
}

// tailProbe is one fused tail count: len(hash bucket keyed by the referenced
// value); for tailCand entries ref.attr is read from the candidate itself.
type tailProbe struct {
	hash *index.Hash[*stream.Tuple]
	ref  cref
}

// cplan is the compiled probe order for one arriving stream.
type cplan struct {
	steps []cstep
}

// compileProgs compiles every WhereExpr generic predicate to bytecode once
// per operator; index gi holds nil for opaque closures (and for expressions
// too deep for the VM), which keep the interpreted Eval.
func compileProgs(cond *Condition) []*Prog {
	progs := make([]*Prog, len(cond.Generics))
	for gi := range cond.Generics {
		progs[gi] = CompileExpr(cond.Generics[gi].Expr)
	}
	return progs
}

// compilePlans lowers the symbolic plans into compiled plans against the
// operator's windows.
func compilePlans(cond *Condition, plans []plan, windows []*window.Window, progs []*Prog) []cplan {
	out := make([]cplan, len(plans))
	for s := range plans {
		out[s] = compilePlan(cond, s, plans[s], windows, progs)
	}
	return out
}

func compilePlan(cond *Condition, arriving int, p plan, windows []*window.Window, progs []*Prog) cplan {
	// canon maps an attribute reference to an exactly-equal reference on an
	// earlier-bound stream, derived from the equi lookups already executed.
	// resolve chases chains to the earliest-bound representative; entries are
	// only ever added for the stream a step just bound, so every ref a later
	// step resolves is justified by lookups that executed before it.
	canon := map[cref]cref{}
	resolve := func(r cref) cref {
		for {
			c, ok := canon[r]
			if !ok {
				return r
			}
			r = c
		}
	}

	steps := make([]cstep, len(p))
	for i := range p {
		st := &p[i]
		cs := &steps[i]
		cs.stream = st.stream
		cs.win = windows[st.stream]
		switch {
		case len(st.lookups) > 0:
			l0 := st.lookups[0]
			cs.hash = cs.win.HashIndex(l0.ownAttr)
			if cs.hash == nil {
				panic("join: compiled plan probes an unindexed equi attribute")
			}
			cs.hashRef = resolve(cref{l0.boundStream, l0.boundAttr})
			for _, l := range st.lookups[1:] {
				cs.resEq = append(cs.resEq, ceq{l.ownAttr, resolve(cref{l.boundStream, l.boundAttr})})
			}
			for _, b := range st.bands {
				cs.resBand = append(cs.resBand, cband{b.ownAttr, resolve(cref{b.boundStream, b.boundAttr}), b.eps})
			}
		case len(st.bands) > 0:
			b0 := st.bands[0]
			cs.rng = cs.win.RangeIndex(b0.ownAttr)
			if cs.rng == nil {
				panic("join: compiled plan probes an unindexed band attribute")
			}
			cs.rngRef = resolve(cref{b0.boundStream, b0.boundAttr})
			cs.rngEps = b0.eps
			for _, b := range st.bands {
				cs.resBand = append(cs.resBand, cband{b.ownAttr, resolve(cref{b.boundStream, b.boundAttr}), b.eps})
			}
		}
		cs.checks = st.checks
		for _, gi := range st.checks {
			cs.progs = append(cs.progs, progs[gi])
		}
		// Register this step's equalities for later steps. First writer wins
		// when two lookups share an own attribute; either target is exact.
		for _, l := range st.lookups {
			own := cref{st.stream, l.ownAttr}
			if _, dup := canon[own]; !dup {
				canon[own] = resolve(cref{l.boundStream, l.boundAttr})
			}
		}
	}
	markCountableTailsC(arriving, steps, cond.M)
	for i := range steps {
		fuseTail(steps, i)
	}
	return cplan{steps: steps}
}

// fuseTail builds the fused tail probes for step i, or leaves the step
// unfused when the tail after i is not a pure single-equi counting chain
// (see cstep.tailFused).
func fuseTail(steps []cstep, i int) {
	cs := &steps[i]
	if cs.countableTail || len(cs.checks) > 0 || i+1 >= len(steps) || !steps[i+1].countableTail {
		return
	}
	var cand, fixed []tailProbe
	for j := i + 1; j < len(steps); j++ {
		t := &steps[j]
		if t.hash == nil || t.hasResiduals() || len(t.checks) > 0 {
			return
		}
		tp := tailProbe{hash: t.hash, ref: t.hashRef}
		if t.hashRef.stream == cs.stream {
			cand = append(cand, tp)
		} else {
			fixed = append(fixed, tp)
		}
	}
	cs.tailFused = true
	cs.tailCand = cand
	cs.tailFixed = fixed
}

// markCountableTailsC recomputes countableTail on the compiled steps, whose
// rewritten references are often strictly earlier-bound than the symbolic
// plan's (see the package comment on the equivalence rewrite). Same backward
// pass as markCountableTails.
func markCountableTailsC(arriving int, steps []cstep, m int) {
	words := len(newBitset(m))
	backing := make([]uint64, (len(steps)+1)*words)
	cur := bitset(backing[:words])
	cur.set(arriving)
	prefixes := make([]bitset, len(steps))
	for i := range steps {
		prefixes[i] = bitset(backing[(i+1)*words : (i+2)*words])
		prefixes[i].copyFrom(cur)
		cur.set(steps[i].stream)
	}
	refs := newBitset(m)
	tailOK := true
	for i := len(steps) - 1; i >= 0; i-- {
		cs := &steps[i]
		if len(cs.checks) > 0 {
			tailOK = false
		}
		if cs.hash != nil {
			refs.set(cs.hashRef.stream)
		}
		if cs.rng != nil {
			refs.set(cs.rngRef.stream)
		}
		for j := range cs.resEq {
			refs.set(cs.resEq[j].ref.stream)
		}
		for j := range cs.resBand {
			refs.set(cs.resBand[j].ref.stream)
		}
		cs.countableTail = tailOK && refs.subset(prefixes[i])
	}
}

// base returns the step's base candidate view: hash bucket, widened range
// view, or the whole window. Views are index-internal storage; never
// retained.
func (cs *cstep) base(assign []*stream.Tuple) []*stream.Tuple {
	if cs.hash != nil {
		bits, ok := index.KeyBits(assign[cs.hashRef.stream].Attr(cs.hashRef.attr))
		if !ok {
			return nil // NaN never equi-matches
		}
		return cs.hash.Get(bits)
	}
	if cs.rng != nil {
		lo, hi, ok := bandRange(assign[cs.rngRef.stream].Attr(cs.rngRef.attr), cs.rngEps)
		if !ok {
			return nil
		}
		return cs.rng.Range(lo, hi)
	}
	return cs.win.All()
}

// filter applies the step's residual equi and band checks to one candidate.
func (cs *cstep) filter(cand *stream.Tuple, assign []*stream.Tuple) bool {
	for i := range cs.resEq {
		r := &cs.resEq[i]
		if cand.Attr(r.ownAttr) != assign[r.ref.stream].Attr(r.ref.attr) {
			return false
		}
	}
	for i := range cs.resBand {
		b := &cs.resBand[i]
		d := cand.Attr(b.ownAttr) - assign[b.ref.stream].Attr(b.ref.attr)
		// Negated form: NaN (all comparisons false) never band-matches.
		if !(d >= -b.eps && d <= b.eps) {
			return false
		}
	}
	return true
}

// hasResiduals reports whether the step filters beyond its base probe.
func (cs *cstep) hasResiduals() bool { return len(cs.resEq) > 0 || len(cs.resBand) > 0 }

// ccount counts a step's candidates without materializing them.
func (cs *cstep) ccount(assign []*stream.Tuple) int64 {
	base := cs.base(assign)
	if !cs.hasResiduals() {
		return int64(len(base))
	}
	var n int64
	for _, cand := range base {
		if cs.filter(cand, assign) {
			n++
		}
	}
	return n
}

// ccandidates returns the step's filtered candidates, reusing the level's
// scratch buffer when residuals force a copy.
func (o *Operator) ccandidates(cs *cstep, lvl int, assign []*stream.Tuple) []*stream.Tuple {
	base := cs.base(assign)
	if !cs.hasResiduals() {
		return base
	}
	old := o.scratch[lvl]
	out := old[:0]
	for _, cand := range base {
		if cs.filter(cand, assign) {
			out = append(out, cand)
		}
	}
	// Nil the stale tail so the scratch buffer does not pin expired tuples.
	for i := len(out); i < len(old); i++ {
		old[i] = nil
	}
	o.scratch[lvl] = out
	return out
}

// cchecks evaluates the step's generic predicates — bytecode when compiled,
// the interpreted Eval closure otherwise.
func (o *Operator) cchecks(cs *cstep, assign []*stream.Tuple) bool {
	for k, gi := range cs.checks {
		if p := cs.progs[k]; p != nil {
			if !p.Eval(assign) {
				return false
			}
		} else if !o.cond.Generics[gi].Eval(assign) {
			return false
		}
	}
	return true
}

// searchC is the compiled counterpart of search: identical enumeration
// order, identical counting fast path, direct index handles.
func (o *Operator) searchC(cp *cplan, lvl int, assign []*stream.Tuple) int64 {
	steps := cp.steps
	if lvl == len(steps) {
		if o.emit != nil {
			tuples := make([]*stream.Tuple, len(assign))
			copy(tuples, assign)
			o.emit(stream.NewResult(tuples))
		}
		return 1
	}
	cs := &steps[lvl]
	if cs.countableTail && o.emit == nil {
		var prod int64 = 1
		for j := lvl; j < len(steps); j++ {
			prod *= steps[j].ccount(assign)
			if prod == 0 {
				return 0
			}
		}
		return prod
	}
	var n int64
	cands := o.ccandidates(cs, lvl, assign)
	if cs.tailFused && o.emit == nil {
		// Fused per-candidate counting: multiply tail bucket lengths inline.
		// Probes bound to earlier streams are invariant across candidates;
		// compute their product once, and skip the whole enumeration when it
		// is already zero.
		fixed := int64(1)
		for k := range cs.tailFixed {
			tp := &cs.tailFixed[k]
			bits, ok := index.KeyBits(assign[tp.ref.stream].Attr(tp.ref.attr))
			if !ok {
				return 0
			}
			if fixed *= int64(len(tp.hash.Get(bits))); fixed == 0 {
				return 0
			}
		}
		switch len(cs.tailCand) {
		case 0:
			// All tail probes were invariant: every candidate contributes the
			// same fixed product. (Unreachable when the planner already
			// marked this step countable, but kept for completeness.)
			return int64(len(cands)) * fixed
		case 1:
			tp := &cs.tailCand[0]
			a := tp.ref.attr
			for _, cand := range cands {
				if bits, ok := index.KeyBits(cand.Attr(a)); ok {
					n += fixed * int64(len(tp.hash.Get(bits)))
				}
			}
			return n
		case 2:
			// The star join's spoke-arrival shape: two per-candidate bucket
			// counts, multiplied inline.
			tp0, tp1 := &cs.tailCand[0], &cs.tailCand[1]
			a0, a1 := tp0.ref.attr, tp1.ref.attr
			for _, cand := range cands {
				bits0, ok := index.KeyBits(cand.Attr(a0))
				if !ok {
					continue
				}
				n0 := int64(len(tp0.hash.Get(bits0)))
				if n0 == 0 {
					continue
				}
				bits1, ok := index.KeyBits(cand.Attr(a1))
				if !ok {
					continue
				}
				n += fixed * n0 * int64(len(tp1.hash.Get(bits1)))
			}
			return n
		}
		for _, cand := range cands {
			prod := fixed
			for k := range cs.tailCand {
				tp := &cs.tailCand[k]
				bits, ok := index.KeyBits(cand.Attr(tp.ref.attr))
				if !ok {
					prod = 0
					break
				}
				if prod *= int64(len(tp.hash.Get(bits))); prod == 0 {
					break
				}
			}
			n += prod
		}
		return n
	}
	for _, cand := range cands {
		assign[cs.stream] = cand
		if o.cchecks(cs, assign) {
			n += o.searchC(cp, lvl+1, assign)
		}
	}
	assign[cs.stream] = nil
	return n
}
