package join

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

// TestBandPredicateBasic: a 1-D band join matches exactly the neighbors
// within ±eps, inclusive at both edges.
func TestBandPredicateBasic(t *testing.T) {
	cond := Cross(2).Band(0, 0, 1, 0, 2)
	op, out := collectOp(cond, []stream.Time{10, 10})
	op.Process(tup(1, 1, 0, 5))   // in band of 4 (|5−4| ≤ 2)
	op.Process(tup(1, 2, 1, 6))   // at the closed edge (|6−4| = 2)
	op.Process(tup(1, 3, 2, 6.5)) // outside (2.5 > 2)
	op.Process(tup(0, 4, 3, 4))   // probes S1: matches 5 and 6
	if len(*out) != 2 {
		t.Fatalf("results = %d, want 2 (closed band edges)", len(*out))
	}
}

// TestBandNaNNeverMatches: NaN attribute values satisfy no band, on either
// side of the probe.
func TestBandNaNNeverMatches(t *testing.T) {
	cond := Cross(2).Band(0, 0, 1, 0, 100)
	op, out := collectOp(cond, []stream.Time{10, 10})
	op.Process(tup(1, 1, 0, math.NaN())) // stored NaN
	op.Process(tup(0, 2, 1, 0))          // probe: must not match NaN
	op.Process(tup(1, 3, 2, math.NaN())) // NaN probe against stored 0
	if len(*out) != 0 {
		t.Fatalf("results = %d, want 0 (NaN never band-matches)", len(*out))
	}
	if cond.Matches([]*stream.Tuple{tup(0, 2, 1, 0), tup(1, 1, 0, math.NaN())}) {
		t.Fatal("Matches must agree that NaN fails the band")
	}
}

// TestBandRoundingAgreesWithMatches is the regression test for the
// band-edge rounding divergence: with eps = 0.3, stored 0.4 and probe 0.1,
// fl(0.4 − 0.1) = 0.30000000000000004 > 0.3 so Condition.Matches rejects —
// but the naive probe bounds fl(0.1 + 0.3) = 0.4 would include the tuple.
// Planned execution must side with Matches (the probe is a widened
// superset pre-filter; the exact difference form decides).
func TestBandRoundingAgreesWithMatches(t *testing.T) {
	cond := Cross(2).Band(0, 0, 1, 0, 0.3)
	if cond.Matches([]*stream.Tuple{tup(0, 2, 1, 0.1), tup(1, 1, 0, 0.4)}) {
		t.Fatal("precondition: Matches must reject fl(0.4−0.1) > 0.3")
	}
	op, out := collectOp(cond, []stream.Time{10, 10})
	counting := New(cond, []stream.Time{10, 10})
	for _, e := range []*stream.Tuple{tup(1, 1, 0, 0.4), tup(0, 2, 1, 0.1)} {
		cp, cp2 := *e, *e
		op.Process(&cp)
		counting.Process(&cp2)
	}
	if len(*out) != 0 {
		t.Fatalf("enumerating path produced %d results, want 0 (Matches rejects)", len(*out))
	}
	if counting.Results() != 0 {
		t.Fatalf("counting path produced %d results, want 0", counting.Results())
	}
	// The mirror case one ulp inside the band must still match.
	d := math.Nextafter(0.3, 0) // largest float < 0.3
	op2, out2 := collectOp(cond, []stream.Time{10, 10})
	op2.Process(tup(1, 1, 0, 0.1+d))
	op2.Process(tup(0, 2, 1, 0.1))
	if len(*out2) != 1 {
		t.Fatalf("in-band value produced %d results, want 1", len(*out2))
	}
}

// TestBandInfinityNeverMatches: ±Inf attributes can never satisfy a finite
// band — on either side of the probe — matching the Matches semantics
// (Inf − Inf = NaN, Inf − finite = ±Inf).
func TestBandInfinityNeverMatches(t *testing.T) {
	cond := Cross(2).Band(0, 0, 1, 0, 1)
	op, out := collectOp(cond, []stream.Time{10, 10})
	op.Process(tup(1, 1, 0, math.Inf(1)))  // stored +Inf
	op.Process(tup(0, 2, 1, math.Inf(1)))  // +Inf probe against stored +Inf
	op.Process(tup(0, 3, 2, 5))            // finite probe against stored +Inf
	op.Process(tup(1, 4, 3, math.Inf(-1))) // −Inf probe against stored finite
	if len(*out) != 0 {
		t.Fatalf("results = %d, want 0 (Inf never band-matches)", len(*out))
	}
}

// refMSWJ is a reference MSWJ evaluator: plain slices, full cross
// enumeration, Condition.Matches as the oracle semantics, and the
// documented boundary convention (scope [onT − W, onT], expired strictly
// older). The planned operator must agree with it result for result.
type refMSWJ struct {
	cond    *Condition
	windows []stream.Time
	live    [][]*stream.Tuple
	onT     stream.Time
}

func newRefMSWJ(cond *Condition, windows []stream.Time) *refMSWJ {
	return &refMSWJ{cond: cond, windows: windows, live: make([][]*stream.Tuple, cond.M)}
}

func (r *refMSWJ) process(e *stream.Tuple) int64 {
	if e.TS < r.onT {
		// Out of order: no probe; keep only while inside the own scope.
		if e.TS >= r.onT-r.windows[e.Src] {
			r.live[e.Src] = append(r.live[e.Src], e)
		}
		return 0
	}
	r.onT = e.TS
	for s := range r.live {
		if s == e.Src {
			continue
		}
		bound := e.TS - r.windows[s]
		kept := r.live[s][:0]
		for _, tu := range r.live[s] {
			if tu.TS >= bound {
				kept = append(kept, tu)
			}
		}
		r.live[s] = kept
	}
	assign := make([]*stream.Tuple, r.cond.M)
	assign[e.Src] = e
	n := r.enumerate(assign, 0)
	r.live[e.Src] = append(r.live[e.Src], e)
	return n
}

func (r *refMSWJ) enumerate(assign []*stream.Tuple, s int) int64 {
	if s == r.cond.M {
		if r.cond.Matches(assign) {
			return 1
		}
		return 0
	}
	if assign[s] != nil {
		return r.enumerate(assign, s+1)
	}
	var n int64
	for _, tu := range r.live[s] {
		assign[s] = tu
		n += r.enumerate(assign, s+1)
	}
	assign[s] = nil
	return n
}

// randBandWorkload builds a disordered batch mixing arbitrary continuous
// attribute values (not exactly representable — exercising the widened
// range probe + exact residual filter at band edges) with a coarse
// half-step grid (forcing frequent exact edge ties), occasional NaN
// attributes, and duplicate timestamps pinned to window edges.
func randBandWorkload(rng *rand.Rand, m, n int) []*stream.Tuple {
	var in []*stream.Tuple
	ts := stream.Time(0)
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0: // duplicate timestamp
		case 1:
			ts += 1
		default:
			ts += stream.Time(rng.Intn(4))
		}
		t := ts
		if rng.Intn(6) == 0 && ts > 8 {
			t = ts - stream.Time(rng.Intn(10)) // out-of-order residue
		}
		val := func() float64 {
			if rng.Intn(2) == 0 {
				return float64(rng.Intn(24)) / 2 // exact half-step grid
			}
			return rng.Float64() * 12 // arbitrary continuous value
		}
		attrs := []float64{val(), val(), float64(rng.Intn(3))}
		if rng.Intn(25) == 0 {
			attrs[rng.Intn(2)] = math.NaN()
		}
		in = append(in, tup(rng.Intn(m), t, uint64(i), attrs...))
	}
	return in
}

// randBandCond draws a random conjunctive mix of band, equi and generic
// predicates over m streams (always at least one band).
func randBandCond(rng *rand.Rand, m int) *Condition {
	c := Cross(m)
	eps := float64(rng.Intn(5)) / 2
	c.Band(0, 0, 1, 0, eps)
	if rng.Intn(2) == 0 {
		c.Band(0, 1, 1, 1, eps+0.5) // second band on another attribute
	}
	if m > 2 && rng.Intn(2) == 0 {
		c.Band(1, 0, 2, 0, eps+1)
	}
	if rng.Intn(2) == 0 {
		ls := 0
		rs := rng.Intn(m-1) + 1
		c.Equi(ls, 2, rs, 2)
	}
	if rng.Intn(2) == 0 {
		streams := make([]int, m)
		for i := range streams {
			streams[i] = i
		}
		c.Where(streams, func(assign []*stream.Tuple) bool {
			var sum float64
			for _, tu := range assign {
				sum += tu.Attr(2)
			}
			return sum != 2
		})
	}
	return c
}

// TestBandPlannerDifferential replays random disordered batches through the
// planned operator (both the enumerating and the counting-only probe
// paths) and the reference evaluator on random band + equi + generic
// condition mixes: all three must produce identical result counts.
func TestBandPlannerDifferential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(2)
		cond := randBandCond(rng, m)
		windows := make([]stream.Time, m)
		for i := range windows {
			windows[i] = stream.Time(4 + rng.Intn(8))
		}
		in := randBandWorkload(rng, m, 250)

		ref := newRefMSWJ(cond, windows)
		var want int64
		for _, e := range in {
			want += ref.process(e)
		}

		op, out := collectOp(cond, windows)
		counting := New(cond, windows)
		for _, e := range in {
			cp, cp2 := *e, *e
			op.Process(&cp)
			counting.Process(&cp2)
		}
		if int64(len(*out)) != want {
			t.Logf("seed %d: enumerated %d results, reference %d", seed, len(*out), want)
			return false
		}
		if counting.Results() != want {
			t.Logf("seed %d: counting path %d results, reference %d", seed, counting.Results(), want)
			return false
		}
		for _, r := range *out {
			if !cond.Matches(r.Tuples) {
				t.Logf("seed %d: emitted result violates Matches", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBandCountingFastPathPureBand pins the O(log n) counting path: a pure
// band condition (no generic residual) with no emit sink must agree with
// enumeration.
func TestBandCountingFastPathPureBand(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cond := Cross(2).Band(0, 0, 1, 0, 1.5)
		w := []stream.Time{10, 10}
		in := randBandWorkload(rng, 2, 200)
		counting := New(cond, w)
		var emitted int64
		enumerating := New(cond, w, WithEmit(func(stream.Result) { emitted++ }))
		for _, e := range in {
			cp, cp2 := *e, *e
			counting.Process(&cp)
			enumerating.Process(&cp2)
		}
		return counting.Results() == emitted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestBandMixedWithEqui: an equi lookup narrows first, the band filters the
// bucket — the probe order the planner prefers.
func TestBandMixedWithEqui(t *testing.T) {
	cond := Cross(2).Equi(0, 2, 1, 2).Band(0, 0, 1, 0, 1)
	op, out := collectOp(cond, []stream.Time{10, 10})
	op.Process(tup(1, 1, 0, 5, 0, 1))   // key 1, in band of 5
	op.Process(tup(1, 2, 1, 5, 0, 2))   // key 2: equi mismatch
	op.Process(tup(1, 3, 2, 9, 0, 1))   // key 1 but outside band
	op.Process(tup(0, 4, 3, 5.5, 0, 1)) // probes: only the first matches
	if len(*out) != 1 {
		t.Fatalf("results = %d, want 1", len(*out))
	}
}
