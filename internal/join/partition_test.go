package join

import (
	"testing"

	"repro/internal/stream"
)

func TestPartitionFullEqui(t *testing.T) {
	p := EquiChain(3, 1).Partition()
	if p.Mode != PartitionEqui {
		t.Fatalf("mode = %v, want equi", p.Mode)
	}
	for s := 0; s < 3; s++ {
		if p.KeyAttr[s] != 1 {
			t.Fatalf("KeyAttr[%d] = %d, want 1", s, p.KeyAttr[s])
		}
	}
	if p.Delta != 0 {
		t.Fatalf("Delta = %v, want 0", p.Delta)
	}
}

func TestPartitionStarDistinctAttrsIsPartial(t *testing.T) {
	// Q×4: S0.a0=S1.a0, S0.a1=S2.a0, S0.a2=S3.a0 — three separate classes,
	// each covering exactly two streams. The partitioner must pick one
	// (deterministically the smallest) and broadcast the rest.
	p := Star(4, []int{0, 1, 2}, []int{0, 0, 0}).Partition()
	if p.Mode != PartitionEqui {
		t.Fatalf("mode = %v, want equi (partial)", p.Mode)
	}
	if p.KeyAttr[0] != 0 || p.KeyAttr[1] != 0 {
		t.Fatalf("expected class {S0.a0, S1.a0}, got %v", p.KeyAttr)
	}
	if p.KeyAttr[2] != -1 || p.KeyAttr[3] != -1 {
		t.Fatalf("S2/S3 must be broadcast, got %v", p.KeyAttr)
	}
}

func TestPartitionStarSharedAttrIsFull(t *testing.T) {
	// Q×3-style star on one attribute: transitively one class over all
	// streams.
	p := Star(3, []int{0, 0}, []int{0, 0}).Partition()
	if p.Mode != PartitionEqui || p.KeyAttr[0] != 0 || p.KeyAttr[1] != 0 || p.KeyAttr[2] != 0 {
		t.Fatalf("want full equi on attr 0, got %+v", p)
	}
}

func TestPartitionBandChain(t *testing.T) {
	c := Cross(3).Band(0, 0, 1, 0, 2).Band(1, 0, 2, 0, 3)
	p := c.Partition()
	if p.Mode != PartitionBand {
		t.Fatalf("mode = %v, want band", p.Mode)
	}
	if p.Delta != 5 { // conservative: sum of class epsilons
		t.Fatalf("Delta = %v, want 5", p.Delta)
	}
	for s := 0; s < 3; s++ {
		if p.KeyAttr[s] != 0 {
			t.Fatalf("KeyAttr = %v", p.KeyAttr)
		}
	}
}

func TestPartitionEquiBeatsBand(t *testing.T) {
	// Both a full equi class (attr 1) and a full band class (attr 0): the
	// exact key wins — no replication needed.
	c := Cross(2).Band(0, 0, 1, 0, 1).Equi(0, 1, 1, 1)
	p := c.Partition()
	if p.Mode != PartitionEqui || p.KeyAttr[0] != 1 || p.KeyAttr[1] != 1 {
		t.Fatalf("want full equi on attr 1, got %+v", p)
	}
}

func TestPartitionZeroEpsBandIsExact(t *testing.T) {
	// A band with ε = 0 is an equality: the class is exact and hashable.
	p := Cross(2).Band(0, 0, 1, 0, 0).Partition()
	if p.Mode != PartitionEqui {
		t.Fatalf("mode = %v, want equi for ε=0 band", p.Mode)
	}
}

func TestPartitionPartialBandFallsBack(t *testing.T) {
	// A band class covering 2 of 3 streams is unsound to shard (replicated
	// neighbours could pair with broadcast tuples in two shards), so the
	// fallback applies.
	c := Cross(3).Band(0, 0, 1, 0, 1).
		Where([]int{1, 2}, func([]*stream.Tuple) bool { return true })
	p := c.Partition()
	if p.Mode != PartitionNone {
		t.Fatalf("mode = %v, want broadcast fallback", p.Mode)
	}
}

func TestPartitionGenericOnly(t *testing.T) {
	c := Cross(2).Where([]int{0, 1}, func([]*stream.Tuple) bool { return true })
	p := c.Partition()
	if p.Mode != PartitionNone {
		t.Fatalf("mode = %v, want broadcast fallback", p.Mode)
	}
	if p.Covered(0) || p.Covered(1) {
		t.Fatalf("no stream carries a key in fallback mode: %+v", p)
	}
}

func TestPartitionSealsCondition(t *testing.T) {
	c := EquiChain(2, 0)
	c.Partition()
	defer func() {
		if recover() == nil {
			t.Fatal("mutating a partitioned condition must panic")
		}
	}()
	c.Equi(0, 1, 1, 1)
}

func TestSealOnOperatorBuild(t *testing.T) {
	c := EquiChain(2, 0)
	New(c, []stream.Time{1000, 1000})
	for name, mutate := range map[string]func(){
		"Equi": func() { c.Equi(0, 1, 1, 1) },
		"Band": func() { c.Band(0, 1, 1, 1, 1) },
		"Where": func() {
			c.Where([]int{0}, func([]*stream.Tuple) bool { return true })
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s after compile must panic", name)
				}
			}()
			mutate()
		}()
	}
	// Building a second operator from the sealed condition stays legal.
	New(c, []stream.Time{1000, 1000})
}
