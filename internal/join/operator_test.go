package join

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

func tup(src int, ts stream.Time, seq uint64, attrs ...float64) *stream.Tuple {
	return &stream.Tuple{TS: ts, Seq: seq, Src: src, Attrs: attrs}
}

// letter join: S1 and S2 tuples match when attribute 0 is equal (the Fig. 1
// letter pairing).
func letterCond() *Condition { return Cross(2).Equi(0, 0, 1, 0) }

func collectOp(cond *Condition, sizes []stream.Time) (*Operator, *[]stream.Result) {
	var out []stream.Result
	op := New(cond, sizes, WithEmit(func(r stream.Result) { out = append(out, r) }))
	return op, &out
}

// TestFig1MissedResult reproduces the C4 phenomenon of Fig. 1: without
// disorder handling, the out-of-order tuple C4 arrives after B6 has already
// advanced the watermark, so the matching result (C4, c3) is missed, while
// the sorted input produces it.
func TestFig1MissedResult(t *testing.T) {
	const cVal, bVal = 3.0, 2.0
	w := []stream.Time{2, 2}

	run := func(in []*stream.Tuple) int {
		op, out := collectOp(letterCond(), w)
		for _, e := range in {
			op.Process(e)
		}
		return len(*out)
	}

	disordered := []*stream.Tuple{
		tup(1, 3, 0, cVal), // c3
		tup(0, 6, 1, bVal), // B6 advances onT to 6
		tup(0, 4, 2, cVal), // C4 arrives late → no probe
	}
	if got := run(disordered); got != 0 {
		t.Fatalf("disordered run produced %d results, want 0 (missed)", got)
	}
	sorted := []*stream.Tuple{
		tup(1, 3, 0, cVal),
		tup(0, 4, 2, cVal), // C4 in order → joins c3 (3 ≥ 4−2)
		tup(0, 6, 1, bVal),
	}
	if got := run(sorted); got != 1 {
		t.Fatalf("sorted run produced %d results, want 1", got)
	}
}

// TestFig1LostInsteadOfOutOfOrder checks that Alg. 2 turns the would-be
// out-of-order result (E5, e7) of Fig. 1 into a loss: e7 arrives after D8,
// is detected via onT and skipped, keeping the output stream in order.
func TestFig1LostInsteadOfOutOfOrder(t *testing.T) {
	const eVal, dVal = 5.0, 4.0
	op, out := collectOp(letterCond(), []stream.Time{2, 2})
	op.Process(tup(0, 5, 0, eVal)) // E5
	op.Process(tup(0, 8, 1, dVal)) // D8
	op.Process(tup(1, 7, 2, eVal)) // e7 — out of order w.r.t. onT=8
	if len(*out) != 0 {
		t.Fatalf("produced %d results, want 0 (out-of-order result suppressed)", len(*out))
	}
	if op.OutOfOrder() != 1 {
		t.Fatalf("OutOfOrder = %d, want 1", op.OutOfOrder())
	}
}

// TestOutOfOrderTupleStillContributes checks lines 9–10 of Alg. 2: a late
// tuple within its window scope is inserted and derives future results.
func TestOutOfOrderTupleStillContributes(t *testing.T) {
	const cVal = 3.0
	op, out := collectOp(letterCond(), []stream.Time{4, 4})
	op.Process(tup(0, 6, 0, 9))    // B6 (no match), onT=6
	op.Process(tup(0, 4, 1, cVal)) // C4 late, but 4 > 6−4 → inserted
	op.Process(tup(1, 6, 2, cVal)) // c6 in order → probes S1 window, finds C4
	if len(*out) != 1 {
		t.Fatalf("produced %d results, want 1", len(*out))
	}
	if (*out)[0].TS != 6 {
		t.Fatalf("result ts = %d, want 6", (*out)[0].TS)
	}
}

// TestOutOfOrderBeyondWindowDropped: a late tuple strictly outside its own
// window scope is not inserted.
func TestOutOfOrderBeyondWindowDropped(t *testing.T) {
	op, _ := collectOp(letterCond(), []stream.Time{2, 2})
	op.Process(tup(0, 10, 0, 1))
	op.Process(tup(0, 7, 1, 1)) // 7 < 10−2 → dropped entirely
	if op.WindowLen(0) != 1 {
		t.Fatalf("window holds %d tuples, want 1", op.WindowLen(0))
	}
}

// TestOutOfOrderAtScopeBoundaryKept is the regression test for the expiry
// off-by-one: the window scope at watermark onT is the closed interval
// [onT − W, onT] (Expire removes only TS < onT − W), so a late tuple with
// TS exactly onT − W is still in scope, must be inserted, and must derive
// results for later arrivals.
func TestOutOfOrderAtScopeBoundaryKept(t *testing.T) {
	const key = 7.0
	w := []stream.Time{10, 10}
	op, out := collectOp(letterCond(), w)
	op.Process(tup(1, 10, 0, key)) // advances onT to 10
	op.Process(tup(0, 0, 1, key))  // late, TS == onT − W == 0: in scope
	if op.WindowLen(0) != 1 {
		t.Fatalf("boundary tuple dropped: window 0 holds %d tuples, want 1", op.WindowLen(0))
	}
	// An in-order arrival at onT probes window 0: Expire(10−10 = 0) keeps
	// the boundary tuple (expired means strictly older), so it must join.
	op.Process(tup(1, 10, 2, key))
	if len(*out) != 1 {
		t.Fatalf("boundary tuple derived %d results, want 1", len(*out))
	}
	if (*out)[0].TS != 10 {
		t.Fatalf("result ts = %d, want 10", (*out)[0].TS)
	}
}

// TestFig5Selectivity reproduces Fig. 5: W1=W2=3, S1 = A1,B2,C3 and
// S2 = b1,b2,b3. In-order processing yields 3 results out of 9 probed
// combinations (selectivity 1/3); if B2 arrives out of order the results
// derived from it are lost.
func TestFig5Selectivity(t *testing.T) {
	w := []stream.Time{3, 3}
	var cross, on int64
	hook := func(e *stream.Tuple, nCross, nOn int64, inOrder bool) {
		cross += nCross
		on += nOn
	}
	seqIn := []*stream.Tuple{
		tup(0, 1, 0, 1), // A1
		tup(1, 1, 1, 2), // b1
		tup(0, 2, 2, 2), // B2
		tup(1, 2, 3, 2), // b2
		tup(1, 3, 4, 2), // b3
		tup(0, 3, 5, 3), // C3
	}
	op := New(letterCond(), w, WithProcessedHook(hook))
	for _, e := range seqIn {
		op.Process(e)
	}
	// In-order: results are (B2,b1), (b2,B2), (b3,B2) → 3 results.
	if op.Results() != 3 {
		t.Fatalf("in-order results = %d, want 3", op.Results())
	}
	// The probed cross combinations follow Fig. 5a: 0+1+1+2+2+3 = 9, giving
	// the paper's selectivity 3/9 = 1/3.
	if cross != 9 {
		t.Fatalf("cross combinations = %d, want 9", cross)
	}
	if on != 3 {
		t.Fatalf("matched combinations = %d, want 3", on)
	}

	// Now B2 arrives out of order (after b3): its probe never happens and
	// only (C3,…) arrivals could still use it. Results drop.
	ooo := []*stream.Tuple{
		tup(0, 1, 0, 1), // A1
		tup(1, 1, 1, 2), // b1
		tup(1, 2, 3, 2), // b2
		tup(1, 3, 4, 2), // b3
		tup(0, 2, 2, 2), // B2 late
		tup(0, 3, 5, 3), // C3
	}
	op2, out2 := collectOp(letterCond(), w)
	for _, e := range ooo {
		op2.Process(e)
	}
	if len(*out2) >= 3 {
		t.Fatalf("out-of-order B2 should lose results, got %d", len(*out2))
	}
	_ = op2
}

// TestThreeWayEquiJoin checks a 3-way equi chain end to end.
func TestThreeWayEquiJoin(t *testing.T) {
	cond := EquiChain(3, 0)
	op, out := collectOp(cond, []stream.Time{10, 10, 10})
	op.Process(tup(0, 1, 0, 7))
	op.Process(tup(1, 2, 1, 7))
	op.Process(tup(2, 3, 2, 7)) // completes (7,7,7)
	op.Process(tup(2, 4, 3, 8)) // no match
	op.Process(tup(0, 5, 4, 7)) // another S0 seven → matches S1 and S2 sevens
	if len(*out) != 2 {
		t.Fatalf("results = %d, want 2", len(*out))
	}
	for _, r := range *out {
		if len(r.Tuples) != 3 {
			t.Fatal("3-way result must bind 3 tuples")
		}
		if r.Tuples[0].Attr(0) != r.Tuples[1].Attr(0) || r.Tuples[1].Attr(0) != r.Tuples[2].Attr(0) {
			t.Fatal("equi chain violated")
		}
	}
}

// TestStarJoin checks the Q×4-style star condition.
func TestStarJoin(t *testing.T) {
	cond := Star(4, []int{0, 1, 2}, []int{0, 0, 0})
	op, out := collectOp(cond, []stream.Time{10, 10, 10, 10})
	op.Process(tup(1, 1, 0, 5))       // S2 a1=5
	op.Process(tup(2, 2, 1, 6))       // S3 a2=6
	op.Process(tup(3, 3, 2, 7))       // S4 a3=7
	op.Process(tup(0, 4, 3, 5, 6, 7)) // S1 binds all spokes
	op.Process(tup(0, 5, 4, 5, 6, 8)) // a3 mismatch
	op.Process(tup(3, 6, 5, 8))       // S4 a3=8 → matches second S1 tuple
	if len(*out) != 2 {
		t.Fatalf("results = %d, want 2", len(*out))
	}
}

// TestGenericPredicate checks the UDF path (dist()-style condition).
func TestGenericPredicate(t *testing.T) {
	cond := Cross(2).Where([]int{0, 1}, func(a []*stream.Tuple) bool {
		d := a[0].Attr(0) - a[1].Attr(0)
		return d*d < 25
	})
	op, out := collectOp(cond, []stream.Time{10, 10})
	op.Process(tup(0, 1, 0, 10))
	op.Process(tup(1, 2, 1, 12)) // |10−12| < 5 → match
	op.Process(tup(1, 3, 2, 30)) // no match
	if len(*out) != 1 {
		t.Fatalf("results = %d, want 1", len(*out))
	}
}

// TestCountingFastPathMatchesEnumeration: the counting-only probe (no emit)
// must agree with full enumeration on random equi workloads.
func TestCountingFastPathMatchesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() []*stream.Tuple {
			var in []*stream.Tuple
			ts := stream.Time(0)
			for i := 0; i < 150; i++ {
				ts += stream.Time(rng.Intn(3))
				in = append(in, tup(rng.Intn(3), ts, uint64(i), float64(rng.Intn(4))))
			}
			return in
		}
		in := mk()
		cond := EquiChain(3, 0)
		counting := New(cond, []stream.Time{20, 20, 20})
		var emitted int64
		enumerating := New(cond, []stream.Time{20, 20, 20},
			WithEmit(func(stream.Result) { emitted++ }))
		for _, e := range in {
			cp := *e
			counting.Process(&cp)
			cp2 := *e
			enumerating.Process(&cp2)
		}
		return counting.Results() == emitted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestAgainstBruteForce compares operator output on in-order input with a
// brute-force evaluation of the window semantics of Sec. II-A.
func TestAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := []stream.Time{5, 5}
		cond := letterCond()
		var in []*stream.Tuple
		ts := stream.Time(0)
		for i := 0; i < 120; i++ {
			ts += stream.Time(rng.Intn(3))
			in = append(in, tup(rng.Intn(2), ts, uint64(i), float64(rng.Intn(3))))
		}
		op, out := collectOp(cond, w)
		for _, e := range in {
			op.Process(e)
		}
		// Brute force: every pair (a from S0, b from S1) joins iff
		// a.ts−W1 ≤ b.ts ≤ a.ts+W0 and the condition passes.
		var want int
		for _, a := range in {
			if a.Src != 0 {
				continue
			}
			for _, b := range in {
				if b.Src != 1 || a.Attr(0) != b.Attr(0) {
					continue
				}
				if b.TS >= a.TS-w[1] && b.TS <= a.TS+w[0] {
					want++
				}
			}
		}
		return len(*out) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestProcessedHookCounts(t *testing.T) {
	var inOrderN, oooN int
	hook := func(e *stream.Tuple, nCross, nOn int64, inOrder bool) {
		if inOrder {
			inOrderN++
		} else {
			oooN++
		}
	}
	op := New(letterCond(), []stream.Time{5, 5}, WithProcessedHook(hook))
	op.Process(tup(0, 10, 0, 1))
	op.Process(tup(1, 3, 1, 1)) // late
	op.Process(tup(1, 11, 2, 1))
	if inOrderN != 2 || oooN != 1 {
		t.Fatalf("hook counts = %d/%d, want 2/1", inOrderN, oooN)
	}
	if op.Processed() != 3 {
		t.Fatalf("Processed = %d", op.Processed())
	}
}

func TestHighWatermark(t *testing.T) {
	op, _ := collectOp(letterCond(), []stream.Time{5, 5})
	op.Process(tup(0, 42, 0, 1))
	op.Process(tup(1, 17, 1, 1))
	if op.HighWatermark() != 42 {
		t.Fatalf("onT = %d, want 42", op.HighWatermark())
	}
}
