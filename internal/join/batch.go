package join

import "repro/internal/stream"

// Columnar batch entry points. A batch is a short run of synchronizer output
// released together; the operator consumes it with exactly the per-tuple
// semantics of Process/ProcessAt, tuple by tuple in slice order, so results,
// watermark trajectory and profiler callbacks are independent of where the
// runtime cuts batch boundaries. That independence is the batching layer's
// correctness contract: callers may cut batches anywhere (including
// batch-of-1) as long as they flush before any decision that reads operator
// state — watermark reads, adaptation boundaries, checkpoints, quiescence.
// What batching buys is amortization around the kernel, not different
// semantics: one call (and, in the sharded runtime, one channel message and
// one cache-warm pass over the compiled plan) covers many tuples.

// ProcessBatch consumes a batch in order, tracking the watermark from the
// tuples themselves exactly as Process does, and returns the total number of
// results derived.
func (o *Operator) ProcessBatch(es []*stream.Tuple) int64 {
	var total int64
	for _, e := range es {
		wm := o.onT
		if e.TS > wm {
			wm = e.TS
		}
		total += o.ProcessAt(e, wm)
	}
	return total
}

// ProcessBatchAt consumes a batch under externally supplied per-tuple
// watermarks (the sharded runtime's globally synchronized watermarks; see
// ProcessAt). onTuple, when non-nil, is invoked with each tuple's index and
// derived result count after that tuple is fully processed and before the
// next one starts — the ordering contract per-result emit callbacks rely on
// to attribute results to the in-flight tuple.
func (o *Operator) ProcessBatchAt(es []*stream.Tuple, wms []stream.Time, onTuple func(i int, nOn int64)) {
	for i, e := range es {
		nOn := o.ProcessAt(e, wms[i])
		if onTuple != nil {
			onTuple(i, nOn)
		}
	}
}
