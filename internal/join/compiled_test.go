package join

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

// randCond builds a random connected m-way condition: each stream i > 0 is
// linked to an earlier stream by an equi or band predicate, then extra
// edges, a generic WhereExpr and a closure-only Where are sprinkled on top.
func randCond(rng *rand.Rand, m int) *Condition {
	c := Cross(m)
	for i := 1; i < m; i++ {
		j := rng.Intn(i)
		if rng.Intn(2) == 0 {
			c.Equi(j, rng.Intn(2), i, rng.Intn(2))
		} else {
			c.Band(j, rng.Intn(2), i, rng.Intn(2), float64(rng.Intn(3)))
		}
	}
	if rng.Intn(2) == 0 { // extra redundant edge
		a, b := rng.Intn(m), rng.Intn(m)
		if a != b {
			c.Equi(a, 0, b, 0)
		}
	}
	if rng.Intn(2) == 0 { // compilable generic
		c.WhereExpr(Le(Abs(Sub(Attr(0, 1), Attr(m-1, 1))), ConstOf(float64(rng.Intn(4)))))
	}
	if rng.Intn(3) == 0 { // closure-only generic: forces the Eval escape hatch
		c.Where([]int{0, m - 1}, func(a []*stream.Tuple) bool {
			return a[0].Attrs[0] <= a[m-1].Attrs[0]+2
		})
	}
	return c
}

func randTuples(rng *rand.Rand, m, n int) []*stream.Tuple {
	es := make([]*stream.Tuple, n)
	for i := range es {
		ts := stream.Time(i)
		if rng.Intn(4) == 0 && i > 3 { // out-of-order arrival
			ts = stream.Time(i - 1 - rng.Intn(3))
		}
		es[i] = tup(rng.Intn(m), ts, uint64(i),
			float64(rng.Intn(5)), float64(rng.Intn(5)))
	}
	return es
}

func resultSig(r stream.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "@%d:", r.TS)
	for _, t := range r.Tuples {
		fmt.Fprintf(&b, "(%d,%d)", t.Src, t.Seq)
	}
	return b.String()
}

// TestCompiledCountableTail4Way pins the compiled countableTail/tailFused
// flags on a 4-way mixed plan — equi chain ends, a band link in the middle,
// and a generic predicate over streams {0,1}:
//
//	S0.a0 = S1.a0,  |S1.a1 − S2.a1| ≤ 1.5,  S2.a0 = S3.a0,  S0.a1 < S1.a1
//
// The check anchors on the step binding the later of {0,1}, killing every
// tail that contains it; the band step cannot count its tail because the
// final equi probe reads the band candidate itself — but exactly that shape
// fuses (tailFused with one per-candidate probe); and the pure single-equi
// last step of the arrival-0/1 plans is tail-countable.
func TestCompiledCountableTail4Way(t *testing.T) {
	cond := Cross(4).
		Equi(0, 0, 1, 0).
		Band(1, 1, 2, 1, 1.5).
		Equi(2, 0, 3, 0).
		WhereExpr(Lt(Attr(0, 1), Attr(1, 1)))
	op := New(cond, []stream.Time{10, 10, 10, 10})

	type pin struct {
		order     []int
		countable []bool
		fused     []bool
	}
	want := []pin{
		// Arrival 0: [1 2 3]; the generic lands on the step binding 1, the
		// band step's tail hangs on its own candidate (fused), the final
		// equi is countable.
		0: {[]int{1, 2, 3}, []bool{false, false, true}, []bool{false, true, false}},
		// Arrival 1: equi preferred over band → [0 2 3]; same tail shape.
		1: {[]int{0, 2, 3}, []bool{false, false, true}, []bool{false, true, false}},
		// Arrivals 2/3: the check binds last (stream 0 joins at the end), so
		// no tail is countable and nothing fuses behind a check.
		2: {[]int{3, 1, 0}, []bool{false, false, false}, []bool{false, false, false}},
		3: {[]int{2, 1, 0}, []bool{false, false, false}, []bool{false, false, false}},
	}
	for src, w := range want {
		steps := op.cplans[src].steps
		for i := range steps {
			if steps[i].stream != w.order[i] {
				t.Errorf("arrival %d step %d: binds stream %d, want %d", src, i, steps[i].stream, w.order[i])
			}
			if steps[i].countableTail != w.countable[i] {
				t.Errorf("arrival %d step %d (stream %d): countableTail %v, want %v",
					src, i, steps[i].stream, steps[i].countableTail, w.countable[i])
			}
			if steps[i].tailFused != w.fused[i] {
				t.Errorf("arrival %d step %d (stream %d): tailFused %v, want %v",
					src, i, steps[i].stream, steps[i].tailFused, w.fused[i])
			}
		}
	}
}

// TestCompiledMatchesInterpreted drives random workloads through the
// compiled probe kernel and the interpreted reference, asserting the exact
// emitted result sequence (order included) and, with emit disabled (which
// re-enables the countable fast paths), the exact per-tuple counts.
func TestCompiledMatchesInterpreted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(3)
		cond := randCond(rng, m)
		sizes := make([]stream.Time, m)
		for i := range sizes {
			sizes[i] = stream.Time(3 + rng.Intn(5))
		}
		es := randTuples(rng, m, 300)

		var a, b []string
		opC := New(cond, sizes, WithEmit(func(r stream.Result) { a = append(a, resultSig(r)) }))
		opI := New(cond, sizes, WithEmit(func(r stream.Result) { b = append(b, resultSig(r)) }))
		opI.interp = true
		for _, e := range es {
			opC.Process(e)
			opI.Process(e)
		}
		if len(a) != len(b) {
			t.Logf("seed %d: %d results compiled, %d interpreted", seed, len(a), len(b))
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				t.Logf("seed %d: result %d: compiled %s, interpreted %s", seed, i, a[i], b[i])
				return false
			}
		}

		// Counting-only mode: the countable/fused fast paths come alive.
		cntC := New(cond, sizes)
		cntI := New(cond, sizes)
		cntI.interp = true
		for i, e := range es {
			wm := cntC.HighWatermark()
			if e.TS > wm {
				wm = e.TS
			}
			nc := cntC.ProcessAt(e, wm)
			ni := cntI.ProcessAt(e, wm)
			if nc != ni {
				t.Logf("seed %d tuple %d: compiled count %d, interpreted %d", seed, i, nc, ni)
				return false
			}
		}
		if cntC.Results() != int64(len(a)) {
			t.Logf("seed %d: counted %d, emitted %d", seed, cntC.Results(), len(a))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
