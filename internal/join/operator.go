package join

import (
	"repro/internal/stream"
	"repro/internal/window"
)

// ProcessedFunc is the Tuple-Productivity Profiler hook invoked after every
// tuple is processed by the operator (line 11 of Alg. 2). For in-order tuples
// nCross is the cross-join result size n×(e) the tuple would derive given the
// current window contents, and nOn is the number n^on(e) of results actually
// derived; for out-of-order tuples no probing happened and both counts are 0.
type ProcessedFunc func(e *stream.Tuple, nCross, nOn int64, inOrder bool)

// EmitFunc receives each produced join result in production order.
type EmitFunc func(stream.Result)

// CountEmitFunc receives, per in-order arrival that derived results, the
// result timestamp and the number of results produced. It lets downstream
// accounting (recall measurement, the Result-Size Monitor) track result
// sizes without materializing the — potentially enormous — result tuples,
// keeping the operator's counting fast path usable.
type CountEmitFunc func(ts stream.Time, n int64)

// Operator is the MSWJ operator of Alg. 2. It expects its input — the merged
// output of the Synchronizer — to be mostly timestamp-ordered; residual
// out-of-order tuples are detected with onT and handled per lines 9–10.
type Operator struct {
	cond    *Condition
	plans   []plan
	windows []*window.Window
	onT     stream.Time

	emit        EmitFunc
	countEmit   CountEmitFunc
	onProcessed ProcessedFunc

	results     int64
	outOfOrder  int64
	processed   int64
	assignBuf   []*stream.Tuple
	countsBuf   []int64
	onlyCounted bool
	// scratch holds one reusable candidate buffer per probe level, so the
	// multi-lookup filter path never allocates in steady state. Levels are
	// independent because search at level l only consumes candidates of
	// levels ≤ l.
	scratch [][]*stream.Tuple
}

// Option customizes the operator.
type Option func(*Operator)

// WithEmit registers a callback receiving every produced result. Without it
// the operator only counts results, enabling a faster counting-only probe
// path for purely equi-join conditions.
func WithEmit(f EmitFunc) Option { return func(o *Operator) { o.emit = f } }

// WithCountEmit registers a per-arrival result-count callback. Unlike
// WithEmit it keeps the counting-only probe fast path enabled.
func WithCountEmit(f CountEmitFunc) Option { return func(o *Operator) { o.countEmit = f } }

// WithProcessedHook registers the productivity profiler hook.
func WithProcessedHook(f ProcessedFunc) Option { return func(o *Operator) { o.onProcessed = f } }

// New creates an MSWJ operator with one sliding window per stream. sizes[i]
// is the window extent W_i for stream i and must be positive.
func New(cond *Condition, sizes []stream.Time, opts ...Option) *Operator {
	if len(sizes) != cond.M {
		panic("join: window sizes must match condition arity")
	}
	idx := cond.IndexedAttrs()
	o := &Operator{
		cond:      cond,
		plans:     buildPlans(cond),
		windows:   make([]*window.Window, cond.M),
		assignBuf: make([]*stream.Tuple, cond.M),
		countsBuf: make([]int64, cond.M),
		scratch:   make([][]*stream.Tuple, cond.M),
	}
	for i, w := range sizes {
		if w <= 0 {
			panic("join: window size must be positive")
		}
		o.windows[i] = window.New(w, idx[i]...)
	}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// M returns the number of input streams.
func (o *Operator) M() int { return o.cond.M }

// SetEmit installs (or clears) the result callback after construction. A
// non-nil emit disables the counting-only probe fast path.
func (o *Operator) SetEmit(f EmitFunc) { o.emit = f }

// Results returns the total number of results produced so far.
func (o *Operator) Results() int64 { return o.results }

// OutOfOrder returns how many received tuples were out of order w.r.t. onT.
func (o *Operator) OutOfOrder() int64 { return o.outOfOrder }

// Processed returns the total number of received tuples.
func (o *Operator) Processed() int64 { return o.processed }

// HighWatermark returns onT, the maximum timestamp among received tuples.
func (o *Operator) HighWatermark() stream.Time { return o.onT }

// WindowLen returns the current cardinality of the window on stream i.
func (o *Operator) WindowLen(i int) int { return o.windows[i].Len() }

// Process consumes one tuple per Alg. 2.
func (o *Operator) Process(e *stream.Tuple) {
	o.processed++
	if e.TS >= o.onT {
		// In-order tuple: advance the watermark, expire, probe, insert.
		if e.TS > o.onT {
			o.onT = e.TS
		}
		var nCross int64 = 1
		for j, w := range o.windows {
			if j == e.Src {
				continue
			}
			w.Expire(e.TS - w.Size())
			nCross *= int64(w.Len())
		}
		nOn := o.probe(e)
		o.results += nOn
		if o.countEmit != nil && nOn > 0 {
			o.countEmit(e.TS, nOn)
		}
		o.windows[e.Src].Insert(e)
		if o.onProcessed != nil {
			o.onProcessed(e, nCross, nOn, true)
		}
		return
	}
	// Out-of-order tuple: skip expiration and probing. Insert only if it is
	// still within the current scope of its own window so it can contribute
	// to future results (lines 9–10).
	o.outOfOrder++
	if e.TS > o.onT-o.windows[e.Src].Size() {
		o.windows[e.Src].Insert(e)
	}
	if o.onProcessed != nil {
		o.onProcessed(e, 0, 0, false)
	}
}

// probe joins e against the windows on all other streams and returns the
// number of produced results.
func (o *Operator) probe(e *stream.Tuple) int64 {
	for i := range o.assignBuf {
		o.assignBuf[i] = nil
	}
	o.assignBuf[e.Src] = e
	return o.search(o.plans[e.Src], 0, o.assignBuf)
}

// search enumerates (or counts) assignments level by level.
func (o *Operator) search(p plan, lvl int, assign []*stream.Tuple) int64 {
	if lvl == len(p) {
		if o.emit != nil {
			tuples := make([]*stream.Tuple, len(assign))
			copy(tuples, assign)
			o.emit(stream.NewResult(tuples))
		}
		return 1
	}
	st := p[lvl]
	// Counting-only fast path: when the remaining steps are mutually
	// independent and no results need materializing, multiply counts.
	if st.countableTail && o.emit == nil {
		var prod int64 = 1
		for j := lvl; j < len(p); j++ {
			prod *= o.candidateCount(p[j], assign)
			if prod == 0 {
				return 0
			}
		}
		return prod
	}
	var n int64
	for _, cand := range o.candidates(st, lvl, assign) {
		assign[st.stream] = cand
		if o.stepChecks(st, assign) {
			n += o.search(p, lvl+1, assign)
		}
	}
	assign[st.stream] = nil
	return n
}

// candidates returns the window tuples on st.stream compatible with the
// bound lookups of the step. With at least one lookup the first index is
// probed and remaining lookups filter into the level's reusable scratch
// buffer; with none the whole window scans.
func (o *Operator) candidates(st step, lvl int, assign []*stream.Tuple) []*stream.Tuple {
	w := o.windows[st.stream]
	if len(st.lookups) == 0 {
		return w.All()
	}
	l0 := st.lookups[0]
	base := w.Match(l0.ownAttr, assign[l0.boundStream].Attr(l0.boundAttr))
	if len(st.lookups) == 1 {
		return base
	}
	old := o.scratch[lvl]
	out := old[:0]
	for _, cand := range base {
		ok := true
		for _, l := range st.lookups[1:] {
			if cand.Attr(l.ownAttr) != assign[l.boundStream].Attr(l.boundAttr) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, cand)
		}
	}
	// Nil the stale tail from the previous probe so the scratch buffer does
	// not pin long-expired tuples against the GC.
	for i := len(out); i < len(old); i++ {
		old[i] = nil
	}
	o.scratch[lvl] = out
	return out
}

// candidateCount counts candidates without materializing them when possible.
func (o *Operator) candidateCount(st step, assign []*stream.Tuple) int64 {
	w := o.windows[st.stream]
	if len(st.lookups) == 0 {
		return int64(w.Len())
	}
	l0 := st.lookups[0]
	base := w.Match(l0.ownAttr, assign[l0.boundStream].Attr(l0.boundAttr))
	if len(st.lookups) == 1 {
		return int64(len(base))
	}
	var n int64
	for _, cand := range base {
		ok := true
		for _, l := range st.lookups[1:] {
			if cand.Attr(l.ownAttr) != assign[l.boundStream].Attr(l.boundAttr) {
				ok = false
				break
			}
		}
		if ok {
			n++
		}
	}
	return n
}

// stepChecks evaluates the generic predicates that became fully bound.
func (o *Operator) stepChecks(st step, assign []*stream.Tuple) bool {
	for _, gi := range st.checks {
		if !o.cond.Generics[gi].Eval(assign) {
			return false
		}
	}
	return true
}
