package join

import (
	"math"

	"repro/internal/stream"
	"repro/internal/window"
)

// ProcessedFunc is the Tuple-Productivity Profiler hook invoked after every
// tuple is processed by the operator (line 11 of Alg. 2). For in-order tuples
// nCross is the cross-join result size n×(e) the tuple would derive given the
// current window contents, and nOn is the number n^on(e) of results actually
// derived; for out-of-order tuples no probing happened and both counts are 0.
type ProcessedFunc func(e *stream.Tuple, nCross, nOn int64, inOrder bool)

// EmitFunc receives each produced join result in production order.
type EmitFunc func(stream.Result)

// CountEmitFunc receives, per in-order arrival that derived results, the
// result timestamp and the number of results produced. It lets downstream
// accounting (recall measurement, the Result-Size Monitor) track result
// sizes without materializing the — potentially enormous — result tuples,
// keeping the operator's counting fast path usable.
type CountEmitFunc func(ts stream.Time, n int64)

// Operator is the MSWJ operator of Alg. 2. It expects its input — the merged
// output of the Synchronizer — to be mostly timestamp-ordered; residual
// out-of-order tuples are detected with onT and handled per lines 9–10.
type Operator struct {
	cond    *Condition
	plans   []plan
	cplans  []cplan
	windows []*window.Window
	onT     stream.Time
	// interp forces the interpreted (symbolic-plan) probe path. It exists for
	// the differential tests that pin the compiled kernel bit-for-bit against
	// the reference execution; production probing always runs compiled.
	interp bool

	emit        EmitFunc
	countEmit   CountEmitFunc
	onProcessed ProcessedFunc

	results     int64
	outOfOrder  int64
	processed   int64
	assignBuf   []*stream.Tuple
	countsBuf   []int64
	onlyCounted bool
	// scratch holds one reusable candidate buffer per probe level, so the
	// multi-lookup filter path never allocates in steady state. Levels are
	// independent because search at level l only consumes candidates of
	// levels ≤ l.
	scratch [][]*stream.Tuple
}

// Option customizes the operator.
type Option func(*Operator)

// WithEmit registers a callback receiving every produced result. Without it
// the operator only counts results, enabling a faster counting-only probe
// path for conditions resolved entirely by indexes (equi and band
// predicates, no generic residual).
func WithEmit(f EmitFunc) Option { return func(o *Operator) { o.emit = f } }

// WithCountEmit registers a per-arrival result-count callback. Unlike
// WithEmit it keeps the counting-only probe fast path enabled.
func WithCountEmit(f CountEmitFunc) Option { return func(o *Operator) { o.countEmit = f } }

// WithProcessedHook registers the productivity profiler hook.
func WithProcessedHook(f ProcessedFunc) Option { return func(o *Operator) { o.onProcessed = f } }

// New creates an MSWJ operator with one sliding window per stream. sizes[i]
// is the window extent W_i for stream i and must be positive.
func New(cond *Condition, sizes []stream.Time, opts ...Option) *Operator {
	if len(sizes) != cond.M {
		panic("join: window sizes must match condition arity")
	}
	cond.seal()
	idx := cond.IndexedAttrs()
	rng := cond.RangeAttrs()
	o := &Operator{
		cond:      cond,
		plans:     buildPlans(cond),
		windows:   make([]*window.Window, cond.M),
		assignBuf: make([]*stream.Tuple, cond.M),
		countsBuf: make([]int64, cond.M),
		scratch:   make([][]*stream.Tuple, cond.M),
	}
	for i, w := range sizes {
		if w <= 0 {
			panic("join: window size must be positive")
		}
		o.windows[i] = window.NewIndexed(w, idx[i], rng[i])
	}
	o.cplans = compilePlans(cond, o.plans, o.windows, compileProgs(cond))
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// M returns the number of input streams.
func (o *Operator) M() int { return o.cond.M }

// SetEmit installs (or clears) the result callback after construction. A
// non-nil emit disables the counting-only probe fast path.
func (o *Operator) SetEmit(f EmitFunc) { o.emit = f }

// Results returns the total number of results produced so far.
func (o *Operator) Results() int64 { return o.results }

// OutOfOrder returns how many received tuples were out of order w.r.t. onT.
func (o *Operator) OutOfOrder() int64 { return o.outOfOrder }

// Processed returns the total number of received tuples.
func (o *Operator) Processed() int64 { return o.processed }

// HighWatermark returns onT, the maximum timestamp among received tuples.
func (o *Operator) HighWatermark() stream.Time { return o.onT }

// WindowLen returns the current cardinality of the window on stream i.
func (o *Operator) WindowLen(i int) int { return o.windows[i].Len() }

// Process consumes one tuple per Alg. 2, tracking the watermark onT from
// the tuples it receives.
func (o *Operator) Process(e *stream.Tuple) {
	wm := o.onT
	if e.TS > wm {
		wm = e.TS
	}
	o.ProcessAt(e, wm)
}

// ProcessAt consumes one tuple under an externally supplied watermark
// wm = max(watermark before e, e.TS). Sharded execution uses it to impose
// the *global* synchronized-stream watermark on every shard operator, so a
// tuple that is out of order globally is treated as out of order in its
// shard even when the shard itself has not seen the newer tuples (they were
// routed elsewhere). Process is the single-operator special case where the
// operator's own onT is the watermark. It returns the number of results the
// tuple derived (0 for out-of-order tuples).
func (o *Operator) ProcessAt(e *stream.Tuple, wm stream.Time) int64 {
	o.processed++
	if wm > o.onT {
		o.onT = wm
	}
	if e.TS >= wm {
		// In-order tuple: expire, probe, insert. The arriving stream's own
		// window is expired too — probes never consult it, and any tuple it
		// drops would be expired by the next probing arrival anyway (whose
		// TS is ≥ wm), so results are unaffected; without this, a shard
		// whose probes all come from one stream would grow that stream's
		// window without bound.
		var nCross int64 = 1
		for j, w := range o.windows {
			w.Expire(e.TS - w.Size())
			if j != e.Src {
				nCross *= int64(w.Len())
			}
		}
		nOn := o.probe(e)
		o.results += nOn
		if o.countEmit != nil && nOn > 0 {
			o.countEmit(e.TS, nOn)
		}
		o.windows[e.Src].Insert(e)
		if o.onProcessed != nil {
			o.onProcessed(e, nCross, nOn, true)
		}
		return nOn
	}
	// Out-of-order tuple: skip expiration and probing. Insert only if it is
	// still within the current scope of its own window so it can contribute
	// to future results (lines 9–10). The scope at watermark wm is the
	// closed interval [wm − W, wm] — Expire removes only TS < wm − W, so
	// a late tuple at exactly wm − W is still in scope and must be kept.
	o.outOfOrder++
	o.insertInScope(e, wm)
	if o.onProcessed != nil {
		o.onProcessed(e, 0, 0, false)
	}
	return 0
}

// insertInScope expires e's own window up to the watermark and inserts e
// if it is still inside the window scope [wm − W, wm]. The expiry keeps
// windows that only ever receive inserts (replica/broadcast shards, late
// tuples) bounded by the logical window extent; it cannot change results,
// because every future probe re-expires with a bound ≥ wm − W first.
func (o *Operator) insertInScope(e *stream.Tuple, wm stream.Time) {
	w := o.windows[e.Src]
	w.Expire(wm - w.Size())
	if e.TS >= wm-w.Size() {
		w.Insert(e)
	}
}

// InsertAt inserts e into its stream's window under global watermark wm
// without probing or counting. It is the sharded runtime's replica path:
// band-overlap neighbours and broadcast copies must be *matchable* in a
// shard without deriving (or double-counting) results there. The same
// in-scope check as the out-of-order path applies; for globally in-order
// tuples (e.TS == wm) it passes trivially, mirroring the unconditional
// insert of the in-order path.
func (o *Operator) InsertAt(e *stream.Tuple, wm stream.Time) {
	if wm > o.onT {
		o.onT = wm
	}
	o.insertInScope(e, wm)
}

// probe joins e against the windows on all other streams and returns the
// number of produced results. The compiled kernel (compiled.go) and the
// interpreted reference path enumerate in the identical order and agree
// bit-for-bit; tests flip interp to pin that.
func (o *Operator) probe(e *stream.Tuple) int64 {
	for i := range o.assignBuf {
		o.assignBuf[i] = nil
	}
	o.assignBuf[e.Src] = e
	if o.interp {
		return o.search(o.plans[e.Src], 0, o.assignBuf)
	}
	return o.searchC(&o.cplans[e.Src], 0, o.assignBuf)
}

// search enumerates (or counts) assignments level by level.
func (o *Operator) search(p plan, lvl int, assign []*stream.Tuple) int64 {
	if lvl == len(p) {
		if o.emit != nil {
			tuples := make([]*stream.Tuple, len(assign))
			copy(tuples, assign)
			o.emit(stream.NewResult(tuples))
		}
		return 1
	}
	st := &p[lvl]
	// Counting-only fast path: when the remaining steps are mutually
	// independent and no results need materializing, multiply counts.
	if st.countableTail && o.emit == nil {
		var prod int64 = 1
		for j := lvl; j < len(p); j++ {
			prod *= o.candidateCount(&p[j], assign)
			if prod == 0 {
				return 0
			}
		}
		return prod
	}
	var n int64
	for _, cand := range o.candidates(st, lvl, assign) {
		assign[st.stream] = cand
		if o.stepChecks(st, assign) {
			n += o.search(p, lvl+1, assign)
		}
	}
	assign[st.stream] = nil
	return n
}

// baseCandidates selects the step's base candidate set — the first hash
// lookup when the step has equi predicates (generally most selective), the
// first range lookup otherwise, the whole window with neither — and
// returns the residual lookups still to be filtered. Both Match and the
// range probe return contiguous views of index storage, so nothing is
// copied here.
//
// A range probe is a *superset* pre-filter: its bounds c ± eps are rounded
// and therefore widened by a small relative slack (bandRange), and ALL
// band lookups — including the one just probed — stay in the residual set
// so the exact difference-form check of stepFilter decides membership.
// This keeps planned execution bit-for-bit consistent with the
// Condition.Matches reference semantics (and with internal/dist's residual
// band filters) even for attribute values within rounding distance of a
// band edge.
func (o *Operator) baseCandidates(st *step, assign []*stream.Tuple) (base []*stream.Tuple, extraEq []lookup, extraBands []bandLookup) {
	w := o.windows[st.stream]
	switch {
	case len(st.lookups) > 0:
		l0 := st.lookups[0]
		base = w.Match(l0.ownAttr, assign[l0.boundStream].Attr(l0.boundAttr))
		return base, st.lookups[1:], st.bands
	case len(st.bands) > 0:
		b0 := st.bands[0]
		lo, hi, ok := bandRange(assign[b0.boundStream].Attr(b0.boundAttr), b0.eps)
		if !ok {
			return nil, nil, nil
		}
		return w.MatchRange(b0.ownAttr, lo, hi), nil, st.bands
	default:
		return w.All(), nil, nil
	}
}

// bandRange returns index-probe bounds guaranteed to cover every value a
// with fl(a − c) ∈ [−eps, eps]. The naive bounds fl(c−eps), fl(c+eps) can
// round past values the difference form accepts (and vice versa), so they
// are widened by a relative slack of ~5 ulps of the larger magnitude; the
// exact difference check in stepFilter then discards the overshoot. A
// non-finite center can never band-match a stored (finite) key and
// reports !ok.
func bandRange(c, eps float64) (lo, hi float64, ok bool) {
	if math.IsNaN(c) || math.IsInf(c, 0) {
		return 0, 0, false
	}
	slack := (math.Abs(c) + eps) * 1e-15
	return c - eps - slack, c + eps + slack, true
}

// ProbeRange exposes the widened band-probe bounds to other executors of
// the same band semantics (internal/dist's stage windows): a range index
// probed with [lo, hi] is guaranteed to return a superset of the tuples
// whose exact difference form |a − c| ≤ eps holds, so callers keep the
// exact check as a residual filter. ok is false when c can never
// band-match (NaN or ±Inf).
func ProbeRange(c, eps float64) (lo, hi float64, ok bool) {
	return bandRange(c, eps)
}

// stepFilter applies the step's residual lookups to one candidate.
func stepFilter(cand *stream.Tuple, eqs []lookup, bands []bandLookup, assign []*stream.Tuple) bool {
	for _, l := range eqs {
		if cand.Attr(l.ownAttr) != assign[l.boundStream].Attr(l.boundAttr) {
			return false
		}
	}
	for _, b := range bands {
		d := cand.Attr(b.ownAttr) - assign[b.boundStream].Attr(b.boundAttr)
		// Negated form: NaN (all comparisons false) never band-matches.
		if !(d >= -b.eps && d <= b.eps) {
			return false
		}
	}
	return true
}

// candidates returns the window tuples on st.stream compatible with the
// bound lookups of the step, filtering residual lookups into the level's
// reusable scratch buffer.
func (o *Operator) candidates(st *step, lvl int, assign []*stream.Tuple) []*stream.Tuple {
	base, extraEq, extraBands := o.baseCandidates(st, assign)
	if len(extraEq) == 0 && len(extraBands) == 0 {
		return base
	}
	old := o.scratch[lvl]
	out := old[:0]
	for _, cand := range base {
		if stepFilter(cand, extraEq, extraBands, assign) {
			out = append(out, cand)
		}
	}
	// Nil the stale tail from the previous probe so the scratch buffer does
	// not pin long-expired tuples against the GC.
	for i := len(out); i < len(old); i++ {
		old[i] = nil
	}
	o.scratch[lvl] = out
	return out
}

// candidateCount counts candidates without materializing them: a pure equi
// step counts its hash bucket in O(1), a band step counts the (widened)
// range view through the exact residual filter in O(box matches).
func (o *Operator) candidateCount(st *step, assign []*stream.Tuple) int64 {
	base, extraEq, extraBands := o.baseCandidates(st, assign)
	if len(extraEq) == 0 && len(extraBands) == 0 {
		return int64(len(base))
	}
	var n int64
	for _, cand := range base {
		if stepFilter(cand, extraEq, extraBands, assign) {
			n++
		}
	}
	return n
}

// stepChecks evaluates the generic predicates that became fully bound.
func (o *Operator) stepChecks(st *step, assign []*stream.Tuple) bool {
	for _, gi := range st.checks {
		if !o.cond.Generics[gi].Eval(assign) {
			return false
		}
	}
	return true
}
