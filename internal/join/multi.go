package join

// The shared-window multi-query probe kernel. A Multi owns ONE set of
// sliding windows (with the union of every registered query's hash/range
// index attributes) and executes N queries' probes against it: every
// arrival expires and inserts ONCE regardless of query count, and one probe
// pass per arrival fans result counts (and materialized results) out to all
// registered queries.
//
// # Prefix grouping
//
// Queries are grouped into *probe classes* by their equi/band skeleton — the
// ordered (Equis, Bands) lists, which are all the planner's pickNext and
// lookup assignment ever consult. Every member of a class therefore has the
// IDENTICAL compiled probe plan (step order, index probes, residual
// equi/band filters, equivalence-class rewrite): the class enumerates
// candidates once and members diverge only at their generic residual checks,
// evaluated per candidate under a per-member alive bitmask. A branch is
// pruned as soon as no member remains alive on it, so per-arrival probe cost
// grows with the number of distinct probe prefixes, not with query count.
//
// Within a class, members whose FULL condition is identical (same generics,
// as established by the caller-supplied residual signature) collapse into
// one *residual class*: their checks run once and the resulting count is
// credited to every member — N identical queries cost one probe total.
//
// # Bit-for-bit equivalence with standalone operators
//
// Each member's result stream (order included) and per-arrival counts are
// exactly those of a standalone Operator compiled from its condition over
// the same release sequence:
//
//   - the step order depends only on equi/band predicates (pickNext never
//     reads generics), so the shared class plan IS each member's standalone
//     plan;
//   - generic checks are assigned to the earliest step binding all their
//     streams — the same rule buildPlan applies — so members' residuals run
//     at the same levels as standalone, and checks only prune enumeration,
//     never reorder it;
//   - the counting fast path is gated per residual class exactly as the
//     standalone gate (countable tail, no pending generic checks, no emit
//     sink), and counting and enumeration agree on counts by the operator's
//     own invariant.
//
// The per-step tailFused specialization of the single-query kernel is not
// replicated here; fused steps fall back to the countable product or plain
// enumeration, which preserves counts and order.

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"repro/internal/stream"
	"repro/internal/window"
)

// maxResidualClasses caps the per-class alive bitmask width; a skeleton with
// more distinct residual classes overflows into a sibling class sharing the
// same windows (enumeration is then repeated per sibling, counts unchanged).
const maxResidualClasses = 64

// MultiMember is one query registered with a Multi kernel. It is created by
// Add and identifies the query in Remove/SetEmit calls.
type MultiMember struct {
	cond        *Condition
	resSig      string
	emit        EmitFunc
	countEmit   CountEmitFunc
	onProcessed ProcessedFunc
	results     int64
	res         *mres
}

// Results returns the number of results this member's query has derived.
func (mm *MultiMember) Results() int64 { return mm.results }

// mres is one residual class: members with bit-identical full conditions.
// Checks evaluate once per candidate for the whole class.
type mres struct {
	sig     string
	cond    *Condition
	progs   []*Prog // parallel to cond.Generics; nil → interpreted Eval
	members []*MultiMember
	// checks[src][lvl] lists generic indexes that become fully bound at
	// probe level lvl of the class plan for arriving stream src — the same
	// assignment buildPlan computes for the standalone operator.
	checks [][][]int
	// chkAfter[src][lvl] reports whether any check runs at level ≥ lvl; it
	// is the per-residual-class analog of the standalone countableTail
	// generic gate.
	chkAfter [][]bool
}

// hasEmit reports whether any member materializes results; it disables the
// class counting fast path for this residual class, exactly as a standalone
// operator's emit sink does.
func (r *mres) hasEmit() bool {
	for _, mm := range r.members {
		if mm.emit != nil {
			return true
		}
	}
	return false
}

// mclass is one probe class: residual classes sharing an equi/band skeleton
// and therefore one candidate enumeration.
type mclass struct {
	skelSig string
	skel    *Condition
	plans   []plan
	cplans  []cplan
	res     []*mres
	// emitMask / chkAfterMask cache per-residual-class gates as bitmasks:
	// a residual class may take the counting fast path at (src, lvl) iff its
	// bit is clear in both.
	emitMask     uint64
	chkAfterMask [][]uint64 // [src][lvl]
	counts       []int64    // per-arrival result count per residual class
}

func (c *mclass) fullMask() uint64 {
	if len(c.res) >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(len(c.res))) - 1
}

// refreshMasks recomputes the cached gate bitmasks after any membership or
// emit change.
func (c *mclass) refreshMasks(m int) {
	c.emitMask = 0
	for ri, r := range c.res {
		if r.hasEmit() {
			c.emitMask |= uint64(1) << uint(ri)
		}
	}
	c.chkAfterMask = make([][]uint64, m)
	for src := 0; src < m; src++ {
		levels := len(c.plans[src])
		c.chkAfterMask[src] = make([]uint64, levels+1)
		for lvl := 0; lvl <= levels; lvl++ {
			var mask uint64
			for ri, r := range c.res {
				if lvl < levels && r.chkAfter[src][lvl] {
					mask |= uint64(1) << uint(ri)
				}
			}
			c.chkAfterMask[src][lvl] = mask
		}
	}
	c.counts = make([]int64, len(c.res))
}

// Multi is the shared-window multi-query MSWJ kernel. Like Operator it is
// push-based, single-threaded, and expects mostly timestamp-ordered input
// (the Synchronizer's output); out-of-order residue follows lines 9–10 of
// Alg. 2 against the shared windows.
type Multi struct {
	m       int
	sizes   []stream.Time
	windows []*window.Window
	onT     stream.Time
	members []*MultiMember
	classes []*mclass

	processed  int64
	outOfOrder int64

	assignBuf []*stream.Tuple
	scratch   [][]*stream.Tuple
}

// NewMulti creates an empty shared kernel over len(sizes) streams; sizes[i]
// is the shared window extent W_i and must be positive. Queries attach with
// Add — before any tuple is processed — and detach with Remove at any time.
func NewMulti(sizes []stream.Time) *Multi {
	if len(sizes) < 2 {
		panic("join: Multi needs at least 2 streams")
	}
	for _, w := range sizes {
		if w <= 0 {
			panic("join: window size must be positive")
		}
	}
	mo := &Multi{
		m:         len(sizes),
		sizes:     append([]stream.Time(nil), sizes...),
		windows:   make([]*window.Window, len(sizes)),
		assignBuf: make([]*stream.Tuple, len(sizes)),
		scratch:   make([][]*stream.Tuple, len(sizes)),
	}
	for i, w := range sizes {
		mo.windows[i] = window.NewIndexed(w, nil, nil)
	}
	return mo
}

// M returns the number of input streams.
func (mo *Multi) M() int { return mo.m }

// Members returns the number of registered queries.
func (mo *Multi) Members() int { return len(mo.members) }

// HighWatermark returns onT, the maximum timestamp among received tuples.
func (mo *Multi) HighWatermark() stream.Time { return mo.onT }

// WindowLen returns the current cardinality of the shared window on stream i.
func (mo *Multi) WindowLen(i int) int { return mo.windows[i].Len() }

// Add registers one query. resSig is the caller's full-condition signature:
// two members carry equal signatures iff their conditions are semantically
// identical (the multi-query engine derives it from the predicate structure,
// tagging opaque closures per condition instance). Add seals the condition
// and must run before the kernel has processed any tuple: the shared windows
// are rebuilt with the union of all members' index attributes, which is only
// sound while they are empty. The engine guarantees this by keying shared
// kernels on their registration epoch.
func (mo *Multi) Add(cond *Condition, resSig string, emit EmitFunc, countEmit CountEmitFunc, onProcessed ProcessedFunc) *MultiMember {
	if cond == nil || cond.M != mo.m {
		panic("join: Multi.Add condition arity must match the kernel's stream count")
	}
	if mo.processed > 0 {
		panic("join: Multi.Add after processing started — shared windows cannot be re-indexed while populated; register at a fresh epoch")
	}
	cond.seal()
	mm := &MultiMember{cond: cond, resSig: resSig, emit: emit, countEmit: countEmit, onProcessed: onProcessed}
	mo.members = append(mo.members, mm)
	mo.rebuild()
	return mm
}

// Remove detaches a member: its residual class forgets it, an emptied
// residual class is dropped from its probe class (freeing the compiled
// residuals), and an emptied class is dropped entirely. The shared windows
// are left untouched — remaining queries keep probing them.
func (mo *Multi) Remove(mm *MultiMember) {
	if mm == nil || mm.res == nil {
		panic("join: Multi.Remove of an unknown or already-removed member")
	}
	r := mm.res
	found := false
	for i, other := range r.members {
		if other == mm {
			r.members = append(r.members[:i], r.members[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		panic("join: Multi.Remove of an unknown or already-removed member")
	}
	mm.res = nil
	for i, other := range mo.members {
		if other == mm {
			mo.members = append(mo.members[:i], mo.members[i+1:]...)
			break
		}
	}
	for ci, c := range mo.classes {
		owns := false
		for ri, rr := range c.res {
			if rr != r {
				continue
			}
			owns = true
			if len(r.members) == 0 {
				c.res = append(c.res[:ri], c.res[ri+1:]...)
			}
			break
		}
		if !owns {
			continue
		}
		if len(c.res) == 0 {
			mo.classes = append(mo.classes[:ci], mo.classes[ci+1:]...)
		} else {
			c.refreshMasks(mo.m)
		}
		return
	}
}

// SetEmit installs (or clears) a member's result sink; a non-nil sink
// disables the counting fast path for the member's residual class, exactly
// as on a standalone operator.
func (mo *Multi) SetEmit(mm *MultiMember, f EmitFunc) {
	if mm == nil || mm.res == nil {
		panic("join: Multi.SetEmit on an unknown or removed member")
	}
	mm.emit = f
	for _, c := range mo.classes {
		for _, r := range c.res {
			if r == mm.res {
				c.refreshMasks(mo.m)
				return
			}
		}
	}
}

// rebuild recomputes windows, classes and compiled plans from the current
// member list. Only called while the windows are empty.
func (mo *Multi) rebuild() {
	// Union of index requirements across members.
	idxSets := make([]map[int]bool, mo.m)
	rngSets := make([]map[int]bool, mo.m)
	for i := range idxSets {
		idxSets[i] = map[int]bool{}
		rngSets[i] = map[int]bool{}
	}
	for _, mm := range mo.members {
		for s, attrs := range mm.cond.IndexedAttrs() {
			for _, a := range attrs {
				idxSets[s][a] = true
			}
		}
		for s, attrs := range mm.cond.RangeAttrs() {
			for _, a := range attrs {
				rngSets[s][a] = true
			}
		}
	}
	for i := range mo.windows {
		var idx, rng []int
		for a := range idxSets[i] {
			idx = append(idx, a)
		}
		for a := range rngSets[i] {
			rng = append(rng, a)
		}
		mo.windows[i] = window.NewIndexed(mo.sizes[i], idx, rng)
	}

	// Group members by skeleton into classes, then by residual signature
	// into residual classes, preserving registration order.
	mo.classes = nil
	for _, mm := range mo.members {
		mm.res = nil
		sk := SkeletonSig(mm.cond)
		var cls *mclass
		for _, c := range mo.classes {
			if c.skelSig != sk {
				continue
			}
			joined := false
			for _, r := range c.res {
				if r.sig == mm.resSig {
					r.members = append(r.members, mm)
					mm.res = r
					joined = true
					break
				}
			}
			if joined || len(c.res) < maxResidualClasses {
				cls = c
				break
			}
		}
		if cls == nil {
			skel := &Condition{
				M:     mm.cond.M,
				Equis: append([]EquiPredicate(nil), mm.cond.Equis...),
				Bands: append([]BandPredicate(nil), mm.cond.Bands...),
			}
			skel.seal()
			cls = &mclass{skelSig: sk, skel: skel}
			cls.plans = buildPlans(skel)
			mo.classes = append(mo.classes, cls)
		}
		if mm.res == nil {
			r := &mres{sig: mm.resSig, cond: mm.cond, progs: compileProgs(mm.cond), members: []*MultiMember{mm}}
			r.checks, r.chkAfter = placeChecks(mm.cond, cls.plans)
			cls.res = append(cls.res, r)
			mm.res = r
		}
	}
	// Recompile every class against the (rebuilt) windows and refresh masks.
	for _, c := range mo.classes {
		c.cplans = compilePlans(c.skel, c.plans, mo.windows, nil)
		c.refreshMasks(mo.m)
	}
}

// placeChecks assigns each generic predicate of cond to the earliest probe
// level binding all its streams, per arriving stream, replicating
// buildPlan's assignment over the class's shared step order.
func placeChecks(cond *Condition, plans []plan) (checks [][][]int, chkAfter [][]bool) {
	m := cond.M
	checks = make([][][]int, m)
	chkAfter = make([][]bool, m)
	for src := 0; src < m; src++ {
		p := plans[src]
		checks[src] = make([][]int, len(p))
		chkAfter[src] = make([]bool, len(p))
		bound := make([]bool, m)
		bound[src] = true
		assigned := make([]bool, len(cond.Generics))
		for lvl := range p {
			bound[p[lvl].stream] = true
			for gi, g := range cond.Generics {
				if assigned[gi] {
					continue
				}
				all := true
				for _, gs := range g.Streams {
					if !bound[gs] {
						all = false
						break
					}
				}
				if all {
					assigned[gi] = true
					checks[src][lvl] = append(checks[src][lvl], gi)
				}
			}
		}
		pending := false
		for lvl := len(p) - 1; lvl >= 0; lvl-- {
			if len(checks[src][lvl]) > 0 {
				pending = true
			}
			chkAfter[src][lvl] = pending
		}
	}
	return checks, chkAfter
}

// Process consumes one tuple per Alg. 2 against the shared windows, fanning
// results out to every member. It mirrors Operator.Process/ProcessAt: one
// expire + insert per arrival, per-member productivity hooks in
// registration order.
func (mo *Multi) Process(e *stream.Tuple) {
	wm := mo.onT
	if e.TS > wm {
		wm = e.TS
	}
	mo.processed++
	if wm > mo.onT {
		mo.onT = wm
	}
	if e.TS >= wm {
		var nCross int64 = 1
		for j, w := range mo.windows {
			w.Expire(e.TS - w.Size())
			if j != e.Src {
				nCross *= int64(w.Len())
			}
		}
		for _, c := range mo.classes {
			for i := range c.counts {
				c.counts[i] = 0
			}
			for i := range mo.assignBuf {
				mo.assignBuf[i] = nil
			}
			mo.assignBuf[e.Src] = e
			mo.searchM(c, c.cplans[e.Src].steps, e.Src, 0, mo.assignBuf, c.fullMask())
		}
		// Credit counts and fire the count sinks before the insert, then the
		// productivity hooks after it — the standalone operator's order.
		for _, c := range mo.classes {
			for ri, r := range c.res {
				n := c.counts[ri]
				for _, mm := range r.members {
					mm.results += n
					if mm.countEmit != nil && n > 0 {
						mm.countEmit(e.TS, n)
					}
				}
			}
		}
		mo.windows[e.Src].Insert(e)
		for _, c := range mo.classes {
			for ri, r := range c.res {
				n := c.counts[ri]
				for _, mm := range r.members {
					if mm.onProcessed != nil {
						mm.onProcessed(e, nCross, n, true)
					}
				}
			}
		}
		return
	}
	// Out-of-order: no probe; insert into the shared window if still in the
	// scope [wm − W, wm].
	mo.outOfOrder++
	w := mo.windows[e.Src]
	w.Expire(wm - w.Size())
	if e.TS >= wm-w.Size() {
		w.Insert(e)
	}
	for _, c := range mo.classes {
		for _, r := range c.res {
			for _, mm := range r.members {
				if mm.onProcessed != nil {
					mm.onProcessed(e, 0, 0, false)
				}
			}
		}
	}
}

// searchM enumerates the class plan once for all alive residual classes,
// accumulating per-residual-class counts into c.counts and emitting
// materialized results for members with sinks. alive carries one bit per
// residual class; a branch is abandoned when every class has been pruned.
func (mo *Multi) searchM(c *mclass, steps []cstep, src, lvl int, assign []*stream.Tuple, alive uint64) {
	if lvl == len(steps) {
		for a := alive; a != 0; a &= a - 1 {
			ri := bits.TrailingZeros64(a)
			c.counts[ri]++
			r := c.res[ri]
			if c.emitMask&(uint64(1)<<uint(ri)) != 0 {
				for _, mm := range r.members {
					if mm.emit != nil {
						tuples := make([]*stream.Tuple, len(assign))
						copy(tuples, assign)
						mm.emit(stream.NewResult(tuples))
					}
				}
			}
		}
		return
	}
	cs := &steps[lvl]
	if cs.countableTail {
		// Residual classes with no pending generic checks and no emit sink
		// take the standalone counting fast path: one product, credited to
		// every eligible class at once.
		cnt := alive &^ (c.emitMask | c.chkAfterMask[src][lvl])
		if cnt != 0 {
			var prod int64 = 1
			for j := lvl; j < len(steps); j++ {
				if prod *= steps[j].ccount(assign); prod == 0 {
					break
				}
			}
			if prod != 0 {
				for a := cnt; a != 0; a &= a - 1 {
					c.counts[bits.TrailingZeros64(a)] += prod
				}
			}
			alive &^= cnt
			if alive == 0 {
				return
			}
		}
	}
	base := cs.base(assign)
	var cands []*stream.Tuple
	if !cs.hasResiduals() {
		cands = base
	} else {
		old := mo.scratch[lvl]
		out := old[:0]
		for _, cand := range base {
			if cs.filter(cand, assign) {
				out = append(out, cand)
			}
		}
		for i := len(out); i < len(old); i++ {
			old[i] = nil
		}
		mo.scratch[lvl] = out
		cands = out
	}
	for _, cand := range cands {
		assign[cs.stream] = cand
		na := alive
		for a := alive; a != 0; a &= a - 1 {
			ri := bits.TrailingZeros64(a)
			r := c.res[ri]
			for _, gi := range r.checks[src][lvl] {
				ok := false
				if p := r.progs[gi]; p != nil {
					ok = p.Eval(assign)
				} else {
					ok = r.cond.Generics[gi].Eval(assign)
				}
				if !ok {
					na &^= uint64(1) << uint(ri)
					break
				}
			}
		}
		if na != 0 {
			mo.searchM(c, steps, src, lvl+1, assign, na)
		}
	}
	assign[cs.stream] = nil
}

// MultiResidualInfo describes one residual class for explain output.
type MultiResidualInfo struct {
	Sig     string
	Members int
}

// MultiClassInfo describes one probe class for explain output.
type MultiClassInfo struct {
	Skeleton  string
	Residuals []MultiResidualInfo
}

// ClassInfos lists the kernel's probe classes in registration order.
func (mo *Multi) ClassInfos() []MultiClassInfo {
	out := make([]MultiClassInfo, 0, len(mo.classes))
	for _, c := range mo.classes {
		ci := MultiClassInfo{Skeleton: c.skelSig}
		for _, r := range c.res {
			ci.Residuals = append(ci.Residuals, MultiResidualInfo{Sig: r.sig, Members: len(r.members)})
		}
		out = append(out, ci)
	}
	return out
}

// SkeletonSig serializes the equi/band skeleton of a condition — the exact
// inputs of the probe planner. Conditions with equal skeleton signatures
// compile to identical probe plans and may share candidate enumeration;
// the serialization is order-sensitive because predicate order influences
// lookup order inside a step.
func SkeletonSig(c *Condition) string {
	var b strings.Builder
	fmt.Fprintf(&b, "m%d", c.M)
	for _, e := range c.Equis {
		fmt.Fprintf(&b, ";E%d.%d=%d.%d", e.LeftStream, e.LeftAttr, e.RightStream, e.RightAttr)
	}
	for _, bd := range c.Bands {
		fmt.Fprintf(&b, ";B%d.%d~%d.%d@%s", bd.LeftStream, bd.LeftAttr, bd.RightStream, bd.RightAttr,
			strconv.FormatFloat(bd.Eps, 'g', -1, 64))
	}
	return b.String()
}

// ResidualSig serializes the full condition: the skeleton plus every generic
// predicate. WhereExpr predicates serialize structurally (two conditions
// with the same expression share a residual class); opaque Where closures
// cannot be compared structurally, so they serialize with the caller's
// per-condition-instance token — only re-registrations of the SAME condition
// instance then share a residual class, which is the only sound grouping
// for arbitrary Go closures.
func ResidualSig(c *Condition, opaqueToken string) string {
	var b strings.Builder
	b.WriteString(SkeletonSig(c))
	for _, g := range c.Generics {
		fmt.Fprintf(&b, ";G%v:", g.Streams)
		if g.Expr != nil {
			b.WriteString(g.Expr.String())
		} else {
			b.WriteString("opaque:" + opaqueToken)
		}
	}
	return b.String()
}
