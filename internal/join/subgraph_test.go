package join

import (
	"testing"

	"repro/internal/stream"
)

func TestSubgraphInducedPredicates(t *testing.T) {
	c := Cross(4).
		Equi(0, 0, 1, 0).
		Equi(1, 1, 2, 0).
		Band(2, 1, 3, 1, 5).
		Where([]int{0, 1}, func([]*stream.Tuple) bool { return true }).
		Where([]int{1, 2, 3}, func([]*stream.Tuple) bool { return true })

	sub := c.Subgraph([]int{0, 1})
	if len(sub.Equis) != 1 || sub.Equis[0].LeftStream != 0 || sub.Equis[0].RightStream != 1 {
		t.Fatalf("subgraph {0,1} equis = %+v, want the 0–1 predicate only", sub.Equis)
	}
	if len(sub.Bands) != 0 || len(sub.Generics) != 1 {
		t.Fatalf("subgraph {0,1}: bands=%d generics=%d, want 0/1", len(sub.Bands), len(sub.Generics))
	}
	if sub.M != c.M {
		t.Fatalf("subgraph must keep M=%d, got %d", c.M, sub.M)
	}

	// The subgraph is unsealed and mutable even when the source is sealed.
	c.Seal()
	sub2 := c.Subgraph([]int{2, 3})
	sub2.Equi(2, 0, 3, 0)
	if len(sub2.Equis) != 1 || len(sub2.Bands) != 1 {
		t.Fatalf("subgraph {2,3} after mutation: equis=%d bands=%d", len(sub2.Equis), len(sub2.Bands))
	}
}

func TestCrossLinkNormalizesSides(t *testing.T) {
	// The 1–2 equi is declared right-to-left; Cross must normalize so
	// LeftStream lies in the left subset.
	c := Cross(4).
		Equi(2, 0, 1, 1). // spans the {0,1} / {2,3} split, declared reversed
		Band(3, 1, 0, 2, 7).
		Equi(0, 0, 1, 0). // internal to the left side: excluded
		Where([]int{1, 2}, func([]*stream.Tuple) bool { return true }).
		Where([]int{1, 2, 3}, func([]*stream.Tuple) bool { return true })

	link := c.Cross([]int{0, 1}, []int{2, 3})
	if len(link.Equis) != 1 {
		t.Fatalf("cross equis = %+v, want 1", link.Equis)
	}
	e := link.Equis[0]
	if e.LeftStream != 1 || e.LeftAttr != 1 || e.RightStream != 2 || e.RightAttr != 0 {
		t.Fatalf("cross equi not normalized: %+v", e)
	}
	if len(link.Bands) != 1 || link.Bands[0].LeftStream != 0 || link.Bands[0].RightStream != 3 {
		t.Fatalf("cross bands = %+v", link.Bands)
	}
	if len(link.Generics) != 2 {
		t.Fatalf("cross generics = %v, want both spanning predicates", link.Generics)
	}
	if !link.Keyed() {
		t.Fatal("link with equi+band predicates must report Keyed")
	}
}

func TestCrossLinkUnkeyed(t *testing.T) {
	c := Cross(2).Where([]int{0, 1}, func([]*stream.Tuple) bool { return true })
	link := c.Cross([]int{0}, []int{1})
	if link.Keyed() {
		t.Fatal("generic-only link must not report Keyed")
	}
	if len(link.Generics) != 1 {
		t.Fatalf("generics = %v", link.Generics)
	}
}

func TestConnected(t *testing.T) {
	star := Star(4, []int{0, 1, 2}, []int{0, 0, 0})
	if !star.Connected([]int{0, 1, 2, 3}) {
		t.Fatal("star is connected over all streams")
	}
	if star.Connected([]int{2, 3}) {
		t.Fatal("star spokes {2,3} share no predicate; must not be connected")
	}
	if !star.Connected([]int{0, 2}) {
		t.Fatal("{center, spoke} is connected")
	}
	if !star.Connected([]int{3}) {
		t.Fatal("singletons are connected")
	}
	chain := EquiChain(4, 0)
	if !chain.Connected([]int{2, 3}) || !chain.Connected([]int{0, 1}) {
		t.Fatal("chain halves are connected")
	}
	if chain.Connected([]int{0, 2}) {
		t.Fatal("chain {0,2} skips stream 1; not connected")
	}
}
