package join

import (
	"repro/internal/fault"
	"repro/internal/stream"
)

// State is the serializable snapshot of an Operator: the window contents in
// canonical (TS, Seq) order plus the watermark and counters. Index layouts
// (hash buckets, sorted range arrays) are deliberately not serialized —
// RestoreState rebuilds them by re-insertion, which cannot change results or
// K decisions because probe-candidate enumeration order is result-invariant
// (DESIGN.md §10).
type State struct {
	OnT        stream.Time
	Results    int64
	OutOfOrder int64
	Processed  int64
	Windows    [][]int32 // per stream: tuple IDs in (TS, Seq) order
}

// State captures the operator's state, registering window tuples with tt so
// shared pointers (replicas, broadcast copies) serialize once.
func (o *Operator) State(tt *fault.TupleTable) State {
	st := State{OnT: o.onT, Results: o.results, OutOfOrder: o.outOfOrder, Processed: o.processed}
	st.Windows = make([][]int32, len(o.windows))
	for i, w := range o.windows {
		for _, t := range w.All() {
			st.Windows[i] = append(st.Windows[i], tt.ID(t))
		}
	}
	return st
}

// RestoreState loads a captured state into a freshly constructed operator
// (same condition and window sizes): each window re-fills by insertion in
// the canonical serialized order, rebuilding its indexes from scratch.
func (o *Operator) RestoreState(st State, ta *fault.TupleArena) {
	o.onT = st.OnT
	o.results = st.Results
	o.outOfOrder = st.OutOfOrder
	o.processed = st.Processed
	for i, ids := range st.Windows {
		for _, id := range ids {
			o.windows[i].Insert(ta.Tuple(id))
		}
	}
}

// WindowTuples returns the live window contents of stream i in (TS, Seq)
// order. The slice is a live view into the window — read-only.
func (o *Operator) WindowTuples(i int) []*stream.Tuple { return o.windows[i].All() }
