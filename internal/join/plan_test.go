package join

import (
	"testing"

	"repro/internal/stream"
)

func TestPlanEquiChainOrder(t *testing.T) {
	c := EquiChain(3, 0)
	plans := buildPlans(c)
	if len(plans) != 3 {
		t.Fatalf("plans = %d", len(plans))
	}
	// Arriving stream 0: S1 is connected (pred 0–1), then S2 (pred 1–2).
	p := plans[0]
	if p[0].stream != 1 || p[1].stream != 2 {
		t.Fatalf("probe order for S0 arrival: %d,%d", p[0].stream, p[1].stream)
	}
	if len(p[0].lookups) != 1 || len(p[1].lookups) != 1 {
		t.Fatal("each step should carry one index lookup")
	}
	// Step 2's lookup references S1, which is inside the suffix at level 0,
	// so level 0 is not countable; level 1 is.
	if p[0].countableTail {
		t.Fatal("level 0 must not be countable (S2 depends on S1)")
	}
	if !p[1].countableTail {
		t.Fatal("level 1 must be countable")
	}
}

func TestPlanStarCountableFromCenter(t *testing.T) {
	c := Star(4, []int{0, 1, 2}, []int{0, 0, 0})
	plans := buildPlans(c)
	// Arriving center (stream 0): every spoke references only stream 0, so
	// the whole plan is countable from level 0.
	for lvl, st := range plans[0] {
		if !st.countableTail {
			t.Fatalf("center-arrival level %d should be countable", lvl)
		}
		if len(st.lookups) != 1 || st.lookups[0].boundStream != 0 {
			t.Fatalf("spoke lookup must reference the center, got %+v", st.lookups)
		}
	}
	// Arriving spoke (stream 1): first probe the center (connected), then
	// the remaining spokes, which hang off the center.
	p := plans[1]
	if p[0].stream != 0 {
		t.Fatalf("spoke arrival must probe the center first, got %d", p[0].stream)
	}
	if p[0].countableTail {
		t.Fatal("level 0 from a spoke is not countable (others depend on center)")
	}
	if !p[1].countableTail {
		t.Fatal("after the center binds, the tail is countable")
	}
}

func TestPlanCrossJoinFullScans(t *testing.T) {
	c := Cross(3)
	plans := buildPlans(c)
	for s, p := range plans {
		for lvl, st := range p {
			if len(st.lookups) != 0 {
				t.Fatalf("cross join must have no lookups (s=%d lvl=%d)", s, lvl)
			}
			if !st.countableTail {
				t.Fatalf("cross join tails are always countable (s=%d lvl=%d)", s, lvl)
			}
		}
	}
}

func TestPlanBandLookups(t *testing.T) {
	// The soccer shape: two bands plus a generic residual. Each arrival's
	// single step must carry both band lookups and the generic check, and
	// must not be countable (pending check).
	c := Cross(2).Band(0, 1, 1, 1, 5).Band(0, 2, 1, 2, 5).
		Where([]int{0, 1}, func([]*stream.Tuple) bool { return true })
	plans := buildPlans(c)
	for s, p := range plans {
		if len(p) != 1 {
			t.Fatalf("plan %d has %d steps", s, len(p))
		}
		st := p[0]
		if len(st.bands) != 2 || len(st.lookups) != 0 {
			t.Fatalf("arrival %d: %d band / %d equi lookups, want 2/0", s, len(st.bands), len(st.lookups))
		}
		if len(st.checks) != 1 || st.countableTail {
			t.Fatalf("arrival %d: generic residual must be scheduled and kill countability", s)
		}
		for _, b := range st.bands {
			if b.boundStream != s {
				t.Fatalf("band lookup must key off the arriving stream %d, got %d", s, b.boundStream)
			}
			if b.eps != 5 {
				t.Fatalf("band eps = %v", b.eps)
			}
		}
	}
}

func TestPlanPureBandCountable(t *testing.T) {
	// Without the generic residual the single band step is countable: the
	// operator can answer with a range-index count.
	c := Cross(2).Band(0, 0, 1, 0, 1)
	plans := buildPlans(c)
	for s, p := range plans {
		if !p[0].countableTail {
			t.Fatalf("arrival %d: pure band step must be countable", s)
		}
	}
}

func TestPlanPrefersEquiOverBand(t *testing.T) {
	// Stream 1 is band-connected, stream 2 equi-connected: the equi stream
	// must be probed first (hash probes are generally more selective).
	c := Cross(3).Band(0, 0, 1, 0, 1).Equi(0, 1, 2, 1)
	p := buildPlans(c)[0]
	if p[0].stream != 2 || p[1].stream != 1 {
		t.Fatalf("probe order %d,%d — want equi-connected stream 2 first", p[0].stream, p[1].stream)
	}
	if len(p[0].lookups) != 1 || len(p[1].bands) != 1 {
		t.Fatal("steps must carry their respective lookups")
	}
}

func TestPlanGenericChecksPlacement(t *testing.T) {
	// A predicate over streams {0, 2} must be checked at the level where
	// stream 2 binds, and its presence kills countability of every level up
	// to and including that one.
	c := Cross(3).Where([]int{0, 2}, func([]*stream.Tuple) bool { return true })
	plans := buildPlans(c)
	p := plans[0] // arriving stream 0; probe order is 1 then 2 (tie by index)
	var checkedAt = -1
	for lvl, st := range p {
		if len(st.checks) > 0 {
			checkedAt = lvl
			if st.stream != 2 {
				t.Fatalf("check must attach where stream 2 binds, got stream %d", st.stream)
			}
		}
	}
	if checkedAt == -1 {
		t.Fatal("generic predicate never scheduled")
	}
	for lvl := 0; lvl <= checkedAt; lvl++ {
		if p[lvl].countableTail {
			t.Fatalf("level %d must not be countable with a pending check", lvl)
		}
	}
}
