// Package join implements the m-way sliding window join operator of Alg. 2
// together with a small conjunctive-condition planner that supports the
// paper's requirement of "arbitrary join conditions": conjunctions of
// equi-predicates (executed via per-window hash indexes), typed band
// predicates |S_l.a − S_r.a| ≤ ε (executed via per-window sorted range
// indexes), and arbitrary Go predicates such as the soccer query's exact
// dist() < 5 check (executed by filtering enumerated combinations).
//
// Band predicates are the planner's answer to distance-style queries: a 2-D
// proximity join decomposes into two bands (one per coordinate) plus a
// cheap generic residual for the exact circle, turning an O(window) closure
// scan into an O(log n + matches) indexed probe.
package join

import (
	"fmt"
	"math"

	"repro/internal/stream"
)

// EquiPredicate asserts S_Left.Attr(LeftAttr) == S_Right.Attr(RightAttr).
type EquiPredicate struct {
	LeftStream, LeftAttr   int
	RightStream, RightAttr int
}

// BandPredicate asserts |S_Left.Attr(LeftAttr) − S_Right.Attr(RightAttr)| ≤
// Eps (a closed band). NaN attribute values never satisfy a band.
type BandPredicate struct {
	LeftStream, LeftAttr   int
	RightStream, RightAttr int
	Eps                    float64
}

// GenericPredicate is an arbitrary boolean predicate over a subset of the
// input streams. Eval receives the current assignment indexed by stream; it
// is invoked only once every stream listed in Streams is bound, and entries
// for unbound streams are nil.
type GenericPredicate struct {
	Streams []int
	Eval    func(assign []*stream.Tuple) bool
	// Expr is the compilable expression form when the predicate was added
	// through WhereExpr; executors compile it to bytecode for the probe
	// inner loop. Nil for opaque Where closures, which Eval then carries —
	// the escape hatch for predicates outside the expression language.
	Expr *Expr
}

// Condition is a conjunction of equi-, band- and generic predicates over M
// streams. An empty condition is the cross join.
//
// A condition is *sealed* the first time it is compiled — into an operator
// (New), a distributed tree, or a partition scheme (Partition). Mutating a
// sealed condition through Equi/Band/Where panics: the compiled plans,
// indexes and routing keys would silently ignore the new predicate, so the
// executors would disagree with Matches. Sealing is idempotent; building
// several operators from one condition is fine.
type Condition struct {
	M        int
	Equis    []EquiPredicate
	Bands    []BandPredicate
	Generics []GenericPredicate

	sealed bool
}

// seal marks the condition as compiled; further mutation panics.
func (c *Condition) seal() { c.sealed = true }

// Seal marks the condition as compiled into an executor, after which
// Equi/Band/Where panic. New and Partition call it internally; it is
// exported for executors outside this package (internal/dist) that
// compile conditions into plans of their own.
func (c *Condition) Seal() { c.seal() }

// mutable panics when the condition is sealed.
func (c *Condition) mutable(op string) {
	if c.sealed {
		panic("join: " + op + " on a condition already compiled into an operator, tree, or partition scheme — the running executors would silently ignore the new predicate; build the full condition first, or use a fresh Condition")
	}
}

// Cross returns the always-true condition over m streams.
func Cross(m int) *Condition {
	if m < 2 {
		panic(fmt.Sprintf("join: need at least 2 streams, got %d", m))
	}
	return &Condition{M: m}
}

// Equi adds the equi-predicate S_ls.attr(la) = S_rs.attr(ra) and returns the
// condition for chaining. It panics on out-of-range stream indexes.
func (c *Condition) Equi(ls, la, rs, ra int) *Condition {
	c.mutable("Equi")
	if ls < 0 || ls >= c.M || rs < 0 || rs >= c.M || ls == rs {
		panic(fmt.Sprintf("join: invalid equi-predicate streams (%d,%d) for m=%d", ls, rs, c.M))
	}
	c.Equis = append(c.Equis, EquiPredicate{ls, la, rs, ra})
	return c
}

// Band adds the band predicate |S_ls.attr(la) − S_rs.attr(ra)| ≤ eps and
// returns the condition for chaining. The planner resolves band predicates
// to sorted range-index probes; prefer Band over an equivalent Where
// whenever the condition has this shape. It panics on invalid stream
// indexes or a non-finite/negative eps, which are planning bugs.
func (c *Condition) Band(ls, la, rs, ra int, eps float64) *Condition {
	c.mutable("Band")
	if ls < 0 || ls >= c.M || rs < 0 || rs >= c.M || ls == rs {
		panic(fmt.Sprintf("join: invalid band-predicate streams (%d,%d) for m=%d", ls, rs, c.M))
	}
	if math.IsNaN(eps) || math.IsInf(eps, 0) || eps < 0 {
		panic(fmt.Sprintf("join: band epsilon must be finite and non-negative, got %v", eps))
	}
	c.Bands = append(c.Bands, BandPredicate{ls, la, rs, ra, eps})
	return c
}

// Where adds a generic predicate over the listed streams and returns the
// condition for chaining.
func (c *Condition) Where(streams []int, eval func(assign []*stream.Tuple) bool) *Condition {
	c.mutable("Where")
	for _, s := range streams {
		if s < 0 || s >= c.M {
			panic(fmt.Sprintf("join: predicate references stream %d outside [0,%d)", s, c.M))
		}
	}
	c.Generics = append(c.Generics, GenericPredicate{Streams: streams, Eval: eval})
	return c
}

// EquiChain builds the condition S_0.attr = S_1.attr = … = S_{m−1}.attr used
// by the paper's Q×3 query (all streams share one join attribute).
func EquiChain(m, attr int) *Condition {
	c := Cross(m)
	for i := 0; i+1 < m; i++ {
		c.Equi(i, attr, i+1, attr)
	}
	return c
}

// Star builds a star-shaped condition centered on stream 0, as in the
// paper's Q×4 query: S_0.attr(centerAttrs[i]) = S_{i+1}.attr(spokeAttrs[i]).
func Star(m int, centerAttrs, spokeAttrs []int) *Condition {
	if len(centerAttrs) != m-1 || len(spokeAttrs) != m-1 {
		panic("join: Star needs exactly m-1 center and spoke attributes")
	}
	c := Cross(m)
	for i := 0; i < m-1; i++ {
		c.Equi(0, centerAttrs[i], i+1, spokeAttrs[i])
	}
	return c
}

// IndexedAttrs returns, per stream, the set of attribute positions that
// appear in equi-predicates and therefore need hash indexes on the window.
func (c *Condition) IndexedAttrs() [][]int {
	sets := make([]map[int]bool, c.M)
	for i := range sets {
		sets[i] = map[int]bool{}
	}
	for _, p := range c.Equis {
		sets[p.LeftStream][p.LeftAttr] = true
		sets[p.RightStream][p.RightAttr] = true
	}
	return attrSets(sets)
}

// RangeAttrs returns, per stream, the set of attribute positions that
// appear in band predicates and therefore need sorted range indexes on the
// window.
func (c *Condition) RangeAttrs() [][]int {
	sets := make([]map[int]bool, c.M)
	for i := range sets {
		sets[i] = map[int]bool{}
	}
	for _, p := range c.Bands {
		sets[p.LeftStream][p.LeftAttr] = true
		sets[p.RightStream][p.RightAttr] = true
	}
	return attrSets(sets)
}

func attrSets(sets []map[int]bool) [][]int {
	out := make([][]int, len(sets))
	for i, s := range sets {
		for a := range s {
			out[i] = append(out[i], a)
		}
	}
	return out
}

// Matches reports whether a complete assignment (one tuple per stream)
// satisfies the condition. It is the reference semantics used by the oracle
// and by tests; the operator's planned execution must agree with it.
func (c *Condition) Matches(assign []*stream.Tuple) bool {
	for _, p := range c.Equis {
		if assign[p.LeftStream].Attr(p.LeftAttr) != assign[p.RightStream].Attr(p.RightAttr) {
			return false
		}
	}
	for _, p := range c.Bands {
		d := assign[p.LeftStream].Attr(p.LeftAttr) - assign[p.RightStream].Attr(p.RightAttr)
		// The negated form keeps NaN (all comparisons false) out of the band.
		if !(d >= -p.Eps && d <= p.Eps) {
			return false
		}
	}
	for _, g := range c.Generics {
		if !g.Eval(assign) {
			return false
		}
	}
	return true
}
