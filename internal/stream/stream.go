// Package stream defines the tuple model and logical time base shared by
// every operator in the quality-driven disorder handling framework.
//
// All timestamps are logical milliseconds (type Time). The pipeline is driven
// purely by tuple arrival order, never by the wall clock, which makes every
// experiment deterministic and lets long stream horizons replay in
// microseconds of real time.
package stream

import (
	"fmt"
	"sort"
)

// Time is a logical timestamp or duration in milliseconds.
type Time int64

// Common durations, in logical milliseconds.
const (
	Millisecond Time = 1
	Second      Time = 1000
	Minute      Time = 60 * Second
)

// String formats a Time as seconds with millisecond precision.
func (t Time) String() string {
	return fmt.Sprintf("%d.%03ds", t/Second, t%Second)
}

// Tuple is a single stream element. A tuple is identified by the stream it
// belongs to (Src, an index in [0,m)), its application timestamp TS assigned
// at the data source, and its arrival sequence number Seq which records the
// physical arrival order at the operator front-end.
//
// Attrs holds the payload attributes. Both integer join keys and continuous
// values (coordinates, readings) are stored as float64; equi-join predicates
// hash the raw bits, so exact integer keys compare exactly.
//
// Delay is the disorder-handling annotation delay(e) = iT − e.ts computed by
// the K-slack component when the tuple first arrives (Sec. IV-B of the
// paper); it rides along through the Synchronizer to the join operator and
// the Tuple-Productivity Profiler.
type Tuple struct {
	TS    Time
	Seq   uint64
	Src   int
	Delay Time
	Attrs []float64
}

// Attr returns attribute i, or 0 if the tuple has fewer attributes. The
// forgiving behaviour keeps hand-written example predicates short.
func (t *Tuple) Attr(i int) float64 {
	if i < 0 || i >= len(t.Attrs) {
		return 0
	}
	return t.Attrs[i]
}

// String renders a tuple compactly for debugging and test failure messages.
func (t *Tuple) String() string {
	return fmt.Sprintf("S%d@%d%v", t.Src, t.TS, t.Attrs)
}

// Less is the canonical (TS, Seq) tuple order shared by every component that
// sorts or buffers tuples (K-slack, Synchronizer, windows): timestamp order
// with ties broken by arrival sequence.
func Less(a, b *Tuple) bool {
	if a.TS != b.TS {
		return a.TS < b.TS
	}
	return a.Seq < b.Seq
}

// Result is one join result: a combination of exactly one tuple per input
// stream. TS is the maximum timestamp among deriving tuples, per the MSWJ
// semantics in Sec. II-A.
type Result struct {
	TS     Time
	Tuples []*Tuple
}

// NewResult assembles a Result from the deriving tuples, computing the
// result timestamp as the maximum input timestamp.
func NewResult(tuples []*Tuple) Result {
	r := Result{Tuples: tuples}
	for _, t := range tuples {
		if t.TS > r.TS {
			r.TS = t.TS
		}
	}
	return r
}

// Batch is an in-memory stream fragment in arrival order.
type Batch []*Tuple

// Clone returns a deep copy of the batch. Tuples themselves are copied so the
// clone can be annotated (Delay) independently.
func (b Batch) Clone() Batch {
	out := make(Batch, len(b))
	for i, t := range b {
		cp := *t
		cp.Attrs = append([]float64(nil), t.Attrs...)
		out[i] = &cp
	}
	return out
}

// MaxTS returns the maximum timestamp in the batch, or 0 for an empty batch.
func (b Batch) MaxTS() Time {
	var max Time
	for _, t := range b {
		if t.TS > max {
			max = t.TS
		}
	}
	return max
}

// SortByTS stably sorts the batch by timestamp, preserving arrival order
// among equal timestamps.
func (b Batch) SortByTS() {
	sort.SliceStable(b, func(i, j int) bool { return b[i].TS < b[j].TS })
}

// Interleave merges several per-stream batches into a single arrival-ordered
// batch using the per-tuple Seq numbers, which generators assign globally.
// It is how multi-stream datasets are replayed through the framework.
func Interleave(streams ...Batch) Batch {
	var total int
	for _, s := range streams {
		total += len(s)
	}
	out := make(Batch, 0, total)
	for _, s := range streams {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// SortedByTS returns a copy of the batch globally ordered by (TS, Seq). The
// oracle evaluates joins on this ordering to obtain true results.
func (b Batch) SortedByTS() Batch {
	out := make(Batch, len(b))
	copy(out, b)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Disordered reports whether the batch contains at least one out-of-order
// tuple, i.e. a tuple whose timestamp is smaller than that of an earlier
// arrival from the same stream. Src is a dense index in [0,m), so per-stream
// state lives in small slices (stack-allocated for m ≤ 8) rather than
// per-call maps.
func (b Batch) Disordered() bool {
	var hiBuf [8]Time
	var seenBuf [8]bool
	hi, seen := hiBuf[:], seenBuf[:]
	for _, t := range b {
		s := t.Src
		for s >= len(hi) {
			hi = append(hi, 0)
			seen = append(seen, false)
		}
		if seen[s] && t.TS < hi[s] {
			return true
		}
		if !seen[s] || t.TS > hi[s] {
			hi[s] = t.TS
			seen[s] = true
		}
	}
	return false
}

// MaxDelay returns the maximum delay(e) = iT − e.ts over the batch, along
// with the per-stream maxima indexed by Src (length = max Src + 1). It
// matches the definition in Sec. II-A of the paper.
func (b Batch) MaxDelay() (Time, []Time) {
	var localBuf [8]Time
	var seenBuf [8]bool
	localT, seen := localBuf[:0], seenBuf[:0]
	per := make([]Time, 0, 8)
	var max Time
	for _, t := range b {
		s := t.Src
		for s >= len(localT) {
			localT = append(localT, 0)
			seen = append(seen, false)
			per = append(per, 0)
		}
		if !seen[s] || t.TS > localT[s] {
			localT[s] = t.TS
			seen[s] = true
		}
		d := localT[s] - t.TS
		if d > per[s] {
			per[s] = d
		}
		if d > max {
			max = d
		}
	}
	return max, per
}
