package stream

import (
	"testing"
	"testing/quick"
)

func tup(src int, ts Time, seq uint64) *Tuple {
	return &Tuple{TS: ts, Seq: seq, Src: src}
}

func TestTimeString(t *testing.T) {
	if got := (1500 * Millisecond).String(); got != "1.500s" {
		t.Fatalf("Time.String = %q", got)
	}
	if got := (2 * Minute).String(); got != "120.000s" {
		t.Fatalf("Time.String = %q", got)
	}
}

func TestTupleAttr(t *testing.T) {
	tu := &Tuple{Attrs: []float64{1.5, 2.5}}
	if tu.Attr(0) != 1.5 || tu.Attr(1) != 2.5 {
		t.Fatal("Attr returned wrong values")
	}
	if tu.Attr(2) != 0 || tu.Attr(-1) != 0 {
		t.Fatal("out-of-range Attr should be 0")
	}
}

func TestNewResultTimestamp(t *testing.T) {
	r := NewResult([]*Tuple{tup(0, 5, 0), tup(1, 9, 1), tup(2, 3, 2)})
	if r.TS != 9 {
		t.Fatalf("result ts = %d, want max deriving ts 9", r.TS)
	}
}

func TestBatchSortByTS(t *testing.T) {
	b := Batch{tup(0, 3, 0), tup(0, 1, 1), tup(0, 2, 2)}
	b.SortByTS()
	if b[0].TS != 1 || b[1].TS != 2 || b[2].TS != 3 {
		t.Fatalf("not sorted: %v", b)
	}
}

func TestBatchSortedByTSStable(t *testing.T) {
	b := Batch{tup(0, 2, 0), tup(1, 2, 1), tup(0, 1, 2)}
	s := b.SortedByTS()
	if s[0].TS != 1 {
		t.Fatal("min ts must come first")
	}
	if s[1].Seq != 0 || s[2].Seq != 1 {
		t.Fatal("ties must be broken by Seq")
	}
	// Original batch unchanged.
	if b[0].TS != 2 || b[2].TS != 1 {
		t.Fatal("SortedByTS must not mutate the receiver")
	}
}

func TestBatchDisordered(t *testing.T) {
	inOrder := Batch{tup(0, 1, 0), tup(1, 5, 1), tup(0, 2, 2)}
	if inOrder.Disordered() {
		t.Fatal("per-stream ordered batch misreported as disordered")
	}
	ooo := Batch{tup(0, 5, 0), tup(0, 2, 1)}
	if !ooo.Disordered() {
		t.Fatal("out-of-order batch not detected")
	}
}

func TestBatchMaxDelay(t *testing.T) {
	// Stream 0: ts 10, then 4 → delay 6. Stream 1: ts 3, 7 → delay 0.
	b := Batch{tup(0, 10, 0), tup(1, 3, 1), tup(0, 4, 2), tup(1, 7, 3)}
	max, per := b.MaxDelay()
	if max != 6 {
		t.Fatalf("max delay = %d, want 6", max)
	}
	if per[0] != 6 || per[1] != 0 {
		t.Fatalf("per-stream delays = %v", per)
	}
}

func TestInterleaveBySeq(t *testing.T) {
	s0 := Batch{tup(0, 1, 0), tup(0, 3, 3)}
	s1 := Batch{tup(1, 2, 1), tup(1, 4, 2)}
	all := Interleave(s0, s1)
	for i := 1; i < len(all); i++ {
		if all[i].Seq < all[i-1].Seq {
			t.Fatalf("interleave not ordered by Seq at %d", i)
		}
	}
	if len(all) != 4 {
		t.Fatalf("len = %d", len(all))
	}
}

func TestBatchClone(t *testing.T) {
	b := Batch{{TS: 1, Attrs: []float64{7}}}
	c := b.Clone()
	c[0].TS = 99
	c[0].Attrs[0] = 42
	if b[0].TS != 1 || b[0].Attrs[0] != 7 {
		t.Fatal("clone shares state with original")
	}
}

func TestBatchMaxTS(t *testing.T) {
	if (Batch{}).MaxTS() != 0 {
		t.Fatal("empty batch MaxTS should be 0")
	}
	b := Batch{tup(0, 5, 0), tup(0, 11, 1), tup(0, 2, 2)}
	if b.MaxTS() != 11 {
		t.Fatalf("MaxTS = %d", b.MaxTS())
	}
}

// The per-stream state of Disordered and MaxDelay lives in small slices
// indexed by Src: for the usual m ≤ 8 Disordered must not allocate at all,
// and MaxDelay only for its returned per-stream slice.
func TestDisorderScanAllocations(t *testing.T) {
	b := make(Batch, 512)
	for i := range b {
		b[i] = tup(i%4, Time(100+i-3*(i%7)), uint64(i))
	}
	if got := testing.AllocsPerRun(100, func() { b.Disordered() }); got != 0 {
		t.Fatalf("Disordered allocated %v times per call", got)
	}
	if got := testing.AllocsPerRun(100, func() { b.MaxDelay() }); got > 2 {
		t.Fatalf("MaxDelay allocated %v times per call", got)
	}
}

// Property: delays computed by MaxDelay are always non-negative and zero for
// a per-stream sorted batch.
func TestMaxDelayProperty(t *testing.T) {
	f := func(raw []int16) bool {
		b := make(Batch, len(raw))
		for i, v := range raw {
			b[i] = tup(0, Time(v), uint64(i))
		}
		max, _ := b.MaxDelay()
		if max < 0 {
			return false
		}
		s := b.SortedByTS()
		smax, _ := s.MaxDelay()
		return smax == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
