// Package replan closes the planning loop at runtime: it measures the
// statistics the cost model wants (per-stream arrival rates, per-edge
// selectivities) on the RUNNING join, re-plans each measurement period from
// those measured values, and — when the measured-cost winner differs from
// the deployed shape by enough margin for long enough — live-migrates the
// executor across shapes through plan.Migrate, behind the exactly-once
// EmitLog gate.
//
// The controller is deliberately self-contained on the measurement side: it
// derives arrivals, local clocks and the windowed selectivity estimate from
// the tuples it observes, not from the executor's feedback loop, so it keeps
// planning even across shapes that run no loop of their own.
//
// Hysteresis guards against thrashing twice over: a migration is proposed
// only if the candidate's measured cost beats the deployed shape's by the
// Improvement factor, and executed only after MinDwell stream-time has
// passed since the previous migration. Proposals wait for an adaptation
// boundary (the executor's quiesced decision point) before they fire; on
// loop-less deployments every between-push point is such a boundary.
package replan

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/join"
	"repro/internal/plan"
	"repro/internal/stream"
)

// Options configures the re-planning loop. The zero value re-plans every
// minute of stream time with a 25% cost-improvement threshold and a dwell
// time of two periods.
type Options struct {
	// Hints seeds the cost model where no measurement exists yet (worker
	// budget, prior selectivity). Measured values override them.
	Hints plan.Hints
	// Period is the measurement/evaluation cadence in stream time.
	// Default: one minute.
	Period stream.Time
	// MinDwell is the minimum stream time between two migrations.
	// Default: 2×Period.
	MinDwell stream.Time
	// Improvement is the cost-ratio hysteresis: migrate only if
	// cost(candidate)·Improvement ≤ cost(deployed). Default: 1.25.
	Improvement float64
	// OnEvent observes every completed migration.
	OnEvent func(Event)
}

// Event describes one completed live migration.
type Event struct {
	// From and To are the shape signatures of the old and new deployment.
	From, To string
	// At is the stream-time boundary the migration quiesced at.
	At stream.Time
	// Horizon is the replay horizon; arrivals with TS ≥ Horizon re-ran.
	Horizon stream.Time
	// Replayed is the number of replayed arrivals; Suppressed the number of
	// regenerations the gate matched against prior deliveries; InFlight the
	// number of boundary-in-flight results the replay delivered.
	Replayed   int
	Suppressed int64
	InFlight   int64
	// Pause is the wall-clock time the migration stalled the driver.
	Pause time.Duration
	// FromCost and ToCost are the measured-cost scalars that justified the
	// move; FromExplain and ToExplain render both plan graphs.
	FromCost, ToCost       float64
	FromExplain, ToExplain string
}

// Controller runs the measure → re-plan → migrate loop for one join. It is
// driven from the join's driver thread (Observe before each Push, Step
// after) and is not safe for concurrent use.
type Controller struct {
	opt  Options
	cond *join.Condition
	wins []stream.Time
	g    *plan.Graph
	cfg  plan.ExecConfig
	gate *plan.EmitLog

	// Replay log: every arrival with TS ≥ logSince, in arrival order.
	log      []*stream.Tuple
	logSince stream.Time

	// Self-measured stream statistics.
	arr    []int64       // arrivals per stream, ever
	localT []stream.Time // max observed timestamp per stream
	seen   bool          // any tuple observed yet

	// Windowed estimator registers (values at the last evaluation).
	lastEval stream.Time
	prevArr  []int64
	prevDel  int64
	ms       plan.Measured

	// Hysteresis registers.
	lastMigrate stream.Time
	boundary    bool
	pending     *plan.Graph
	pendCost    [2]float64 // [deployed, candidate] at proposal time

	migrations int
	totalPause time.Duration
	maxPause   time.Duration
}

// New wraps the executor config for gated delivery and returns the
// controller. Build the initial executor with the returned controller's
// Config — it routes emissions through the gate and lets the controller see
// adaptation boundaries.
func New(g *plan.Graph, cfg plan.ExecConfig, opt Options) *Controller {
	if opt.Period <= 0 {
		opt.Period = stream.Minute
	}
	if opt.MinDwell <= 0 {
		opt.MinDwell = 2 * opt.Period
	}
	if opt.Improvement <= 1 {
		opt.Improvement = 1.25
	}
	c := &Controller{
		opt:      opt,
		cond:     g.Cond,
		wins:     g.Windows,
		g:        g,
		gate:     plan.NewEmitLog(cfg.Emit, cfg.EmitCounts),
		logSince: plan.LogComplete,
		arr:      make([]int64, len(g.Windows)),
		localT:   make([]stream.Time, len(g.Windows)),
		prevArr:  make([]int64, len(g.Windows)),
	}
	wrapped := cfg
	wrapped.Emit = c.gate.Emit
	inner := cfg.OnAdapt
	wrapped.OnAdapt = func(ev core.AdaptEvent) {
		c.boundary = true
		if inner != nil {
			inner(ev)
		}
	}
	c.cfg = wrapped
	return c
}

// Config returns the executor config the initial deployment must be built
// with (gated emit, boundary observation).
func (c *Controller) Config() plan.ExecConfig { return c.cfg }

// Gate returns the exactly-once delivery gate. Its Delivered counter is the
// migration-continuous result count; its SetInner redirects the user sink.
func (c *Controller) Gate() *plan.EmitLog { return c.gate }

// Graph returns the currently deployed plan graph.
func (c *Controller) Graph() *plan.Graph { return c.g }

// Migrations returns how many live migrations have completed.
func (c *Controller) Migrations() int { return c.migrations }

// TotalPause and MaxPause report the accumulated and worst single
// wall-clock stall migrations have imposed on the driver.
func (c *Controller) TotalPause() time.Duration { return c.totalPause }

// MaxPause reports the worst single migration stall.
func (c *Controller) MaxPause() time.Duration { return c.maxPause }

// Measured returns the most recent measured statistics handed to the
// planner (nil rates before the first evaluation).
func (c *Controller) Measured() plan.Measured { return c.ms }

// Observe records one arriving tuple. Call immediately before pushing it.
func (c *Controller) Observe(t *stream.Tuple) {
	c.log = append(c.log, t)
	c.arr[t.Src]++
	if !c.seen || t.TS > c.localT[t.Src] {
		c.localT[t.Src] = t.TS
	}
	if !c.seen {
		for i := range c.localT {
			c.localT[i] = t.TS
		}
		c.localT[t.Src] = t.TS
		c.seen = true
		c.lastEval = t.TS
		c.lastMigrate = t.TS
	}
}

// Step runs the control loop once; call after every Push. It returns the
// new executor when a migration happened this step, nil otherwise.
func (c *Controller) Step(ex plan.Executor) plan.Executor {
	boundaryNow := c.boundary || ex.Stats() == nil
	c.boundary = false
	now := c.globalT()
	if c.pending == nil && now-c.lastEval >= c.opt.Period {
		c.evaluate(ex, now)
	}
	if c.pending != nil && boundaryNow {
		return c.migrate(ex, now)
	}
	return nil
}

func (c *Controller) globalT() stream.Time {
	var g stream.Time
	for i, t := range c.localT {
		if i == 0 || t > g {
			g = t
		}
	}
	return g
}

// evaluate closes one measurement window, re-estimates rates and per-edge
// selectivity, re-plans from the measured values, and proposes a migration
// if the hysteresis gate passes.
func (c *Controller) evaluate(ex plan.Executor, now stream.Time) {
	span := now - c.lastEval
	dArr := make([]int64, len(c.arr))
	rates := make([]float64, len(c.arr))
	for i, a := range c.arr {
		dArr[i] = a - c.prevArr[i]
		rates[i] = float64(dArr[i]) / float64(span)
	}
	del := c.gate.Delivered()
	dRes := del - c.prevDel
	c.lastEval = now
	copy(c.prevArr, c.arr)
	c.prevDel = del

	// Expected unfiltered m-way combinations completed this window: each
	// arrival on stream i probes the live windows of every other stream,
	// whose expected population is rate_j·W_j.
	var cross float64
	for i := range c.arr {
		comb := float64(dArr[i])
		for j := range c.arr {
			if j == i {
				continue
			}
			comb *= rates[j] * float64(c.wins[j])
		}
		cross += comb
	}
	c.ms.Rates = rates
	if cross > 0 {
		sigTot := math.Min(1, math.Max(float64(dRes)/cross, 1e-9))
		if e := len(c.cond.Equis) + len(c.cond.Bands); e > 0 {
			// The model multiplies one σ per predicate edge along a path;
			// decompose the total uniformly so the product reproduces it.
			sigEdge := math.Pow(sigTot, 1/float64(e))
			c.ms.Edges = c.ms.Edges[:0]
			for _, p := range c.cond.Equis {
				c.ms.Edges = append(c.ms.Edges, plan.EdgeSigma{Left: p.LeftStream, Right: p.RightStream, Sigma: sigEdge})
			}
			for _, p := range c.cond.Bands {
				c.ms.Edges = append(c.ms.Edges, plan.EdgeSigma{Left: p.LeftStream, Right: p.RightStream, Sigma: sigEdge})
			}
		}
	}
	c.pruneLogs(ex, now)

	cand := plan.AutoMeasured(c.cond, c.wins, c.opt.Hints, &c.ms)
	if plan.ShapeString(cand) == plan.ShapeString(c.g) {
		return
	}
	costCur := plan.CostOf(c.g, c.opt.Hints, &c.ms)
	costNew := plan.CostOf(cand, c.opt.Hints, &c.ms)
	if costNew*c.opt.Improvement > costCur {
		return
	}
	if now-c.lastMigrate < c.opt.MinDwell {
		return
	}
	c.pending = cand
	c.pendCost = [2]float64{costCur, costNew}
}

// pruneLogs truncates the replay log and the delivery record to what future
// migrations can still need. Any future horizon satisfies H ≥ min localT −
// maxK − maxW − 1 (an unreleased tuple's timestamp exceeds its stream's
// clock minus the buffer size), and clocks only advance; one extra period
// of margin absorbs the K trajectory moving between now and the boundary.
func (c *Controller) pruneLogs(ex plan.Executor, now stream.Time) {
	minLocal := c.localT[0]
	for _, t := range c.localT[1:] {
		if t < minLocal {
			minLocal = t
		}
	}
	var maxK stream.Time
	for _, k := range ex.CurrentKs() {
		if k > maxK {
			maxK = k
		}
	}
	var maxW stream.Time
	for _, w := range c.wins {
		if w > maxW {
			maxW = w
		}
	}
	keep := minLocal - maxK - maxW - c.opt.Period - 1
	if keep <= c.logSince {
		return
	}
	kept := c.log[:0]
	for _, t := range c.log {
		if t.TS >= keep {
			kept = append(kept, t)
		}
	}
	clear(c.log[len(kept):])
	c.log = kept
	c.logSince = keep
	c.gate.Prune(keep)
}

// migrate executes the pending proposal at the current boundary.
func (c *Controller) migrate(ex plan.Executor, now stream.Time) plan.Executor {
	target := c.pending
	start := time.Now()
	nex, rep, err := plan.Migrate(c.g, c.cfg, ex, target, c.cfg,
		plan.MigrateOptions{Log: c.log, LogSince: c.logSince, Gate: c.gate})
	if err != nil {
		if errors.Is(err, plan.ErrReplayShallow) {
			// The pruned log does not reach this boundary's horizon yet; the
			// old executor is untouched. Keep the proposal — clocks advance,
			// so a later boundary's horizon will clear the log floor.
			return nil
		}
		panic(fmt.Sprintf("replan: migration %s→%s failed: %v", rep.FromShape, rep.ToShape, err))
	}
	pause := time.Since(start)
	c.migrations++
	c.totalPause += pause
	if pause > c.maxPause {
		c.maxPause = pause
	}
	ev := Event{
		From: rep.FromShape, To: rep.ToShape,
		At: now, Horizon: rep.Horizon,
		Replayed: rep.Replayed, Suppressed: rep.Suppressed, InFlight: rep.Delivered,
		Pause:    pause,
		FromCost: c.pendCost[0], ToCost: c.pendCost[1],
		FromExplain: c.g.Explain(), ToExplain: target.Explain(),
	}
	c.g = target
	c.pending = nil
	c.lastMigrate = now
	if c.opt.OnEvent != nil {
		c.opt.OnEvent(ev)
	}
	return nex
}
