package replan

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/join"
	"repro/internal/leakcheck"
	"repro/internal/plan"
	"repro/internal/stream"
)

func starCond() *join.Condition { return join.Star(4, []int{0, 1, 2}, []int{0, 0, 0}) }

func resultSig(r stream.Result) string {
	parts := make([]string, len(r.Tuples))
	for i, t := range r.Tuples {
		parts[i] = fmt.Sprintf("%d:%d", t.Src, t.Seq)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// flatReference runs the uninterrupted flat deployment at the fixed K and
// returns its result multiset.
func flatReference(cond *join.Condition, w []stream.Time, k stream.Time, in stream.Batch) map[string]int {
	set := map[string]int{}
	ex := plan.Build(plan.FlatGraph(cond, w),
		plan.ExecConfig{Policy: plan.PolicyStatic, StaticK: k,
			Emit: func(r stream.Result) { set[resultSig(r)]++ }})
	for _, t := range in {
		ex.Push(t)
	}
	ex.Finish()
	return set
}

// TestControllerPhaseFlip drives the full measure→re-plan→migrate loop over
// the dense↔sparse phase-flipping star: the live plan must switch shapes at
// least once per phase change, alternating flat (dense) and tree (sparse),
// while delivering exactly the flat reference's result multiset.
func TestControllerPhaseFlip(t *testing.T) {
	leakcheck.Check(t)
	cond := starCond()
	in := gen.PhaseFlipStar4(4, 500, 11, 12, 600, 200)
	maxD, _ := in.MaxDelay()
	w := []stream.Time{600, 600, 600, 600}
	want := flatReference(starCond(), w, maxD, in.Clone())

	set := map[string]int{}
	var events []Event
	g := plan.FlatGraph(cond, w)
	c := New(g, plan.ExecConfig{Policy: plan.PolicyStatic, StaticK: maxD,
		Emit: func(r stream.Result) { set[resultSig(r)]++ }},
		Options{Period: 2000, MinDwell: 3000, Improvement: 1.2,
			OnEvent: func(ev Event) { events = append(events, ev) }})
	ex := plan.Build(g, c.Config())
	for _, e := range in.Clone() {
		c.Observe(e)
		ex.Push(e)
		if nex := c.Step(ex); nex != nil {
			ex = nex
		}
	}
	ex.Finish()

	if c.Migrations() < 3 {
		t.Fatalf("phase-flipping star migrated %d times over 3 phase changes, want ≥ 3", c.Migrations())
	}
	for i, ev := range events {
		if ev.From == ev.To {
			t.Fatalf("event %d migrates %s to itself", i, ev.From)
		}
		if ev.ToCost*1.2 > ev.FromCost {
			t.Fatalf("event %d violates hysteresis: cost %v → %v", i, ev.FromCost, ev.ToCost)
		}
		if ev.FromExplain == "" || ev.ToExplain == "" {
			t.Fatalf("event %d misses the Explain renderings", i)
		}
	}
	// The dense regime deploys flat, the sparse regime a tree: both
	// directions must occur.
	var toTree, toFlat bool
	for _, ev := range events {
		if ev.From == "flat4" && ev.To != "flat4" {
			toTree = true
		}
		if ev.To == "flat4" {
			toFlat = true
		}
	}
	if !toTree || !toFlat {
		t.Fatalf("want migrations in both directions, got toTree=%v toFlat=%v (%d events)", toTree, toFlat, len(events))
	}

	if len(set) != len(want) {
		t.Fatalf("migrating run delivered %d distinct results, reference %d", len(set), len(want))
	}
	for k, n := range want {
		if set[k] != n {
			t.Fatalf("result %s delivered ×%d, want ×%d", k, set[k], n)
		}
	}
	if got := c.Gate().Delivered(); got != sum(set) {
		t.Fatalf("gate delivered %d, sink saw %d", got, sum(set))
	}
}

func sum(set map[string]int) int64 {
	var n int64
	for _, c := range set {
		n += int64(c)
	}
	return n
}

// TestControllerMeasuresSelectivity checks the windowed estimator: on a
// steady dense feed the uniform edge decomposition must land near the true
// per-predicate selectivity 1/domain.
func TestControllerMeasuresSelectivity(t *testing.T) {
	leakcheck.Check(t)
	cond := starCond()
	in := gen.PhaseFlipStar4(1, 1200, 3, 20, 20, 100) // one phase: domain 20 throughout
	maxD, _ := in.MaxDelay()
	w := []stream.Time{400, 400, 400, 400}
	g := plan.FlatGraph(cond, w)
	c := New(g, plan.ExecConfig{Policy: plan.PolicyStatic, StaticK: maxD},
		Options{Period: 3000, Improvement: 100}) // never migrate
	ex := plan.Build(g, c.Config())
	for _, e := range in {
		c.Observe(e)
		ex.Push(e)
		c.Step(ex)
	}
	ex.Finish()
	ms := c.Measured()
	if len(ms.Edges) != 3 {
		t.Fatalf("star4 has 3 predicate edges, measured %d", len(ms.Edges))
	}
	for _, e := range ms.Edges {
		if e.Sigma < 0.025 || e.Sigma > 0.1 {
			t.Fatalf("edge (%d,%d) measured σ=%.4f, true value 0.05", e.Left, e.Right, e.Sigma)
		}
	}
	for i, r := range ms.Rates {
		if r < 0.05 || r > 0.2 {
			t.Fatalf("stream %d measured rate %.4f tuples/ms, true value 0.1", i, r)
		}
	}
	if c.Migrations() != 0 {
		t.Fatalf("Improvement=100 must suppress migrations, got %d", c.Migrations())
	}
}

// TestControllerDwell pins the dwell hysteresis: with MinDwell beyond the
// stream's length, at most the initial migration can happen.
func TestControllerDwell(t *testing.T) {
	leakcheck.Check(t)
	cond := starCond()
	in := gen.PhaseFlipStar4(4, 500, 5, 12, 600, 100)
	maxD, _ := in.MaxDelay()
	w := []stream.Time{600, 600, 600, 600}
	g := plan.FlatGraph(cond, w)
	c := New(g, plan.ExecConfig{Policy: plan.PolicyStatic, StaticK: maxD},
		Options{Period: 2000, MinDwell: 1 << 40, Improvement: 1.2})
	ex := plan.Build(g, c.Config())
	for _, e := range in {
		c.Observe(e)
		ex.Push(e)
		if nex := c.Step(ex); nex != nil {
			ex = nex
		}
	}
	ex.Finish()
	if c.Migrations() > 0 {
		t.Fatalf("MinDwell beyond stream length still migrated %d times", c.Migrations())
	}
}

// TestControllerLogPruning verifies the replay log and the delivery record
// stay bounded on a long steady run instead of accumulating every arrival.
func TestControllerLogPruning(t *testing.T) {
	leakcheck.Check(t)
	cond := starCond()
	in := gen.PhaseFlipStar4(1, 4000, 9, 40, 40, 100)
	maxD, _ := in.MaxDelay()
	w := []stream.Time{500, 500, 500, 500}
	g := plan.FlatGraph(cond, w)
	c := New(g, plan.ExecConfig{Policy: plan.PolicyStatic, StaticK: maxD},
		Options{Period: 1500, Improvement: 100})
	ex := plan.Build(g, c.Config())
	for _, e := range in {
		c.Observe(e)
		ex.Push(e)
		c.Step(ex)
	}
	ex.Finish()
	if len(c.log) >= len(in) {
		t.Fatalf("replay log never pruned: %d entries for %d arrivals", len(c.log), len(in))
	}
	// Bound: the retained suffix covers maxK+maxW+Period+slack of stream
	// time at 0.4 tuples/ms.
	if maxLen := int(float64(maxD+500+1500)*0.4*2) + 1000; len(c.log) > maxLen {
		t.Fatalf("replay log holds %d entries, want ≤ %d", len(c.log), maxLen)
	}
}
