// Package shard is the key-partitioned parallel execution layer: one
// logical MSWJ (internal/join) runs as N shards on N goroutines, while the
// quality-driven feedback loop of the paper (profiler → monitor → buffer-
// size manager) still makes one global Same-K decision per interval.
//
// # Architecture
//
// The single-threaded spine of the pipeline — K-slack buffers and the
// Synchronizer — is unchanged; disorder handling is inherently sequential
// per stream. The synchronized, mostly timestamp-ordered stream then enters
// the Router instead of one join operator. The router:
//
//   - tracks the global watermark onT and decides in-order/out-of-order
//     exactly like the single operator would;
//   - replays window membership on bare timestamps (tsRing) to obtain the
//     global cross-join size n×(e) for the profiler;
//   - routes each tuple to shards according to the planner's partition
//     scheme (join.Partition): hash on an equi key class, range cells on a
//     band key class with ±Delta overlap replication, or sequence-
//     partitioning of stream 0 with broadcast of the rest.
//
// Each shard owns a full join.Operator (its own windows and
// internal/index structures) and processes its queue in FIFO order under
// the router-supplied global watermark, so a shard never mistakes a
// globally late tuple for an in-order one. Per-tuple result counts and
// materialized results accumulate per shard, indexed by the router's
// arrival counter.
//
// # Deterministic merge
//
// At every adaptation-interval boundary (and at Finish) the runtime runs a
// barrier: all queues drain, then the per-shard streams merge in (arrival,
// shard) order on the ingest thread. Because the partition scheme derives
// every result in exactly one shard, the merged result multiset — and the
// merged statistics feeding the K decision — are bit-for-bit equal to a
// single-shard run, for any shard count. See DESIGN.md §7 for the
// argument.
package shard

import (
	"sync"

	"repro/internal/fault"
	"repro/internal/join"
	"repro/internal/stream"
)

// Config assembles a Runtime.
type Config struct {
	// N is the shard count (≥ 1).
	N int
	// Cond and Windows define the join, as for join.New.
	Cond    *join.Condition
	Windows []stream.Time
	// Materialize builds the shard operators with result buffers so
	// FlushInterval can emit stream.Results; leaving it false keeps the
	// operators' counting-only fast path. EnableMaterialize can switch it
	// on later, but only before the first tuple is routed.
	Materialize bool
	// BatchSize is the number of messages per inter-thread hand-off
	// (default 128). QueueDepth is the per-shard queue capacity in batches
	// (default 64).
	BatchSize  int
	QueueDepth int
	// OnOutOfOrder observes every globally out-of-order synchronized tuple
	// with its delay annotation; it runs on the ingest goroutine. The core
	// pipeline feeds the Tuple-Productivity Profiler's out-of-order charge
	// through it.
	OnOutOfOrder func(delay stream.Time)
	// Inject is the optional fault-injection harness; shard s consults
	// directives armed for worker s at every probe step. Nil disables
	// injection with no per-message cost beyond a nil check.
	Inject *fault.Injector
}

// message kinds.
const (
	msgProbe   = iota // full Alg. 2 step: expire, probe, insert
	msgInsert         // replica path: insert-only (band overlap, broadcast)
	msgBarrier        // quiesce marker; worker acks rt.barrier
)

// msg is one unit of shard input.
type msg struct {
	e    *stream.Tuple
	wm   stream.Time // global watermark including e
	idx  int         // router arrival index within the current interval
	kind uint8
}

// worker is one shard: an operator plus its per-interval accumulators. All
// fields except ch are owned by the worker goroutine between barriers; the
// ingest thread reads and resets them only after a barrier acknowledgment
// (sync.WaitGroup provides the happens-before edges).
type worker struct {
	rt     *Runtime
	id     int
	ch     chan []msg
	op     *join.Operator
	curIdx int
	onAcc  []int64 // onAcc[idx] = results derived by arrival idx in this shard
	res    []stream.Result
	resIdx []int // arrival index per buffered result; non-decreasing
	failed bool  // worker-goroutine-local: set after a recovered panic
	done   chan struct{}

	// Scratch columns for stepProbes, reused across batches.
	es  []*stream.Tuple
	wms []stream.Time
}

// Runtime runs one logical join as cfg.N shards.
type Runtime struct {
	cfg      Config
	router   *Router
	n        int
	finished bool

	workers []*worker
	pend    [][]msg
	pool    sync.Pool
	barrier sync.WaitGroup

	failMu  sync.Mutex
	failure error // first recovered worker panic, surfaced at the next quiesce

	ptr []int // scratch: per-shard result cursor during merge
}

// New builds the runtime and starts its shard goroutines. The partition
// scheme is compiled from cfg.Cond via the planner (NewRouter).
func New(cfg Config) *Runtime {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 128
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	rt := &Runtime{
		cfg:    cfg,
		router: NewRouter(cfg.N, cfg.Cond, cfg.Windows, cfg.OnOutOfOrder),
		n:      cfg.N,
		pend:   make([][]msg, cfg.N),
		ptr:    make([]int, cfg.N),
	}
	rt.pool.New = func() any { return make([]msg, 0, cfg.BatchSize) }
	rt.workers = make([]*worker, cfg.N)
	for s := range rt.workers {
		w := &worker{
			rt:   rt,
			id:   s,
			ch:   make(chan []msg, cfg.QueueDepth),
			op:   join.New(cfg.Cond, cfg.Windows),
			done: make(chan struct{}),
		}
		rt.workers[s] = w
		rt.pend[s] = rt.getBatch()
	}
	if cfg.Materialize {
		rt.installEmit()
	}
	for _, w := range rt.workers {
		go w.run()
	}
	return rt
}

// Scheme returns the compiled partition scheme.
func (rt *Runtime) Scheme() join.PartitionScheme { return rt.router.Scheme() }

// Watermark returns the global synchronized-stream watermark onT, the
// sharded equivalent of Operator.HighWatermark.
func (rt *Runtime) Watermark() stream.Time { return rt.router.Watermark() }

// EnableMaterialize installs result buffers on every shard operator so
// FlushInterval can deliver materialized results. Installing a sink after
// tuples have been routed would silently lose the results already counted
// on the fast path, so it panics once the run has started.
func (rt *Runtime) EnableMaterialize() {
	if rt.router.Started() {
		panic("shard: cannot install a results sink after the sharded run has started — results produced so far were count-only; install the sink before the first Push")
	}
	if rt.cfg.Materialize {
		return
	}
	rt.cfg.Materialize = true
	rt.installEmit()
}

func (rt *Runtime) installEmit() {
	for _, w := range rt.workers {
		w := w
		w.op.SetEmit(func(r stream.Result) {
			w.res = append(w.res, r)
			w.resIdx = append(w.resIdx, w.curIdx)
		})
	}
}

func (rt *Runtime) getBatch() []msg {
	return rt.pool.Get().([]msg)[:0]
}

// Route accepts one synchronized tuple from the spine (K-slack →
// Synchronizer) and forwards it to the shards the partition scheme
// selects. It must be called from a single goroutine.
func (rt *Runtime) Route(e *stream.Tuple) {
	if rt.finished {
		panic("shard: Route on a finished runtime — a sharded run cannot be restarted; build a new pipeline")
	}
	d := rt.router.Observe(e)
	if d.Drop {
		return // out of scope everywhere; the shards would drop it too
	}
	kind := uint8(msgInsert)
	if d.Probe {
		kind = msgProbe
	}
	if d.All {
		for s := 0; s < rt.n; s++ {
			rt.send(s, msg{e: e, wm: d.WM, idx: d.Idx, kind: kind})
		}
		return
	}
	rt.send(d.Owner, msg{e: e, wm: d.WM, idx: d.Idx, kind: kind})
	for _, s := range d.Replicas {
		rt.send(s, msg{e: e, wm: d.WM, kind: msgInsert})
	}
}

// send appends m to shard s's pending batch, flushing a full batch to the
// queue.
func (rt *Runtime) send(s int, m msg) {
	rt.pend[s] = append(rt.pend[s], m)
	if len(rt.pend[s]) >= rt.cfg.BatchSize {
		rt.flush(s)
	}
}

func (rt *Runtime) flush(s int) {
	if len(rt.pend[s]) == 0 {
		return
	}
	rt.workers[s].ch <- rt.pend[s]
	rt.pend[s] = rt.getBatch()
}

// drain quiesces every shard: a barrier message rides at the tail of each
// pending batch, and the workers acknowledge once their queue is empty.
func (rt *Runtime) drain() {
	rt.barrier.Add(rt.n)
	for s := range rt.workers {
		rt.pend[s] = append(rt.pend[s], msg{kind: msgBarrier})
		rt.flush(s)
	}
	rt.barrier.Wait()
}

// FlushInterval drains the shards and merges one interval's streams in
// deterministic (arrival, shard) order: for every globally in-order tuple
// of the interval, buffered results (if materializing) are emitted first,
// then visit receives the tuple's result timestamp, delay annotation,
// global cross size n×(e) and merged result count n^on(e) — exactly the
// per-tuple sequence a single-shard operator would have produced. Interval
// state is reset before returning, so tuples routed afterwards (e.g. by an
// eager K shrink) are accounted to the next interval.
func (rt *Runtime) FlushInterval(
	visit func(ts, delay stream.Time, nCross, nOn int64),
	emit func(stream.Result),
) {
	rt.drain()
	// Surface a worker failure before emitting anything: the interval's
	// results are incomplete (the failed shard stopped deriving), and an
	// interval either emits entirely or not at all — the checkpoint/replay
	// emit gate depends on that boundary alignment (DESIGN.md §10).
	if err := rt.Err(); err != nil {
		panic(err)
	}
	for s := range rt.ptr {
		rt.ptr[s] = 0
	}
	for i := 0; i < rt.router.Arrivals(); i++ {
		var tot int64
		for s, w := range rt.workers {
			if i < len(w.onAcc) {
				tot += w.onAcc[i]
			}
			if emit != nil {
				for rt.ptr[s] < len(w.resIdx) && w.resIdx[rt.ptr[s]] == i {
					emit(w.res[rt.ptr[s]])
					rt.ptr[s]++
				}
			}
		}
		if visit != nil {
			ts, delay, nCross := rt.router.Arrival(i)
			visit(ts, delay, nCross, tot)
		}
	}
	rt.router.ResetInterval()
	for _, w := range rt.workers {
		w.onAcc = w.onAcc[:0]
		clear(w.res)
		w.res = w.res[:0]
		w.resIdx = w.resIdx[:0]
	}
}

// ShardLoads returns, per shard, how many messages its operator has
// processed so far (probe messages only). Call after a FlushInterval for a
// quiesced view; it is a balance diagnostic, not part of the semantics.
func (rt *Runtime) ShardLoads() []int64 {
	out := make([]int64, rt.n)
	for s, w := range rt.workers {
		out[s] = w.op.Processed()
	}
	return out
}

// Close stops the shard goroutines. Call after a final FlushInterval; the
// runtime cannot be reused.
func (rt *Runtime) Close() {
	if rt.finished {
		return
	}
	rt.finished = true
	for s := range rt.workers {
		rt.flush(s)
		close(rt.workers[s].ch)
	}
	for _, w := range rt.workers {
		<-w.done
	}
}

// run is the shard goroutine: FIFO over batches, one operator step per
// message. A panic in a step (injected or genuine) does not kill the
// goroutine: the worker records the failure and switches to drain mode,
// discarding further work but still acknowledging barriers so the driver's
// quiesce protocol never deadlocks. The failure surfaces on the driver
// thread at the next FlushInterval.
func (w *worker) run() {
	defer close(w.done)
	for batch := range w.ch {
		for i := 0; i < len(batch); i++ {
			m := &batch[i]
			if m.kind == msgBarrier {
				w.rt.barrier.Done()
				continue
			}
			if w.failed {
				continue
			}
			if m.kind == msgProbe && w.rt.cfg.Inject == nil {
				// Feed the whole run of consecutive probes through the
				// batched kernel: one recover scope and one kernel entry
				// instead of one per tuple. With fault injection active the
				// per-message path keeps its per-step delay/panic points.
				j := i + 1
				for j < len(batch) && batch[j].kind == msgProbe {
					j++
				}
				w.stepProbes(batch[i:j])
				i = j - 1
				continue
			}
			w.step(m)
		}
		clear(batch)
		w.rt.pool.Put(batch[:0])
	}
}

// stepProbes processes a run of consecutive probe messages via
// Operator.ProcessBatchAt. curIdx must name the in-flight tuple's arrival
// index while its probe executes — the materialized-results emit closure
// reads it per result — so it is advanced between tuples in the onTuple
// callback, which fires after tuple i and before tuple i+1. A panic
// mid-batch fails the worker exactly as the per-message path does; the
// unprocessed batch suffix would have been skipped as failed anyway.
func (w *worker) stepProbes(ms []msg) {
	defer func() {
		if r := recover(); r != nil {
			w.failed = true
			w.rt.fail(&fault.WorkerError{Worker: w.id, Cause: fault.AsError(r)})
		}
	}()
	w.es = w.es[:0]
	w.wms = w.wms[:0]
	for i := range ms {
		w.es = append(w.es, ms[i].e)
		w.wms = append(w.wms, ms[i].wm)
	}
	w.curIdx = ms[0].idx
	w.op.ProcessBatchAt(w.es, w.wms, func(i int, nOn int64) {
		if nOn != 0 {
			w.add(ms[i].idx, nOn)
		}
		if i+1 < len(ms) {
			w.curIdx = ms[i+1].idx
		}
	})
}

// step processes one probe/insert message, converting a panic into a
// recorded typed failure.
func (w *worker) step(m *msg) {
	defer func() {
		if r := recover(); r != nil {
			w.failed = true
			w.rt.fail(&fault.WorkerError{Worker: w.id, Cause: fault.AsError(r)})
		}
	}()
	switch m.kind {
	case msgProbe:
		w.rt.cfg.Inject.MaybeDelay(w.id)
		w.rt.cfg.Inject.MaybePanic(w.id)
		w.curIdx = m.idx
		if nOn := w.op.ProcessAt(m.e, m.wm); nOn != 0 {
			w.add(m.idx, nOn)
		}
	case msgInsert:
		w.op.InsertAt(m.e, m.wm)
	}
}

// fail records the first worker failure.
func (rt *Runtime) fail(err error) {
	rt.failMu.Lock()
	if rt.failure == nil {
		rt.failure = err
	}
	rt.failMu.Unlock()
}

// Err returns the first recorded worker failure, or nil. FlushInterval
// panics with it on the driver thread; Err additionally lets tests and
// diagnostics poll without a quiesce.
func (rt *Runtime) Err() error {
	rt.failMu.Lock()
	defer rt.failMu.Unlock()
	return rt.failure
}

// add accumulates a result count under arrival index idx.
func (w *worker) add(idx int, n int64) {
	for len(w.onAcc) <= idx {
		w.onAcc = append(w.onAcc, 0)
	}
	w.onAcc[idx] += n
}
