package shard

import "repro/internal/stream"

// tsRing is the router's replica of one stream's *global* window
// membership: just the timestamps, ordered, in a head-indexed ring. The
// sharded runtime splits each logical window across shards, but the
// feedback loop (the Tuple-Productivity Profiler's n×(e)) needs the global
// window cardinalities at every in-order arrival — the product of the
// per-shard cardinalities is not the global cross size. Replaying the
// operator's expire/insert decisions on bare timestamps costs a few
// nanoseconds per tuple and keeps the merged statistics bit-for-bit equal
// to a single-shard run.
type tsRing struct {
	buf  []stream.Time // live region buf[head:], non-decreasing
	head int
}

// len returns the number of live timestamps.
func (r *tsRing) len() int { return len(r.buf) - r.head }

// insert adds ts, keeping order. The synchronized stream is mostly
// timestamp-ordered, so nearly every insert is a tail append; globally
// out-of-order residue falls back to binary insertion.
func (r *tsRing) insert(ts stream.Time) {
	if n := len(r.buf); n == r.head || r.buf[n-1] <= ts {
		r.buf = append(r.buf, ts)
		return
	}
	lo, hi := r.head, len(r.buf)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.buf[mid] <= ts {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	r.buf = append(r.buf, 0)
	copy(r.buf[lo+1:], r.buf[lo:])
	r.buf[lo] = ts
}

// expire drops every timestamp strictly older than bound (the shared
// boundary convention: scope [onT − W, onT], expired means TS < bound).
func (r *tsRing) expire(bound stream.Time) {
	h := r.head
	for h < len(r.buf) && r.buf[h] < bound {
		h++
	}
	r.head = h
	if r.head >= 64 && r.head >= len(r.buf)-r.head {
		n := copy(r.buf, r.buf[r.head:])
		r.buf = r.buf[:n]
		r.head = 0
	}
}

// tupleRing is tsRing over the tuples themselves: the router's optional
// retention structure (Router.Retain) mirroring one stream's global window
// membership so the networked driver can capture checkpoints without
// pulling window state off the workers. Same ordering and expiry rules as
// tsRing; expired slots are nilled so the ring never pins dead tuples.
type tupleRing struct {
	buf  []*stream.Tuple // live region buf[head:], non-decreasing TS
	head int
}

// live returns the live region.
func (r *tupleRing) live() []*stream.Tuple { return r.buf[r.head:] }

// insert adds e, keeping timestamp order (appending after equal stamps,
// like tsRing, so retention and replicas stay in lockstep).
func (r *tupleRing) insert(e *stream.Tuple) {
	if n := len(r.buf); n == r.head || r.buf[n-1].TS <= e.TS {
		r.buf = append(r.buf, e)
		return
	}
	lo, hi := r.head, len(r.buf)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.buf[mid].TS <= e.TS {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	r.buf = append(r.buf, nil)
	copy(r.buf[lo+1:], r.buf[lo:])
	r.buf[lo] = e
}

// expire drops every tuple with TS strictly older than bound.
func (r *tupleRing) expire(bound stream.Time) {
	h := r.head
	for h < len(r.buf) && r.buf[h].TS < bound {
		r.buf[h] = nil
		h++
	}
	r.head = h
	if r.head >= 64 && r.head >= len(r.buf)-r.head {
		n := copy(r.buf, r.buf[r.head:])
		clear(r.buf[n:])
		r.buf = r.buf[:n]
		r.head = 0
	}
}
