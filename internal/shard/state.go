package shard

import (
	"sort"

	"repro/internal/fault"
	"repro/internal/stream"
)

// State is the serializable snapshot of a quiesced Runtime: the global
// watermark, the router's timestamp replicas (verbatim — they supply the
// profiler's n×(e) and must survive stale-entry differences exactly), and
// the per-stream global window contents, deduplicated across shards and in
// canonical (TS, Seq) order. Per-shard window layouts are NOT serialized:
// Restore re-routes the canonical windows through the deterministic
// partition scheme, which lands every tuple on exactly the shards it
// occupied before (routing is a pure function of key bits and shard count).
// Interval accumulators (delays, crosses, result buffers) are empty by the
// caller's FlushInterval contract and need no representation.
type State struct {
	WM      stream.Time
	Started bool
	Reps    [][]stream.Time // per stream: live router-replica timestamps
	Windows [][]int32       // per stream: deduped tuple IDs, (TS, Seq) order
}

// State captures the runtime's state. Call only after FlushInterval: the
// workers are quiesced (the barrier's happens-before edge makes their
// operator state readable here) and the interval accumulators are empty.
func (rt *Runtime) State(tt *fault.TupleTable) State {
	var st State
	st.WM, st.Started, st.Reps = rt.router.Snapshot()
	st.Windows = make([][]int32, rt.cfg.Cond.M)
	seen := map[*stream.Tuple]bool{}
	for i := range st.Windows {
		var tuples []*stream.Tuple
		for _, w := range rt.workers {
			for _, t := range w.op.WindowTuples(i) {
				if !seen[t] {
					seen[t] = true
					tuples = append(tuples, t)
				}
			}
		}
		sort.Slice(tuples, func(a, b int) bool { return stream.Less(tuples[a], tuples[b]) })
		for _, t := range tuples {
			st.Windows[i] = append(st.Windows[i], tt.ID(t))
		}
	}
	return st
}

// Restore loads a captured state into a freshly constructed Runtime (same
// condition, windows and shard count). Window tuples re-enter through the
// insert-only routing path under the restored watermark: route() is
// deterministic on the tuple key, so replicas land on the same shards as in
// the original run, and the in-scope filter of InsertAt drops only entries
// that were already expired-but-unpurged — which are invisible to every
// future probe (DESIGN.md §10). Router accounting (OnOutOfOrder, interval
// slices) is bypassed: these inserts are reconstruction, not arrivals.
func (rt *Runtime) Restore(st State, ta *fault.TupleArena) {
	rt.router.RestoreSpine(st.WM, st.Started, st.Reps)
	wm := st.WM
	for _, ids := range st.Windows {
		for _, id := range ids {
			e := ta.Tuple(id)
			probeAll, owner, replicas := rt.router.RouteOnly(e)
			if probeAll {
				for s := 0; s < rt.n; s++ {
					rt.send(s, msg{e: e, wm: wm, kind: msgInsert})
				}
				continue
			}
			rt.send(owner, msg{e: e, wm: wm, kind: msgInsert})
			for _, s := range replicas {
				rt.send(s, msg{e: e, wm: wm, kind: msgInsert})
			}
		}
	}
	rt.drain()
}
