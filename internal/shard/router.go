package shard

// Router is the sequential half of the sharded runtime: the driver-side
// state machine that tracks the global watermark, replays global window
// membership on bare timestamps (tsRing) for the profiler's n×(e), records
// the per-interval accounting the deterministic merge consumes, and maps
// every synchronized tuple to its shard set through the planner's partition
// scheme. It performs no I/O and owns no goroutines, which is exactly what
// lets the in-process Runtime (goroutine workers, this package) and the
// networked driver session (internal/net, TCP workers) share one routing
// and replay implementation: both call Observe per tuple and dispatch the
// returned decision over their own transport.
//
// A Router is single-goroutine, like the spine that feeds it.

import (
	"repro/internal/index"
	"repro/internal/join"
	"repro/internal/stream"
)

// Dispatch is one routing decision: where a synchronized tuple goes and as
// what. Replicas aliases router scratch and is only valid until the next
// Observe/RouteOnly call.
type Dispatch struct {
	// Drop: the tuple is out of scope everywhere (globally out-of-order and
	// older than every window); no shard needs it.
	Drop bool
	// Probe: the tuple was globally in-order and performs a full Alg. 2
	// step (expire, probe, insert) on its owner — or on every shard when
	// All is set. Otherwise the tuple is insert-only everywhere.
	Probe bool
	// Idx is the router arrival index within the current interval; valid
	// only when Probe is set.
	Idx int
	// WM is the global watermark including this tuple.
	WM stream.Time
	// All: every shard receives the tuple (probe-all for broadcast routes,
	// insert-all for their out-of-order arrivals). Owner/Replicas are
	// meaningless when set.
	All bool
	// Owner is the single probing (or, out-of-order, inserting) shard.
	Owner int
	// Replicas lists additional insert-only shards (band ±Delta overlap).
	Replicas []int
}

// Router replicates the single operator's in-order/out-of-order decisions
// and global window cardinalities, and computes shard routes.
type Router struct {
	n       int
	windows []stream.Time
	scheme  join.PartitionScheme
	cell    float64 // band mode: range-cell width (≥ 2·Delta)

	wm      stream.Time
	started bool
	reps    []tsRing

	// Per-interval accounting, indexed by arrival idx.
	delays  []stream.Time
	crosses []int64
	resTS   []stream.Time

	// onOOO observes every globally out-of-order synchronized tuple with
	// its delay annotation (the profiler's out-of-order charge).
	onOOO func(delay stream.Time)

	targets []int // scratch: replica shard set of the tuple being routed

	// held mirrors reps with the tuples themselves when retention is on
	// (Retain): the networked driver keeps the global window contents
	// locally so checkpoints need no worker-state wire protocol.
	held []tupleRing
}

// NewRouter compiles the partition scheme from cond and builds a router
// for n shards. onOutOfOrder may be nil.
func NewRouter(n int, cond *join.Condition, windows []stream.Time, onOutOfOrder func(stream.Time)) *Router {
	if n < 1 {
		panic("shard: need at least one shard")
	}
	if len(windows) != cond.M {
		panic("shard: window count must match condition arity")
	}
	r := &Router{
		n:       n,
		windows: windows,
		scheme:  cond.Partition(),
		reps:    make([]tsRing, cond.M),
		onOOO:   onOutOfOrder,
		targets: make([]int, 0, n),
	}
	if r.scheme.Mode == join.PartitionBand {
		// A cell at least 2·Delta wide keeps the ±Delta replication span
		// inside at most two cells, so every tuple lands in ≤ 2 shards. 4×
		// halves the fraction of boundary tuples that need the second copy.
		r.cell = 4 * r.scheme.Delta
	}
	return r
}

// Retain switches on driver-side tuple retention: held windows mirror the
// timestamp replicas exactly (same insert and expire points), giving the
// networked session a local copy of the global window contents for
// checkpoint capture. Call before the first Observe.
func (r *Router) Retain() {
	if r.held == nil {
		r.held = make([]tupleRing, len(r.reps))
	}
}

// Scheme returns the compiled partition scheme.
func (r *Router) Scheme() join.PartitionScheme { return r.scheme }

// Watermark returns the global synchronized-stream watermark onT.
func (r *Router) Watermark() stream.Time { return r.wm }

// Started reports whether any tuple has been observed.
func (r *Router) Started() bool { return r.started }

// Observe runs the router's per-tuple step — watermark update, replica
// expire/insert, interval accounting, shard-set computation — and returns
// the dispatch decision. The caller forwards the tuple accordingly; the
// returned Replicas slice is valid until the next call.
func (r *Router) Observe(e *stream.Tuple) Dispatch {
	r.started = true
	prev := r.wm
	wm := prev
	if e.TS > wm {
		wm = e.TS
	}
	r.wm = wm
	src := e.Src
	if e.TS >= prev {
		// Globally in-order: replicate the operator's expire-and-count on
		// the timestamp replicas, record the interval accounting, route.
		idx := len(r.delays)
		var nCross int64 = 1
		for j := range r.reps {
			if j == src {
				continue
			}
			bound := e.TS - r.windows[j]
			r.reps[j].expire(bound)
			if r.held != nil {
				r.held[j].expire(bound)
			}
			nCross *= int64(r.reps[j].len())
		}
		r.delays = append(r.delays, e.Delay)
		r.crosses = append(r.crosses, nCross)
		r.resTS = append(r.resTS, e.TS)
		r.insert(src, e)
		probeAll, owner := r.route(e)
		return Dispatch{Probe: true, Idx: idx, WM: wm, All: probeAll, Owner: owner, Replicas: r.targets}
	}
	// Globally out-of-order: no probing anywhere (lines 9–10 of Alg. 2).
	if r.onOOO != nil {
		r.onOOO(e.Delay)
	}
	if e.TS < wm-r.windows[src] {
		return Dispatch{Drop: true}
	}
	r.insert(src, e)
	probeAll, owner := r.route(e)
	return Dispatch{WM: wm, All: probeAll, Owner: owner, Replicas: r.targets}
}

func (r *Router) insert(src int, e *stream.Tuple) {
	r.reps[src].insert(e.TS)
	if r.held != nil {
		r.held[src].insert(e)
	}
}

// RouteOnly computes the shard set of e without any watermark, replica or
// accounting side effect — the restore path, where window tuples re-enter
// as reconstruction rather than arrivals. Replicas is valid until the next
// Observe/RouteOnly call.
func (r *Router) RouteOnly(e *stream.Tuple) (probeAll bool, owner int, replicas []int) {
	probeAll, owner = r.route(e)
	return probeAll, owner, r.targets
}

// route computes the shard set of e: either "every shard probes"
// (broadcast streams), or an owner shard plus — in band mode — replica
// targets left in r.targets. r.targets is only valid until the next call.
func (r *Router) route(e *stream.Tuple) (probeAll bool, owner int) {
	r.targets = r.targets[:0]
	switch r.scheme.Mode {
	case join.PartitionBand:
		key := e.Attr(r.scheme.KeyAttr[e.Src])
		owner = r.bandShard(key)
		d := r.scheme.Delta
		lo, hi := r.bandCell(key-d), r.bandCell(key+d)
		for c := lo; c <= hi; c++ {
			if s := r.cellShard(c); s != owner && !contains(r.targets, s) {
				r.targets = append(r.targets, s)
			}
		}
		return false, owner
	default: // PartitionEqui, PartitionNone
		a := -1
		if r.scheme.Covered(e.Src) {
			a = r.scheme.KeyAttr[e.Src]
		}
		switch {
		case a >= 0:
			bits, ok := index.KeyBits(e.Attr(a))
			if !ok {
				bits = 0 // NaN key: can never match, any shard will do
			}
			return false, r.hashShard(bits)
		case r.scheme.Mode == join.PartitionNone && e.Src == 0:
			return false, r.hashShard(e.Seq)
		default:
			return true, 0
		}
	}
}

// hashShard maps canonical key bits (or a sequence number) to a shard via
// the shared index.Mix64 finalizer (see there for why a full avalanche is
// required before the modulo).
func (r *Router) hashShard(bits uint64) int {
	return int(index.Mix64(bits) % uint64(r.n))
}

// bandCell quantizes a band key to its range cell; the saturating clamp
// (see index.RangeCell) is what keeps one tuple's replication span
// enclosing the owner cell of every band partner.
func (r *Router) bandCell(key float64) int64 { return index.RangeCell(key, r.cell) }

func (r *Router) bandShard(key float64) int { return r.cellShard(r.bandCell(key)) }

func (r *Router) cellShard(cell int64) int { return index.CellOwner(cell, r.n) }

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Arrivals returns the number of globally in-order tuples observed in the
// current interval — the length of the merge loop.
func (r *Router) Arrivals() int { return len(r.delays) }

// Arrival returns the accounting of in-order tuple i of the interval: its
// result timestamp, delay annotation and global cross size n×(e).
func (r *Router) Arrival(i int) (ts, delay stream.Time, nCross int64) {
	return r.resTS[i], r.delays[i], r.crosses[i]
}

// ResetInterval clears the per-interval accounting; tuples observed
// afterwards are accounted to the next interval.
func (r *Router) ResetInterval() {
	r.delays = r.delays[:0]
	r.crosses = r.crosses[:0]
	r.resTS = r.resTS[:0]
}

// Snapshot copies the router spine for a checkpoint: watermark, started
// flag, and the per-stream replica timestamps (verbatim — they supply the
// profiler's n×(e) and must survive stale-entry differences exactly).
func (r *Router) Snapshot() (wm stream.Time, started bool, reps [][]stream.Time) {
	reps = make([][]stream.Time, len(r.reps))
	for i := range r.reps {
		rep := &r.reps[i]
		reps[i] = append([]stream.Time(nil), rep.buf[rep.head:]...)
	}
	return r.wm, r.started, reps
}

// RestoreSpine loads a Snapshot back into a fresh router.
func (r *Router) RestoreSpine(wm stream.Time, started bool, reps [][]stream.Time) {
	r.wm = wm
	r.started = started
	for i := range r.reps {
		r.reps[i] = tsRing{buf: append([]stream.Time(nil), reps[i]...)}
	}
}

// Held returns the retained tuples of stream i (Retain mode), in timestamp
// order; the slice aliases router state and is only valid until the next
// Observe.
func (r *Router) Held(i int) []*stream.Tuple { return r.held[i].live() }

// RestoreHeld loads retained windows (Retain mode). A restored in-process
// snapshot may carry expired-but-unpurged entries beyond the replica scope;
// they are pruned by the normal expire cadence and are invisible to every
// future probe, so the superset is harmless.
func (r *Router) RestoreHeld(ws [][]*stream.Tuple) {
	r.Retain()
	for i := range r.held {
		r.held[i] = tupleRing{}
		for _, e := range ws[i] {
			r.held[i].insert(e)
		}
	}
}
