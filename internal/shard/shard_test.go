package shard

import (
	"fmt"
	"math"
	"math/rand"
	"repro/internal/leakcheck"
	"sort"
	"testing"

	"repro/internal/join"
	"repro/internal/stream"
)

// tupleRecord is one in-order tuple's feedback-loop record.
type tupleRecord struct {
	ts, delay   stream.Time
	nCross, nOn int64
}

// refRun executes the sequence on a single operator and captures the
// per-tuple productivity records, the out-of-order delays and the result
// multiset — the exact streams the sharded runtime must reproduce.
func refRun(cond *join.Condition, windows []stream.Time, seq []*stream.Tuple) (recs []tupleRecord, ooo []stream.Time, results map[string]int) {
	results = map[string]int{}
	op := join.New(cond, windows,
		join.WithEmit(func(r stream.Result) { results[sig(r)]++ }),
		join.WithProcessedHook(func(e *stream.Tuple, nCross, nOn int64, inOrder bool) {
			if inOrder {
				recs = append(recs, tupleRecord{e.TS, e.Delay, nCross, nOn})
			} else {
				ooo = append(ooo, e.Delay)
			}
		}))
	for _, e := range seq {
		op.Process(e)
	}
	return recs, ooo, results
}

// shardRun executes the same sequence through a Runtime with n shards,
// flushing at every flushEvery tuples to exercise interval resets, and
// returns the merged streams.
func shardRun(t *testing.T, cond *join.Condition, windows []stream.Time, seq []*stream.Tuple, n, flushEvery int) (recs []tupleRecord, ooo []stream.Time, results map[string]int) {
	t.Helper()
	results = map[string]int{}
	rt := New(Config{
		N: n, Cond: cond, Windows: windows, Materialize: true,
		BatchSize:    7, // tiny batches widen the interleaving surface
		OnOutOfOrder: func(d stream.Time) { ooo = append(ooo, d) },
	})
	flush := func() {
		rt.FlushInterval(func(ts, delay stream.Time, nCross, nOn int64) {
			recs = append(recs, tupleRecord{ts, delay, nCross, nOn})
		}, func(r stream.Result) { results[sig(r)]++ })
	}
	for i, e := range seq {
		rt.Route(e)
		if flushEvery > 0 && (i+1)%flushEvery == 0 {
			flush()
		}
	}
	flush()
	rt.Close()
	return recs, ooo, results
}

// sig is a stable multiset signature of one result.
func sig(r stream.Result) string {
	s := ""
	for _, t := range r.Tuples {
		s += fmt.Sprintf("%d:%d,", t.Src, t.Seq)
	}
	return s
}

// genSeq builds a synchronized-stream-like sequence: mostly ordered with a
// disordered residue, attrs drawn from small domains so all three
// predicate kinds fire.
func genSeq(rng *rand.Rand, m, n int, w stream.Time) []*stream.Tuple {
	var out []*stream.Tuple
	ts := stream.Time(1000)
	for i := 0; i < n; i++ {
		ts += stream.Time(rng.Intn(20))
		e := &stream.Tuple{
			TS:  ts,
			Seq: uint64(i),
			Src: rng.Intn(m),
			Attrs: []float64{
				float64(rng.Intn(8)),
				float64(rng.Intn(50)) / 2,
				rng.Float64() * 10,
			},
		}
		if rng.Intn(5) == 0 { // out-of-order residue, occasionally in scope
			e.TS -= stream.Time(rng.Intn(int(2 * w)))
			if e.TS < 0 {
				e.TS = 0
			}
		}
		e.Delay = stream.Time(rng.Intn(100))
		out = append(out, e)
	}
	return out
}

// conds enumerates the condition shapes of all three partition modes.
func testConds(m int) map[string]func() *join.Condition {
	cs := map[string]func() *join.Condition{
		"equichain": func() *join.Condition { return join.EquiChain(m, 0) },
		"bandchain": func() *join.Condition {
			c := join.Cross(m)
			for i := 0; i+1 < m; i++ {
				c.Band(i, 1, i+1, 1, 1.5)
			}
			return c
		},
		"band+generic": func() *join.Condition {
			c := join.Cross(m)
			for i := 0; i+1 < m; i++ {
				c.Band(i, 1, i+1, 1, 2)
			}
			return c.Where([]int{0, m - 1}, func(a []*stream.Tuple) bool {
				return math.Abs(a[0].Attr(2)-a[m-1].Attr(2)) < 4
			})
		},
		"generic-only": func() *join.Condition {
			return join.Cross(m).Where([]int{0, m - 1}, func(a []*stream.Tuple) bool {
				return a[0].Attr(0) == a[m-1].Attr(0) // equi the planner can't see
			})
		},
		"equi+band": func() *join.Condition {
			c := join.EquiChain(m, 0)
			c.Band(0, 1, m-1, 1, 3)
			return c
		},
	}
	if m >= 3 {
		// Partial equi cover: S0.a0 = S1.a0 only, the rest generic.
		cs["partial-equi"] = func() *join.Condition {
			return join.Cross(m).Equi(0, 0, 1, 0).
				Where([]int{1, 2}, func(a []*stream.Tuple) bool {
					return a[1].Attr(2) < a[2].Attr(2)+5
				})
		}
	}
	return cs
}

// TestShardedMatchesSingleOperator is the layer-boundary differential: for
// random workloads and every partition mode, the merged per-tuple
// productivity records, out-of-order charges and result multisets of the
// sharded runtime equal a single operator's, for shard counts 1, 2, 4, 8.
func TestShardedMatchesSingleOperator(t *testing.T) {
	leakcheck.Check(t)
	for _, m := range []int{2, 3} {
		for name, mk := range testConds(m) {
			for _, n := range []int{1, 2, 4, 8} {
				t.Run(fmt.Sprintf("m=%d/%s/shards=%d", m, name, n), func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(31*m + n)))
					w := make([]stream.Time, m)
					for i := range w {
						w[i] = 150
					}
					seq := genSeq(rng, m, 1200, 150)
					wantRecs, wantOOO, wantRes := refRun(mk(), w, seq)
					gotRecs, gotOOO, gotRes := shardRun(t, mk(), w, seq, n, 257)

					if len(gotRecs) != len(wantRecs) {
						t.Fatalf("in-order records: %d vs %d", len(gotRecs), len(wantRecs))
					}
					for i := range wantRecs {
						if gotRecs[i] != wantRecs[i] {
							t.Fatalf("record %d: %+v vs %+v", i, gotRecs[i], wantRecs[i])
						}
					}
					if !equalTimes(gotOOO, wantOOO) {
						t.Fatalf("out-of-order delays diverge: %d vs %d entries", len(gotOOO), len(wantOOO))
					}
					if !equalMultiset(gotRes, wantRes) {
						t.Fatalf("result multisets diverge: %d vs %d distinct", len(gotRes), len(wantRes))
					}
				})
			}
		}
	}
}

func equalTimes(a, b []stream.Time) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]stream.Time(nil), a...)
	bs := append([]stream.Time(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func equalMultiset(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestShardedDeterministicAcrossRuns: two identical sharded runs must
// produce identical merged sequences (results in the same order), for
// every mode — the merge is deterministic, not merely multiset-equal.
func TestShardedDeterministicAcrossRuns(t *testing.T) {
	leakcheck.Check(t)
	for name, mk := range testConds(3) {
		t.Run(name, func(t *testing.T) {
			w := []stream.Time{150, 150, 150}
			run := func() []string {
				rng := rand.New(rand.NewSource(99))
				seq := genSeq(rng, 3, 800, 150)
				var order []string
				rt := New(Config{N: 4, Cond: mk(), Windows: w, Materialize: true})
				for _, e := range seq {
					rt.Route(e)
				}
				rt.FlushInterval(nil, func(r stream.Result) { order = append(order, sig(r)) })
				rt.Close()
				return order
			}
			a, b := run(), run()
			if len(a) != len(b) {
				t.Fatalf("lengths %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("order diverges at %d: %s vs %s", i, a[i], b[i])
				}
			}
		})
	}
}

// TestBandHugeKeySaturation: band keys near the cell-clamp boundary must
// still meet. A collapse-to-zero clamp once routed the two sides of the
// boundary to unrelated cells, silently dropping their result; the clamp
// must saturate monotonically instead.
func TestBandHugeKeySaturation(t *testing.T) {
	leakcheck.Check(t)
	mk := func() *join.Condition { return join.Cross(2).Band(0, 0, 1, 0, 1) }
	w := []stream.Time{100, 100}
	seq := []*stream.Tuple{
		{TS: 10, Seq: 0, Src: 0, Attrs: []float64{4e15 - 0.5}},
		{TS: 11, Seq: 1, Src: 1, Attrs: []float64{4e15 + 0.5}},
		{TS: 12, Seq: 2, Src: 0, Attrs: []float64{-4e15 - 0.5}},
		{TS: 13, Seq: 3, Src: 1, Attrs: []float64{-4e15 + 0.5}},
		{TS: 14, Seq: 4, Src: 0, Attrs: []float64{math.Inf(1)}},
		{TS: 15, Seq: 5, Src: 1, Attrs: []float64{math.NaN()}},
	}
	_, _, wantRes := refRun(mk(), w, seq)
	if len(wantRes) != 2 {
		t.Fatalf("reference: want 2 results (one per boundary pair), got %d", len(wantRes))
	}
	for _, n := range []int{2, 4, 8} {
		_, _, gotRes := shardRun(t, mk(), w, seq, n, 0)
		if !equalMultiset(gotRes, wantRes) {
			t.Fatalf("shards=%d: boundary-straddling band pairs lost: %d vs %d results",
				n, len(gotRes), len(wantRes))
		}
	}
}

// TestReplicaOnlyShardStaysBounded: a shard that receives only insert
// messages (band ±Δ replicas under key skew) must still expire its
// windows; window cardinality is bounded by the logical window extent.
func TestReplicaOnlyShardStaysBounded(t *testing.T) {
	leakcheck.Check(t)
	op := join.New(join.EquiChain(2, 0), []stream.Time{100, 100})
	for i := 0; i < 5000; i++ {
		wm := stream.Time(1000 + i)
		op.InsertAt(&stream.Tuple{TS: wm, Seq: uint64(i), Src: 0, Attrs: []float64{1}}, wm)
	}
	if n := op.WindowLen(0); n > 101 {
		t.Fatalf("insert-only window grew to %d tuples; want ≤ window extent", n)
	}
}

// TestRouteAfterClosePanics: a sharded run cannot be restarted.
func TestRouteAfterClosePanics(t *testing.T) {
	leakcheck.Check(t)
	rt := New(Config{N: 2, Cond: join.EquiChain(2, 0), Windows: []stream.Time{100, 100}})
	rt.Route(&stream.Tuple{TS: 1, Attrs: []float64{1}})
	rt.FlushInterval(nil, nil)
	rt.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Route after Close must panic")
		}
	}()
	rt.Route(&stream.Tuple{TS: 2, Attrs: []float64{1}})
}

// TestEnableMaterializeAfterStartPanics: installing a sink mid-run would
// lose the results already counted on the fast path.
func TestEnableMaterializeAfterStartPanics(t *testing.T) {
	leakcheck.Check(t)
	rt := New(Config{N: 2, Cond: join.EquiChain(2, 0), Windows: []stream.Time{100, 100}})
	defer rt.Close()
	rt.Route(&stream.Tuple{TS: 1, Attrs: []float64{1}})
	defer func() {
		if recover() == nil {
			t.Fatal("EnableMaterialize after start must panic")
		}
	}()
	rt.EnableMaterialize()
}

// TestShardLoadsSpread sanity-checks that hash partitioning actually
// spreads an equi workload over the shards.
func TestShardLoadsSpread(t *testing.T) {
	leakcheck.Check(t)
	rng := rand.New(rand.NewSource(5))
	rt := New(Config{N: 4, Cond: join.EquiChain(2, 0), Windows: []stream.Time{200, 200}})
	for _, e := range genSeq(rng, 2, 4000, 200) {
		rt.Route(e)
	}
	rt.FlushInterval(nil, nil)
	loads := rt.ShardLoads()
	rt.Close()
	busy := 0
	for _, l := range loads {
		if l > 0 {
			busy++
		}
	}
	if busy < 3 {
		t.Fatalf("expected ≥3 of 4 shards busy, loads = %v", loads)
	}
}
