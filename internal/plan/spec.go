package plan

// The textual plan-spec grammar of cmd/qdhjrun's -plan flag:
//
//	auto                       cost-model default (uses the shard hint)
//	flat                       single MJoin operator
//	shard | shard:N            key-partitioned flat operator
//	tree                       left-deep spine, natural stream order
//	tree-shard | tree-shard:N  spine with every keyed stage sharded
//	(s-expression)             explicit shape: "((0 1) 2)"; n-ary groups
//	                           fold left-deep; an xN suffix on a group
//	                           shards that stage: "((0 1)x4 2)x4"

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/join"
	"repro/internal/stream"
)

// ParseSpec compiles a plan spec for cond. shards is the hint the named
// forms use when the spec carries no explicit count.
func ParseSpec(spec string, cond *join.Condition, windows []stream.Time, shards int) (*Graph, error) {
	check(cond, windows)
	spec = strings.TrimSpace(spec)
	name, arg, hasArg := strings.Cut(spec, ":")
	n := shards
	if hasArg {
		v, err := strconv.Atoi(arg)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("plan: bad shard count %q in spec %q", arg, spec)
		}
		n = v
	}
	// The sharded named forms need SOME count; default to 4 only when
	// neither the spec nor the hint gave one — an explicit "shard:1" means
	// the single-shard baseline and must stay 1.
	defaulted := n
	if !hasArg && defaulted <= 1 {
		defaulted = 4
	}
	switch name {
	case "auto":
		return Auto(cond, windows, Hints{Shards: n}), nil
	case "flat":
		return FlatGraph(cond, windows), nil
	case "shard":
		return ShardedFlat(cond, windows, defaulted), nil
	case "tree":
		return Spine(cond, windows), nil
	case "tree-shard":
		n = defaulted
		if n <= 1 {
			return Spine(cond, windows), nil
		}
		g := Spine(cond, windows)
		root, keyed := shardStages(cond, g.Root, n)
		if keyed == 0 {
			return nil, fmt.Errorf("plan: tree-shard on a condition with no keyed stage — no stage can be partitioned")
		}
		g.Root = root
		g.Reason = fmt.Sprintf("left-deep tree, keyed stages × %d shards (explicit)", n)
		return g, nil
	}
	if !strings.HasPrefix(spec, "(") {
		return nil, fmt.Errorf("plan: unknown spec %q (want auto|flat|shard[:N]|tree|tree-shard[:N] or an s-expression)", spec)
	}
	p := &specParser{src: spec, cond: cond}
	node, err := p.group()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("plan: trailing input %q in spec", p.src[p.pos:])
	}
	seen := make([]bool, cond.M)
	for _, s := range node.Streams() {
		if seen[s] {
			return nil, fmt.Errorf("plan: spec covers stream %d twice", s)
		}
		seen[s] = true
	}
	for s, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("plan: spec misses stream %d of %d", s, cond.M)
		}
	}
	return &Graph{Cond: cond, Windows: windows, Root: node,
		Reason: "explicit shape spec"}, nil
}

type specParser struct {
	src  string
	pos  int
	cond *join.Condition
}

func (p *specParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == ',') {
		p.pos++
	}
}

// group parses "(" item+ ")" ["x" N], folding n-ary groups left-deep.
func (p *specParser) group() (Node, error) {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '(' {
		return nil, fmt.Errorf("plan: expected '(' at %q", p.src[p.pos:])
	}
	p.pos++
	var items []Node
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("plan: unterminated group in spec %q", p.src)
		}
		if p.src[p.pos] == ')' {
			p.pos++
			break
		}
		it, err := p.item()
		if err != nil {
			return nil, err
		}
		items = append(items, it)
	}
	if len(items) < 2 {
		return nil, fmt.Errorf("plan: group needs at least two inputs, got %d", len(items))
	}
	node := items[0]
	for _, r := range items[1:] {
		node = Stage{Left: node, Right: r}
	}
	// Optional xN shard suffix.
	if p.pos < len(p.src) && p.src[p.pos] == 'x' {
		start := p.pos + 1
		end := start
		for end < len(p.src) && p.src[end] >= '0' && p.src[end] <= '9' {
			end++
		}
		n, err := strconv.Atoi(p.src[start:end])
		if err != nil || n < 2 {
			return nil, fmt.Errorf("plan: bad shard suffix %q", p.src[p.pos:end])
		}
		p.pos = end
		st, ok := node.(Stage)
		if !ok {
			return nil, fmt.Errorf("plan: xN suffix on a non-stage group")
		}
		route, keyed := StageRoute(p.cond, st)
		if !keyed {
			return nil, fmt.Errorf("plan: stage %v⋈%v has no equi or band cross key and cannot be sharded",
				st.Left.Streams(), st.Right.Streams())
		}
		node = Shard{N: n, Route: route, Child: st}
	}
	return node, nil
}

func (p *specParser) item() (Node, error) {
	if p.src[p.pos] == '(' {
		return p.group()
	}
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("plan: expected stream index or group at %q", p.src[start:])
	}
	s, _ := strconv.Atoi(p.src[start:p.pos])
	if s >= p.cond.M {
		return nil, fmt.Errorf("plan: stream %d outside [0,%d)", s, p.cond.M)
	}
	return Leaf{Stream: s}, nil
}
