package plan

// Differential tests at the executor seam: every deployment the planner can
// emit — flat, sharded flat, bushy trees, stage-sharded trees — must
// produce the result multiset of the flat reference bit-for-bit, on random
// equi/band/generic condition mixes, with buffers covering the disorder.
// CI runs these under -race (the stage workers and the shard runtime are
// the concurrent parts).

import (
	"fmt"
	"math/rand"
	"repro/internal/leakcheck"
	"strings"
	"testing"

	"repro/internal/join"
	"repro/internal/stream"
)

// mixWorkload builds an m-stream feed with bounded disorder and two
// attributes per tuple (an integer-ish key and a continuous value).
func mixWorkload(m, rounds int, seed int64, domain int) stream.Batch {
	rng := rand.New(rand.NewSource(seed))
	var out stream.Batch
	var seq uint64
	ts := stream.Time(3000)
	for i := 0; i < rounds; i++ {
		ts += 10
		for src := 0; src < m; src++ {
			t := ts
			if rng.Intn(4) == 0 {
				t -= stream.Time(rng.Intn(1500))
			}
			out = append(out, &stream.Tuple{TS: t, Seq: seq, Src: src,
				Attrs: []float64{float64(rng.Intn(domain)), float64(rng.Intn(200))}})
			seq++
		}
	}
	return out
}

func resultSig(r stream.Result) string {
	var b strings.Builder
	for _, t := range r.Tuples {
		if t != nil {
			fmt.Fprintf(&b, "%d:%d,", t.Src, t.Seq)
		}
	}
	return b.String()
}

// runGraph executes a graph at the fixed buffer size k and returns the
// result multiset.
func runGraph(g *Graph, k stream.Time, in stream.Batch) map[string]int {
	set := map[string]int{}
	ex := Build(g, ExecConfig{Policy: PolicyStatic, StaticK: k,
		Emit: func(r stream.Result) { set[resultSig(r)]++ }})
	for _, e := range in {
		ex.Push(e)
	}
	ex.Finish()
	return set
}

func sameMultiset(t *testing.T, name string, want, got map[string]int) {
	t.Helper()
	if len(want) == 0 {
		t.Fatalf("%s: degenerate workload, no results", name)
	}
	if len(got) != len(want) {
		t.Errorf("%s: %d distinct results, want %d", name, len(got), len(want))
		return
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s: result %s ×%d, want ×%d", name, k, got[k], v)
			return
		}
	}
}

// TestPlanDifferentialMixes: random equi/band/generic mixes across every
// plannable shape vs the flat reference.
func TestPlanDifferentialMixes(t *testing.T) {
	leakcheck.Check(t)
	conds := []struct {
		name string
		m    int
		mk   func() *join.Condition
	}{
		{"equichain3", 3, func() *join.Condition { return join.EquiChain(3, 0) }},
		{"star4", 4, func() *join.Condition { return join.Star(4, []int{0, 1, 2}, []int{0, 0, 0}) }},
		{"band-equi-mix4", 4, func() *join.Condition {
			return join.Cross(4).Equi(0, 0, 1, 0).Band(1, 1, 2, 1, 8).Equi(2, 0, 3, 0)
		}},
		{"generic-mix3", 3, func() *join.Condition {
			return join.EquiChain(3, 0).Where([]int{0, 2}, func(a []*stream.Tuple) bool {
				return a[0].Attr(1) <= a[2].Attr(1)+40
			})
		}},
	}
	for seed := int64(41); seed < 44; seed++ {
		for _, tc := range conds {
			in := mixWorkload(tc.m, 350, seed, 14)
			maxD, _ := in.MaxDelay()
			w := make([]stream.Time, tc.m)
			for i := range w {
				w[i] = 700
			}
			want := runGraph(FlatGraph(tc.mk(), w), maxD, in.Clone())

			specs := []string{"shard:4", "tree", "tree-shard:3", "auto"}
			if tc.m == 4 {
				specs = append(specs, "((0 1) (2 3))", "((0 1)x2 (2 3))x2")
			}
			for _, spec := range specs {
				if strings.HasPrefix(spec, "((0 1)") && tc.name == "star4" {
					continue // star spokes are not connected; bushy invalid
				}
				g, err := ParseSpec(spec, tc.mk(), w, 4)
				if err != nil {
					t.Fatalf("%s/%s: %v", tc.name, spec, err)
				}
				got := runGraph(g, maxD, in.Clone())
				sameMultiset(t, fmt.Sprintf("%s/%s/seed%d", tc.name, spec, seed), want, got)
			}
		}
	}
}

// TestStarAutoPlanDifferential is the acceptance differential: the
// auto-planned x4 star (stage-wise sharded, no broadcast route) matches the
// flat reference bit-for-bit.
func TestStarAutoPlanDifferential(t *testing.T) {
	leakcheck.Check(t)
	mk := func() *join.Condition { return join.Star(4, []int{0, 1, 2}, []int{0, 0, 0}) }
	in := mixWorkload(4, 1200, 99, 25)
	maxD, _ := in.MaxDelay()
	w := []stream.Time{900, 900, 900, 900}

	g := Auto(mk(), w, Hints{Shards: 4})
	var walk func(Node)
	walk = func(n Node) {
		switch v := n.(type) {
		case Shard:
			if v.Broadcast() {
				t.Fatalf("auto plan contains a broadcast route:\n%s", g.Explain())
			}
			walk(v.Child)
		case Stage:
			walk(v.Left)
			walk(v.Right)
		case Flat:
			t.Fatalf("auto plan fell back to the flat operator:\n%s", g.Explain())
		}
	}
	walk(g.Root)

	want := runGraph(FlatGraph(mk(), w), maxD, in.Clone())
	got := runGraph(g, maxD, in.Clone())
	sameMultiset(t, "star4/auto", want, got)
}
