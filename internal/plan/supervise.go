package plan

// The supervised runtime: an Executor wrapper that turns contained worker
// failures into recoveries instead of crashes. The engines below already
// convert worker panics into driver-side panics carrying *fault.WorkerError
// (workers switch to drain mode, so the engine stays tearable-down); the
// supervisor is the layer that catches those, restores the last boundary
// checkpoint into a fresh executor, replays the arrivals logged since, and
// retries under a bounded jittered backoff. Failures that outlive the
// retry budget surface as a terminal *fault.JoinError through Err() —
// never as a crash of the caller.
//
// Exactness. Recovery replays arrivals through the same deterministic
// engines, so the restored run re-produces results (and result-count
// chunks, and adaptation events) the original already delivered. Every
// user-facing callback is therefore gated behind a produced/delivered
// counter pair: emissions are delivered only when the produced count
// exceeds the delivered high-water mark. Because each engine's emission
// order is deterministic, the counters suppress exactly the replayed
// prefix — the caller observes every result exactly once, in order, as if
// no fault had happened.
//
// Checkpoints are taken automatically at adaptation boundaries (the gated
// OnAdapt marks them), which is the point where tree checkpoints are
// K-trajectory-exact (see internal/dist). Between boundaries the arrival
// log carries the difference. Lifecycle panics — the documented plain-string
// API-misuse panics — are NEVER treated as faults: the supervisor re-panics
// them untouched.
//
// Supervised is driver-thread-only, like the engines it wraps: one
// goroutine calls Push/TryPush/Finish.

import (
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/join"
	"repro/internal/stats"
	"repro/internal/stream"
)

// SuperviseConfig configures the supervised runtime.
type SuperviseConfig struct {
	// Backoff is the restart schedule; the zero value means
	// fault.DefaultBackoff().
	Backoff fault.Backoff
	// Inject optionally arms the deterministic fault injector on the built
	// executor (overriding ExecConfig.Inject). The supervisor counts every
	// offered arrival (Injector.Arrival) and pauses the injector during
	// recovery replay, so directives fire exactly once at their configured
	// arrival count.
	Inject *fault.Injector
	// Ingest bounds the K-slack occupancy; zero value = unbounded.
	Ingest IngestConfig
	// CheckpointEvery is how many adaptation boundaries pass between
	// automatic checkpoints: 1 checkpoints at every boundary (cheapest
	// recovery, highest steady-state cost), larger values amortize the
	// capture over a longer replay log. 0 selects the default — one
	// checkpoint per measurement period (P/L boundaries), which keeps the
	// capture cost a few percent of steady-state throughput while bounding
	// the replay at one period of arrivals.
	CheckpointEvery int
	// OnRestart, when set, observes every recovery: the restart ordinal
	// (counting from 1) and the failure that triggered it.
	OnRestart func(restart int, cause error)
}

// bufferedExecutor is the occupancy/shedding surface both engines expose.
type bufferedExecutor interface {
	BufferedTuples() int
	ShedWorst() bool
	RecallEstimate() float64
}

// ckptMeta freezes the delivery counters alongside a checkpoint: restoring
// resets the produced counters to these values, and the delivered counters
// (which never rewind) gate out the replayed emissions.
type ckptMeta struct {
	produced int64
	chunks   int64
	adapts   int64
}

// Supervised wraps a built executor with supervision, checkpoint-based
// recovery, and bounded ingest. Build one with NewSupervised.
type Supervised struct {
	g   *Graph
	cfg ExecConfig // callbacks replaced by the gates below
	scf SuperviseConfig
	inj *fault.Injector

	userEmit    join.EmitFunc
	userCounts  join.CountEmitFunc
	userOnAdapt func(core.AdaptEvent)

	ex Executor
	be bufferedExecutor

	backoff   fault.Backoff
	pending   *stream.Tuple // the arrival pushFn feeds (avoids a closure per Push)
	pushFn    func()
	log       []*stream.Tuple // arrivals admitted since the last checkpoint
	ckpt      *ExecState      // last boundary checkpoint, nil before the first
	ckptMeta  ckptMeta
	ckptEvery int // boundaries between automatic checkpoints
	sinceCkpt int // boundaries since the last one

	produced, delivered     int64
	prodChunks, delivChunks int64
	prodAdapts, delivAdapts int64
	boundary                bool // an adaptation boundary occurred in the current Push

	dropped  int64
	restarts int
	ckpts    int
	ckptTime time.Duration // total wall time spent inside automatic captures
	err      error
	finished bool
}

// NewSupervised builds the executor for (g, cfg) under supervision.
func NewSupervised(g *Graph, cfg ExecConfig, scf SuperviseConfig) *Supervised {
	s := newSupervisedShell(g, cfg, scf)
	s.ex = Build(g, s.cfg)
	s.be, _ = s.ex.(bufferedExecutor)
	return s
}

// NewSupervisedRestore builds the supervised runtime with its initial
// executor restored from a persisted checkpoint instead of built fresh. The
// snapshot doubles as the supervisor's recovery point until the next
// adaptation boundary replaces it, and dropped seeds the refused-arrival
// counter so accounting survives the restart. The snapshot's signature must
// match (g, cfg) or the restore is refused with fault.ErrRestoreMismatch.
func NewSupervisedRestore(g *Graph, cfg ExecConfig, scf SuperviseConfig, st ExecState, dropped int64) (*Supervised, error) {
	s := newSupervisedShell(g, cfg, scf)
	ex, err := Restore(g, s.cfg, st)
	if err != nil {
		return nil, err
	}
	s.ex = ex
	s.be, _ = s.ex.(bufferedExecutor)
	s.ckpt = &st
	s.dropped = dropped
	return s, nil
}

// newSupervisedShell wires config, injector and delivery gates — everything
// except the executor itself.
func newSupervisedShell(g *Graph, cfg ExecConfig, scf SuperviseConfig) *Supervised {
	s := &Supervised{g: g, scf: scf, backoff: scf.Backoff}
	if s.backoff.Base == 0 && s.backoff.Retries == 0 {
		s.backoff = fault.DefaultBackoff()
	}
	s.inj = scf.Inject
	if s.inj == nil {
		s.inj = cfg.Inject
	}
	cfg.Inject = s.inj
	s.userEmit = cfg.Emit
	s.userCounts = cfg.EmitCounts
	s.userOnAdapt = cfg.OnAdapt
	if cfg.Emit != nil {
		cfg.Emit = s.gatedEmit
	}
	if cfg.EmitCounts != nil {
		cfg.EmitCounts = s.gatedCounts
	}
	cfg.OnAdapt = s.gatedOnAdapt // always: boundaries drive checkpointing
	s.cfg = cfg
	s.ckptEvery = scf.CheckpointEvery
	if s.ckptEvery <= 0 {
		p, l := cfg.Adapt.P, cfg.Adapt.L
		if p == 0 {
			p = stream.Minute // the engines' default P
		}
		if l == 0 {
			l = stream.Second // the engines' default L
		}
		s.ckptEvery = 1
		if n := int(p / l); n > 1 {
			s.ckptEvery = n
		}
	}
	s.pushFn = func() {
		s.ex.Push(s.pending)
		if ic := s.scf.Ingest; ic.Policy == IngestShed && ic.MaxBuffered > 0 && s.be != nil {
			s.shedTo(ic.MaxBuffered)
		}
	}
	return s
}

// ---- delivery gates ----

func (s *Supervised) gatedEmit(r stream.Result) {
	s.produced++
	if s.produced > s.delivered {
		s.delivered++
		if s.userEmit != nil {
			s.userEmit(r)
		}
	}
}

func (s *Supervised) gatedCounts(ts stream.Time, n int64) {
	s.prodChunks++
	if s.prodChunks > s.delivChunks {
		s.delivChunks++
		if s.userCounts != nil {
			s.userCounts(ts, n)
		}
	}
}

func (s *Supervised) gatedOnAdapt(ev core.AdaptEvent) {
	s.prodAdapts++
	if s.prodAdapts > s.delivAdapts {
		s.delivAdapts++
		s.boundary = true
		if s.userOnAdapt != nil {
			s.userOnAdapt(ev)
		}
	}
}

// ---- ingest ----

// Push feeds one arrival. A terminal failure makes Push a silent no-op —
// check Err(). Lifecycle misuse (Push after Close) keeps the engines'
// documented panic.
func (s *Supervised) Push(t *stream.Tuple) {
	if s.err != nil {
		return
	}
	if s.finished {
		s.ex.Push(t) // surfaces the engine's lifecycle panic untouched
		return
	}
	s.TryPush(t)
}

// TryPush feeds one arrival and reports refusal as a typed error instead
// of a panic: fault.ErrClosed after Close, fault.ErrOverload when the
// Error ingest policy refuses at the bound, the terminal *fault.JoinError
// after supervision gave up.
func (s *Supervised) TryPush(t *stream.Tuple) error {
	if s.err != nil {
		return s.err
	}
	if s.finished {
		return fault.ErrClosed
	}
	if s.inj != nil {
		s.inj.Arrival()
	}
	ic := s.scf.Ingest
	bounded := ic.MaxBuffered > 0 && s.be != nil
	if bounded && ic.Policy == IngestError && s.be.BufferedTuples() >= ic.MaxBuffered {
		// Refused tuples never reach the engine or the recovery log, so the
		// admitted sequence (and any replay of it) is unchanged.
		s.dropped++
		return fault.ErrOverload
	}
	s.log = append(s.log, t)
	s.pending = t
	// No rerun: t is in the log, recovery replays it.
	if !s.run(s.pushFn, false) {
		return s.err
	}
	if s.boundary {
		s.boundary = false
		s.sinceCkpt++
		if s.sinceCkpt >= s.ckptEvery {
			if !s.run(s.takeCheckpoint, false) {
				return s.err
			}
		}
	}
	return nil
}

// shedTo evicts lowest-productivity buffered tuples until occupancy ≤ max.
func (s *Supervised) shedTo(max int) {
	for s.be.BufferedTuples() > max {
		if !s.be.ShedWorst() {
			return
		}
	}
}

// Finish flushes the join. A failure during the flush recovers like any
// other (restore, replay, re-Finish); after a terminal failure Finish is a
// no-op — check Err().
func (s *Supervised) Finish() {
	if s.err != nil {
		return
	}
	if s.finished {
		s.ex.Finish() // surfaces the engine's double-Finish lifecycle panic
		return
	}
	if !s.run(func() { s.ex.Finish() }, true) {
		return
	}
	s.finished = true
	s.ckpt = nil
	s.log = nil
}

// ---- supervision core ----

// run executes f under the recovery loop. On a contained fault: back off,
// restore the last checkpoint into a fresh executor, replay the log, and —
// when rerun is set (for work not represented in the log, like Finish) —
// run f again. Returns false when the retry budget is exhausted and the
// join went terminal.
func (s *Supervised) run(f func(), rerun bool) bool {
	err := s.attempt(f)
	for attempt := 0; err != nil; attempt++ {
		if attempt >= s.backoff.Retries {
			Abandon(s.ex)
			s.err = &fault.JoinError{Restarts: s.restarts, Cause: err}
			return false
		}
		s.restarts++
		if s.scf.OnRestart != nil {
			s.scf.OnRestart(s.restarts, err)
		}
		s.backoff.Wait(attempt)
		err = s.recoverReplay()
		if err == nil && rerun {
			err = s.attempt(f)
		}
	}
	return true
}

// attempt runs f, converting contained panics to errors. Documented
// lifecycle panics (plain strings) are API misuse, not faults: re-panic.
func (s *Supervised) attempt(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if fault.Lifecycle(r) {
				panic(r)
			}
			err = fault.AsError(r)
		}
	}()
	f()
	return nil
}

// recoverReplay tears down the crashed executor, rebuilds from the last
// checkpoint (or from scratch), and replays the logged arrivals through
// the same push path — including the shed policy, whose deterministic
// eviction order reproduces the original decisions. The injector is paused
// for the duration so one-shot directives do not refire and the arrival
// counter does not advance.
func (s *Supervised) recoverReplay() (err error) {
	defer func() {
		if r := recover(); r != nil {
			if fault.Lifecycle(r) {
				panic(r)
			}
			err = fault.AsError(r)
		}
	}()
	if s.inj != nil {
		s.inj.Pause()
		defer s.inj.Resume()
	}
	Abandon(s.ex)
	if s.ckpt != nil {
		ex, rerr := Restore(s.g, s.cfg, *s.ckpt)
		if rerr != nil {
			return rerr
		}
		s.ex = ex
		s.produced = s.ckptMeta.produced
		s.prodChunks = s.ckptMeta.chunks
		s.prodAdapts = s.ckptMeta.adapts
	} else {
		s.ex = Build(s.g, s.cfg)
		s.produced, s.prodChunks, s.prodAdapts = 0, 0, 0
	}
	s.be, _ = s.ex.(bufferedExecutor)
	s.boundary = false
	s.sinceCkpt = 0 // the restored point IS the last checkpoint
	ic := s.scf.Ingest
	shed := ic.MaxBuffered > 0 && s.be != nil && ic.Policy == IngestShed
	for _, t := range s.log {
		s.ex.Push(t)
		if shed {
			s.shedTo(ic.MaxBuffered)
		}
	}
	return nil
}

// takeCheckpoint captures the boundary checkpoint and truncates the log.
// Runs under run(): a pending worker failure surfacing during the capture
// triggers a normal recovery instead of a crash.
func (s *Supervised) takeCheckpoint() {
	t0 := time.Now()
	st, err := Checkpoint(s.g, s.cfg, s.ex)
	s.ckptTime += time.Since(t0)
	if err != nil {
		return // non-checkpointable executor: keep the full log instead
	}
	s.ckpt = &st
	s.ckptMeta = ckptMeta{produced: s.produced, chunks: s.prodChunks, adapts: s.prodAdapts}
	s.log = s.log[:0]
	s.sinceCkpt = 0
	s.ckpts++
}

// ---- state surface ----

// Err returns the terminal *fault.JoinError, or nil while the join is
// healthy. Supervision makes worker faults invisible until the retry
// budget is spent; after that every Push is dropped and Err reports why.
func (s *Supervised) Err() error { return s.err }

// Dropped returns the number of arrivals refused by the Error ingest
// policy.
func (s *Supervised) Dropped() int64 { return s.dropped }

// Restarts returns the number of recoveries performed so far.
func (s *Supervised) Restarts() int { return s.restarts }

// Checkpoints returns the number of automatic boundary checkpoints the
// runtime has captured (CheckpointEvery controls the cadence).
func (s *Supervised) Checkpoints() int { return s.ckpts }

// CheckpointTime returns the total wall time spent capturing automatic
// boundary checkpoints — the steady-state cost checkpointing adds to a
// healthy run.
func (s *Supervised) CheckpointTime() time.Duration { return s.ckptTime }

// Checkpoint captures the current executor state for external persistence
// (it does not replace the supervisor's internal boundary checkpoint). On
// tree deployments a mid-interval capture preserves the result multiset
// exactly but pins the K trajectory only from the next boundary on; flat
// deployments are exact at any point.
func (s *Supervised) Checkpoint() (ExecState, error) {
	if s.err != nil {
		return ExecState{}, s.err
	}
	if s.finished {
		return ExecState{}, fault.ErrClosed
	}
	var st ExecState
	var cerr error
	if !s.run(func() { st, cerr = Checkpoint(s.g, s.cfg, s.ex) }, true) {
		return ExecState{}, s.err
	}
	return st, cerr
}

// BufferedTuples returns the K-slack occupancy the ingest bound measures.
func (s *Supervised) BufferedTuples() int {
	if s.be == nil {
		return 0
	}
	return s.be.BufferedTuples()
}

// ShedWorst evicts the lowest-productivity buffered tuple (see the
// engines' ShedWorst).
func (s *Supervised) ShedWorst() bool {
	if s.be == nil {
		return false
	}
	return s.be.ShedWorst()
}

// RecallEstimate reports the run-level recall estimate, shed losses
// included (1 on deployments without a feedback loop).
func (s *Supervised) RecallEstimate() float64 {
	if s.be == nil {
		return 1
	}
	return s.be.RecallEstimate()
}

// ---- Executor delegation ----

// Results returns the number of results produced (replays excluded — the
// engine count is restored from the checkpoint, so it never double-counts).
func (s *Supervised) Results() int64 { return s.ex.Results() }

// CurrentKs returns the most recent buffer-size decision.
func (s *Supervised) CurrentKs() []stream.Time { return s.ex.CurrentKs() }

// AvgK returns the average largest per-scope K.
func (s *Supervised) AvgK() float64 { return s.ex.AvgK() }

// Adaptations returns the number of adaptation steps.
func (s *Supervised) Adaptations() int64 { return s.ex.Adaptations() }

// Stats exposes the Statistics Manager (nil on static trees).
func (s *Supervised) Stats() *stats.Manager { return s.ex.Stats() }

// SetEmit installs a result callback before the first Push; the callback
// stays exactly-once across recoveries.
func (s *Supervised) SetEmit(f join.EmitFunc) {
	s.userEmit = f
	if s.cfg.Emit == nil {
		s.cfg.Emit = s.gatedEmit
		s.ex.SetEmit(s.gatedEmit)
	}
}
