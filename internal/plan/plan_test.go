package plan

import (
	"repro/internal/leakcheck"
	"strings"
	"testing"

	"repro/internal/join"
	"repro/internal/stream"
)

func windows(m int) []stream.Time {
	w := make([]stream.Time, m)
	for i := range w {
		w[i] = 2 * stream.Second
	}
	return w
}

// TestAutoStarShardsEveryStage is the acceptance shape check: a star-shaped
// 4-way condition has no full key class, so with a shard budget the planner
// must emit stage-wise sharding — every stage Shard-wrapped on its own
// cross key, and NO broadcast route anywhere in the graph or its Explain
// rendering.
func TestAutoStarShardsEveryStage(t *testing.T) {
	leakcheck.Check(t)
	cond := join.Star(4, []int{0, 1, 2}, []int{0, 0, 0})
	g := Auto(cond, windows(4), Hints{Shards: 4})

	stages, shards, broadcasts := 0, 0, 0
	var walk func(Node)
	walk = func(n Node) {
		switch v := n.(type) {
		case Shard:
			shards++
			if v.Broadcast() {
				broadcasts++
			}
			walk(v.Child)
		case Stage:
			stages++
			walk(v.Left)
			walk(v.Right)
		case Flat:
			t.Error("auto plan fell back to the flat operator; want stage-wise sharding")
		}
	}
	walk(g.Root)
	if stages != 3 {
		t.Errorf("stages = %d, want 3", stages)
	}
	if shards != 3 {
		t.Errorf("shard nodes = %d, want one per stage", shards)
	}
	if broadcasts != 0 {
		t.Errorf("%d broadcast routes in the plan; stage-wise sharding must have none", broadcasts)
	}
	out := g.Explain()
	if strings.Contains(out, "broadcast") {
		t.Errorf("Explain mentions a broadcast route:\n%s", out)
	}
	for _, want := range []string{"shard ×4", "stage"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain misses %q:\n%s", want, out)
		}
	}
}

// TestAutoFullKeyPrefersShardedFlat: with a key class covering every stream
// the flat sharded operator wins (no intermediate materialization).
func TestAutoFullKeyPrefersShardedFlat(t *testing.T) {
	leakcheck.Check(t)
	g := Auto(join.EquiChain(3, 0), windows(3), Hints{Shards: 4})
	sh, ok := g.Root.(Shard)
	if !ok {
		t.Fatalf("root = %T, want Shard", g.Root)
	}
	if _, ok := sh.Child.(Flat); !ok {
		t.Fatalf("child = %T, want Flat", sh.Child)
	}
	if sh.Broadcast() {
		t.Error("full equi key must not broadcast")
	}
}

// TestAutoGenericOnlyFallsBackToBroadcast: with no key class at any
// granularity the broadcast flat shards remain the only option.
func TestAutoGenericOnlyFallsBackToBroadcast(t *testing.T) {
	leakcheck.Check(t)
	cond := join.Cross(2).Where([]int{0, 1}, func(a []*stream.Tuple) bool {
		return a[0].Attr(0) == a[1].Attr(0)
	})
	g := Auto(cond, windows(2), Hints{Shards: 4})
	sh, ok := g.Root.(Shard)
	if !ok {
		t.Fatalf("root = %T, want Shard", g.Root)
	}
	if !sh.Broadcast() {
		t.Error("generic-only condition must report its broadcast fallback")
	}
}

// TestAutoUnshardedDefaultsToFlat: without hints the classic operator wins.
func TestAutoUnshardedDefaultsToFlat(t *testing.T) {
	leakcheck.Check(t)
	g := Auto(join.EquiChain(3, 0), windows(3), Hints{})
	if _, ok := g.Root.(Flat); !ok {
		t.Fatalf("root = %T, want Flat", g.Root)
	}
}

// TestAutoLowSelectivityPicksTree: a low selectivity hint makes the
// intermediate materialization cheap, so the planner picks a tree (per-
// stage K regime). At σ = 1e-4 the chain's σ²-discounted deep partial is
// tiny, so the spine wins the shape race.
func TestAutoLowSelectivityPicksTree(t *testing.T) {
	leakcheck.Check(t)
	g := Auto(join.EquiChain(4, 0), windows(4), Hints{Selectivity: 1e-4})
	if _, ok := g.Root.(Stage); !ok {
		t.Fatalf("root = %T, want Stage", g.Root)
	}
	if !SpineShape(g) {
		t.Error("σ²-discounted chain partials undercut the balanced split; want the spine")
	}
}

// TestAutoBushyWhenSpineIntermediatesBlowUp: for an equichain with window
// cardinality n, the spine's 3-way partial (n³σ²) exceeds the bushy pair
// stages (2·n²σ) exactly when nσ > 1; with intermediates still inside the
// raw-window budget (σ ≤ 2/n) the planner must pick the balanced split.
func TestAutoBushyWhenSpineIntermediatesBlowUp(t *testing.T) {
	leakcheck.Check(t)
	g := Auto(join.EquiChain(4, 0), windows(4), Hints{Selectivity: 0.008})
	st, ok := g.Root.(Stage)
	if !ok {
		t.Fatalf("root = %T, want Stage", g.Root)
	}
	if _, ok := st.Left.(Stage); !ok {
		t.Errorf("expected a bushy split, got left=%T", st.Left)
	}
	if _, ok := st.Right.(Stage); !ok {
		t.Errorf("expected a bushy split, got right=%T", st.Right)
	}
}

// TestAutoStarNeverBushy: star spokes share no predicate, so only spines
// are valid shapes.
func TestAutoStarNeverBushy(t *testing.T) {
	leakcheck.Check(t)
	cond := join.Star(4, []int{0, 1, 2}, []int{0, 0, 0})
	g := Auto(cond, windows(4), Hints{Selectivity: 1e-4})
	n := g.Root
	for {
		st, ok := n.(Stage)
		if !ok {
			break
		}
		if _, ok := st.Right.(Leaf); !ok {
			t.Fatalf("star plan has a non-leaf right side: %T — spokes are not connected", st.Right)
		}
		n = st.Left
	}
}

// TestStageRoute: equi preferred over band, normalized left-side-first.
func TestStageRoute(t *testing.T) {
	leakcheck.Check(t)
	cond := join.Cross(3).Band(0, 1, 2, 1, 5).Equi(1, 0, 2, 0)
	st := Stage{Left: Stage{Left: Leaf{0}, Right: Leaf{1}}, Right: Leaf{2}}
	route, ok := StageRoute(cond, st)
	if !ok {
		t.Fatal("stage is keyed")
	}
	if route.Mode != join.PartitionEqui {
		t.Fatalf("mode = %v, want equi (preferred over band)", route.Mode)
	}
	if route.KeyAttr[1] != 0 || route.KeyAttr[2] != 0 || route.KeyAttr[0] != -1 {
		t.Fatalf("KeyAttr = %v", route.KeyAttr)
	}

	bandOnly := join.Cross(2).Band(0, 1, 1, 2, 5)
	route, ok = StageRoute(bandOnly, Stage{Left: Leaf{0}, Right: Leaf{1}})
	if !ok || route.Mode != join.PartitionBand || route.Delta != 5 {
		t.Fatalf("band route = %+v ok=%v", route, ok)
	}
}

// TestParseSpec covers the named forms and the s-expression grammar.
func TestParseSpec(t *testing.T) {
	leakcheck.Check(t)
	cond4 := func() *join.Condition { return join.EquiChain(4, 0) }
	w := windows(4)

	g, err := ParseSpec("((0 1)x2 (2 3))x4", cond4(), w, 0)
	if err != nil {
		t.Fatal(err)
	}
	root, ok := g.Root.(Shard)
	if !ok || root.N != 4 {
		t.Fatalf("root = %#v, want ×4 shard", g.Root)
	}
	st := root.Child.(Stage)
	if lsh, ok := st.Left.(Shard); !ok || lsh.N != 2 {
		t.Fatalf("left = %#v, want ×2 shard", st.Left)
	}
	if _, ok := st.Right.(Stage); !ok {
		t.Fatalf("right = %#v, want plain stage", st.Right)
	}

	if g, err = ParseSpec("(0 1 2 3)", cond4(), w, 0); err != nil {
		t.Fatal(err)
	} else if !SpineShape(g) {
		t.Error("n-ary group must fold into the left-deep spine")
	}

	if g, err = ParseSpec("tree-shard:2", cond4(), w, 0); err != nil {
		t.Fatal(err)
	} else if _, ok := g.Root.(Shard); !ok {
		t.Errorf("tree-shard root = %T", g.Root)
	}

	// An EXPLICIT count of 1 is the single-shard baseline, not a request
	// for the default: shard:1 must stay flat, tree-shard:1 the plain spine.
	if g, err = ParseSpec("shard:1", cond4(), w, 0); err != nil {
		t.Fatal(err)
	} else if _, ok := g.Root.(Flat); !ok {
		t.Errorf("shard:1 root = %T, want the unsharded flat baseline", g.Root)
	}
	if g, err = ParseSpec("tree-shard:1", cond4(), w, 0); err != nil {
		t.Fatal(err)
	} else if !SpineShape(g) {
		t.Errorf("tree-shard:1 must be the plain spine, got %T", g.Root)
	}

	for _, bad := range []string{"((0 1) 1)", "(0 1 1)", "(0)", "((0 1) 2)", "nope", "((0 1)x1 2 3)", "(0 1 2 3) x"} {
		if _, err := ParseSpec(bad, cond4(), w, 0); err == nil {
			t.Errorf("spec %q must fail", bad)
		}
	}

	// xN on an unkeyed stage is rejected with a clear error.
	generic := join.Cross(2).Where([]int{0, 1}, func([]*stream.Tuple) bool { return true })
	if _, err := ParseSpec("(0 1)x2", generic, windows(2), 0); err == nil {
		t.Error("sharding an unkeyed stage must fail to parse")
	}
}

// TestSpineShape: recognition of the natural-order spine.
func TestSpineShape(t *testing.T) {
	leakcheck.Check(t)
	if !SpineShape(Spine(join.EquiChain(3, 0), windows(3))) {
		t.Error("Spine() must be a spine")
	}
	g := Auto(join.Star(4, []int{0, 1, 2}, []int{0, 0, 0}), windows(4), Hints{Shards: 2})
	if SpineShape(g) {
		t.Error("sharded stages are not the plain spine shape")
	}
}

// TestExplainStable pins the essential Explain content for the sharded flat
// shape (routes render key attrs and the broadcast note).
func TestExplainStable(t *testing.T) {
	leakcheck.Check(t)
	cond := join.Star(4, []int{0, 1, 2}, []int{0, 0, 0})
	out := ShardedFlat(cond, windows(4), 4).Explain()
	if !strings.Contains(out, "+broadcast(") {
		t.Errorf("partial-equi flat shards must render their broadcast streams:\n%s", out)
	}
	if !strings.Contains(out, "flat MJoin over {0,1,2,3}") {
		t.Errorf("missing flat node:\n%s", out)
	}
}
