package plan

// EmitLog is the exactly-once delivery gate a live plan migration resumes
// behind. It sits permanently between the executor's emit callback and the
// user's sink, recording the multiset of results delivered so far. During a
// migration's replay phase the new executor regenerates recent results from
// the raw input suffix; the gate suppresses every regeneration that was
// already delivered by the abandoned executor and passes through exactly
// the results that were still in flight at the migration boundary — so the
// user-visible result multiset is identical to an uninterrupted run's.
//
// The supervised runtime's count-based emit gates (DESIGN.md §10) solve the
// same problem for same-shape recovery, where the replayed emission ORDER
// is bit-for-bit identical and a counter suffices. Across shapes the order
// is not preserved — different deployments emit the same multiset in
// different interleavings — so the gate generalizes the counter to a
// multiset keyed by result identity (source:sequence per member tuple).

import (
	"strconv"
	"strings"

	"repro/internal/join"
	"repro/internal/stream"
)

type emitEntry struct {
	count int
	// minTS is the smallest member timestamp — the pruning key: once the
	// replay log no longer reaches back to minTS, no future replay can
	// regenerate this result and the entry is dead weight.
	minTS stream.Time
}

// EmitLog gates result delivery across plan migrations. It is driven from
// the executor's driver thread (every engine delivers results on the thread
// that calls Push/Finish) and is not safe for concurrent use.
type EmitLog struct {
	inner  join.EmitFunc
	counts join.CountEmitFunc

	seen map[string]emitEntry
	// consumed tracks, within one replay, how many recorded deliveries of
	// each signature have already been matched and suppressed.
	consumed map[string]int

	replaying  bool
	delivered  int64 // results delivered to the user, ever
	suppressed int64 // regenerations suppressed, ever
	repDeliver int64 // deliveries during the current replay
	repSupp    int64 // suppressions during the current replay
}

// NewEmitLog builds the gate in front of the given user sink and count sink
// (either may be nil).
func NewEmitLog(inner join.EmitFunc, counts join.CountEmitFunc) *EmitLog {
	return &EmitLog{inner: inner, counts: counts, seen: map[string]emitEntry{}}
}

// SetInner replaces the user sink behind the gate (the RunChannel path).
func (l *EmitLog) SetInner(f join.EmitFunc) { l.inner = f }

// Emit is the callback installed as the executor's emit function — for the
// initial executor and for every migrated-to executor alike.
func (l *EmitLog) Emit(r stream.Result) {
	sig, minTS := resultIdentity(r)
	if e, ok := l.seen[sig]; ok {
		if l.replaying {
			if l.consumed[sig] < e.count {
				l.consumed[sig]++
				l.suppressed++
				l.repSupp++
				return
			}
		} else {
			// A regeneration surfacing after EndReplay: the migrated-to
			// shape's release schedule can defer a replayed derivation past
			// the post-replay quiesce (tree stages hold results in reorder
			// buffers until future clock advances release them). An engine
			// delivers each result identity at most once per run — one
			// trigger tuple per member combination — so a live re-emission
			// of a recorded identity is always such a leftover.
			l.suppressed++
			return
		}
	}
	if l.replaying {
		// Not delivered before the boundary: this result was in flight in
		// the abandoned executor and the replay is its only delivery path.
		l.repDeliver++
		if l.counts != nil {
			l.counts(r.TS, 1)
		}
	}
	l.record(sig, minTS)
	l.delivered++
	if l.inner != nil {
		l.inner(r)
	}
}

func (l *EmitLog) record(sig string, minTS stream.Time) {
	e := l.seen[sig]
	e.count++
	if e.count == 1 || minTS < e.minTS {
		e.minTS = minTS
	}
	l.seen[sig] = e
}

// BeginReplay switches the gate into replay mode: regenerated results are
// matched against the recorded deliveries and suppressed.
func (l *EmitLog) BeginReplay() {
	l.replaying = true
	l.consumed = map[string]int{}
	l.repDeliver, l.repSupp = 0, 0
}

// EndReplay switches back to live delivery and reports how many results the
// replay delivered (in-flight at the boundary) and suppressed (already
// delivered by the abandoned executor).
func (l *EmitLog) EndReplay() (delivered, suppressed int64) {
	l.replaying = false
	l.consumed = nil
	return l.repDeliver, l.repSupp
}

// Replaying reports whether the gate is in a migration's replay phase.
func (l *EmitLog) Replaying() bool { return l.replaying }

// Delivered returns the number of results delivered to the user so far —
// the result counter that stays continuous across migrations.
func (l *EmitLog) Delivered() int64 { return l.delivered }

// Suppressed returns the number of replay regenerations suppressed so far.
func (l *EmitLog) Suppressed() int64 { return l.suppressed }

// Entries returns the number of recorded result signatures (sizing metric).
func (l *EmitLog) Entries() int { return len(l.seen) }

// Prune drops recorded results whose earliest member timestamp is below
// horizon. Call with the replay log's completeness horizon: a result with a
// member older than the oldest replayable arrival can never be regenerated,
// so its record can never suppress anything again.
func (l *EmitLog) Prune(horizon stream.Time) {
	for sig, e := range l.seen {
		if e.minTS < horizon {
			delete(l.seen, sig)
		}
	}
}

// resultIdentity renders the result's identity — source:sequence of every
// member tuple — and its smallest member timestamp.
func resultIdentity(r stream.Result) (string, stream.Time) {
	var b strings.Builder
	minTS := r.TS
	for _, t := range r.Tuples {
		if t == nil {
			b.WriteByte(';')
			continue
		}
		b.WriteString(strconv.Itoa(t.Src))
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(t.Seq, 10))
		b.WriteByte(',')
		if t.TS < minTS {
			minTS = t.TS
		}
	}
	return b.String(), minTS
}
