package plan

// Checkpoint/restore at the executor seam. A checkpoint captures whichever
// engine the graph compiled to (flat pipeline or plan tree) plus the
// treeExec driver registers, tagged with a signature of the deployment
// identity — condition, windows, shape, policy. Restore refuses a snapshot
// whose signature disagrees with the target graph (fault.ErrRestoreMismatch)
// rather than silently rebuilding different state: the serialized window
// contents and K decisions are only meaningful under the exact deployment
// that produced them.

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/stream"
)

// ExecState is the serializable state of a built executor. Exactly one of
// Flat, Tree, ATree is set, matching what the graph compiles to.
type ExecState struct {
	// Sig is the deployment signature the snapshot is valid for.
	Sig string
	// Tuples is the interned tuple table every EventRec index points into.
	Tuples []fault.TupleRec

	Flat  *core.State             // flat shapes (sharded or not)
	Tree  *dist.TreeState         // static tree shapes
	ATree *dist.AdaptiveTreeState // adaptive tree shapes

	// Tree driver registers (the treeExec adapter's own state).
	PrevMax stream.Time
	Pushed  bool
}

// Signature renders the deployment identity a checkpoint is bound to:
// condition fingerprint, windows, shape, and the buffer-sizing policy. Two
// graphs with equal signatures build executors with identical state shape
// and identical deterministic behavior (generic predicates contribute only
// their count — their code is not serializable, so swapping predicate
// bodies between checkpoint and restore is undetectable and on the caller).
func Signature(g *Graph, cfg ExecConfig) string {
	var b strings.Builder
	fmt.Fprintf(&b, "m=%d", g.Cond.M)
	for _, e := range g.Cond.Equis {
		fmt.Fprintf(&b, ";eq%d.%d=%d.%d", e.LeftStream, e.LeftAttr, e.RightStream, e.RightAttr)
	}
	for _, bd := range g.Cond.Bands {
		fmt.Fprintf(&b, ";band%d.%d~%d.%d@%g", bd.LeftStream, bd.LeftAttr, bd.RightStream, bd.RightAttr, bd.Eps)
	}
	if n := len(g.Cond.Generics); n > 0 {
		fmt.Fprintf(&b, ";gen=%d", n)
	}
	b.WriteString(";w=")
	for i, w := range g.Windows {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", int64(w))
	}
	fmt.Fprintf(&b, ";policy=%d", cfg.Policy)
	if cfg.Policy == PolicyStatic {
		fmt.Fprintf(&b, ";k=%d", int64(cfg.StaticK))
	}
	b.WriteString(";shape=")
	writeNodeSig(&b, g.Root)
	return b.String()
}

// writeNodeSig renders a plan node in the spec grammar's compact form.
func writeNodeSig(b *strings.Builder, n Node) {
	switch t := n.(type) {
	case Leaf:
		fmt.Fprintf(b, "%d", t.Stream)
	case Flat:
		fmt.Fprintf(b, "flat%d", t.M)
	case Stage:
		b.WriteByte('(')
		writeNodeSig(b, t.Left)
		b.WriteByte(' ')
		writeNodeSig(b, t.Right)
		b.WriteByte(')')
	case Shard:
		writeNodeSig(b, t.Child)
		fmt.Fprintf(b, "x%d", t.N)
	default:
		fmt.Fprintf(b, "?%T", n)
	}
}

// Checkpoint captures the executor's state. The executor must have been
// built by Build(g, cfg) — the signature recorded in the returned state is
// computed from g and cfg, not inspected from the executor. Tree executors
// are captured at their current quiesced point; for an exact K-trajectory
// replay the caller checkpoints at an adaptation boundary (the supervised
// runtime does), per the internal/dist boundary-checkpoint contract.
func Checkpoint(g *Graph, cfg ExecConfig, ex Executor) (ExecState, error) {
	tt := fault.NewTupleTable()
	st := ExecState{Sig: Signature(g, cfg)}
	switch e := ex.(type) {
	case *flatExec:
		s := e.p().Checkpoint(tt)
		st.Flat = &s
	case *treeExec:
		st.PrevMax, st.Pushed = e.prevMax, e.pushed
		if e.at != nil {
			s := e.at.State(tt)
			st.ATree = &s
		} else {
			s := e.t.State(tt)
			st.Tree = &s
		}
	default:
		return ExecState{}, fmt.Errorf("plan: executor %T does not support checkpointing", ex)
	}
	st.Tuples = tt.Recs
	return st, nil
}

// Restore builds a fresh executor for (g, cfg) and loads st into it. The
// snapshot must carry the same deployment signature, or the restore is
// refused with fault.ErrRestoreMismatch.
func Restore(g *Graph, cfg ExecConfig, st ExecState) (Executor, error) {
	sig := Signature(g, cfg)
	if st.Sig != sig {
		return nil, fmt.Errorf("%w: snapshot is for deployment %q, target is %q", fault.ErrRestoreMismatch, st.Sig, sig)
	}
	ex := Build(g, cfg)
	ta := fault.NewTupleArena(st.Tuples)
	switch e := ex.(type) {
	case *flatExec:
		if st.Flat == nil {
			Abandon(ex)
			return nil, fmt.Errorf("%w: snapshot carries no flat-pipeline state", fault.ErrRestoreMismatch)
		}
		e.p().RestoreState(*st.Flat, ta)
	case *treeExec:
		e.prevMax, e.pushed = st.PrevMax, st.Pushed
		if e.at != nil {
			if st.ATree == nil {
				Abandon(ex)
				return nil, fmt.Errorf("%w: snapshot carries no adaptive-tree state", fault.ErrRestoreMismatch)
			}
			e.at.Restore(*st.ATree, ta)
		} else {
			if st.Tree == nil {
				Abandon(ex)
				return nil, fmt.Errorf("%w: snapshot carries no static-tree state", fault.ErrRestoreMismatch)
			}
			e.t.Restore(*st.Tree, ta)
		}
	}
	return ex, nil
}

// Abandon stops an executor's background goroutines without flushing or
// emitting — the teardown path for a crashed executor the supervisor is
// about to replace. Safe after a contained worker failure: drain-mode
// workers exit when their channels close.
func Abandon(ex Executor) {
	switch e := ex.(type) {
	case *flatExec:
		e.p().Abandon()
	case *treeExec:
		if e.at != nil {
			e.at.Abandon()
			return
		}
		e.t.Abandon()
	}
}

// ShapeString renders the graph's shape in the spec grammar's compact form
// ("((0 1) 2)x4", "flat3", …) — the identity migration events print.
func ShapeString(g *Graph) string {
	var b strings.Builder
	writeNodeSig(&b, g.Root)
	return b.String()
}
