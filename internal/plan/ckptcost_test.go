package plan

import (
	"repro/internal/leakcheck"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/gen"
	"repro/internal/join"
	"repro/internal/stream"
)

// TestCheckpointCaptureCost is a diagnostic, not a regression gate: it
// prints how long one Checkpoint capture takes on a warmed sharded
// executor, the quantity the qdhjbench fault sweep's overhead ratio is
// built from. Run with -v to see the numbers.
func TestCheckpointCaptureCost(t *testing.T) {
	leakcheck.Check(t)
	if testing.Short() {
		t.Skip("diagnostic")
	}
	in := gen.SparseEqui3(90000, 42, 500, [3]stream.Time{150, 150, 2500})
	w := []stream.Time{2 * stream.Second, 2 * stream.Second, 2 * stream.Second}
	for _, spec := range []string{"shard:2", "tree-shard:2"} {
		g, err := ParseSpec(spec, join.EquiChain(3, 0), w, 0)
		if err != nil {
			t.Fatal(err)
		}
		cfg := ExecConfig{Adapt: adapt.Config{Gamma: 0.95, P: 30 * stream.Second, L: stream.Second}}
		ex := Build(g, cfg)
		for _, e := range in[:len(in)/2] {
			ex.Push(e)
		}
		best := time.Duration(1 << 62)
		for i := 0; i < 5; i++ {
			t0 := time.Now()
			if _, err := Checkpoint(g, cfg, ex); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		ex.Finish()
		t.Logf("%s: capture %v (x9 captures over a ~250ms run = %.1f%%)",
			spec, best, 100*float64(9*best)/float64(250*time.Millisecond))
	}
}
