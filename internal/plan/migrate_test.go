package plan

// Migration differentials: a run that live-migrates between plannable
// shapes at every adaptation boundary must deliver exactly the result
// multiset of the uninterrupted flat reference — exactly-once delivery
// across the EmitLog gate, bit-for-bit, for every shape pair and every
// equi/band/generic condition mix. CI runs these under -race.

import (
	"fmt"
	"testing"

	"repro/internal/join"
	"repro/internal/leakcheck"
	"repro/internal/stream"
)

// runMigrating executes the workload at the fixed buffer size k, migrating
// to the next graph in the cycle every `every` arrivals, and returns the
// delivered result multiset.
func runMigrating(t *testing.T, name string, graphs []*Graph, k stream.Time, in stream.Batch, every int) map[string]int {
	t.Helper()
	set := map[string]int{}
	gate := NewEmitLog(func(r stream.Result) { set[resultSig(r)]++ }, nil)
	cfg := ExecConfig{Policy: PolicyStatic, StaticK: k, Emit: gate.Emit}
	cur := 0
	ex := Build(graphs[0], cfg)
	var log []*stream.Tuple
	migrations := 0
	for i, e := range in {
		ex.Push(e)
		log = append(log, e)
		if (i+1)%every == 0 && i+1 < len(in) {
			next := (cur + 1) % len(graphs)
			nex, rep, err := Migrate(graphs[cur], cfg, ex, graphs[next], cfg,
				MigrateOptions{Log: log, LogSince: LogComplete, Gate: gate})
			if err != nil {
				t.Fatalf("%s: migrate %s→%s at arrival %d: %v", name, rep.FromShape, rep.ToShape, i+1, err)
			}
			ex, cur = nex, next
			migrations++
		}
	}
	ex.Finish()
	if migrations == 0 {
		t.Fatalf("%s: workload too short, no migration exercised", name)
	}
	if got := gate.Delivered(); got != sumCounts(set) {
		t.Fatalf("%s: gate delivered %d, sink saw %d", name, got, sumCounts(set))
	}
	return set
}

func sumCounts(set map[string]int) int64 {
	var n int64
	for _, c := range set {
		n += int64(c)
	}
	return n
}

func migrationConds() []struct {
	name string
	m    int
	mk   func() *join.Condition
} {
	return []struct {
		name string
		m    int
		mk   func() *join.Condition
	}{
		{"equichain3", 3, func() *join.Condition { return join.EquiChain(3, 0) }},
		{"star4", 4, func() *join.Condition { return join.Star(4, []int{0, 1, 2}, []int{0, 0, 0}) }},
		{"band-equi-mix4", 4, func() *join.Condition {
			return join.Cross(4).Equi(0, 0, 1, 0).Band(1, 1, 2, 1, 8).Equi(2, 0, 3, 0)
		}},
		{"generic-mix3", 3, func() *join.Condition {
			return join.EquiChain(3, 0).Where([]int{0, 2}, func(a []*stream.Tuple) bool {
				return a[0].Attr(1) <= a[2].Attr(1)+40
			})
		}},
	}
}

func migrationShapes(m int, star bool) []string {
	shapes := []string{"flat", "shard:2", "shard:4", "tree", "tree-shard:3"}
	if m == 4 && !star {
		shapes = append(shapes, "((0 1) (2 3))")
	}
	return shapes
}

// parseAll compiles the specs against ONE shared condition value (Migrate
// requires identical Cond pointers across the graphs of one run).
func parseAll(t *testing.T, specs []string, cond *join.Condition, w []stream.Time) []*Graph {
	t.Helper()
	graphs := make([]*Graph, len(specs))
	for i, sp := range specs {
		g, err := ParseSpec(sp, cond, w, 4)
		if err != nil {
			t.Fatalf("%s: %v", sp, err)
		}
		graphs[i] = g
	}
	return graphs
}

// TestMigrationDifferentialPairs forces migrations alternating between each
// pair of plannable shapes at every boundary; the delivered multiset must
// equal the uninterrupted flat reference.
func TestMigrationDifferentialPairs(t *testing.T) {
	leakcheck.Check(t)
	for _, tc := range migrationConds() {
		in := mixWorkload(tc.m, 350, 42, 14)
		maxD, _ := in.MaxDelay()
		w := make([]stream.Time, tc.m)
		for i := range w {
			w[i] = 700
		}
		want := runGraph(FlatGraph(tc.mk(), w), maxD, in.Clone())
		shapes := migrationShapes(tc.m, tc.name == "star4")
		every := len(in) / 5 // four boundaries, alternating a→b→a→b
		for ai, a := range shapes {
			for _, b := range shapes[ai+1:] {
				cond := tc.mk()
				graphs := parseAll(t, []string{a, b}, cond, w)
				name := fmt.Sprintf("%s/%s↔%s", tc.name, a, b)
				got := runMigrating(t, name, graphs, maxD, in.Clone(), every)
				sameMultiset(t, name, want, got)
			}
		}
	}
}

// TestMigrationDifferentialTour cycles through EVERY plannable shape in one
// run — each boundary migrates to a different shape than the last.
func TestMigrationDifferentialTour(t *testing.T) {
	leakcheck.Check(t)
	for seed := int64(41); seed < 43; seed++ {
		for _, tc := range migrationConds() {
			in := mixWorkload(tc.m, 420, seed, 14)
			maxD, _ := in.MaxDelay()
			w := make([]stream.Time, tc.m)
			for i := range w {
				w[i] = 700
			}
			want := runGraph(FlatGraph(tc.mk(), w), maxD, in.Clone())
			shapes := migrationShapes(tc.m, tc.name == "star4")
			cond := tc.mk()
			graphs := parseAll(t, shapes, cond, w)
			every := len(in) / (2*len(shapes) + 1)
			name := fmt.Sprintf("%s/tour/seed%d", tc.name, seed)
			got := runMigrating(t, name, graphs, maxD, in.Clone(), every)
			sameMultiset(t, name, want, got)
		}
	}
}

// TestMigrationAdaptive migrates a quality-driven (adaptive) run across
// shapes. Adaptive shapes are not bit-for-bit comparable across deployments
// (each shape's scopes decide their own K), so the assertions are the
// delivery invariants: no duplicate and no spurious result versus the
// full-coverage reference, and the transplanted statistics stay monotone.
func TestMigrationAdaptive(t *testing.T) {
	leakcheck.Check(t)
	cond := join.EquiChain(3, 0)
	in := mixWorkload(3, 500, 7, 10)
	maxD, _ := in.MaxDelay()
	w := []stream.Time{700, 700, 700}
	want := runGraph(FlatGraph(join.EquiChain(3, 0), w), maxD, in.Clone())

	set := map[string]int{}
	gate := NewEmitLog(func(r stream.Result) { set[resultSig(r)]++ }, nil)
	cfg := ExecConfig{Policy: PolicyMaxK, Emit: gate.Emit}
	graphs := parseAll(t, []string{"flat", "tree-shard:2", "shard:2", "tree"}, cond, w)
	cur := 0
	ex := Build(graphs[0], cfg)
	var log []*stream.Tuple
	var prevGlobalT stream.Time
	for i, e := range in {
		ex.Push(e)
		log = append(log, e)
		if (i+1)%300 == 0 && i+1 < len(in) {
			next := (cur + 1) % len(graphs)
			nex, rep, err := Migrate(graphs[cur], cfg, ex, graphs[next], cfg,
				MigrateOptions{Log: log, LogSince: LogComplete, Gate: gate})
			if err != nil {
				t.Fatalf("adaptive migrate %s→%s: %v", rep.FromShape, rep.ToShape, err)
			}
			ex, cur = nex, next
			if m := ex.Stats(); m == nil {
				t.Fatalf("adaptive target lost its feedback loop")
			} else if g := m.GlobalT(); g < prevGlobalT {
				t.Fatalf("transplanted stats went backwards: GlobalT %v → %v", prevGlobalT, g)
			} else {
				prevGlobalT = g
			}
		}
	}
	ex.Finish()
	for k, c := range set {
		if c > want[k] {
			t.Fatalf("result %s delivered ×%d, reference has ×%d — duplicate or spurious delivery", k, c, want[k])
		}
	}
	if len(set) == 0 {
		t.Fatal("adaptive migrating run delivered nothing")
	}
}
