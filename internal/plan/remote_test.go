package plan

// Networked-runtime differentials at the executor seam: the same plans the
// in-process sharded runtime executes, deployed onto localhost qdhjd-style
// worker daemons via ExecConfig.Remote, must reproduce the flat reference
// bit-for-bit — result multiset, result count, and the full adaptation
// trajectory — at 2 and 4 workers, on equi/band/generic mixes, healthy and
// with a worker killed mid-stream and restored from the driver-side
// checkpoint. CI runs these under -race.

import (
	"fmt"
	stdnet "net"
	"testing"

	"repro/internal/fault"
	"repro/internal/join"
	"repro/internal/leakcheck"
	qnet "repro/internal/net"
	"repro/internal/stream"
)

// startDaemons spins up n in-process worker daemons on loopback listeners
// (the same Serve loop cmd/qdhjd runs) and returns their addresses.
// Injectors arm worker-side faults: per-daemon probe counts, exactly like
// qdhjd -inject.
func startDaemons(t *testing.T, n int, inj map[int]*fault.Injector) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		done := make(chan struct{})
		cfg := qnet.ServeConfig{Inject: inj[i]}
		go func() {
			defer close(done)
			_ = qnet.Serve(l, cfg)
		}()
		t.Cleanup(func() {
			l.Close()
			<-done
		})
	}
	return addrs
}

// remoteConds is the condition matrix: equi, band, and a generic residual
// (expression form — remote workers need a wireable condition).
func remoteConds() []struct {
	name string
	m    int
	mk   func() *join.Condition
} {
	return []struct {
		name string
		m    int
		mk   func() *join.Condition
	}{
		{"equichain3", 3, func() *join.Condition { return join.EquiChain(3, 0) }},
		{"band-equi-mix4", 4, func() *join.Condition {
			return join.Cross(4).Equi(0, 0, 1, 0).Band(1, 1, 2, 1, 8).Equi(2, 0, 3, 0)
		}},
		{"generic-mix3", 3, func() *join.Condition {
			return join.EquiChain(3, 0).WhereExpr(
				join.Le(join.Attr(0, 1), join.Add(join.Attr(2, 1), join.ConstOf(40))))
		}},
	}
}

// TestRemoteAdaptiveDifferential runs the full feedback pipeline — K
// adaptation at interval boundaries, K changes delivered in-band — against
// networked workers and requires the flat in-process reference exactly.
func TestRemoteAdaptiveDifferential(t *testing.T) {
	for _, tc := range remoteConds() {
		in := mixWorkload(tc.m, 1200, 23, 14)
		w := make([]stream.Time, tc.m)
		for i := range w {
			w[i] = 700
		}
		want := runHealthy(FlatGraph(tc.mk(), w), in.Clone())
		if want.results == 0 || len(want.ks) < 4 {
			t.Fatalf("%s: degenerate reference: %d results, %d adaptations",
				tc.name, want.results, len(want.ks))
		}
		for _, workers := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				leakcheck.Check(t)
				addrs := startDaemons(t, workers, nil)
				tr := supTrace{set: map[string]int{}}
				cfg := tr.cfg()
				cfg.Remote = addrs
				ex := Build(ShardedFlat(tc.mk(), w, workers), cfg)
				for _, e := range in.Clone() {
					ex.Push(e)
				}
				ex.Finish()
				tr.results = ex.Results()
				diffSupTraces(t, tc.name, want, tr)
			})
		}
	}
}

// TestRemoteSupervisedWorkerKill arms a worker-side injected panic on
// daemon 1 (the fault fires inside the remote process, mid-stream), lets
// the supervised driver observe the typed worker failure at the next
// barrier, reconnect, restore the shard's windows from the driver-side
// checkpoint, and replay — and requires the recovered run to match the
// healthy flat reference exactly, K trajectory included.
func TestRemoteSupervisedWorkerKill(t *testing.T) {
	leakcheck.Check(t)
	mk := func() *join.Condition { return join.EquiChain(3, 0) }
	in := mixWorkload(3, 1200, 23, 14)
	w := []stream.Time{700, 700, 700}
	want := runHealthy(FlatGraph(mk(), w), in.Clone())

	inj := fault.NewInjector()
	inj.PanicAt(1, 400) // worker-side: fires at daemon 1's 400th probe
	addrs := startDaemons(t, 2, map[int]*fault.Injector{1: inj})

	tr := supTrace{set: map[string]int{}}
	cfg := tr.cfg()
	cfg.Remote = addrs
	// No driver-side Inject: the fault lives in the worker process. The
	// supervisor only supplies backoff and checkpoint cadence.
	s := NewSupervised(ShardedFlat(mk(), w, 2), cfg, SuperviseConfig{
		Backoff: testBackoff(3), CheckpointEvery: 1})
	for _, e := range in.Clone() {
		s.Push(e)
	}
	s.Finish()
	if err := s.Err(); err != nil {
		t.Fatalf("supervised networked run went terminal: %v", err)
	}
	if s.Restarts() < 1 {
		t.Fatal("worker-side injector never fired")
	}
	tr.results = s.Results()
	diffSupTraces(t, "remote-kill", want, tr)
}

// TestRemoteConfigValidation pins the construction-time contract: remote
// deployment refuses tree shapes, a worker count that disagrees with the
// shard count, and conditions that cannot cross a process boundary.
func TestRemoteConfigValidation(t *testing.T) {
	w := []stream.Time{700, 700, 700}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("tree shape", func() {
		g, _ := ParseSpec("tree", join.EquiChain(3, 0), w, 2)
		Build(g, ExecConfig{Adapt: supAdapt, Remote: []string{"a:1", "b:2"}})
	})
	mustPanic("shard/worker mismatch", func() {
		Build(ShardedFlat(join.EquiChain(3, 0), w, 4),
			ExecConfig{Adapt: supAdapt, Remote: []string{"a:1", "b:2"}})
	})
	mustPanic("non-wireable condition", func() {
		cond := join.EquiChain(3, 0).Where([]int{0, 2}, func(a []*stream.Tuple) bool {
			return a[0].Attr(1) <= a[2].Attr(1)
		})
		Build(ShardedFlat(cond, w, 2),
			ExecConfig{Adapt: supAdapt, Remote: []string{"a:1", "b:2"}})
	})
}
