package plan

// Explain rendering: the human-readable form of a plan graph, showing the
// shape, every shard node's route (the acceptance check "no broadcast
// route" reads off this), and — for tree shapes — each stage's decision
// scope id and Γ′ path weight, matching exactly what the adaptive executor
// wires (post-order stage ids, leaves-governed/m weights).

import (
	"fmt"
	"strings"

	"repro/internal/join"
)

// Explain renders the graph as an indented tree.
func (g *Graph) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan over %d streams: %s\n", g.Cond.M, g.Reason)
	ids := stageIDs(g.Root)
	g.render(&b, g.Root, "", "", ids)
	return b.String()
}

// stageIDs assigns post-order ids to Stage nodes — the same numbering the
// plan-tree executor and its decision scopes use. Stages are keyed by their
// covered-streams signature, which is unique within one shape (nodes
// themselves hold slices and cannot be map keys).
func stageIDs(root Node) map[string]int {
	ids := map[string]int{}
	var walk func(Node)
	walk = func(n Node) {
		switch t := n.(type) {
		case Stage:
			walk(t.Left)
			walk(t.Right)
			ids[streamSet(t.Streams())] = len(ids)
		case Shard:
			walk(t.Child)
		}
	}
	walk(root)
	return ids
}

// leafChildren counts a stage's direct Leaf children (through Shard
// wrappers they do not exist — leaves are never sharded), i.e. the raw
// buffers the stage's K decision governs.
func leafChildren(s Stage) int {
	n := 0
	if _, ok := s.Left.(Leaf); ok {
		n++
	}
	if _, ok := s.Right.(Leaf); ok {
		n++
	}
	return n
}

func (g *Graph) render(b *strings.Builder, n Node, prefix, branch string, ids map[string]int) {
	b.WriteString(prefix + branch)
	childPrefix := prefix
	if branch != "" {
		if strings.HasSuffix(branch, "└─ ") {
			childPrefix += "   "
		} else {
			childPrefix += "│  "
		}
	}
	switch t := n.(type) {
	case Leaf:
		fmt.Fprintf(b, "leaf S%d (W=%v)\n", t.Stream, g.Windows[t.Stream])
	case Flat:
		fmt.Fprintf(b, "flat MJoin over %s\n", streamSet(t.Streams()))
	case Shard:
		fmt.Fprintf(b, "shard ×%d route=%s\n", t.N, routeString(t.Route, t.Broadcast()))
		g.render(b, t.Child, childPrefix, "└─ ", ids)
	case Stage:
		fmt.Fprintf(b, "stage %s ⋈ %s  [scope s%d, Γ′^(%d/%d)]\n",
			streamSet(t.Left.Streams()), streamSet(t.Right.Streams()),
			ids[streamSet(t.Streams())], leafChildren(t), g.Cond.M)
		g.render(b, t.Left, childPrefix, "├─ ", ids)
		g.render(b, t.Right, childPrefix, "└─ ", ids)
	}
}

func streamSet(streams []int) string {
	parts := make([]string, len(streams))
	for i, s := range streams {
		parts[i] = fmt.Sprint(s)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// routeString renders one shard route: the per-stream key attributes of an
// equi or band class, the broadcast fallback otherwise. broadcast marks the
// uncovered streams of a flat route; a stage route never routes them
// through this node, so the caller passes Shard.Broadcast().
func routeString(p join.PartitionScheme, broadcast bool) string {
	switch p.Mode {
	case join.PartitionNone:
		return "broadcast (seq-partitioned stream 0)"
	case join.PartitionBand:
		return fmt.Sprintf("band[%s Δ=%g]", keyAttrs(p), p.Delta)
	default:
		s := fmt.Sprintf("equi[%s]", keyAttrs(p))
		if broadcast {
			var bc []string
			for st, a := range p.KeyAttr {
				if a < 0 {
					bc = append(bc, fmt.Sprintf("S%d", st))
				}
			}
			s += " +broadcast(" + strings.Join(bc, ",") + ")"
		}
		return s
	}
}

func keyAttrs(p join.PartitionScheme) string {
	var parts []string
	for st, a := range p.KeyAttr {
		if a >= 0 {
			parts = append(parts, fmt.Sprintf("S%d.a%d", st, a))
		}
	}
	return strings.Join(parts, "↔")
}
