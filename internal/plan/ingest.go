package plan

// Bounded ingest for the supervised runtime: the K-slack buffers are the
// only state that grows with disorder rather than with the windows, so the
// ingest bound is expressed over their total occupancy (BufferedTuples).

// IngestPolicy selects what the supervised runtime does with an arrival
// when the buffered-tuple occupancy is at the configured bound.
type IngestPolicy int

const (
	// IngestBlock admits every arrival. Push is synchronous — the caller is
	// the producer, and the time Push spends processing IS the backpressure;
	// the bound is advisory and never drops or refuses anything.
	IngestBlock IngestPolicy = iota
	// IngestError refuses the arrival: TryPush returns fault.ErrOverload and
	// counts the tuple in Dropped. Refused tuples never enter the join (and
	// never enter the recovery log), so a replay after a crash reproduces
	// exactly the admitted sequence.
	IngestError
	// IngestShed admits the arrival, then evicts the lowest-productivity
	// buffered tuples (ShedWorst) until the occupancy is back at the bound.
	// On adaptive deployments every eviction is accounted with the feedback
	// loop, so RecallEstimate reflects the results the shed tuples would
	// have produced. Eviction order is deterministic, so shed decisions
	// replay identically during recovery.
	IngestShed
)

// IngestConfig bounds the supervised runtime's ingest. The zero value is
// unbounded.
type IngestConfig struct {
	// MaxBuffered is the K-slack occupancy bound; 0 means unbounded.
	MaxBuffered int
	// Policy is the overload behavior at the bound.
	Policy IngestPolicy
}
