// Package plan is the deployment planner: it turns (Condition, windows,
// hints) into an explicit plan graph — the deployment shape of one logical
// MSWJ — and compiles plan graphs into executors. It is the single seam the
// public API sits behind: the flat MJoin-style operator (internal/core),
// the key-partitioned sharded operator (internal/shard via core), and the
// binary-tree deployments of Sec. V (internal/dist), including bushy shapes
// and stage-wise sharding, are all reachable as shapes of one graph.
//
// # Nodes
//
//   - Leaf{stream}: one raw input stream.
//   - Flat{}: the MJoin-style operator over all streams (Alg. 2).
//   - Stage{left, right}: a binary join of two sub-plans, fronted by its
//     own Synchronizer (a tree of Stages is the Sec. V deployment; both
//     sides may be Stages — bushy shapes).
//   - Shard{n, route, child}: n key-partitioned copies of the child's
//     state. Over a Flat child this is the internal/shard runtime, routed
//     by the condition's global partition key. Over a Stage child the
//     route is the STAGE's own cross key — a binary stage always has one
//     when any equi or band predicate connects its sides, which is how
//     conditions without a full key class (the x4 star) still run fully
//     partitioned, with no broadcast route.
//
// # Cost model
//
// Auto picks a default shape from the condition's key-class structure and
// the caller's resource hints (shard budget, estimated predicate
// selectivity, per-stream arrival rates): see Auto for the decision
// procedure and DESIGN.md §9 for the rationale.
package plan

import (
	"fmt"
	"math"

	"repro/internal/join"
	"repro/internal/stream"
)

// Node is one plan-graph node.
type Node interface {
	// Streams returns the raw streams the node covers, ascending.
	Streams() []int
}

// Leaf is one raw input stream.
type Leaf struct {
	Stream int
}

// Streams implements Node.
func (l Leaf) Streams() []int { return []int{l.Stream} }

// Flat executes the full condition as the single MJoin-style operator of
// Alg. 2 (the classic deployment).
type Flat struct {
	M int
}

// Streams implements Node.
func (f Flat) Streams() []int {
	out := make([]int, f.M)
	for i := range out {
		out[i] = i
	}
	return out
}

// Stage is a binary join of two sub-plans.
type Stage struct {
	Left, Right Node
}

// Streams implements Node.
func (s Stage) Streams() []int {
	return join.SortedStreams(append(s.Left.Streams(), s.Right.Streams()...))
}

// Shard runs N key-partitioned copies of the child's state. Route records
// what keys the router uses: the condition's global partition scheme over a
// Flat child, the stage's own cross-key class over a Stage child.
type Shard struct {
	N     int
	Route join.PartitionScheme
	Child Node
}

// Streams implements Node.
func (s Shard) Streams() []int { return s.Child.Streams() }

// Broadcast reports whether the route replicates any stream to every shard
// (the fallback stage-wise sharding exists to eliminate).
func (s Shard) Broadcast() bool {
	if s.Route.Mode == join.PartitionNone {
		return true
	}
	if _, ok := s.Child.(Stage); ok {
		// A stage route covers exactly its two key streams; the −1 entries
		// of the remaining streams are not routed through this node at all,
		// and band replicas are ±eps neighbours, not broadcasts.
		return false
	}
	return anyUncovered(s.Route)
}

func anyUncovered(p join.PartitionScheme) bool {
	for _, a := range p.KeyAttr {
		if a < 0 {
			return true
		}
	}
	return false
}

// Graph is one deployment plan: the condition, the per-stream windows, and
// the shape.
type Graph struct {
	Cond    *join.Condition
	Windows []stream.Time
	Root    Node
	// Reason is the cost-model note Explain prints: why this shape.
	Reason string
}

// Hints carries the resource and statistics hints the cost model consumes.
// The zero value means "no parallelism, nothing known".
type Hints struct {
	// Shards is the parallel worker budget; ≤ 1 plans single-threaded.
	Shards int
	// Selectivity estimates the fraction of candidate pairs satisfying one
	// join predicate (as internal/stats-style profiling measures it:
	// n^on/n× per predicate). 0 means unknown; low values make tree shapes
	// with materialized intermediates affordable.
	Selectivity float64
	// Rates optionally gives per-stream arrival rates in tuples per time
	// unit (stats.Manager.Rate). Uniform rate 0.1/ms is assumed when nil.
	Rates []float64
}

// EdgeSigma is one measured per-predicate selectivity: the fraction of
// candidate pairs crossing the (Left, Right) stream edge that satisfy its
// equi/band predicate.
type EdgeSigma struct {
	Left, Right int
	Sigma       float64
}

// Measured carries statistics measured on a RUNNING join — the first-class
// planner input the online re-planner feeds back each measurement period,
// overriding the static hints where present. Unlike Hints (a guess made
// before the first tuple), Measured values come from the Statistics Manager
// and the delivered-result counters of the live deployment.
type Measured struct {
	// Rates is the measured per-stream arrival rate in tuples per time
	// unit; overrides Hints.Rates when non-nil.
	Rates []float64
	// Edges gives measured per-edge selectivities; edges not listed fall
	// back to Hints.Selectivity. An entry's stream pair is unordered.
	Edges []EdgeSigma
}

// FlatGraph returns the classic single-operator deployment.
func FlatGraph(cond *join.Condition, windows []stream.Time) *Graph {
	check(cond, windows)
	return &Graph{Cond: cond, Windows: windows, Root: Flat{M: cond.M},
		Reason: "flat MJoin operator (explicit)"}
}

// ShardedFlat returns the key-partitioned flat operator (qdhj.WithShards'
// deployment); the route is the condition's global partition scheme.
func ShardedFlat(cond *join.Condition, windows []stream.Time, n int) *Graph {
	check(cond, windows)
	if n <= 1 {
		return FlatGraph(cond, windows)
	}
	g := &Graph{Cond: cond, Windows: windows,
		Root:   Shard{N: n, Route: cond.Partition(), Child: Flat{M: cond.M}},
		Reason: fmt.Sprintf("flat operator × %d shards (explicit)", n)}
	return g
}

// Spine returns the unsharded left-deep tree over the streams in their
// natural order — the Sec. V deployment shape qdhj.NewTreeJoin executes.
func Spine(cond *join.Condition, windows []stream.Time) *Graph {
	check(cond, windows)
	order := make([]int, cond.M)
	for i := range order {
		order[i] = i
	}
	return &Graph{Cond: cond, Windows: windows, Root: spineOver(order),
		Reason: "left-deep binary tree (explicit)"}
}

func spineOver(order []int) Node {
	var n Node = Leaf{Stream: order[0]}
	for _, s := range order[1:] {
		n = Stage{Left: n, Right: Leaf{Stream: s}}
	}
	return n
}

func check(cond *join.Condition, windows []stream.Time) {
	if cond == nil || len(windows) != cond.M {
		panic("plan: condition arity must match window count")
	}
	if cond.M < 2 {
		panic("plan: need at least 2 streams")
	}
}

// Auto analyzes the condition and picks a default deployment shape:
//
//  1. With a shard budget and a key class covering EVERY stream (full equi
//     or full band), the flat operator shards directly — no intermediate
//     materialization, no broadcast.
//  2. With a shard budget but no full key class, a binary tree is built
//     and each stage is sharded on its own cross key — stage-wise
//     sharding. Stages whose sides no equi/band predicate connects stay
//     unsharded (their windows are usually tiny anyway); only if NO stage
//     is keyed does the planner fall back to the broadcast flat shards.
//  3. Without a shard budget, the flat operator is the default; a tree is
//     chosen only when the selectivity hint says intermediate results are
//     cheap to materialize (estimated stage cardinalities no larger than
//     the raw windows) — the regime where per-stage K buys its latency
//     advantage (DESIGN.md §8/§9).
//
// Tree shapes are chosen by estimated cost over the candidate splits: a
// bushy (balanced, connected, keyed) split is preferred when its total
// intermediate cardinality undercuts the greedy spine's. Auto seals the
// condition, like compiling it into an operator does.
func Auto(cond *join.Condition, windows []stream.Time, h Hints) *Graph {
	return AutoMeasured(cond, windows, h, nil)
}

// AutoMeasured is Auto with measured runtime statistics layered over the
// static hints: measured rates replace hinted rates, measured per-edge
// selectivities replace the uniform selectivity guess on the edges they
// cover. ms may be nil (plain Auto). This is the entry point the online
// re-planner calls each measurement period.
func AutoMeasured(cond *join.Condition, windows []stream.Time, h Hints, ms *Measured) *Graph {
	check(cond, windows)
	cm := newCostModel(cond, windows, h, ms)
	if h.Shards > 1 {
		scheme := cond.Partition()
		full := !anyUncovered(scheme) && scheme.Mode != join.PartitionNone
		if full {
			return &Graph{Cond: cond, Windows: windows,
				Root: Shard{N: h.Shards, Route: scheme, Child: Flat{M: cond.M}},
				Reason: fmt.Sprintf("full %s key class covers all streams → flat operator × %d shards",
					scheme.Mode, h.Shards)}
		}
		root, keyedStages := shardStages(cond, cm.bestTree(), h.Shards)
		if keyedStages > 0 {
			return &Graph{Cond: cond, Windows: windows, Root: root,
				Reason: "no full partition key class → stage-wise sharding: every binary stage routes on its own cross key"}
		}
		return &Graph{Cond: cond, Windows: windows,
			Root:   Shard{N: h.Shards, Route: scheme, Child: Flat{M: cond.M}},
			Reason: "no key class at any granularity (generic-only condition) → flat shards with broadcast fallback"}
	}
	if cm.known() && cond.M >= 3 {
		tree := cm.bestTree()
		if cost := cm.treeCost(tree); cost <= cm.windowBudget() {
			return &Graph{Cond: cond, Windows: windows, Root: tree,
				Reason: fmt.Sprintf("low selectivity (σ=%.2g, est. intermediates %.0f ≤ raw windows %.0f) → binary tree with per-stage K",
					cm.sigmaRepr(), cost, cm.windowBudget())}
		}
	}
	return &Graph{Cond: cond, Windows: windows, Root: Flat{M: cond.M},
		Reason: "flat MJoin operator (default: no shard budget, intermediates not known to be cheap)"}
}

// shardStages wraps every keyed stage of the tree in a Shard node and
// reports how many stages got one.
func shardStages(cond *join.Condition, n Node, shards int) (Node, int) {
	switch t := n.(type) {
	case Stage:
		left, kl := shardStages(cond, t.Left, shards)
		right, kr := shardStages(cond, t.Right, shards)
		st := Stage{Left: left, Right: right}
		keyed := kl + kr
		if route, ok := StageRoute(cond, st); ok {
			return Shard{N: shards, Route: route, Child: st}, keyed + 1
		}
		return st, keyed
	default:
		return n, 0
	}
}

// StageRoute computes the shard route of a stage: the first cross equi
// (hash partitioning) or, failing that, the first cross band (range-cell
// partitioning with ±eps replication), rendered as a PartitionScheme
// covering the stage's two key streams. ok is false when no equi or band
// predicate connects the sides.
func StageRoute(cond *join.Condition, st Stage) (join.PartitionScheme, bool) {
	link := cond.Cross(st.Left.Streams(), st.Right.Streams())
	key := make([]int, cond.M)
	for i := range key {
		key[i] = -1
	}
	switch {
	case len(link.Equis) > 0:
		e := link.Equis[0]
		key[e.LeftStream], key[e.RightStream] = e.LeftAttr, e.RightAttr
		return join.PartitionScheme{Mode: join.PartitionEqui, KeyAttr: key}, true
	case len(link.Bands) > 0:
		b := link.Bands[0]
		key[b.LeftStream], key[b.RightStream] = b.LeftAttr, b.RightAttr
		return join.PartitionScheme{Mode: join.PartitionBand, KeyAttr: key, Delta: b.Eps}, true
	}
	return join.PartitionScheme{}, false
}

// ---- cost model ----

// costModel estimates steady-state cardinalities from window sizes, arrival
// rates and the per-predicate selectivity — hinted uniformly, or measured
// per edge when the re-planner supplies a Measured overlay.
type costModel struct {
	cond    *join.Condition
	windows []stream.Time
	rates   []float64
	sigma   float64 // 0 = unknown
	// edge maps an unordered stream pair to its measured selectivity,
	// consulted before the uniform sigma.
	edge map[[2]int]float64
}

func newCostModel(cond *join.Condition, windows []stream.Time, h Hints, ms *Measured) *costModel {
	cm := &costModel{cond: cond, windows: windows, sigma: h.Selectivity}
	cm.rates = h.Rates
	if ms != nil && ms.Rates != nil {
		cm.rates = ms.Rates
	}
	if cm.rates == nil {
		cm.rates = make([]float64, cond.M)
		for i := range cm.rates {
			cm.rates[i] = 0.1 // one tuple per 10 time units, the gen default
		}
	}
	if ms != nil && len(ms.Edges) > 0 {
		cm.edge = make(map[[2]int]float64, len(ms.Edges))
		for _, e := range ms.Edges {
			cm.edge[edgeKey(e.Left, e.Right)] = e.Sigma
		}
	}
	return cm
}

func edgeKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

func (cm *costModel) known() bool { return cm.sigma > 0 || len(cm.edge) > 0 }

// edgeSigma resolves the selectivity of one predicate edge: the measured
// per-edge value when the re-planner supplied one, the uniform hint
// otherwise, and the pessimistic 1 when nothing is known.
func (cm *costModel) edgeSigma(a, b int) float64 {
	if s, ok := cm.edge[edgeKey(a, b)]; ok {
		return s
	}
	if cm.sigma > 0 {
		return cm.sigma
	}
	return 1
}

// winSize estimates the steady-state cardinality of stream i's window.
func (cm *costModel) winSize(i int) float64 {
	return math.Max(1, cm.rates[i]*float64(cm.windows[i]))
}

// windowBudget is Σ_i |W_i|: the state the flat operator holds anyway.
// Tree shapes whose intermediates fit in the same order are "cheap".
func (cm *costModel) windowBudget() float64 {
	var s float64
	for i := range cm.windows {
		s += cm.winSize(i)
	}
	return s
}

// card estimates the cardinality of the join over streams: the product of
// window sizes discounted by σ per connecting equi/band predicate.
func (cm *costModel) card(streams []int) float64 {
	in := make([]bool, cm.cond.M)
	for _, s := range streams {
		in[s] = true
	}
	out := 1.0
	for _, s := range streams {
		out *= cm.winSize(s)
	}
	for _, p := range cm.cond.Equis {
		if in[p.LeftStream] && in[p.RightStream] {
			out *= cm.edgeSigma(p.LeftStream, p.RightStream)
		}
	}
	for _, p := range cm.cond.Bands {
		if in[p.LeftStream] && in[p.RightStream] {
			out *= cm.edgeSigma(p.LeftStream, p.RightStream)
		}
	}
	return out
}

// sigmaRepr is the representative selectivity Explain reasons print: the
// geometric mean over measured edges, or the uniform hint.
func (cm *costModel) sigmaRepr() float64 {
	if len(cm.edge) == 0 {
		return cm.sigma
	}
	logSum, n := 0.0, 0
	for _, s := range cm.edge {
		logSum += math.Log(math.Max(s, 1e-12))
		n++
	}
	return math.Exp(logSum / float64(n))
}

// treeCost is the total estimated intermediate cardinality: Σ over
// internal nodes (excluding the root, whose output is the final result
// every shape pays for) of card(node).
func (cm *costModel) treeCost(n Node) float64 {
	var walk func(Node, bool) float64
	walk = func(n Node, root bool) float64 {
		st, ok := n.(Stage)
		if !ok {
			return 0
		}
		c := walk(st.Left, false) + walk(st.Right, false)
		if !root {
			c += cm.card(st.Streams())
		}
		return c
	}
	return walk(n, true)
}

// bestTree returns the cheapest candidate tree shape: the greedy
// connected-first spine, or a recursive bushy split when both halves stay
// connected, the cross link is keyed, and the estimated cost undercuts the
// spine's.
func (cm *costModel) bestTree() Node {
	all := make([]int, cm.cond.M)
	for i := range all {
		all[i] = i
	}
	spine := spineOver(cm.spineOrder(all))
	bushy, ok := cm.bushyOver(all)
	if ok && cm.treeCost(bushy) < cm.treeCost(spine) {
		return bushy
	}
	return spine
}

// spineOrder orders streams connected-first (the same greedy the operator
// planner uses: equi connections dominate band connections, ties break on
// the smallest index), starting from the smallest covered stream.
func (cm *costModel) spineOrder(streams []int) []int {
	bound := map[int]bool{streams[0]: true}
	order := []int{streams[0]}
	for len(order) < len(streams) {
		best, bestConn := -1, -1
		for _, s := range streams {
			if bound[s] {
				continue
			}
			conn := 0
			for _, p := range cm.cond.Equis {
				if (p.LeftStream == s && bound[p.RightStream]) || (p.RightStream == s && bound[p.LeftStream]) {
					conn += 256
				}
			}
			for _, p := range cm.cond.Bands {
				if (p.LeftStream == s && bound[p.RightStream]) || (p.RightStream == s && bound[p.LeftStream]) {
					conn++
				}
			}
			if conn > bestConn {
				best, bestConn = s, conn
			}
		}
		bound[best] = true
		order = append(order, best)
	}
	return order
}

// bushyOver recursively splits streams into two connected, keyed halves of
// near-equal size; ok is false when no valid split exists at the top level
// (deeper levels fall back to spines over their subset).
func (cm *costModel) bushyOver(streams []int) (Node, bool) {
	if len(streams) == 1 {
		return Leaf{Stream: streams[0]}, true
	}
	if len(streams) == 2 {
		return Stage{Left: Leaf{Stream: streams[0]}, Right: Leaf{Stream: streams[1]}}, true
	}
	k := len(streams) / 2
	var best Node
	bestCost := math.Inf(1)
	// Enumerate subsets of size k containing streams[0] (canonical halves).
	idx := make([]int, k)
	var try func(pos, next int)
	try = func(pos, next int) {
		if pos == k {
			left := make([]int, k)
			for i, j := range idx {
				left[i] = streams[j]
			}
			right := diff(streams, left)
			if !cm.cond.Connected(left) || !cm.cond.Connected(right) {
				return
			}
			if !cm.cond.Cross(left, right).Keyed() {
				return
			}
			l, _ := cm.bushyOver(left)
			if l == nil {
				l = spineOver(cm.spineOrder(left))
			}
			r, _ := cm.bushyOver(right)
			if r == nil {
				r = spineOver(cm.spineOrder(right))
			}
			cand := Stage{Left: l, Right: r}
			if c := cm.treeCost(cand); c < bestCost {
				best, bestCost = cand, c
			}
			return
		}
		for j := next; j < len(streams); j++ {
			idx[pos] = j
			try(pos+1, j+1)
		}
	}
	idx[0] = 0
	try(1, 1)
	if best == nil {
		return nil, false
	}
	return best, true
}

func diff(all, remove []int) []int {
	rm := map[int]bool{}
	for _, s := range remove {
		rm[s] = true
	}
	var out []int
	for _, s := range all {
		if !rm[s] {
			out = append(out, s)
		}
	}
	return out
}

// ---- comparable plan cost ----

// treeStateFraction prices the per-stage window upkeep of a tree relative
// to one flat probe over the full window budget: leaf windows still exist,
// but each arrival probes only its own stage instead of every window.
const treeStateFraction = 0.1

// CostOf reduces a plan graph to one comparable scalar under the given
// hints and measured statistics — the quantity the online re-planner's
// hysteresis gate compares across candidate shapes. The model follows the
// same tradeoff Auto decides by:
//
//   - A flat root costs its window budget Σ_i |W_i| — the state the MJoin
//     operator scans and maintains per probe.
//   - A keyed Shard over the flat operator divides that by its fan-out
//     (each worker holds and probes 1/N of the state); a broadcast route
//     replicates state and earns no discount.
//   - A tree root costs treeStateFraction of the window budget plus the
//     estimated cardinality of every materialized intermediate, each
//     divided by its own stage's shard fan-out.
//
// Lower is better. Dense predicates blow up the intermediates and push the
// scalar toward flat shapes; sparse predicates shrink them and favor trees.
func CostOf(g *Graph, h Hints, ms *Measured) float64 {
	cm := newCostModel(g.Cond, g.Windows, h, ms)
	switch root := g.Root.(type) {
	case Flat:
		return cm.windowBudget()
	case Shard:
		if _, ok := root.Child.(Flat); ok {
			if root.Broadcast() {
				return cm.windowBudget()
			}
			return cm.windowBudget() / float64(root.N)
		}
	}
	return treeStateFraction*cm.windowBudget() + cm.shardedTreeCost(g.Root, true)
}

// shardedTreeCost is treeCost with each non-root intermediate discounted by
// its stage's shard fan-out.
func (cm *costModel) shardedTreeCost(n Node, root bool) float64 {
	shards := 1
	if sh, ok := n.(Shard); ok {
		shards = sh.N
		n = sh.Child
	}
	st, ok := n.(Stage)
	if !ok {
		return 0
	}
	c := cm.shardedTreeCost(st.Left, false) + cm.shardedTreeCost(st.Right, false)
	if !root {
		c += cm.card(st.Streams()) / float64(shards)
	}
	return c
}
