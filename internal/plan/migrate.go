package plan

// Live cross-shape plan migration. PR 6's checkpoint/restore machinery is
// deliberately shape-bound: executor state (window layouts, synchronizer
// registers, partial materializations) only means something under the exact
// deployment that produced it, and Restore refuses a signature mismatch.
// Migrate gets from one shape to another by splitting the state differently:
//
//   - The shape-independent LOGICAL state — which raw arrivals exist, which
//     results were already delivered, and the feedback loop's measured
//     statistics — crosses the shape boundary explicitly: arrivals via a
//     bounded replay of the raw input suffix, deliveries via the EmitLog
//     gate, and the loop via a K-scope remap of its serialized state.
//   - The shape-DEPENDENT executor state is not transplanted at all. The
//     new executor rebuilds it by replaying the suffix through its own
//     normal Push path, which reconstructs windows, synchronizer registers
//     and intermediates exactly as an uninterrupted run of the new shape
//     would have built them.
//
// # Why the replay horizon is sound
//
// At the (quiesced) boundary, every result whose completing tuple was
// already processed has been emitted — the flat checkpoint flushes the
// sharded interval and the tree checkpoint drains the release pipeline. A
// result NOT yet delivered therefore has an unprocessed completing tuple:
// it sits in a K-slack buffer or a synchronizer, so its timestamp is ≥ S,
// the minimum timestamp over all unprocessed tuples. Its remaining members
// lie within one pairwise window of it: ≥ S − maxW. Live window contents
// similarly satisfy ts ≥ onT − W. The horizon
//
//	H = min(S, min onT, min localT) − maxW − 1
//
// hence bounds from below (a) every tuple that can still contribute to an
// undelivered result and (b) every live window member. Replaying exactly
// the arrivals with ts ≥ H regenerates all of them. Including min localT
// additionally guarantees the replayed suffix contains each stream's
// maximum-timestamp tuple, so the rebuilt K-slack clocks equal the old
// ones and the release schedule of future arrivals is unchanged.
//
// Results the replay regenerates that the old executor already delivered
// are suppressed by the gate's recorded multiset; results that were in
// flight are delivered exactly once. Stale regenerations below any new
// window scope are expired before they can probe — result-invisible.

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/feedback"
	"repro/internal/profiler"
	"repro/internal/stream"
)

// ErrReplayShallow reports that the replay log does not reach back to the
// migration horizon — the caller's log was pruned too aggressively (or the
// run just restarted from a snapshot). The old executor is left running;
// retry at a later boundary once the log has deepened.
var ErrReplayShallow = errors.New("plan: replay log does not reach the migration horizon")

// LogComplete is the MigrateOptions.LogSince value for a log holding every
// arrival since the first Push.
const LogComplete = stream.Time(math.MinInt64)

// MigrateOptions carries the migration inputs the runtime owns.
type MigrateOptions struct {
	// Log is the raw input suffix in arrival order. It must contain every
	// arrival with TS ≥ LogSince (later-arriving tuples with older
	// timestamps included).
	Log []*stream.Tuple
	// LogSince is the timestamp horizon the log is complete for; use
	// LogComplete for an unpruned log.
	LogSince stream.Time
	// Gate is the exactly-once delivery gate. It must already be installed
	// as the old executor's emit callback (and will be enforced as the new
	// one's), with the user sink behind it.
	Gate *EmitLog
}

// MigrateReport describes one completed (or refused) migration.
type MigrateReport struct {
	FromShape, ToShape string
	// Horizon is the replay horizon H; arrivals with TS ≥ H were replayed.
	Horizon stream.Time
	// Replayed is the number of replayed arrivals.
	Replayed int
	// Delivered counts replay results that were in flight at the boundary
	// and reached the user through the replay; Suppressed counts
	// regenerations the gate matched against prior deliveries.
	Delivered, Suppressed int64
	// OldResults is the abandoned executor's result counter at the boundary.
	OldResults int64
}

// Migrate moves a running join from oldEx (built from oldG/oldCfg) to a
// fresh executor of newG/newCfg without stopping the stream. It must be
// called between two Push calls — on adaptive shapes, right after an
// adaptation boundary, where the executor is quiesced and the K trajectory
// is at a decision point. On success the old executor is abandoned and the
// returned executor continues the run behind the same delivery gate. On
// error the old executor is untouched and still running.
func Migrate(oldG *Graph, oldCfg ExecConfig, oldEx Executor, newG *Graph, newCfg ExecConfig, opt MigrateOptions) (Executor, MigrateReport, error) {
	rep := MigrateReport{FromShape: ShapeString(oldG), ToShape: ShapeString(newG)}
	if opt.Gate == nil {
		return nil, rep, errors.New("plan: Migrate needs the EmitLog gate the run delivers through")
	}
	if oldG.Cond != newG.Cond {
		return nil, rep, errors.New("plan: Migrate across different Conditions — plan the same condition value")
	}
	if len(oldG.Windows) != len(newG.Windows) {
		return nil, rep, errors.New("plan: Migrate across different window counts")
	}
	for i := range oldG.Windows {
		if oldG.Windows[i] != newG.Windows[i] {
			return nil, rep, fmt.Errorf("plan: Migrate across different windows (stream %d: %v vs %v)", i, oldG.Windows[i], newG.Windows[i])
		}
	}
	// Capture the boundary state. Checkpoint is non-destructive: it
	// quiesces and flushes pending deliveries but leaves the executor live,
	// so every refusal below is safe.
	st, err := Checkpoint(oldG, oldCfg, oldEx)
	if err != nil {
		return nil, rep, err
	}
	h := migrationHorizon(&st, oldG)
	rep.Horizon = h
	if h < opt.LogSince {
		return nil, rep, fmt.Errorf("%w: need arrivals since ts %d, log reaches back to %d", ErrReplayShallow, h, opt.LogSince)
	}
	oldLoop := loopState(&st)
	rep.OldResults = oldEx.Results()
	Abandon(oldEx)

	// Build the new shape behind the same gate; user-facing adaptation and
	// count hooks stay silent during the replay (the gate re-synthesizes
	// counts for the results it actually delivers).
	gate := opt.Gate
	bcfg := newCfg
	bcfg.Emit = gate.Emit
	if inner := newCfg.OnAdapt; inner != nil {
		bcfg.OnAdapt = func(ev core.AdaptEvent) {
			if !gate.Replaying() {
				inner(ev)
			}
		}
	}
	if innerC := newCfg.EmitCounts; innerC != nil {
		bcfg.EmitCounts = func(ts stream.Time, n int64) {
			if !gate.Replaying() {
				innerC(ts, n)
			}
		}
	}
	ex := Build(newG, bcfg)

	gate.BeginReplay()
	for _, t := range opt.Log {
		if t.TS >= h {
			ex.Push(t)
			rep.Replayed++
		}
	}
	// Sharded targets defer deliveries (interval flush, reorder release);
	// drain them through the gate while it still suppresses regenerations.
	quiesceExec(ex)
	rep.Delivered, rep.Suppressed = gate.EndReplay()

	// Transplant the feedback loop: the old boundary-time state already
	// accounts every replayed arrival exactly once (they all arrived before
	// the boundary), so restoring it over the replay-polluted fresh loop
	// erases the duplicate observations. Per-scope registers remap by
	// governed stream set; scopes with no old counterpart re-derive from
	// the old root scope (the global decision on flat shapes). The Γ′
	// weights need no transplant — the new executor recomputed them from
	// its own stage structure at construction.
	if oldLoop != nil {
		if nl := execLoop(ex); nl != nil {
			ns := remapFeedback(*oldLoop, scopeStreamSets(oldG), scopeStreamSets(newG))
			nl.Restore(ns)
			applyKs(ex, ns.Ks)
		}
	}
	return ex, rep, nil
}

// migrationHorizon computes H = min(S, min onT, min localT) − maxW − 1 from
// the captured boundary state; see the package comment for the soundness
// argument.
func migrationHorizon(st *ExecState, g *Graph) stream.Time {
	min := stream.Time(math.MaxInt64)
	upd := func(t stream.Time) {
		if t < min {
			min = t
		}
	}
	tupTS := func(id int32) {
		if id >= 0 {
			upd(st.Tuples[id].TS)
		}
	}
	ids := func(ids []int32) {
		for _, id := range ids {
			tupTS(id)
		}
	}
	events := func(evs []fault.EventRec) {
		for _, ev := range evs {
			tupTS(ev.Right)
			ids(ev.Parts)
		}
	}
	switch {
	case st.Flat != nil:
		for _, k := range st.Flat.Ks {
			ids(k.Buffered)
			upd(k.LocalT)
		}
		ids(st.Flat.Sync.Buffered)
		if st.Flat.Shard != nil {
			upd(st.Flat.Shard.WM)
		} else {
			upd(st.Flat.Op.OnT)
		}
	default:
		ts := st.Tree
		if st.ATree != nil {
			ts = &st.ATree.Tree
		}
		for _, k := range ts.Leaves {
			ids(k.Buffered)
			upd(k.LocalT)
		}
		for _, sg := range ts.Stages {
			events(sg.SyncBuf)
			upd(sg.OnT)
		}
	}
	var maxW stream.Time
	for _, w := range g.Windows {
		if w > maxW {
			maxW = w
		}
	}
	if min == math.MaxInt64 { // nothing pushed yet
		return math.MinInt64
	}
	return min - maxW - 1
}

// quiesceExec drains an executor's deferred deliveries: the sharded flat
// runtime's pending interval, a tree's release pipeline.
func quiesceExec(ex Executor) {
	switch e := ex.(type) {
	case *flatExec:
		e.p().Quiesce()
	case *treeExec:
		e.tree().Quiesce()
	}
}

// loopState extracts the serialized feedback loop, nil on loop-less
// deployments (static trees).
func loopState(st *ExecState) *feedback.State {
	switch {
	case st.Flat != nil:
		return &st.Flat.Loop
	case st.ATree != nil:
		return &st.ATree.Loop
	}
	return nil
}

// execLoop returns the live feedback loop of a built executor, nil on
// static trees.
func execLoop(ex Executor) *feedback.Loop {
	switch e := ex.(type) {
	case *flatExec:
		return e.p().Loop()
	case *treeExec:
		if e.at != nil {
			return e.at.Loop()
		}
	}
	return nil
}

// applyKs pushes the transplanted per-scope buffer sizes into the K-slack
// buffers; the loop's Restore sets the decision registers but the buffers
// themselves are only resized at boundaries.
func applyKs(ex Executor, ks []stream.Time) {
	switch e := ex.(type) {
	case *flatExec:
		e.p().ApplyK(ks[0])
	case *treeExec:
		e.tree().SetStageK(ks)
	}
}

// scopeStreamSets lists, per decision scope of the shape, the sorted raw
// streams it governs: one global scope on flat shapes, one scope per stage
// in post-order (root last) on trees — mirroring dist's planScopes order.
func scopeStreamSets(g *Graph) [][]int {
	switch root := g.Root.(type) {
	case Flat:
		return [][]int{root.Streams()}
	case Shard:
		if f, ok := root.Child.(Flat); ok {
			return [][]int{f.Streams()}
		}
	}
	var sets [][]int
	var walk func(Node)
	walk = func(n Node) {
		switch t := n.(type) {
		case Shard:
			walk(t.Child)
		case Stage:
			walk(t.Left)
			walk(t.Right)
			sets = append(sets, t.Streams())
		}
	}
	walk(g.Root)
	return sets
}

// remapFeedback rebuilds a serialized loop state for a different scope
// structure. Global registers (schedule anchors, statistics manager, result
// monitor, cumulative recall accounting) transfer verbatim — they are
// shape-independent. Per-scope registers (K, average-K accumulator,
// profiler) match by governed stream set; a new scope with no old
// counterpart re-derives from the old ROOT scope, the coarsest decision
// covering it.
func remapFeedback(old feedback.State, oldSets, newSets [][]int) feedback.State {
	out := old
	out.Ks = make([]stream.Time, len(newSets))
	out.SumK = make([]float64, len(newSets))
	out.Profilers = make([]profiler.State, len(newSets))
	rootIdx := len(oldSets) - 1
	for j, ns := range newSets {
		i := matchStreamSet(oldSets, ns)
		if i < 0 {
			i = rootIdx
		}
		out.Ks[j] = old.Ks[i]
		out.SumK[j] = old.SumK[i]
		out.Profilers[j] = old.Profilers[i]
	}
	return out
}

func matchStreamSet(sets [][]int, want []int) int {
	for i, s := range sets {
		if len(s) != len(want) {
			continue
		}
		eq := true
		for k := range s {
			if s[k] != want[k] {
				eq = false
				break
			}
		}
		if eq {
			return i
		}
	}
	return -1
}
