package plan

// The fault-injection differential suite: a supervised run with workers
// killed at injected points must reproduce the healthy run bit-for-bit —
// result multiset, result count, and the full adaptation trajectory — on
// every deployment shape, at shard counts 1, 2, 4 and 8. CI runs this
// under -race.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/join"
	"repro/internal/leakcheck"
	"repro/internal/stream"
)

var supAdapt = adapt.Config{Gamma: 0.9, P: stream.Second, L: 200 * stream.Millisecond}

// supTrace pins everything the differential compares.
type supTrace struct {
	results int64
	ks      []string
	set     map[string]int
}

func (tr *supTrace) cfg() ExecConfig {
	return ExecConfig{
		Adapt: supAdapt,
		Emit:  func(r stream.Result) { tr.set[resultSig(r)]++ },
		OnAdapt: func(ev core.AdaptEvent) {
			tr.ks = append(tr.ks, fmt.Sprintf("%v:%v>%v", ev.Now, ev.PrevK, ev.NewK))
		},
	}
}

// testBackoff never really sleeps and keeps its jitter deterministic.
func testBackoff(retries int) fault.Backoff {
	return fault.Backoff{Base: time.Millisecond, Cap: 4 * time.Millisecond,
		Retries: retries, Seed: 7, Sleep: func(time.Duration) {}}
}

// runHealthy is the reference: the bare executor, no supervision.
func runHealthy(g *Graph, in stream.Batch) supTrace {
	tr := supTrace{set: map[string]int{}}
	ex := Build(g, tr.cfg())
	for _, e := range in {
		ex.Push(e)
	}
	ex.Finish()
	tr.results = ex.Results()
	return tr
}

func runSupervised(t *testing.T, g *Graph, in stream.Batch, scf SuperviseConfig) (*Supervised, supTrace) {
	t.Helper()
	tr := supTrace{set: map[string]int{}}
	s := NewSupervised(g, tr.cfg(), scf)
	for _, e := range in {
		s.Push(e)
	}
	s.Finish()
	if err := s.Err(); err != nil {
		t.Fatalf("supervised run went terminal: %v", err)
	}
	tr.results = s.Results()
	return s, tr
}

func diffSupTraces(t *testing.T, name string, want, got supTrace) {
	t.Helper()
	if got.results != want.results {
		t.Errorf("%s: %d results, want %d", name, got.results, want.results)
	}
	if len(got.ks) != len(want.ks) {
		t.Fatalf("%s: %d adaptations, want %d", name, len(got.ks), len(want.ks))
	}
	for i := range want.ks {
		if got.ks[i] != want.ks[i] {
			t.Fatalf("%s: adaptation %d = %s, want %s", name, i, got.ks[i], want.ks[i])
		}
	}
	sameMultiset(t, name, want.set, got.set)
}

// supShapes is the shape matrix: every engine, shard counts 1/2/4/8, plus
// a stage-sharded tree and a bushy tree when the arity allows.
func supShapes(m int) []string {
	shapes := []string{"flat", "shard:2", "shard:4", "shard:8", "tree", "tree-shard:2"}
	if m == 4 {
		shapes = append(shapes, "((0 1)x4 (2 3))x4")
	}
	return shapes
}

// TestSupervisedRecoveryDifferential kills workers at injected arrival
// counts — twice per run, early and late — and requires the recovered run
// to match the healthy reference exactly.
func TestSupervisedRecoveryDifferential(t *testing.T) {
	conds := []struct {
		name string
		m    int
		mk   func() *join.Condition
	}{
		{"equichain3", 3, func() *join.Condition { return join.EquiChain(3, 0) }},
		{"band-equi-mix4", 4, func() *join.Condition {
			return join.Cross(4).Equi(0, 0, 1, 0).Band(1, 1, 2, 1, 8).Equi(2, 0, 3, 0)
		}},
	}
	for _, tc := range conds {
		in := mixWorkload(tc.m, 1200, 17, 14)
		w := make([]stream.Time, tc.m)
		for i := range w {
			w[i] = 700
		}
		for _, spec := range supShapes(tc.m) {
			t.Run(fmt.Sprintf("%s/%s", tc.name, spec), func(t *testing.T) {
				leakcheck.Check(t)
				g, err := ParseSpec(spec, tc.mk(), w, 4)
				if err != nil {
					t.Fatal(err)
				}
				want := runHealthy(g, in.Clone())
				if want.results == 0 || len(want.ks) < 4 {
					t.Fatalf("degenerate reference: %d results, %d adaptations", want.results, len(want.ks))
				}

				g2, _ := ParseSpec(spec, tc.mk(), w, 4)
				inj := fault.NewInjector()
				// Worker 0 exists on every shape (worker-less engines check
				// it on the driver thread); the second directive targets the
				// highest shard-local worker id and fires only when sharded.
				inj.PanicAt(0, 400)
				inj.PanicAt(1, 2500)
				// CheckpointEvery 1 pins the strictest mode: a capture at
				// every boundary, so recoveries restore the newest possible
				// checkpoint. (Other tests cover the amortized default.)
				s, got := runSupervised(t, g2, in.Clone(), SuperviseConfig{
					Backoff: testBackoff(3), Inject: inj, CheckpointEvery: 1})
				if s.Restarts() < 1 {
					t.Fatalf("no restart recorded; the injector never fired")
				}
				diffSupTraces(t, spec, want, got)
			})
		}
	}
}

// TestSupervisedHealthyPassThrough: supervision of a run with no faults
// must not perturb it — boundary checkpoints included.
func TestSupervisedHealthyPassThrough(t *testing.T) {
	leakcheck.Check(t)
	in := mixWorkload(3, 900, 5, 12)
	w := []stream.Time{700, 700, 700}
	for _, spec := range []string{"shard:4", "tree-shard:2"} {
		g, _ := ParseSpec(spec, join.EquiChain(3, 0), w, 4)
		want := runHealthy(g, in.Clone())
		g2, _ := ParseSpec(spec, join.EquiChain(3, 0), w, 4)
		s, got := runSupervised(t, g2, in.Clone(),
			SuperviseConfig{Backoff: testBackoff(2), CheckpointEvery: 1})
		if s.Restarts() != 0 {
			t.Fatalf("%s: healthy run restarted %d times", spec, s.Restarts())
		}
		diffSupTraces(t, spec, want, got)
	}
}

// TestSupervisedTerminal: a fault with a zero retry budget surfaces as a
// terminal *fault.JoinError via Err(); Push becomes a silent no-op and
// TryPush returns the error. The injected cause stays recoverable through
// the error chain.
func TestSupervisedTerminal(t *testing.T) {
	leakcheck.Check(t)
	in := mixWorkload(3, 400, 9, 12)
	w := []stream.Time{700, 700, 700}
	g, _ := ParseSpec("shard:2", join.EquiChain(3, 0), w, 4)
	inj := fault.NewInjector()
	inj.PanicAt(0, 200)
	s := NewSupervised(g, ExecConfig{Adapt: supAdapt}, SuperviseConfig{
		Backoff: fault.Backoff{Base: time.Millisecond, Retries: 0, Sleep: func(time.Duration) {}},
		Inject:  inj,
	})
	for _, e := range in {
		s.Push(e)
	}
	err := s.Err()
	if err == nil {
		t.Fatal("no terminal error after an unrecovered fault")
	}
	var je *fault.JoinError
	if !errors.As(err, &je) {
		t.Fatalf("Err() = %T, want *fault.JoinError", err)
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("terminal error does not unwrap to the injected cause: %v", err)
	}
	var we *fault.WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("terminal error does not carry the worker identity: %v", err)
	}
	if tp := s.TryPush(in[0]); !errors.As(tp, &je) {
		t.Fatalf("TryPush after terminal failure = %v, want the JoinError", tp)
	}
	s.Finish() // must be a no-op, not a panic
}

// TestSupervisedLifecycleSplit pins the error-model boundary: operational
// faults surface as typed errors, API misuse keeps the documented panics —
// supervision must never swallow the latter.
func TestSupervisedLifecycleSplit(t *testing.T) {
	leakcheck.Check(t)
	w := []stream.Time{700, 700, 700}
	mk := func() *Supervised {
		g, _ := ParseSpec("flat", join.EquiChain(3, 0), w, 4)
		return NewSupervised(g, ExecConfig{Adapt: supAdapt}, SuperviseConfig{Backoff: testBackoff(1)})
	}
	tup := &stream.Tuple{TS: 3000, Src: 0, Attrs: []float64{1, 1}}

	// Typed side: TryPush after Finish is an error, not a panic.
	s := mk()
	s.Push(tup)
	s.Finish()
	if err := s.TryPush(tup); !errors.Is(err, fault.ErrClosed) {
		t.Fatalf("TryPush after Finish = %v, want fault.ErrClosed", err)
	}

	// Panic side: Push after Finish keeps the engine's lifecycle panic.
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: no panic", name)
			}
			if _, ok := r.(string); !ok {
				t.Fatalf("%s: panic value %T, want the documented string panic", name, r)
			}
		}()
		f()
	}
	mustPanic("push-after-close", func() { s.Push(tup) })
	mustPanic("double-close", func() { s.Finish() })
	mustPanic("sealed-condition", func() {
		g, _ := ParseSpec("flat", join.EquiChain(3, 0), w, 4)
		Build(g, ExecConfig{Adapt: supAdapt})
		g.Cond.Equi(0, 0, 1, 0)
	})
}

// TestSupervisedIngestError: the Error policy refuses arrivals at the
// bound with fault.ErrOverload, counts them in Dropped, and — because
// refused tuples never enter the join or the log — a crash-recovery run
// admits and refuses exactly the same sequence.
func TestSupervisedIngestError(t *testing.T) {
	leakcheck.Check(t)
	in := mixWorkload(3, 900, 31, 12)
	w := []stream.Time{700, 700, 700}
	ing := IngestConfig{MaxBuffered: 40, Policy: IngestError}

	run := func(inj *fault.Injector) (*Supervised, supTrace, int64) {
		tr := supTrace{set: map[string]int{}}
		g, _ := ParseSpec("shard:4", join.EquiChain(3, 0), w, 4)
		s := NewSupervised(g, tr.cfg(), SuperviseConfig{Backoff: testBackoff(3), Inject: inj, Ingest: ing})
		var drops int64
		for _, e := range in.Clone() {
			if err := s.TryPush(e); errors.Is(err, fault.ErrOverload) {
				drops++
			} else if err != nil {
				t.Fatalf("TryPush: %v", err)
			}
		}
		s.Finish()
		tr.results = s.Results()
		return s, tr, drops
	}

	sWant, want, dropsWant := run(nil)
	if dropsWant == 0 {
		t.Fatal("bound never hit; the test exercises nothing")
	}
	if sWant.Dropped() != dropsWant {
		t.Fatalf("Dropped() = %d, caller counted %d", sWant.Dropped(), dropsWant)
	}

	inj := fault.NewInjector()
	inj.PanicAt(0, 500)
	sGot, got, dropsGot := run(inj)
	if sGot.Restarts() < 1 {
		t.Fatal("injector never fired")
	}
	if dropsGot != dropsWant {
		t.Fatalf("recovered run refused %d arrivals, healthy run refused %d", dropsGot, dropsWant)
	}
	diffSupTraces(t, "ingest-error", want, got)
}

// TestSupervisedIngestShed: the Shed policy keeps occupancy at the bound,
// reduces recall below 1, keeps the estimate consistent after recovery
// (sheds replay deterministically), and the Block policy never drops.
func TestSupervisedIngestShed(t *testing.T) {
	leakcheck.Check(t)
	in := mixWorkload(3, 900, 31, 12)
	w := []stream.Time{700, 700, 700}
	ing := IngestConfig{MaxBuffered: 30, Policy: IngestShed}

	run := func(inj *fault.Injector) (*Supervised, supTrace) {
		tr := supTrace{set: map[string]int{}}
		g, _ := ParseSpec("shard:2", join.EquiChain(3, 0), w, 4)
		s := NewSupervised(g, tr.cfg(), SuperviseConfig{Backoff: testBackoff(3), Inject: inj, Ingest: ing})
		for _, e := range in.Clone() {
			if s.BufferedTuples() > ing.MaxBuffered {
				t.Fatalf("occupancy %d exceeds the bound %d between pushes", s.BufferedTuples(), ing.MaxBuffered)
			}
			if err := s.TryPush(e); err != nil {
				t.Fatalf("TryPush: %v", err)
			}
		}
		s.Finish()
		tr.results = s.Results()
		return s, tr
	}

	sWant, want := run(nil)
	recallWant := sWant.RecallEstimate()
	if recallWant >= 1 || recallWant <= 0 {
		t.Fatalf("shed run recall estimate = %v, want in (0, 1)", recallWant)
	}
	if want.results == 0 {
		t.Fatal("shed run produced nothing; bound too tight for the test")
	}

	inj := fault.NewInjector()
	inj.PanicAt(0, 700)
	sGot, got := run(inj)
	if sGot.Restarts() < 1 {
		t.Fatal("injector never fired")
	}
	diffSupTraces(t, "ingest-shed", want, got)
	if r := sGot.RecallEstimate(); r != recallWant {
		t.Fatalf("recovered shed run recall = %v, healthy = %v", r, recallWant)
	}

	// Block: advisory bound, nothing refused, recall stays 1.
	g, _ := ParseSpec("shard:2", join.EquiChain(3, 0), w, 4)
	s := NewSupervised(g, ExecConfig{Adapt: supAdapt}, SuperviseConfig{
		Backoff: testBackoff(1), Ingest: IngestConfig{MaxBuffered: 30, Policy: IngestBlock}})
	for _, e := range in.Clone() {
		if err := s.TryPush(e); err != nil {
			t.Fatalf("Block policy refused an arrival: %v", err)
		}
	}
	s.Finish()
	if s.Dropped() != 0 {
		t.Fatalf("Block policy dropped %d", s.Dropped())
	}
	if r := s.RecallEstimate(); r != 1 {
		t.Fatalf("Block policy recall = %v, want 1", r)
	}
}

// TestExecStateSignatureMismatch: restoring a snapshot into a different
// deployment is refused with fault.ErrRestoreMismatch.
func TestExecStateSignatureMismatch(t *testing.T) {
	leakcheck.Check(t)
	in := mixWorkload(3, 600, 3, 12)
	w := []stream.Time{700, 700, 700}
	g, _ := ParseSpec("tree", join.EquiChain(3, 0), w, 4)
	cfg := ExecConfig{Adapt: supAdapt}
	ex := Build(g, cfg)
	for _, e := range in {
		ex.Push(e)
	}
	st, err := Checkpoint(g, cfg, ex)
	if err != nil {
		t.Fatal(err)
	}
	ex.Finish()

	// Different shape.
	g2, _ := ParseSpec("shard:2", join.EquiChain(3, 0), w, 4)
	if _, err := Restore(g2, cfg, st); !errors.Is(err, fault.ErrRestoreMismatch) {
		t.Fatalf("restore into a different shape = %v, want ErrRestoreMismatch", err)
	}
	// Different windows.
	g3, _ := ParseSpec("tree", join.EquiChain(3, 0), []stream.Time{700, 700, 800}, 4)
	if _, err := Restore(g3, cfg, st); !errors.Is(err, fault.ErrRestoreMismatch) {
		t.Fatalf("restore under different windows = %v, want ErrRestoreMismatch", err)
	}
	// Same deployment: accepted, and the restored run finishes cleanly.
	g4, _ := ParseSpec("tree", join.EquiChain(3, 0), w, 4)
	ex4, err := Restore(g4, cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	ex4.Finish()
}
