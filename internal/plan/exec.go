package plan

// The executor seam: every deployment shape compiles through Build into one
// Executor interface, so the public API (and the CLI tools) never pick an
// engine directly. Flat shapes — with or without a Shard wrapper — compile
// to the core pipeline (which in turn hosts the internal/shard runtime);
// tree shapes compile to the internal/dist plan-tree engine, static or
// adaptive. The unsharded left-deep spine additionally has dedicated
// builders (BuildSpineStatic/BuildSpineAdaptive) returning the Sec. V
// executors qdhj.NewTreeJoin wraps, so the plan layer is the single
// graph→executor mapping point.

import (
	"fmt"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/feedback"
	"repro/internal/join"
	"repro/internal/net"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/stream"
)

// Policy names the buffer-sizing policy, mirroring the public qdhj.Policy.
type Policy int

// Policies.
const (
	PolicyModel Policy = iota
	PolicyMaxK
	PolicyNoK
	PolicyStatic
)

// ExecConfig assembles an executor from a graph.
type ExecConfig struct {
	// Adapt carries Γ, P, L, b, g and the selectivity strategy.
	Adapt adapt.Config
	// Policy selects the buffer-sizing policy; PolicyStatic runs tree
	// shapes without a feedback loop at the fixed StaticK.
	Policy  Policy
	StaticK stream.Time
	// Emit optionally receives every produced result.
	Emit join.EmitFunc
	// EmitCounts optionally receives per-arrival result counts. Tree
	// executors materialize results anyway and report one count per result.
	EmitCounts join.CountEmitFunc
	// OnAdapt optionally observes adaptation steps. On tree shapes PrevK
	// and NewK report the maximum over the per-stage Ks.
	OnAdapt func(core.AdaptEvent)
	// BatchSize/QueueDepth tune the flat sharded runtime (0 = default).
	BatchSize, QueueDepth int
	// Batch sets the columnar release batch size (≤ 1 = per-tuple, the
	// default): synchronizer/K-slack output is buffered and fed to the
	// probe kernel in short runs. Results and K trajectories are bit-for-bit
	// those of the per-tuple run on every shape.
	Batch int
	// Inject optionally arms the deterministic fault injector on the built
	// executor's workers (and, on worker-less shapes, its driver thread).
	Inject *fault.Injector
	// Remote runs the flat shape on networked qdhjd worker processes, one
	// address per shard (the graph's shard count must match, or be flat
	// with one address). The condition must be wireable — generic
	// predicates need an expression form (WhereExpr) to cross the process
	// boundary. Disorder handling and the feedback loop stay on the
	// driver; BatchSize doubles as the frame batch (tuple messages per
	// network write). Tree shapes do not support remote execution.
	Remote []string
}

// Executor is the one interface all deployment shapes execute behind.
type Executor interface {
	Push(*stream.Tuple)
	Finish()
	Results() int64
	// CurrentKs returns the most recent buffer-size decision, one entry per
	// decision scope (a single entry on flat shapes).
	CurrentKs() []stream.Time
	// AvgK returns the average over adaptation steps of the largest
	// per-scope K — the latency bound the deployment adds.
	AvgK() float64
	Adaptations() int64
	// SetEmit installs a result callback before the first Push.
	SetEmit(join.EmitFunc)
	// Stats exposes the Statistics Manager, or nil on static tree shapes
	// (which run no feedback loop).
	Stats() *stats.Manager
}

// Build compiles the graph into its executor.
func Build(g *Graph, cfg ExecConfig) Executor {
	shards := 0
	flatChild := false
	switch root := g.Root.(type) {
	case Flat:
		flatChild = true
	case Shard:
		if _, ok := root.Child.(Flat); ok {
			flatChild = true
			shards = root.N
		}
	}
	if flatChild {
		return buildFlat(g, cfg, shards)
	}
	if len(cfg.Remote) > 0 {
		panic("plan: remote workers execute only flat shapes — tree stages own window state the driver cannot retain for checkpointing; plan a flat or sharded-flat shape")
	}
	return buildTree(g, cfg)
}

// PolicyFactoryFor maps the named policy to the core policy factory the
// flat pipeline runs, plus the buffer size in force before the first
// adaptation step (non-zero only for the static policy). It is the single
// name→policy mapping point for flat execution: buildFlat and the
// multi-query engine both construct their feedback loops through it, which
// is what keeps a query's K decisions identical across the two runtimes.
func PolicyFactoryFor(p Policy, staticK stream.Time) (pf core.PolicyFactory, initialK stream.Time) {
	switch p {
	case PolicyMaxK:
		return core.MaxKPolicy(), 0
	case PolicyNoK:
		return core.NoKPolicy(), 0
	case PolicyStatic:
		return core.StaticPolicy(staticK), staticK
	default:
		return core.ModelPolicy(), 0
	}
}

// buildFlat maps the (possibly sharded) flat shape onto the core pipeline.
// With Remote addresses the shard runtime is replaced by a networked
// driver session (internal/net): same router, same merge order, workers in
// other processes.
func buildFlat(g *Graph, cfg ExecConfig, shards int) Executor {
	var newRT func(shard.Config) core.Runtime
	if len(cfg.Remote) > 0 {
		if shards > 0 && shards != len(cfg.Remote) {
			panic(fmt.Sprintf("plan: the graph shards %d ways but %d remote worker addresses were given — one address per shard", shards, len(cfg.Remote)))
		}
		if _, err := g.Cond.Wire(); err != nil {
			panic(fmt.Sprintf("plan: cannot deploy on remote workers: %v", err))
		}
		sig := Signature(g, cfg)
		addrs := append([]string(nil), cfg.Remote...)
		newRT = func(scfg shard.Config) core.Runtime {
			return net.NewSession(addrs, sig, scfg)
		}
	}
	pf, initialK := PolicyFactoryFor(cfg.Policy, cfg.StaticK)
	p := core.New(core.Config{
		InitialK:   initialK,
		Windows:    g.Windows,
		Cond:       g.Cond,
		Adapt:      cfg.Adapt,
		Policy:     pf,
		Emit:       cfg.Emit,
		EmitCounts: cfg.EmitCounts,
		OnAdapt:    cfg.OnAdapt,
		Batch:      cfg.Batch,
		Sharding:   core.Sharding{Shards: shards, BatchSize: cfg.BatchSize, QueueDepth: cfg.QueueDepth},
		Inject:     cfg.Inject,
		NewRuntime: newRT,
	})
	return (*flatExec)(p)
}

// flatExec adapts *core.Pipeline to the Executor interface.
type flatExec core.Pipeline

func (e *flatExec) p() *core.Pipeline        { return (*core.Pipeline)(e) }
func (e *flatExec) Push(t *stream.Tuple)     { e.p().Push(t) }
func (e *flatExec) Finish()                  { e.p().Finish() }
func (e *flatExec) Results() int64           { return e.p().Results() }
func (e *flatExec) CurrentKs() []stream.Time { return []stream.Time{e.p().CurrentK()} }
func (e *flatExec) AvgK() float64            { return e.p().AvgK() }
func (e *flatExec) Adaptations() int64       { return e.p().Adaptations() }
func (e *flatExec) SetEmit(f join.EmitFunc)  { e.p().SetEmit(f) }
func (e *flatExec) Stats() *stats.Manager    { return e.p().Stats() }
func (e *flatExec) BufferedTuples() int      { return e.p().BufferedTuples() }
func (e *flatExec) ShedWorst() bool          { return e.p().ShedWorst() }
func (e *flatExec) RecallEstimate() float64  { return e.p().RecallEstimate() }

// distShape converts the plan nodes into the dist engine's shape
// description. Flat nodes inside trees are not executable (the planner
// never emits them there).
func distShape(n Node) *dist.Shape {
	switch t := n.(type) {
	case Leaf:
		return &dist.Shape{Stream: t.Stream}
	case Stage:
		return &dist.Shape{Left: distShape(t.Left), Right: distShape(t.Right)}
	case Shard:
		sh := distShape(t.Child)
		sh.Shards = t.N
		return sh
	default:
		panic(fmt.Sprintf("plan: node %T is not executable inside a tree shape", n))
	}
}

// buildTree maps a tree shape onto the dist plan-tree engine.
func buildTree(g *Graph, cfg ExecConfig) Executor {
	shape := distShape(g.Root)
	e := &treeExec{emit: cfg.Emit, counts: cfg.EmitCounts, onAdapt: cfg.OnAdapt}
	sink := func(p dist.Partial) {
		if e.emit != nil {
			e.emit(stream.NewResult(p.Parts))
		}
		if e.counts != nil {
			e.counts(p.TS, 1)
		}
	}
	if cfg.Policy == PolicyStatic {
		e.t = dist.NewPlanTree(g.Cond, g.Windows, shape, cfg.StaticK, sink)
		e.t.SetInjector(cfg.Inject)
		e.t.SetBatch(cfg.Batch)
		e.staticK = cfg.StaticK
		return e
	}
	var pf feedback.PolicyFactory
	switch cfg.Policy {
	case PolicyMaxK:
		pf = feedback.MaxKPolicy()
	case PolicyNoK:
		pf = feedback.NoKPolicy()
	default:
		pf = feedback.ModelPolicy()
	}
	acfg := dist.AdaptiveConfig{
		Adapt:    cfg.Adapt,
		PerStage: true, // plan trees decide one K per stage by construction
		Policy:   pf,
	}
	if cfg.OnAdapt != nil {
		acfg.OnDecide = e.onDecide
	}
	e.at = dist.NewAdaptivePlanTree(g.Cond, g.Windows, shape, acfg, sink)
	e.at.SetInjector(cfg.Inject)
	e.at.Tree().SetBatch(cfg.Batch)
	return e
}

// treeExec adapts the dist plan-tree engine to the Executor interface.
type treeExec struct {
	t  *dist.PlanTree
	at *dist.AdaptivePlanTree

	emit    join.EmitFunc
	counts  join.CountEmitFunc
	onAdapt func(core.AdaptEvent)
	staticK stream.Time
	prevMax stream.Time
	pushed  bool
}

func (e *treeExec) tree() *dist.PlanTree {
	if e.at != nil {
		return e.at.Tree()
	}
	return e.t
}

func (e *treeExec) Push(t *stream.Tuple) {
	e.pushed = true
	if e.at != nil {
		e.at.Push(t)
		return
	}
	e.t.Push(t)
}

func (e *treeExec) Finish() {
	if e.at != nil {
		e.at.Finish()
		return
	}
	e.t.Finish()
}

func (e *treeExec) Results() int64 { return e.tree().Results() }

func (e *treeExec) CurrentKs() []stream.Time {
	if e.at == nil {
		return []stream.Time{e.staticK}
	}
	return e.at.Loop().Ks()
}

func (e *treeExec) AvgK() float64 {
	if e.at == nil {
		return float64(e.staticK)
	}
	loop := e.at.Loop()
	var max float64
	for i := 0; i < loop.Scopes(); i++ {
		if v := loop.AvgK(i); v > max {
			max = v
		}
	}
	return max
}

func (e *treeExec) Adaptations() int64 {
	if e.at == nil {
		return 0
	}
	return e.at.Loop().Decisions()
}

func (e *treeExec) SetEmit(f join.EmitFunc) {
	if e.pushed {
		panic("plan: SetEmit after the tree run has started — results produced so far were not delivered; install the sink before the first Push")
	}
	e.emit = f
}

func (e *treeExec) Stats() *stats.Manager {
	if e.at == nil {
		return nil
	}
	return e.at.Loop().Stats()
}

// onDecide adapts per-stage decisions to the flat OnAdapt hook: the K
// reported is the largest per-stage K, the latency bound of the deployment.
func (e *treeExec) onDecide(at stream.Time, ks []stream.Time) {
	var max stream.Time
	for _, k := range ks {
		if k > max {
			max = k
		}
	}
	ev := core.AdaptEvent{Now: at, OutT: e.tree().Watermark(), PrevK: e.prevMax, NewK: max}
	e.prevMax = max
	e.onAdapt(ev)
}

// BufferedDelaySum exposes the tree metric for tools; 0 on static runs.
func (e *treeExec) BufferedDelaySum() float64 {
	if e.at == nil {
		return 0
	}
	return e.at.BufferedDelaySum()
}

func (e *treeExec) BufferedTuples() int { return e.tree().BufferedTuples() }

func (e *treeExec) ShedWorst() bool {
	if e.at != nil {
		return e.at.ShedWorst()
	}
	return e.t.ShedWorst()
}

// RecallEstimate reports the loop's run-level estimate; a static tree runs
// no loop and no recall accounting, so it reports 1.
func (e *treeExec) RecallEstimate() float64 {
	if e.at == nil {
		return 1
	}
	return e.at.RecallEstimate()
}

// ---- spine builders (the Sec. V executors qdhj.NewTreeJoin wraps) ----

// SpineShape reports whether the graph is the unsharded left-deep spine in
// natural stream order — the shape the dedicated dist.Tree executors
// accept.
func SpineShape(g *Graph) bool {
	n := g.Root
	for s := g.Cond.M - 1; s >= 1; s-- {
		st, ok := n.(Stage)
		if !ok {
			return false
		}
		r, ok := st.Right.(Leaf)
		if !ok || r.Stream != s {
			return false
		}
		n = st.Left
	}
	l, ok := n.(Leaf)
	return ok && l.Stream == 0
}

// BuildSpineStatic compiles an unsharded spine graph into the synchronous
// fixed-K Sec. V tree.
func BuildSpineStatic(g *Graph, k stream.Time, sink func(dist.Partial)) *dist.Tree {
	mustSpine(g)
	return dist.NewTree(g.Cond, g.Windows, k, sink)
}

// BuildSpineAdaptive compiles an unsharded spine graph into the adaptive
// Sec. V tree.
func BuildSpineAdaptive(g *Graph, cfg dist.AdaptiveConfig, sink func(dist.Partial)) *dist.AdaptiveTree {
	mustSpine(g)
	return dist.NewAdaptiveTree(g.Cond, g.Windows, cfg, sink)
}

// BuildSpinePipelined compiles an unsharded spine graph into the pipelined
// Sec. V tree (fixed-K).
func BuildSpinePipelined(g *Graph, k stream.Time, buffer int) *dist.Pipelined {
	mustSpine(g)
	return dist.NewPipelined(g.Cond, g.Windows, k, buffer)
}

// BuildSpinePipelinedAdaptive compiles an unsharded spine graph into the
// adaptive pipelined Sec. V tree.
func BuildSpinePipelinedAdaptive(g *Graph, cfg dist.AdaptiveConfig, buffer int) *dist.AdaptivePipelined {
	mustSpine(g)
	return dist.NewAdaptivePipelined(g.Cond, g.Windows, cfg, buffer)
}

func mustSpine(g *Graph) {
	if !SpineShape(g) {
		panic("plan: the Sec. V spine executors accept only the unsharded left-deep spine in natural stream order; Build executes general shapes")
	}
}
