// Package leakcheck fails tests that leak goroutines. Every executor in
// this codebase that starts goroutines (the shard runtime, plan-tree stage
// workers, the pipelined spine, the async stats feeder) owns their
// lifetime: Finish/Close/Abandon must leave none behind — including after
// contained worker failures, where drain-mode workers still have to exit
// when their channels close. Tests register Check(t) before starting any
// concurrent join.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// Check snapshots the goroutine count and registers a cleanup that fails
// the test if, after a grace period, more goroutines are running than
// before the test body. The grace period absorbs goroutines that are
// mid-exit (worker loops between their last message and returning).
func Check(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("leakcheck: %d goroutines before the test, %d after; stacks:\n%s",
			before, runtime.NumGoroutine(), buf[:n])
	})
}
