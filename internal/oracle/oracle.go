// Package oracle computes the true join results of an MSWJ: the output
// produced when the input streams are totally in order and synchronized with
// each other (Sec. II-B). The experiments measure recall γ(P) against this
// ground truth, exactly as the paper evaluates queries on a sorted version
// of each dataset.
//
// The oracle counts results per timestamp without materializing them, so
// even high-selectivity equi workloads (hundreds of millions of logical
// results) index in milliseconds.
package oracle

import (
	"sort"

	"repro/internal/join"
	"repro/internal/stream"
)

// Index is a queryable per-timestamp count of true results.
type Index struct {
	ts  []stream.Time // sorted ascending, unique
	cum []int64       // cum[i] = total results with timestamp ≤ ts[i]
}

// TrueResults evaluates the join over the globally timestamp-sorted version
// of the input batch and returns the index of true result counts.
func TrueResults(cond *join.Condition, windows []stream.Time, input stream.Batch) *Index {
	var ts []stream.Time
	var counts []int64
	op := join.New(cond, windows, join.WithCountEmit(func(t stream.Time, n int64) {
		if len(ts) > 0 && ts[len(ts)-1] == t {
			counts[len(counts)-1] += n
			return
		}
		ts = append(ts, t)
		counts = append(counts, n)
	}))
	for _, e := range input.SortedByTS() {
		op.Process(e)
	}
	return build(ts, counts)
}

// FromTimestamps builds an index from individual result timestamps; used by
// tests and when the truth was computed elsewhere.
func FromTimestamps(raw []stream.Time) *Index {
	sorted := append([]stream.Time(nil), raw...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var ts []stream.Time
	var counts []int64
	for _, t := range sorted {
		if len(ts) > 0 && ts[len(ts)-1] == t {
			counts[len(counts)-1]++
			continue
		}
		ts = append(ts, t)
		counts = append(counts, 1)
	}
	return build(ts, counts)
}

// FromCounts builds an index from (timestamp, count) pairs that are already
// in non-decreasing timestamp order.
func FromCounts(ts []stream.Time, counts []int64) *Index {
	return build(append([]stream.Time(nil), ts...), append([]int64(nil), counts...))
}

func build(ts []stream.Time, counts []int64) *Index {
	// Inputs may be unsorted in pathological cases; sort pairs together.
	idx := make([]int, len(ts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return ts[idx[a]] < ts[idx[b]] })
	ix := &Index{}
	var running int64
	for _, i := range idx {
		if n := len(ix.ts); n > 0 && ix.ts[n-1] == ts[i] {
			running += counts[i]
			ix.cum[n-1] = running
			continue
		}
		running += counts[i]
		ix.ts = append(ix.ts, ts[i])
		ix.cum = append(ix.cum, running)
	}
	return ix
}

// Total returns the total number of true results.
func (ix *Index) Total() int64 {
	if len(ix.cum) == 0 {
		return 0
	}
	return ix.cum[len(ix.cum)-1]
}

// CountRange returns the number of true results with timestamp in (lo, hi].
func (ix *Index) CountRange(lo, hi stream.Time) int64 {
	return ix.cumAt(hi) - ix.cumAt(lo)
}

// cumAt returns the number of results with timestamp ≤ t.
func (ix *Index) cumAt(t stream.Time) int64 {
	i := sort.Search(len(ix.ts), func(i int) bool { return ix.ts[i] > t })
	if i == 0 {
		return 0
	}
	return ix.cum[i-1]
}

// Timestamps exposes the distinct result timestamps (read-only).
func (ix *Index) Timestamps() []stream.Time { return ix.ts }
