package oracle

import (
	"testing"

	"repro/internal/join"
	"repro/internal/stream"
)

func tup(src int, ts stream.Time, seq uint64, key float64) *stream.Tuple {
	return &stream.Tuple{TS: ts, Seq: seq, Src: src, Attrs: []float64{key}}
}

func TestTrueResultsSortsInput(t *testing.T) {
	cond := join.Cross(2).Equi(0, 0, 1, 0)
	// Disordered arrival: the C4/c3 pair of Fig. 1 must be found by the
	// oracle even though a live run would miss it.
	in := stream.Batch{
		tup(1, 3, 0, 3), // c3
		tup(0, 6, 1, 2), // B6
		tup(0, 4, 2, 3), // C4 late
	}
	ix := TrueResults(cond, []stream.Time{2, 2}, in)
	if ix.Total() != 1 {
		t.Fatalf("true results = %d, want 1", ix.Total())
	}
	if ix.CountRange(3, 4) != 1 {
		t.Fatal("result timestamp must be 4 (max deriving ts)")
	}
}

func TestCountRangeSemantics(t *testing.T) {
	ix := FromTimestamps([]stream.Time{5, 10, 10, 20})
	if got := ix.CountRange(0, 30); got != 4 {
		t.Fatalf("full range = %d", got)
	}
	// Half-open (lo, hi]: lo excluded, hi included.
	if got := ix.CountRange(5, 10); got != 2 {
		t.Fatalf("(5,10] = %d, want 2", got)
	}
	if got := ix.CountRange(4, 5); got != 1 {
		t.Fatalf("(4,5] = %d, want 1", got)
	}
	if got := ix.CountRange(20, 100); got != 0 {
		t.Fatalf("(20,100] = %d, want 0", got)
	}
}

func TestFromTimestampsSorts(t *testing.T) {
	ix := FromTimestamps([]stream.Time{9, 1, 5})
	ts := ix.Timestamps()
	if ts[0] != 1 || ts[1] != 5 || ts[2] != 9 {
		t.Fatalf("timestamps not sorted: %v", ts)
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := FromTimestamps(nil)
	if ix.Total() != 0 || ix.CountRange(-100, 100) != 0 {
		t.Fatal("empty index must count zero")
	}
}

// TestOracleMatchesLiveOnOrderedInput: when the arrival order is already the
// timestamp order, a live operator run and the oracle agree exactly.
func TestOracleMatchesLiveOnOrderedInput(t *testing.T) {
	cond := join.Cross(2).Equi(0, 0, 1, 0)
	var in stream.Batch
	for i := 0; i < 200; i++ {
		in = append(in, tup(i%2, stream.Time(i), uint64(i), float64(i%5)))
	}
	ix := TrueResults(cond, []stream.Time{10, 10}, in)

	var live int64
	op := join.New(cond, []stream.Time{10, 10}, join.WithEmit(func(stream.Result) { live++ }))
	for _, e := range in {
		op.Process(e)
	}
	if live != ix.Total() {
		t.Fatalf("live %d vs oracle %d", live, ix.Total())
	}
}
