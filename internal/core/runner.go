package core

import (
	"sync"

	"repro/internal/stream"
)

// Runner drives a Pipeline from an input channel on a dedicated goroutine,
// decoupling ingest (network readers, file parsers) from join processing.
// The pipeline itself stays single-threaded — its operators share mutable
// window state by design, mirroring the paper's per-operator threading where
// only the Buffer-Size Manager overlaps with join processing — so Runner
// provides pipelining between producer and processor rather than intra-
// operator parallelism (internal/dist provides the latter).
type Runner struct {
	p    *Pipeline
	in   chan *stream.Tuple
	done chan struct{}
	once sync.Once

	// onResult, if set, receives materialized results from the pipeline
	// goroutine.
	onResult func(stream.Result)
}

// RunnerOption customizes a Runner.
type RunnerOption func(*Runner)

// WithRunnerResults registers a result callback invoked on the runner
// goroutine.
func WithRunnerResults(f func(stream.Result)) RunnerOption {
	return func(r *Runner) { r.onResult = f }
}

// NewRunner wraps a pipeline built from cfg. The returned runner owns the
// pipeline; do not Push to it directly.
func NewRunner(cfg Config, buffer int, opts ...RunnerOption) *Runner {
	if buffer <= 0 {
		buffer = 1024
	}
	r := &Runner{
		in:   make(chan *stream.Tuple, buffer),
		done: make(chan struct{}),
	}
	for _, o := range opts {
		o(r)
	}
	if r.onResult != nil {
		prev := cfg.Emit
		cfg.Emit = func(res stream.Result) {
			if prev != nil {
				prev(res)
			}
			r.onResult(res)
		}
	}
	r.p = New(cfg)
	go func() {
		defer close(r.done)
		for t := range r.in {
			r.p.Push(t)
		}
		r.p.Finish()
	}()
	return r
}

// Push enqueues one arrival; it blocks when the runner is saturated
// (backpressure). Safe for a single producer goroutine.
func (r *Runner) Push(t *stream.Tuple) { r.in <- t }

// Close signals end of input. Idempotent.
func (r *Runner) Close() {
	r.once.Do(func() { close(r.in) })
}

// Wait blocks until the pipeline has drained after Close.
func (r *Runner) Wait() { <-r.done }

// Pipeline returns the underlying pipeline for inspection after Wait; using
// it concurrently with an active runner races with the runner goroutine.
func (r *Runner) Pipeline() *Pipeline { return r.p }
