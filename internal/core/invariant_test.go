package core

import (
	"math/rand"
	"repro/internal/leakcheck"
	"testing"
	"testing/quick"

	"repro/internal/oracle"
	"repro/internal/stream"
)

// TestProducedSubsetOfTruthProperty: under any buffer policy and any
// disorder pattern, the pipeline's per-timestamp result counts never exceed
// the oracle's — the framework can lose results, never fabricate them.
func TestProducedSubsetOfTruthProperty(t *testing.T) {
	leakcheck.Check(t)
	f := func(seed int64, kRaw uint16, policyRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		in := mkWorkload(800+rng.Intn(800), stream.Time(rng.Intn(300)), seed)
		truth := oracle.TrueResults(equi2(), []stream.Time{500, 500}, in)

		var pol PolicyFactory
		switch policyRaw % 4 {
		case 0:
			pol = NoKPolicy()
		case 1:
			pol = MaxKPolicy()
		case 2:
			pol = StaticPolicy(stream.Time(kRaw % 400))
		default:
			pol = ModelPolicy()
		}

		type tc struct {
			ts stream.Time
			n  int64
		}
		var produced []tc
		cfg := baseCfg(pol)
		cfg.EmitCounts = func(ts stream.Time, n int64) {
			produced = append(produced, tc{ts, n})
		}
		p := New(cfg)
		p.Run(in.Clone())

		// Aggregate per timestamp and compare against truth point counts.
		perTS := map[stream.Time]int64{}
		for _, c := range produced {
			perTS[c.ts] += c.n
		}
		for ts, n := range perTS {
			if n > truth.CountRange(ts-1, ts) {
				return false
			}
		}
		return p.Results() <= truth.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestMonotoneKMoreResults: larger static buffers can only help — the
// produced result count is non-decreasing in K on a fixed workload.
func TestMonotoneKMoreResults(t *testing.T) {
	leakcheck.Check(t)
	in := mkWorkload(2500, 200, 99)
	var prev int64 = -1
	for _, k := range []stream.Time{0, 50, 100, 200, 400} {
		p := New(baseCfg(StaticPolicy(k)))
		// Static policies need the initial K too, otherwise the first L is
		// unbuffered for every run equally — still monotone, but set it for
		// sharpness.
		p.curK = k
		for _, b := range p.ks {
			b.SetK(k)
		}
		p.Run(in.Clone())
		if p.Results() < prev {
			t.Fatalf("K=%d produced %d < previous %d", k, p.Results(), prev)
		}
		prev = p.Results()
	}
}
