package core

import (
	"repro/internal/leakcheck"
	"testing"

	"repro/internal/adapt"
	"repro/internal/join"
	"repro/internal/stream"
)

func TestEmptyInputFinish(t *testing.T) {
	leakcheck.Check(t)
	p := New(baseCfg(ModelPolicy()))
	p.Finish() // must not panic or deadlock
	if p.Results() != 0 || p.Adaptations() != 0 {
		t.Fatal("empty run must be inert")
	}
}

func TestSingleTuple(t *testing.T) {
	leakcheck.Check(t)
	p := New(baseCfg(ModelPolicy()))
	p.Push(&stream.Tuple{TS: 100, Src: 0, Attrs: []float64{1}})
	p.Finish()
	if p.Results() != 0 {
		t.Fatal("single tuple cannot join")
	}
	if p.Operator().Processed() != 1 {
		t.Fatal("tuple lost")
	}
}

func TestAllIdenticalTimestamps(t *testing.T) {
	leakcheck.Check(t)
	p := New(baseCfg(StaticPolicy(10)))
	for i := 0; i < 100; i++ {
		p.Push(&stream.Tuple{TS: 500, Seq: uint64(i), Src: i % 2, Attrs: []float64{1}})
	}
	p.Finish()
	// 50 × 50 matching pairs, all within any window.
	if p.Results() != 2500 {
		t.Fatalf("results = %d, want 2500", p.Results())
	}
}

func TestOneSilentStream(t *testing.T) {
	leakcheck.Check(t)
	// Stream 1 never produces; the Synchronizer must hold stream 0 until
	// Finish, then flush. No results, no loss, no deadlock.
	p := New(baseCfg(StaticPolicy(0)))
	for i := 0; i < 500; i++ {
		p.Push(&stream.Tuple{TS: stream.Time(i), Seq: uint64(i), Src: 0, Attrs: []float64{1}})
	}
	p.Finish()
	if p.Operator().Processed() != 500 {
		t.Fatalf("operator saw %d of 500", p.Operator().Processed())
	}
}

func TestExtremeDelaysBeyondWindows(t *testing.T) {
	leakcheck.Check(t)
	// Tuples arriving later than their window extent are dropped from
	// window insertion entirely (Alg. 2 line 9 guard) and must not corrupt
	// state.
	cfg := baseCfg(NoKPolicy())
	p := New(cfg)
	p.Push(&stream.Tuple{TS: 100_000, Seq: 0, Src: 0, Attrs: []float64{1}})
	for i := 0; i < 50; i++ {
		p.Push(&stream.Tuple{TS: stream.Time(i), Seq: uint64(1 + i), Src: 1, Attrs: []float64{1}})
	}
	p.Finish()
	if p.Operator().WindowLen(1) != 0 {
		t.Fatalf("ancient tuples must not linger, window holds %d", p.Operator().WindowLen(1))
	}
}

func TestGapLargerThanP(t *testing.T) {
	leakcheck.Check(t)
	// A timestamp gap far larger than P must fast-forward to the last
	// crossed adaptation boundary in a single collapsed decision — NOT one
	// decision per boundary, which would re-decide on an empty profiler and
	// pollute the monitor ring with zero estimates (see Pipeline.Push).
	var events []AdaptEvent
	cfg := baseCfg(ModelPolicy())
	cfg.OnAdapt = func(ev AdaptEvent) { events = append(events, ev) }
	p := New(cfg)
	p.Push(&stream.Tuple{TS: 0, Seq: 0, Src: 0, Attrs: []float64{1}})
	p.Push(&stream.Tuple{TS: 60_000, Seq: 1, Src: 1, Attrs: []float64{1}})
	p.Finish()
	if len(events) != 1 {
		t.Fatalf("expected 1 collapsed catch-up adaptation, got %d", len(events))
	}
	if events[0].Now != 60_000 {
		t.Fatalf("decision anchored at %v, want the last crossed boundary 60s", events[0].Now)
	}
}

func TestZeroWindowPanics(t *testing.T) {
	leakcheck.Check(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero window")
		}
	}()
	New(Config{
		Windows: []stream.Time{0, 0},
		Cond:    equi2(),
		Adapt:   adapt.Config{},
	})
}

func TestFourWayPipeline(t *testing.T) {
	leakcheck.Check(t)
	cond := join.Star(4, []int{0, 1, 2}, []int{0, 0, 0})
	cfg := Config{
		Windows: []stream.Time{300, 300, 300, 300},
		Cond:    cond,
		Adapt:   adapt.Config{Gamma: 0.9, P: 5000, L: 1000},
		Policy:  ModelPolicy(),
	}
	p := New(cfg)
	var seq uint64
	for ts := stream.Time(100); ts < 20_000; ts += 10 {
		p.Push(&stream.Tuple{TS: ts, Seq: seq, Src: 0, Attrs: []float64{1, 2, 3}})
		seq++
		p.Push(&stream.Tuple{TS: ts, Seq: seq, Src: 1, Attrs: []float64{1}})
		seq++
		p.Push(&stream.Tuple{TS: ts, Seq: seq, Src: 2, Attrs: []float64{2}})
		seq++
		p.Push(&stream.Tuple{TS: ts, Seq: seq, Src: 3, Attrs: []float64{3}})
		seq++
	}
	p.Finish()
	if p.Results() == 0 {
		t.Fatal("4-way star produced nothing")
	}
}
