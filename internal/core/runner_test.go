package core

import (
	"repro/internal/leakcheck"
	"testing"

	"repro/internal/stream"
)

func TestRunnerMatchesSynchronous(t *testing.T) {
	leakcheck.Check(t)
	in := mkWorkload(2000, 100, 31)

	sync := New(baseCfg(StaticPolicy(50)))
	sync.Run(in.Clone())

	var results int64
	r := NewRunner(baseCfg(StaticPolicy(50)), 64,
		WithRunnerResults(func(stream.Result) { results++ }))
	for _, e := range in.Clone() {
		r.Push(e)
	}
	r.Close()
	r.Wait()

	if r.Pipeline().Results() != sync.Results() {
		t.Fatalf("runner %d vs synchronous %d results", r.Pipeline().Results(), sync.Results())
	}
	if results != sync.Results() {
		t.Fatalf("result callback saw %d, want %d", results, sync.Results())
	}
}

func TestRunnerCloseIdempotent(t *testing.T) {
	leakcheck.Check(t)
	r := NewRunner(baseCfg(NoKPolicy()), 8)
	r.Close()
	r.Close() // must not panic
	r.Wait()
}

func TestRunnerBackpressure(t *testing.T) {
	leakcheck.Check(t)
	// A tiny buffer forces the producer to block on the consumer; the run
	// must still complete and conserve tuples.
	r := NewRunner(baseCfg(StaticPolicy(10)), 1)
	in := mkWorkload(500, 50, 32)
	for _, e := range in {
		r.Push(e)
	}
	r.Close()
	r.Wait()
	if r.Pipeline().Pushed() != int64(len(in)) {
		t.Fatalf("pushed %d of %d", r.Pipeline().Pushed(), len(in))
	}
}
