package core

import (
	"fmt"
	"math/rand"
	"repro/internal/leakcheck"
	"testing"

	"repro/internal/adapt"
	"repro/internal/join"
	"repro/internal/stream"
)

// arrivals builds a raw multi-stream arrival sequence with real disorder,
// as the pipeline sees it (before K-slack).
func arrivals(rng *rand.Rand, m, n int) []*stream.Tuple {
	var out []*stream.Tuple
	ts := stream.Time(2000)
	for i := 0; i < n; i++ {
		ts += stream.Time(rng.Intn(12))
		t := ts
		if rng.Intn(4) == 0 {
			t -= stream.Time(rng.Intn(1500))
			if t < 0 {
				t = 0
			}
		}
		out = append(out, &stream.Tuple{
			TS: t, Seq: uint64(i), Src: rng.Intn(m),
			Attrs: []float64{float64(rng.Intn(10)), float64(rng.Intn(30)) / 3},
		})
	}
	return out
}

func clone(in []*stream.Tuple) []*stream.Tuple {
	out := make([]*stream.Tuple, len(in))
	for i, e := range in {
		cp := *e
		out[i] = &cp
	}
	return out
}

// runCfg pushes the workload through a pipeline and returns the summary
// numbers plus the emitted result-signature multiset.
func runCfg(cfg Config, in []*stream.Tuple) (results int64, avgK float64, adapts int64, multiset map[string]int) {
	multiset = map[string]int{}
	cfg.Emit = func(r stream.Result) {
		s := ""
		for _, t := range r.Tuples {
			s += fmt.Sprintf("%d:%d,", t.Src, t.Seq)
		}
		multiset[s]++
	}
	p := New(cfg)
	for _, e := range clone(in) {
		p.Push(e)
	}
	p.Finish()
	return p.Results(), p.AvgK(), p.Adaptations(), multiset
}

// TestPipelineShardedDifferential: for every policy and condition shape,
// the sharded pipeline must reproduce the single-threaded pipeline's
// results (multiset), adaptation trajectory (AvgK, steps) and counters
// bit-for-bit, at shard counts 1, 2, 4, 8 — the quality-driven feedback
// loop makes one global Same-K decision regardless of sharding.
func TestPipelineShardedDifferential(t *testing.T) {
	leakcheck.Check(t)
	conds := map[string]func() *join.Condition{
		"equi": func() *join.Condition { return join.EquiChain(2, 0) },
		"band": func() *join.Condition { return join.Cross(2).Band(0, 1, 1, 1, 1) },
		"generic": func() *join.Condition {
			return join.Cross(2).Where([]int{0, 1}, func(a []*stream.Tuple) bool {
				return a[0].Attr(0) == a[1].Attr(0)
			})
		},
	}
	policies := map[string]func(Config) Config{
		"model": func(c Config) Config {
			c.Adapt = adapt.Config{Gamma: 0.9, P: 10 * stream.Second, L: stream.Second}
			return c
		},
		"static": func(c Config) Config {
			c.Policy = StaticPolicy(400)
			c.InitialK = 400
			return c
		},
		"maxk": func(c Config) Config { c.Policy = MaxKPolicy(); return c },
	}
	rng := rand.New(rand.NewSource(17))
	in := arrivals(rng, 2, 6000)
	w := []stream.Time{stream.Second, stream.Second}
	for cname, mk := range conds {
		for pname, pc := range policies {
			base := pc(Config{Windows: w, Cond: mk()})
			wantRes, wantK, wantAd, wantSet := runCfg(base, in)
			if wantRes == 0 {
				t.Fatalf("%s/%s: degenerate workload, no results", cname, pname)
			}
			for _, shards := range []int{1, 2, 4, 8} {
				cfg := pc(Config{Windows: w, Cond: mk()})
				cfg.Sharding = Sharding{Shards: shards, BatchSize: 32}
				gotRes, gotK, gotAd, gotSet := runCfg(cfg, in)
				if gotRes != wantRes || gotK != wantK || gotAd != wantAd {
					t.Errorf("%s/%s shards=%d: results %d vs %d, avgK %v vs %v, adapts %d vs %d",
						cname, pname, shards, gotRes, wantRes, gotK, wantK, gotAd, wantAd)
					continue
				}
				if len(gotSet) != len(wantSet) {
					t.Errorf("%s/%s shards=%d: multiset sizes %d vs %d", cname, pname, shards, len(gotSet), len(wantSet))
					continue
				}
				for k, v := range wantSet {
					if gotSet[k] != v {
						t.Errorf("%s/%s shards=%d: multiset diverges at %s (%d vs %d)",
							cname, pname, shards, k, gotSet[k], v)
						break
					}
				}
			}
		}
	}
}

// TestPipelineShardedCounts: the count sink and Results() agree on the
// sharded path, and sharding does not disturb Pushed().
func TestPipelineShardedCounts(t *testing.T) {
	leakcheck.Check(t)
	rng := rand.New(rand.NewSource(3))
	in := arrivals(rng, 3, 3000)
	var counted int64
	cfg := Config{
		Windows:    []stream.Time{stream.Second, stream.Second, stream.Second},
		Cond:       join.EquiChain(3, 0),
		Policy:     StaticPolicy(300),
		InitialK:   300,
		Sharding:   Sharding{Shards: 4},
		EmitCounts: func(_ stream.Time, n int64) { counted += n },
	}
	p := New(cfg)
	for _, e := range in {
		p.Push(e)
	}
	p.Finish()
	if counted != p.Results() {
		t.Fatalf("count sink saw %d, Results() = %d", counted, p.Results())
	}
	if p.Pushed() != int64(len(in)) {
		t.Fatalf("Pushed() = %d, want %d", p.Pushed(), len(in))
	}
	if p.Results() == 0 {
		t.Fatal("degenerate: no results")
	}
}

// TestPushAfterFinishPanics covers the restart footgun on both paths.
func TestPushAfterFinishPanics(t *testing.T) {
	leakcheck.Check(t)
	for _, shards := range []int{0, 4} {
		cfg := Config{
			Windows:  []stream.Time{100, 100},
			Cond:     join.EquiChain(2, 0),
			Sharding: Sharding{Shards: shards},
		}
		p := New(cfg)
		p.Push(&stream.Tuple{TS: 1, Attrs: []float64{1}})
		p.Finish()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("shards=%d: Push after Finish must panic", shards)
				}
			}()
			p.Push(&stream.Tuple{TS: 2, Attrs: []float64{1}})
		}()
	}
}

// TestDoubleFinishPanics: Finish is a terminal transition, not idempotent
// cleanup — a second call indicates a lifecycle bug upstream.
func TestDoubleFinishPanics(t *testing.T) {
	leakcheck.Check(t)
	for _, shards := range []int{0, 2} {
		p := New(Config{
			Windows:  []stream.Time{100, 100},
			Cond:     join.EquiChain(2, 0),
			Sharding: Sharding{Shards: shards},
		})
		p.Finish()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("shards=%d: double Finish must panic", shards)
				}
			}()
			p.Finish()
		}()
	}
}

// TestShardedSetEmitAfterStartPanics: installing a sink after the first
// Push would lose the results already counted on the fast path.
func TestShardedSetEmitAfterStartPanics(t *testing.T) {
	leakcheck.Check(t)
	p := New(Config{
		Windows:  []stream.Time{100, 100},
		Cond:     join.EquiChain(2, 0),
		Sharding: Sharding{Shards: 2},
	})
	defer p.Finish()
	p.Push(&stream.Tuple{TS: 1, Attrs: []float64{1}})
	defer func() {
		if recover() == nil {
			t.Fatal("SetEmit after start must panic on the sharded path")
		}
	}()
	p.SetEmit(func(stream.Result) {})
}
