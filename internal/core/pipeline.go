// Package core wires the quality-driven disorder handling framework of
// Fig. 2: one K-slack component per input stream, a Synchronizer merging
// their outputs, the MSWJ operator, and the feedback loop — extracted into
// internal/feedback — that re-decides the common buffer size K every L time
// units. The pipeline is a thin client of the loop: it feeds arrivals,
// productivity records and result counts in, and applies the loop's single
// global Same-K decision to its K-slack buffers at every interval boundary.
//
// The pipeline is push-based and driven entirely by logical time (tuple
// timestamps), so runs are deterministic and replay far faster than real
// time. A channel-based concurrent runner is provided in runner.go for
// applications that want the pipeline off their ingest goroutine.
package core

import (
	"repro/internal/adapt"
	"repro/internal/fault"
	"repro/internal/feedback"
	"repro/internal/join"
	"repro/internal/kslack"
	"repro/internal/monitor"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/syncer"
)

// Sharding configures the parallel execution path: the join operator runs
// as Shards key-partitioned workers (internal/shard) while disorder
// handling and the feedback loop stay global, so the sharded run produces
// exactly the single-shard result multiset. Shards ≤ 1 selects the
// classic single-threaded path.
type Sharding struct {
	// Shards is the number of partition workers.
	Shards int
	// BatchSize and QueueDepth tune the inter-thread queues (0 = default).
	BatchSize  int
	QueueDepth int
}

// Runtime is the sharded execution seam: what the pipeline needs from a
// partition-parallel join runtime. internal/shard.Runtime implements it
// in-process; internal/net.Session implements it over TCP worker
// processes. Both embed the same router, so the pipeline cannot observe
// which one it is driving.
type Runtime interface {
	// Route accepts one synchronized tuple (single-goroutine).
	Route(e *stream.Tuple)
	// Watermark returns the global synchronized-stream watermark onT.
	Watermark() stream.Time
	// FlushInterval quiesces the workers and merges one interval in
	// deterministic (arrival, shard) order; a worker failure panics before
	// anything is emitted.
	FlushInterval(visit func(ts, delay stream.Time, nCross, nOn int64), emit func(stream.Result))
	// EnableMaterialize installs result buffers before the first Route.
	EnableMaterialize()
	// State and Restore capture/load the runtime's serializable snapshot.
	State(tt *fault.TupleTable) shard.State
	Restore(st shard.State, ta *fault.TupleArena)
	// Close stops the workers after a final FlushInterval.
	Close()
}

// KChanger is optionally implemented by runtimes that must observe the
// feedback loop's buffer-size decisions — the networked runtime ships them
// to its workers as in-band control events. The in-process runtime has no
// use for them (K-slack lives upstream of the router), so the pipeline
// type-asserts rather than widening Runtime.
type KChanger interface {
	KChange(ks []stream.Time)
}

// PolicyFactory builds the buffer-size policy once the feedback loop has
// created the shared statistics components. (This is the historical core
// signature; internal/feedback defines the scope-aware generalization, and
// the pipeline adapts between the two.)
type PolicyFactory func(st *stats.Manager, mon *monitor.Monitor, cfg adapt.Config, windows []stream.Time) adapt.Policy

// ModelPolicy returns the paper's model-based quality-driven policy.
func ModelPolicy() PolicyFactory {
	return func(st *stats.Manager, mon *monitor.Monitor, cfg adapt.Config, windows []stream.Time) adapt.Policy {
		return adapt.NewModel(cfg, windows, st, mon)
	}
}

// NoKPolicy returns the No-K-slack baseline.
func NoKPolicy() PolicyFactory {
	return func(*stats.Manager, *monitor.Monitor, adapt.Config, []stream.Time) adapt.Policy {
		return adapt.NoK{}
	}
}

// MaxKPolicy returns the Max-K-slack baseline.
func MaxKPolicy() PolicyFactory {
	return func(st *stats.Manager, _ *monitor.Monitor, _ adapt.Config, _ []stream.Time) adapt.Policy {
		return adapt.MaxK{Stats: st}
	}
}

// StaticPolicy returns a fixed-K policy.
func StaticPolicy(k stream.Time) PolicyFactory {
	return func(*stats.Manager, *monitor.Monitor, adapt.Config, []stream.Time) adapt.Policy {
		return adapt.Static{K: k}
	}
}

// FeedbackPolicy adapts the historical core PolicyFactory signature to the
// scope-aware factory internal/feedback expects, reading the loop's raw
// Statistics Manager and Monitor out of the environment. Every executor that
// must reproduce the classic pipeline's K decisions bit-for-bit (the pipeline
// itself, internal/multi) builds its loops through this one adapter, so the
// policy always sees the same statistics sources.
func FeedbackPolicy(pf PolicyFactory) feedback.PolicyFactory {
	return func(env feedback.Env) adapt.Policy {
		return pf(env.Stats, env.Monitor, env.Adapt, env.Windows)
	}
}

// AdaptEvent describes one adaptation step; it is delivered to the OnAdapt
// hook right after the new K has been decided and applied.
type AdaptEvent struct {
	Now        stream.Time // logical input time of the step (interval boundary)
	OutT       stream.Time // join operator watermark onT: the output progress
	PrevK      stream.Time // buffer size during the interval that just ended
	NewK       stream.Time // buffer size for the next interval
	GammaPrime float64     // instant requirement used (model policy only)
}

// Config assembles a pipeline.
type Config struct {
	// Windows holds the per-stream window sizes W_i; its length fixes m.
	Windows []stream.Time
	// Cond is the join condition; Cond.M must equal len(Windows).
	Cond *join.Condition
	// Adapt carries Γ, P, L, b, g and the selectivity strategy.
	Adapt adapt.Config
	// Policy selects the buffer-size policy; default is ModelPolicy.
	Policy PolicyFactory
	// StatsOpts customizes the Statistics Manager (fixed history ablation…).
	StatsOpts []stats.Option
	// Emit optionally receives every produced join result. Leaving it nil
	// enables the join operator's counting-only fast path, which matters for
	// high-selectivity equi workloads.
	Emit join.EmitFunc
	// EmitCounts optionally receives per-arrival result counts (always
	// cheap; the Result-Size Monitor uses the same channel internally).
	EmitCounts join.CountEmitFunc
	// OnAdapt optionally observes every adaptation step.
	OnAdapt func(AdaptEvent)
	// InitialK is the buffer size before the first adaptation step.
	InitialK stream.Time
	// Batch sets the columnar release batch size between the Synchronizer
	// and the join operator: synchronized tuples accumulate into a batch of
	// up to this many tuples and are consumed by one ProcessBatch call.
	// Batches are flushed at every adaptation boundary, watermark read,
	// quiescence point, checkpoint and at Finish, so release points are a
	// pure function of the input and results, K trajectories and all
	// counters are bit-for-bit identical to per-tuple execution (≤ 1). On
	// the sharded path the operator-side batching is performed inside the
	// shard workers instead; this knob then has no additional effect.
	Batch int
	// Sharding enables the partition-parallel execution path.
	Sharding Sharding
	// NewRuntime optionally overrides the sharded runtime constructor — the
	// seam through which plan injects the networked worker runtime
	// (internal/net). When set, the runtime path is used even at one shard.
	NewRuntime func(shard.Config) Runtime
	// Inject is the optional fault-injection harness: sharded runs hand it
	// to the shard workers (worker s checks directives for worker s); the
	// single-threaded path checks worker 0's directives at every Push.
	Inject *fault.Injector
}

// Pipeline is the assembled framework.
type Pipeline struct {
	cfg   Config
	m     int
	loop  *feedback.Loop
	ks    []*kslack.Buffer
	sync  *syncer.Synchronizer
	op    *join.Operator // nil on the sharded path
	model *adapt.Model   // non-nil when the policy is the model policy

	// Sharded path (Config.Sharding.Shards > 1 or Config.NewRuntime set):
	// the runtime replaces op and the loop runs its Statistics Manager
	// asynchronously, barriered before every decision.
	rt Runtime

	// Batched release path (Config.Batch > 1, single-threaded): pending
	// synchronizer releases not yet consumed by the operator.
	batch    []*stream.Tuple
	batchCap int

	finished bool
	curK     stream.Time

	results int64
	pushed  int64
}

// New assembles a pipeline from cfg.
func New(cfg Config) *Pipeline {
	if cfg.Cond == nil || len(cfg.Windows) != cfg.Cond.M {
		panic("core: condition arity must match window count")
	}
	if cfg.Policy == nil {
		cfg.Policy = ModelPolicy()
	}
	cfg.Adapt = cfg.Adapt.Normalize()
	m := len(cfg.Windows)

	sharded := cfg.Sharding.Shards > 1 || cfg.NewRuntime != nil

	p := &Pipeline{cfg: cfg, m: m, curK: cfg.InitialK}
	p.loop = feedback.New(feedback.Config{
		Windows:    cfg.Windows,
		Adapt:      cfg.Adapt,
		Policy:     FeedbackPolicy(cfg.Policy),
		StatsOpts:  cfg.StatsOpts,
		InitialK:   cfg.InitialK,
		Async:      sharded,
		AsyncBatch: cfg.Sharding.BatchSize,
	})
	p.model = p.loop.Model(0)

	if sharded {
		shards := cfg.Sharding.Shards
		if shards < 1 {
			shards = 1
		}
		scfg := shard.Config{
			N:           shards,
			Cond:        cfg.Cond,
			Windows:     cfg.Windows,
			Materialize: cfg.Emit != nil,
			BatchSize:   cfg.Sharding.BatchSize,
			QueueDepth:  cfg.Sharding.QueueDepth,
			OnOutOfOrder: func(delay stream.Time) {
				p.loop.RecordOutOfOrder(0, delay)
			},
			Inject: cfg.Inject,
		}
		if cfg.NewRuntime != nil {
			p.rt = cfg.NewRuntime(scfg)
		} else {
			p.rt = shard.New(scfg)
		}
		p.sync = syncer.New(m, p.rt.Route)
	} else {
		opts := []join.Option{
			join.WithProcessedHook(p.onProcessed),
			join.WithCountEmit(p.onResultCount),
		}
		if cfg.Emit != nil {
			opts = append(opts, join.WithEmit(cfg.Emit))
		}
		p.op = join.New(cfg.Cond, cfg.Windows, opts...)
		if cfg.Batch > 1 {
			p.batchCap = cfg.Batch
			p.batch = make([]*stream.Tuple, 0, cfg.Batch)
			p.sync = syncer.New(m, p.bufferRelease)
		} else {
			p.sync = syncer.New(m, p.op.Process)
		}
	}
	p.ks = make([]*kslack.Buffer, m)
	for i := range p.ks {
		p.ks[i] = kslack.New(cfg.InitialK, p.sync.Push)
	}
	return p
}

// bufferRelease collects one synchronizer release into the pending batch,
// cutting the batch when it reaches the configured size. Cut points are a
// pure function of the release stream (and of the flush points listed on
// Config.Batch), which is what keeps batched execution bit-for-bit equal to
// per-tuple execution.
func (p *Pipeline) bufferRelease(e *stream.Tuple) {
	p.batch = append(p.batch, e)
	if len(p.batch) >= p.batchCap {
		p.flushBatch()
	}
}

// flushBatch hands the pending batch to the operator. The batch slice is
// reused; processed entries are cleared so the buffer never pins tuples.
func (p *Pipeline) flushBatch() {
	if len(p.batch) == 0 {
		return
	}
	es := p.batch
	p.op.ProcessBatch(es)
	for i := range es {
		es[i] = nil
	}
	p.batch = es[:0]
}

// onResultCount feeds per-arrival result counts to the loop's Result-Size
// Monitor and the caller's optional count sink.
func (p *Pipeline) onResultCount(ts stream.Time, n int64) {
	p.results += n
	p.loop.ObserveResult(ts, n)
	if p.cfg.EmitCounts != nil {
		p.cfg.EmitCounts(ts, n)
	}
}

// onProcessed is the join operator's productivity hook (line 11, Alg. 2).
func (p *Pipeline) onProcessed(e *stream.Tuple, nCross, nOn int64, inOrder bool) {
	if inOrder {
		p.loop.RecordInOrder(0, e.Delay, nCross, nOn)
	} else {
		p.loop.RecordOutOfOrder(0, e.Delay)
	}
}

// Push feeds one raw arrival into the framework and runs any adaptation
// steps whose interval boundaries the arrival crossed. Pushing into a
// finished pipeline panics: the flushed buffers and stopped shard workers
// cannot be restarted, so the tuple would be silently dropped.
func (p *Pipeline) Push(e *stream.Tuple) {
	if p.finished {
		panic("core: Push on a finished pipeline — Finish flushed the buffers and a run cannot be restarted; build a new Pipeline")
	}
	if p.rt == nil {
		// The single-threaded path has no worker goroutines; an injected
		// worker-0 fault fires here, between tuples, which is exactly a
		// checkpoint-consistent crash point (DESIGN.md §10).
		p.cfg.Inject.MaybeDelay(0)
		p.cfg.Inject.MaybePanic(0)
	}
	p.pushed++
	now := p.loop.Observe(e)
	p.ks[e.Src].Push(e)
	if at, ok := p.loop.Boundary(now); ok {
		p.adaptStep(at)
	}
}

// adaptStep runs one Buffer-Size Manager decision at logical time at.
// Result-size accounting (the monitor window and recall measurements) is
// anchored at the join operator's watermark onT rather than the raw input
// time: under a buffer of K time units the output progress lags the input by
// K, and anchoring at the input would misread buffered-but-not-yet-produced
// results as losses.
func (p *Pipeline) adaptStep(at stream.Time) {
	var outT stream.Time
	if p.rt != nil {
		// Quiesce the parallel layer first: statistics catch up, shard
		// queues drain, and the interval’s per-tuple productivity and
		// result streams replay into the profiler/monitor in deterministic
		// arrival order — the same sequence a single-shard operator would
		// have fed them.
		p.loop.Sync()
		outT = p.rt.Watermark()
		p.rt.FlushInterval(p.replayTuple, p.cfg.Emit)
	} else {
		// The decision must see every release up to the boundary: flush the
		// pending batch before reading the watermark, so productivity
		// records and result counts reach the loop exactly as they would
		// have per-tuple.
		p.flushBatch()
		outT = p.op.HighWatermark()
	}
	prevK := p.curK
	newK := p.loop.DecideAt(at, outT)[0]
	for _, k := range p.ks {
		k.SetK(newK)
	}
	p.curK = newK
	if kc, ok := p.rt.(KChanger); ok {
		// Ship the decision to runtimes that track it (networked workers):
		// the barrier above quiesced the ended interval, so this control
		// event lands after its last tuple and before the next interval's
		// first — the in-band ordering the protocol asserts at barriers.
		kc.KChange([]stream.Time{newK})
	}
	if p.cfg.OnAdapt != nil {
		ev := AdaptEvent{Now: at, OutT: outT, PrevK: prevK, NewK: newK}
		if p.model != nil {
			ev.GammaPrime = p.model.LastGammaPrime()
		}
		p.cfg.OnAdapt(ev)
	}
}

// replayTuple is the FlushInterval visitor of the sharded path: it feeds
// one merged in-order tuple’s productivity record and result count into
// the feedback loop, exactly as the single-shard operator hooks would.
func (p *Pipeline) replayTuple(ts, delay stream.Time, nCross, nOn int64) {
	p.loop.RecordInOrder(0, delay, nCross, nOn)
	if nOn > 0 {
		p.onResultCount(ts, nOn)
	}
}

// Finish flushes the K-slack buffers and the Synchronizer at end of input so
// every remaining tuple reaches the join operator; on the sharded path it
// then drains and stops the shard workers. Finishing twice panics, as does
// pushing afterwards: the run cannot be restarted.
func (p *Pipeline) Finish() {
	if p.finished {
		panic("core: Finish on a finished pipeline — the run is already flushed and cannot be restarted; build a new Pipeline")
	}
	p.finished = true
	for _, k := range p.ks {
		k.Flush()
	}
	for i := 0; i < p.m; i++ {
		p.sync.Close(i)
	}
	p.flushBatch()
	if p.rt != nil {
		p.loop.Close()
		p.rt.FlushInterval(p.replayTuple, p.cfg.Emit)
		p.rt.Close()
	}
}

// Results returns the number of produced join results.
func (p *Pipeline) Results() int64 { return p.results }

// Pushed returns the number of raw arrivals consumed.
func (p *Pipeline) Pushed() int64 { return p.pushed }

// CurrentK returns the buffer size currently applied.
func (p *Pipeline) CurrentK() stream.Time { return p.curK }

// Quiesce synchronizes the async statistics feeder and flushes the sharded
// runtime's pending result deliveries without capturing any state; a no-op
// on the single-threaded path, where every delivery is synchronous. A plan
// migration calls this at the end of its replay so that every result the
// replay produced passes the delivery gate while it is still in replay
// mode. The mid-interval flush is trajectory-safe (see Checkpoint).
func (p *Pipeline) Quiesce() {
	if p.rt != nil {
		p.loop.Sync()
		p.rt.FlushInterval(p.replayTuple, p.cfg.Emit)
		return
	}
	p.flushBatch()
}

// ApplyK installs a buffer size directly, outside the adaptation schedule —
// the K-transplant path a plan migration uses after restoring the feedback
// loop. Shrinking releases newly eligible tuples immediately, exactly as an
// adaptation step would.
func (p *Pipeline) ApplyK(k stream.Time) {
	p.curK = k
	for _, b := range p.ks {
		b.SetK(k)
	}
	if kc, ok := p.rt.(KChanger); ok {
		kc.KChange([]stream.Time{k})
	}
}

// AvgK returns the average buffer size over all adaptation intervals, the
// paper's result-latency metric.
func (p *Pipeline) AvgK() float64 { return p.loop.AvgK(0) }

// Adaptations returns the number of adaptation steps performed.
func (p *Pipeline) Adaptations() int64 { return p.loop.Decisions() }

// Stats exposes the Statistics Manager (read-only use by callers).
func (p *Pipeline) Stats() *stats.Manager { return p.loop.Stats() }

// Loop exposes the extracted feedback runtime (read-only use by tests).
func (p *Pipeline) Loop() *feedback.Loop { return p.loop }

// Model returns the model policy when in use, else nil. It exposes the
// Fig. 11 adaptation-time instrumentation.
func (p *Pipeline) Model() *adapt.Model { return p.model }

// Operator exposes the join operator for inspection in tests. It is nil on
// the sharded path, where the operator state lives inside the shard workers.
func (p *Pipeline) Operator() *join.Operator { return p.op }

// SetEmit installs a result callback after construction (used by channel
// runners that wire their sink late). On the sharded path it must run
// before the first Push; the shard runtime enforces this.
func (p *Pipeline) SetEmit(f join.EmitFunc) {
	if p.rt != nil {
		if p.pushed > 0 {
			// The shard runtime guards its own start, but a pushed tuple can
			// still sit in K-slack/Synchronizer without having reached the
			// shards; any Push means count-only results may already exist.
			panic("core: SetEmit after the sharded run has started — results produced so far were count-only and would be lost; install the sink before the first Push")
		}
		p.cfg.Emit = f
		p.rt.EnableMaterialize()
		return
	}
	p.op.SetEmit(f)
}

// Run pushes an entire arrival-ordered batch and finishes the pipeline.
func (p *Pipeline) Run(b stream.Batch) {
	for _, e := range b {
		p.Push(e)
	}
	p.Finish()
}
