package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"repro/internal/leakcheck"
	"testing"

	"repro/internal/adapt"
	"repro/internal/fault"
	"repro/internal/join"
	"repro/internal/stream"
)

// ckptState is the gob envelope used by the round-trip tests: the pipeline
// state plus the tuple table it references.
type ckptState struct {
	Tuples []fault.TupleRec
	State  State
}

// gobRoundTrip forces the state through a real encode/decode cycle so the
// test exercises exactly what a file checkpoint would.
func gobRoundTrip(t *testing.T, st State, tt *fault.TupleTable) (State, *fault.TupleArena) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ckptState{Tuples: tt.Recs, State: st}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var out ckptState
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out.State, fault.NewTupleArena(out.Tuples)
}

// runInterrupted pushes in[:cut], checkpoints through gob, restores into a
// fresh pipeline, pushes the rest, and returns the combined observables.
func runInterrupted(t *testing.T, cfg Config, in []*stream.Tuple, cut int) (int64, float64, int64, map[string]int) {
	t.Helper()
	multiset := map[string]int{}
	emit := func(r stream.Result) {
		s := ""
		for _, e := range r.Tuples {
			s += fmt.Sprintf("%d:%d,", e.Src, e.Seq)
		}
		multiset[s]++
	}
	cfg.Emit = emit

	p := New(cfg)
	work := clone(in)
	for _, e := range work[:cut] {
		p.Push(e)
	}
	tt := fault.NewTupleTable()
	st, ta := gobRoundTrip(t, p.Checkpoint(tt), tt)
	// The first pipeline is abandoned mid-run (simulating a crash after the
	// checkpoint); its shard goroutines still need to stop.
	if p.rt != nil {
		p.rt.Close()
	}
	p.loop.Close()

	q := New(cfg)
	q.RestoreState(st, ta)
	for _, e := range work[cut:] {
		q.Push(e)
	}
	q.Finish()
	return q.Results(), q.AvgK(), q.Adaptations(), multiset
}

// TestCheckpointRestoreDifferential: cutting any run at an arbitrary tuple,
// serializing, and resuming in a fresh pipeline must reproduce the
// uninterrupted run bit-for-bit — result multiset, total results, AvgK and
// adaptation count — on the single-threaded path and at every shard count.
func TestCheckpointRestoreDifferential(t *testing.T) {
	leakcheck.Check(t)
	conds := map[string]func() *join.Condition{
		"equi": func() *join.Condition { return join.EquiChain(2, 0) },
		"band": func() *join.Condition { return join.Cross(2).Band(0, 1, 1, 1, 1) },
		"generic": func() *join.Condition {
			return join.Cross(2).Where([]int{0, 1}, func(a []*stream.Tuple) bool {
				return a[0].Attr(0) == a[1].Attr(0)
			})
		},
	}
	in := arrivals(rand.New(rand.NewSource(7)), 2, 4000)
	ac := adapt.Config{Gamma: 0.9, P: 10 * stream.Second, L: stream.Second}
	for name, mk := range conds {
		for _, shards := range []int{1, 2, 4, 8} {
			for _, cut := range []int{1333, 2000} {
				t.Run(fmt.Sprintf("%s/shards%d/cut%d", name, shards, cut), func(t *testing.T) {
					cfg := Config{
						Windows:  []stream.Time{2 * stream.Second, 2 * stream.Second},
						Cond:     mk(),
						Adapt:    ac,
						Sharding: Sharding{Shards: shards},
					}
					wantRes, wantAvgK, wantAdapts, wantSet := runCfg(Config{
						Windows: cfg.Windows, Cond: mk(), Adapt: ac,
						Sharding: cfg.Sharding,
					}, in)
					gotRes, gotAvgK, gotAdapts, gotSet := runInterrupted(t, Config{
						Windows: cfg.Windows, Cond: mk(), Adapt: ac,
						Sharding: cfg.Sharding,
					}, in, cut)
					if gotRes != wantRes || gotAvgK != wantAvgK || gotAdapts != wantAdapts {
						t.Fatalf("resumed run diverged: results %d/%d avgK %v/%v adapts %d/%d",
							gotRes, wantRes, gotAvgK, wantAvgK, gotAdapts, wantAdapts)
					}
					if len(gotSet) != len(wantSet) {
						t.Fatalf("multiset size %d want %d", len(gotSet), len(wantSet))
					}
					for k, n := range wantSet {
						if gotSet[k] != n {
							t.Fatalf("multiset[%s] = %d want %d", k, gotSet[k], n)
						}
					}
				})
			}
		}
	}
}
