package core

import (
	"repro/internal/fault"
	"repro/internal/feedback"
	"repro/internal/join"
	"repro/internal/kslack"
	"repro/internal/shard"
	"repro/internal/stream"
	"repro/internal/syncer"
)

// State is the serializable snapshot of a Pipeline: the disorder-handling
// spine (K-slack buffers, Synchronizer), the feedback loop, and the join
// state — operator windows on the single-threaded path, router + global
// windows on the sharded path. Exactly one of Op and Shard is non-nil.
type State struct {
	CurK    stream.Time
	Results int64
	Pushed  int64
	Ks      []kslack.State
	Sync    syncer.State
	Loop    feedback.State
	Op      *join.State
	Shard   *shard.State
}

// Checkpoint captures the pipeline's state between two Push calls. On the
// sharded path it quiesces first: the async statistics feeder barriers and
// the current interval flushes mid-stream. A mid-interval flush is
// trajectory-safe — the profiler and monitor accumulate sums, so two
// partial flushes feed them exactly what one flush at the boundary would,
// and the flushed results would have been emitted at the boundary anyway,
// in the same (arrival, shard) order. A failed worker surfaces here as the
// FlushInterval panic, before any state is captured.
func (p *Pipeline) Checkpoint(tt *fault.TupleTable) State {
	if p.finished {
		panic("core: Checkpoint on a finished pipeline")
	}
	if p.rt != nil {
		p.loop.Sync()
		p.rt.FlushInterval(p.replayTuple, p.cfg.Emit)
	}
	// Buffered batch tuples live in neither the Synchronizer nor the
	// operator state — probe them now so the snapshot captures them as
	// processed rather than losing them.
	p.flushBatch()
	st := State{
		CurK:    p.curK,
		Results: p.results,
		Pushed:  p.pushed,
		Sync:    p.sync.State(tt),
		Loop:    p.loop.State(),
	}
	for _, k := range p.ks {
		st.Ks = append(st.Ks, k.State(tt))
	}
	if p.rt != nil {
		s := p.rt.State(tt)
		st.Shard = &s
	} else {
		s := p.op.State(tt)
		st.Op = &s
	}
	return st
}

// RestoreState loads a captured state into a freshly constructed Pipeline
// (same Config). Afterwards the pipeline accepts Push exactly where the
// checkpointed one left off: replaying the same suffix of arrivals yields
// the same result multiset and the same K trajectory (DESIGN.md §10).
func (p *Pipeline) RestoreState(st State, ta *fault.TupleArena) {
	p.curK = st.CurK
	p.results = st.Results
	p.pushed = st.Pushed
	for i := range p.ks {
		p.ks[i].Restore(st.Ks[i], ta)
	}
	p.sync.Restore(st.Sync, ta)
	p.loop.Restore(st.Loop)
	if p.rt != nil {
		p.rt.Restore(*st.Shard, ta)
	} else {
		p.op.RestoreState(*st.Op, ta)
	}
}

// BufferedTuples returns the total number of tuples currently held in the
// K-slack buffers — the bounded-ingest occupancy measure.
func (p *Pipeline) BufferedTuples() int {
	n := 0
	for _, k := range p.ks {
		n += k.Len()
	}
	return n
}

// ShedWorst evicts the buffered tuple with the lowest productivity score
// (profiler Score; ties broken toward the largest delay, then the first
// buffer position — all deterministic, so shed decisions replay identically
// after a restore) and accounts the drop with the feedback loop so the
// recall estimate reflects it. Returns false when nothing is buffered.
func (p *Pipeline) ShedWorst() bool {
	bi, bj := -1, -1
	var worstScore float64
	var worstDelay stream.Time
	for i, k := range p.ks {
		for j, t := range k.Items() {
			s := p.loop.Score(0, t.Delay)
			if bi < 0 || s < worstScore || (s == worstScore && t.Delay > worstDelay) {
				bi, bj, worstScore, worstDelay = i, j, s, t.Delay
			}
		}
	}
	if bi < 0 {
		return false
	}
	t := p.ks[bi].EvictAt(bj)
	p.loop.RecordShed(0, t.Delay)
	return true
}

// RecallEstimate exposes the loop's run-level recall estimate (produced
// over estimated-true results, shed losses included).
func (p *Pipeline) RecallEstimate() float64 { return p.loop.RecallEstimate() }

// Abandon stops the pipeline's background goroutines without flushing or
// emitting — the teardown path for a crashed pipeline a supervisor is about
// to replace. Safe after a contained worker failure: drain-mode shard
// workers exit when their channels close. It must not gate on p.finished:
// Finish sets that flag before tearing down and can then panic mid-flush
// (a pending worker failure surfaces there), leaving live workers behind a
// true flag — so Abandon always closes, relying on the idempotent
// runtime/loop Close. The pipeline counts as finished afterwards; further
// Push/Finish calls hit the lifecycle panics.
func (p *Pipeline) Abandon() {
	p.finished = true
	if p.rt != nil {
		p.loop.Close()
		p.rt.Close()
	}
}
