package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"repro/internal/leakcheck"
	"testing"

	"math/rand"

	"repro/internal/adapt"
	"repro/internal/join"
	"repro/internal/stream"
)

var updateGolden = flag.Bool("update", false, "regenerate the golden feedback-loop trace")

// goldenRun is the recorded behaviour of one pipeline configuration: the full
// K trajectory with the Γ′ used at each step (stored as raw float bits so the
// comparison is bit-for-bit, not within-epsilon), the produced result count,
// and two hashes over the emitted results — one in emit order, one
// order-insensitive over the multiset. The feedback-loop extraction must
// reproduce all of them exactly.
type goldenRun struct {
	Name        string   `json:"name"`
	Ks          []int64  `json:"ks"`
	GammaPrimes []uint64 `json:"gamma_primes"`
	Results     int64    `json:"results"`
	OrderedHash uint64   `json:"ordered_hash"`
	SetHash     uint64   `json:"set_hash"`
	AvgKBits    uint64   `json:"avg_k_bits"`
}

// goldenWorkload is a seeded disordered 3-stream feed with sparse keys, so
// result enumeration stays cheap while the delay distribution still forces
// non-trivial K decisions.
func goldenWorkload() (stream.Batch, *join.Condition, []stream.Time) {
	rng := rand.New(rand.NewSource(11))
	var in stream.Batch
	var seq uint64
	ts := stream.Time(3000)
	for i := 0; i < 6000; i++ {
		ts += 10
		for src := 0; src < 3; src++ {
			t := ts
			if rng.Intn(4) == 0 {
				t -= stream.Time(rng.Intn(3000))
			}
			in = append(in, &stream.Tuple{
				TS: t, Seq: seq, Src: src,
				Attrs: []float64{float64(rng.Intn(300))},
			})
			seq++
		}
	}
	w := 2 * stream.Second
	return in, join.EquiChain(3, 0), []stream.Time{w, w, w}
}

// goldenConfigs enumerates the traced configurations: both selectivity
// strategies, both search algorithms, a baseline policy, and the sharded
// path (which exercises the asynchronous stats feeder and interval-batched
// result replay).
func goldenConfigs() []struct {
	name   string
	cfg    func(emit func(stream.Result)) Config
	inputs stream.Batch
} {
	arrivals, cond, windows := goldenWorkload()
	x3 := struct {
		Arrivals stream.Batch
		Cond     *join.Condition
		Windows  []stream.Time
	}{arrivals, cond, windows}
	acfg := adapt.Config{Gamma: 0.9, P: 10 * stream.Second, L: stream.Second}
	type entry = struct {
		name   string
		cfg    func(emit func(stream.Result)) Config
		inputs stream.Batch
	}
	return []entry{
		{"x3-model-noneqsel", func(emit func(stream.Result)) Config {
			return Config{Windows: x3.Windows, Cond: x3.Cond, Adapt: acfg, Emit: emit}
		}, x3.Arrivals},
		{"x3-model-eqsel-binary", func(emit func(stream.Result)) Config {
			a := acfg
			a.Strategy = adapt.EqSel
			a.Search = adapt.BinarySearch
			return Config{Windows: x3.Windows, Cond: x3.Cond, Adapt: a, Emit: emit}
		}, x3.Arrivals},
		{"x3-maxk", func(emit func(stream.Result)) Config {
			return Config{Windows: x3.Windows, Cond: x3.Cond, Adapt: acfg, Policy: MaxKPolicy(), Emit: emit}
		}, x3.Arrivals},
		{"x3-model-sharded", func(emit func(stream.Result)) Config {
			return Config{Windows: x3.Windows, Cond: x3.Cond, Adapt: acfg, Emit: emit,
				Sharding: Sharding{Shards: 4}}
		}, x3.Arrivals},
	}
}

func traceRun(t *testing.T, name string, mk func(emit func(stream.Result)) Config, inputs stream.Batch) goldenRun {
	t.Helper()
	g := goldenRun{Name: name}
	hOrd := fnv.New64a()
	var buf [8]byte
	hashResult := func(r stream.Result) uint64 {
		h := fnv.New64a()
		for _, tp := range r.Tuples {
			putU64(&buf, tp.Seq)
			h.Write(buf[:])
		}
		return h.Sum64()
	}
	cfg := mk(func(r stream.Result) {
		hr := hashResult(r)
		putU64(&buf, hr)
		hOrd.Write(buf[:])
		g.SetHash += hr // commutative: multiset hash
	})
	cfg.OnAdapt = func(ev AdaptEvent) {
		g.Ks = append(g.Ks, int64(ev.NewK))
		g.GammaPrimes = append(g.GammaPrimes, math.Float64bits(ev.GammaPrime))
	}
	p := New(cfg)
	p.Run(inputs.Clone())
	g.Results = p.Results()
	g.OrderedHash = hOrd.Sum64()
	g.AvgKBits = math.Float64bits(p.AvgK())
	return g
}

func putU64(buf *[8]byte, v uint64) {
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
}

// TestGoldenFeedbackTrace asserts that the pipeline's K trajectories, Γ′
// sequence and result multisets are bit-for-bit identical to the trace
// recorded before the feedback loop was extracted into internal/feedback
// (regenerate with `go test -run TestGoldenFeedbackTrace -update`).
func TestGoldenFeedbackTrace(t *testing.T) {
	leakcheck.Check(t)
	path := filepath.Join("testdata", "golden_trace.json")
	var got []goldenRun
	for _, c := range goldenConfigs() {
		got = append(got, traceRun(t, c.name, c.cfg, c.inputs))
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		out, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s with %d runs", path, len(got))
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden trace (run with -update to create): %v", err)
	}
	var want []goldenRun
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden trace has %d runs, current code produced %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Name != g.Name {
			t.Fatalf("run %d: name %q != golden %q", i, g.Name, w.Name)
		}
		if fmt.Sprint(w.Ks) != fmt.Sprint(g.Ks) {
			t.Errorf("%s: K trajectory diverged\n golden: %v\n got:    %v", w.Name, w.Ks, g.Ks)
		}
		if fmt.Sprint(w.GammaPrimes) != fmt.Sprint(g.GammaPrimes) {
			t.Errorf("%s: Γ′ sequence diverged", w.Name)
		}
		if w.Results != g.Results {
			t.Errorf("%s: results %d != golden %d", w.Name, g.Results, w.Results)
		}
		if w.SetHash != g.SetHash {
			t.Errorf("%s: result multiset hash diverged", w.Name)
		}
		if w.OrderedHash != g.OrderedHash {
			t.Errorf("%s: result emit-order hash diverged", w.Name)
		}
		if w.AvgKBits != g.AvgKBits {
			t.Errorf("%s: AvgK diverged: %g != golden %g", w.Name,
				math.Float64frombits(g.AvgKBits), math.Float64frombits(w.AvgKBits))
		}
	}
}
