package core

import (
	"fmt"
	"math/rand"
	"repro/internal/leakcheck"
	"sort"
	"testing"

	"repro/internal/adapt"
	"repro/internal/join"
	"repro/internal/kslack"
	"repro/internal/oracle"
	"repro/internal/stream"
	"repro/internal/syncer"
)

// mkWorkload builds a 2-stream equi-join workload with interleaved arrivals:
// every 5th tuple of each stream is delayed by `delay`.
func mkWorkload(n int, delay stream.Time, seed int64) stream.Batch {
	rng := rand.New(rand.NewSource(seed))
	var out stream.Batch
	var seq uint64
	ts := stream.Time(delay + 100)
	for i := 0; i < n; i++ {
		ts += 10
		for s := 0; s < 2; s++ {
			t := ts
			if i%5 == 4 {
				t = ts - delay
			}
			out = append(out, &stream.Tuple{
				TS: t, Seq: seq, Src: s,
				Attrs: []float64{float64(rng.Intn(4))},
			})
			seq++
		}
	}
	return out
}

func equi2() *join.Condition { return join.Cross(2).Equi(0, 0, 1, 0) }

func baseCfg(policy PolicyFactory) Config {
	return Config{
		Windows: []stream.Time{500, 500},
		Cond:    equi2(),
		Adapt: adapt.Config{
			Gamma: 0.9,
			P:     5 * stream.Second,
			L:     stream.Second,
			B:     10,
			G:     10,
		},
		Policy: policy,
	}
}

func TestPipelinePanicsOnArityMismatch(t *testing.T) {
	leakcheck.Check(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Windows: []stream.Time{10}, Cond: equi2()})
}

// TestMaxKMatchesOracle: with the Max-K-slack policy, disorder handling is
// (nearly) complete, so the produced results match the oracle except for
// tuples whose delay exceeded the maximum observed so far.
func TestMaxKMatchesOracle(t *testing.T) {
	leakcheck.Check(t)
	in := mkWorkload(3000, 200, 1)
	truth := oracle.TrueResults(equi2(), []stream.Time{500, 500}, in)

	p := New(baseCfg(MaxKPolicy()))
	p.Run(in.Clone())
	got := p.Results()
	if float64(got) < 0.97*float64(truth.Total()) {
		t.Fatalf("Max-K produced %d of %d true results", got, truth.Total())
	}
	if got > truth.Total() {
		t.Fatalf("produced %d exceeds true %d — correctness bug", got, truth.Total())
	}
}

// TestNoKLosesResults: without K-slack, the delayed tuples' results are
// mostly lost.
func TestNoKLosesResults(t *testing.T) {
	leakcheck.Check(t)
	in := mkWorkload(3000, 200, 2)
	truth := oracle.TrueResults(equi2(), []stream.Time{500, 500}, in)
	p := New(baseCfg(NoKPolicy()))
	p.Run(in.Clone())
	if p.Results() >= truth.Total() {
		t.Fatalf("No-K produced %d of %d — expected losses", p.Results(), truth.Total())
	}
}

// TestModelPolicyBeatsMaxKOnLatency: the quality-driven policy should apply
// a smaller average K than Max-K-slack while keeping results close to the
// requirement.
func TestModelPolicyBeatsMaxKOnLatency(t *testing.T) {
	leakcheck.Check(t)
	in := mkWorkload(6000, 200, 3)
	truth := oracle.TrueResults(equi2(), []stream.Time{500, 500}, in)

	cfg := baseCfg(ModelPolicy())
	cfg.Adapt.Gamma = 0.8
	p := New(cfg)
	p.Run(in.Clone())

	if p.AvgK() >= 200 {
		t.Fatalf("avg K = %v, should undercut the 200 max delay", p.AvgK())
	}
	got := float64(p.Results()) / float64(truth.Total())
	if got < 0.7 {
		t.Fatalf("overall recall %v too far below requirement 0.8", got)
	}
	if p.Adaptations() == 0 {
		t.Fatal("model policy must adapt")
	}
}

func TestAdaptationCadence(t *testing.T) {
	leakcheck.Check(t)
	in := mkWorkload(3000, 50, 4) // spans ~30 s
	p := New(baseCfg(StaticPolicy(50)))
	var events []AdaptEvent
	p.cfg.OnAdapt = func(ev AdaptEvent) { events = append(events, ev) }
	p.Run(in.Clone())
	// ~30 s of logical time at L = 1 s → ≈29 boundaries.
	if len(events) < 25 || len(events) > 35 {
		t.Fatalf("adaptations = %d, want ≈29", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Now-events[i-1].Now != stream.Second {
			t.Fatalf("interval %d–%d not L", i-1, i)
		}
	}
	if p.CurrentK() != 50 {
		t.Fatalf("static K = %d", p.CurrentK())
	}
}

// TestSparseArrivalSingleAdaptStep is the regression test for the
// adaptation-gap skew: one arrival crossing several interval boundaries
// must trigger ONE adaptation decision (anchored at the last crossed
// boundary), not one per boundary — the repeats would consume an
// already-reset profiler and push zero true-size estimates into the
// monitor ring.
func TestSparseArrivalSingleAdaptStep(t *testing.T) {
	leakcheck.Check(t)
	p := New(baseCfg(StaticPolicy(30))) // L = 1 s
	var events []AdaptEvent
	p.cfg.OnAdapt = func(ev AdaptEvent) { events = append(events, ev) }

	push := func(ts stream.Time, seq uint64) {
		p.Push(&stream.Tuple{TS: ts, Seq: seq, Src: int(seq % 2), Attrs: []float64{1}})
	}
	push(1000, 0) // arms nextAdapt = 2000
	push(1100, 1)
	// The next arrival is 10 intervals later: it crosses the boundaries
	// 2000..11000 in one Push.
	push(11*stream.Second+100, 2)
	if len(events) != 1 {
		t.Fatalf("sparse arrival ran %d adaptation steps, want 1", len(events))
	}
	if events[0].Now != 11*stream.Second {
		t.Fatalf("decision anchored at %v, want the last crossed boundary 11s", events[0].Now)
	}
	// Dense arrivals afterwards resume the normal one-step-per-boundary
	// cadence from the new anchor.
	push(12*stream.Second+100, 3)
	if len(events) != 2 || events[1].Now != 12*stream.Second {
		t.Fatalf("cadence did not resume: %+v", events)
	}
	if p.Adaptations() != 2 {
		t.Fatalf("Adaptations = %d, want 2", p.Adaptations())
	}
}

func TestConservationThroughPipeline(t *testing.T) {
	leakcheck.Check(t)
	in := mkWorkload(2000, 100, 5)
	p := New(baseCfg(StaticPolicy(30)))
	p.Run(in.Clone())
	if p.Operator().Processed() != int64(len(in)) {
		t.Fatalf("operator saw %d of %d tuples", p.Operator().Processed(), len(in))
	}
	if p.Pushed() != int64(len(in)) {
		t.Fatalf("pushed %d of %d", p.Pushed(), len(in))
	}
}

// --- Same-K policy (Theorem 1 / Fig. 4) ----------------------------------

// runPerStreamK wires K-slack components with *individual* buffer sizes in
// front of a Synchronizer and the join operator, bypassing the Same-K
// Buffer-Size Manager, and returns the produced result multiset.
// Only results with timestamps inside [lo, hi] are collected: the theorem
// describes steady-state equivalence, and the first/last moments of a finite
// run (empty buffers, final flush) are excluded.
func runPerStreamK(ks []stream.Time, in stream.Batch, cond *join.Condition, windows []stream.Time, lo, hi stream.Time) map[string]int {
	results := map[string]int{}
	op := join.New(cond, windows, join.WithEmit(func(r stream.Result) {
		if r.TS < lo || r.TS > hi {
			return
		}
		seqs := make([]uint64, len(r.Tuples))
		for i, tu := range r.Tuples {
			seqs[i] = tu.Seq
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		results[fmt.Sprint(seqs)]++
	}))
	sy := syncer.New(len(ks), op.Process)
	buffers := make([]*kslack.Buffer, len(ks))
	for i, k := range ks {
		buffers[i] = kslack.New(k, sy.Push)
	}
	for _, e := range in {
		cp := *e
		buffers[e.Src].Push(&cp)
	}
	for _, b := range buffers {
		b.Flush()
	}
	for i := range ks {
		sy.Close(i)
	}
	return results
}

func sameResults(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestSameKTheoremSynchronized verifies Theorem 1 for synchronized streams:
// a configuration (k1, k2) is equivalent to (k, k) with
// k = min{iT} − min{iT − ki} = max{ki}.
func TestSameKTheoremSynchronized(t *testing.T) {
	leakcheck.Check(t)
	in := mkWorkload(2500, 150, 7)
	w := []stream.Time{500, 500}
	configs := [][2]stream.Time{{0, 60}, {60, 0}, {30, 90}, {150, 40}}
	for _, c := range configs {
		lo, hi := in[0].TS+1000, in.MaxTS()-1000
		mixed := runPerStreamK([]stream.Time{c[0], c[1]}, in, equi2(), w, lo, hi)
		k := c[0]
		if c[1] > k {
			k = c[1]
		}
		same := runPerStreamK([]stream.Time{k, k}, in, equi2(), w, lo, hi)
		if !sameResults(mixed, same) {
			t.Fatalf("config %v (%d results) not equivalent to same-K %d (%d results)",
				c, len(mixed), k, len(same))
		}
	}
}

// TestSameKTheoremSkewedStreams verifies the general form of Theorem 1 with
// a constant time skew: stream 0 leads stream 1 by `skew`, so
// k = min{iT} − min{iT − ki} = max{k1, k0 − skew} when k0−skew ≥ … (see
// Fig. 4 cases 1 and 2).
func TestSameKTheoremSkewedStreams(t *testing.T) {
	leakcheck.Check(t)
	const skew = 50
	rng := rand.New(rand.NewSource(11))
	var in stream.Batch
	var seq uint64
	ts := stream.Time(500)
	for i := 0; i < 2500; i++ {
		ts += 10
		for s := 0; s < 2; s++ {
			t := ts
			if s == 0 {
				t += skew // stream 0 leads
			}
			if i%5 == 4 {
				t -= 120
			}
			in = append(in, &stream.Tuple{TS: t, Seq: seq, Src: s,
				Attrs: []float64{float64(rng.Intn(4))}})
			seq++
		}
	}
	w := []stream.Time{500, 500}
	for _, c := range [][2]stream.Time{{70, 10}, {100, 0}, {0, 80}} {
		k0, k1 := c[0], c[1]
		// k = min{iT} − min{iT−ki}; with iT0 = iT1 + skew:
		// min{iT} = iT1; min{iT−ki} = min(iT1+skew−k0, iT1−k1)
		// → k = max(k0−skew, k1).
		k := k1
		if k0-skew > k {
			k = k0 - skew
		}
		lo, hi := in[0].TS+1000, in.MaxTS()-1000
		mixed := runPerStreamK([]stream.Time{k0, k1}, in, equi2(), w, lo, hi)
		same := runPerStreamK([]stream.Time{k, k}, in, equi2(), w, lo, hi)
		if !sameResults(mixed, same) {
			t.Fatalf("skewed config %v (%d) not equivalent to same-K %d (%d)",
				c, len(mixed), k, len(same))
		}
	}
}
