// Package profiler implements the Tuple-Productivity Profiler of Sec. IV-B,
// which learns the correlation between the delay and the productivity of
// tuples (DPcorr) by monitoring the output of the join.
//
// For every in-order tuple e the join operator reports the cross-join result
// size n×(e) the tuple would derive and the number n^on(e) of results it
// actually derived. The profiler accumulates both per coarse-grained delay
// value into the maps M× and M^on. The productivity of an out-of-order tuple
// (for which no probing happened) is estimated conservatively as the maximum
// n^on / n× over all in-order tuples of the same adaptation interval.
//
// From the maps the profiler estimates the selectivity ratio
// sel^on(K) / sel^on of Eq. (6) for any candidate K, and the true result
// size N^on_true(L) of the last interval as ΣM^on[d].
package profiler

import (
	"repro/internal/stream"
)

// Profiler accumulates productivity statistics for one adaptation interval.
type Profiler struct {
	g stream.Time

	mOn    map[int]int64
	mCross map[int]int64
	mN     map[int]int64 // in-order tuple count per coarse delay

	maxOn    int64
	maxCross int64
	inOrder  int64

	// pendingOOO holds the coarse delays of out-of-order tuples observed in
	// the current interval; their estimated contributions are folded into
	// the maps at Snapshot time, once the interval's maxima are known.
	pendingOOO []int
	// pendingShed holds the coarse delays of load-shed tuples: dropped
	// before reaching the join, their would-be contribution is mean-charged
	// into the N^on_true estimate so the recall accounting sees the loss.
	pendingShed []int
}

// New creates a profiler with delay coarsening granularity g (the K-search
// granularity of Alg. 3).
func New(g stream.Time) *Profiler {
	if g <= 0 {
		g = 1
	}
	return &Profiler{
		g:      g,
		mOn:    map[int]int64{},
		mCross: map[int]int64{},
		mN:     map[int]int64{},
	}
}

// bucket coarsens a delay exactly like hist.Histogram.
func (p *Profiler) bucket(delay stream.Time) int {
	if delay <= 0 {
		return 0
	}
	return int((delay + p.g - 1) / p.g)
}

// RecordInOrder accounts an in-order tuple with the given delay annotation.
func (p *Profiler) RecordInOrder(delay stream.Time, nCross, nOn int64) {
	b := p.bucket(delay)
	p.mOn[b] += nOn
	p.mCross[b] += nCross
	p.mN[b]++
	if nOn > p.maxOn {
		p.maxOn = nOn
	}
	if nCross > p.maxCross {
		p.maxCross = nCross
	}
	p.inOrder++
}

// RecordOutOfOrder accounts an out-of-order tuple; its productivity is
// estimated at Snapshot time.
func (p *Profiler) RecordOutOfOrder(delay stream.Time) {
	p.pendingOOO = append(p.pendingOOO, p.bucket(delay))
}

// RecordShed accounts a load-shed tuple. Like out-of-order tuples it derived
// no results, but unlike them it never will: its mean-charge enters only the
// N^on_true estimate (recall accounting), never the Eq. (6) selectivity maps
// — shedding must depress the recall estimate, not distort the K search.
func (p *Profiler) RecordShed(delay stream.Time) {
	p.pendingShed = append(p.pendingShed, p.bucket(delay))
}

// Score estimates the productivity of a tuple with the given delay: the
// expected number of results an in-order tuple of that coarse delay derives,
// based on the current interval's M^on accumulation. Buckets without samples
// fall back to the interval mean. The load shedder drops minimum-Score
// tuples first.
func (p *Profiler) Score(delay stream.Time) float64 {
	b := p.bucket(delay)
	if n := p.mN[b]; n > 0 {
		return float64(p.mOn[b]) / float64(n)
	}
	if p.inOrder == 0 {
		return 0
	}
	var sumOn int64
	for _, v := range p.mOn {
		sumOn += v
	}
	return float64(sumOn) / float64(p.inOrder)
}

// InOrderCount returns the number of in-order tuples recorded this interval.
func (p *Profiler) InOrderCount() int64 { return p.inOrder }

// Snapshot is an immutable view of one interval's productivity statistics
// with out-of-order estimates folded in.
//
// Out-of-order tuples are charged in two ways. The maps M× and M^on used by
// the selectivity ratio (Eq. 6) charge each out-of-order tuple the interval
// *maximum* in-order productivity, exactly as Sec. IV-B prescribes — the
// paper motivates the conservative choice when discussing Fig. 9. The
// N^on_true(L) estimate feeding the Γ′ derivation (Eq. 7) instead charges
// the interval *mean*: under heavy disorder the max-charge inflates the
// true-size estimate by the out-of-order fraction times max/mean, which
// saturates Γ′ at 1 and pins K at its maximum; Eq. 7 needs an unbiased
// estimate (documented as a deviation in DESIGN.md).
type Snapshot struct {
	g        stream.Time
	mOn      map[int]int64
	mCross   map[int]int64
	maxDM    int // maximum coarse delay present in the maps
	totOn    int64
	totCross int64

	trueOn    float64 // mean-charged N^on_true(L) estimate
	trueCross float64
	inOrder   int64

	// Prefix sums over coarse delays 0..maxDM for O(1) SelRatio queries:
	// cumOn[d] = Σ_{d'≤d} M^on[d'], likewise cumCross. The Alg. 3 search
	// evaluates SelRatio for thousands of K candidates per adaptation step,
	// so per-query map scans would dominate adaptation time.
	cumOn    []int64
	cumCross []int64
}

// Snapshot folds pending out-of-order estimates into the maps and returns
// the interval view. It does not reset the profiler; call Reset separately
// at the start of the next interval.
func (p *Profiler) Snapshot() *Snapshot {
	s := &Snapshot{
		g:       p.g,
		mOn:     make(map[int]int64, len(p.mOn)),
		mCross:  make(map[int]int64, len(p.mCross)),
		maxDM:   -1,
		inOrder: p.inOrder,
	}
	for d, v := range p.mOn {
		s.mOn[d] = v
	}
	for d, v := range p.mCross {
		s.mCross[d] = v
	}
	for _, d := range p.pendingOOO {
		s.mOn[d] += p.maxOn
		s.mCross[d] += p.maxCross
	}
	for d, v := range s.mCross {
		s.totCross += v
		if d > s.maxDM {
			s.maxDM = d
		}
	}
	for d, v := range s.mOn {
		s.totOn += v
		if d > s.maxDM {
			s.maxDM = d
		}
	}
	// Unbiased true-size estimates: in-order sums plus the mean in-order
	// productivity per out-of-order tuple.
	var sumOn, sumCross int64
	for _, v := range p.mOn {
		sumOn += v
	}
	for _, v := range p.mCross {
		sumCross += v
	}
	s.trueOn = float64(sumOn)
	s.trueCross = float64(sumCross)
	if p.inOrder > 0 {
		// Out-of-order and load-shed tuples both derived nothing; both are
		// mean-charged into the true-size estimate. The difference is that a
		// shed tuple's loss is permanent, which is exactly why it must appear
		// here: recall = produced / N^on_true then reflects the drop.
		if lost := float64(len(p.pendingOOO) + len(p.pendingShed)); lost > 0 {
			s.trueOn += lost * float64(sumOn) / float64(p.inOrder)
			s.trueCross += lost * float64(sumCross) / float64(p.inOrder)
		}
	}
	if s.maxDM >= 0 {
		s.cumOn = make([]int64, s.maxDM+1)
		s.cumCross = make([]int64, s.maxDM+1)
		var on, cross int64
		for d := 0; d <= s.maxDM; d++ {
			on += s.mOn[d]
			cross += s.mCross[d]
			s.cumOn[d] = on
			s.cumCross[d] = cross
		}
	}
	return s
}

// Reset clears the profiler for the next adaptation interval.
func (p *Profiler) Reset() {
	p.mOn = map[int]int64{}
	p.mCross = map[int]int64{}
	p.mN = map[int]int64{}
	p.maxOn, p.maxCross = 0, 0
	p.inOrder = 0
	p.pendingOOO = p.pendingOOO[:0]
	p.pendingShed = p.pendingShed[:0]
}

// State is the serializable snapshot of a Profiler mid-interval. Maps are
// flattened to parallel key/value slices in ascending bucket order so the
// serialized form is canonical.
type State struct {
	Buckets     []int // ascending; keys of the three maps' union
	On          []int64
	Cross       []int64
	N           []int64
	MaxOn       int64
	MaxCross    int64
	InOrder     int64
	PendingOOO  []int
	PendingShed []int
}

// State captures the profiler's mid-interval accumulation.
func (p *Profiler) State() State {
	keys := map[int]bool{}
	for d := range p.mOn {
		keys[d] = true
	}
	for d := range p.mCross {
		keys[d] = true
	}
	for d := range p.mN {
		keys[d] = true
	}
	st := State{
		MaxOn: p.maxOn, MaxCross: p.maxCross, InOrder: p.inOrder,
		PendingOOO:  append([]int(nil), p.pendingOOO...),
		PendingShed: append([]int(nil), p.pendingShed...),
	}
	for d := range keys {
		st.Buckets = append(st.Buckets, d)
	}
	sortInts(st.Buckets)
	for _, d := range st.Buckets {
		st.On = append(st.On, p.mOn[d])
		st.Cross = append(st.Cross, p.mCross[d])
		st.N = append(st.N, p.mN[d])
	}
	return st
}

// Restore loads a captured state into a freshly constructed profiler (same
// granularity).
func (p *Profiler) Restore(st State) {
	p.Reset()
	for i, d := range st.Buckets {
		if st.On[i] != 0 {
			p.mOn[d] = st.On[i]
		}
		if st.Cross[i] != 0 {
			p.mCross[d] = st.Cross[i]
		}
		if st.N[i] != 0 {
			p.mN[d] = st.N[i]
		}
	}
	p.maxOn, p.maxCross = st.MaxOn, st.MaxCross
	p.inOrder = st.InOrder
	p.pendingOOO = append(p.pendingOOO, st.PendingOOO...)
	p.pendingShed = append(p.pendingShed, st.PendingShed...)
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// SelRatio estimates sel^on(K)/sel^on per Eq. (6): the selectivity over
// tuples re-orderable with buffer size K, relative to the true selectivity
// (which a buffer of size MaxD^M would achieve). Degenerate denominators
// yield the neutral ratio 1, which reduces the model to EqSel behaviour.
// minSelSamples is the minimum number of in-order tuples an interval must
// have recorded before its selectivity ratio is trusted. Very short
// adaptation intervals (the paper sweeps L down to 100 ms, i.e. a few dozen
// arrivals) produce ratios dominated by sampling noise that bias the recall
// model; below the threshold the ratio degrades gracefully to the EqSel
// assumption of 1.
var minSelSamples int64 = 30

func (s *Snapshot) SelRatio(k stream.Time) float64 {
	if s.maxDM < 0 || s.inOrder < minSelSamples {
		return 1
	}
	kb := int(k / s.g)
	if kb > s.maxDM {
		kb = s.maxDM
	}
	on, cross := s.cumOn[kb], s.cumCross[kb]
	if cross == 0 || s.totOn == 0 || s.totCross == 0 || on == 0 {
		return 1
	}
	return (float64(on) / float64(cross)) * (float64(s.totCross) / float64(s.totOn))
}

// TrueResults estimates N^on_true(L), the true result size of the interval
// (Sec. IV-C), with the unbiased mean-charge for out-of-order tuples.
func (s *Snapshot) TrueResults() float64 { return s.trueOn }

// TrueCross returns the corresponding cross-join size estimate.
func (s *Snapshot) TrueCross() float64 { return s.trueCross }

// MaxChargedOn returns ΣM^on[d], the max-charged accumulation that Eq. (6)
// ratios are built from; exposed for tests.
func (s *Snapshot) MaxChargedOn() int64 { return s.totOn }
