package profiler

import (
	"math"
	"testing"
)

// disableGuard lifts the minimum-sample guard so the Eq. (6) arithmetic can
// be verified on tiny hand-built examples.
func disableGuard(t *testing.T) {
	t.Helper()
	old := minSelSamples
	minSelSamples = 0
	t.Cleanup(func() { minSelSamples = old })
}

func TestSelRatioNeutralCases(t *testing.T) {
	p := New(10)
	s := p.Snapshot()
	if s.SelRatio(0) != 1 {
		t.Fatal("empty snapshot must yield neutral ratio")
	}
	p.RecordInOrder(0, 0, 0)
	s = p.Snapshot()
	if s.SelRatio(100) != 1 {
		t.Fatal("all-zero counts must yield neutral ratio")
	}
}

// TestSelRatioEq6 exercises Eq. (6) on a hand-computed example.
func TestSelRatioEq6(t *testing.T) {
	disableGuard(t)
	p := New(10)
	// Delay bucket 0: 10 cross, 5 matched → sel 0.5.
	p.RecordInOrder(0, 10, 5)
	// Delay bucket 2 (delay 15): 10 cross, 1 matched → low-productivity late
	// tuples.
	p.RecordInOrder(15, 10, 1)
	s := p.Snapshot()

	// K = 0 → only bucket 0 counted: (5/10) / (6/20) = 0.5 / 0.3.
	want := (5.0 / 10.0) * (20.0 / 6.0)
	if got := s.SelRatio(0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("SelRatio(0) = %v, want %v", got, want)
	}
	// K = 20 covers both buckets → ratio 1.
	if got := s.SelRatio(20); math.Abs(got-1) > 1e-12 {
		t.Fatalf("SelRatio(20) = %v, want 1", got)
	}
	// K = 10 covers bucket 1 (empty) but not bucket 2 → same as K=0.
	if got := s.SelRatio(10); math.Abs(got-want) > 1e-12 {
		t.Fatalf("SelRatio(10) = %v", got)
	}
}

// TestSelRatioHighProductivityLateTuples: when delayed tuples are MORE
// productive (DPcorr), small K must show a ratio < 1, steering the model to
// larger buffers — the NonEqSel advantage.
func TestSelRatioHighProductivityLateTuples(t *testing.T) {
	disableGuard(t)
	p := New(10)
	p.RecordInOrder(0, 10, 1)  // punctual tuples barely productive
	p.RecordInOrder(25, 10, 9) // late tuples highly productive
	s := p.Snapshot()
	if r := s.SelRatio(0); r >= 1 {
		t.Fatalf("SelRatio(0) = %v, want < 1", r)
	}
	if r := s.SelRatio(30); math.Abs(r-1) > 1e-12 {
		t.Fatalf("full-coverage ratio = %v, want 1", r)
	}
}

func TestOutOfOrderEstimation(t *testing.T) {
	disableGuard(t)
	p := New(10)
	p.RecordInOrder(0, 4, 2)
	p.RecordInOrder(0, 8, 3) // interval maxima: cross 8, on 3
	p.RecordOutOfOrder(35)   // bucket 4: max-charged in M^on/M×, mean-charged in TrueResults
	s := p.Snapshot()
	if s.MaxChargedOn() != 2+3+3 {
		t.Fatalf("MaxChargedOn = %d, want 8", s.MaxChargedOn())
	}
	if got, want := s.TrueResults(), 2+3+2.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("TrueResults = %v, want %v (mean charge)", got, want)
	}
	if got, want := s.TrueCross(), 4+8+6.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("TrueCross = %v, want %v", got, want)
	}
	// The charge must land at the out-of-order tuple's delay bucket.
	if r := s.SelRatio(30); r == 1 {
		t.Fatal("bucket-4 charge must affect ratios below its delay")
	}
	if r := s.SelRatio(40); math.Abs(r-1) > 1e-12 {
		t.Fatalf("covering the charge must neutralize the ratio, got %v", r)
	}
}

func TestResetClearsInterval(t *testing.T) {
	p := New(10)
	p.RecordInOrder(0, 5, 5)
	p.RecordOutOfOrder(10)
	p.Reset()
	s := p.Snapshot()
	if s.TrueResults() != 0 || s.TrueCross() != 0 {
		t.Fatal("reset must clear the maps")
	}
	if p.InOrderCount() != 0 {
		t.Fatal("reset must clear counters")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	p := New(10)
	p.RecordInOrder(0, 10, 5)
	s := p.Snapshot()
	p.RecordInOrder(0, 100, 50) // after snapshot
	if s.TrueResults() != 5 {
		t.Fatal("snapshot must not observe later records")
	}
}

func TestGranularityDefault(t *testing.T) {
	p := New(0)
	p.RecordInOrder(3, 1, 1) // must not panic; bucket 3 at g=1
	s := p.Snapshot()
	if s.TrueResults() != 1 {
		t.Fatal("record lost")
	}
}
