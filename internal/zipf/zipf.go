// Package zipf provides a bounded Zipf sampler over a finite integer domain
// with arbitrary skew s ≥ 0.
//
// The standard library's rand.Zipf requires s > 1 and samples an unbounded
// domain; the paper's synthetic workloads (Sec. VI) need skews from the full
// range [0.0, 5.0] over bounded domains ([1,100] attribute values, [0,20 s]
// delays), including the uniform case s = 0, so we sample by inverting an
// explicitly computed CDF.
package zipf

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Sampler draws values k ∈ {0, 1, …, n−1} with probability proportional to
// 1/(k+1)^s. Rank 0 is the most probable value.
type Sampler struct {
	cdf  []float64
	skew float64
}

// New builds a sampler over n ranks with the given skew. It panics if n < 1
// or skew < 0, which are programming errors rather than runtime conditions.
func New(n int, skew float64) *Sampler {
	if n < 1 {
		panic(fmt.Sprintf("zipf: domain size %d < 1", n))
	}
	if skew < 0 || math.IsNaN(skew) {
		panic(fmt.Sprintf("zipf: invalid skew %v", skew))
	}
	s := &Sampler{cdf: make([]float64, n), skew: skew}
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -skew)
		s.cdf[k] = sum
	}
	inv := 1 / sum
	for k := range s.cdf {
		s.cdf[k] *= inv
	}
	// Guard against floating point drift: the last CDF entry must be exactly
	// 1 so Sample never falls off the end.
	s.cdf[n-1] = 1
	return s
}

// N returns the domain size.
func (s *Sampler) N() int { return len(s.cdf) }

// Skew returns the skew parameter used to build the sampler.
func (s *Sampler) Skew() float64 { return s.skew }

// Sample draws one rank using the supplied RNG.
func (s *Sampler) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(s.cdf, u)
}

// Prob returns the probability mass of rank k.
func (s *Sampler) Prob(k int) float64 {
	if k < 0 || k >= len(s.cdf) {
		return 0
	}
	if k == 0 {
		return s.cdf[0]
	}
	return s.cdf[k] - s.cdf[k-1]
}
