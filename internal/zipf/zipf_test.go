package zipf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniformWhenSkewZero(t *testing.T) {
	s := New(4, 0)
	for k := 0; k < 4; k++ {
		if math.Abs(s.Prob(k)-0.25) > 1e-12 {
			t.Fatalf("P(%d) = %v, want 0.25", k, s.Prob(k))
		}
	}
}

func TestProbMonotoneNonIncreasing(t *testing.T) {
	s := New(100, 2.0)
	for k := 1; k < 100; k++ {
		if s.Prob(k) > s.Prob(k-1)+1e-15 {
			t.Fatalf("P(%d)=%v > P(%d)=%v", k, s.Prob(k), k-1, s.Prob(k-1))
		}
	}
}

func TestProbSumsToOne(t *testing.T) {
	for _, skew := range []float64{0, 0.5, 1, 2.5, 5} {
		s := New(321, skew)
		sum := 0.0
		for k := 0; k < s.N(); k++ {
			sum += s.Prob(k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("skew %v: probs sum to %v", skew, sum)
		}
	}
}

func TestSampleWithinDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := New(10, 1.5)
	for i := 0; i < 10000; i++ {
		k := s.Sample(rng)
		if k < 0 || k >= 10 {
			t.Fatalf("sample %d outside [0,10)", k)
		}
	}
}

func TestEmpiricalMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New(20, 2.0)
	const n = 200000
	counts := make([]int, 20)
	for i := 0; i < n; i++ {
		counts[s.Sample(rng)]++
	}
	for k := 0; k < 20; k++ {
		want := s.Prob(k)
		got := float64(counts[k]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("rank %d: empirical %v vs analytic %v", k, got, want)
		}
	}
}

func TestHighSkewConcentratesMass(t *testing.T) {
	s := New(2001, 3.0)
	if s.Prob(0) < 0.8 {
		t.Fatalf("skew 3 over 2001 ranks should put ≥80%% mass on rank 0, got %v", s.Prob(0))
	}
}

func TestSingletonDomain(t *testing.T) {
	s := New(1, 2.0)
	rng := rand.New(rand.NewSource(3))
	if s.Sample(rng) != 0 {
		t.Fatal("singleton domain must always sample 0")
	}
	if s.Prob(0) != 1 {
		t.Fatal("singleton domain must have P(0)=1")
	}
}

func TestOutOfRangeProbIsZero(t *testing.T) {
	s := New(5, 1)
	if s.Prob(-1) != 0 || s.Prob(5) != 0 {
		t.Fatal("out-of-range Prob must be 0")
	}
}

func TestInvalidArgsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 1) },
		func() { New(5, -1) },
		func() { New(5, math.NaN()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: CDF implied by Prob is non-decreasing and every sample respects
// the domain for arbitrary skews.
func TestSamplerProperty(t *testing.T) {
	f := func(nRaw uint8, skewRaw uint8, seed int64) bool {
		n := int(nRaw%64) + 1
		skew := float64(skewRaw%50) / 10
		s := New(n, skew)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			k := s.Sample(rng)
			if k < 0 || k >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
