package window

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

// refWindow is a trivial reference implementation with the pre-ring-buffer
// semantics: a sorted slice with per-bucket scan deletion. The optimized
// Window must behave identically operation by operation.
type refWindow struct {
	items []*stream.Tuple
	idx   map[float64][]*stream.Tuple
	attr  int
}

func newRef(attr int) *refWindow {
	return &refWindow{idx: map[float64][]*stream.Tuple{}, attr: attr}
}

func (r *refWindow) insert(t *stream.Tuple) {
	i := sort.Search(len(r.items), func(i int) bool {
		if r.items[i].TS != t.TS {
			return r.items[i].TS > t.TS
		}
		return r.items[i].Seq > t.Seq
	})
	r.items = append(r.items, nil)
	copy(r.items[i+1:], r.items[i:])
	r.items[i] = t
	k := t.Attr(r.attr)
	r.idx[k] = append(r.idx[k], t)
}

func (r *refWindow) expire(bound stream.Time) int {
	n := sort.Search(len(r.items), func(i int) bool { return r.items[i].TS >= bound })
	for _, t := range r.items[:n] {
		k := t.Attr(r.attr)
		lst := r.idx[k]
		for j, cand := range lst {
			if cand == t {
				lst[j] = lst[len(lst)-1]
				lst = lst[:len(lst)-1]
				break
			}
		}
		if len(lst) == 0 {
			delete(r.idx, k)
		} else {
			r.idx[k] = lst
		}
	}
	r.items = append(r.items[:0], r.items[n:]...)
	return n
}

// TestDifferentialAgainstReference replays random disordered batches through
// the ring-buffer Window and the reference implementation, asserting
// identical All()/Match()/Expire() behavior after every operation.
func TestDifferentialAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := New(50, 0)
		r := newRef(0)
		var seq uint64
		var bound stream.Time
		for op := 0; op < 500; op++ {
			if rng.Intn(4) == 0 {
				// Expire with a mostly-advancing bound, as Alg. 2 produces.
				bound += stream.Time(rng.Intn(20))
				if w.Expire(bound) != r.expire(bound) {
					t.Logf("seed %d op %d: expire count mismatch", seed, op)
					return false
				}
			} else {
				// Mostly-ordered input with out-of-order residue, mirroring
				// the Synchronizer's output.
				ts := bound + stream.Time(rng.Intn(60))
				tp := &stream.Tuple{TS: ts, Seq: seq, Attrs: []float64{float64(rng.Intn(7))}}
				seq++
				w.Insert(tp)
				r.insert(tp)
			}
			if !sameTuples(w.All(), r.items) {
				t.Logf("seed %d op %d: All() mismatch", seed, op)
				return false
			}
			for key := 0; key < 7; key++ {
				if !sameSet(w.Match(0, float64(key)), r.idx[float64(key)]) {
					t.Logf("seed %d op %d: Match(%d) mismatch", seed, op, key)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialLateInserts stresses the left-shift path: many inserts far
// behind the watermark after the head has advanced.
func TestDifferentialLateInserts(t *testing.T) {
	w := New(1000, 0)
	r := newRef(0)
	var seq uint64
	push := func(ts stream.Time) {
		tp := &stream.Tuple{TS: ts, Seq: seq, Attrs: []float64{float64(ts % 5)}}
		seq++
		w.Insert(tp)
		r.insert(tp)
	}
	for i := 0; i < 300; i++ {
		push(stream.Time(i * 10))
	}
	w.Expire(1500)
	r.expire(1500)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		// Late tuples land throughout the live region, including right at
		// the head.
		push(1500 + stream.Time(rng.Intn(1500)))
		if !sameTuples(w.All(), r.items) {
			t.Fatalf("late insert %d diverged", i)
		}
	}
	if w.Expire(4000) != r.expire(4000) {
		t.Fatal("expire count diverged after late inserts")
	}
	if !sameTuples(w.All(), r.items) {
		t.Fatal("content diverged after final expire")
	}
}

// TestCompactionPreservesContent slides a window long enough to trigger many
// compactions and checks content against the reference throughout.
func TestCompactionPreservesContent(t *testing.T) {
	w := New(100, 0)
	r := newRef(0)
	var seq uint64
	for i := 0; i < 20000; i++ {
		ts := stream.Time(i)
		tp := &stream.Tuple{TS: ts, Seq: seq, Attrs: []float64{float64(i % 13)}}
		seq++
		w.Insert(tp)
		r.insert(tp)
		if i%3 == 0 {
			if w.Expire(ts-100) != r.expire(ts-100) {
				t.Fatalf("expire mismatch at %d", i)
			}
		}
	}
	if !sameTuples(w.All(), r.items) {
		t.Fatal("content diverged")
	}
	// Memory must track live tuples: the backing array cannot exceed a small
	// multiple of the live region after this much sliding.
	if cap(w.buf) > 8*w.Len()+compactMinDead {
		t.Fatalf("backing array cap %d for %d live tuples — compaction not working", cap(w.buf), w.Len())
	}
}

// TestSteadyStateInsertExpireDoesNotAllocate pins the allocation-free hot
// path: sliding a warm window over in-order input with a recurring key
// domain must not allocate at all.
func TestSteadyStateInsertExpireDoesNotAllocate(t *testing.T) {
	w := New(1000, 0)
	var seq uint64
	var ts stream.Time
	mk := func() *stream.Tuple {
		tp := &stream.Tuple{TS: ts, Seq: seq, Attrs: []float64{float64(seq % 16)}}
		seq++
		ts += 10
		return tp
	}
	tuples := make([]*stream.Tuple, 0, 40000)
	for i := 0; i < 40000; i++ {
		tuples = append(tuples, mk())
	}
	i := 0
	// Warm up: reach the steady-state high-water mark.
	for ; i < 2000; i++ {
		w.Expire(tuples[i].TS - 1000)
		w.Insert(tuples[i])
	}
	allocs := testing.AllocsPerRun(100, func() {
		for j := 0; j < 100; j++ {
			w.Expire(tuples[i].TS - 1000)
			w.Insert(tuples[i])
			i++
		}
	})
	if allocs > 1 { // amortized growth may rarely trip; ~0 is the target
		t.Fatalf("steady-state insert/expire allocated %v times per run", allocs)
	}
}

// TestDifferentialRangeIndex replays random disordered batches through a
// Window with a sorted range index and checks MatchRange/CountRange against
// a linear scan of the reference content, including NaN attribute values
// (never range-matched) and duplicate timestamps at the expiry edge.
func TestDifferentialRangeIndex(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := NewIndexed(50, nil, []int{0})
		r := newRef(0)
		var seq uint64
		var bound stream.Time
		for op := 0; op < 500; op++ {
			if rng.Intn(4) == 0 {
				bound += stream.Time(rng.Intn(20))
				if w.Expire(bound) != r.expire(bound) {
					t.Logf("seed %d op %d: expire count mismatch", seed, op)
					return false
				}
			} else {
				// Duplicate timestamps right at the expiry bound are common:
				// rng.Intn(60) == 0 pins the tuple to the boundary.
				ts := bound + stream.Time(rng.Intn(60))
				attr := float64(rng.Intn(9)) / 2
				if rng.Intn(20) == 0 {
					attr = math.NaN()
				}
				tp := &stream.Tuple{TS: ts, Seq: seq, Attrs: []float64{attr}}
				seq++
				w.Insert(tp)
				r.insert(tp)
			}
			for probe := 0; probe < 4; probe++ {
				lo := float64(rng.Intn(10))/2 - 0.5
				hi := lo + float64(rng.Intn(5))/2
				var want []*stream.Tuple
				for _, tp := range r.items {
					if v := tp.Attr(0); v >= lo && v <= hi {
						want = append(want, tp)
					}
				}
				got := w.MatchRange(0, lo, hi)
				if len(got) != len(want) || w.CountRange(0, lo, hi) != len(want) {
					t.Logf("seed %d op %d: range [%v,%v] = %d tuples, want %d",
						seed, op, lo, hi, len(got), len(want))
					return false
				}
				if !sameSet(got, want) {
					t.Logf("seed %d op %d: range [%v,%v] content mismatch", seed, op, lo, hi)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestRangeIndexNaNProbe: NaN probe bounds must match nothing, and
// NaN-valued tuples must never appear in any range.
func TestRangeIndexNaNProbe(t *testing.T) {
	w := NewIndexed(100, nil, []int{0})
	w.Insert(&stream.Tuple{TS: 1, Seq: 0, Attrs: []float64{math.NaN()}})
	w.Insert(&stream.Tuple{TS: 2, Seq: 1, Attrs: []float64{3}})
	if got := w.MatchRange(0, math.NaN(), 10); len(got) != 0 {
		t.Fatal("NaN lo bound matched tuples")
	}
	if got := w.MatchRange(0, math.Inf(-1), math.Inf(1)); len(got) != 1 {
		t.Fatalf("full range matched %d tuples, want 1 (NaN excluded)", len(got))
	}
	// Expiring the NaN tuple must not disturb the index.
	w.Expire(2)
	if got := w.CountRange(0, 0, 10); got != 1 {
		t.Fatalf("after expiry CountRange = %d, want 1", got)
	}
}

func sameTuples(a, b []*stream.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameSet compares ignoring order: the old implementation scrambles bucket
// order differently than swap-delete does, and probe semantics are
// order-insensitive within a bucket.
func sameSet(a, b []*stream.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[*stream.Tuple]int{}
	for _, t := range a {
		seen[t]++
	}
	for _, t := range b {
		seen[t]--
		if seen[t] < 0 {
			return false
		}
	}
	return true
}
