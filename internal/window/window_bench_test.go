package window

import (
	"math/rand"
	"testing"

	"repro/internal/stream"
)

// benchTuples builds a mostly-ordered feed with the given out-of-order
// fraction (percent) and delay bound.
func benchTuples(n int, oooPct int, delay stream.Time) []*stream.Tuple {
	rng := rand.New(rand.NewSource(1))
	out := make([]*stream.Tuple, n)
	for i := range out {
		ts := stream.Time(i * 10)
		if oooPct > 0 && rng.Intn(100) < oooPct {
			d := stream.Time(rng.Int63n(int64(delay)))
			if d < ts {
				ts -= d
			}
		}
		out[i] = &stream.Tuple{TS: ts, Seq: uint64(i), Attrs: []float64{float64(i % 64)}}
	}
	return out
}

// BenchmarkInsertExpireSlide is the operator's steady-state pattern: expire
// to the sliding bound, then insert, on fully in-order input.
func BenchmarkInsertExpireSlide(b *testing.B) {
	const size = 10 * stream.Second
	tuples := benchTuples(1<<16, 0, 0)
	w := New(size, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := tuples[i&(1<<16-1)]
		if i&(1<<16-1) == 0 && i > 0 {
			b.StopTimer()
			w.Reset()
			b.StartTimer()
		}
		w.Expire(t.TS - size)
		w.Insert(t)
	}
}

// BenchmarkInsertOutOfOrder measures the binary-search fallback: 20% of
// tuples arrive up to 5 s late into a 10 s window.
func BenchmarkInsertOutOfOrder(b *testing.B) {
	const size = 10 * stream.Second
	tuples := benchTuples(1<<16, 20, 5*stream.Second)
	w := New(size, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := tuples[i&(1<<16-1)]
		if i&(1<<16-1) == 0 && i > 0 {
			b.StopTimer()
			w.Reset()
			b.StartTimer()
		}
		w.Expire(t.TS - size)
		w.Insert(t)
	}
}

// BenchmarkMatch measures a warm indexed probe.
func BenchmarkMatch(b *testing.B) {
	w := New(stream.Minute, 0)
	for _, t := range benchTuples(4096, 0, 0) {
		w.Insert(t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n += len(w.Match(0, float64(i%64)))
	}
	_ = n
}
