package window

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

func tup(ts stream.Time, key float64, seq uint64) *stream.Tuple {
	return &stream.Tuple{TS: ts, Seq: seq, Attrs: []float64{key}}
}

func TestInsertKeepsOrder(t *testing.T) {
	w := New(10)
	w.Insert(tup(5, 0, 0))
	w.Insert(tup(3, 0, 1))
	w.Insert(tup(7, 0, 2))
	w.Insert(tup(5, 0, 3)) // equal ts, later Seq → after the first ts-5
	all := w.All()
	wantTS := []stream.Time{3, 5, 5, 7}
	for i, want := range wantTS {
		if all[i].TS != want {
			t.Fatalf("All()[%d].TS = %d, want %d", i, all[i].TS, want)
		}
	}
	if all[1].Seq != 0 || all[2].Seq != 3 {
		t.Fatal("equal timestamps must keep arrival order")
	}
}

func TestExpire(t *testing.T) {
	w := New(10)
	for i := 0; i < 5; i++ {
		w.Insert(tup(stream.Time(i), 0, uint64(i)))
	}
	if n := w.Expire(3); n != 3 {
		t.Fatalf("Expire removed %d, want 3", n)
	}
	if w.Len() != 2 || w.All()[0].TS != 3 {
		t.Fatalf("window content wrong after expire: %v", w.All())
	}
	// Boundary: tuples with ts == bound stay (Alg. 2 removes ts < bound).
	if n := w.Expire(3); n != 0 {
		t.Fatalf("re-expire removed %d, want 0", n)
	}
}

func TestIndexMaintainedThroughExpire(t *testing.T) {
	w := New(10, 0)
	w.Insert(tup(1, 7, 0))
	w.Insert(tup(2, 7, 1))
	w.Insert(tup(3, 8, 2))
	if got := len(w.Match(0, 7)); got != 2 {
		t.Fatalf("Match(7) = %d, want 2", got)
	}
	w.Expire(2) // drops ts 1
	if got := len(w.Match(0, 7)); got != 1 {
		t.Fatalf("Match(7) after expire = %d, want 1", got)
	}
	if got := len(w.Match(0, 8)); got != 1 {
		t.Fatalf("Match(8) = %d, want 1", got)
	}
	w.Expire(100)
	if len(w.Match(0, 7)) != 0 || len(w.Match(0, 8)) != 0 {
		t.Fatal("index must be empty after full expiration")
	}
}

func TestMatchUnindexedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unindexed probe")
		}
	}()
	w := New(10)
	w.Match(0, 1)
}

func TestIndexed(t *testing.T) {
	w := New(10, 2)
	if !w.Indexed(2) || w.Indexed(0) {
		t.Fatal("Indexed reports wrong attributes")
	}
}

func TestReset(t *testing.T) {
	w := New(10, 0)
	w.Insert(tup(1, 5, 0))
	w.Reset()
	if w.Len() != 0 || len(w.Match(0, 5)) != 0 {
		t.Fatal("reset must clear content and indexes")
	}
}

// Property: after arbitrary interleavings of inserts and expires, the index
// agrees with a scan of the live content.
func TestIndexConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := New(50, 0)
		var seq uint64
		for i := 0; i < 300; i++ {
			if rng.Intn(4) == 0 {
				w.Expire(stream.Time(rng.Intn(200)))
				continue
			}
			w.Insert(tup(stream.Time(rng.Intn(200)), float64(rng.Intn(5)), seq))
			seq++
		}
		for key := 0; key < 5; key++ {
			scan := 0
			for _, e := range w.All() {
				if e.Attr(0) == float64(key) {
					scan++
				}
			}
			if scan != len(w.Match(0, float64(key))) {
				return false
			}
		}
		// Content must be ts-ordered.
		all := w.All()
		for i := 1; i < len(all); i++ {
			if all[i].TS < all[i-1].TS {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
