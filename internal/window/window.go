// Package window implements the time-based sliding window maintained by the
// MSWJ operator for each input stream (Sec. II-A).
//
// A window stores the tuples whose timestamps are still within the window
// scope, keeps them ordered by timestamp for cheap expiration, and maintains
// hash indexes on the attributes used by equi-join predicates so probing is
// O(matches) instead of O(window).
//
// Out-of-order tuples may be inserted behind the window head (lines 9–10 of
// Alg. 2), so insertion uses binary search rather than appending.
package window

import (
	"sort"

	"repro/internal/stream"
)

// Window is a time-based sliding window of size W over one input stream.
type Window struct {
	size    stream.Time
	items   []*stream.Tuple // ordered by (TS, Seq)
	indexes map[int]map[float64][]*stream.Tuple
}

// New creates a window of the given size with hash indexes on the listed
// attribute positions.
func New(size stream.Time, indexedAttrs ...int) *Window {
	w := &Window{size: size, indexes: map[int]map[float64][]*stream.Tuple{}}
	for _, a := range indexedAttrs {
		w.indexes[a] = map[float64][]*stream.Tuple{}
	}
	return w
}

// Size returns the window extent W in time units.
func (w *Window) Size() stream.Time { return w.size }

// Len returns the number of tuples currently held.
func (w *Window) Len() int { return len(w.items) }

// All returns the window content ordered by timestamp. The returned slice is
// the internal storage; callers must not mutate it.
func (w *Window) All() []*stream.Tuple { return w.items }

// Insert adds a tuple, keeping timestamp order. Duplicate timestamps keep
// arrival order via Seq.
func (w *Window) Insert(t *stream.Tuple) {
	i := sort.Search(len(w.items), func(i int) bool {
		if w.items[i].TS != t.TS {
			return w.items[i].TS > t.TS
		}
		return w.items[i].Seq > t.Seq
	})
	w.items = append(w.items, nil)
	copy(w.items[i+1:], w.items[i:])
	w.items[i] = t
	for attr, idx := range w.indexes {
		k := t.Attr(attr)
		idx[k] = append(idx[k], t)
	}
}

// Expire removes every tuple with TS < bound (line 6 of Alg. 2, with
// bound = e.ts − W of the arriving tuple) and returns how many were removed.
func (w *Window) Expire(bound stream.Time) int {
	n := sort.Search(len(w.items), func(i int) bool { return w.items[i].TS >= bound })
	if n == 0 {
		return 0
	}
	for _, t := range w.items[:n] {
		for attr, idx := range w.indexes {
			k := t.Attr(attr)
			lst := idx[k]
			for j, cand := range lst {
				if cand == t {
					lst[j] = lst[len(lst)-1]
					lst = lst[:len(lst)-1]
					break
				}
			}
			if len(lst) == 0 {
				delete(idx, k)
			} else {
				idx[k] = lst
			}
		}
	}
	w.items = append(w.items[:0], w.items[n:]...)
	return n
}

// Match returns the tuples whose indexed attribute equals key. It panics if
// the attribute was not registered at construction time, which is a planning
// bug rather than a data condition.
func (w *Window) Match(attr int, key float64) []*stream.Tuple {
	idx, ok := w.indexes[attr]
	if !ok {
		panic("window: probe on unindexed attribute")
	}
	return idx[key]
}

// Indexed reports whether attr has a hash index.
func (w *Window) Indexed(attr int) bool {
	_, ok := w.indexes[attr]
	return ok
}

// Reset drops all content but keeps the configuration.
func (w *Window) Reset() {
	w.items = w.items[:0]
	for attr := range w.indexes {
		w.indexes[attr] = map[float64][]*stream.Tuple{}
	}
}
