// Package window implements the time-based sliding window maintained by the
// MSWJ operator for each input stream (Sec. II-A).
//
// A window stores the tuples whose timestamps are still within the window
// scope, keeps them ordered by timestamp for cheap expiration, and maintains
// hash indexes on the attributes used by equi-join predicates so probing is
// O(matches) instead of O(window).
//
// # Hot-path design
//
// The window is the single hottest structure in the system: every in-order
// arrival expires and probes m−1 windows and inserts into one. Storage is a
// ring-style deque laid out in a plain slice: the live tuples are
// buf[head:], ordered by (TS, Seq).
//
//   - Insert append fast path: the operator's input is the Synchronizer's
//     output, which is mostly timestamp-ordered, so almost every insert lands
//     at the tail — a single append, amortized O(1), no shifting. The
//     invariant "buf[head:] sorted by (TS, Seq)" is preserved because the
//     fast path is taken exactly when the new tuple sorts ≥ the current tail.
//   - Out-of-order residue (tuples forwarded per lines 9–10 of Alg. 2) falls
//     back to binary search plus a memmove of whichever side of the insertion
//     point is shorter; when dead space exists in front of head the left side
//     shifts into it, so late tuples near the head stay cheap.
//   - Expire advances head instead of copying the tail, nil-ing the vacated
//     slots so expired tuples are released to the GC. When the dead prefix
//     outgrows the live region the buffer is compacted back to offset 0, so
//     memory tracks the live tuple count; the copy is amortized O(1) per
//     expired tuple.
//
// Hash-index maintenance is O(1) per tuple: each index keeps, besides its
// buckets, the position of every tuple inside its bucket, so expiration
// swap-deletes without scanning. The buckets live in an open-addressed
// table keyed by the attribute's float64 bit pattern with a multiplicative
// hash — profiling showed the runtime map's hashing dominating the probe
// path — and emptied buckets stay in place with their capacity until the
// next table growth recycles them, so steady-state sliding over a stable
// key domain allocates nothing.
package window

import (
	"math"
	"math/bits"
	"sort"

	"repro/internal/stream"
)

// compactMinDead is the minimum dead prefix before Expire considers
// compacting; it keeps tiny windows from copying eagerly.
const compactMinDead = 64

// Window is a time-based sliding window of size W over one input stream.
type Window struct {
	size    stream.Time
	buf     []*stream.Tuple // live region buf[head:], ordered by (TS, Seq)
	head    int
	indexes []index
}

// index is one hash index: buckets by attribute value plus each tuple's
// position in its bucket for O(1) swap-delete.
type index struct {
	attr int
	tab  table
	pos  map[*stream.Tuple]int
}

// New creates a window of the given size with hash indexes on the listed
// attribute positions.
func New(size stream.Time, indexedAttrs ...int) *Window {
	w := &Window{size: size}
	for _, a := range indexedAttrs {
		w.indexes = append(w.indexes, index{
			attr: a,
			tab:  newTable(),
			pos:  map[*stream.Tuple]int{},
		})
	}
	return w
}

// Size returns the window extent W in time units.
func (w *Window) Size() stream.Time { return w.size }

// Len returns the number of tuples currently held.
func (w *Window) Len() int { return len(w.buf) - w.head }

// All returns the window content ordered by timestamp. The returned slice is
// a view of the internal storage; callers must not mutate it and must not
// retain it across Insert/Expire calls.
func (w *Window) All() []*stream.Tuple { return w.buf[w.head:] }

// Insert adds a tuple, keeping timestamp order. Duplicate timestamps keep
// arrival order via Seq. A given *Tuple must be inserted at most once.
func (w *Window) Insert(t *stream.Tuple) {
	if n := len(w.buf); n == w.head || !stream.Less(t, w.buf[n-1]) {
		// Fast path: tuple sorts at (or ties with) the tail.
		w.buf = append(w.buf, t)
	} else {
		w.insertSlow(t)
	}
	for i := range w.indexes {
		w.indexes[i].add(t)
	}
}

// insertSlow places an out-of-order tuple by binary search, shifting the
// shorter side of the insertion point; dead space in front of head absorbs
// left shifts.
func (w *Window) insertSlow(t *stream.Tuple) {
	lo, n := w.head, len(w.buf)
	i := lo + sort.Search(n-lo, func(k int) bool { return stream.Less(t, w.buf[lo+k]) })
	if w.head > 0 && i-w.head <= n-i {
		copy(w.buf[w.head-1:i-1], w.buf[w.head:i])
		w.head--
		w.buf[i-1] = t
		return
	}
	w.buf = append(w.buf, nil)
	copy(w.buf[i+1:], w.buf[i:])
	w.buf[i] = t
}

// Expire removes every tuple with TS < bound (line 6 of Alg. 2, with
// bound = e.ts − W of the arriving tuple) and returns how many were removed.
func (w *Window) Expire(bound stream.Time) int {
	h := w.head
	for h < len(w.buf) && w.buf[h].TS < bound {
		t := w.buf[h]
		for i := range w.indexes {
			w.indexes[i].remove(t)
		}
		w.buf[h] = nil
		h++
	}
	n := h - w.head
	w.head = h
	if w.head >= compactMinDead && w.head >= len(w.buf)-w.head {
		w.compact()
	}
	return n
}

// compact moves the live region back to offset 0 so the backing array is
// bounded by ~2× the live high-water mark.
func (w *Window) compact() {
	live := copy(w.buf, w.buf[w.head:])
	tail := w.buf[live:]
	for i := range tail {
		tail[i] = nil
	}
	w.buf = w.buf[:live]
	w.head = 0
	// After a burst the backing array can dwarf the steady-state window;
	// reallocate so memory tracks live tuples.
	if cap(w.buf) >= 1024 && live < cap(w.buf)/4 {
		nb := make([]*stream.Tuple, live, 2*live)
		copy(nb, w.buf)
		w.buf = nb
	}
}

// Match returns the tuples whose indexed attribute equals key. It panics if
// the attribute was not registered at construction time, which is a planning
// bug rather than a data condition.
func (w *Window) Match(attr int, key float64) []*stream.Tuple {
	for i := range w.indexes {
		if w.indexes[i].attr == attr {
			b, ok := keyBits(key)
			if !ok {
				return nil // NaN never equi-matches
			}
			return w.indexes[i].tab.get(b)
		}
	}
	panic("window: probe on unindexed attribute")
}

// Indexed reports whether attr has a hash index.
func (w *Window) Indexed(attr int) bool {
	for i := range w.indexes {
		if w.indexes[i].attr == attr {
			return true
		}
	}
	return false
}

// Reset drops all content but keeps the configuration.
func (w *Window) Reset() {
	for i := range w.buf {
		w.buf[i] = nil
	}
	w.buf = w.buf[:0]
	w.head = 0
	for i := range w.indexes {
		w.indexes[i].tab = newTable()
		clear(w.indexes[i].pos)
	}
}

// keyBits canonicalizes a float64 attribute value for bit-pattern hashing:
// ±0 collapse to one key, and NaN (which never compares equal, so can never
// equi-match) reports !ok.
func keyBits(f float64) (uint64, bool) {
	if f == 0 {
		return 0, true
	}
	if f != f {
		return 0, false
	}
	return math.Float64bits(f), true
}

// add appends t to its bucket, recording its position.
func (ix *index) add(t *stream.Tuple) {
	k, ok := keyBits(t.Attr(ix.attr))
	if !ok {
		return
	}
	b := ix.tab.bucket(k)
	ix.pos[t] = len(*b)
	*b = append(*b, t)
}

// remove swap-deletes t from its bucket in O(1) using the recorded position.
// Emptied buckets keep their table slot and capacity; the next growth sweep
// drops them.
func (ix *index) remove(t *stream.Tuple) {
	k, ok := keyBits(t.Attr(ix.attr))
	if !ok {
		return
	}
	b := ix.tab.bucket(k)
	p := ix.pos[t]
	last := len(*b) - 1
	if p != last {
		moved := (*b)[last]
		(*b)[p] = moved
		ix.pos[moved] = p
	}
	(*b)[last] = nil
	*b = (*b)[:last]
	delete(ix.pos, t)
}

// table is an open-addressed hash map from canonical float64 key bits to
// tuple buckets: linear probing, fibonacci hashing, power-of-two capacity.
// It exists because the probe path does several lookups per tuple and the
// runtime map's generic float hashing dominated CPU profiles; a multiply
// and shift is an order of magnitude cheaper.
type table struct {
	keys  []uint64
	vals  [][]*stream.Tuple
	used  []bool
	n     int // occupied slots, including empty-bucket (dead) ones
	shift uint
}

const tableMinCap = 16

func newTable() table {
	return table{
		keys:  make([]uint64, tableMinCap),
		vals:  make([][]*stream.Tuple, tableMinCap),
		used:  make([]bool, tableMinCap),
		shift: 64 - 4,
	}
}

func (t *table) hash(bits uint64) uint64 {
	return (bits * 0x9E3779B97F4A7C15) >> t.shift
}

// get returns the bucket for bits, or nil if absent.
func (t *table) get(bits uint64) []*stream.Tuple {
	mask := uint64(len(t.keys) - 1)
	for i := t.hash(bits); ; i = (i + 1) & mask {
		if !t.used[i] {
			return nil
		}
		if t.keys[i] == bits {
			return t.vals[i]
		}
	}
}

// bucket returns a pointer to the bucket slot for bits, claiming a slot if
// the key is new. New buckets are pre-sized so the first few appends do not
// reallocate.
func (t *table) bucket(bits uint64) *[]*stream.Tuple {
	if (t.n+1)*4 >= len(t.keys)*3 {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	for i := t.hash(bits); ; i = (i + 1) & mask {
		if !t.used[i] {
			t.used[i] = true
			t.keys[i] = bits
			t.n++
			if t.vals[i] == nil {
				t.vals[i] = make([]*stream.Tuple, 0, 4)
			}
			return &t.vals[i]
		}
		if t.keys[i] == bits {
			return &t.vals[i]
		}
	}
}

// grow rehashes into a table sized for the live (non-empty) buckets at ≤50%
// load, dropping dead entries accumulated since the last sweep.
func (t *table) grow() {
	live := 0
	for i, u := range t.used {
		if u && len(t.vals[i]) > 0 {
			live++
		}
	}
	newCap := tableMinCap
	for newCap < 4*(live+1) {
		newCap *= 2
	}
	old := *t
	t.keys = make([]uint64, newCap)
	t.vals = make([][]*stream.Tuple, newCap)
	t.used = make([]bool, newCap)
	t.n = 0
	t.shift = 64 - uint(bits.TrailingZeros(uint(newCap)))
	mask := uint64(newCap - 1)
	for i, u := range old.used {
		if !u || len(old.vals[i]) == 0 {
			continue
		}
		for j := t.hash(old.keys[i]); ; j = (j + 1) & mask {
			if !t.used[j] {
				t.used[j] = true
				t.keys[j] = old.keys[i]
				t.vals[j] = old.vals[i]
				t.n++
				break
			}
		}
	}
}
