// Package window implements the time-based sliding window maintained by the
// MSWJ operator for each input stream (Sec. II-A).
//
// A window stores the tuples whose timestamps are still within the window
// scope, keeps them ordered by timestamp for cheap expiration, and maintains
// per-attribute indexes for the planner's lookup steps: hash indexes on the
// attributes used by equi-join predicates (probing is O(matches) instead of
// O(window)) and sorted range indexes on the attributes used by band
// predicates |S_l.a − S_r.a| ≤ ε (probing is O(log n + matches)). Both live
// in the shared internal/index package.
//
// # Hot-path design
//
// The window is the single hottest structure in the system: every in-order
// arrival expires and probes m−1 windows and inserts into one. Storage is a
// ring-style deque laid out in a plain slice: the live tuples are
// buf[head:], ordered by (TS, Seq).
//
//   - Insert append fast path: the operator's input is the Synchronizer's
//     output, which is mostly timestamp-ordered, so almost every insert lands
//     at the tail — a single append, amortized O(1), no shifting. The
//     invariant "buf[head:] sorted by (TS, Seq)" is preserved because the
//     fast path is taken exactly when the new tuple sorts ≥ the current tail.
//   - Out-of-order residue (tuples forwarded per lines 9–10 of Alg. 2) falls
//     back to binary search plus a memmove of whichever side of the insertion
//     point is shorter; when dead space exists in front of head the left side
//     shifts into it, so late tuples near the head stay cheap.
//   - Expire advances head instead of copying the tail, nil-ing the vacated
//     slots so expired tuples are released to the GC. When the dead prefix
//     outgrows the live region the buffer is compacted back to offset 0, so
//     memory tracks the live tuple count; the copy is amortized O(1) per
//     expired tuple.
//
// Index maintenance is O(1) per tuple for hash indexes (swap-delete via
// per-tuple positions) and O(log n) search + small memmove for range
// indexes; see internal/index for the cost model.
package window

import (
	"repro/internal/index"
	"repro/internal/stream"
)

// compactMinDead is the minimum dead prefix before Expire considers
// compacting; it keeps tiny windows from copying eagerly.
const compactMinDead = 64

// Window is a time-based sliding window of size W over one input stream.
type Window struct {
	size   stream.Time
	buf    []*stream.Tuple // live region buf[head:], ordered by (TS, Seq)
	head   int
	hashes []hashIndex
	ranges []rangeIndex
}

// hashIndex is one equi index: buckets by the attribute's canonical float
// bits, swap-delete on expiry.
type hashIndex struct {
	attr int
	tab  *index.Hash[*stream.Tuple]
}

// rangeIndex is one band index: tuples in attribute order, range probes
// return contiguous views.
type rangeIndex struct {
	attr int
	tab  *index.Sorted[*stream.Tuple]
}

// New creates a window of the given size with hash indexes on the listed
// attribute positions.
func New(size stream.Time, hashAttrs ...int) *Window {
	return NewIndexed(size, hashAttrs, nil)
}

// NewIndexed creates a window with hash indexes on hashAttrs (equi
// predicates) and sorted range indexes on rangeAttrs (band predicates). An
// attribute may appear in both lists.
func NewIndexed(size stream.Time, hashAttrs, rangeAttrs []int) *Window {
	w := &Window{size: size}
	for _, a := range hashAttrs {
		w.hashes = append(w.hashes, hashIndex{attr: a, tab: index.NewHash[*stream.Tuple]()})
	}
	for _, a := range rangeAttrs {
		w.ranges = append(w.ranges, rangeIndex{attr: a, tab: &index.Sorted[*stream.Tuple]{}})
	}
	return w
}

// Size returns the window extent W in time units.
func (w *Window) Size() stream.Time { return w.size }

// Len returns the number of tuples currently held.
func (w *Window) Len() int { return len(w.buf) - w.head }

// All returns the window content ordered by timestamp. The returned slice is
// a view of the internal storage; callers must not mutate it and must not
// retain it across Insert/Expire calls.
func (w *Window) All() []*stream.Tuple { return w.buf[w.head:] }

// Insert adds a tuple, keeping timestamp order. Duplicate timestamps keep
// arrival order via Seq. A given *Tuple must be inserted at most once.
func (w *Window) Insert(t *stream.Tuple) {
	if n := len(w.buf); n == w.head || !stream.Less(t, w.buf[n-1]) {
		// Fast path: tuple sorts at (or ties with) the tail.
		w.buf = append(w.buf, t)
	} else {
		w.insertSlow(t)
	}
	for i := range w.hashes {
		if k, ok := index.KeyBits(t.Attr(w.hashes[i].attr)); ok {
			w.hashes[i].tab.Add(k, t)
		}
	}
	for i := range w.ranges {
		w.ranges[i].tab.Add(t.Attr(w.ranges[i].attr), t)
	}
}

// insertSlow places an out-of-order tuple by binary search, shifting the
// shorter side of the insertion point; dead space in front of head absorbs
// left shifts.
func (w *Window) insertSlow(t *stream.Tuple) {
	lo, n := w.head, len(w.buf)
	i := lo + searchTuples(w.buf[lo:], t)
	if w.head > 0 && i-w.head <= n-i {
		copy(w.buf[w.head-1:i-1], w.buf[w.head:i])
		w.head--
		w.buf[i-1] = t
		return
	}
	w.buf = append(w.buf, nil)
	copy(w.buf[i+1:], w.buf[i:])
	w.buf[i] = t
}

// searchTuples returns the insertion point of t in the (TS, Seq)-sorted
// slice s.
func searchTuples(s []*stream.Tuple, t *stream.Tuple) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if stream.Less(t, s[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Expire removes every tuple with TS < bound (line 6 of Alg. 2, with
// bound = e.ts − W of the arriving tuple) and returns how many were removed.
// The boundary convention is shared across the framework: the window scope
// at watermark onT is the closed interval [onT − W, onT], so a tuple with
// TS == bound is still in scope and "expired" means strictly older.
func (w *Window) Expire(bound stream.Time) int {
	h := w.head
	for h < len(w.buf) && w.buf[h].TS < bound {
		t := w.buf[h]
		for i := range w.hashes {
			if k, ok := index.KeyBits(t.Attr(w.hashes[i].attr)); ok {
				w.hashes[i].tab.Remove(k, t)
			}
		}
		for i := range w.ranges {
			w.ranges[i].tab.Remove(t.Attr(w.ranges[i].attr), t)
		}
		w.buf[h] = nil
		h++
	}
	n := h - w.head
	w.head = h
	if w.head >= compactMinDead && w.head >= len(w.buf)-w.head {
		w.compact()
	}
	return n
}

// compact moves the live region back to offset 0 so the backing array is
// bounded by ~2× the live high-water mark.
func (w *Window) compact() {
	live := copy(w.buf, w.buf[w.head:])
	tail := w.buf[live:]
	for i := range tail {
		tail[i] = nil
	}
	w.buf = w.buf[:live]
	w.head = 0
	// After a burst the backing array can dwarf the steady-state window;
	// reallocate so memory tracks live tuples.
	if cap(w.buf) >= 1024 && live < cap(w.buf)/4 {
		nb := make([]*stream.Tuple, live, 2*live)
		copy(nb, w.buf)
		w.buf = nb
	}
}

// Match returns the tuples whose indexed attribute equals key. It panics if
// the attribute has no hash index, which is a planning bug rather than a
// data condition.
func (w *Window) Match(attr int, key float64) []*stream.Tuple {
	for i := range w.hashes {
		if w.hashes[i].attr == attr {
			b, ok := index.KeyBits(key)
			if !ok {
				return nil // NaN never equi-matches
			}
			return w.hashes[i].tab.Get(b)
		}
	}
	panic("window: probe on unindexed attribute")
}

// MatchRange returns the tuples whose indexed attribute lies in [lo, hi] as
// a contiguous view in attribute order; callers must not mutate or retain it
// across Insert/Expire calls. It panics if the attribute has no range index.
// NaN bounds yield an empty range.
func (w *Window) MatchRange(attr int, lo, hi float64) []*stream.Tuple {
	for i := range w.ranges {
		if w.ranges[i].attr == attr {
			return w.ranges[i].tab.Range(lo, hi)
		}
	}
	panic("window: range probe on unindexed attribute")
}

// CountRange returns how many tuples have the indexed attribute in [lo, hi].
// It panics if the attribute has no range index.
func (w *Window) CountRange(attr int, lo, hi float64) int {
	for i := range w.ranges {
		if w.ranges[i].attr == attr {
			return w.ranges[i].tab.CountRange(lo, hi)
		}
	}
	panic("window: range count on unindexed attribute")
}

// HashIndex returns the hash index on attr, or nil when the attribute has
// none. It is the direct handle the compiled probe kernel resolves once at
// plan-compile time, so the per-probe index scan and KeyBits dispatch of
// Match disappear from the hot loop. The handle stays valid for the lifetime
// of the window (Reset keeps the index structures).
func (w *Window) HashIndex(attr int) *index.Hash[*stream.Tuple] {
	for i := range w.hashes {
		if w.hashes[i].attr == attr {
			return w.hashes[i].tab
		}
	}
	return nil
}

// RangeIndex returns the sorted range index on attr, or nil when the
// attribute has none; the band-probe counterpart of HashIndex.
func (w *Window) RangeIndex(attr int) *index.Sorted[*stream.Tuple] {
	for i := range w.ranges {
		if w.ranges[i].attr == attr {
			return w.ranges[i].tab
		}
	}
	return nil
}

// Indexed reports whether attr has a hash index.
func (w *Window) Indexed(attr int) bool {
	for i := range w.hashes {
		if w.hashes[i].attr == attr {
			return true
		}
	}
	return false
}

// RangeIndexed reports whether attr has a sorted range index.
func (w *Window) RangeIndexed(attr int) bool {
	for i := range w.ranges {
		if w.ranges[i].attr == attr {
			return true
		}
	}
	return false
}

// Reset drops all content but keeps the configuration.
func (w *Window) Reset() {
	for i := range w.buf {
		w.buf[i] = nil
	}
	w.buf = w.buf[:0]
	w.head = 0
	for i := range w.hashes {
		w.hashes[i].tab.Reset()
	}
	for i := range w.ranges {
		w.ranges[i].tab.Reset()
	}
}
