// Package adapt implements the Buffer-Size Manager of Fig. 2: at the end of
// every adaptation interval L it chooses the common K-slack buffer size k*
// for the next interval (the Same-K policy of Theorem 1 means one value
// serves all streams).
//
// The model-based policy follows Sec. IV: it estimates the recall γ(L,K)
// that buffer size K would produce (Eq. 3–5), optionally scaled by the
// learned delay–productivity selectivity ratio (Eq. 6, the NonEqSel
// strategy), derives the instant recall requirement Γ′ from the
// user-specified Γ via the Result-Size Monitor (Eq. 7), and searches for the
// minimum k* with γ(L,k*) ≥ Γ′ at granularity g (Alg. 3).
//
// The No-K-slack and Max-K-slack baselines of Sec. VI are provided as
// alternative policies.
package adapt

import (
	"math"
	"time"

	"repro/internal/profiler"
	"repro/internal/stream"
)

// Source supplies the per-input delay statistics the model-based policy
// reads: one cumulative delay distribution and Synchronizer buffer estimate
// per model input, plus the recent maximum delay bounding the Alg. 3 search.
// stats.Manager implements it directly (inputs = raw streams); the feedback
// runtime also implements it per decision scope, where an input may be a
// *group* of raw streams (e.g. the left side of a binary tree stage) whose
// distributions are merged. The seam keeps this package free of any
// dependency on how statistics are collected.
type Source interface {
	// CDF returns Pr[D_i ≤ d] over coarse g-buckets for model input i; nil
	// means "no delays observed" (all mass at zero).
	CDF(i int) []float64
	// KSync estimates the Synchronizer's implicit buffer for input i.
	KSync(i int) stream.Time
	// MaxDelayRecent returns MaxD^H over the inputs' recent histories.
	MaxDelayRecent() stream.Time
}

// ResultWindow is the Result-Size Monitor seam of the Γ′ derivation (Eq. 7):
// produced results and summed true-size estimates within the last P−L time
// units. monitor.Monitor implements it.
type ResultWindow interface {
	Produced() int64
	TrueEstimate() float64
}

// DelayTracker is the all-time maximum-delay seam of the Max-K-slack
// baseline. stats.Manager implements it.
type DelayTracker interface {
	MaxDelayAllTime() stream.Time
}

// Strategy selects how the selectivity under incomplete disorder handling is
// modeled (Sec. IV-B).
type Strategy int

const (
	// NonEqSel learns DPcorr from the join output and uses Eq. (6).
	NonEqSel Strategy = iota
	// EqSel assumes sel^on(K) = sel^on, i.e. a selectivity ratio of 1.
	EqSel
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	if s == EqSel {
		return "EqSel"
	}
	return "NonEqSel"
}

// Search selects the Alg. 3 algorithm used to find the minimum k* with
// γ(L,k*) ≥ Γ′.
type Search int

const (
	// LinearSearch is the paper's trial-and-error scan k* = 0, g, 2g, …
	LinearSearch Search = iota
	// BinarySearch probes O(log(MaxD^H/g)) candidates instead, exploiting
	// the monotonicity of γ(L,K) in K. The paper leaves "other algorithms
	// for searching for k*" as future work; this is the natural one. Under
	// NonEqSel the learned selectivity ratio can make the target function
	// locally non-monotone, in which case binary search still returns a
	// feasible k* but not necessarily the minimal one.
	BinarySearch
)

// String implements fmt.Stringer.
func (s Search) String() string {
	if s == BinarySearch {
		return "binary"
	}
	return "linear"
}

// Config carries the user requirements and system parameters of the
// framework (Table I).
type Config struct {
	Gamma float64     // Γ: required minimum recall γ(P)
	P     stream.Time // result-quality measurement period
	L     stream.Time // adaptation interval (L ≤ P)
	B     stream.Time // basic window size b
	G     stream.Time // K-search granularity g

	Strategy Strategy
	Search   Search

	// NoCalibration disables the Γ′ derivation of Eq. (7) and uses the raw
	// Γ as the instant requirement (ablation knob; the paper always
	// calibrates).
	NoCalibration bool
}

// Default system parameters from Sec. VI.
const (
	DefaultB = 10 * stream.Millisecond
	DefaultG = 10 * stream.Millisecond
)

// Normalize fills unset parameters with the paper's defaults and clamps
// inconsistent ones.
func (c Config) Normalize() Config {
	if c.P <= 0 {
		c.P = stream.Minute
	}
	if c.L <= 0 {
		c.L = stream.Second
	}
	if c.L > c.P {
		c.L = c.P
	}
	if c.B <= 0 {
		c.B = DefaultB
	}
	if c.G <= 0 {
		c.G = DefaultG
	}
	if c.Gamma < 0 {
		c.Gamma = 0
	}
	if c.Gamma > 1 {
		c.Gamma = 1
	}
	return c
}

// Policy decides the K-slack buffer size applied during the next adaptation
// interval. Decide is called once per interval with the interval's
// productivity snapshot.
type Policy interface {
	Name() string
	Decide(now stream.Time, snap *profiler.Snapshot) stream.Time
}

// NoK is the No-K-slack baseline: K_i = 0 for all streams, leaving only the
// Synchronizer to handle disorder.
type NoK struct{}

// Name implements Policy.
func (NoK) Name() string { return "No-K-slack" }

// Decide implements Policy.
func (NoK) Decide(stream.Time, *profiler.Snapshot) stream.Time { return 0 }

// MaxK is the Max-K-slack baseline [12]: K equals the maximum delay among
// all so-far-observed tuples from all streams.
type MaxK struct {
	Stats DelayTracker
}

// Name implements Policy.
func (MaxK) Name() string { return "Max-K-slack" }

// Decide implements Policy.
func (p MaxK) Decide(stream.Time, *profiler.Snapshot) stream.Time {
	return p.Stats.MaxDelayAllTime()
}

// Static applies a fixed buffer size; useful for tests and ablations.
type Static struct{ K stream.Time }

// Name implements Policy.
func (Static) Name() string { return "Static-K" }

// Decide implements Policy.
func (p Static) Decide(stream.Time, *profiler.Snapshot) stream.Time { return p.K }

// Model is the quality-driven, model-based policy of Alg. 3.
type Model struct {
	cfg     Config
	windows []stream.Time
	stats   Source
	mon     ResultWindow

	// instrumentation for Fig. 11 and the ablation benches
	steps      int64
	iterations int64
	adaptTime  time.Duration
	lastGammaP float64
	lastRecall float64
}

// NewModel creates the model-based policy. windows are the W_i of the model
// inputs (one per Source input).
func NewModel(cfg Config, windows []stream.Time, st Source, mon ResultWindow) *Model {
	return &Model{cfg: cfg.Normalize(), windows: windows, stats: st, mon: mon}
}

// Name implements Policy.
func (m *Model) Name() string { return "Model(" + m.cfg.Strategy.String() + ")" }

// Decide implements Policy: Alg. 3. Per-stream cumulative delay
// distributions are snapshotted once per decision so each candidate K
// evaluates in O(m·ΣW_i/b) with O(1) CDF lookups.
func (m *Model) Decide(now stream.Time, snap *profiler.Snapshot) stream.Time {
	return m.decide(now, snap, m.instantRequirement(snap))
}

// DecideShared is Decide with the instant requirement Γ′ supplied by the
// caller instead of derived from this model's own monitor seam. The
// feedback runtime's per-stage mode uses it: the requirement is derived
// once, at the root decision scope (whose monitor window sees the final
// results), and every stage then searches its own k* against that shared
// target. Deriving Γ′ per stage would divide the root-produced result count
// by stage-local true-size estimates — incoherent for middle stages, whose
// intermediate result sizes dwarf the final output's.
func (m *Model) DecideShared(now stream.Time, snap *profiler.Snapshot, gammaPrime float64) stream.Time {
	return m.decide(now, snap, gammaPrime)
}

func (m *Model) decide(now stream.Time, snap *profiler.Snapshot, gammaPrime float64) stream.Time {
	start := time.Now()
	maxDH := m.stats.MaxDelayRecent()
	m.lastGammaP = gammaPrime
	ev := m.newEvaluator()

	var k stream.Time
	if m.cfg.Search == BinarySearch {
		k = m.searchBinary(ev, snap, gammaPrime, maxDH)
	} else {
		k = m.searchLinear(ev, snap, gammaPrime, maxDH)
	}
	if k > maxDH {
		k = maxDH
	}
	m.steps++
	m.adaptTime += time.Since(start)
	return k
}

// searchLinear is Alg. 3 as printed: scan k* = 0, g, 2g, … until the model
// meets the instant requirement or the maximum observed delay is exceeded.
func (m *Model) searchLinear(ev *evaluator, snap *profiler.Snapshot, gammaPrime float64, maxDH stream.Time) stream.Time {
	var k stream.Time
	for {
		m.iterations++
		r := ev.recall(k, snap)
		m.lastRecall = r
		if r >= gammaPrime || k > maxDH {
			return k
		}
		k += m.cfg.G
	}
}

// searchBinary finds the smallest multiple of g meeting the requirement
// with O(log) model evaluations.
func (m *Model) searchBinary(ev *evaluator, snap *profiler.Snapshot, gammaPrime float64, maxDH stream.Time) stream.Time {
	m.iterations++
	if r := ev.recall(0, snap); r >= gammaPrime {
		m.lastRecall = r
		return 0
	}
	m.iterations++
	if r := ev.recall(maxDH, snap); r < gammaPrime {
		m.lastRecall = r
		return maxDH
	}
	lo, hi := stream.Time(0), (maxDH+m.cfg.G-1)/m.cfg.G // in units of g; recall(hi·g) ≥ Γ′
	for lo+1 < hi {
		mid := (lo + hi) / 2
		m.iterations++
		r := ev.recall(mid*m.cfg.G, snap)
		m.lastRecall = r
		if r >= gammaPrime {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi * m.cfg.G
}

// evaluator caches, for one adaptation step, each stream's cumulative
// coarse-delay distribution and Synchronizer buffer estimate, so the Alg. 3
// search can probe many K candidates cheaply.
type evaluator struct {
	m     *Model
	cum   [][]float64 // cum[i][d] = Pr[D_i ≤ d]; nil means "no delays seen"
	ksync []stream.Time
	den   float64 // Σ_i Π_{j≠i} W_j, constant across K
}

func (m *Model) newEvaluator() *evaluator {
	n := len(m.windows)
	ev := &evaluator{m: m, cum: make([][]float64, n), ksync: make([]stream.Time, n)}
	for i := 0; i < n; i++ {
		ev.cum[i] = m.stats.CDF(i)
		ev.ksync[i] = m.stats.KSync(i)
	}
	for i := 0; i < n; i++ {
		p := 1.0
		for j := 0; j < n; j++ {
			if j != i {
				p *= float64(m.windows[j])
			}
		}
		ev.den += p
	}
	return ev
}

// cdf returns Pr[D_i ≤ d] in O(1).
func (ev *evaluator) cdf(i, d int) float64 {
	if d < 0 {
		return 0
	}
	c := ev.cum[i]
	if len(c) == 0 || d >= len(c) {
		return 1
	}
	return c[d]
}

// recall evaluates γ(L,K) per Eq. (5).
func (ev *evaluator) recall(k stream.Time, snap *profiler.Snapshot) float64 {
	m := ev.m
	n := len(m.windows)
	effW := make([]float64, n)
	fdk0 := make([]float64, n)
	for i := 0; i < n; i++ {
		shift := int((k + ev.ksync[i]) / m.cfg.G)
		fdk0[i] = ev.cdf(i, shift)
		effW[i] = ev.effectiveWindow(i, shift)
	}
	var num float64
	for i := 0; i < n; i++ {
		pn := fdk0[i]
		for j := 0; j < n; j++ {
			if j != i {
				pn *= effW[j]
			}
		}
		num += pn
	}
	if ev.den == 0 {
		return 1
	}
	gamma := num / ev.den
	if m.cfg.Strategy == NonEqSel && snap != nil {
		gamma *= snap.SelRatio(k)
	}
	if gamma > 1 {
		gamma = 1
	}
	if math.IsNaN(gamma) || gamma < 0 {
		gamma = 0
	}
	return gamma
}

// effectiveWindow evaluates Σ_l |w^l_j| / r_j (Eq. 3) with O(1) lookups.
func (ev *evaluator) effectiveWindow(j, shift int) float64 {
	m := ev.m
	w := m.windows[j]
	b := m.cfg.B
	if b > w {
		b = w
	}
	n := int((w + b - 1) / b)
	var sum float64
	for l := 1; l <= n; l++ {
		width := b
		if l == n {
			width = w - stream.Time(n-1)*b
		}
		d := int(stream.Time(l-1) * b / m.cfg.G)
		sum += float64(width) * ev.cdf(j, shift+d)
	}
	return sum
}

// instantRequirement derives Γ′ per Eq. (7) and applies it clamped to
// [Γ, 1]: calibration tightens the requirement when the recent past fell
// behind, but never relaxes it below the user's Γ. The paper prints the
// final requirement as "max{Γ′, 1}", which is degenerate as written (always
// 1 ⇒ Max-K-slack); we read it as max{Γ′, Γ}. Allowing relaxation below Γ
// (min{Γ′,1}) makes the controller ride the Γ threshold from below and
// destroys Φ(Γ) — see DESIGN.md §4. When calibration is disabled or no
// statistics exist yet, the raw Γ is used.
func (m *Model) instantRequirement(snap *profiler.Snapshot) float64 {
	if m.cfg.NoCalibration || snap == nil {
		return m.cfg.Gamma
	}
	trueL := snap.TrueResults()
	if trueL <= 0 {
		return m.cfg.Gamma
	}
	prodPL := float64(m.mon.Produced())
	truePL := m.mon.TrueEstimate()
	gp := (m.cfg.Gamma*(truePL+trueL) - prodPL) / trueL
	if gp < m.cfg.Gamma {
		return m.cfg.Gamma
	}
	if gp > 1 {
		return 1
	}
	return gp
}

// EstimateRecall computes γ(L,K) per Eq. (5). It builds a fresh evaluator
// per call; loops over many K values should use Decide, which caches one.
func (m *Model) EstimateRecall(k stream.Time, snap *profiler.Snapshot) float64 {
	return m.newEvaluator().recall(k, snap)
}

// InstantRequirement exposes Γ′ computation for tests.
func (m *Model) InstantRequirement(snap *profiler.Snapshot) float64 {
	return m.instantRequirement(snap)
}

// AdaptStats reports instrumentation: number of adaptation steps, total
// model iterations across all searches, and cumulative wall-clock time spent
// inside Decide.
func (m *Model) AdaptStats() (steps, iterations int64, total time.Duration) {
	return m.steps, m.iterations, m.adaptTime
}

// LastGammaPrime returns the most recently derived instant requirement.
func (m *Model) LastGammaPrime() float64 { return m.lastGammaP }
