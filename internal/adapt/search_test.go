package adapt

import (
	"math/rand"
	"testing"

	"repro/internal/stream"
)

// TestBinarySearchMatchesLinear: under the monotone EqSel model, binary and
// linear search must agree exactly for random delay profiles.
func TestBinarySearchMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		frac := 0.1 + 0.6*rng.Float64()
		d := stream.Time(50 + rng.Intn(400))
		st := buildStats(2, 10, frac, d, 1500)
		gamma := []float64{0.5, 0.8, 0.9, 0.95, 0.99, 0.999}[rng.Intn(6)]

		lin, _ := modelWith(st, []stream.Time{5000, 5000},
			Config{Gamma: gamma, NoCalibration: true, Search: LinearSearch})
		bin, _ := modelWith(st, []stream.Time{5000, 5000},
			Config{Gamma: gamma, NoCalibration: true, Search: BinarySearch})
		kl := lin.Decide(0, nil)
		kb := bin.Decide(0, nil)
		if kl != kb {
			t.Fatalf("trial %d (Γ=%v frac=%.2f d=%d): linear %d vs binary %d",
				trial, gamma, frac, d, kl, kb)
		}
	}
}

// TestBinarySearchFewerIterations: the point of the extension — far fewer
// model evaluations per adaptation step when k* is large.
func TestBinarySearchFewerIterations(t *testing.T) {
	st := buildStats(2, 10, 0.5, 2000, 3000)
	lin, _ := modelWith(st, []stream.Time{5000, 5000},
		Config{Gamma: 0.999, NoCalibration: true, G: 10, Search: LinearSearch})
	bin, _ := modelWith(st, []stream.Time{5000, 5000},
		Config{Gamma: 0.999, NoCalibration: true, G: 10, Search: BinarySearch})
	lin.Decide(0, nil)
	bin.Decide(0, nil)
	_, li, _ := lin.AdaptStats()
	_, bi, _ := bin.AdaptStats()
	if li < 10*bi {
		t.Fatalf("binary search should cut iterations ≥10×: linear %d vs binary %d", li, bi)
	}
}

// TestBinarySearchBoundaries: degenerate requirements hit the boundary fast.
func TestBinarySearchBoundaries(t *testing.T) {
	st := buildStats(2, 10, 0.4, 300, 1000)
	zero, _ := modelWith(st, []stream.Time{5000, 5000},
		Config{Gamma: 0, NoCalibration: true, Search: BinarySearch})
	if k := zero.Decide(0, nil); k != 0 {
		t.Fatalf("Γ=0 binary search returned %d", k)
	}
	one, _ := modelWith(st, []stream.Time{5000, 5000},
		Config{Gamma: 1, NoCalibration: true, Search: BinarySearch})
	if k := one.Decide(0, nil); k > 300 {
		t.Fatalf("Γ=1 binary search exceeded MaxDH: %d", k)
	}
}

// TestSearchString covers the Stringer.
func TestSearchString(t *testing.T) {
	if LinearSearch.String() != "linear" || BinarySearch.String() != "binary" {
		t.Fatal("Search.String")
	}
}
