package adapt

import (
	"math"
	"testing"

	"repro/internal/monitor"
	"repro/internal/profiler"
	"repro/internal/stats"
	"repro/internal/stream"
)

// buildStats observes a synthetic delay pattern: frac of tuples delayed by
// (approximately) d, the rest punctual, interleaved so the delays are
// actually visible as disorder.
func buildStats(m int, g stream.Time, frac float64, d stream.Time, n int) *stats.Manager {
	st := stats.NewManager(m, g, stats.WithFixedHistory(n*2))
	ts := stream.Time(1000 + d)
	late := int(frac * 100)
	for i := 0; i < n; i++ {
		ts += 10
		for s := 0; s < m; s++ {
			// A punctual tuple advances iT; an extra late tuple then has
			// delay exactly d.
			st.Observe(&stream.Tuple{TS: ts, Src: s})
			if i%100 < late {
				st.Observe(&stream.Tuple{TS: ts - d, Src: s})
			}
		}
	}
	return st
}

func modelWith(st *stats.Manager, windows []stream.Time, cfg Config) (*Model, *monitor.Monitor) {
	cfg = cfg.Normalize()
	mon := monitor.New(cfg.P-cfg.L, int((cfg.P-cfg.L)/cfg.L))
	return NewModel(cfg, windows, st, mon), mon
}

func TestConfigNormalize(t *testing.T) {
	c := Config{}.Normalize()
	if c.P != stream.Minute || c.L != stream.Second || c.B != DefaultB || c.G != DefaultG {
		t.Fatalf("defaults wrong: %+v", c)
	}
	c = Config{L: 2 * stream.Minute, P: stream.Minute, Gamma: 2}.Normalize()
	if c.L != c.P {
		t.Fatal("L must clamp to P")
	}
	if c.Gamma != 1 {
		t.Fatal("Gamma must clamp to 1")
	}
}

// TestRecallMonotoneInK: more buffering can only raise estimated recall.
func TestRecallMonotoneInK(t *testing.T) {
	st := buildStats(2, 10, 0.3, 200, 2000)
	m, _ := modelWith(st, []stream.Time{5000, 5000}, Config{Gamma: 0.95, Strategy: EqSel})
	prev := -1.0
	for k := stream.Time(0); k <= 300; k += 10 {
		r := m.EstimateRecall(k, nil)
		if r < prev-1e-9 {
			t.Fatalf("recall decreased at K=%d: %v < %v", k, r, prev)
		}
		prev = r
	}
}

// TestRecallOneWhenNoDisorder: punctual streams need no buffer.
func TestRecallOneWhenNoDisorder(t *testing.T) {
	st := buildStats(2, 10, 0, 0, 500)
	m, _ := modelWith(st, []stream.Time{5000, 5000}, Config{Gamma: 0.99})
	if r := m.EstimateRecall(0, nil); r < 0.999 {
		t.Fatalf("recall at K=0 with no disorder = %v, want ≈1", r)
	}
}

// TestRecallFullBufferReachesOne: K covering the max delay yields ≈1.
func TestRecallFullBufferReachesOne(t *testing.T) {
	st := buildStats(2, 10, 0.4, 150, 2000)
	m, _ := modelWith(st, []stream.Time{5000, 5000}, Config{})
	if r := m.EstimateRecall(150, nil); r < 0.999 {
		t.Fatalf("recall at K=maxdelay = %v, want ≈1", r)
	}
}

// TestDecideFindsMinimalK: the Alg. 3 search returns (approximately) the
// smallest K meeting the requirement.
func TestDecideFindsMinimalK(t *testing.T) {
	st := buildStats(2, 10, 0.3, 200, 2000)
	cfg := Config{Gamma: 0.9, Strategy: EqSel, NoCalibration: true, G: 10}
	m, _ := modelWith(st, []stream.Time{5000, 5000}, cfg)
	k := m.Decide(0, nil)
	if r := m.EstimateRecall(k, nil); r < 0.9 {
		t.Fatalf("decided K=%d gives recall %v < Γ", k, r)
	}
	if k >= 10 {
		if r := m.EstimateRecall(k-10, nil); r >= 0.9 {
			t.Fatalf("K=%d not minimal: K−g already gives %v", k, r)
		}
	}
	// With 30%% of tuples delayed by 200, meeting Γ=0.9 must need K>0...
	if k == 0 {
		t.Fatal("expected a positive buffer size")
	}
	// …and never more than the max observed delay.
	if k > 200 {
		t.Fatalf("K=%d exceeds max delay", k)
	}
}

// TestDecideGammaZero: a requirement of 0 should need no buffer.
func TestDecideGammaZero(t *testing.T) {
	st := buildStats(2, 10, 0.5, 100, 1000)
	cfg := Config{Gamma: 0, NoCalibration: true}
	m, _ := modelWith(st, []stream.Time{5000, 5000}, cfg)
	if k := m.Decide(0, nil); k != 0 {
		t.Fatalf("Γ=0 should decide K=0, got %d", k)
	}
}

// TestDecideRespectsMaxDH: even Γ=1 cannot push K beyond the observed max
// delay.
func TestDecideRespectsMaxDH(t *testing.T) {
	st := buildStats(2, 10, 0.5, 100, 1000)
	cfg := Config{Gamma: 1, NoCalibration: true}
	m, _ := modelWith(st, []stream.Time{5000, 5000}, cfg)
	if k := m.Decide(0, nil); k > 100 {
		t.Fatalf("K=%d beyond MaxDH=100", k)
	}
}

// TestGammaPrimeCalibration verifies the Eq. (7) derivation with the
// tighten-only clamp to [Γ, 1]: a surplus in the past P−L keeps the instant
// requirement at Γ (never relaxed below the user requirement), a deficit
// raises it toward 1.
func TestGammaPrimeCalibration(t *testing.T) {
	st := buildStats(2, 10, 0.3, 100, 500)
	cfg := Config{Gamma: 0.9, P: 10 * stream.Second, L: stream.Second}
	m, mon := modelWith(st, []stream.Time{5000, 5000}, cfg)

	prof := profiler.New(10)
	prof.RecordInOrder(0, 1000, 100) // N_true(L) = 100
	snap := prof.Snapshot()

	// Past perfect: produced == true over P−L.
	for i := 0; i < 9; i++ {
		mon.PushTrueEstimate(100)
	}
	mon.AddResults(5, 900)
	mon.Advance(6)
	gp := m.InstantRequirement(snap)
	// Raw Eq. (7): Γ·(900+100) − 900 = 0 → Γ′ = 0; the tighten-only clamp
	// floors the applied requirement at Γ.
	if gp != 0.9 {
		t.Fatalf("surplus history should clamp Γ′ at Γ, got %v", gp)
	}

	// Past deficit: produced 700 of 900 true (recall 0.78 < Γ).
	m2, mon2 := modelWith(st, []stream.Time{5000, 5000}, cfg)
	for i := 0; i < 9; i++ {
		mon2.PushTrueEstimate(100)
	}
	mon2.AddResults(5, 700)
	mon2.Advance(6)
	gp2 := m2.InstantRequirement(snap)
	// Γ′ = (0.9·1000 − 700)/100 = 2 → clamps to 1.
	if gp2 != 1 {
		t.Fatalf("deficit history should clamp Γ′ to 1, got %v", gp2)
	}
}

func TestInstantRequirementFallbacks(t *testing.T) {
	st := buildStats(2, 10, 0, 0, 100)
	cfg := Config{Gamma: 0.7, NoCalibration: true}
	m, _ := modelWith(st, []stream.Time{1000, 1000}, cfg)
	if gp := m.InstantRequirement(nil); gp != 0.7 {
		t.Fatalf("NoCalibration must return raw Γ, got %v", gp)
	}
	cfg2 := Config{Gamma: 0.7}
	m2, _ := modelWith(st, []stream.Time{1000, 1000}, cfg2)
	empty := profiler.New(10).Snapshot()
	if gp := m2.InstantRequirement(empty); gp != 0.7 {
		t.Fatalf("empty snapshot must fall back to Γ, got %v", gp)
	}
}

// TestNonEqSelUsesSnapshot: the NonEqSel strategy must scale the estimate by
// the learned selectivity ratio.
func TestNonEqSelUsesSnapshot(t *testing.T) {
	st := buildStats(2, 10, 0.3, 100, 1000)
	prof := profiler.New(10)
	// Enough samples to clear the profiler's minimum-sample guard.
	for i := 0; i < 20; i++ {
		prof.RecordInOrder(0, 10, 1)   // punctual: low productivity
		prof.RecordInOrder(100, 10, 9) // late: high productivity
	}
	snap := prof.Snapshot()

	mEq, _ := modelWith(st, []stream.Time{5000, 5000}, Config{Strategy: EqSel})
	mNe, _ := modelWith(st, []stream.Time{5000, 5000}, Config{Strategy: NonEqSel})
	rEq := mEq.EstimateRecall(0, snap)
	rNe := mNe.EstimateRecall(0, snap)
	if !(rNe < rEq) {
		t.Fatalf("NonEqSel should discount recall when late tuples are productive: %v vs %v", rNe, rEq)
	}
}

// TestBasicWindowConservatism: bigger b gives a more conservative (lower or
// equal) recall estimate, per the note below Eq. (4).
func TestBasicWindowConservatism(t *testing.T) {
	st := buildStats(2, 10, 0.4, 300, 2000)
	small, _ := modelWith(st, []stream.Time{5000, 5000}, Config{B: 10})
	big, _ := modelWith(st, []stream.Time{5000, 5000}, Config{B: 5000})
	for k := stream.Time(0); k <= 300; k += 50 {
		rs := small.EstimateRecall(k, nil)
		rb := big.EstimateRecall(k, nil)
		if rb > rs+1e-9 {
			t.Fatalf("B=W estimate %v exceeds B=10 estimate %v at K=%d", rb, rs, k)
		}
	}
}

func TestBaselinePolicies(t *testing.T) {
	st := buildStats(1, 10, 0.2, 50, 200)
	if (NoK{}).Decide(0, nil) != 0 {
		t.Fatal("NoK must always return 0")
	}
	maxk := MaxK{Stats: st}
	if got := maxk.Decide(0, nil); got != 50 {
		t.Fatalf("MaxK = %d, want 50", got)
	}
	if (Static{K: 33}).Decide(0, nil) != 33 {
		t.Fatal("Static must return its K")
	}
	names := []string{(NoK{}).Name(), maxk.Name(), (Static{}).Name()}
	for _, n := range names {
		if n == "" {
			t.Fatal("policy names must be non-empty")
		}
	}
}

func TestAdaptStatsInstrumentation(t *testing.T) {
	st := buildStats(2, 10, 0.3, 100, 500)
	m, _ := modelWith(st, []stream.Time{5000, 5000}, Config{Gamma: 0.99, NoCalibration: true})
	m.Decide(0, nil)
	steps, iters, dur := m.AdaptStats()
	if steps != 1 || iters < 1 || dur <= 0 {
		t.Fatalf("instrumentation: steps=%d iters=%d dur=%v", steps, iters, dur)
	}
	if math.IsNaN(m.LastGammaPrime()) {
		t.Fatal("LastGammaPrime must be set")
	}
}
