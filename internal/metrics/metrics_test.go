package metrics

import (
	"math"
	"testing"

	"repro/internal/oracle"
	"repro/internal/stream"
)

func TestRecallMeasure(t *testing.T) {
	truth := oracle.FromTimestamps([]stream.Time{10, 20, 30, 40})
	tr := NewRecallTracker(25, truth)
	tr.AddResult(20)
	tr.AddResult(30)
	// At now=40: window (15,40] has true {20,30,40}, produced {20,30}.
	r, ok := tr.Measure(40)
	if !ok || math.Abs(r-2.0/3) > 1e-12 {
		t.Fatalf("recall = %v ok=%v, want 2/3", r, ok)
	}
}

func TestRecallNoTruthInPeriod(t *testing.T) {
	truth := oracle.FromTimestamps([]stream.Time{1000})
	tr := NewRecallTracker(10, truth)
	if _, ok := tr.Measure(50); ok {
		t.Fatal("measurement with no true results must be invalid")
	}
}

func TestRecallClamped(t *testing.T) {
	truth := oracle.FromTimestamps([]stream.Time{10})
	tr := NewRecallTracker(100, truth)
	tr.AddResult(10)
	tr.AddResult(10) // duplicate (mismatched truth) would exceed 1
	r, ok := tr.Measure(50)
	if !ok || r != 1 {
		t.Fatalf("recall = %v, want clamp to 1", r)
	}
}

func TestAddResultOutOfOrderInsert(t *testing.T) {
	truth := oracle.FromTimestamps([]stream.Time{1, 2, 3})
	tr := NewRecallTracker(100, truth)
	tr.AddResult(3)
	tr.AddResult(1) // out-of-order insert path
	tr.AddResult(2)
	r, ok := tr.Measure(3)
	if !ok || r != 1 {
		t.Fatalf("recall = %v", r)
	}
	if tr.Produced() != 3 {
		t.Fatalf("Produced = %d", tr.Produced())
	}
}

func TestSeriesPhi(t *testing.T) {
	s := NewSeries(100)
	// First measurement at now=0 → everything before now=100 is warm-up.
	s.Add(0, 0.5)  // excluded
	s.Add(50, 0.2) // excluded
	s.Add(100, 0.95)
	s.Add(200, 0.90)
	s.Add(300, 0.80)
	pct, ok := s.Phi(0.9)
	if !ok || math.Abs(pct-200.0/3) > 1e-9 {
		t.Fatalf("Phi = %v ok=%v, want 66.7", pct, ok)
	}
	pct99, _ := s.Phi(0.9 * 0.99)
	if pct99 < pct {
		t.Fatal("Φ(.99Γ) must be at least Φ(Γ)")
	}
}

func TestSeriesEmptyPhi(t *testing.T) {
	s := NewSeries(100)
	if _, ok := s.Phi(0.9); ok {
		t.Fatal("empty series must report no Phi")
	}
	s.Add(0, 0.5) // warm-up only
	if _, ok := s.Phi(0.9); ok {
		t.Fatal("warm-up-only series must report no Phi")
	}
}

func TestSeriesMeanMin(t *testing.T) {
	s := NewSeries(10)
	s.Add(0, 0.1) // warm-up
	s.Add(10, 0.8)
	s.Add(20, 0.6)
	if math.Abs(s.Mean()-0.7) > 1e-12 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 0.6 {
		t.Fatalf("Min = %v", s.Min())
	}
}
