// Package metrics implements the evaluation metrics of Sec. VI: the
// period-based recall γ(P) measured against oracle ground truth, and the
// requirement-fulfillment percentages Φ(Γ) and Φ(.99Γ).
package metrics

import (
	"sort"

	"repro/internal/oracle"
	"repro/internal/stream"
)

// RecallTracker measures γ(P) of a produced result stream against the true
// results, at arbitrary points in logical time. It tracks per-timestamp
// result counts rather than materialized results, so it stays cheap even
// for joins with very large outputs.
type RecallTracker struct {
	p     stream.Time
	truth *oracle.Index

	ts     []stream.Time
	ns     []int64
	cum    []int64
	total  int64
	sorted bool
}

// NewRecallTracker creates a tracker for measurement period P.
func NewRecallTracker(p stream.Time, truth *oracle.Index) *RecallTracker {
	return &RecallTracker{p: p, truth: truth, sorted: true}
}

// AddResult records one produced result timestamp.
func (t *RecallTracker) AddResult(ts stream.Time) { t.AddResults(ts, 1) }

// AddResults records n produced results sharing timestamp ts. The framework
// emits counts with non-decreasing timestamps except for rare releases after
// a K shrink; out-of-order adds mark the tracker for re-sorting at the next
// measurement.
func (t *RecallTracker) AddResults(ts stream.Time, n int64) {
	if n <= 0 {
		return
	}
	if len(t.ts) > 0 && t.ts[len(t.ts)-1] > ts {
		t.sorted = false
	}
	t.ts = append(t.ts, ts)
	t.ns = append(t.ns, n)
	t.total += n
}

// Produced returns the total number of recorded results.
func (t *RecallTracker) Produced() int64 { return t.total }

// ensure re-sorts (rarely) and extends the prefix-sum cache.
func (t *RecallTracker) ensure() {
	if !t.sorted {
		idx := make([]int, len(t.ts))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return t.ts[idx[a]] < t.ts[idx[b]] })
		ts := make([]stream.Time, len(t.ts))
		ns := make([]int64, len(t.ns))
		for i, j := range idx {
			ts[i], ns[i] = t.ts[j], t.ns[j]
		}
		t.ts, t.ns = ts, ns
		t.cum = t.cum[:0]
		t.sorted = true
	}
	for len(t.cum) < len(t.ts) {
		i := len(t.cum)
		var prev int64
		if i > 0 {
			prev = t.cum[i-1]
		}
		t.cum = append(t.cum, prev+t.ns[i])
	}
}

// producedAt returns the number of produced results with timestamp ≤ x.
func (t *RecallTracker) producedAt(x stream.Time) int64 {
	i := sort.Search(len(t.ts), func(i int) bool { return t.ts[i] > x })
	if i == 0 {
		return 0
	}
	return t.cum[i-1]
}

// Measure returns γ(P) at logical time now: the fraction of true results
// with timestamps in (now−P, now] that were produced. ok is false when the
// period contains no true results, in which case the measurement is
// undefined and the paper-style evaluation skips it.
func (t *RecallTracker) Measure(now stream.Time) (recall float64, ok bool) {
	lo, hi := now-t.p, now
	trueN := t.truth.CountRange(lo, hi)
	if trueN == 0 {
		return 0, false
	}
	t.ensure()
	got := float64(t.producedAt(hi) - t.producedAt(lo))
	r := got / float64(trueN)
	if r > 1 {
		// Produced results can only be a subset of true results for a
		// correct pipeline; clamp defensively for callers that feed
		// mismatched truth.
		r = 1
	}
	return r, true
}

// Measurement is one γ(P) observation.
type Measurement struct {
	Now    stream.Time
	Recall float64
}

// Series accumulates γ(P) measurements taken right before each adaptation
// step and derives the paper's summary metrics.
type Series struct {
	P            stream.Time
	Measurements []Measurement
	firstNow     stream.Time
	haveFirst    bool
}

// NewSeries creates a measurement series for period P.
func NewSeries(p stream.Time) *Series { return &Series{P: p} }

// Add records one measurement.
func (s *Series) Add(now stream.Time, recall float64) {
	if !s.haveFirst {
		s.firstNow = now
		s.haveFirst = true
	}
	s.Measurements = append(s.Measurements, Measurement{Now: now, Recall: recall})
}

// usable filters out measurements taken during the first quality measurement
// period, which the paper excludes when computing Φ.
func (s *Series) usable() []Measurement {
	if !s.haveFirst {
		return nil
	}
	cut := s.firstNow + s.P
	out := make([]Measurement, 0, len(s.Measurements))
	for _, m := range s.Measurements {
		if m.Now >= cut {
			out = append(out, m)
		}
	}
	return out
}

// Phi returns Φ(γ): the percentage of usable γ(P) measurements that are not
// lower than threshold. ok is false if no usable measurements exist.
func (s *Series) Phi(threshold float64) (pct float64, ok bool) {
	ms := s.usable()
	if len(ms) == 0 {
		return 0, false
	}
	n := 0
	for _, m := range ms {
		if m.Recall >= threshold {
			n++
		}
	}
	return 100 * float64(n) / float64(len(ms)), true
}

// Mean returns the average of usable recall measurements.
func (s *Series) Mean() float64 {
	ms := s.usable()
	if len(ms) == 0 {
		return 0
	}
	sum := 0.0
	for _, m := range ms {
		sum += m.Recall
	}
	return sum / float64(len(ms))
}

// Min returns the minimum usable recall measurement, or 0 when empty.
func (s *Series) Min() float64 {
	ms := s.usable()
	if len(ms) == 0 {
		return 0
	}
	min := ms[0].Recall
	for _, m := range ms[1:] {
		if m.Recall < min {
			min = m.Recall
		}
	}
	return min
}
