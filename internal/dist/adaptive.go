// Adaptive drivers: the left-deep tree driven by the extracted feedback
// runtime (internal/feedback), closing the gap the paper's Sec. V leaves
// open — the distributed deployment previously ran with a fixed Same-K
// buffer only.
//
// Two policies are offered:
//
//   - Same-K (default): ONE decision scope spanning all m raw streams,
//     exactly the MJoin pipeline's quality-driven loop; the chosen K is
//     applied to every raw-input buffer of every stage. The root stage's
//     productivity records and final-result counts feed the loop.
//
//   - Per-stage K (PerStage): one decision scope PER BINARY STAGE. Stage
//     j's scope models the binary join of its two inputs — the merged delay
//     profile of the left subtree's raw streams [0..j] against raw stream
//     j+1, over windows [min_{i≤j} W_i, W_{j+1}] — fed by the stage's own
//     productivity records (stage-local selectivity). All scopes decide
//     against one instant requirement Γ′ derived at the ROOT scope, whose
//     Result-Size Monitor window sees the final results. The decided K_j
//     sizes the K-slack buffer of raw stream j+1 (and stream 0 for j = 0).
//     Stages whose inputs are nearly ordered thus buy almost no latency
//     while heavily disordered stages buy what the requirement needs —
//     strictly less total buffered delay than Same-K on asymmetric-delay
//     inputs (see DESIGN.md §8 for where this departs from Theorem 1).
package dist

import (
	"sync"

	"repro/internal/adapt"
	"repro/internal/feedback"
	"repro/internal/join"
	"repro/internal/stats"
	"repro/internal/stream"
)

// AdaptiveConfig configures a tree feedback loop.
type AdaptiveConfig struct {
	// Adapt carries Γ, P, L, b, g and the selectivity strategy.
	Adapt adapt.Config
	// PerStage selects one decision scope per binary stage; default is the
	// global Same-K scope.
	PerStage bool
	// Policy builds each scope's buffer-size policy; default is the
	// model-based quality-driven policy.
	Policy feedback.PolicyFactory
	// StatsOpts customizes the Statistics Manager.
	StatsOpts []stats.Option
	// InitialK is the buffer size until the first decision.
	InitialK stream.Time
	// OnDecide optionally observes every decision (boundary time and the
	// chosen per-scope Ks; the slice is reused — copy to retain).
	OnDecide func(at stream.Time, ks []stream.Time)
}

// stageScopes builds the per-stage decision scopes: scope j models stage
// j's binary join. The left input merges the raw streams bound in the
// stage's partials; its window extent is the minimum constituent window,
// matching the partial expiration deadline D = min_i (ts_i + W_i).
func stageScopes(windows []stream.Time) []feedback.Scope {
	n := len(windows) - 1
	scopes := make([]feedback.Scope, n)
	for j := 0; j < n; j++ {
		left := make([]int, j+1)
		wLeft := windows[0]
		for i := 0; i <= j; i++ {
			left[i] = i
			if windows[i] < wLeft {
				wLeft = windows[i]
			}
		}
		scopes[j] = feedback.Scope{
			Groups:  [][]int{left, {j + 1}},
			Windows: []stream.Time{wLeft, windows[j+1]},
		}
	}
	return scopes
}

// newTreeLoop builds the feedback loop for one tree run.
func newTreeLoop(windows []stream.Time, cfg AdaptiveConfig) *feedback.Loop {
	fcfg := feedback.Config{
		Windows:   windows,
		Adapt:     cfg.Adapt,
		Policy:    cfg.Policy,
		StatsOpts: cfg.StatsOpts,
		InitialK:  cfg.InitialK,
	}
	if cfg.PerStage {
		fcfg.Scopes = stageScopes(windows)
		fcfg.SharedRequirement = true
	}
	return feedback.New(fcfg)
}

// kApplier tracks how decided Ks map onto the tree's m raw-input buffers
// and accumulates the total buffered delay Σ_intervals Σ_buffers K — the
// tree's aggregate result-latency metric (per-stage K exists to shrink it).
type kApplier struct {
	perStage bool
	nStages  int
	scratch  []stream.Time
	sumBufK  float64
}

// stageKs expands a decision into the per-stage slice the executors apply
// and accumulates the buffered-delay sum. Stage 0 owns two raw buffers.
func (a *kApplier) stageKs(ks []stream.Time) []stream.Time {
	if a.scratch == nil {
		a.scratch = make([]stream.Time, a.nStages)
	}
	if a.perStage {
		copy(a.scratch, ks)
	} else {
		for j := range a.scratch {
			a.scratch[j] = ks[0]
		}
	}
	a.sumBufK += float64(a.scratch[0]) // stage 0's second buffer (stream 0)
	for _, k := range a.scratch {
		a.sumBufK += float64(k)
	}
	return a.scratch
}

// feedRouter routes stage productivity records into the loop — the single
// copy of the policy both drivers share. Under Same-K only the root stage
// feeds the single scope — its arrivals derive the final results, mirroring
// the MJoin operator's hook; under per-stage every stage feeds its own
// scope. Root-stage in-order result counts also feed the Result-Size
// Monitor: an in-order arrival's results all carry its own timestamp (no
// buffered candidate can exceed the stage watermark), so
// ObserveResult(ts, n^on) records exactly the per-result stream.
type feedRouter struct {
	loop     *feedback.Loop
	perStage bool
	root     int
}

func (r *feedRouter) route(stage int, ts, delay stream.Time, nCross, nOn int64, inOrder bool) {
	if stage == r.root && inOrder && nOn > 0 {
		r.loop.ObserveResult(ts, nOn)
	}
	scope := stage
	if !r.perStage {
		if stage != r.root {
			return
		}
		scope = 0
	}
	if inOrder {
		r.loop.RecordInOrder(scope, delay, nCross, nOn)
	} else {
		r.loop.RecordOutOfOrder(scope, delay)
	}
}

// AdaptiveTree is the synchronous tree with the quality-driven loop in the
// driver seat: every raw arrival feeds the Statistics Manager, stage
// productivity and final results feed the profilers and the Result-Size
// Monitor, and at every adaptation-interval boundary the loop re-decides
// the buffer size(s).
type AdaptiveTree struct {
	t    *Tree
	loop *feedback.Loop
	ka   kApplier
	fr   feedRouter
	cfg  AdaptiveConfig
}

// NewAdaptiveTree builds the adaptive synchronous tree. sink (optional)
// receives every complete result.
func NewAdaptiveTree(cond *join.Condition, windows []stream.Time, cfg AdaptiveConfig, sink func(Partial)) *AdaptiveTree {
	loop := newTreeLoop(windows, cfg)
	a := &AdaptiveTree{
		loop: loop,
		ka:   kApplier{perStage: cfg.PerStage, nStages: len(windows) - 1},
		fr:   feedRouter{loop: loop, perStage: cfg.PerStage, root: len(windows) - 2},
		cfg:  cfg,
	}
	a.t = NewTree(cond, windows, cfg.InitialK, sink)
	a.t.setProdHook(a.fr.route)
	return a
}

// Push feeds one raw arrival and runs any due adaptation step.
func (a *AdaptiveTree) Push(e *stream.Tuple) {
	now := a.loop.Observe(e)
	a.t.Push(e)
	if at, ok := a.loop.Boundary(now); ok {
		ks := a.loop.DecideAt(at, a.t.Watermark())
		a.t.SetStageK(a.ka.stageKs(ks))
		if a.cfg.OnDecide != nil {
			a.cfg.OnDecide(at, ks)
		}
	}
}

// Finish flushes the tree at end of input.
func (a *AdaptiveTree) Finish() { a.t.Finish() }

// Results returns the number of complete results produced so far.
func (a *AdaptiveTree) Results() int64 { return a.t.Results() }

// Tree returns the underlying executor.
func (a *AdaptiveTree) Tree() *Tree { return a.t }

// Loop exposes the feedback runtime (read-only use by callers).
func (a *AdaptiveTree) Loop() *feedback.Loop { return a.loop }

// BufferedDelaySum returns Σ over adaptation intervals of Σ over the m
// raw-input buffers of the applied K: the aggregate buffered delay the run
// paid. Per-stage K exists to make this strictly smaller than Same-K's on
// asymmetric-delay inputs.
func (a *AdaptiveTree) BufferedDelaySum() float64 { return a.ka.sumBufK }

// AdaptivePipelined drives the pipelined tree with the same loop. Stage
// goroutines feed productivity and result records concurrently, so the
// loop is guarded by a mutex and decisions see whatever records have
// arrived when the ingest goroutine crosses a boundary — adaptation is
// best-effort rather than deterministic (unlike AdaptiveTree), but result
// correctness is unaffected: K only moves the latency/recall trade-off.
// Buffer-size changes travel in-band through the stage channels, so each
// kslack buffer is only touched by its owning stage goroutine.
type AdaptivePipelined struct {
	p    *Pipelined
	loop *feedback.Loop
	ka   kApplier
	fr   feedRouter
	cfg  AdaptiveConfig

	mu sync.Mutex
	wm stream.Time // root-stage watermark, tracked via the hook
}

// NewAdaptivePipelined builds the adaptive pipelined tree; buffer sizes the
// inter-stage channels (≤ 0 selects a default).
func NewAdaptivePipelined(cond *join.Condition, windows []stream.Time, cfg AdaptiveConfig, buffer int) *AdaptivePipelined {
	loop := newTreeLoop(windows, cfg)
	a := &AdaptivePipelined{
		loop: loop,
		ka:   kApplier{perStage: cfg.PerStage, nStages: len(windows) - 1},
		fr:   feedRouter{loop: loop, perStage: cfg.PerStage, root: len(windows) - 2},
		cfg:  cfg,
	}
	a.p = NewPipelined(cond, windows, cfg.InitialK, buffer)
	a.p.setProdHook(a.onProcessed)
	return a
}

// onProcessed is the shared feedRouter under the loop mutex, plus
// root-watermark tracking (an in-order root event's ts IS the root onT).
func (a *AdaptivePipelined) onProcessed(stage int, ts, delay stream.Time, nCross, nOn int64, inOrder bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if stage == a.fr.root && inOrder && ts > a.wm {
		a.wm = ts
	}
	a.fr.route(stage, ts, delay, nCross, nOn, inOrder)
}

// Push feeds one raw arrival from the single producer goroutine and runs
// any due adaptation step.
func (a *AdaptivePipelined) Push(e *stream.Tuple) {
	a.mu.Lock()
	now := a.loop.Observe(e)
	a.mu.Unlock()
	a.p.Push(e)
	a.mu.Lock()
	at, ok := a.loop.Boundary(now)
	if !ok {
		a.mu.Unlock()
		return
	}
	ks := a.loop.DecideAt(at, a.wm)
	stageKs := append([]stream.Time(nil), a.ka.stageKs(ks)...)
	if a.cfg.OnDecide != nil {
		a.cfg.OnDecide(at, ks)
	}
	a.mu.Unlock()
	a.p.pushControl(stageKs)
}

// Close signals end of input; results keep flowing until Results closes.
func (a *AdaptivePipelined) Close() { a.p.Close() }

// Results returns the channel of complete results; drain it until it
// closes.
func (a *AdaptivePipelined) Results() <-chan Partial { return a.p.out }

// Wait blocks until every stage goroutine has exited; call after draining
// Results.
func (a *AdaptivePipelined) Wait() { a.p.Wait() }

// Loop exposes the feedback runtime. Do not call concurrently with a
// running ingest: the loop is shared with the stage goroutines.
func (a *AdaptivePipelined) Loop() *feedback.Loop { return a.loop }

// BufferedDelaySum returns the aggregate buffered delay; see
// AdaptiveTree.BufferedDelaySum.
func (a *AdaptivePipelined) BufferedDelaySum() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ka.sumBufK
}
