// Adaptive driver for the generalized plan tree: the same feedback runtime
// that drives AdaptiveTree, with the decision scopes derived from the
// deployment shape instead of the left-deep spine. Under per-stage
// adaptation, stage j's scope models the binary join of its two sub-plan
// inputs, and the shared instant requirement Γ′ composes along root-to-leaf
// paths: every raw leaf contributes one Γ′^(1/m) factor, charged to the
// stage whose K-slack buffer governs that leaf. On the spine this charges
// stage 0 two factors and every other stage one — a refinement of §8's
// uniform Γ′^(1/n) that extends to shapes where stages govern zero, one or
// two leaves (DESIGN §9). Stages with no leaf buffer get weight 0: the
// loop pins their K to 0, since no buffer would apply it — their input
// jitter is absorbed by the stage Synchronizer instead.
package dist

import (
	"repro/internal/feedback"
	"repro/internal/join"
	"repro/internal/stream"
)

// AdaptivePlanTree is the plan-tree executor with the quality-driven
// feedback loop in the driver seat. Unlike AdaptivePipelined, decisions
// stay deterministic even with sharded stages: every boundary quiesces the
// stage workers first (SyncBarrier), so the profilers see exactly the
// records a single-threaded run would have fed them.
type AdaptivePlanTree struct {
	t       *PlanTree
	loop    *feedback.Loop
	fr      feedRouter
	cfg     AdaptiveConfig
	sumBufK float64
}

// planScopes builds one decision scope per stage of the built tree, in the
// tree's post-order (the root scope last, as feedback requires), plus the
// Γ′ path weights: leaves-governed / m.
func planScopes(t *PlanTree) (scopes []feedback.Scope, weights []float64) {
	minWindow := func(streams []int) stream.Time {
		w := t.windows[streams[0]]
		for _, st := range streams[1:] {
			if t.windows[st] < w {
				w = t.windows[st]
			}
		}
		return w
	}
	for _, s := range t.stages {
		scopes = append(scopes, feedback.Scope{
			Groups:  [][]int{s.sideStreams[0], s.sideStreams[1]},
			Windows: []stream.Time{minWindow(s.sideStreams[0]), minWindow(s.sideStreams[1])},
		})
		weights = append(weights, float64(len(s.leafBufs))/float64(t.m))
	}
	return scopes, weights
}

// NewAdaptivePlanTree builds the adaptive plan-tree executor. sink
// (optional) receives every complete result.
func NewAdaptivePlanTree(cond *join.Condition, windows []stream.Time, shape *Shape, cfg AdaptiveConfig, sink func(Partial)) *AdaptivePlanTree {
	t := NewPlanTree(cond, windows, shape, cfg.InitialK, sink)
	fcfg := feedback.Config{
		Windows:   windows,
		Adapt:     cfg.Adapt,
		Policy:    cfg.Policy,
		StatsOpts: cfg.StatsOpts,
		InitialK:  cfg.InitialK,
	}
	if cfg.PerStage {
		fcfg.Scopes, fcfg.ScopeWeights = planScopes(t)
		fcfg.SharedRequirement = true
	}
	loop := feedback.New(fcfg)
	a := &AdaptivePlanTree{
		t:    t,
		loop: loop,
		fr:   feedRouter{loop: loop, perStage: cfg.PerStage, root: len(t.stages) - 1},
		cfg:  cfg,
	}
	t.setProdHook(a.fr.route)
	return a
}

// Push feeds one raw arrival and runs any due adaptation step.
func (a *AdaptivePlanTree) Push(e *stream.Tuple) {
	now := a.loop.Observe(e)
	a.t.Push(e)
	if at, ok := a.loop.Boundary(now); ok {
		a.t.SyncBarrier()
		ks := a.loop.DecideAt(at, a.t.Watermark())
		a.apply(ks)
		// Applying a smaller K releases buffered tuples into the tree, so
		// the pipeline is no longer empty after apply. Barrier again: the
		// boundary must be a fully quiesced point, so that a checkpoint
		// captured here (State quiesces) observes exactly the state every
		// uninterrupted run has — otherwise the capture's early probe
		// release would perturb the parent-side interleaving of the
		// continuing run (DESIGN.md §10).
		a.t.SyncBarrier()
		if a.cfg.OnDecide != nil {
			a.cfg.OnDecide(at, ks)
		}
	}
}

// apply maps the decided Ks onto the leaf buffers and accumulates the
// buffered-delay sum Σ_intervals Σ_buffers K.
func (a *AdaptivePlanTree) apply(ks []stream.Time) {
	if a.cfg.PerStage {
		a.t.SetStageK(ks)
		for _, s := range a.t.stages {
			a.sumBufK += float64(ks[s.id]) * float64(len(s.leafBufs))
		}
		return
	}
	a.t.SetK(ks[0])
	a.sumBufK += float64(ks[0]) * float64(a.t.m)
}

// Finish flushes the tree at end of input.
func (a *AdaptivePlanTree) Finish() { a.t.Finish() }

// Results returns the number of complete results produced so far.
func (a *AdaptivePlanTree) Results() int64 { return a.t.Results() }

// Tree returns the underlying executor.
func (a *AdaptivePlanTree) Tree() *PlanTree { return a.t }

// Loop exposes the feedback runtime (read-only use by callers).
func (a *AdaptivePlanTree) Loop() *feedback.Loop { return a.loop }

// BufferedDelaySum returns the aggregate buffered delay the run paid; see
// AdaptiveTree.BufferedDelaySum.
func (a *AdaptivePlanTree) BufferedDelaySum() float64 { return a.sumBufK }

// BufferedTuples returns the leaf-buffer occupancy (see
// PlanTree.BufferedTuples).
func (a *AdaptivePlanTree) BufferedTuples() int { return a.t.BufferedTuples() }

// ShedWorst evicts the buffered tuple with the lowest root-scope
// productivity score and accounts the drop with the feedback loop, so the
// run-level recall estimate reflects it. The root scope is the accounting
// layer for sheds wherever they happen: a tuple dropped at any leaf never
// reaches the root, and the root profiler's delay-productivity means are
// what estimate the complete results it would have contributed. Ties break
// toward the largest delay, then the first buffer position — deterministic,
// so shed decisions replay identically after a restore. Returns false when
// nothing is buffered.
func (a *AdaptivePlanTree) ShedWorst() bool {
	root := len(a.t.stages) - 1
	bi, bj := -1, -1
	var worstScore float64
	var worstDelay stream.Time
	for i, lf := range a.t.leaves {
		for j, e := range lf.ks.Items() {
			s := a.loop.Score(root, e.Delay)
			if bi < 0 || s < worstScore || (s == worstScore && e.Delay > worstDelay) {
				bi, bj, worstScore, worstDelay = i, j, s, e.Delay
			}
		}
	}
	if bi < 0 {
		return false
	}
	e := a.t.leaves[bi].ks.EvictAt(bj)
	a.loop.RecordShed(root, e.Delay)
	return true
}

// RecallEstimate exposes the loop's run-level recall estimate (produced
// over estimated-true results, shed losses included).
func (a *AdaptivePlanTree) RecallEstimate() float64 { return a.loop.RecallEstimate() }
