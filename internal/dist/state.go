// Checkpoint state of the plan-tree executors (DESIGN.md §10).
//
// What gets serialized is the minimal deterministic core: per-stage
// Synchronizer registers and buffered events, window CONTENTS in a
// canonical (ts, ord) order, and — on sharded stages — the router-side
// deadline multisets verbatim. Index layouts (hash buckets, sorted arrays,
// heap shapes) and per-worker window partitions are deliberately NOT
// serialized: Restore rebuilds them by re-insertion, and on sharded stages
// re-routes the canonical window contents through the deterministic
// partition function, which lands every event on exactly the workers it
// occupied before. The order-invariance argument of DESIGN.md §10 makes the
// rebuilt layouts result-equivalent.
//
// A tree checkpoint must be captured at a quiesced point — after
// SyncBarrier/Quiesce, which every adaptation boundary already performs.
// At such a point the probe-release pipeline is empty, so a restored tree
// (whose probe sequence restarts at zero) reproduces the release lag, the
// parent-side event interleavings, and hence the result multiset and the K
// trajectory of the uninterrupted run, bit-for-bit.
package dist

import (
	"sort"

	"repro/internal/fault"
	"repro/internal/feedback"
	"repro/internal/kslack"
	"repro/internal/stream"
)

// StageState is the serializable snapshot of one pstage.
type StageState struct {
	// Synchronizer registers (Alg. 1, m = 2).
	TSync  stream.Time
	Ord    uint64
	Counts [2]int
	Open   [2]bool
	// Buffered, not-yet-synchronized events in canonical (ts, ord) order.
	SyncBuf []fault.EventRec

	OnT stream.Time
	// Win holds the two window contents of an unsharded stage, canonical
	// (ts, ord) order; empty when the stage is sharded.
	Win [2][]fault.EventRec
	// Rings and ShWin hold a sharded stage's state: the router's global
	// deadline multisets (verbatim — they supply n×(e) and must survive
	// stale-entry differences exactly) and the global window contents,
	// deduplicated across band-replica copies and in canonical (ts, ord)
	// order.
	Rings [2][]stream.Time
	ShWin [2][]fault.EventRec
}

// TreeState is the serializable snapshot of a quiesced PlanTree.
type TreeState struct {
	Results int64
	Leaves  []kslack.State // by raw stream index
	Stages  []StageState   // post-order, matching PlanTree.stages
}

// eventRec converts an event to its serializable record, registering the
// constituent tuples with tt.
func eventRec(ev *event, tt *fault.TupleTable) fault.EventRec {
	r := fault.EventRec{
		TS:       ev.ts,
		Deadline: ev.deadline,
		Delay:    ev.delay,
		Ord:      ev.ord,
		Key:      ev.key,
		Right:    tt.ID(ev.right),
	}
	if ev.parts != nil {
		r.Parts = make([]int32, len(ev.parts))
		for i, t := range ev.parts {
			r.Parts[i] = tt.ID(t)
		}
	}
	return r
}

// recEvent rebuilds an event from its record.
func recEvent(r fault.EventRec, ta *fault.TupleArena) *event {
	ev := &event{
		ts:       r.TS,
		deadline: r.Deadline,
		delay:    r.Delay,
		ord:      r.Ord,
		key:      r.Key,
		right:    ta.Tuple(r.Right),
	}
	if r.Parts != nil {
		ev.parts = make([]*stream.Tuple, len(r.Parts))
		for i, id := range r.Parts {
			ev.parts[i] = ta.Tuple(id)
		}
	}
	return ev
}

// canonicalRecs copies evs, sorts them into (ts, ord) order — ord is unique
// within a stage, so the order is total — and converts them.
func canonicalRecs(evs []*event, tt *fault.TupleTable) []fault.EventRec {
	sorted := append([]*event(nil), evs...)
	sort.Slice(sorted, func(a, b int) bool { return eventLess(sorted[a], sorted[b]) })
	out := make([]fault.EventRec, len(sorted))
	for i, ev := range sorted {
		out[i] = eventRec(ev, tt)
	}
	return out
}

// State captures the tree's state. It quiesces the sharded stages first;
// for the capture to be bit-for-bit resumable the tree must already be at a
// release-pipeline-empty point — any adaptation boundary (after
// SyncBarrier) or before the first Push qualifies, and the supervised
// runtime only checkpoints there.
func (t *PlanTree) State(tt *fault.TupleTable) TreeState {
	if t.finished {
		panic("dist: State on a finished PlanTree")
	}
	t.Quiesce()
	st := TreeState{Results: t.results}
	st.Leaves = make([]kslack.State, len(t.leaves))
	for i, lf := range t.leaves {
		st.Leaves[i] = lf.ks.State(tt)
	}
	st.Stages = make([]StageState, len(t.stages))
	for i, s := range t.stages {
		ss := StageState{
			TSync:   s.tsync,
			Ord:     s.ord,
			Counts:  s.counts,
			Open:    s.open,
			OnT:     s.onT,
			SyncBuf: canonicalRecs(s.buf.Items(), tt),
		}
		if s.sh == nil {
			for sd := 0; sd < 2; sd++ {
				ss.Win[sd] = canonicalRecs(s.win[sd].heap.Items(), tt)
			}
		} else {
			for sd := 0; sd < 2; sd++ {
				ring := append([]stream.Time(nil), s.sh.rings[sd].Items()...)
				sort.Slice(ring, func(a, b int) bool { return ring[a] < ring[b] })
				ss.Rings[sd] = ring
				// Band replicas put the same event in several worker
				// windows; serialize the deduplicated global contents.
				seen := map[*event]bool{}
				var evs []*event
				for _, w := range s.sh.workers {
					for _, ev := range w.win[sd].heap.Items() {
						if !seen[ev] {
							seen[ev] = true
							evs = append(evs, ev)
						}
					}
				}
				ss.ShWin[sd] = canonicalRecs(evs, tt)
			}
		}
		st.Stages[i] = ss
	}
	return st
}

// Restore loads a captured state into a freshly constructed PlanTree (same
// condition, windows and shape). Unsharded windows are rebuilt by direct
// re-insertion — NOT through pstage.push, which would re-stamp arrival
// orders and re-run the Synchronizer. Sharded windows re-enter through the
// insert-only routing path under the restored stage watermark: routing is a
// pure function of the event key, so replicas land on the workers they
// occupied before, and the in-scope filter drops only entries that were
// already expired-but-unpurged — invisible to every future probe
// (DESIGN.md §10).
func (t *PlanTree) Restore(st TreeState, ta *fault.TupleArena) {
	t.results = st.Results
	for i, lf := range t.leaves {
		lf.ks.Restore(st.Leaves[i], ta)
	}
	for i, s := range t.stages {
		ss := st.Stages[i]
		s.tsync = ss.TSync
		s.ord = ss.Ord
		s.counts = ss.Counts
		s.open = ss.Open
		s.onT = ss.OnT
		for _, r := range ss.SyncBuf {
			s.buf.Push(recEvent(r, ta))
		}
		if s.sh == nil {
			for sd := 0; sd < 2; sd++ {
				for _, r := range ss.Win[sd] {
					s.win[sd].insert(recEvent(r, ta))
				}
			}
			continue
		}
		for sd := 0; sd < 2; sd++ {
			for _, d := range ss.Rings[sd] {
				s.sh.rings[sd].Push(d)
			}
			for _, r := range ss.ShWin[sd] {
				ev := recEvent(r, ta)
				owner := s.sh.route(ev, sd, s.onT, true)
				s.sh.workers[owner].ch <- pmsg{ev: ev, wm: s.onT, side: uint8(sd), kind: pmsgInsert}
			}
		}
	}
	// Wait for the re-routed inserts to land before accepting input.
	for _, s := range t.stages {
		if s.sh != nil {
			s.sh.insertBarrier()
		}
	}
}

// AdaptiveTreeState is the serializable snapshot of an AdaptivePlanTree:
// the tree plus the feedback runtime.
type AdaptiveTreeState struct {
	Tree    TreeState
	Loop    feedback.State
	SumBufK float64
}

// State captures the adaptive executor's state; the same quiesced-point
// contract as PlanTree.State applies.
func (a *AdaptivePlanTree) State(tt *fault.TupleTable) AdaptiveTreeState {
	return AdaptiveTreeState{
		Tree:    a.t.State(tt),
		Loop:    a.loop.State(),
		SumBufK: a.sumBufK,
	}
}

// Restore loads a captured state into a freshly constructed
// AdaptivePlanTree (same condition, windows, shape and config). The decided
// per-leaf buffer sizes live inside the kslack states, so no K re-apply is
// needed.
func (a *AdaptivePlanTree) Restore(st AdaptiveTreeState, ta *fault.TupleArena) {
	a.t.Restore(st.Tree, ta)
	a.loop.Restore(st.Loop)
	a.sumBufK = st.SumBufK
}

// SetInjector arms the deterministic fault injector on the underlying tree;
// call before the first Push.
func (a *AdaptivePlanTree) SetInjector(inj *fault.Injector) { a.t.SetInjector(inj) }

// Abandon stops the tree's shard workers without flushing or emitting — the
// teardown path for a crashed tree a supervisor is about to replace. Safe
// after a contained worker failure: drain-mode workers keep acknowledging
// barriers and exit when their channels close. It must not gate on
// t.finished: Finish sets that flag before its flush cascade, which can
// then panic on a pending worker failure — so Abandon always stops the
// shards, relying on the idempotent pshard stop. The tree counts as
// finished afterwards; further Push/Finish calls hit the lifecycle panics.
func (t *PlanTree) Abandon() {
	t.finished = true
	for _, s := range t.stages {
		if s.sh != nil {
			s.sh.stop()
		}
	}
}

// Abandon tears down the adaptive tree (see PlanTree.Abandon).
func (a *AdaptivePlanTree) Abandon() {
	a.loop.Close()
	a.t.Abandon()
}
