// Package dist executes an m-way MSWJ as a left-deep tree of binary join
// operators — the distributed deployment shape of Sec. V of the paper. Each
// binary stage is fronted by its own Synchronizer and applies the Same-K
// disorder handling: every raw input stream passes through a K-slack buffer
// with the common buffer size K before entering its stage.
//
// Stage j joins the partial results over streams [0..j] (its left input)
// with raw stream j+1 (its right input). A partial result carries, besides
// the constituent tuples, an expiration deadline
//
//	D = min_i (e_i.ts + W_i)
//
// — the logical time at which its earliest constituent falls out of its
// window. Expiring and probing by D rather than by the partial's (maximum)
// timestamp makes the tree produce exactly the results of the single
// MJoin-style operator whenever the buffers cover the input disorder: a
// partial is matchable precisely while every constituent is still inside
// its own window.
//
// Both a synchronous driver (Tree) and a pipelined one (Pipelined, one
// goroutine per stage connected by channels) are provided. They process
// stage inputs in identical order — the pipelined variant forwards raw
// tuples for later stages through the stage chain instead of routing them
// directly — so both produce identical results.
package dist

import (
	"sync"

	"repro/internal/fault"
	"repro/internal/index"
	"repro/internal/join"
	"repro/internal/kslack"
	"repro/internal/pq"
	"repro/internal/stream"
)

// Partial is a (possibly complete) join result over streams [0..len(Parts)-1].
// TS is the maximum constituent timestamp (the MSWJ result timestamp) and
// Delay the delay annotation of the arrival that produced it.
type Partial struct {
	TS    stream.Time
	Delay stream.Time
	Parts []*stream.Tuple
}

// event is one unit of stage input: a raw tuple (right != nil), a partial
// from the upstream stage (parts != nil), or a buffer-size control event
// (setK != nil) that applies per-stage K decisions in-band — the pipelined
// driver threads K changes through the stage channels so every kslack
// buffer is only ever touched by its owning stage goroutine.
type event struct {
	ts       stream.Time
	deadline stream.Time // min_i (e_i.ts + W_i) over constituents
	delay    stream.Time
	ord      uint64 // stage-local arrival order, breaks timestamp ties
	key      float64
	right    *stream.Tuple
	parts    []*stream.Tuple
	setK     []stream.Time // per-stage buffer sizes (control event)
}

// prodHookFunc observes one synchronized stage input: the stage index, the
// event's timestamp and delay annotation, the stage-local cross size n×(e)
// (live opposing-window entries) and derived-result count n^on(e) for
// in-order events, or inOrder=false (no probe) for out-of-order ones. It is
// the tree's equivalent of the MJoin operator's productivity hook, feeding
// the per-scope Tuple-Productivity Profilers of the feedback loop.
type prodHookFunc func(stage int, ts, delay stream.Time, nCross, nOn int64, inOrder bool)

// pairLookup is one equi-predicate between a bound stream and the stage's
// right stream.
type pairLookup struct {
	leftStream, leftAttr int
	rightAttr            int
}

// pairBand is one band predicate |left − right| ≤ eps that becomes fully
// bound at the stage (its highest-numbered stream is the stage's right
// input). On stages without an equi lookup the first band keys a sorted
// range index on both stage windows (the same index.Sorted the central
// operator's windows use), turning the full-window scan into an
// O(log n + box) probe; every band — including the probed one — stays in
// the residual filter, so the widened range is a pure superset pre-filter
// and results agree bit-for-bit with the scan.
type pairBand struct {
	leftStream, leftAttr int
	rightAttr            int
	eps                  float64
}

const (
	sideLeft  = 0
	sideRight = 1
)

// stage is one binary join operator with its Synchronizer and the K-slack
// buffer(s) of its raw input(s).
type stage struct {
	rightSrc int // stream index of the right input; the stage joins [0..rightSrc-1] with it
	windows  []stream.Time
	cond     *join.Condition
	lookups  []pairLookup
	bands    []pairBand
	checks   []int // Condition.Generics fully bound at this stage

	ksLeft  *kslack.Buffer // stage 0 only (raw stream 0)
	ksRight *kslack.Buffer // raw stream rightSrc

	// Synchronizer state (Alg. 1, m = 2).
	tsync  stream.Time
	buf    pq.Heap[*event]
	counts [2]int
	open   [2]bool
	ord    uint64

	// Binary join state.
	onT    stream.Time
	left   *pwindow
	right  *pwindow
	assign []*stream.Tuple

	next     func(*event)  // nil on the last stage
	sink     func(Partial) // last stage only; may be nil
	results  *int64
	prodHook prodHookFunc // optional; see prodHookFunc
}

func eventLess(a, b *event) bool {
	if a.ts != b.ts {
		return a.ts < b.ts
	}
	return a.ord < b.ord
}

func newStage(cond *join.Condition, windows []stream.Time, k stream.Time, rightSrc int) *stage {
	s := &stage{
		rightSrc: rightSrc,
		windows:  windows,
		cond:     cond,
		buf:      pq.New(eventLess),
		open:     [2]bool{true, true},
		assign:   make([]*stream.Tuple, cond.M),
	}
	for _, e := range cond.Equis {
		ls, la, rs, ra := e.LeftStream, e.LeftAttr, e.RightStream, e.RightAttr
		if rs == rightSrc && ls < rightSrc {
			s.lookups = append(s.lookups, pairLookup{ls, la, ra})
		} else if ls == rightSrc && rs < rightSrc {
			s.lookups = append(s.lookups, pairLookup{rs, ra, la})
		}
	}
	for _, b := range cond.Bands {
		ls, la, rs, ra := b.LeftStream, b.LeftAttr, b.RightStream, b.RightAttr
		if rs == rightSrc && ls < rightSrc {
			s.bands = append(s.bands, pairBand{ls, la, ra, b.Eps})
		} else if ls == rightSrc && rs < rightSrc {
			s.bands = append(s.bands, pairBand{rs, ra, la, b.Eps})
		}
	}
	for gi, g := range cond.Generics {
		maxStream := 0
		for _, gs := range g.Streams {
			if gs > maxStream {
				maxStream = gs
			}
		}
		if maxStream < 1 {
			maxStream = 1 // single-stream predicates over stream 0 run at stage 0
		}
		if maxStream == rightSrc {
			s.checks = append(s.checks, gi)
		}
	}
	indexed := len(s.lookups) > 0
	banded := !indexed && len(s.bands) > 0
	s.left = newPwindow(indexed, banded)
	s.right = newPwindow(indexed, banded)
	s.ksRight = kslack.New(k, func(t *stream.Tuple) {
		s.syncPush(s.rightEvent(t), sideRight)
	})
	if rightSrc == 1 {
		s.ksLeft = kslack.New(k, func(t *stream.Tuple) {
			s.syncPush(s.leafEvent(t), sideLeft)
		})
	}
	return s
}

// rightEvent wraps a post-K-slack raw tuple of the right stream.
func (s *stage) rightEvent(t *stream.Tuple) *event {
	ev := &event{ts: t.TS, deadline: t.TS + s.windows[s.rightSrc], delay: t.Delay, right: t}
	switch {
	case len(s.lookups) > 0:
		ev.key = t.Attr(s.lookups[0].rightAttr)
	case len(s.bands) > 0:
		ev.key = t.Attr(s.bands[0].rightAttr)
	}
	return ev
}

// leafEvent wraps a post-K-slack raw tuple of stream 0 as a 1-way partial
// (stage 0's left input).
func (s *stage) leafEvent(t *stream.Tuple) *event {
	ev := &event{
		ts: t.TS, deadline: t.TS + s.windows[0], delay: t.Delay,
		parts: []*stream.Tuple{t},
	}
	s.setLeftKey(ev)
	return ev
}

// setLeftKey stamps a left-side event with its stage probe key: the first
// equi lookup's bound attribute, or the first band's on band-only stages.
func (s *stage) setLeftKey(ev *event) {
	switch {
	case len(s.lookups) > 0:
		l0 := s.lookups[0]
		ev.key = ev.parts[l0.leftStream].Attr(l0.leftAttr)
	case len(s.bands) > 0:
		b0 := s.bands[0]
		ev.key = ev.parts[b0.leftStream].Attr(b0.leftAttr)
	}
}

// applyK applies this stage's entry of a per-stage buffer-size decision to
// the stage's raw-input K-slack buffer(s). Stage 0's K governs both of its
// raw inputs (streams 0 and 1): they share one Synchronizer, so within the
// stage Theorem 1's Same-K argument applies.
func (s *stage) applyK(ks []stream.Time) {
	k := ks[s.rightSrc-1]
	if s.ksLeft != nil {
		s.ksLeft.SetK(k)
	}
	s.ksRight.SetK(k)
}

// receive accepts one input in arrival order: a raw tuple (routed to this
// stage's K-slack or forwarded downstream), an upstream partial, or a
// buffer-size control event (applied here, then forwarded downstream).
func (s *stage) receive(ev *event) {
	if ev.setK != nil {
		s.applyK(ev.setK)
		if s.next != nil {
			s.next(ev)
		}
		return
	}
	if ev.parts != nil {
		s.setLeftKey(ev)
		s.syncPush(ev, sideLeft)
		return
	}
	t := ev.right
	switch {
	case t.Src == s.rightSrc:
		s.ksRight.Push(t)
	case t.Src < s.rightSrc && s.ksLeft != nil:
		s.ksLeft.Push(t)
	default:
		s.next(ev) // raw tuple for a later stage
	}
}

// syncPush is the per-stage Synchronizer (Alg. 1 with m = 2): buffer tuples
// ahead of T^sync, forward late ones immediately.
func (s *stage) syncPush(ev *event, side int) {
	ev.ord = s.ord
	s.ord++
	if ev.ts > s.tsync {
		s.buf.Push(ev)
		s.counts[side]++
		s.drain()
		return
	}
	s.process(ev)
}

func (s *stage) drain() {
	for s.buf.Len() > 0 && s.ready() {
		s.tsync = s.buf.Peek().ts
		for s.buf.Len() > 0 && s.buf.Peek().ts == s.tsync {
			ev := s.buf.Pop()
			s.counts[s.side(ev)]--
			s.process(ev)
		}
	}
}

func (s *stage) side(ev *event) int {
	if ev.right != nil {
		return sideRight
	}
	return sideLeft
}

func (s *stage) ready() bool {
	for i := 0; i < 2; i++ {
		if s.open[i] && s.counts[i] == 0 {
			return false
		}
	}
	return true
}

// closeSide marks one input as ended; closed sides no longer gate the
// release loop.
func (s *stage) closeSide(side int) {
	if !s.open[side] {
		return
	}
	s.open[side] = false
	s.drain()
}

// finish ends the stage's inputs: flush the K-slack buffer(s), then close
// both Synchronizer sides. Upstream must already have finished so every
// partial has arrived.
func (s *stage) finish() {
	if s.ksLeft != nil {
		s.ksLeft.Flush()
	}
	s.ksRight.Flush()
	s.closeSide(sideLeft)
	s.closeSide(sideRight)
}

// process is the binary Alg. 2 step on one synchronized event.
func (s *stage) process(ev *event) {
	if ev.ts >= s.onT {
		s.onT = ev.ts
		var nCross, nOn int64
		if ev.right != nil {
			s.left.expire(ev.ts)
			nCross = int64(s.left.heap.Len())
			nOn = s.probeLeft(ev)
			s.right.insert(ev)
		} else {
			s.right.expire(ev.ts)
			nCross = int64(s.right.heap.Len())
			nOn = s.probeRight(ev)
			s.left.insert(ev)
		}
		if s.prodHook != nil {
			// After the expire above, every live opposing entry has
			// deadline ≥ ev.ts, so heap length is the exact stage-local
			// cross size n×(e).
			s.prodHook(s.rightSrc-1, ev.ts, ev.delay, nCross, nOn, true)
		}
		return
	}
	if s.prodHook != nil {
		s.prodHook(s.rightSrc-1, ev.ts, ev.delay, 0, 0, false)
	}
	// Out-of-order w.r.t. this stage: no probing (lines 9–10 of Alg. 2);
	// keep the event only while it can still contribute to future results.
	// The shared boundary convention (scope [onT − W, onT], expired means
	// strictly older) makes an event with deadline == onT still matchable:
	// expire pops only deadline < onT, and the probe-side staleness check
	// skips only deadline < ts.
	if ev.deadline >= s.onT {
		if ev.right != nil {
			s.right.insert(ev)
		} else {
			s.left.insert(ev)
		}
	}
}

// probeLeft joins an arriving right tuple against the buffered partials,
// returning the number of results derived.
func (s *stage) probeLeft(ev *event) int64 {
	var n int64
	for _, cand := range s.candidatesIn(s.left, ev.key) {
		if cand.deadline < ev.ts {
			continue // stale entry awaiting expiration (cross-join scan path)
		}
		if s.matches(cand, ev.right) {
			s.emit(cand, ev.right, ev)
			n++
		}
	}
	return n
}

// probeRight joins an arriving partial against the buffered right tuples,
// returning the number of results derived.
func (s *stage) probeRight(ev *event) int64 {
	var n int64
	for _, cand := range s.candidatesIn(s.right, ev.key) {
		if cand.deadline < ev.ts {
			continue
		}
		if s.matches(ev, cand.right) {
			s.emit(ev, cand.right, ev)
			n++
		}
	}
	return n
}

// candidatesIn selects the window's candidate set for probe key: the hash
// bucket on equi stages, a widened range-index view on band-only stages
// (superset of the exact band; matches() re-checks the difference form),
// every live entry otherwise.
func (s *stage) candidatesIn(w *pwindow, key float64) []*event {
	if w.srt != nil {
		lo, hi, ok := join.ProbeRange(key, s.bands[0].eps)
		if !ok {
			return nil // NaN/Inf keys can never band-match
		}
		return w.srt.Range(lo, hi)
	}
	return w.candidates(key)
}

// matches checks the remaining equi-lookups, the band predicates and the
// generic predicates that became fully bound at this stage.
func (s *stage) matches(left *event, r *stream.Tuple) bool {
	for _, l := range s.lookups[min(1, len(s.lookups)):] {
		if left.parts[l.leftStream].Attr(l.leftAttr) != r.Attr(l.rightAttr) {
			return false
		}
	}
	for _, b := range s.bands {
		d := left.parts[b.leftStream].Attr(b.leftAttr) - r.Attr(b.rightAttr)
		// Negated form: NaN (all comparisons false) never band-matches.
		if !(d >= -b.eps && d <= b.eps) {
			return false
		}
	}
	if len(s.checks) == 0 {
		return true
	}
	for i := range s.assign {
		s.assign[i] = nil
	}
	copy(s.assign, left.parts)
	s.assign[s.rightSrc] = r
	for _, gi := range s.checks {
		if !s.cond.Generics[gi].Eval(s.assign) {
			return false
		}
	}
	return true
}

// emit materializes the combined partial and hands it downstream (or to the
// sink when the join is complete).
func (s *stage) emit(left *event, r *stream.Tuple, arriving *event) {
	parts := make([]*stream.Tuple, len(left.parts)+1)
	copy(parts, left.parts)
	parts[s.rightSrc] = r
	ts := left.ts
	if r.TS > ts {
		ts = r.TS
	}
	deadline := left.deadline
	if d := r.TS + s.windows[s.rightSrc]; d < deadline {
		deadline = d
	}
	out := &event{ts: ts, deadline: deadline, delay: arriving.delay, parts: parts}
	if s.next != nil {
		s.next(out)
		return
	}
	*s.results++
	if s.sink != nil {
		s.sink(Partial{TS: ts, Delay: arriving.delay, Parts: parts})
	}
}

// pwindow holds the live entries of one stage input: a 4-ary heap ordered
// by expiration deadline (so expiry pops are O(log n) with no scanning)
// plus, keyed on the first lookup, the shared index structures of
// internal/index — the open-addressed hash on equi stages, the sorted
// range index on band-only stages — the same structures the MJoin-style
// operator's windows use.
type pwindow struct {
	heap pq.Heap[*event]
	idx  *index.Hash[*event]   // nil unless the stage has an equi lookup
	srt  *index.Sorted[*event] // nil unless the stage is band-only
	// free, when set, receives every expired event — the PlanTree stage
	// arena's recycle hook. Only driver-thread windows set it.
	free func(*event)
}

func newPwindow(indexed, banded bool) *pwindow {
	w := &pwindow{
		heap: pq.New(func(a, b *event) bool { return a.deadline < b.deadline }),
	}
	if indexed {
		w.idx = index.NewHash[*event]()
	}
	if banded {
		w.srt = &index.Sorted[*event]{}
	}
	return w
}

func (w *pwindow) insert(ev *event) {
	w.heap.Push(ev)
	if w.srt != nil {
		// Sorted.Add skips NaN keys itself; a NaN can never band-match.
		w.srt.Add(ev.key, ev)
	}
	if w.idx == nil {
		return
	}
	// KeyBits reports !ok for NaN, which can never equi-match; such entries
	// stay out of the index entirely.
	if k, ok := index.KeyBits(ev.key); ok {
		w.idx.Add(k, ev)
	}
}

// expire removes every entry whose deadline passed: its earliest constituent
// is no longer inside its window at time t.
func (w *pwindow) expire(t stream.Time) {
	for w.heap.Len() > 0 && w.heap.Peek().deadline < t {
		ev := w.heap.Pop()
		if w.srt != nil {
			w.srt.Remove(ev.key, ev)
		}
		if w.idx != nil {
			if k, ok := index.KeyBits(ev.key); ok {
				w.idx.Remove(k, ev)
			}
		}
		if w.free != nil {
			w.free(ev)
		}
	}
}

// candidates returns the entries that can match key: the hash bucket on equi
// stages, every live entry otherwise (heap order; callers re-check the
// deadline).
func (w *pwindow) candidates(key float64) []*event {
	if w.idx != nil {
		k, ok := index.KeyBits(key)
		if !ok {
			return nil
		}
		return w.idx.Get(k)
	}
	return w.heap.Items()
}

// Tree is the synchronous left-deep tree driver.
type Tree struct {
	stages   []*stage
	results  int64
	finished bool
}

// NewTree builds the tree for cond over len(windows) streams with the common
// buffer size k on every raw input. sink (optional) receives every complete
// result.
func NewTree(cond *join.Condition, windows []stream.Time, k stream.Time, sink func(Partial)) *Tree {
	if len(windows) != cond.M {
		panic("dist: window count must match condition arity")
	}
	if cond.M < 2 {
		panic("dist: need at least 2 streams")
	}
	t := &Tree{}
	t.stages = buildStages(cond, windows, k, sink, &t.results, nil)
	return t
}

// buildStages wires the chain. nextFns, when non-nil, overrides the
// stage→stage hand-off (used by Pipelined to insert channels).
func buildStages(cond *join.Condition, windows []stream.Time, k stream.Time,
	sink func(Partial), results *int64, nextFns []func(*event)) []*stage {
	cond.Seal() // stage plans are compiled now; later mutation must panic
	n := cond.M - 1
	stages := make([]*stage, n)
	for j := 0; j < n; j++ {
		stages[j] = newStage(cond, windows, k, j+1)
	}
	for j := 0; j < n-1; j++ {
		if nextFns != nil {
			stages[j].next = nextFns[j]
		} else {
			next := stages[j+1]
			stages[j].next = next.receive
		}
	}
	last := stages[n-1]
	last.sink = sink
	last.results = results
	return stages
}

// Push feeds one raw arrival. Pushing into a finished tree panics: the
// flushed stage buffers cannot be restarted, so the tuple would silently
// miss results.
func (t *Tree) Push(e *stream.Tuple) {
	if t.finished {
		panic("dist: Push on a finished Tree — Finish flushed the stage buffers and a run cannot be restarted; build a new Tree")
	}
	t.stages[0].receive(&event{right: e})
}

// SetK applies the common buffer size k to every raw input (Same-K).
func (t *Tree) SetK(k stream.Time) {
	for _, s := range t.stages {
		if s.ksLeft != nil {
			s.ksLeft.SetK(k)
		}
		s.ksRight.SetK(k)
	}
}

// SetStageK applies stage j's entry of a per-stage buffer-size decision:
// ks[j] sizes the K-slack buffer of raw stream j+1 (and, for j = 0, of
// stream 0 as well — stage 0's two raw inputs share one Synchronizer).
func (t *Tree) SetStageK(ks []stream.Time) {
	for _, s := range t.stages {
		s.applyK(ks)
	}
}

// Watermark returns the root stage's output progress onT: the logical time
// up to which final results are complete (modulo disorder beyond the
// buffers). Result-size accounting anchors here.
func (t *Tree) Watermark() stream.Time {
	return t.stages[len(t.stages)-1].onT
}

// setProdHook installs the per-stage productivity hook; call before the
// first Push.
func (t *Tree) setProdHook(f prodHookFunc) {
	for _, s := range t.stages {
		s.prodHook = f
	}
}

// Finish flushes every buffer stage by stage; afterwards all results have
// been emitted. Finishing twice panics, as does pushing afterwards: the run
// cannot be restarted.
func (t *Tree) Finish() {
	if t.finished {
		panic("dist: Finish on a finished Tree — the run is already flushed and cannot be restarted; build a new Tree")
	}
	t.finished = true
	for _, s := range t.stages {
		s.finish()
	}
}

// Results returns the number of complete results produced so far.
func (t *Tree) Results() int64 { return t.results }

// Operators returns the number of binary join operators (m − 1).
func (t *Tree) Operators() int { return len(t.stages) }

// Pipelined runs the same stage chain with one goroutine per stage. Raw
// tuples for later stages travel through the chain interleaved with the
// partials, so every stage observes exactly the input order of the
// synchronous Tree and both produce identical results.
type Pipelined struct {
	stages []*stage
	in     chan *event
	out    chan Partial
	wg     sync.WaitGroup
	result int64
	closed bool

	// First contained stage-goroutine failure (see Err). Pipelined is the
	// one executor whose join state lives on multiple goroutines with
	// in-flight channel traffic, so it is NOT checkpointable; fault
	// handling here is containment only — a panicking stage flips to drain
	// mode, the chain keeps moving so no goroutine leaks, and the typed
	// error is surfaced instead of crashing the process.
	failMu  sync.Mutex
	failure error
}

// fail records the first stage failure.
func (p *Pipelined) fail(err error) {
	p.failMu.Lock()
	if p.failure == nil {
		p.failure = err
	}
	p.failMu.Unlock()
}

// Err returns the first contained stage failure, or nil. Definitive after
// Wait; results produced before the failure remain valid.
func (p *Pipelined) Err() error {
	p.failMu.Lock()
	defer p.failMu.Unlock()
	return p.failure
}

// NewPipelined builds the pipelined tree; buffer sizes the inter-stage
// channels (≤ 0 selects a default).
func NewPipelined(cond *join.Condition, windows []stream.Time, k stream.Time, buffer int) *Pipelined {
	if buffer <= 0 {
		buffer = 256
	}
	p := &Pipelined{out: make(chan Partial, buffer)}
	n := cond.M - 1
	chans := make([]chan *event, n)
	for j := range chans {
		chans[j] = make(chan *event, buffer)
	}
	nextFns := make([]func(*event), n-1)
	for j := 0; j < n-1; j++ {
		ch := chans[j+1]
		nextFns[j] = func(ev *event) { ch <- ev }
	}
	p.stages = buildStages(cond, windows, k, func(r Partial) { p.out <- r }, &p.result, nextFns)
	p.in = chans[0]
	for j, s := range p.stages {
		s := s
		var down chan *event
		if j+1 < n {
			down = chans[j+1]
		}
		in := chans[j]
		j := j
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			failed := false
			step := func(f func()) {
				defer func() {
					if r := recover(); r != nil {
						failed = true
						p.fail(&fault.WorkerError{Worker: j, Cause: fault.AsError(r)})
					}
				}()
				f()
			}
			for ev := range in {
				if failed {
					// Drain mode: keep consuming so upstream never blocks.
					// Downstream output is already unsound without this
					// stage's partials, so nothing is forwarded; the chain
					// still closes through normally and Err reports why.
					continue
				}
				ev := ev
				step(func() { s.receive(ev) })
			}
			if !failed {
				step(func() { s.finish() })
			}
			if down != nil {
				close(down)
			} else {
				close(p.out)
			}
		}()
	}
	return p
}

// Push feeds one raw arrival from the single producer goroutine. Pushing
// after Close panics: the input channel is closed and the stages are
// flushing, so the tuple would be dropped.
func (p *Pipelined) Push(e *stream.Tuple) {
	if p.closed {
		panic("dist: Push on a closed Pipelined — Close ended the input and the stages are flushing; build a new Pipelined")
	}
	p.in <- &event{right: e}
}

// setProdHook installs the per-stage productivity hook; call before the
// first Push (the first channel send orders the write before any stage
// read).
func (p *Pipelined) setProdHook(f prodHookFunc) {
	for _, s := range p.stages {
		s.prodHook = f
	}
}

// pushControl threads a per-stage buffer-size decision through the stage
// chain from the single producer goroutine; each stage applies its own
// entry in-band and forwards the rest downstream.
func (p *Pipelined) pushControl(ks []stream.Time) {
	p.in <- &event{setK: ks}
}

// Close signals end of input; results keep flowing until the Results channel
// closes. Closing twice panics.
func (p *Pipelined) Close() {
	if p.closed {
		panic("dist: Close on a closed Pipelined — the input has already ended; build a new Pipelined for another run")
	}
	p.closed = true
	close(p.in)
}

// Results returns the channel of complete results; drain it until it closes.
func (p *Pipelined) Results() <-chan Partial { return p.out }

// Wait blocks until every stage goroutine has exited; call after draining
// Results.
func (p *Pipelined) Wait() { p.wg.Wait() }
