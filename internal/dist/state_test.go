package dist

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/join"
	"repro/internal/stream"
)

// treeCkpt is the gob envelope of the round-trip tests: the adaptive tree
// state plus the tuple table it references.
type treeCkpt struct {
	Tuples []fault.TupleRec
	State  AdaptiveTreeState
}

func treeGobRoundTrip(t *testing.T, st AdaptiveTreeState, tt *fault.TupleTable) (AdaptiveTreeState, *fault.TupleArena) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(treeCkpt{Tuples: tt.Recs, State: st}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var out treeCkpt
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out.State, fault.NewTupleArena(out.Tuples)
}

// treeTrace is everything the differential pins: result count, the full
// K-decision trajectory, and the result multiset.
type treeTrace struct {
	results int64
	ks      []string
	set     map[string]int
}

func runTreeFull(in stream.Batch, cond *join.Condition, w []stream.Time, shape *Shape) treeTrace {
	tr := treeTrace{set: map[string]int{}}
	cfg := AdaptiveConfig{Adapt: testAdapt, PerStage: true,
		OnDecide: func(at stream.Time, ks []stream.Time) {
			tr.ks = append(tr.ks, fmt.Sprintf("%v:%v", at, ks))
		}}
	a := NewAdaptivePlanTree(cond, w, shape, cfg, func(p Partial) { tr.set[sig(p.Parts)]++ })
	for _, e := range in.Clone() {
		a.Push(e)
	}
	a.Finish()
	tr.results = a.Results()
	return tr
}

// runTreeInterrupted runs until the cutDecision-th adaptation boundary,
// checkpoints there (through a real gob cycle), abandons the first tree as
// a crash would, restores into a fresh tree and replays the remaining
// input.
func runTreeInterrupted(t *testing.T, in stream.Batch, mk func() *join.Condition, w []stream.Time, shape func() *Shape, cutDecision int) treeTrace {
	t.Helper()
	tr := treeTrace{set: map[string]int{}}
	onDecide := func(at stream.Time, ks []stream.Time) {
		tr.ks = append(tr.ks, fmt.Sprintf("%v:%v", at, ks))
	}

	var a *AdaptivePlanTree
	var st AdaptiveTreeState
	var ta *fault.TupleArena
	captured := false
	cfg := AdaptiveConfig{Adapt: testAdapt, PerStage: true,
		OnDecide: func(at stream.Time, ks []stream.Time) {
			onDecide(at, ks)
			if len(tr.ks) == cutDecision {
				tt := fault.NewTupleTable()
				st, ta = treeGobRoundTrip(t, a.State(tt), tt)
				captured = true
			}
		}}
	a = NewAdaptivePlanTree(mk(), w, shape(), cfg, func(p Partial) { tr.set[sig(p.Parts)]++ })
	work := in.Clone()
	cut := -1
	for i, e := range work {
		a.Push(e)
		if captured {
			cut = i + 1
			break
		}
	}
	if cut < 0 {
		t.Fatalf("cut decision %d never reached", cutDecision)
	}
	// Abandon the first tree mid-run (simulating a crash right after the
	// boundary checkpoint); its shard workers still need to stop.
	a.Abandon()

	b := NewAdaptivePlanTree(mk(), w, shape(), AdaptiveConfig{Adapt: testAdapt, PerStage: true, OnDecide: onDecide}, func(p Partial) { tr.set[sig(p.Parts)]++ })
	b.Restore(st, ta)
	for _, e := range work[cut:] {
		b.Push(e)
	}
	b.Finish()
	tr.results = b.Results()
	return tr
}

func diffTreeTraces(t *testing.T, name string, want, got treeTrace) {
	t.Helper()
	if got.results != want.results {
		t.Errorf("%s: results %d, want %d", name, got.results, want.results)
	}
	if len(got.ks) != len(want.ks) {
		t.Fatalf("%s: %d decisions, want %d", name, len(got.ks), len(want.ks))
	}
	for i := range want.ks {
		if got.ks[i] != want.ks[i] {
			t.Fatalf("%s: decision %d = %s, want %s", name, i, got.ks[i], want.ks[i])
		}
	}
	diffMultisets(t, name, want.set, got.set)
}

// TestPlanTreeCheckpointRestoreDifferential: cutting an adaptive plan-tree
// run at an adaptation boundary, serializing through gob, and resuming in a
// fresh tree must reproduce the uninterrupted run bit-for-bit — result
// multiset, result count, and the complete K-decision trajectory — on
// unsharded trees and at every shard count, for equi- and band-keyed
// stages.
func TestPlanTreeCheckpointRestoreDifferential(t *testing.T) {
	in := workload(3, 3000, 23, 40)
	w := []stream.Time{stream.Second, stream.Second, stream.Second}
	conds := map[string]func() *join.Condition{
		"equichain": func() *join.Condition { return join.EquiChain(3, 0) },
		"band+equi": func() *join.Condition {
			return join.Cross(3).Equi(0, 0, 1, 0).Band(1, 1, 2, 1, 6)
		},
	}
	shapeN := func(n int) func() *Shape {
		return func() *Shape {
			inner := branch(leaf(0), leaf(1))
			outer := branch(inner, leaf(2))
			if n > 1 {
				inner.Shards = n
				outer.Shards = n
			}
			return outer
		}
	}
	for name, mk := range conds {
		for _, shards := range []int{1, 2, 4, 8} {
			for _, cutDec := range []int{3, 8} {
				t.Run(fmt.Sprintf("%s/shards%d/cut%d", name, shards, cutDec), func(t *testing.T) {
					want := runTreeFull(in, mk(), w, shapeN(shards)())
					if want.results == 0 || len(want.ks) <= cutDec {
						t.Fatal("degenerate workload for this cut")
					}
					got := runTreeInterrupted(t, in, mk, w, shapeN(shards), cutDec)
					diffTreeTraces(t, "tree-ckpt", want, got)
				})
			}
		}
	}
}

// TestPlanTreeCheckpointRestoreBushy: the same differential on a bushy
// 4-stream shape with a sharded leaf stage and a sharded root — the shape
// whose root stage governs no raw buffer (its K stays pinned 0), and whose
// checkpoint must carry two sub-plan window sets.
func TestPlanTreeCheckpointRestoreBushy(t *testing.T) {
	in := workload(4, 2500, 29, 60)
	w := []stream.Time{stream.Second, stream.Second, stream.Second, stream.Second}
	mk := func() *join.Condition { return join.EquiChain(4, 0) }
	shape := func() *Shape {
		return shard(4, branch(shard(2, branch(leaf(0), leaf(1))), branch(leaf(2), leaf(3))))
	}
	want := runTreeFull(in, mk(), w, shape())
	if want.results == 0 || len(want.ks) <= 4 {
		t.Fatal("degenerate workload")
	}
	got := runTreeInterrupted(t, in, mk, w, shape, 4)
	diffTreeTraces(t, "bushy-ckpt", want, got)
}
