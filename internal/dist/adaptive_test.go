package dist

import (
	"repro/internal/leakcheck"
	"testing"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/join"
	"repro/internal/oracle"
	"repro/internal/stream"
)

// adaptWorkload builds a seeded disordered 3-stream equi workload. delayMax
// gives each stream's maximum injected delay, so asymmetric disorder
// profiles are one slice away.
func adaptWorkload(seed int64, n int, delayMax [3]stream.Time) (stream.Batch, []stream.Time) {
	w := 2 * stream.Second
	return gen.SparseEqui3(n, seed, 300, delayMax), []stream.Time{w, w, w}
}

// runAdaptiveTree drives one adaptive synchronous tree over the workload.
func runAdaptiveTree(t *testing.T, in stream.Batch, windows []stream.Time, cfg AdaptiveConfig) *AdaptiveTree {
	t.Helper()
	at := NewAdaptiveTree(join.EquiChain(3, 0), windows, cfg, nil)
	for _, e := range in.Clone() {
		at.Push(e)
	}
	at.Finish()
	return at
}

var testAdapt = adapt.Config{Gamma: 0.9, P: 10 * stream.Second, L: stream.Second}

// TestTreeAdaptationMeetsRecallTarget: with Same-K adaptation enabled, the
// tree on a disordered 3-way workload meets the configured recall target
// within tolerance, matching the single-operator pipeline's recall on the
// same input.
func TestTreeAdaptationMeetsRecallTarget(t *testing.T) {
	leakcheck.Check(t)
	in, windows := adaptWorkload(3, 6000, [3]stream.Time{2500, 2500, 2500})
	cond := join.EquiChain(3, 0)
	truth := oracle.TrueResults(cond, windows, in).Total()
	if truth == 0 {
		t.Fatal("degenerate workload: no true results")
	}

	at := runAdaptiveTree(t, in, windows, AdaptiveConfig{Adapt: testAdapt})
	treeRecall := float64(at.Results()) / float64(truth)

	p := core.New(core.Config{Windows: windows, Cond: join.EquiChain(3, 0), Adapt: testAdapt})
	p.Run(in.Clone())
	pipeRecall := float64(p.Results()) / float64(truth)

	t.Logf("truth=%d tree=%d (recall %.4f, avgK %.0fms) pipeline=%d (recall %.4f, avgK %.0fms)",
		truth, at.Results(), treeRecall, at.Loop().AvgK(0), p.Results(), pipeRecall, p.AvgK())
	const tol = 0.02
	if treeRecall < testAdapt.Gamma-tol {
		t.Errorf("tree recall %.4f misses target Γ=%.2f (tol %.2f)", treeRecall, testAdapt.Gamma, tol)
	}
	if treeRecall < pipeRecall-0.05 {
		t.Errorf("tree recall %.4f far below single-operator pipeline's %.4f", treeRecall, pipeRecall)
	}
	if at.Loop().Decisions() == 0 {
		t.Error("no adaptation steps ran")
	}
}

// TestPerStageKDivergesOnAsymmetricDelays: with asymmetric per-stream
// disorder (streams 0 and 1 nearly ordered, stream 2 heavily delayed), the
// per-stage policy decides a much smaller K for stage 0 than for stage 1,
// pays a strictly smaller total buffered delay than Same-K, and still meets
// the recall target.
func TestPerStageKDivergesOnAsymmetricDelays(t *testing.T) {
	leakcheck.Check(t)
	in, windows := adaptWorkload(5, 6000, [3]stream.Time{120, 120, 3000})
	cond := join.EquiChain(3, 0)
	truth := oracle.TrueResults(cond, windows, in).Total()
	if truth == 0 {
		t.Fatal("degenerate workload: no true results")
	}

	same := runAdaptiveTree(t, in, windows, AdaptiveConfig{Adapt: testAdapt})
	per := runAdaptiveTree(t, in, windows, AdaptiveConfig{Adapt: testAdapt, PerStage: true})

	sameRecall := float64(same.Results()) / float64(truth)
	perRecall := float64(per.Results()) / float64(truth)
	t.Logf("same-K:    recall %.4f, buffered-delay sum %.0f, avgK %.0fms",
		sameRecall, same.BufferedDelaySum(), same.Loop().AvgK(0))
	t.Logf("per-stage: recall %.4f, buffered-delay sum %.0f, avgK0 %.0fms avgK1 %.0fms",
		perRecall, per.BufferedDelaySum(), per.Loop().AvgK(0), per.Loop().AvgK(1))

	if n := per.Loop().Scopes(); n != 2 {
		t.Fatalf("expected 2 decision scopes, got %d", n)
	}
	k0, k1 := per.Loop().AvgK(0), per.Loop().AvgK(1)
	if !(k0 < k1/2) {
		t.Errorf("per-stage K did not diverge on asymmetric delays: avgK0=%.0f avgK1=%.0f", k0, k1)
	}
	if !(per.BufferedDelaySum() < same.BufferedDelaySum()) {
		t.Errorf("per-stage buffered-delay sum %.0f not strictly below Same-K's %.0f",
			per.BufferedDelaySum(), same.BufferedDelaySum())
	}
	const tol = 0.02
	if perRecall < testAdapt.Gamma-tol {
		t.Errorf("per-stage recall %.4f misses target Γ=%.2f (tol %.2f)", perRecall, testAdapt.Gamma, tol)
	}
}

// TestAdaptivePipelinedProducesSaneResults: the pipelined adaptive driver
// (best-effort decision timing) still produces a recall near the target and
// takes decisions.
func TestAdaptivePipelinedProducesSaneResults(t *testing.T) {
	leakcheck.Check(t)
	in, windows := adaptWorkload(7, 4000, [3]stream.Time{2000, 2000, 2000})
	cond := join.EquiChain(3, 0)
	truth := oracle.TrueResults(cond, windows, in).Total()

	ap := NewAdaptivePipelined(join.EquiChain(3, 0), windows, AdaptiveConfig{Adapt: testAdapt, PerStage: true}, 256)
	var got int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range ap.Results() {
			got++
		}
	}()
	for _, e := range in.Clone() {
		ap.Push(e)
	}
	ap.Close()
	<-done
	ap.Wait()

	recall := float64(got) / float64(truth)
	t.Logf("pipelined per-stage: truth=%d got=%d recall=%.4f decisions=%d", truth, got, recall, ap.Loop().Decisions())
	if recall < testAdapt.Gamma-0.05 {
		t.Errorf("pipelined adaptive recall %.4f far below target %.2f", recall, testAdapt.Gamma)
	}
	if ap.Loop().Decisions() == 0 {
		t.Error("no adaptation steps ran")
	}
	if ap.BufferedDelaySum() <= 0 {
		t.Error("buffered-delay sum not tracked")
	}
}

// TestTreeLifecyclePanics: Push-after-Finish and double-Finish panic on the
// synchronous tree; Push-after-Close and double-Close panic on the
// pipelined one (DESIGN.md §3 lifecycle conventions, matching Join).
func TestTreeLifecyclePanics(t *testing.T) {
	leakcheck.Check(t)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	w := []stream.Time{stream.Second, stream.Second}

	tr := NewTree(join.EquiChain(2, 0), w, 0, nil)
	tr.Push(&stream.Tuple{TS: 1, Src: 0, Attrs: []float64{1}})
	tr.Finish()
	mustPanic("Tree.Push after Finish", func() {
		tr.Push(&stream.Tuple{TS: 2, Src: 1, Attrs: []float64{1}})
	})
	mustPanic("Tree.Finish twice", tr.Finish)

	p := NewPipelined(join.EquiChain(2, 0), w, 0, 16)
	go func() {
		for range p.Results() {
		}
	}()
	p.Push(&stream.Tuple{TS: 1, Src: 0, Attrs: []float64{1}})
	p.Close()
	p.Wait()
	mustPanic("Pipelined.Push after Close", func() {
		p.Push(&stream.Tuple{TS: 2, Src: 1, Attrs: []float64{1}})
	})
	mustPanic("Pipelined.Close twice", p.Close)
}
