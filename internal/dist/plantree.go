// The generalized plan-tree executor: where Tree hard-codes the left-deep
// spine of Sec. V (stage j = streams [0..j] ⋈ raw stream j+1), PlanTree
// executes an arbitrary binary deployment shape over the input streams —
// the shapes internal/plan's deployment planner emits. Both sides of a
// stage may be sub-plans (bushy trees), and any stage whose cross
// predicates carry an equi or band key may be *sharded*: its two windows
// are key-partitioned across N worker goroutines, with no broadcast route,
// which is how a star-shaped condition without a full key class still runs
// fully partitioned (each binary stage always has a usable key).
//
// # Determinism
//
// The driver is push-based and single-threaded, like Tree. A sharded stage
// keeps the ordering decisions on the driver thread: its Synchronizer,
// watermark onT and the in-order/out-of-order classification run before
// routing, and a router-side pair of deadline multisets replays global
// window membership for the exact stage-local cross size n×(e) (the same
// trick internal/shard's router uses). Every probe is processed by exactly
// one worker — the owner of its key (band replicas are insert-only) — so
// per-probe outputs are well-defined, and they re-enter the tree in probe
// sequence order through a bounded-depth reorder pipeline: probe
// seq−shardDepth is released (blocking on its worker if necessary) when
// probe seq is routed. Release points are therefore a pure function of the
// input sequence, never of worker scheduling — runs are reproducible
// bit-for-bit, including the adaptation trajectory. Downstream stages see
// their inputs in deterministic order, and the per-stage Synchronizers
// absorb the bounded release lag: each input side still arrives in
// nondecreasing timestamp order, so the merge — and with buffers covering
// the disorder, the result multiset — is bit-for-bit that of the unsharded
// run.
package dist

import (
	"fmt"
	"sync"

	"repro/internal/fault"
	"repro/internal/index"
	"repro/internal/join"
	"repro/internal/kslack"
	"repro/internal/pq"
	"repro/internal/stream"
)

// Shape describes one node of a binary deployment shape: a leaf naming a
// raw input stream (Left == Right == nil), or an internal stage joining the
// two child sub-plans. Shards > 1 on an internal node key-partitions that
// stage's windows across Shards worker goroutines; it requires the stage's
// cross predicates to carry an equi or band key.
type Shape struct {
	Stream      int
	Left, Right *Shape
	Shards      int
}

// IsLeaf reports whether the node is a raw input stream.
func (s *Shape) IsLeaf() bool { return s.Left == nil && s.Right == nil }

// Streams returns the raw streams covered by the subtree, in ascending
// order.
func (s *Shape) Streams() []int {
	var out []int
	var walk func(*Shape)
	walk = func(n *Shape) {
		if n.IsLeaf() {
			out = append(out, n.Stream)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(s)
	return join.SortedStreams(out)
}

// Spine returns the left-deep shape over m streams — the Sec. V tree Tree
// executes — with no stage sharding.
func Spine(m int) *Shape {
	node := &Shape{Stream: 0}
	for s := 1; s < m; s++ {
		node = &Shape{Left: node, Right: &Shape{Stream: s}}
	}
	return node
}

// validate checks that the shape covers every stream of [0, m) exactly once
// and that internal nodes have both children.
func (s *Shape) validate(m int) {
	seen := make([]bool, m)
	var walk func(*Shape)
	walk = func(n *Shape) {
		if n.IsLeaf() {
			if n.Stream < 0 || n.Stream >= m {
				panic(fmt.Sprintf("dist: shape leaf stream %d outside [0,%d)", n.Stream, m))
			}
			if seen[n.Stream] {
				panic(fmt.Sprintf("dist: shape covers stream %d twice", n.Stream))
			}
			seen[n.Stream] = true
			return
		}
		if n.Left == nil || n.Right == nil {
			panic("dist: shape stage with a single child")
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(s)
	for st, ok := range seen {
		if !ok {
			panic(fmt.Sprintf("dist: shape misses stream %d", st))
		}
	}
}

// pxEqui is one cross equi predicate of a plan stage, normalized so
// LeftStream lies on side 0.
type pxEqui struct {
	ls, la int
	rs, ra int
}

// pxBand is one cross band predicate, normalized like pxEqui.
type pxBand struct {
	ls, la int
	rs, ra int
	eps    float64
}

// pstage is one binary join stage of a PlanTree: its Synchronizer, the two
// windows (or, when sharded, the worker set partitioning them), and the
// cross predicates bound here.
type pstage struct {
	id   int
	tree *PlanTree

	parent     *pstage
	parentSide int

	sideStreams [2][]int
	inSide      [2][]bool
	// leafBufs are the K-slack buffers of the raw streams entering this
	// stage directly; a per-stage K decision sizes exactly these.
	leafBufs []*kslack.Buffer

	lookups []pxEqui
	bands   []pxBand
	checks  []int        // Condition.Generics claimed by this stage
	progs   []*join.Prog // compiled form per check; nil entries fall back to Eval
	keyed   bool         // probe key is lookups[0] (hash); else bands[0] (range) if banded
	banded  bool

	// free is the stage's chunk arena: dead events (expired from the
	// driver-thread windows or dropped out of scope) whose parts slices are
	// recycled into the next leaf arrival or combine output pushed into
	// this stage. Driver-thread only; sharded stages run without one
	// (their windows expire on worker goroutines).
	free []*event

	// Synchronizer state (Alg. 1, m = 2).
	tsync  stream.Time
	buf    pq.Heap[*event]
	counts [2]int
	open   [2]bool
	ord    uint64

	onT    stream.Time
	win    [2]*pwindow // unsharded state (nil when sharded)
	assign []*stream.Tuple

	sh       *pshard // non-nil when the stage is sharded
	prodHook prodHookFunc
}

// PlanTree executes one deployment shape. Drive it exactly like Tree: Push
// raw arrivals from one goroutine, Finish at end of input.
type PlanTree struct {
	cond    *join.Condition
	windows []stream.Time
	m       int
	stages  []*pstage // post-order; root last
	leaves  []*pleaf  // by raw stream index
	sink    func(Partial)

	results  int64
	finished bool

	// inject is the optional deterministic fault injector. Sharded stages
	// check it on their worker goroutines (worker ids are shard-local); a
	// tree without sharded stages checks worker 0 on the driver thread at
	// every Push, between tuples — a checkpoint-consistent crash point.
	inject    *fault.Injector
	hasShards bool

	// Leaf-release batching (SetBatch): released raw tuples are buffered in
	// global release order and pushed into their stages in one run. One
	// buffer across all leaves preserves the exact unbatched push
	// interleaving, so stage ord stamps — and with them the whole run — stay
	// bit-for-bit. Flushed when full and at every barrier that reads tree
	// state (SyncBarrier, Quiesce, Finish, Capture).
	batch    []*stream.Tuple
	batchCap int
}

// pleaf is one raw input: its K-slack buffer and the stage side it feeds.
type pleaf struct {
	ks    *kslack.Buffer
	stage *pstage
	side  int
	src   int
	w     stream.Time
}

// emit wraps one released raw tuple into an event and pushes it into the
// leaf's stage. The event comes from the stage arena when the stage is
// unsharded (a sharded stage's windows live on worker goroutines, which
// cannot return events to the driver-owned free list).
func (lf *pleaf) emit(e *stream.Tuple) {
	s := lf.stage
	var ev *event
	if s.sh == nil {
		ev = s.alloc()
	} else {
		ev = &event{parts: make([]*stream.Tuple, s.tree.m)}
	}
	ev.ts, ev.deadline, ev.delay = e.TS, e.TS+lf.w, e.Delay
	ev.parts[lf.src] = e
	s.push(ev, lf.side)
}

// NewPlanTree compiles cond into the executors of shape with the common
// buffer size k on every raw input. sink (optional) receives every complete
// result.
func NewPlanTree(cond *join.Condition, windows []stream.Time, shape *Shape, k stream.Time, sink func(Partial)) *PlanTree {
	if len(windows) != cond.M {
		panic("dist: window count must match condition arity")
	}
	if cond.M < 2 {
		panic("dist: need at least 2 streams")
	}
	shape.validate(cond.M)
	cond.Seal()
	t := &PlanTree{
		cond:    cond,
		windows: windows,
		m:       cond.M,
		leaves:  make([]*pleaf, cond.M),
		sink:    sink,
	}
	claimed := make([]bool, len(cond.Generics))
	t.build(shape, nil, 0, k, claimed)
	// Generics never claimed can only reference a single stream (any two
	// streams meet at some stage); claim them at the leaf's own stage.
	for gi, g := range cond.Generics {
		if claimed[gi] {
			continue
		}
		st := 0
		if len(g.Streams) > 0 {
			st = g.Streams[0]
		}
		lf := t.leaves[st]
		lf.stage.checks = append(lf.stage.checks, gi)
		claimed[gi] = true
	}
	for _, s := range t.stages {
		if s.sh != nil {
			t.hasShards = true
		}
		// Compile each claimed generic to bytecode; nil entries (opaque
		// closures, too-deep expressions) keep the Eval escape hatch.
		// Prog.Eval is concurrent-safe, so shard workers share the programs.
		for _, gi := range s.checks {
			s.progs = append(s.progs, join.CompileExpr(cond.Generics[gi].Expr))
		}
		if s.sh == nil {
			s.win[0].free = s.recycle
			s.win[1].free = s.recycle
		}
	}
	return t
}

// SetInjector arms the deterministic fault injector; call before the first
// Push. A nil injector (the default) is a no-op on every check.
func (t *PlanTree) SetInjector(inj *fault.Injector) { t.inject = inj }

// SetBatch sets the leaf-release batch size (≤ 1 disables batching, the
// default). Batching only amortizes the leaf-to-stage handoff; results, K
// trajectories and adaptation decisions are bit-for-bit those of the
// unbatched run because every state reader flushes first and cut points are
// a pure function of the input sequence.
func (t *PlanTree) SetBatch(n int) {
	t.flushBatch()
	t.batchCap = n
}

// flushBatch pushes every buffered leaf release into its stage, in the
// exact global release order the unbatched run would have used.
func (t *PlanTree) flushBatch() {
	for i := 0; i < len(t.batch); i++ {
		e := t.batch[i]
		t.batch[i] = nil
		t.leaves[e.Src].emit(e)
	}
	t.batch = t.batch[:0]
}

// build recursively compiles a shape node, returning its covered streams.
// Stages are appended post-order, so children precede parents and the root
// is last.
func (t *PlanTree) build(sh *Shape, parent *pstage, side int, k stream.Time, claimed []bool) []int {
	if sh.IsLeaf() {
		st := sh.Stream
		lf := &pleaf{stage: parent, side: side, src: st, w: t.windows[st]}
		lf.ks = kslack.New(k, func(e *stream.Tuple) {
			if t.batchCap > 1 {
				t.batch = append(t.batch, e)
				if len(t.batch) >= t.batchCap {
					t.flushBatch()
				}
				return
			}
			lf.emit(e)
		})
		parent.leafBufs = append(parent.leafBufs, lf.ks)
		t.leaves[st] = lf
		return []int{st}
	}
	s := &pstage{tree: t, parent: parent, parentSide: side,
		buf:    pq.New(eventLess),
		open:   [2]bool{true, true},
		assign: make([]*stream.Tuple, t.m),
	}
	left := t.build(sh.Left, s, sideLeft, k, claimed)
	right := t.build(sh.Right, s, sideRight, k, claimed)
	s.sideStreams = [2][]int{left, right}
	for sd := 0; sd < 2; sd++ {
		s.inSide[sd] = make([]bool, t.m)
		for _, st := range s.sideStreams[sd] {
			s.inSide[sd][st] = true
		}
	}
	link := t.cond.Cross(left, right)
	for _, e := range link.Equis {
		s.lookups = append(s.lookups, pxEqui{e.LeftStream, e.LeftAttr, e.RightStream, e.RightAttr})
	}
	for _, b := range link.Bands {
		s.bands = append(s.bands, pxBand{b.LeftStream, b.LeftAttr, b.RightStream, b.RightAttr, b.Eps})
	}
	s.keyed = len(s.lookups) > 0
	s.banded = !s.keyed && len(s.bands) > 0
	// Claim every still-unclaimed generic fully bound at this stage; the
	// post-order recursion guarantees deeper stages claimed theirs first.
	all := append(append([]int(nil), left...), right...)
	bound := make([]bool, t.m)
	for _, st := range all {
		bound[st] = true
	}
	for gi, g := range t.cond.Generics {
		if claimed[gi] {
			continue
		}
		ok := true
		for _, gs := range g.Streams {
			if !bound[gs] {
				ok = false
				break
			}
		}
		if ok {
			claimed[gi] = true
			s.checks = append(s.checks, gi)
		}
	}
	s.id = len(t.stages)
	if sh.Shards > 1 {
		if !s.keyed && !s.banded {
			panic(fmt.Sprintf("dist: shape shards stage %v⋈%v, but its cross predicates carry no equi or band key — an unkeyed stage cannot be partitioned without broadcast; leave it unsharded", left, right))
		}
		s.sh = newPshard(s, sh.Shards)
	} else {
		s.win[0] = newPwindow(s.keyed, s.banded)
		s.win[1] = newPwindow(s.keyed, s.banded)
	}
	t.stages = append(t.stages, s)
	return append(left, right...)
}

// Push feeds one raw arrival. Pushing into a finished tree panics.
func (t *PlanTree) Push(e *stream.Tuple) {
	if t.finished {
		panic("dist: Push on a finished PlanTree — Finish flushed the stage buffers and a run cannot be restarted; build a new PlanTree")
	}
	if !t.hasShards {
		t.inject.MaybeDelay(0)
		t.inject.MaybePanic(0)
	}
	t.leaves[e.Src].ks.Push(e)
}

// SetK applies the common buffer size k to every raw input.
func (t *PlanTree) SetK(k stream.Time) {
	for _, lf := range t.leaves {
		lf.ks.SetK(k)
	}
}

// SetStageK applies a per-stage buffer-size decision: ks[j] (indexed by the
// post-order stage id) sizes the K-slack buffers of the raw streams
// entering stage j directly. Stages with no raw input consume no entry.
func (t *PlanTree) SetStageK(ks []stream.Time) {
	for _, s := range t.stages {
		for _, b := range s.leafBufs {
			b.SetK(ks[s.id])
		}
	}
}

// Watermark returns the root stage's output progress onT, first flushing
// any batched leaf releases so the reading reflects every pushed arrival.
func (t *PlanTree) Watermark() stream.Time {
	t.flushBatch()
	return t.stages[len(t.stages)-1].onT
}

// setProdHook installs the per-stage productivity hook; call before the
// first Push. Stage indexes are post-order ids.
func (t *PlanTree) setProdHook(f prodHookFunc) {
	for _, s := range t.stages {
		s.prodHook = f
	}
}

// SyncBarrier quiesces every sharded stage bottom-up: all routed probes are
// processed and their outputs released downstream in sequence order.
// Afterwards the tree's state is the deterministic function of the pushed
// input that an adaptation decision must see. A no-op without sharded
// stages.
func (t *PlanTree) SyncBarrier() {
	t.flushBatch()
	for _, s := range t.stages {
		if s.sh != nil {
			s.sh.quiesce()
		}
	}
}

// Quiesce is the stronger checkpoint barrier: beyond SyncBarrier's ordered
// release of all routed probes, it drains the trailing insert-only messages
// out of every worker queue, bottom-up. Afterwards no sharded stage has any
// message in flight, so the worker windows are stable and readable from the
// driver thread. A no-op without sharded stages.
func (t *PlanTree) Quiesce() {
	t.flushBatch()
	for _, s := range t.stages {
		if s.sh != nil {
			s.sh.quiesce()
			s.sh.insertBarrier()
		}
	}
}

// Finish flushes every buffer bottom-up; afterwards all results have been
// emitted and the shard workers have exited. Finishing twice panics, as
// does pushing afterwards.
func (t *PlanTree) Finish() {
	if t.finished {
		panic("dist: Finish on a finished PlanTree — the run is already flushed and cannot be restarted; build a new PlanTree")
	}
	t.finished = true
	for _, lf := range t.leaves {
		lf.ks.Flush()
	}
	t.flushBatch()
	for _, s := range t.stages {
		s.closeSide(sideLeft)
		s.closeSide(sideRight)
		if s.sh != nil {
			s.sh.quiesce()
			s.sh.stop()
		}
	}
}

// Results returns the number of complete results produced so far.
func (t *PlanTree) Results() int64 { return t.results }

// BufferedTuples returns the total number of tuples currently held in the
// leaf K-slack buffers — the bounded-ingest occupancy measure.
func (t *PlanTree) BufferedTuples() int {
	n := 0
	for _, lf := range t.leaves {
		n += lf.ks.Len()
	}
	return n
}

// ShedWorst evicts the buffered tuple with the largest delay. The static
// tree runs no feedback loop, so no productivity score exists to rank by
// and no recall accounting absorbs the drop; the largest-delay tuple is the
// one most likely already beyond its usefulness. Ties break toward the
// first buffer, then the first position — deterministic, so shed decisions
// replay identically. Returns false when nothing is buffered.
func (t *PlanTree) ShedWorst() bool {
	bi, bj := -1, -1
	var worstDelay stream.Time
	for i, lf := range t.leaves {
		for j, e := range lf.ks.Items() {
			if bi < 0 || e.Delay > worstDelay {
				bi, bj, worstDelay = i, j, e.Delay
			}
		}
	}
	if bi < 0 {
		return false
	}
	t.leaves[bi].ks.EvictAt(bj)
	return true
}

// Operators returns the number of binary join stages.
func (t *PlanTree) Operators() int { return len(t.stages) }

// Stages exposes the post-order stage count per shard degree, for
// diagnostics: Stages()[j] is stage j's worker count (1 = unsharded).
func (t *PlanTree) Stages() []int {
	out := make([]int, len(t.stages))
	for i, s := range t.stages {
		out[i] = 1
		if s.sh != nil {
			out[i] = s.sh.n
		}
	}
	return out
}

// ---- stage machinery ----

// sideOf classifies an event by the membership of its first bound stream;
// the two sides are disjoint, so any constituent decides.
func (s *pstage) sideOf(ev *event) int {
	for st, t := range ev.parts {
		if t != nil {
			if s.inSide[sideLeft][st] {
				return sideLeft
			}
			return sideRight
		}
	}
	panic("dist: event with no bound stream")
}

// stampKey stamps the event with this stage's probe key for its side.
func (s *pstage) stampKey(ev *event, side int) {
	switch {
	case s.keyed:
		l0 := s.lookups[0]
		if side == sideLeft {
			ev.key = ev.parts[l0.ls].Attr(l0.la)
		} else {
			ev.key = ev.parts[l0.rs].Attr(l0.ra)
		}
	case s.banded:
		b0 := s.bands[0]
		if side == sideLeft {
			ev.key = ev.parts[b0.ls].Attr(b0.la)
		} else {
			ev.key = ev.parts[b0.rs].Attr(b0.ra)
		}
	}
}

// push is the stage's input: the per-stage Synchronizer (Alg. 1 with m=2).
func (s *pstage) push(ev *event, side int) {
	s.stampKey(ev, side)
	ev.ord = s.ord
	s.ord++
	if ev.ts > s.tsync {
		s.buf.Push(ev)
		s.counts[side]++
		s.drainSync()
		return
	}
	s.process(ev, side)
}

func (s *pstage) drainSync() {
	for s.buf.Len() > 0 && s.syncReady() {
		s.tsync = s.buf.Peek().ts
		for s.buf.Len() > 0 && s.buf.Peek().ts == s.tsync {
			ev := s.buf.Pop()
			side := s.sideOf(ev)
			s.counts[side]--
			s.process(ev, side)
		}
	}
}

func (s *pstage) syncReady() bool {
	for i := 0; i < 2; i++ {
		if s.open[i] && s.counts[i] == 0 {
			return false
		}
	}
	return true
}

func (s *pstage) closeSide(side int) {
	if !s.open[side] {
		return
	}
	s.open[side] = false
	s.drainSync()
}

// alloc hands out a recycled event (parts already all-nil) or a fresh one.
// Driver-thread only.
func (s *pstage) alloc() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	return &event{parts: make([]*stream.Tuple, s.tree.m)}
}

// recycle returns a dead event to the stage arena. Only events that can no
// longer be referenced enter here: expired window entries and out-of-scope
// drops. Events handed to the sink never come back (Partial exposes their
// parts to the user).
func (s *pstage) recycle(ev *event) {
	clear(ev.parts)
	ev.key = 0
	s.free = append(s.free, ev)
}

// newOut allocates the destination event for a driver-thread combine: from
// the parent stage's arena when the output will live in the parent's
// driver-thread windows, plain otherwise (root outputs reach the user
// through the sink; sharded parents expire on worker goroutines).
func (s *pstage) newOut() *event {
	if p := s.parent; p != nil && p.sh == nil {
		return p.alloc()
	}
	return &event{parts: make([]*stream.Tuple, s.tree.m)}
}

// process is the binary Alg. 2 step on one synchronized event.
func (s *pstage) process(ev *event, side int) {
	if s.sh != nil {
		s.sh.process(ev, side)
		return
	}
	if ev.ts >= s.onT {
		s.onT = ev.ts
		opp := s.win[1-side]
		opp.expire(ev.ts)
		nCross := int64(opp.heap.Len())
		nOn := s.probe(ev, side, opp)
		s.win[side].insert(ev)
		if s.prodHook != nil {
			s.prodHook(s.id, ev.ts, ev.delay, nCross, nOn, true)
		}
		return
	}
	if s.prodHook != nil {
		s.prodHook(s.id, ev.ts, ev.delay, 0, 0, false)
	}
	if ev.deadline >= s.onT {
		s.win[side].insert(ev)
	} else {
		s.recycle(ev)
	}
}

// probe joins ev against the opposing window opp, emitting derived results
// downstream; the worker path runs its own copy of this loop so outputs can
// be collected for ordered release instead.
func (s *pstage) probe(ev *event, side int, opp *pwindow) int64 {
	var n int64
	for _, cand := range s.stageCandidates(opp, ev.key) {
		if cand.deadline < ev.ts {
			continue
		}
		if s.matchesInto(ev, cand, side, s.assign) {
			s.output(s.combine(ev, cand, side, s.newOut()))
			n++
		}
	}
	return n
}

// stageCandidates selects the candidate set for a probe key: the hash
// bucket on keyed stages, a widened range view on band-only stages, every
// live entry otherwise.
func (s *pstage) stageCandidates(w *pwindow, key float64) []*event {
	if w.srt != nil {
		lo, hi, ok := join.ProbeRange(key, s.bands[0].eps)
		if !ok {
			return nil
		}
		return w.srt.Range(lo, hi)
	}
	return w.candidates(key)
}

// matchesInto checks the residual cross predicates on one candidate pair.
// scratch is the caller's m-length assignment buffer (the stage's own on
// the driver thread, a worker-local one on the sharded path), consulted
// only when generic checks need a full assignment.
func (s *pstage) matchesInto(ev, cand *event, side int, scratch []*stream.Tuple) bool {
	a, b := ev, cand
	if side == sideRight {
		a, b = cand, ev
	}
	// a holds side-0 constituents, b side-1.
	skip := 0
	if s.keyed {
		skip = 1
	}
	for _, l := range s.lookups[skip:] {
		if a.parts[l.ls].Attr(l.la) != b.parts[l.rs].Attr(l.ra) {
			return false
		}
	}
	for _, p := range s.bands {
		d := a.parts[p.ls].Attr(p.la) - b.parts[p.rs].Attr(p.ra)
		// Negated form: NaN (all comparisons false) never band-matches.
		if !(d >= -p.eps && d <= p.eps) {
			return false
		}
	}
	if len(s.checks) == 0 {
		return true
	}
	for i := range scratch {
		scratch[i] = nil
	}
	for st, t := range a.parts {
		if t != nil {
			scratch[st] = t
		}
	}
	for st, t := range b.parts {
		if t != nil {
			scratch[st] = t
		}
	}
	for i, gi := range s.checks {
		if p := s.progs[i]; p != nil {
			if !p.Eval(scratch) {
				return false
			}
		} else if !s.tree.cond.Generics[gi].Eval(scratch) {
			return false
		}
	}
	return true
}

// combine materializes the joined partial of ev and cand into out, whose
// parts slice must be all-nil (a fresh allocation or an arena handout).
func (s *pstage) combine(ev, cand *event, side int, out *event) *event {
	for st, t := range ev.parts {
		if t != nil {
			out.parts[st] = t
		}
	}
	for st, t := range cand.parts {
		if t != nil {
			out.parts[st] = t
		}
	}
	out.ts = ev.ts
	if cand.ts > out.ts {
		out.ts = cand.ts
	}
	out.deadline = ev.deadline
	if cand.deadline < out.deadline {
		out.deadline = cand.deadline
	}
	out.delay = ev.delay
	return out
}

// output hands a derived partial downstream, or to the sink at the root.
func (s *pstage) output(out *event) {
	if s.parent != nil {
		s.parent.push(out, s.parentSide)
		return
	}
	s.tree.results++
	if s.tree.sink != nil {
		s.tree.sink(Partial{TS: out.ts, Delay: out.delay, Parts: out.parts})
	}
}

// ---- sharded stage ----

const (
	pmsgProbe = iota
	pmsgInsert
	pmsgBarrier
)

// shardDepth bounds how many probes may be in flight per sharded stage:
// probe seq−shardDepth is force-released (blocking on its worker if
// necessary) when probe seq is routed. The bound is what makes sharded
// stages deterministic — every release point is a function of the input
// sequence, never of worker scheduling.
const shardDepth = 128

// pmsg is one unit of worker input.
type pmsg struct {
	ev   *event
	wm   stream.Time // stage onT at routing time
	seq  uint64      // probe sequence (pmsgProbe only)
	side uint8
	kind uint8
}

// probeMeta is the router-side accounting of one in-flight probe.
type probeMeta struct {
	ts, delay stream.Time
	nCross    int64
}

// pshard partitions one stage's windows across n workers by the stage's
// cross key: hash cells for an equi key, ±eps-replicated range cells for a
// band key. Ordering stays on the driver thread — see the package-level
// determinism note.
type pshard struct {
	stage *pstage
	n     int
	cell  float64 // band mode: range-cell width (4·eps keeps replicas ≤ 2 cells)

	workers []*pworker
	rings   [2]pq.Heap[stream.Time] // global deadline multisets (router view)

	seq     uint64
	nextSeq uint64
	meta    map[uint64]probeMeta

	mu    sync.Mutex
	cond  *sync.Cond
	ready map[uint64][]*event // completed, unreleased probe outputs

	wg sync.WaitGroup // insertBarrier rendezvous

	// First worker failure, recorded under mu. A probe failure is surfaced
	// when release reaches its sequence number — the exact chunk boundary
	// the emit gate of a supervised replay relies on; an insert failure is
	// surfaced before the next chunk is released.
	failed        bool
	failImmediate bool
	failSeq       uint64
	failErr       error

	stopped bool
}

// pworker is one shard of a stage: its own window pair and scratch buffers,
// fed FIFO through a channel.
type pworker struct {
	sh      *pshard
	id      int
	ch      chan pmsg
	win     [2]*pwindow
	scratch []*stream.Tuple
	done    chan struct{}
	failed  bool // drain mode: a panic was contained, inputs are discarded
}

func newPshard(s *pstage, n int) *pshard {
	sh := &pshard{
		stage: s,
		n:     n,
		rings: [2]pq.Heap[stream.Time]{
			pq.New(func(a, b stream.Time) bool { return a < b }),
			pq.New(func(a, b stream.Time) bool { return a < b }),
		},
		meta:  make(map[uint64]probeMeta),
		ready: make(map[uint64][]*event),
	}
	sh.cond = sync.NewCond(&sh.mu)
	if s.banded {
		sh.cell = 4 * s.bands[0].eps
	}
	sh.workers = make([]*pworker, n)
	for i := range sh.workers {
		w := &pworker{
			sh:      sh,
			id:      i,
			ch:      make(chan pmsg, 256),
			win:     [2]*pwindow{newPwindow(s.keyed, s.banded), newPwindow(s.keyed, s.banded)},
			scratch: make([]*stream.Tuple, s.tree.m),
			done:    make(chan struct{}),
		}
		sh.workers[i] = w
		go w.run()
	}
	return sh
}

// process is the sharded counterpart of pstage.process: classify on the
// driver thread, account globally, route.
func (sh *pshard) process(ev *event, side int) {
	s := sh.stage
	if ev.ts >= s.onT {
		s.onT = ev.ts
		opp := &sh.rings[1-side]
		for opp.Len() > 0 && opp.Peek() < ev.ts {
			opp.Pop()
		}
		nCross := int64(opp.Len())
		sh.rings[side].Push(ev.deadline)
		seq := sh.seq
		sh.seq++
		sh.meta[seq] = probeMeta{ts: ev.ts, delay: ev.delay, nCross: nCross}
		owner := sh.route(ev, side, s.onT, false)
		sh.workers[owner].ch <- pmsg{ev: ev, wm: s.onT, seq: seq, side: uint8(side), kind: pmsgProbe}
		if seq >= shardDepth {
			sh.release(seq - shardDepth)
		}
		return
	}
	if s.prodHook != nil {
		s.prodHook(s.id, ev.ts, ev.delay, 0, 0, false)
	}
	if ev.deadline >= s.onT {
		sh.rings[side].Push(ev.deadline)
		owner := sh.route(ev, side, s.onT, true)
		sh.workers[owner].ch <- pmsg{ev: ev, wm: s.onT, side: uint8(side), kind: pmsgInsert}
	}
}

// route returns the owner worker of ev's key and — in band mode — sends the
// insert-only replicas covering [key−eps, key+eps] so any band partner's
// owner holds a copy. Replicas are sent before the caller sends the owner
// message, preserving per-worker FIFO between an insert and any later probe
// that could match it.
func (sh *pshard) route(ev *event, side int, wm stream.Time, insertOnly bool) int {
	if sh.stage.keyed {
		bits, ok := index.KeyBits(ev.key)
		if !ok {
			bits = 0 // NaN can never equi-match; any worker will do
		}
		return int(index.Mix64(bits) % uint64(sh.n))
	}
	eps := sh.stage.bands[0].eps
	owner := sh.cellWorker(sh.bandCell(ev.key))
	lo, hi := sh.bandCell(ev.key-eps), sh.bandCell(ev.key+eps)
	for c := lo; c <= hi; c++ {
		if w := sh.cellWorker(c); w != owner {
			sh.workers[w].ch <- pmsg{ev: ev, wm: wm, side: uint8(side), kind: pmsgInsert}
		}
	}
	return owner
}

// bandCell quantizes a band key to its range cell with the same saturating
// quantizer the sharded operator's router uses (index.RangeCell).
func (sh *pshard) bandCell(key float64) int64 { return index.RangeCell(key, sh.cell) }

func (sh *pshard) cellWorker(cell int64) int { return index.CellOwner(cell, sh.n) }

// release hands the outputs of every probe with sequence ≤ upTo
// downstream, in sequence order, blocking until the owning workers have
// completed them. The stage's productivity hook fires with the router-side
// accounting, and the outputs re-enter the tree exactly as the unsharded
// stage would have emitted them.
func (sh *pshard) release(upTo uint64) {
	s := sh.stage
	for sh.nextSeq <= upTo {
		sh.mu.Lock()
		var outs []*event
		for {
			// A contained worker panic surfaces here, on the driver thread,
			// before the failed probe's chunk (or, for an insert failure,
			// the next chunk) is released: everything already emitted is a
			// prefix of complete per-probe chunks, which is what keeps a
			// checkpoint+replay's emit gate multiset-exact (DESIGN.md §10).
			if sh.failed && (sh.failImmediate || sh.failSeq <= sh.nextSeq) {
				err := sh.failErr
				sh.mu.Unlock()
				panic(err)
			}
			var ok bool
			if outs, ok = sh.ready[sh.nextSeq]; ok {
				break
			}
			sh.cond.Wait()
		}
		delete(sh.ready, sh.nextSeq)
		sh.mu.Unlock()
		seq := sh.nextSeq
		sh.nextSeq++
		m := sh.meta[seq]
		delete(sh.meta, seq)
		if s.prodHook != nil {
			s.prodHook(s.id, m.ts, m.delay, m.nCross, int64(len(outs)), true)
		}
		for _, out := range outs {
			s.output(out)
		}
	}
}

// quiesce releases every routed probe. Trailing insert-only messages may
// still sit in worker queues; they cannot affect any released output (a
// probe that could match them would have been routed behind them FIFO) and
// are drained at the latest by stop.
func (sh *pshard) quiesce() {
	if sh.seq > 0 {
		sh.release(sh.seq - 1)
	}
}

// insertBarrier waits until every worker has drained its queue — including
// the trailing insert-only messages quiesce leaves behind. After quiesce +
// insertBarrier the worker windows are stable and (via the WaitGroup's
// happens-before edge) readable from the driver thread: the precondition
// for capturing a checkpoint of a sharded stage.
func (sh *pshard) insertBarrier() {
	sh.wg.Add(sh.n)
	for _, w := range sh.workers {
		w.ch <- pmsg{kind: pmsgBarrier}
	}
	sh.wg.Wait()
}

// fail records the first worker failure and wakes the driver, which may be
// blocked in release waiting for the failed probe's outputs.
func (sh *pshard) fail(m pmsg, err error) {
	sh.mu.Lock()
	if !sh.failed {
		sh.failed = true
		sh.failErr = err
		if m.kind == pmsgProbe {
			sh.failSeq = m.seq
		} else {
			sh.failImmediate = true
		}
	}
	sh.cond.Broadcast()
	sh.mu.Unlock()
}

// stop shuts the workers down; call after a final quiesce. Idempotent:
// Finish and a supervisor's Abandon may both reach it when a flush panics
// halfway through the teardown.
func (sh *pshard) stop() {
	if sh.stopped {
		return
	}
	sh.stopped = true
	for _, w := range sh.workers {
		close(w.ch)
	}
	for _, w := range sh.workers {
		<-w.done
	}
}

// run is the worker loop: FIFO over messages, one stage step per message.
// Completed probes land in the reorder buffer with their (possibly empty)
// output lists; the empty entry is what tells the router the sequence
// number is done. A panic inside a step is contained by step's recover: the
// worker flips into drain mode — it keeps acking barriers (so the driver's
// insertBarrier never hangs on a dead worker) and discards everything else,
// while the recorded failure surfaces on the driver thread in release.
func (w *pworker) run() {
	defer close(w.done)
	for m := range w.ch {
		if m.kind == pmsgBarrier {
			w.sh.wg.Done()
			continue
		}
		if w.failed {
			continue
		}
		w.step(m)
	}
}

// step processes one probe or insert message, converting a panic — injected
// or genuine — into a recorded typed failure instead of crashing the
// process.
func (w *pworker) step(m pmsg) {
	defer func() {
		if r := recover(); r != nil {
			w.failed = true
			w.sh.fail(m, &fault.WorkerError{Worker: w.id, Cause: fault.AsError(r)})
		}
	}()
	s := w.sh.stage
	switch m.kind {
	case pmsgProbe:
		s.tree.inject.MaybeDelay(w.id)
		s.tree.inject.MaybePanic(w.id)
		side := int(m.side)
		opp := w.win[1-side]
		opp.expire(m.ev.ts)
		var outs []*event
		for _, cand := range s.stageCandidates(opp, m.ev.key) {
			if cand.deadline < m.ev.ts {
				continue
			}
			if s.matchesInto(m.ev, cand, side, w.scratch) {
				out := &event{parts: make([]*stream.Tuple, s.tree.m)}
				outs = append(outs, s.combine(m.ev, cand, side, out))
			}
		}
		w.win[side].insert(m.ev)
		w.sh.mu.Lock()
		w.sh.ready[m.seq] = outs
		w.sh.cond.Broadcast()
		w.sh.mu.Unlock()
	default: // pmsgInsert
		side := int(m.side)
		w.win[side].expire(m.wm)
		if m.ev.deadline >= m.wm {
			w.win[side].insert(m.ev)
		}
	}
}
