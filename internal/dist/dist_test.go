package dist

import (
	"math"
	"math/rand"
	"repro/internal/leakcheck"
	"testing"

	"repro/internal/join"
	"repro/internal/kslack"
	"repro/internal/stream"
	"repro/internal/syncer"
)

// workload builds an m-stream equi feed with bounded disorder.
func workload(m, rounds int, seed int64, domain int) stream.Batch {
	rng := rand.New(rand.NewSource(seed))
	var out stream.Batch
	var seq uint64
	ts := stream.Time(3000)
	for i := 0; i < rounds; i++ {
		ts += 10
		for src := 0; src < m; src++ {
			t := ts
			if rng.Intn(4) == 0 {
				t -= stream.Time(rng.Intn(2000))
			}
			out = append(out, &stream.Tuple{TS: t, Seq: seq, Src: src,
				Attrs: []float64{float64(rng.Intn(domain)), float64(rng.Intn(100))}})
			seq++
		}
	}
	return out
}

// mjoinResults runs the reference single-operator MJoin with per-stream
// K-slack buffers of size k and a shared Synchronizer, mirroring the
// monolithic pipeline.
func mjoinResults(cond *join.Condition, windows []stream.Time, k stream.Time, in stream.Batch) int64 {
	op := join.New(cond, windows)
	sy := syncer.New(cond.M, op.Process)
	ks := make([]*kslack.Buffer, cond.M)
	for i := range ks {
		ks[i] = kslack.New(k, sy.Push)
	}
	for _, e := range in {
		ks[e.Src].Push(e)
	}
	for _, b := range ks {
		b.Flush()
	}
	for i := 0; i < cond.M; i++ {
		sy.Close(i)
	}
	return op.Results()
}

func clone(in stream.Batch) stream.Batch { return in.Clone() }

func TestTreeAgreesWithMJoin2Way(t *testing.T) {
	leakcheck.Check(t)
	in := workload(2, 2000, 1, 10)
	maxD, _ := in.MaxDelay()
	cond := join.EquiChain(2, 0)
	w := []stream.Time{stream.Second, stream.Second}

	want := mjoinResults(cond, w, maxD, clone(in))
	tree := NewTree(join.EquiChain(2, 0), w, maxD, nil)
	for _, e := range clone(in) {
		tree.Push(e)
	}
	tree.Finish()
	if tree.Results() != want {
		t.Fatalf("tree %d results, MJoin %d", tree.Results(), want)
	}
	if want == 0 {
		t.Fatal("degenerate workload: no results")
	}
}

func TestTreeAgreesWithMJoin3Way(t *testing.T) {
	leakcheck.Check(t)
	in := workload(3, 1200, 2, 200)
	maxD, _ := in.MaxDelay()
	cond := join.EquiChain(3, 0)
	w := []stream.Time{2 * stream.Second, 2 * stream.Second, 2 * stream.Second}

	want := mjoinResults(cond, w, maxD, clone(in))
	tree := NewTree(join.EquiChain(3, 0), w, maxD, nil)
	for _, e := range clone(in) {
		tree.Push(e)
	}
	tree.Finish()
	if tree.Results() != want {
		t.Fatalf("tree %d results, MJoin %d", tree.Results(), want)
	}
	if tree.Operators() != 2 {
		t.Fatalf("Operators = %d, want 2", tree.Operators())
	}
	if want == 0 {
		t.Fatal("degenerate workload: no results")
	}
}

// Unequal window extents exercise the per-constituent deadline: a partial
// must expire when its EARLIEST constituent leaves its own (possibly small)
// window, not when the partial's max timestamp does.
func TestTreeAgreesWithMJoinUnequalWindows(t *testing.T) {
	leakcheck.Check(t)
	in := workload(3, 1000, 3, 50)
	maxD, _ := in.MaxDelay()
	cond := join.EquiChain(3, 0)
	w := []stream.Time{500, 2 * stream.Second, stream.Second}

	want := mjoinResults(cond, w, maxD, clone(in))
	tree := NewTree(join.EquiChain(3, 0), w, maxD, nil)
	for _, e := range clone(in) {
		tree.Push(e)
	}
	tree.Finish()
	if tree.Results() != want {
		t.Fatalf("tree %d results, MJoin %d", tree.Results(), want)
	}
	if want == 0 {
		t.Fatal("degenerate workload: no results")
	}
}

// Band predicates are evaluated as residual filters at the stage where
// they become fully bound; the tree must agree with the central operator's
// range-index execution result for result.
func TestTreeBandPredicate(t *testing.T) {
	leakcheck.Check(t)
	in := workload(2, 1500, 9, 40)
	maxD, _ := in.MaxDelay()
	mk := func() *join.Condition {
		// Band on attr 1 (values 0..99, eps 7) plus an equi on attr 0 so
		// both the indexed and the residual stage paths run.
		return join.Cross(2).Equi(0, 0, 1, 0).Band(0, 1, 1, 1, 7)
	}
	w := []stream.Time{stream.Second, stream.Second}
	want := mjoinResults(mk(), w, maxD, clone(in))
	tree := NewTree(mk(), w, maxD, nil)
	for _, e := range clone(in) {
		tree.Push(e)
	}
	tree.Finish()
	if tree.Results() != want {
		t.Fatalf("tree %d results, MJoin %d", tree.Results(), want)
	}
	if want == 0 {
		t.Fatal("degenerate workload: no results")
	}
}

// TestTreePureBandPredicate runs a band-only condition through the
// unindexed scan path of the stage windows.
func TestTreePureBandPredicate(t *testing.T) {
	leakcheck.Check(t)
	in := workload(2, 900, 10, 5)
	maxD, _ := in.MaxDelay()
	mk := func() *join.Condition { return join.Cross(2).Band(0, 1, 1, 1, 12) }
	w := []stream.Time{500, 500}
	want := mjoinResults(mk(), w, maxD, clone(in))
	tree := NewTree(mk(), w, maxD, nil)
	for _, e := range clone(in) {
		tree.Push(e)
	}
	tree.Finish()
	if tree.Results() != want {
		t.Fatalf("tree %d results, MJoin %d", tree.Results(), want)
	}
	if want == 0 {
		t.Fatal("degenerate workload: no results")
	}
}

// TestTreeSealsCondition: mutating a condition after compiling it into a
// tree must panic — the stage plans would silently ignore the predicate.
func TestTreeSealsCondition(t *testing.T) {
	leakcheck.Check(t)
	cond := join.Cross(3).Band(0, 1, 1, 1, 9)
	NewTree(cond, []stream.Time{100, 100, 100}, 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("mutating a tree-compiled condition must panic")
		}
	}()
	cond.Band(1, 1, 2, 1, 9)
}

// TestTreeBandChain3Way drives band-only stages whose *left* inputs are
// partial results, exercising the sorted range index on both stage sides
// (insert, expire, probe) through the synchronous and pipelined drivers.
func TestTreeBandChain3Way(t *testing.T) {
	leakcheck.Check(t)
	in := workload(3, 700, 21, 5)
	maxD, _ := in.MaxDelay()
	mk := func() *join.Condition {
		return join.Cross(3).Band(0, 1, 1, 1, 9).Band(1, 1, 2, 1, 9)
	}
	w := []stream.Time{400, 400, 400}
	want := mjoinResults(mk(), w, maxD, clone(in))
	if want == 0 {
		t.Fatal("degenerate workload: no results")
	}

	tree := NewTree(mk(), w, maxD, nil)
	for _, e := range clone(in) {
		tree.Push(e)
	}
	tree.Finish()
	if tree.Results() != want {
		t.Fatalf("tree %d results, MJoin %d", tree.Results(), want)
	}

	pl := NewPipelined(mk(), w, maxD, 64)
	go func() {
		for _, e := range clone(in) {
			pl.Push(e)
		}
		pl.Close()
	}()
	var got int64
	for range pl.Results() {
		got++
	}
	pl.Wait()
	if got != want {
		t.Fatalf("pipelined %d results, MJoin %d", got, want)
	}
}

// A generic (non-equi) predicate forces the cross-join scan path of the
// stage windows.
func TestTreeGenericPredicate(t *testing.T) {
	leakcheck.Check(t)
	in := workload(2, 800, 4, 5)
	maxD, _ := in.MaxDelay()
	mk := func() *join.Condition {
		return join.Cross(2).Where([]int{0, 1}, func(a []*stream.Tuple) bool {
			return math.Abs(a[0].Attr(1)-a[1].Attr(1)) < 10
		})
	}
	w := []stream.Time{300, 300}

	want := mjoinResults(mk(), w, maxD, clone(in))
	tree := NewTree(mk(), w, maxD, nil)
	for _, e := range clone(in) {
		tree.Push(e)
	}
	tree.Finish()
	if tree.Results() != want {
		t.Fatalf("tree %d results, MJoin %d", tree.Results(), want)
	}
	if want == 0 {
		t.Fatal("degenerate workload: no results")
	}
}

func TestPipelinedMatchesTree(t *testing.T) {
	leakcheck.Check(t)
	in := workload(3, 1000, 5, 100)
	maxD, _ := in.MaxDelay()
	w := []stream.Time{stream.Second, stream.Second, stream.Second}

	tree := NewTree(join.EquiChain(3, 0), w, maxD, nil)
	for _, e := range clone(in) {
		tree.Push(e)
	}
	tree.Finish()

	pipe := NewPipelined(join.EquiChain(3, 0), w, maxD, 128)
	var piped int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range pipe.Results() {
			piped++
		}
	}()
	for _, e := range clone(in) {
		pipe.Push(e)
	}
	pipe.Close()
	<-done
	pipe.Wait()

	if piped != tree.Results() {
		t.Fatalf("pipelined %d results, tree %d", piped, tree.Results())
	}
	if piped == 0 {
		t.Fatal("degenerate workload: no results")
	}
}

func TestSinkReceivesCompleteResults(t *testing.T) {
	leakcheck.Check(t)
	var got []Partial
	tree := NewTree(join.EquiChain(2, 0), []stream.Time{stream.Second, stream.Second}, 2*stream.Second,
		func(p Partial) { got = append(got, p) })
	tree.Push(&stream.Tuple{TS: 1000, Seq: 0, Src: 0, Attrs: []float64{7}})
	tree.Push(&stream.Tuple{TS: 1100, Seq: 1, Src: 1, Attrs: []float64{7}})
	tree.Finish()
	if len(got) != 1 {
		t.Fatalf("sink saw %d results, want 1", len(got))
	}
	r := got[0]
	if r.TS != 1100 || len(r.Parts) != 2 || r.Parts[0].Src != 0 || r.Parts[1].Src != 1 {
		t.Fatalf("bad result %+v", r)
	}
}

// A NaN join attribute must neither match anything nor crash index
// maintenance when the entry expires (regression: remove() used to panic on
// the unreachable NaN map key).
func TestNaNKeyNeverMatchesNorCrashes(t *testing.T) {
	leakcheck.Check(t)
	tree := NewTree(join.EquiChain(2, 0), []stream.Time{100, 100}, 0, nil)
	tree.Push(&stream.Tuple{TS: 10, Seq: 0, Src: 0, Attrs: []float64{math.NaN()}})
	tree.Push(&stream.Tuple{TS: 20, Seq: 1, Src: 1, Attrs: []float64{math.NaN()}})
	tree.Push(&stream.Tuple{TS: 500, Seq: 2, Src: 0, Attrs: []float64{1}})
	tree.Push(&stream.Tuple{TS: 510, Seq: 3, Src: 1, Attrs: []float64{1}})
	tree.Finish()
	if tree.Results() != 1 {
		t.Fatalf("results = %d, want 1 (NaN pair must not match)", tree.Results())
	}
}

func TestSetKPropagates(t *testing.T) {
	leakcheck.Check(t)
	// With K = 0 the disordered feed loses results; raising K to cover the
	// disorder mid-stream must start recovering them.
	in := workload(2, 1500, 6, 5)
	maxD, _ := in.MaxDelay()
	w := []stream.Time{stream.Second, stream.Second}

	full := NewTree(join.EquiChain(2, 0), w, maxD, nil)
	for _, e := range clone(in) {
		full.Push(e)
	}
	full.Finish()

	none := NewTree(join.EquiChain(2, 0), w, 0, nil)
	for _, e := range clone(in) {
		none.Push(e)
	}
	none.Finish()

	if none.Results() >= full.Results() {
		t.Fatalf("K=0 should lose results: %d vs %d", none.Results(), full.Results())
	}

	adaptive := NewTree(join.EquiChain(2, 0), w, 0, nil)
	half := clone(in)
	for i, e := range half {
		if i == len(half)/4 {
			adaptive.SetK(maxD)
		}
		adaptive.Push(e)
	}
	adaptive.Finish()
	if adaptive.Results() <= none.Results() {
		t.Fatalf("raising K should recover results: %d vs %d", adaptive.Results(), none.Results())
	}
}
