package dist

import (
	"fmt"
	"repro/internal/leakcheck"
	"strings"
	"testing"

	"repro/internal/join"
	"repro/internal/kslack"
	"repro/internal/stream"
	"repro/internal/syncer"
)

// sig renders a result's identity: one src:seq pair per constituent, in
// stream order.
func sig(tuples []*stream.Tuple) string {
	var b strings.Builder
	for _, t := range tuples {
		if t != nil {
			fmt.Fprintf(&b, "%d:%d,", t.Src, t.Seq)
		}
	}
	return b.String()
}

// mjoinMultiset runs the flat single-operator reference (K-slack →
// Synchronizer → MJoin) and returns the materialized result multiset.
func mjoinMultiset(cond *join.Condition, windows []stream.Time, k stream.Time, in stream.Batch) map[string]int {
	set := map[string]int{}
	op := join.New(cond, windows, join.WithEmit(func(r stream.Result) { set[sig(r.Tuples)]++ }))
	sy := syncer.New(cond.M, op.Process)
	ks := make([]*kslack.Buffer, cond.M)
	for i := range ks {
		ks[i] = kslack.New(k, sy.Push)
	}
	for _, e := range in {
		ks[e.Src].Push(e)
	}
	for _, b := range ks {
		b.Flush()
	}
	for i := 0; i < cond.M; i++ {
		sy.Close(i)
	}
	return set
}

// planMultiset runs one shape through the plan tree and returns the result
// multiset.
func planMultiset(cond *join.Condition, windows []stream.Time, shape *Shape, k stream.Time, in stream.Batch) map[string]int {
	set := map[string]int{}
	t := NewPlanTree(cond, windows, shape, k, func(p Partial) { set[sig(p.Parts)]++ })
	for _, e := range in {
		t.Push(e)
	}
	t.Finish()
	return set
}

func diffMultisets(t *testing.T, name string, want, got map[string]int) {
	t.Helper()
	if len(want) == 0 {
		t.Fatalf("%s: degenerate workload, no results", name)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s: result %s count %d, want %d", name, k, got[k], v)
			return
		}
	}
	for k, v := range got {
		if want[k] != v {
			t.Errorf("%s: unexpected result %s ×%d", name, k, v)
			return
		}
	}
}

// shapes4 enumerates the shapes exercised on 4-stream conditions: the
// spine, the balanced bushy tree, a right-heavy bushy tree, and sharded
// variants.
func shard(n int, s *Shape) *Shape { s.Shards = n; return s }
func leaf(s int) *Shape            { return &Shape{Stream: s} }
func branch(l, r *Shape) *Shape    { return &Shape{Left: l, Right: r} }

// TestPlanTreeSpineAgreesWithMJoin: the plan engine shaped as the left-deep
// spine reproduces the flat reference multiset, including band and generic
// predicates.
func TestPlanTreeSpineAgreesWithMJoin(t *testing.T) {
	leakcheck.Check(t)
	conds := map[string]func() *join.Condition{
		"equichain": func() *join.Condition { return join.EquiChain(3, 0) },
		"band+equi": func() *join.Condition {
			return join.Cross(3).Equi(0, 0, 1, 0).Band(1, 1, 2, 1, 6)
		},
		"generic": func() *join.Condition {
			return join.Cross(3).Equi(0, 0, 1, 0).Equi(1, 0, 2, 0).
				Where([]int{0, 2}, func(a []*stream.Tuple) bool {
					return a[0].Attr(1) < a[2].Attr(1)+50
				})
		},
	}
	in := workload(3, 900, 11, 12)
	maxD, _ := in.MaxDelay()
	w := []stream.Time{stream.Second, stream.Second, stream.Second}
	for name, mk := range conds {
		want := mjoinMultiset(mk(), w, maxD, clone(in))
		got := planMultiset(mk(), w, Spine(3), maxD, clone(in))
		diffMultisets(t, "spine/"+name, want, got)
	}
}

// TestPlanTreeBushyAgreesWithMJoin: bushy shapes — both sides of the root
// stage are sub-plans — reproduce the flat reference multiset.
func TestPlanTreeBushyAgreesWithMJoin(t *testing.T) {
	leakcheck.Check(t)
	in := workload(4, 500, 7, 8)
	maxD, _ := in.MaxDelay()
	w := []stream.Time{800, 800, 800, 800}
	cases := []struct {
		name  string
		cond  func() *join.Condition
		shape func() *Shape
	}{
		{"balanced-equichain", func() *join.Condition { return join.EquiChain(4, 0) },
			func() *Shape { return branch(branch(leaf(0), leaf(1)), branch(leaf(2), leaf(3))) }},
		{"right-heavy-equichain", func() *join.Condition { return join.EquiChain(4, 0) },
			func() *Shape { return branch(leaf(0), branch(leaf(1), branch(leaf(2), leaf(3)))) }},
		{"balanced-bandchain", func() *join.Condition {
			return join.Cross(4).Band(0, 1, 1, 1, 9).Equi(1, 0, 2, 0).Band(2, 1, 3, 1, 9)
		}, func() *Shape { return branch(branch(leaf(0), leaf(1)), branch(leaf(2), leaf(3))) }},
		{"bushy-generic", func() *join.Condition {
			return join.EquiChain(4, 0).Where([]int{1, 3}, func(a []*stream.Tuple) bool {
				return a[1].Attr(1) != a[3].Attr(1)
			})
		}, func() *Shape { return branch(branch(leaf(0), leaf(1)), branch(leaf(2), leaf(3))) }},
	}
	for _, tc := range cases {
		want := mjoinMultiset(tc.cond(), w, maxD, clone(in))
		got := planMultiset(tc.cond(), w, tc.shape(), maxD, clone(in))
		diffMultisets(t, "bushy/"+tc.name, want, got)
	}
}

// TestPlanTreeStageShardedAgreesWithMJoin: sharding individual stages —
// including every stage of a star condition that has NO full key class —
// must not change the result multiset, at any shard count.
func TestPlanTreeStageShardedAgreesWithMJoin(t *testing.T) {
	leakcheck.Check(t)
	in := workload(4, 600, 13, 10)
	maxD, _ := in.MaxDelay()
	w := []stream.Time{800, 800, 800, 800}
	star := func() *join.Condition { return join.Star(4, []int{0, 1, 2}, []int{0, 0, 0}) }
	want := mjoinMultiset(star(), w, maxD, clone(in))

	for _, n := range []int{2, 4, 8} {
		spine := shard(n, branch(shard(n, branch(shard(n, branch(leaf(0), leaf(1))), leaf(2))), leaf(3)))
		got := planMultiset(star(), w, spine, maxD, clone(in))
		diffMultisets(t, fmt.Sprintf("star-sharded-%d", n), want, got)
	}

	// Bushy + sharded root over an equichain.
	chain := func() *join.Condition { return join.EquiChain(4, 0) }
	wantChain := mjoinMultiset(chain(), w, maxD, clone(in))
	bushy := shard(4, branch(shard(2, branch(leaf(0), leaf(1))), branch(leaf(2), leaf(3))))
	diffMultisets(t, "bushy-sharded", wantChain, planMultiset(chain(), w, bushy, maxD, clone(in)))
}

// TestPlanTreeBandShardedStage: a band-keyed stage partitions by range
// cells with ±eps replica inserts; results must match the flat reference.
func TestPlanTreeBandShardedStage(t *testing.T) {
	leakcheck.Check(t)
	in := workload(2, 900, 19, 30)
	maxD, _ := in.MaxDelay()
	w := []stream.Time{600, 600}
	mk := func() *join.Condition { return join.Cross(2).Band(0, 1, 1, 1, 11) }
	want := mjoinMultiset(mk(), w, maxD, clone(in))
	for _, n := range []int{2, 5} {
		got := planMultiset(mk(), w, shard(n, branch(leaf(0), leaf(1))), maxD, clone(in))
		diffMultisets(t, fmt.Sprintf("band-sharded-%d", n), want, got)
	}
}

// TestPlanTreeShardUnkeyedPanics: sharding a stage whose cross predicates
// carry no equi/band key must fail loudly, not silently broadcast.
func TestPlanTreeShardUnkeyedPanics(t *testing.T) {
	leakcheck.Check(t)
	cond := join.Cross(2).Where([]int{0, 1}, func([]*stream.Tuple) bool { return true })
	defer func() {
		if recover() == nil {
			t.Fatal("sharding an unkeyed stage must panic")
		}
	}()
	NewPlanTree(cond, []stream.Time{100, 100}, shard(2, branch(leaf(0), leaf(1))), 0, nil)
}

// TestPlanTreeShapeValidation: shapes must cover every stream exactly once.
func TestPlanTreeShapeValidation(t *testing.T) {
	leakcheck.Check(t)
	w := []stream.Time{100, 100, 100}
	for name, sh := range map[string]*Shape{
		"duplicate": branch(branch(leaf(0), leaf(1)), leaf(1)),
		"missing":   branch(leaf(0), leaf(2)),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s shape must panic", name)
				}
			}()
			NewPlanTree(join.EquiChain(3, 0), w, sh, 0, nil)
		}()
	}
}

// TestPlanTreeLifecyclePanics mirrors the Tree lifecycle conventions.
func TestPlanTreeLifecyclePanics(t *testing.T) {
	leakcheck.Check(t)
	pt := NewPlanTree(join.EquiChain(2, 0), []stream.Time{100, 100}, Spine(2), 0, nil)
	pt.Push(&stream.Tuple{TS: 1, Src: 0, Attrs: []float64{1}})
	pt.Finish()
	for name, f := range map[string]func(){
		"Push after Finish": func() { pt.Push(&stream.Tuple{TS: 2, Src: 1, Attrs: []float64{1}}) },
		"double Finish":     pt.Finish,
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s must panic", name)
				}
			}()
			f()
		}()
	}
}

// TestAdaptivePlanTreeDeterministicWithShards: the adaptive plan tree's
// decision trajectory and result count are bit-for-bit reproducible across
// runs AND across shard counts ≥ 2 — release points are a function of the
// probe sequence only (the bounded-depth reorder pipeline), and every
// boundary quiesces the workers before deciding. The unsharded path
// releases stage outputs with zero depth and is its own deterministic
// execution; under a small adaptive K the two interleavings may buffer
// slightly different late tuples, so it is not compared here (the full-K
// differential tests pin unsharded == sharded == flat).
func TestAdaptivePlanTreeDeterministicWithShards(t *testing.T) {
	leakcheck.Check(t)
	in := workload(3, 3000, 23, 40)
	w := []stream.Time{stream.Second, stream.Second, stream.Second}
	cond := func() *join.Condition { return join.EquiChain(3, 0) }
	shapeN := func(n int) *Shape {
		inner := branch(leaf(0), leaf(1))
		outer := branch(inner, leaf(2))
		if n > 1 {
			inner.Shards = n
			outer.Shards = n
		}
		return outer
	}
	type trace struct {
		results int64
		ks      []string
	}
	run := func(n int) trace {
		var tr trace
		cfg := AdaptiveConfig{Adapt: testAdapt, PerStage: true,
			OnDecide: func(at stream.Time, ks []stream.Time) {
				tr.ks = append(tr.ks, fmt.Sprintf("%v:%v", at, ks))
			}}
		a := NewAdaptivePlanTree(cond(), w, shapeN(n), cfg, nil)
		for _, e := range in.Clone() {
			a.Push(e)
		}
		a.Finish()
		tr.results = a.Results()
		if a.Loop().Decisions() == 0 {
			t.Fatal("no adaptation steps ran")
		}
		return tr
	}
	want := run(2)
	if want.results == 0 {
		t.Fatal("degenerate workload")
	}
	for _, n := range []int{2, 4, 8} {
		got := run(n)
		if got.results != want.results {
			t.Errorf("shards=%d: results %d, want %d", n, got.results, want.results)
		}
		if len(got.ks) != len(want.ks) {
			t.Fatalf("shards=%d: %d decisions, want %d", n, len(got.ks), len(want.ks))
		}
		for i := range want.ks {
			if got.ks[i] != want.ks[i] {
				t.Errorf("shards=%d: decision %d = %s, want %s", n, i, got.ks[i], want.ks[i])
				break
			}
		}
	}
}

// TestAdaptivePlanTreeWeightsSkipBufferlessStages: in a balanced bushy
// shape the root stage governs no raw buffer; its scope weight is 0 and its
// decided K stays pinned to 0 while the leaf stages adapt.
func TestAdaptivePlanTreeWeightsSkipBufferlessStages(t *testing.T) {
	leakcheck.Check(t)
	in := workload(4, 2500, 29, 60)
	w := []stream.Time{stream.Second, stream.Second, stream.Second, stream.Second}
	bushy := branch(branch(leaf(0), leaf(1)), branch(leaf(2), leaf(3)))
	a := NewAdaptivePlanTree(join.EquiChain(4, 0), w, bushy, AdaptiveConfig{Adapt: testAdapt, PerStage: true}, nil)
	for _, e := range in.Clone() {
		a.Push(e)
	}
	a.Finish()
	if a.Loop().Decisions() == 0 {
		t.Fatal("no adaptation steps ran")
	}
	ks := a.Loop().Ks()
	if len(ks) != 3 {
		t.Fatalf("scopes = %d, want 3", len(ks))
	}
	if ks[2] != 0 {
		t.Errorf("bufferless root stage decided K=%v, want pinned 0", ks[2])
	}
	if a.Loop().AvgK(0) == 0 && a.Loop().AvgK(1) == 0 {
		t.Error("leaf stages never adapted above 0")
	}
	if a.Results() == 0 {
		t.Fatal("degenerate workload")
	}
}
