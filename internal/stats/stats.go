// Package stats implements the Statistics Manager of Fig. 2: it monitors the
// raw input streams to estimate, per stream, the tuple-delay distribution
// f_Di, the arrival rate r_i, the Synchronizer's implicit buffer size
// K^sync_i (Proposition 1), and the current maximum tuple delay MaxD^H used
// to bound the K search in Alg. 3.
//
// The delay history R^stat_i is sized adaptively with ADWIN (Sec. IV-A,
// citing Bifet & Gavaldà): the history grows while the disorder pattern is
// stable and shrinks when a change is detected. A fixed-size history is
// available as an ablation.
package stats

import (
	"repro/internal/adwin"
	"repro/internal/hist"
	"repro/internal/stream"
)

// entry is one observed arrival in the history window.
type entry struct {
	delay stream.Time
	skew  stream.Time // iT − min_j jT measured at arrival
}

// streamStats tracks one input stream.
type streamStats struct {
	ad      *adwin.Window
	hist    *hist.Histogram
	entries []entry // entries[head:] are live, oldest first
	head    int
	sumSkew int64

	localT   stream.Time
	seen     bool
	arrivals int64
	firstTS  stream.Time
	maxDelay stream.Time // all-time maximum delay (for the Max-K-slack baseline)
}

// Manager monitors m input streams.
type Manager struct {
	g       stream.Time
	streams []*streamStats
	fixed   int // fixed history length; 0 means ADWIN-adaptive
	delta   float64
	maxHist int
	nSeen   int
}

// Option customizes the Manager.
type Option func(*Manager)

// WithFixedHistory disables ADWIN and keeps exactly n most recent delays per
// stream. Used by the R^stat ablation.
func WithFixedHistory(n int) Option {
	return func(m *Manager) { m.fixed = n }
}

// WithADWINDelta sets the ADWIN confidence parameter (default 0.002).
func WithADWINDelta(d float64) Option {
	return func(m *Manager) { m.delta = d }
}

// WithMaxHistory caps the history length even under ADWIN (default 8192
// entries per stream) to bound memory on very stable streams.
func WithMaxHistory(n int) Option {
	return func(m *Manager) { m.maxHist = n }
}

// NewManager creates a Statistics Manager for m streams with K-search
// granularity g.
func NewManager(m int, g stream.Time, opts ...Option) *Manager {
	mgr := &Manager{g: g, delta: 0.002, maxHist: 8192}
	for _, o := range opts {
		o(mgr)
	}
	mgr.streams = make([]*streamStats, m)
	for i := range mgr.streams {
		ss := &streamStats{hist: hist.New(g)}
		if mgr.fixed == 0 {
			ss.ad = adwin.New(mgr.delta)
		}
		mgr.streams[i] = ss
	}
	return mgr
}

// M returns the number of monitored streams.
func (m *Manager) M() int { return len(m.streams) }

// Observe records the raw arrival of tuple e (before any disorder handling).
func (m *Manager) Observe(e *stream.Tuple) {
	ss := m.streams[e.Src]
	if !ss.seen {
		ss.seen = true
		ss.localT = e.TS
		ss.firstTS = e.TS
		m.nSeen++
	} else if e.TS > ss.localT {
		ss.localT = e.TS
	}
	ss.arrivals++
	delay := ss.localT - e.TS
	if delay > ss.maxDelay {
		ss.maxDelay = delay
	}

	// Time skew measurement for K^sync (Proposition 1): taken against the
	// slowest stream among those seen so far.
	var skew stream.Time
	if m.nSeen == len(m.streams) {
		minT := ss.localT
		for _, other := range m.streams {
			if other.localT < minT {
				minT = other.localT
			}
		}
		skew = ss.localT - minT
	}

	m.push(ss, entry{delay: delay, skew: skew})
}

// push appends to the history and trims it to the target length.
func (m *Manager) push(ss *streamStats, en entry) {
	target := m.fixed
	if ss.ad != nil {
		ss.ad.Add(float64(en.delay))
		target = ss.ad.Len()
	}
	if target <= 0 || target > m.maxHist {
		target = m.maxHist
	}
	ss.entries = append(ss.entries, en)
	ss.sumSkew += int64(en.skew)
	ss.hist.Add(en.delay)
	for ss.live() > target {
		m.evict(ss)
	}
	// Compact the backing slice once the dead prefix dominates.
	if ss.head > 1024 && ss.head > len(ss.entries)/2 {
		n := copy(ss.entries, ss.entries[ss.head:])
		ss.entries = ss.entries[:n]
		ss.head = 0
	}
}

// live returns the number of live history entries.
func (ss *streamStats) live() int { return len(ss.entries) - ss.head }

// evict drops the oldest history entry.
func (m *Manager) evict(ss *streamStats) {
	if ss.live() == 0 {
		return
	}
	old := ss.entries[ss.head]
	ss.head++
	ss.sumSkew -= int64(old.skew)
	ss.hist.Remove(old.delay)
}

// StreamState is the serializable snapshot of one stream's statistics.
type StreamState struct {
	Delays   []stream.Time // live history entries, oldest first
	Skews    []stream.Time
	Adwin    *adwin.State // nil under a fixed history
	LocalT   stream.Time
	Seen     bool
	Arrivals int64
	FirstTS  stream.Time
	MaxDelay stream.Time
}

// State is the serializable snapshot of the Manager.
type State struct {
	Streams []StreamState
}

// State captures the Manager's state. The histogram and skew sums are not
// serialized: Restore rebuilds them from the history entries.
func (m *Manager) State() State {
	st := State{Streams: make([]StreamState, len(m.streams))}
	for i, ss := range m.streams {
		s := StreamState{
			LocalT: ss.localT, Seen: ss.seen, Arrivals: ss.arrivals,
			FirstTS: ss.firstTS, MaxDelay: ss.maxDelay,
		}
		for _, en := range ss.entries[ss.head:] {
			s.Delays = append(s.Delays, en.delay)
			s.Skews = append(s.Skews, en.skew)
		}
		if ss.ad != nil {
			ad := ss.ad.State()
			s.Adwin = &ad
		}
		st.Streams[i] = s
	}
	return st
}

// Restore loads a captured state into a freshly constructed Manager (same m,
// granularity and options). Histories re-enter without re-trimming and
// without feeding ADWIN — its native state is restored instead — so the
// restored manager answers every query exactly as the checkpointed one did.
func (m *Manager) Restore(st State) {
	m.nSeen = 0
	for i, s := range st.Streams {
		ss := m.streams[i]
		ss.localT = s.LocalT
		ss.seen = s.Seen
		ss.arrivals = s.Arrivals
		ss.firstTS = s.FirstTS
		ss.maxDelay = s.MaxDelay
		if ss.seen {
			m.nSeen++
		}
		ss.entries = ss.entries[:0]
		ss.head = 0
		ss.sumSkew = 0
		ss.hist.Reset()
		for j := range s.Delays {
			en := entry{delay: s.Delays[j], skew: s.Skews[j]}
			ss.entries = append(ss.entries, en)
			ss.sumSkew += int64(en.skew)
			ss.hist.Add(en.delay)
		}
		if ss.ad != nil && s.Adwin != nil {
			ss.ad.Restore(*s.Adwin)
		}
	}
}

// Hist returns the delay histogram f_Di of stream i over R^stat_i.
func (m *Manager) Hist(i int) *hist.Histogram { return m.streams[i].hist }

// CDF returns the cumulative delay distribution of stream i as a dense
// bucket slice (nil = no delays observed). It makes the Manager an
// adapt.Source whose model inputs are the raw streams.
func (m *Manager) CDF(i int) []float64 { return m.streams[i].hist.CumulativeProbs() }

// HistoryLen returns the current length of R^stat_i in tuples.
func (m *Manager) HistoryLen(i int) int { return m.streams[i].live() }

// Rate returns the average arrival rate r_i in tuples per time unit,
// measured as total arrivals over the stream's timestamp span.
func (m *Manager) Rate(i int) float64 {
	ss := m.streams[i]
	span := ss.localT - ss.firstTS
	if ss.arrivals < 2 || span <= 0 {
		return 0
	}
	return float64(ss.arrivals-1) / float64(span)
}

// Arrivals returns the total number of tuples observed on stream i.
func (m *Manager) Arrivals(i int) int64 { return m.streams[i].arrivals }

// KSync estimates the Synchronizer's implicit buffer size for stream i as
// the stream's average skew minus the minimum average skew over all streams
// (Sec. IV-A), so the slowest stream has K^sync = 0.
func (m *Manager) KSync(i int) stream.Time {
	min := m.avgSkew(0)
	for j := 1; j < len(m.streams); j++ {
		if s := m.avgSkew(j); s < min {
			min = s
		}
	}
	v := m.avgSkew(i) - min
	if v < 0 {
		return 0
	}
	return stream.Time(v)
}

func (m *Manager) avgSkew(i int) float64 {
	ss := m.streams[i]
	if ss.live() == 0 {
		return 0
	}
	return float64(ss.sumSkew) / float64(ss.live())
}

// MaxDelayRecent returns MaxD^H: the maximum tuple delay within the recent
// histories of all streams (bucket-rounded up to granularity g).
func (m *Manager) MaxDelayRecent() stream.Time {
	var max stream.Time
	for _, ss := range m.streams {
		if d := ss.hist.MaxDelay(); d > max {
			max = d
		}
	}
	return max
}

// MaxDelayAllTime returns the maximum delay among all so-far-observed tuples
// across all streams, the quantity tracked by the Max-K-slack baseline [12].
func (m *Manager) MaxDelayAllTime() stream.Time {
	var max stream.Time
	for _, ss := range m.streams {
		if ss.maxDelay > max {
			max = ss.maxDelay
		}
	}
	return max
}

// LocalT returns the local current time iT of stream i.
func (m *Manager) LocalT(i int) stream.Time { return m.streams[i].localT }

// GlobalT returns max_i iT, the framework's logical "now" used to schedule
// adaptation steps.
func (m *Manager) GlobalT() stream.Time {
	var max stream.Time
	first := true
	for _, ss := range m.streams {
		if !ss.seen {
			continue
		}
		if first || ss.localT > max {
			max = ss.localT
			first = false
		}
	}
	return max
}
