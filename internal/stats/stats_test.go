package stats

import (
	"math"
	"testing"

	"repro/internal/stream"
)

func tup(src int, ts stream.Time) *stream.Tuple {
	return &stream.Tuple{TS: ts, Src: src}
}

func TestLocalTAndGlobalT(t *testing.T) {
	m := NewManager(2, 10)
	m.Observe(tup(0, 100))
	m.Observe(tup(1, 50))
	m.Observe(tup(0, 90)) // late, localT unchanged
	if m.LocalT(0) != 100 || m.LocalT(1) != 50 {
		t.Fatalf("localT = %d/%d", m.LocalT(0), m.LocalT(1))
	}
	if m.GlobalT() != 100 {
		t.Fatalf("GlobalT = %d", m.GlobalT())
	}
}

func TestDelayHistogram(t *testing.T) {
	m := NewManager(1, 10)
	m.Observe(tup(0, 100)) // delay 0
	m.Observe(tup(0, 95))  // delay 5 → bucket 1
	m.Observe(tup(0, 100)) // delay 0
	h := m.Hist(0)
	if h.Total() != 3 {
		t.Fatalf("hist total = %d", h.Total())
	}
	if math.Abs(h.P(0)-2.0/3) > 1e-12 || math.Abs(h.P(1)-1.0/3) > 1e-12 {
		t.Fatalf("P(0)=%v P(1)=%v", h.P(0), h.P(1))
	}
}

func TestMaxDelays(t *testing.T) {
	m := NewManager(2, 10)
	m.Observe(tup(0, 1000))
	m.Observe(tup(0, 800)) // delay 200
	m.Observe(tup(1, 500))
	m.Observe(tup(1, 495)) // delay 5
	if m.MaxDelayAllTime() != 200 {
		t.Fatalf("MaxDelayAllTime = %d", m.MaxDelayAllTime())
	}
	if m.MaxDelayRecent() != 200 {
		t.Fatalf("MaxDelayRecent = %d", m.MaxDelayRecent())
	}
}

func TestFixedHistoryEviction(t *testing.T) {
	m := NewManager(1, 10, WithFixedHistory(3))
	m.Observe(tup(0, 100))
	m.Observe(tup(0, 10)) // delay 90
	m.Observe(tup(0, 100))
	m.Observe(tup(0, 100))
	m.Observe(tup(0, 100)) // evicts the delay-90 entry
	if m.HistoryLen(0) != 3 {
		t.Fatalf("history len = %d, want 3", m.HistoryLen(0))
	}
	if m.MaxDelayRecent() != 0 {
		t.Fatalf("old delay must age out of recent history, MaxDelayRecent=%d", m.MaxDelayRecent())
	}
	// All-time max persists for Max-K-slack.
	if m.MaxDelayAllTime() != 90 {
		t.Fatalf("MaxDelayAllTime = %d", m.MaxDelayAllTime())
	}
}

func TestRate(t *testing.T) {
	m := NewManager(1, 10)
	// 11 tuples spanning 100 ms → rate (11−1)/100 = 0.1 tuples/ms.
	for i := 0; i <= 10; i++ {
		m.Observe(tup(0, stream.Time(i*10)))
	}
	if r := m.Rate(0); math.Abs(r-0.1) > 1e-9 {
		t.Fatalf("rate = %v, want 0.1", r)
	}
}

func TestRateDegenerate(t *testing.T) {
	m := NewManager(1, 10)
	if m.Rate(0) != 0 {
		t.Fatal("rate of empty stream must be 0")
	}
	m.Observe(tup(0, 5))
	if m.Rate(0) != 0 {
		t.Fatal("rate needs at least two arrivals and positive span")
	}
}

// TestKSync follows Proposition 1: K^sync_i equals the average skew of
// stream i against the slowest stream.
func TestKSync(t *testing.T) {
	m := NewManager(2, 10, WithFixedHistory(100))
	// Stream 0 leads stream 1 by 50 time units consistently.
	for i := 0; i < 50; i++ {
		m.Observe(tup(0, stream.Time(100+i)))
		m.Observe(tup(1, stream.Time(50+i)))
	}
	k0, k1 := m.KSync(0), m.KSync(1)
	if k1 != 0 {
		t.Fatalf("slowest stream must have KSync 0, got %d", k1)
	}
	if k0 < 40 || k0 > 60 {
		t.Fatalf("leading stream KSync = %d, want ≈50", k0)
	}
}

func TestKSyncSingleStreamSeen(t *testing.T) {
	m := NewManager(3, 10)
	m.Observe(tup(0, 100))
	// Until every stream has been seen, skews are recorded as 0.
	if m.KSync(0) != 0 {
		t.Fatalf("KSync before all streams seen = %d", m.KSync(0))
	}
}

func TestADWINHistoryShrinksOnDelayChange(t *testing.T) {
	m := NewManager(1, 10)
	ts := stream.Time(0)
	// Long stable phase with zero delays.
	for i := 0; i < 3000; i++ {
		ts += 10
		m.Observe(tup(0, ts))
	}
	long := m.HistoryLen(0)
	// Disorder burst: every second tuple delayed by 500.
	for i := 0; i < 1500; i++ {
		ts += 10
		m.Observe(tup(0, ts))
		m.Observe(tup(0, ts-500))
	}
	if m.HistoryLen(0) >= long+3000 {
		t.Fatalf("ADWIN history did not adapt: %d → %d", long, m.HistoryLen(0))
	}
	if m.Hist(0).P(0) > 0.9 {
		t.Fatalf("recent histogram should reflect the burst, P(0)=%v", m.Hist(0).P(0))
	}
}

func TestGlobalTNoStreams(t *testing.T) {
	m := NewManager(2, 10)
	if m.GlobalT() != 0 {
		t.Fatal("GlobalT before any arrival must be 0")
	}
}
