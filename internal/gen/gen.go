// Package gen generates the evaluation workloads of Sec. VI.
//
// The two synthetic datasets D×3syn and D×4syn are reproduced exactly as
// described: per stream, the local current time iT advances 10 ms per tuple
// (100 tuples/s), each tuple's delay is drawn from a Zipf distribution over
// [0, 20 s] with a per-stream skew, its timestamp is iT − delay, and join
// attribute values come from Zipf over [1, 100] whose skew changes randomly
// during generation to vary the join selectivity over time.
//
// The real-world soccer dataset D×2real (DEBS 2013 player positions) is not
// redistributable, so gen substitutes a simulation: two teams of players
// follow random-waypoint trajectories on a 105×68 m pitch, each team's
// sensor readings form one stream, and network delays are drawn from a
// heavy-tailed Zipf distribution with injected delay bursts and per-stream
// maxima matching the paper (≈22 s and ≈26 s). See DESIGN.md §4 for why the
// substitution preserves the experiments' behaviour.
package gen

import (
	"math/rand"

	"repro/internal/join"
	"repro/internal/stream"
	"repro/internal/zipf"
)

// Dataset bundles a generated multi-stream workload with the join query the
// paper evaluates on it.
type Dataset struct {
	Name     string
	M        int
	Arrivals stream.Batch  // global arrival order; Seq strictly increasing
	Windows  []stream.Time // W_i per stream
	Cond     *join.Condition
}

// Delay quantization granularities. The paper draws delays "from
// [0.0, 20.0] seconds using a Zipf distribution" without fixing the
// discretization; we use 100 ms ranks for the synthetic workloads — coarse
// enough that the Zipf tail actually reaches the 20 s maximum within a run
// (Table II reports Max-K-slack averages of ≈14–20 s, so the authors' tails
// did too) — and 10 ms ranks for the soccer jitter.
const (
	synthDelayGran  = 100 * stream.Millisecond
	jitterDelayGran = 10 * stream.Millisecond
)

// SynthConfig parameterizes the synthetic generators.
type SynthConfig struct {
	Duration stream.Time // stream horizon (paper: 30 min)
	GapMS    stream.Time // iT increment per tuple (paper: 10 ms)
	DelayMax stream.Time // delay domain upper bound (paper: 20 s)
	Seed     int64
}

// normalize fills defaults.
func (c SynthConfig) normalize() SynthConfig {
	if c.Duration <= 0 {
		c.Duration = 30 * stream.Minute
	}
	if c.GapMS <= 0 {
		c.GapMS = 10 * stream.Millisecond
	}
	if c.DelayMax <= 0 {
		c.DelayMax = 20 * stream.Second
	}
	return c
}

// valueGen produces Zipf attribute values from [1,100] whose skew changes at
// random intervals within [0.0, 5.0], per Sec. VI. Change intervals are
// scaled with the horizon so shorter runs still see selectivity shifts.
type valueGen struct {
	rng        *rand.Rand
	sampler    *zipf.Sampler
	domain     int
	nextChange stream.Time
	minGap     stream.Time
	maxGap     stream.Time
}

func newValueGen(rng *rand.Rand, domain int, horizon stream.Time) *valueGen {
	// Paper: changes every U[1,10] minutes over a 30-minute horizon.
	minGap := horizon / 30
	maxGap := horizon / 3
	if minGap < stream.Second {
		minGap = stream.Second
	}
	if maxGap <= minGap {
		maxGap = minGap + stream.Second
	}
	v := &valueGen{
		rng:     rng,
		sampler: zipf.New(domain, 1.0),
		domain:  domain,
		minGap:  minGap,
		maxGap:  maxGap,
	}
	v.scheduleChange(0)
	return v
}

func (v *valueGen) scheduleChange(now stream.Time) {
	gap := v.minGap + stream.Time(v.rng.Int63n(int64(v.maxGap-v.minGap)+1))
	v.nextChange = now + gap
}

// sample draws the next attribute value in [1, domain].
func (v *valueGen) sample(now stream.Time) float64 {
	if now >= v.nextChange {
		v.sampler = zipf.New(v.domain, 5.0*v.rng.Float64())
		v.scheduleChange(now)
	}
	return float64(v.sampler.Sample(v.rng) + 1)
}

// delayGen draws quantized Zipf delays over [0, max] at the given rank
// granularity.
type delayGen struct {
	sampler *zipf.Sampler
	gran    stream.Time
}

func newDelayGen(max stream.Time, skew float64, gran stream.Time) *delayGen {
	n := int(max/gran) + 1
	return &delayGen{sampler: zipf.New(n, skew), gran: gran}
}

func (d *delayGen) sample(rng *rand.Rand) stream.Time {
	return stream.Time(d.sampler.Sample(rng)) * d.gran
}

// synthetic generates m synchronized streams per the paper's procedure.
// attrGens[i] lists the value generators for stream i's attributes.
func synthetic(cfg SynthConfig, delaySkews []float64, attrGens func(rng *rand.Rand) [][]*valueGen) (stream.Batch, int) {
	cfg = cfg.normalize()
	m := len(delaySkews)
	rng := rand.New(rand.NewSource(cfg.Seed))
	delays := make([]*delayGen, m)
	for i, s := range delaySkews {
		delays[i] = newDelayGen(cfg.DelayMax, s, synthDelayGran)
	}
	gens := attrGens(rng)

	steps := int(cfg.Duration / cfg.GapMS)
	batch := make(stream.Batch, 0, steps*m)
	var seq uint64
	// Start iT one delay-domain above zero so early tuples with maximal
	// delays still get non-negative timestamps (the paper's ts_ini).
	iT := cfg.DelayMax
	for s := 0; s < steps; s++ {
		iT += cfg.GapMS
		for i := 0; i < m; i++ {
			delay := delays[i].sample(rng)
			ts := iT - delay
			attrs := make([]float64, len(gens[i]))
			for a, g := range gens[i] {
				attrs[a] = g.sample(iT)
			}
			batch = append(batch, &stream.Tuple{TS: ts, Seq: seq, Src: i, Attrs: attrs})
			seq++
		}
	}
	return batch, m
}

// Synthetic3 generates D×3syn with query Q×3 (3-way equi-join on a1 within
// 5-second windows).
func Synthetic3(cfg SynthConfig) *Dataset {
	batch, m := synthetic(cfg, []float64{2.0, 3.0, 3.0}, func(rng *rand.Rand) [][]*valueGen {
		c := cfg.normalize()
		out := make([][]*valueGen, 3)
		for i := range out {
			out[i] = []*valueGen{newValueGen(rng, 100, c.Duration)}
		}
		return out
	})
	w := 5 * stream.Second
	return &Dataset{
		Name:     "Dsyn-x3",
		M:        m,
		Arrivals: batch,
		Windows:  []stream.Time{w, w, w},
		Cond:     join.EquiChain(3, 0),
	}
}

// Synthetic4 generates D×4syn with query Q×4 (star equi-join of S1 with
// S2, S3, S4 on a1, a2, a3 within 3-second windows). The paper lists the
// delay skews as z1=z2=z3=3.0 and one stream at 4.0; we read the latter as
// z4 (the duplicated "z1" is a typo in the paper).
func Synthetic4(cfg SynthConfig) *Dataset {
	batch, m := synthetic(cfg, []float64{3.0, 3.0, 3.0, 4.0}, func(rng *rand.Rand) [][]*valueGen {
		c := cfg.normalize()
		out := make([][]*valueGen, 4)
		out[0] = []*valueGen{
			newValueGen(rng, 100, c.Duration),
			newValueGen(rng, 100, c.Duration),
			newValueGen(rng, 100, c.Duration),
		}
		for i := 1; i < 4; i++ {
			out[i] = []*valueGen{newValueGen(rng, 100, c.Duration)}
		}
		return out
	})
	w := 3 * stream.Second
	return &Dataset{
		Name:     "Dsyn-x4",
		M:        m,
		Arrivals: batch,
		Windows:  []stream.Time{w, w, w, w},
		Cond:     join.Star(4, []int{0, 1, 2}, []int{0, 0, 0}),
	}
}

// SparseEqui3 builds a sparse-key disordered 3-stream feed for the tree
// deployment's tests, benchmarks and examples: n logical ticks of 10 ms,
// one tuple per stream per tick with an equi key drawn from [0, keyDomain),
// and one tuple in four delayed uniformly up to the stream's delayMax —
// asymmetric delayMax profiles are what per-stage adaptive K exploits. Low
// selectivity is deliberate: a tree materializes every intermediate, so it
// suits sparse joins (dense ones favor the MJoin operator; see the paper's
// evaluation datasets above for those).
func SparseEqui3(n int, seed int64, keyDomain int, delayMax [3]stream.Time) stream.Batch {
	rng := rand.New(rand.NewSource(seed))
	var in stream.Batch
	var seq uint64
	ts := stream.Time(5000)
	for i := 0; i < n; i++ {
		ts += 10
		for src := 0; src < 3; src++ {
			t := ts
			if delayMax[src] > 0 && rng.Intn(4) == 0 {
				t -= stream.Time(rng.Int63n(int64(delayMax[src])))
			}
			in = append(in, &stream.Tuple{
				TS: t, Seq: seq, Src: src,
				Attrs: []float64{float64(rng.Intn(keyDomain))},
			})
			seq++
		}
	}
	return in
}

// PhaseFlip4 packages the phase-flipping star as a Dataset for the CLI
// tools: four equal phases (dense, sparse, dense, sparse) spanning the
// given stream-time duration at 10 ms ticks, with 600 ms windows — sized so
// the measured-cost planner deploys flat in dense phases and a tree in
// sparse ones.
func PhaseFlip4(duration stream.Time, seed int64) *Dataset {
	ticks := int(duration / 10)
	per := ticks / 4
	if per < 1 {
		per = 1
	}
	w := stream.Time(600)
	return &Dataset{
		Name:     "Dflip-x4",
		M:        4,
		Arrivals: PhaseFlipStar4(4, per, seed, 12, 600, 200),
		Windows:  []stream.Time{w, w, w, w},
		Cond:     join.Star(4, []int{0, 1, 2}, []int{0, 0, 0}),
	}
}

// PhaseFlipStar4 builds the online re-planner's demo workload: a 4-stream
// star feed (same schema as SparseStar4) whose key density flips every
// ticksPerPhase ticks. Even phases are DENSE — keys drawn from the small
// [0, denseDomain), making per-predicate selectivity high and intermediate
// materialization expensive, the regime where the flat MJoin operator wins —
// and odd phases are SPARSE, drawing from [0, sparseDomain), the regime
// where a binary tree's intermediates undercut the raw windows. Timestamps
// run continuously across phases (10 ms ticks, one tuple per stream per
// tick) and one tuple in four arrives late by up to delayMax, so disorder
// handling stays engaged while a measured-stats planner provably flips the
// live shape at each phase change.
func PhaseFlipStar4(phases, ticksPerPhase int, seed int64, denseDomain, sparseDomain int, delayMax stream.Time) stream.Batch {
	rng := rand.New(rand.NewSource(seed))
	var in stream.Batch
	var seq uint64
	ts := stream.Time(5000)
	for p := 0; p < phases; p++ {
		domain := denseDomain
		if p%2 == 1 {
			domain = sparseDomain
		}
		for i := 0; i < ticksPerPhase; i++ {
			ts += 10
			for src := 0; src < 4; src++ {
				t := ts
				if delayMax > 0 && rng.Intn(4) == 0 {
					t -= stream.Time(rng.Int63n(int64(delayMax)))
				}
				var attrs []float64
				if src == 0 {
					attrs = []float64{
						float64(rng.Intn(domain)),
						float64(rng.Intn(domain)),
						float64(rng.Intn(domain)),
					}
				} else {
					attrs = []float64{float64(rng.Intn(domain))}
				}
				in = append(in, &stream.Tuple{TS: t, Seq: seq, Src: src, Attrs: attrs})
				seq++
			}
		}
	}
	return in
}

// SparseStar4 builds a sparse-key disordered 4-stream star feed — the
// workload of the stage-wise sharding benchmark and tests. Stream 0 is the
// star center carrying three key attributes (one per spoke predicate, each
// drawn from [0, keyDomain)); streams 1–3 are the spokes carrying one. The
// star condition (join.Star(4, {0,1,2}, {0,0,0})) has NO key class covering
// all four streams, which is exactly what stage-wise sharding exists for.
// Delays are injected like SparseEqui3's.
func SparseStar4(n int, seed int64, keyDomain int, delayMax [4]stream.Time) stream.Batch {
	rng := rand.New(rand.NewSource(seed))
	var in stream.Batch
	var seq uint64
	ts := stream.Time(5000)
	for i := 0; i < n; i++ {
		ts += 10
		for src := 0; src < 4; src++ {
			t := ts
			if delayMax[src] > 0 && rng.Intn(4) == 0 {
				t -= stream.Time(rng.Int63n(int64(delayMax[src])))
			}
			var attrs []float64
			if src == 0 {
				attrs = []float64{
					float64(rng.Intn(keyDomain)),
					float64(rng.Intn(keyDomain)),
					float64(rng.Intn(keyDomain)),
				}
			} else {
				attrs = []float64{float64(rng.Intn(keyDomain))}
			}
			in = append(in, &stream.Tuple{TS: t, Seq: seq, Src: src, Attrs: attrs})
			seq++
		}
	}
	return in
}
