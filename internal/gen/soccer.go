package gen

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/join"
	"repro/internal/stream"
)

// SoccerConfig parameterizes the simulated soccer workload that substitutes
// the DEBS 2013 dataset (D×2real). See the package comment and DESIGN.md §4.
type SoccerConfig struct {
	Duration       stream.Time // game horizon (paper: 23 min)
	Players        int         // players per team (default 8)
	SensorHz       int         // readings per player per second (default 12)
	MaxDelayA      stream.Time // max network delay stream S1 (paper: ≈22 s)
	MaxDelayB      stream.Time // max network delay stream S2 (paper: ≈26 s)
	DelaySkew      float64     // Zipf skew of the base delay distribution
	BurstEvery     stream.Time // mean gap between delay bursts
	BurstLen       stream.Time // duration of one burst
	ProximityM     float64     // join distance threshold (paper: 5 m)
	WindowSize     stream.Time // sliding window (paper: 5 s)
	Seed           int64
	FieldW, FieldH float64
}

func (c SoccerConfig) normalize() SoccerConfig {
	if c.Duration <= 0 {
		c.Duration = 23 * stream.Minute
	}
	if c.Players <= 0 {
		c.Players = 8
	}
	if c.SensorHz <= 0 {
		c.SensorHz = 12
	}
	if c.MaxDelayA <= 0 {
		c.MaxDelayA = 22 * stream.Second
	}
	if c.MaxDelayB <= 0 {
		c.MaxDelayB = 26 * stream.Second
	}
	if c.DelaySkew <= 0 {
		c.DelaySkew = 0.8
	}
	if c.BurstEvery <= 0 {
		c.BurstEvery = 90 * stream.Second
	}
	if c.BurstLen <= 0 {
		c.BurstLen = 4 * stream.Second
	}
	if c.ProximityM <= 0 {
		c.ProximityM = 5
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 5 * stream.Second
	}
	if c.FieldW <= 0 {
		c.FieldW = 105
	}
	if c.FieldH <= 0 {
		c.FieldH = 68
	}
	return c
}

// player is a random-waypoint walker.
type player struct {
	x, y   float64
	tx, ty float64 // current waypoint
	speed  float64 // m/s
}

func (p *player) step(rng *rand.Rand, dt float64, w, h float64) {
	dx, dy := p.tx-p.x, p.ty-p.y
	d := math.Hypot(dx, dy)
	move := p.speed * dt
	if d <= move || d == 0 {
		p.x, p.y = p.tx, p.ty
		p.tx, p.ty = rng.Float64()*w, rng.Float64()*h
		p.speed = 1 + rng.Float64()*7
		return
	}
	p.x += dx / d * move
	p.y += dy / d * move
}

// Soccer generates the simulated 2-stream player-position workload with the
// proximity query Q×2: find, within a 5-second window, all pairs of players
// from opposing teams closer than 5 meters. Tuple attributes are
// (sID, xCoord, yCoord); the join condition is expressed as two band
// predicates (the bounding box of the 5 m circle, index-accelerated) plus
// the exact dist() residual as a generic predicate, exercising both the
// band planner and the arbitrary-condition path.
func Soccer(cfg SoccerConfig) *Dataset {
	cfg = cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))

	maxDelay := []stream.Time{cfg.MaxDelayA, cfg.MaxDelayB}
	// Sensor-network delay model: almost every reading suffers sub-second
	// radio/aggregation jitter, a small fraction are multi-second
	// stragglers bounded by the per-stream maximum, and a few tuples are
	// punctual. This mirrors the paper's real dataset, where disorder is
	// pervasive (No-K-slack recall ≈ 0.5) yet the 99th delay percentile sits
	// far below the ≈22–26 s maxima (quality-driven buffers stay ≈1 s).
	const (
		punctualProb  = 0.20
		stragglerProb = 0.006
		jitterMax     = 1500 * stream.Millisecond
	)
	jitter := newDelayGen(jitterMax, cfg.DelaySkew, jitterDelayGran)
	stragglers := []*delayGen{
		newDelayGen(cfg.MaxDelayA, 1.2, synthDelayGran),
		newDelayGen(cfg.MaxDelayB, 1.2, synthDelayGran),
	}
	sampleDelay := func(team int) stream.Time {
		u := rng.Float64()
		switch {
		case u < punctualProb:
			return 0
		case u < punctualProb+stragglerProb:
			return stragglers[team].sample(rng)
		default:
			// Jitter is shifted off zero: late by at least one tick.
			return 20*stream.Millisecond + jitter.sample(rng)
		}
	}

	// Per-team burst schedule: during a burst every reading's delay gets an
	// extra uniform component, modelling sink congestion.
	type burst struct{ start, end stream.Time }
	makeBursts := func() []burst {
		var out []burst
		t := stream.Time(0)
		for t < cfg.Duration {
			gap := stream.Time(float64(cfg.BurstEvery) * (0.5 + rng.Float64()))
			t += gap
			out = append(out, burst{start: t, end: t + cfg.BurstLen})
			t += cfg.BurstLen
		}
		return out
	}
	bursts := [][]burst{makeBursts(), makeBursts()}
	inBurst := func(team int, ts stream.Time) bool {
		for _, b := range bursts[team] {
			if ts >= b.start && ts < b.end {
				return true
			}
			if b.start > ts {
				return false
			}
		}
		return false
	}

	// Simulate both teams at the sensor tick rate, emitting one reading per
	// player per tick, in timestamp order per stream.
	tick := stream.Time(1000 / cfg.SensorHz)
	if tick <= 0 {
		tick = 1
	}
	dt := float64(tick) / 1000

	players := make([][]*player, 2)
	for team := range players {
		players[team] = make([]*player, cfg.Players)
		for i := range players[team] {
			players[team][i] = &player{
				x:     rng.Float64() * cfg.FieldW,
				y:     rng.Float64() * cfg.FieldH,
				tx:    rng.Float64() * cfg.FieldW,
				ty:    rng.Float64() * cfg.FieldH,
				speed: 1 + rng.Float64()*7,
			}
		}
	}

	// arrival pairs a tuple with its physical arrival time at the sink.
	type arrival struct {
		t  *stream.Tuple
		at stream.Time
	}
	var arrivals []arrival
	// Offset timestamps so a maximal delay cannot precede time zero.
	base := cfg.MaxDelayB
	if cfg.MaxDelayA > base {
		base = cfg.MaxDelayA
	}
	for ts := stream.Time(0); ts < cfg.Duration; ts += tick {
		for team := 0; team < 2; team++ {
			burst := inBurst(team, ts)
			for i, pl := range players[team] {
				pl.step(rng, dt, cfg.FieldW, cfg.FieldH)
				d := sampleDelay(team)
				if burst {
					// Mild congestion: up to 300 ms of extra delay, inside
					// the jitter envelope the model already buffers for.
					d += stream.Time(rng.Int63n(300))
					if d > maxDelay[team] {
						d = maxDelay[team]
					}
				}
				tu := &stream.Tuple{
					TS:    base + ts,
					Src:   team,
					Attrs: []float64{float64(team*cfg.Players + i + 1), pl.x, pl.y},
				}
				arrivals = append(arrivals, arrival{t: tu, at: base + ts + d})
			}
		}
	}

	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].at < arrivals[j].at })
	batch := make(stream.Batch, len(arrivals))
	for i, a := range arrivals {
		a.t.Seq = uint64(i)
		batch[i] = a.t
	}

	// The proximity predicate dist() < 5 decomposes into two typed band
	// predicates — |x0 − x1| ≤ 5 and |y0 − y1| ≤ 5, the bounding box of the
	// circle — which the planner resolves to sorted range-index probes,
	// plus the exact-circle residual as a generic predicate over the few
	// box survivors. The conjunction is equivalent to the original
	// dist() < 5 condition (the circle is a subset of its box), so results
	// are identical; only the evaluation strategy changes, from an
	// O(window) closure scan per probe to O(log n + box matches).
	thr := cfg.ProximityM
	thr2 := thr * thr
	// The residual is given in expression form (WhereExpr, not a Where
	// closure) so executors compile it to bytecode for the probe inner
	// loop: dx² + dy² < thr².
	dx := join.Sub(join.Attr(0, 1), join.Attr(1, 1))
	dy := join.Sub(join.Attr(0, 2), join.Attr(1, 2))
	cond := join.Cross(2).
		Band(0, 1, 1, 1, thr).
		Band(0, 2, 1, 2, thr).
		WhereExpr(join.Lt(join.Add(join.Mul(dx, dx), join.Mul(dy, dy)), join.ConstOf(thr2)))
	return &Dataset{
		Name:     "Dreal-x2 (simulated)",
		M:        2,
		Arrivals: batch,
		Windows:  []stream.Time{cfg.WindowSize, cfg.WindowSize},
		Cond:     cond,
	}
}
