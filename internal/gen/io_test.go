package gen

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stream"
)

func TestCSVRoundTrip(t *testing.T) {
	ds := Synthetic3(SynthConfig{Duration: 5 * stream.Second, Seed: 11})
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != ds.Name || got.M != ds.M {
		t.Fatalf("metadata mismatch: %q/%d vs %q/%d", got.Name, got.M, ds.Name, ds.M)
	}
	if len(got.Windows) != len(ds.Windows) || got.Windows[0] != ds.Windows[0] {
		t.Fatalf("windows mismatch: %v vs %v", got.Windows, ds.Windows)
	}
	if len(got.Arrivals) != len(ds.Arrivals) {
		t.Fatalf("tuple count: %d vs %d", len(got.Arrivals), len(ds.Arrivals))
	}
	for i := range got.Arrivals {
		a, b := got.Arrivals[i], ds.Arrivals[i]
		if a.TS != b.TS || a.Src != b.Src || a.Seq != b.Seq {
			t.Fatalf("tuple %d header mismatch: %+v vs %+v", i, a, b)
		}
		if len(a.Attrs) != len(b.Attrs) {
			t.Fatalf("tuple %d attrs length", i)
		}
		for j := range a.Attrs {
			if a.Attrs[j] != b.Attrs[j] {
				t.Fatalf("tuple %d attr %d: %v vs %v", i, j, a.Attrs[j], b.Attrs[j])
			}
		}
	}
	if got.Cond != nil {
		t.Fatal("conditions must not round-trip (they contain code)")
	}
}

func TestCSVRoundTripSoccerFloats(t *testing.T) {
	ds := Soccer(SoccerConfig{Duration: 2 * stream.Second, Seed: 12})
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Float coordinates must survive exactly ('g', -1 formatting).
	for i := range got.Arrivals {
		if got.Arrivals[i].Attr(1) != ds.Arrivals[i].Attr(1) {
			t.Fatalf("x coordinate drifted at %d", i)
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not a dataset": "a,b,c\n1,2,3\n",
		"bad m":         "#qdhj,x,notanumber,5\n",
		"window count":  "#qdhj,x,2,5\n",
		"bad window":    "#qdhj,x,1,abc\n",
		"bad src":       "#qdhj,x,1,5\n9,0,1\n",
		"bad seq":       "#qdhj,x,1,5\n0,xx,1\n",
		"bad ts":        "#qdhj,x,1,5\n0,0,zz\n",
		"bad attr":      "#qdhj,x,1,5\n0,0,1,nan-ish???\n",
		"short record":  "#qdhj,x,1,5\n0,0\n",
		"empty":         "",
	}
	for name, data := range cases {
		if _, err := ReadCSV(strings.NewReader(data)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}
