package gen

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/stream"
)

// WriteCSV persists a dataset's arrival stream. The first record is a
// header carrying the dataset name, stream count and window sizes; every
// following record is one tuple in arrival order: src, seq, ts, attrs….
//
// Join conditions contain code (user-defined predicates) and are not
// serialized; readers re-attach the query by dataset key.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"#qdhj", d.Name, strconv.Itoa(d.M)}
	for _, win := range d.Windows {
		header = append(header, strconv.FormatInt(int64(win), 10))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, 0, 8)
	for _, t := range d.Arrivals {
		rec = rec[:0]
		rec = append(rec,
			strconv.Itoa(t.Src),
			strconv.FormatUint(t.Seq, 10),
			strconv.FormatInt(int64(t.TS), 10),
		)
		for _, a := range t.Attrs {
			rec = append(rec, strconv.FormatFloat(a, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads a dataset written by WriteCSV. The returned dataset has no
// Cond; attach the query before running a join.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("gen: reading header: %w", err)
	}
	if len(header) < 4 || header[0] != "#qdhj" {
		return nil, fmt.Errorf("gen: not a qdhj dataset file")
	}
	d := &Dataset{Name: header[1]}
	if d.M, err = strconv.Atoi(header[2]); err != nil {
		return nil, fmt.Errorf("gen: bad stream count: %w", err)
	}
	for _, f := range header[3:] {
		w, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gen: bad window size %q: %w", f, err)
		}
		d.Windows = append(d.Windows, stream.Time(w))
	}
	if len(d.Windows) != d.M {
		return nil, fmt.Errorf("gen: %d windows for %d streams", len(d.Windows), d.M)
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("gen: reading tuple: %w", err)
		}
		if len(rec) < 3 {
			return nil, fmt.Errorf("gen: short record %v", rec)
		}
		t := &stream.Tuple{}
		if t.Src, err = strconv.Atoi(rec[0]); err != nil || t.Src < 0 || t.Src >= d.M {
			return nil, fmt.Errorf("gen: bad src %q", rec[0])
		}
		if t.Seq, err = strconv.ParseUint(rec[1], 10, 64); err != nil {
			return nil, fmt.Errorf("gen: bad seq %q", rec[1])
		}
		ts, err := strconv.ParseInt(rec[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gen: bad ts %q", rec[2])
		}
		t.TS = stream.Time(ts)
		for _, f := range rec[3:] {
			a, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("gen: bad attr %q: %w", f, err)
			}
			t.Attrs = append(t.Attrs, a)
		}
		d.Arrivals = append(d.Arrivals, t)
	}
	return d, nil
}
