package gen

import (
	"testing"

	"repro/internal/stream"
)

func TestSynthetic3Shape(t *testing.T) {
	ds := Synthetic3(SynthConfig{Duration: 30 * stream.Second, Seed: 1})
	if ds.M != 3 || len(ds.Windows) != 3 {
		t.Fatalf("m = %d", ds.M)
	}
	// 100 tuples/s per stream over 30 s → 3000 per stream, 9000 total.
	if len(ds.Arrivals) != 9000 {
		t.Fatalf("arrivals = %d, want 9000", len(ds.Arrivals))
	}
	perStream := map[int]int{}
	for _, e := range ds.Arrivals {
		perStream[e.Src]++
		if e.TS < 0 {
			t.Fatal("negative timestamp")
		}
		if len(e.Attrs) != 1 {
			t.Fatalf("x3 tuples carry one attribute, got %d", len(e.Attrs))
		}
		if a := e.Attr(0); a < 1 || a > 100 {
			t.Fatalf("attribute %v outside [1,100]", a)
		}
	}
	for s := 0; s < 3; s++ {
		if perStream[s] != 3000 {
			t.Fatalf("stream %d has %d tuples", s, perStream[s])
		}
	}
	if !ds.Arrivals.Disordered() {
		t.Fatal("synthetic stream must contain disorder")
	}
	maxD, _ := ds.Arrivals.MaxDelay()
	if maxD > 20*stream.Second {
		t.Fatalf("delay %v exceeds the 20 s domain", maxD)
	}
	if maxD < stream.Second {
		t.Fatalf("max delay %v suspiciously small for zipf tail", maxD)
	}
}

func TestSynthetic3SkewOrdering(t *testing.T) {
	// Stream 0 (skew 2.0) must be more disordered than streams 1,2 (skew 3).
	ds := Synthetic3(SynthConfig{Duration: 60 * stream.Second, Seed: 2})
	late := map[int]int{}
	localT := map[int]stream.Time{}
	for _, e := range ds.Arrivals {
		if hi, ok := localT[e.Src]; ok && e.TS < hi {
			late[e.Src]++
		}
		if e.TS > localT[e.Src] {
			localT[e.Src] = e.TS
		}
	}
	if late[0] <= late[1] || late[0] <= late[2] {
		t.Fatalf("stream 0 (skew 2) should be most disordered: %v", late)
	}
}

func TestSynthetic4Shape(t *testing.T) {
	ds := Synthetic4(SynthConfig{Duration: 30 * stream.Second, Seed: 3})
	if ds.M != 4 {
		t.Fatalf("m = %d", ds.M)
	}
	if len(ds.Arrivals) != 12000 {
		t.Fatalf("arrivals = %d", len(ds.Arrivals))
	}
	for _, e := range ds.Arrivals {
		want := 1
		if e.Src == 0 {
			want = 3
		}
		if len(e.Attrs) != want {
			t.Fatalf("stream %d tuple has %d attrs, want %d", e.Src, len(e.Attrs), want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Synthetic3(SynthConfig{Duration: 10 * stream.Second, Seed: 7})
	b := Synthetic3(SynthConfig{Duration: 10 * stream.Second, Seed: 7})
	if len(a.Arrivals) != len(b.Arrivals) {
		t.Fatal("nondeterministic length")
	}
	for i := range a.Arrivals {
		x, y := a.Arrivals[i], b.Arrivals[i]
		if x.TS != y.TS || x.Src != y.Src || x.Attr(0) != y.Attr(0) {
			t.Fatalf("tuple %d differs across identical seeds", i)
		}
	}
	c := Synthetic3(SynthConfig{Duration: 10 * stream.Second, Seed: 8})
	same := true
	for i := range a.Arrivals {
		if a.Arrivals[i].TS != c.Arrivals[i].TS {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should produce different streams")
	}
}

func TestSoccerShape(t *testing.T) {
	ds := Soccer(SoccerConfig{Duration: 30 * stream.Second, Seed: 4})
	if ds.M != 2 {
		t.Fatalf("m = %d", ds.M)
	}
	if len(ds.Arrivals) == 0 {
		t.Fatal("no arrivals")
	}
	// Arrival order must follow Seq strictly.
	for i := 1; i < len(ds.Arrivals); i++ {
		if ds.Arrivals[i].Seq <= ds.Arrivals[i-1].Seq {
			t.Fatal("Seq must strictly increase in arrival order")
		}
	}
	if !ds.Arrivals.Disordered() {
		t.Fatal("soccer streams must contain disorder")
	}
	maxD, per := ds.Arrivals.MaxDelay()
	if maxD > 26*stream.Second {
		t.Fatalf("delay %v exceeds the configured bound", maxD)
	}
	_ = per
	// Positions stay on the pitch.
	for _, e := range ds.Arrivals {
		x, y := e.Attr(1), e.Attr(2)
		if x < 0 || x > 105 || y < 0 || y > 68 {
			t.Fatalf("player off-pitch: (%v, %v)", x, y)
		}
	}
}

func TestSoccerConditionMatchesDistance(t *testing.T) {
	ds := Soccer(SoccerConfig{Duration: 5 * stream.Second, Seed: 5})
	a := &stream.Tuple{Src: 0, Attrs: []float64{1, 10, 10}}
	b := &stream.Tuple{Src: 1, Attrs: []float64{9, 13, 14}} // dist 5 → not < 5
	c := &stream.Tuple{Src: 1, Attrs: []float64{9, 12, 13}} // dist ≈3.6 → match
	if ds.Cond.Matches([]*stream.Tuple{a, b}) {
		t.Fatal("dist exactly 5 must not match (strict <)")
	}
	if !ds.Cond.Matches([]*stream.Tuple{a, c}) {
		t.Fatal("dist 3.6 must match")
	}
}

func TestValueSkewChanges(t *testing.T) {
	// Over a long horizon the attribute distribution must shift: compare
	// first and last quartile frequency of the most common value.
	ds := Synthetic3(SynthConfig{Duration: 4 * stream.Minute, Seed: 6})
	n := len(ds.Arrivals)
	countTop := func(part []*stream.Tuple) map[float64]int {
		m := map[float64]int{}
		for _, e := range part {
			if e.Src == 0 {
				m[e.Attr(0)]++
			}
		}
		return m
	}
	first := countTop(ds.Arrivals[:n/4])
	last := countTop(ds.Arrivals[3*n/4:])
	// Frequencies of value 1 should differ materially between periods with
	// different skews (probability ranges from 1/100 to ≈0.96).
	f1 := float64(first[1]) / float64(len(ds.Arrivals)/4)
	l1 := float64(last[1]) / float64(len(ds.Arrivals)/4)
	diff := f1 - l1
	if diff < 0 {
		diff = -diff
	}
	if diff < 0.02 {
		t.Fatalf("value skew does not appear to change over time: %v vs %v", f1, l1)
	}
}
