package index

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

type entry struct{ id int }

// TestHashDifferential replays random add/remove/get traffic through Hash
// and a reference map, asserting identical bucket contents (as sets)
// throughout.
func TestHashDifferential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHash[*entry]()
		ref := map[uint64][]*entry{}
		live := []*entry{}
		keyOf := map[*entry]uint64{}
		for op := 0; op < 800; op++ {
			switch {
			case len(live) > 0 && rng.Intn(3) == 0: // remove
				i := rng.Intn(len(live))
				e := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				k := keyOf[e]
				h.Remove(k, e)
				lst := ref[k]
				for j, cand := range lst {
					if cand == e {
						lst[j] = lst[len(lst)-1]
						ref[k] = lst[:len(lst)-1]
						break
					}
				}
			default: // add
				e := &entry{id: op}
				k := uint64(rng.Intn(12))
				h.Add(k, e)
				ref[k] = append(ref[k], e)
				live = append(live, e)
				keyOf[e] = k
			}
			if h.Len() != len(live) {
				t.Logf("seed %d op %d: Len %d want %d", seed, op, h.Len(), len(live))
				return false
			}
			for k := uint64(0); k < 12; k++ {
				if !sameSet(h.Get(k), ref[k]) {
					t.Logf("seed %d op %d: bucket %d mismatch", seed, op, k)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHashGrowDropsDeadBuckets(t *testing.T) {
	h := NewHash[*entry]()
	// Slide a one-entry working set across a large key domain: dead buckets
	// accumulate and must be dropped at growth time instead of forcing
	// unbounded table growth.
	var prev *entry
	for k := uint64(0); k < 100000; k++ {
		e := &entry{id: int(k)}
		h.Add(k, e)
		if prev != nil {
			h.Remove(k-1, prev)
		}
		prev = e
	}
	if n := len(h.slots); n > 1024 {
		t.Fatalf("table capacity %d after sliding a 1-entry working set — dead buckets not recycled", n)
	}
}

func TestKeyBits(t *testing.T) {
	if k0, ok := KeyBits(0.0); !ok || k0 != 0 {
		t.Fatal("+0 must canonicalize to key 0")
	}
	if kn, ok := KeyBits(math.Copysign(0, -1)); !ok || kn != 0 {
		t.Fatal("−0 must collapse to the +0 key")
	}
	if _, ok := KeyBits(math.NaN()); ok {
		t.Fatal("NaN must report !ok")
	}
	a, _ := KeyBits(1.5)
	b, _ := KeyBits(1.5)
	c, _ := KeyBits(2.5)
	if a != b || a == c {
		t.Fatal("distinct values must have distinct keys")
	}
}

// TestSortedDifferential replays random add/remove traffic through Sorted
// and a reference sorted-by-(key, insertion) slice, asserting identical
// Range/CountRange behavior for random probes.
func TestSortedDifferential(t *testing.T) {
	type keyed struct {
		key float64
		e   *entry
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Sorted[*entry]
		var ref []keyed
		for op := 0; op < 600; op++ {
			switch {
			case len(ref) > 0 && rng.Intn(3) == 0: // remove
				i := rng.Intn(len(ref))
				s.Remove(ref[i].key, ref[i].e)
				ref = append(ref[:i], ref[i+1:]...)
			default:
				k := float64(rng.Intn(20)) / 2
				e := &entry{id: op}
				s.Add(k, e)
				// Insert after equal keys, as Sorted.Add specifies.
				i := sort.Search(len(ref), func(i int) bool { return ref[i].key > k })
				ref = append(ref, keyed{})
				copy(ref[i+1:], ref[i:])
				ref[i] = keyed{key: k, e: e}
			}
			if s.Len() != len(ref) {
				t.Logf("seed %d op %d: Len %d want %d", seed, op, s.Len(), len(ref))
				return false
			}
			for probe := 0; probe < 8; probe++ {
				lo := float64(rng.Intn(22))/2 - 1
				hi := lo + float64(rng.Intn(8))/2
				var want []*entry
				for _, kv := range ref {
					if kv.key >= lo && kv.key <= hi {
						want = append(want, kv.e)
					}
				}
				got := s.Range(lo, hi)
				if len(got) != len(want) || s.CountRange(lo, hi) != len(want) {
					t.Logf("seed %d op %d: range [%v,%v] size mismatch", seed, op, lo, hi)
					return false
				}
				for i := range got {
					if got[i] != want[i] {
						t.Logf("seed %d op %d: range [%v,%v] order mismatch", seed, op, lo, hi)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedNaN(t *testing.T) {
	var s Sorted[*entry]
	e := &entry{}
	s.Add(math.NaN(), e)
	if s.Len() != 0 {
		t.Fatal("NaN key must not be stored")
	}
	s.Remove(math.NaN(), e) // must not panic
	s.Add(1, e)
	if got := s.Range(math.NaN(), 2); len(got) != 0 {
		t.Fatal("NaN lo bound must yield an empty range")
	}
	if got := s.Range(0, math.NaN()); len(got) != 0 {
		t.Fatal("NaN hi bound must yield an empty range")
	}
	if got := s.Range(0, 2); len(got) != 1 {
		t.Fatal("finite range must still probe")
	}
}

func TestSortedInvertedRange(t *testing.T) {
	var s Sorted[*entry]
	s.Add(1, &entry{})
	if s.CountRange(2, 0) != 0 {
		t.Fatal("hi < lo must be empty")
	}
}

func sameSet(a, b []*entry) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[*entry]int{}
	for _, e := range a {
		seen[e]++
	}
	for _, e := range b {
		seen[e]--
		if seen[e] < 0 {
			return false
		}
	}
	return true
}
