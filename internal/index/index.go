// Package index provides the shared window-index machinery used by every
// operator that maintains per-attribute lookup structures over a sliding
// window: the MJoin-style operator's windows (internal/window) and the
// binary-tree stages' partial-result windows (internal/dist).
//
// Two structures are provided, both tuned for the windows' access pattern —
// a steady stream of insert/remove pairs with many lookups in between:
//
//   - Hash[E]: an open-addressed hash table from canonical float64 key bits
//     to entry buckets with O(1) swap-delete, generalizing the float-bits
//     table that internal/window grew for the equi-probe hot path. Linear
//     probing, multiplicative (fibonacci) hashing, power-of-two capacity.
//     Profiling showed the runtime map's generic float hashing dominating
//     probe-heavy workloads; a multiply and shift is an order of magnitude
//     cheaper. Emptied buckets keep their table slot and capacity until the
//     next growth sweep recycles them, so steady-state sliding over a stable
//     key domain allocates nothing.
//
//   - Sorted[E]: a key-ordered array supporting O(log n + matches) range
//     probes that return contiguous *views* (no copying), backing the typed
//     band predicate |S_l.a − S_r.a| ≤ ε. Insert/remove are binary search
//     plus a memmove — O(n) worst case, but windows hold thousands of
//     entries at most and the memmove of machine words is far cheaper than
//     the full-window scans the band predicate replaces.
//
// NaN keys are rejected by both structures (reported by KeyBits, silently
// skipped by Sorted.Add): NaN never compares equal and never satisfies a
// band, so a NaN-keyed entry could never be looked up anyway.
package index

import (
	"math"
	"math/bits"
)

// KeyBits canonicalizes a float64 key for bit-pattern hashing: ±0 collapse
// to one key, and NaN (which never compares equal, so can never match a
// probe) reports !ok.
func KeyBits(f float64) (uint64, bool) {
	if f == 0 {
		return 0, true
	}
	if f != f {
		return 0, false
	}
	return math.Float64bits(f), true
}

// Mix64 avalanches all 64 bits of canonical key bits (Murmur3/splitmix-style
// xor-fold/multiply finalizer). Shard routers modulo the result by the shard
// count; a plain multiplicative mix is not enough there, because
// small-integer float64 keys are multiples of 2^52, so the product's low
// bits — which the modulo consumes — would stay constant and every key
// would land on shard 0.
func Mix64(bits uint64) uint64 {
	bits ^= bits >> 33
	bits *= 0xFF51AFD7ED558CCD
	bits ^= bits >> 33
	bits *= 0xC4CEB9FE1A85EC53
	bits ^= bits >> 33
	return bits
}

// RangeCell quantizes a band key to its range cell of the given width, for
// range-partitioned shard routing. The clamp *saturates* — it must stay
// monotone in key so that the replication span
// [RangeCell(key−Δ), RangeCell(key+Δ)] of one tuple always encloses the
// owner cell of every band partner (a collapse-to-zero clamp would tear
// pairs straddling the clamp boundary apart). NaN keys can never satisfy a
// band predicate, so any deterministic cell works; ±Inf saturate like huge
// finite keys.
func RangeCell(key, width float64) int64 {
	v := math.Floor(key / width)
	switch {
	case math.IsNaN(v):
		return 0
	case v > 1e15:
		return int64(1e15)
	case v < -1e15:
		return -int64(1e15)
	}
	return int64(v)
}

// CellOwner maps a range cell to one of n owners (a non-negative modulo).
func CellOwner(cell int64, n int) int {
	m := int64(n)
	return int(((cell % m) + m) % m)
}

const hashMinCap = 16

// Hash is an open-addressed hash index from uint64 keys (canonical float
// bits, see KeyBits) to insertion-ordered buckets of entries. An earlier
// revision tracked every entry's bucket position in a side map for O(1)
// swap-delete; profiling showed the map's insert/delete on the window's
// steady add/remove churn costing more than it saved. Buckets are instead
// FIFO deques: sliding windows remove almost exactly in insertion order, so
// Remove's front-pop fast path is O(1), and the rare out-of-order removal
// shifts only the short prefix before the removed entry. The zero value is
// not usable; construct with NewHash.
type Hash[E comparable] struct {
	slots []hslot[E]
	n     int // occupied slots, including empty-bucket (dead) ones
	count int // live entries across all buckets
	shift uint
}

// hslot is one open-addressing slot: key plus its bucket deque — the live
// entries are data[head:]. A slot is occupied iff data is non-nil — claimed
// buckets keep a non-nil (possibly empty) slice until a growth sweep drops
// them, so no separate occupancy array is needed and a probe touches a
// single contiguous array instead of three parallel ones. That locality
// matters: Get is the single hottest call of the compiled probe kernel.
type hslot[E comparable] struct {
	key  uint64
	head int32
	data []E
}

// live returns the bucket's live view.
func (s *hslot[E]) live() []E { return s.data[s.head:] }

// compact moves the live region back to offset 0 once the dead prefix
// reaches half the slice, keeping appends amortized alloc-free: with the
// backing array at ≥2× the steady live size, the region slides inside it
// without ever hitting cap.
func (s *hslot[E]) compact() {
	if h := int(s.head); h >= 8 && h*2 >= len(s.data) {
		liveN := copy(s.data, s.data[h:])
		tail := s.data[liveN:]
		for i := range tail {
			var zero E
			tail[i] = zero
		}
		s.data = s.data[:liveN]
		s.head = 0
	}
}

// NewHash creates an empty hash index.
func NewHash[E comparable]() *Hash[E] {
	h := &Hash[E]{}
	h.init(hashMinCap)
	return h
}

func (h *Hash[E]) init(capacity int) {
	h.slots = make([]hslot[E], capacity)
	h.n = 0
	h.shift = 64 - uint(bits.TrailingZeros(uint(capacity)))
}

func (h *Hash[E]) hash(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> h.shift
}

// Get returns the bucket for key, or nil if absent. The returned slice is a
// view of internal storage; callers must not mutate or retain it across
// Add/Remove calls.
func (h *Hash[E]) Get(key uint64) []E {
	mask := uint64(len(h.slots) - 1)
	for i := h.hash(key); ; i = (i + 1) & mask {
		s := &h.slots[i]
		if s.data == nil {
			return nil
		}
		if s.key == key {
			return s.data[s.head:]
		}
	}
}

// Add appends e to the bucket for key. A given entry must be added at most
// once per Hash.
func (h *Hash[E]) Add(key uint64, e E) {
	s := h.bucket(key)
	s.data = append(s.data, e)
	h.count++
}

// Remove deletes e from its bucket, preserving bucket order. Sliding windows
// remove almost exactly in insertion order, so the front-pop fast path
// covers nearly every call in O(1); an out-of-order removal shifts only the
// (short) prefix in front of the removed entry. Emptied buckets keep their
// table slot and capacity; the next growth sweep drops them. The key must
// be present (every Remove pairs with an earlier Add), so the slot probe
// never misses.
func (h *Hash[E]) Remove(key uint64, e E) {
	mask := uint64(len(h.slots) - 1)
	i := h.hash(key)
	for h.slots[i].key != key || h.slots[i].data == nil {
		i = (i + 1) & mask
	}
	s := &h.slots[i]
	var zero E
	if s.data[s.head] != e {
		// Out-of-order removal: shift the prefix right over the entry.
		p := int(s.head) + 1
		for s.data[p] != e {
			p++
		}
		copy(s.data[s.head+1:p+1], s.data[s.head:p])
	}
	s.data[s.head] = zero
	s.head++
	h.count--
	if int(s.head) == len(s.data) {
		s.data = s.data[:0]
		s.head = 0
	} else {
		s.compact()
	}
}

// Len returns the number of entries currently held.
func (h *Hash[E]) Len() int { return h.count }

// Reset drops all content, releasing the backing storage.
func (h *Hash[E]) Reset() {
	h.init(hashMinCap)
	h.count = 0
}

// bucket returns a pointer to the bucket slot for key, claiming a slot if
// the key is new. New buckets are pre-sized so the first few appends do not
// reallocate.
func (h *Hash[E]) bucket(key uint64) *hslot[E] {
	if (h.n+1)*4 >= len(h.slots)*3 {
		h.grow()
	}
	mask := uint64(len(h.slots) - 1)
	for i := h.hash(key); ; i = (i + 1) & mask {
		s := &h.slots[i]
		if s.data == nil {
			s.key = key
			s.data = make([]E, 0, 4)
			h.n++
			return s
		}
		if s.key == key {
			return s
		}
	}
}

// grow rehashes into a table sized for the live (non-empty) buckets at ≤50%
// load, dropping dead entries accumulated since the last sweep.
func (h *Hash[E]) grow() {
	live := 0
	for i := range h.slots {
		if len(h.slots[i].live()) > 0 {
			live++
		}
	}
	newCap := hashMinCap
	for newCap < 4*(live+1) {
		newCap *= 2
	}
	old := h.slots
	h.init(newCap)
	mask := uint64(newCap - 1)
	for i := range old {
		if len(old[i].live()) == 0 {
			continue
		}
		for j := h.hash(old[i].key); ; j = (j + 1) & mask {
			if h.slots[j].data == nil {
				h.slots[j] = old[i]
				h.n++
				break
			}
		}
	}
}
