// Package index provides the shared window-index machinery used by every
// operator that maintains per-attribute lookup structures over a sliding
// window: the MJoin-style operator's windows (internal/window) and the
// binary-tree stages' partial-result windows (internal/dist).
//
// Two structures are provided, both tuned for the windows' access pattern —
// a steady stream of insert/remove pairs with many lookups in between:
//
//   - Hash[E]: an open-addressed hash table from canonical float64 key bits
//     to entry buckets with O(1) swap-delete, generalizing the float-bits
//     table that internal/window grew for the equi-probe hot path. Linear
//     probing, multiplicative (fibonacci) hashing, power-of-two capacity.
//     Profiling showed the runtime map's generic float hashing dominating
//     probe-heavy workloads; a multiply and shift is an order of magnitude
//     cheaper. Emptied buckets keep their table slot and capacity until the
//     next growth sweep recycles them, so steady-state sliding over a stable
//     key domain allocates nothing.
//
//   - Sorted[E]: a key-ordered array supporting O(log n + matches) range
//     probes that return contiguous *views* (no copying), backing the typed
//     band predicate |S_l.a − S_r.a| ≤ ε. Insert/remove are binary search
//     plus a memmove — O(n) worst case, but windows hold thousands of
//     entries at most and the memmove of machine words is far cheaper than
//     the full-window scans the band predicate replaces.
//
// NaN keys are rejected by both structures (reported by KeyBits, silently
// skipped by Sorted.Add): NaN never compares equal and never satisfies a
// band, so a NaN-keyed entry could never be looked up anyway.
package index

import (
	"math"
	"math/bits"
)

// KeyBits canonicalizes a float64 key for bit-pattern hashing: ±0 collapse
// to one key, and NaN (which never compares equal, so can never match a
// probe) reports !ok.
func KeyBits(f float64) (uint64, bool) {
	if f == 0 {
		return 0, true
	}
	if f != f {
		return 0, false
	}
	return math.Float64bits(f), true
}

// Mix64 avalanches all 64 bits of canonical key bits (Murmur3/splitmix-style
// xor-fold/multiply finalizer). Shard routers modulo the result by the shard
// count; a plain multiplicative mix is not enough there, because
// small-integer float64 keys are multiples of 2^52, so the product's low
// bits — which the modulo consumes — would stay constant and every key
// would land on shard 0.
func Mix64(bits uint64) uint64 {
	bits ^= bits >> 33
	bits *= 0xFF51AFD7ED558CCD
	bits ^= bits >> 33
	bits *= 0xC4CEB9FE1A85EC53
	bits ^= bits >> 33
	return bits
}

// RangeCell quantizes a band key to its range cell of the given width, for
// range-partitioned shard routing. The clamp *saturates* — it must stay
// monotone in key so that the replication span
// [RangeCell(key−Δ), RangeCell(key+Δ)] of one tuple always encloses the
// owner cell of every band partner (a collapse-to-zero clamp would tear
// pairs straddling the clamp boundary apart). NaN keys can never satisfy a
// band predicate, so any deterministic cell works; ±Inf saturate like huge
// finite keys.
func RangeCell(key, width float64) int64 {
	v := math.Floor(key / width)
	switch {
	case math.IsNaN(v):
		return 0
	case v > 1e15:
		return int64(1e15)
	case v < -1e15:
		return -int64(1e15)
	}
	return int64(v)
}

// CellOwner maps a range cell to one of n owners (a non-negative modulo).
func CellOwner(cell int64, n int) int {
	m := int64(n)
	return int(((cell % m) + m) % m)
}

const hashMinCap = 16

// Hash is an open-addressed hash index from uint64 keys (canonical float
// bits, see KeyBits) to buckets of entries, with each entry's position
// inside its bucket tracked for O(1) swap-delete. The zero value is not
// usable; construct with NewHash.
type Hash[E comparable] struct {
	keys  []uint64
	vals  [][]E
	used  []bool
	n     int // occupied slots, including empty-bucket (dead) ones
	shift uint
	pos   map[E]int
}

// NewHash creates an empty hash index.
func NewHash[E comparable]() *Hash[E] {
	h := &Hash[E]{pos: map[E]int{}}
	h.init(hashMinCap)
	return h
}

func (h *Hash[E]) init(capacity int) {
	h.keys = make([]uint64, capacity)
	h.vals = make([][]E, capacity)
	h.used = make([]bool, capacity)
	h.n = 0
	h.shift = 64 - uint(bits.TrailingZeros(uint(capacity)))
}

func (h *Hash[E]) hash(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> h.shift
}

// Get returns the bucket for key, or nil if absent. The returned slice is a
// view of internal storage; callers must not mutate or retain it across
// Add/Remove calls.
func (h *Hash[E]) Get(key uint64) []E {
	mask := uint64(len(h.keys) - 1)
	for i := h.hash(key); ; i = (i + 1) & mask {
		if !h.used[i] {
			return nil
		}
		if h.keys[i] == key {
			return h.vals[i]
		}
	}
}

// Add appends e to the bucket for key, recording its position. A given
// entry must be added at most once per Hash.
func (h *Hash[E]) Add(key uint64, e E) {
	b := h.bucket(key)
	h.pos[e] = len(*b)
	*b = append(*b, e)
}

// Remove swap-deletes e from its bucket in O(1) using the recorded
// position. Emptied buckets keep their table slot and capacity; the next
// growth sweep drops them. The key must be present (every Remove pairs
// with an earlier Add), so the slot probe never misses.
func (h *Hash[E]) Remove(key uint64, e E) {
	mask := uint64(len(h.keys) - 1)
	i := h.hash(key)
	for h.keys[i] != key || !h.used[i] {
		i = (i + 1) & mask
	}
	b := &h.vals[i]
	p := h.pos[e]
	last := len(*b) - 1
	if p != last {
		moved := (*b)[last]
		(*b)[p] = moved
		h.pos[moved] = p
	}
	var zero E
	(*b)[last] = zero
	*b = (*b)[:last]
	delete(h.pos, e)
}

// Len returns the number of entries currently held.
func (h *Hash[E]) Len() int { return len(h.pos) }

// Reset drops all content, releasing the backing storage.
func (h *Hash[E]) Reset() {
	h.init(hashMinCap)
	clear(h.pos)
}

// bucket returns a pointer to the bucket slot for key, claiming a slot if
// the key is new. New buckets are pre-sized so the first few appends do not
// reallocate.
func (h *Hash[E]) bucket(key uint64) *[]E {
	if (h.n+1)*4 >= len(h.keys)*3 {
		h.grow()
	}
	mask := uint64(len(h.keys) - 1)
	for i := h.hash(key); ; i = (i + 1) & mask {
		if !h.used[i] {
			h.used[i] = true
			h.keys[i] = key
			h.n++
			if h.vals[i] == nil {
				h.vals[i] = make([]E, 0, 4)
			}
			return &h.vals[i]
		}
		if h.keys[i] == key {
			return &h.vals[i]
		}
	}
}

// grow rehashes into a table sized for the live (non-empty) buckets at ≤50%
// load, dropping dead entries accumulated since the last sweep.
func (h *Hash[E]) grow() {
	live := 0
	for i, u := range h.used {
		if u && len(h.vals[i]) > 0 {
			live++
		}
	}
	newCap := hashMinCap
	for newCap < 4*(live+1) {
		newCap *= 2
	}
	oldKeys, oldVals, oldUsed := h.keys, h.vals, h.used
	h.init(newCap)
	mask := uint64(newCap - 1)
	for i, u := range oldUsed {
		if !u || len(oldVals[i]) == 0 {
			continue
		}
		for j := h.hash(oldKeys[i]); ; j = (j + 1) & mask {
			if !h.used[j] {
				h.used[j] = true
				h.keys[j] = oldKeys[i]
				h.vals[j] = oldVals[i]
				h.n++
				break
			}
		}
	}
}
