package index

import "sort"

// Sorted is a range index: entries keyed by float64, kept in key order in
// parallel arrays so a range probe [lo, hi] is a binary search returning a
// contiguous view of the entries — O(log n + matches) with zero copying.
//
// Entries with equal keys keep insertion order among themselves. NaN keys
// are silently ignored by Add (they can never satisfy a band predicate);
// Remove of a NaN key is a no-op, keeping Add/Remove symmetric.
//
// The zero value is an empty, usable index.
type Sorted[E comparable] struct {
	keys []float64
	vals []E
}

// Len returns the number of entries currently held.
func (s *Sorted[E]) Len() int { return len(s.keys) }

// Add inserts e under key, keeping key order. NaN keys are ignored.
func (s *Sorted[E]) Add(key float64, e E) {
	if key != key {
		return
	}
	// Fast path: keys arriving in non-decreasing order append at the tail.
	// Attribute values are not timestamp-correlated in general, so this is
	// just a cheap guard before the binary search, not the common case.
	if n := len(s.keys); n == 0 || s.keys[n-1] <= key {
		s.keys = append(s.keys, key)
		s.vals = append(s.vals, e)
		return
	}
	i := sort.SearchFloat64s(s.keys, key)
	// Insert after any equal keys to keep insertion order within a run.
	for i < len(s.keys) && s.keys[i] == key {
		i++
	}
	s.keys = append(s.keys, 0)
	s.vals = append(s.vals, e)
	copy(s.keys[i+1:], s.keys[i:])
	copy(s.vals[i+1:], s.vals[i:])
	s.keys[i] = key
	s.vals[i] = e
}

// Remove deletes the entry e stored under key. It is a no-op if the pair is
// absent (including NaN keys, mirroring Add).
func (s *Sorted[E]) Remove(key float64, e E) {
	if key != key {
		return
	}
	i := sort.SearchFloat64s(s.keys, key)
	for ; i < len(s.keys) && s.keys[i] == key; i++ {
		if s.vals[i] == e {
			copy(s.keys[i:], s.keys[i+1:])
			copy(s.vals[i:], s.vals[i+1:])
			last := len(s.keys) - 1
			var zero E
			s.vals[last] = zero
			s.keys = s.keys[:last]
			s.vals = s.vals[:last]
			return
		}
	}
}

// Range returns the entries with key in [lo, hi] as a contiguous view of
// internal storage, in key order (insertion order within equal keys).
// Callers must not mutate or retain the view across Add/Remove calls. A NaN
// bound yields an empty range.
func (s *Sorted[E]) Range(lo, hi float64) []E {
	i, j := s.rangeIdx(lo, hi)
	return s.vals[i:j]
}

// CountRange returns how many entries have key in [lo, hi].
func (s *Sorted[E]) CountRange(lo, hi float64) int {
	i, j := s.rangeIdx(lo, hi)
	return j - i
}

func (s *Sorted[E]) rangeIdx(lo, hi float64) (int, int) {
	if lo != lo || hi != hi || hi < lo {
		return 0, 0
	}
	i := sort.SearchFloat64s(s.keys, lo)
	j := i + sort.Search(len(s.keys)-i, func(k int) bool { return s.keys[i+k] > hi })
	return i, j
}

// Reset drops all content, releasing the backing storage.
func (s *Sorted[E]) Reset() {
	s.keys = nil
	s.vals = nil
}
