package monitor

import (
	"testing"

	"repro/internal/stream"
)

func TestProducedWindow(t *testing.T) {
	m := New(100, 0)
	m.AddResults(10, 3)
	m.AddResults(50, 2)
	m.AddResults(120, 1)
	m.Advance(150) // window [50, 150]: drops ts 10, keeps ts 50
	if m.Produced() != 3 {
		t.Fatalf("Produced = %d, want 3", m.Produced())
	}
	m.Advance(220) // drops ts 50; ts 120 == bound stays
	if m.Produced() != 1 {
		t.Fatalf("Produced = %d, want 1", m.Produced())
	}
	m.Advance(221) // now ts 120 is strictly older than the bound
	if m.Produced() != 0 {
		t.Fatalf("Produced = %d, want 0", m.Produced())
	}
}

func TestBoundaryInclusive(t *testing.T) {
	// The framework-wide boundary convention: scope is the closed interval
	// [now − span, now] and expired means strictly older, matching the join
	// operator's window scope [onT − W, onT]. A result at exactly the
	// boundary is still in the window.
	m := New(100, 0)
	m.AddResults(100, 1)
	m.Advance(200) // bound = 100 → ts 100 stays (expired means ts < bound)
	if m.Produced() != 1 {
		t.Fatalf("ts == bound must be kept, Produced = %d", m.Produced())
	}
	m.Advance(201) // now ts 100 < 101 → pruned
	if m.Produced() != 0 {
		t.Fatalf("ts below bound must be pruned, Produced = %d", m.Produced())
	}
	m2 := New(100, 0)
	m2.AddResults(99, 1)
	m2.Advance(200)
	if m2.Produced() != 0 {
		t.Fatalf("ts outside window must be pruned, Produced = %d", m2.Produced())
	}
}

func TestZeroAndNegativeAddIgnored(t *testing.T) {
	m := New(100, 0)
	m.AddResults(10, 0)
	m.AddResults(10, -5)
	if m.Produced() != 0 {
		t.Fatal("non-positive adds must be ignored")
	}
}

func TestTrueEstimateRing(t *testing.T) {
	m := New(100, 3)
	m.PushTrueEstimate(10)
	m.PushTrueEstimate(20)
	if m.TrueEstimate() != 30 {
		t.Fatalf("TrueEstimate = %v", m.TrueEstimate())
	}
	m.PushTrueEstimate(30)
	m.PushTrueEstimate(40) // evicts 10
	if m.TrueEstimate() != 90 {
		t.Fatalf("TrueEstimate = %v, want 20+30+40", m.TrueEstimate())
	}
	m.PushTrueEstimate(50) // evicts 20
	if m.TrueEstimate() != 120 {
		t.Fatalf("TrueEstimate = %v, want 30+40+50", m.TrueEstimate())
	}
}

func TestZeroCapacityRing(t *testing.T) {
	m := New(100, 0)
	m.PushTrueEstimate(10)
	if m.TrueEstimate() != 0 {
		t.Fatal("zero-capacity ring must stay empty")
	}
}

func TestCompaction(t *testing.T) {
	m := New(10, 0)
	for i := 0; i < 5000; i++ {
		m.AddResults(stream.Time(i), 1)
		m.Advance(stream.Time(i))
	}
	// The closed scope [now−10, now] spans 11 integer timestamps.
	if m.Produced() > 11 {
		t.Fatalf("window of 10 should retain ≤11 results, got %d", m.Produced())
	}
}
