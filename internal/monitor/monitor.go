// Package monitor implements the Result-Size Monitor of Fig. 2: a sliding
// window of P−L time units over the stream of produced join results, plus a
// short history of per-interval true-result-size estimates. Both feed the
// derivation of the instant recall requirement Γ′ (Eq. 7, Sec. IV-C).
package monitor

import "repro/internal/stream"

// resultPoint aggregates produced results sharing one timestamp.
type resultPoint struct {
	ts stream.Time
	n  int64
}

// Monitor tracks produced result sizes within the last P−L time units and a
// ring of the last (P−L)/L per-interval N^on_true(L) estimates.
type Monitor struct {
	span stream.Time // P − L

	points   []resultPoint // points[head:] live, ordered by ts
	head     int
	produced int64 // total produced within [now-span, now]

	trueRing []float64
	trueHead int
	trueCap  int
	trueSum  float64
}

// New creates a monitor. span is P−L; intervals is (P−L)/L, the number of
// per-interval true-size estimates to retain (≥ 0).
func New(span stream.Time, intervals int) *Monitor {
	if span < 0 {
		span = 0
	}
	if intervals < 0 {
		intervals = 0
	}
	return &Monitor{span: span, trueCap: intervals}
}

// Span returns P−L.
func (m *Monitor) Span() stream.Time { return m.span }

// AddResults records n produced results with timestamp ts. Results may
// arrive with non-monotone timestamps; pruning happens against the advancing
// logical now, not against result order.
func (m *Monitor) AddResults(ts stream.Time, n int64) {
	if n <= 0 {
		return
	}
	m.points = append(m.points, resultPoint{ts: ts, n: n})
	m.produced += n
}

// Advance prunes results whose timestamps have fallen out of the window.
// The boundary convention is shared with the join operator's windows
// (scope [now − span, now], expired means strictly older): a result at
// exactly now − span is still counted, only ts < now − span is pruned.
// Points are appended in near-timestamp order, so the prune walks the live
// prefix.
func (m *Monitor) Advance(now stream.Time) {
	bound := now - m.span
	for m.head < len(m.points) && m.points[m.head].ts < bound {
		m.produced -= m.points[m.head].n
		m.head++
	}
	if m.head > 1024 && m.head > len(m.points)/2 {
		n := copy(m.points, m.points[m.head:])
		m.points = m.points[:n]
		m.head = 0
	}
}

// Produced returns N^on_prod(P−L): the produced result count within the
// window as of the last Advance.
func (m *Monitor) Produced() int64 { return m.produced }

// PushTrueEstimate records the model's estimate of N^on_true(L) for the
// interval that just ended.
func (m *Monitor) PushTrueEstimate(n float64) {
	if m.trueCap == 0 {
		return
	}
	if len(m.trueRing) < m.trueCap {
		m.trueRing = append(m.trueRing, n)
		m.trueSum += n
		return
	}
	m.trueSum += n - m.trueRing[m.trueHead]
	m.trueRing[m.trueHead] = n
	m.trueHead = (m.trueHead + 1) % m.trueCap
}

// TrueEstimate returns N^on_true(P−L): the sum of the retained per-interval
// estimates (Sec. IV-C).
func (m *Monitor) TrueEstimate() float64 { return m.trueSum }

// State is the serializable snapshot of a Monitor.
type State struct {
	PointTS []stream.Time // live result points, in append order
	PointN  []int64
	True    []float64 // retained estimates, oldest first
}

// State captures the monitor's state.
func (m *Monitor) State() State {
	st := State{}
	for _, p := range m.points[m.head:] {
		st.PointTS = append(st.PointTS, p.ts)
		st.PointN = append(st.PointN, p.n)
	}
	n := len(m.trueRing)
	for i := 0; i < n; i++ {
		j := i
		if n == m.trueCap {
			j = (m.trueHead + i) % n
		}
		st.True = append(st.True, m.trueRing[j])
	}
	return st
}

// Restore loads a captured state into a freshly constructed monitor (same
// span and interval count). The estimate ring re-enters oldest-first, which
// reproduces both the filling and the saturated layouts.
func (m *Monitor) Restore(st State) {
	m.points = m.points[:0]
	m.head = 0
	m.produced = 0
	for i := range st.PointTS {
		m.points = append(m.points, resultPoint{ts: st.PointTS[i], n: st.PointN[i]})
		m.produced += st.PointN[i]
	}
	m.trueRing = nil
	m.trueHead = 0
	m.trueSum = 0
	for _, v := range st.True {
		m.PushTrueEstimate(v)
	}
}
